// Aging campaign (DESIGN.md §13): N simulated months of the F2 fault ladder
// against the MRM stack, checkpointed in fixed-day segments so the run
// survives being killed — SIGKILL included — at any instant and resumes
// bit-identically from the last durable snapshot.
//
// Each simulated day runs the F2-style KV-churn workload (append with a
// lifetime, read while live, free on expiry) through the RAS recovery path
// at a fixed fault rate. At every --checkpoint-every day boundary the stack
// quiesces (the scrub firing is the only pending event) and
// snapshot::SaveMrmStack publishes ckpt_day_<NNNNN>.snap crash-atomically.
// On startup the campaign scans the checkpoint directory for the newest
// snapshot, prints a one-line diagnostic for every rejected (truncated,
// corrupted, mismatched) candidate, and falls back — to an older snapshot or
// a cold start — without ever applying partial state.
//
// The BENCH_aging_campaign.json a resumed run writes is bit-identical to an
// unkilled reference (CI's kill-and-resume smoke job diffs them, ignoring
// wall-clock fields only).
//
// Knobs: --days=N (campaign length), --checkpoint-every=K (segment days),
// --checkpoint-dir=PATH (or MRMSIM_CHECKPOINT_DIR; default "."),
// --resume-from=FILE (explicit snapshot, overrides the scan),
// --fault-rate=R, --fault-seed=S, --die-at-day=D (raise SIGKILL right after
// day D's checkpoint publishes — the crash-injection hook tools/aging_run.sh
// uses).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "bench/common/bench_runner.h"
#include "src/fault/fault_config.h"
#include "src/fault/fault_injector.h"
#include "src/mrm/control_plane.h"
#include "src/mrm/mrm_device.h"
#include "src/sim/simulator.h"
#include "src/snapshot/checkpoint.h"
#include "src/snapshot/codec.h"
#include "src/snapshot/format.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

constexpr double kTicksPerSecond = 1e9;
constexpr double kDayS = 86400.0;
constexpr double kBatchPeriodS = 600.0;
// Batches run at a half-slot phase (300, 900, ... within each day) so they
// never share a tick with the scrub task (multiples of 3600), and the first
// batch of a day starts after the boundary drain below.
constexpr double kBatchOffsetS = 300.0;
// The scrub firing at the day boundary itself is executed by the boundary
// RunUntil; this much extra simulated time lets its migrations (µs-scale,
// plus ms-scale retry backoffs) drain before the checkpoint quiesces.
constexpr double kDrainS = 1.0;
constexpr double kDataLifetimeS = 7200.0;  // KV blocks live two hours
constexpr int kBlocksPerBatch = 16;
constexpr int kReadsPerBatch = 24;
constexpr std::uint64_t kBlockBytes = 64 * 1024;
constexpr double kScrubPeriodS = 3600.0;
constexpr int kEccT = 16;
constexpr int kBatchesPerDay = static_cast<int>(kDayS / kBatchPeriodS);

struct CampaignArgs {
  int days = 90;
  int checkpoint_every = 5;
  int die_at_day = 0;  // 0 = never
  double fault_rate = 3e-4;
  std::uint64_t fault_seed = 0;
  std::string checkpoint_dir;
  std::string resume_from;
};

mrmcore::MrmDeviceConfig DeviceConfig() {
  mrmcore::MrmDeviceConfig config;
  config.technology = cell::Technology::kSttMram;
  config.channels = 4;
  config.zones = 64;
  config.zone_blocks = 32;
  config.block_bytes = kBlockBytes;
  config.ecc_t = kEccT;
  config.ecc_codeword_bits = 4096;
  return config;
}

// The F2 fault ladder: one rate scales every MRM injection path at once.
fault::FaultConfig CampaignFaultConfig(const CampaignArgs& args) {
  fault::FaultConfig config;
  config.seed = args.fault_seed;
  config.transient_rber = args.fault_rate;
  config.stuck_block_prob = args.fault_rate;
  config.stuck_wear_fraction = 0.0;
  config.zone_failure_prob = args.fault_rate * 0.1;
  return config;
}

// Everything that shapes simulation results goes into the fingerprint;
// campaign length, checkpoint cadence and paths deliberately do not — a
// snapshot from a longer or differently-segmented run of the same physics is
// still valid to resume from.
std::uint64_t ConfigFingerprint(const CampaignArgs& args) {
  const mrmcore::MrmDeviceConfig device = DeviceConfig();
  const fault::FaultConfig faults = CampaignFaultConfig(args);
  snapshot::Fingerprint fp;
  fp.MixDouble(kTicksPerSecond);
  fp.MixU64(static_cast<std::uint64_t>(device.technology));
  fp.MixU64(static_cast<std::uint64_t>(device.channels));
  fp.MixU32(device.zones);
  fp.MixU32(device.zone_blocks);
  fp.MixU64(device.block_bytes);
  fp.MixU64(static_cast<std::uint64_t>(device.ecc_t));
  fp.MixU64(static_cast<std::uint64_t>(device.ecc_codeword_bits));
  fp.MixDouble(kScrubPeriodS);
  fp.MixU64(faults.seed);
  fp.MixDouble(faults.transient_rber);
  fp.MixDouble(faults.stuck_block_prob);
  fp.MixDouble(faults.stuck_wear_fraction);
  fp.MixDouble(faults.zone_failure_prob);
  fp.MixDouble(kBatchPeriodS);
  fp.MixDouble(kBatchOffsetS);
  fp.MixDouble(kDrainS);
  fp.MixDouble(kDataLifetimeS);
  fp.MixU64(static_cast<std::uint64_t>(kBlocksPerBatch));
  fp.MixU64(static_cast<std::uint64_t>(kReadsPerBatch));
  return fp.digest();
}

// The campaign's own evolving state, serialized into the snapshot's opaque
// workload section.
struct Workload {
  std::uint64_t days_completed = 0;
  std::uint64_t appends_ok = 0;
  std::uint64_t appends_failed = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_lost = 0;
  std::uint64_t read_cursor = 0;
  std::vector<std::pair<double, mrmcore::LogicalId>> live;  // (expiry_s, id)
};

std::vector<std::uint8_t> EncodeWorkload(const Workload& w) {
  snapshot::Encoder enc;
  enc.PutU64(w.days_completed);
  enc.PutU64(w.appends_ok);
  enc.PutU64(w.appends_failed);
  enc.PutU64(w.reads_ok);
  enc.PutU64(w.reads_lost);
  enc.PutU64(w.read_cursor);
  enc.PutU64(w.live.size());
  for (const auto& [expiry, id] : w.live) {
    enc.PutDouble(expiry);
    enc.PutU64(id);
  }
  return enc.TakeBytes();
}

bool DecodeWorkload(const std::vector<std::uint8_t>& bytes, Workload* out) {
  snapshot::Decoder dec(bytes.data(), bytes.size());
  out->days_completed = dec.GetU64();
  out->appends_ok = dec.GetU64();
  out->appends_failed = dec.GetU64();
  out->reads_ok = dec.GetU64();
  out->reads_lost = dec.GetU64();
  out->read_cursor = dec.GetU64();
  const std::uint64_t n = dec.GetU64();
  if (!dec.ok() || n > dec.remaining() / 16) {
    return false;
  }
  out->live.resize(static_cast<std::size_t>(n));
  for (auto& [expiry, id] : out->live) {
    expiry = dec.GetDouble();
    id = dec.GetU64();
  }
  return dec.AtEnd();
}

std::string CheckpointName(int day) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "ckpt_day_%05d.snap", day);
  return buffer;
}

// Checkpoint candidates in the directory, newest (highest day) first.
std::vector<std::string> ScanCheckpoints(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return names;
  }
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    int day = 0;
    if (std::sscanf(name.c_str(), "ckpt_day_%d.snap", &day) == 1 &&
        name == CheckpointName(day)) {
      names.push_back(name);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end(), std::greater<>());
  return names;
}

// The campaign stack for one process lifetime.
struct Stack {
  sim::Simulator simulator;
  mrmcore::MrmDevice device;
  mrmcore::ControlPlane plane;
  fault::FaultInjector injector;
  Workload workload;

  explicit Stack(const CampaignArgs& args)
      : simulator(kTicksPerSecond),
        device(&simulator, DeviceConfig()),
        plane(&simulator, &device,
              [] {
                mrmcore::ControlPlaneOptions options;
                options.scrub_period_s = kScrubPeriodS;
                return options;
              }()),
        injector(CampaignFaultConfig(args)) {
    plane.SetFaultInjector(&injector);
  }
};

// Tries `path`; on success applies it to the stack and returns true. On
// failure prints the one-line diagnostic and leaves the stack untouched.
bool TryResume(const std::string& path, std::uint64_t fingerprint, Stack* stack) {
  snapshot::MrmStackState state;
  const snapshot::Error err =
      snapshot::LoadMrmStack(path, fingerprint, stack->device, &state);
  if (!err.ok()) {
    std::fprintf(stderr, "aging_campaign: rejected checkpoint '%s': %s; falling back\n",
                 path.c_str(), err.ToString().c_str());
    return false;
  }
  Workload workload;
  if (!DecodeWorkload(state.workload, &workload)) {
    std::fprintf(stderr,
                 "aging_campaign: rejected checkpoint '%s': malformed: workload "
                 "payload; falling back\n",
                 path.c_str());
    return false;
  }
  snapshot::ApplyMrmStack(state, &stack->simulator, &stack->device, &stack->plane,
                          &stack->injector);
  stack->workload = std::move(workload);
  return true;
}

// Runs one simulated day of churn. The simulator sits at the day boundary on
// entry and exit; on exit all reads/retries have drained, so the scrub firing
// is the only pending event — the quiescent point checkpoints require.
void RunDay(Stack* stack, int day) {
  Workload& w = stack->workload;
  for (int batch = 0; batch < kBatchesPerDay; ++batch) {
    const double t = day * kDayS + kBatchOffsetS + batch * kBatchPeriodS;
    stack->simulator.RunUntil(stack->simulator.SecondsToTicks(t));
    while (!w.live.empty() && w.live.front().first <= t) {
      if (stack->plane.Alive(w.live.front().second)) {
        stack->plane.Free(w.live.front().second);
      }
      w.live.erase(w.live.begin());
    }
    for (int i = 0; i < kBlocksPerBatch; ++i) {
      auto id = stack->plane.Append(kDataLifetimeS);
      if (id.ok()) {
        w.live.emplace_back(t + kDataLifetimeS, id.value());
        ++w.appends_ok;
      } else {
        ++w.appends_failed;
      }
    }
    for (int i = 0; i < kReadsPerBatch && !w.live.empty(); ++i) {
      w.read_cursor = (w.read_cursor + 1) % w.live.size();
      const Status issued = stack->plane.Read(w.live[w.read_cursor].second, [&w](bool ok) {
        if (ok) {
          ++w.reads_ok;
        } else {
          ++w.reads_lost;
        }
      });
      if (!issued.ok()) {
        ++w.reads_lost;  // already dropped (zone failure before read)
      }
    }
  }
  stack->simulator.RunUntil(stack->simulator.SecondsToTicks((day + 1) * kDayS + kDrainS));
  w.days_completed = static_cast<std::uint64_t>(day) + 1;
}

bool ParseInt(const char* value, int* out) {
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed < 0) {
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CampaignArgs args;
  if (const char* env_dir = std::getenv("MRMSIM_CHECKPOINT_DIR")) {
    args.checkpoint_dir = env_dir;
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    bool ok = true;
    if (std::strncmp(arg, "--days=", 7) == 0) {
      ok = ParseInt(arg + 7, &args.days) && args.days > 0;
    } else if (std::strncmp(arg, "--checkpoint-every=", 19) == 0) {
      ok = ParseInt(arg + 19, &args.checkpoint_every) && args.checkpoint_every > 0;
    } else if (std::strncmp(arg, "--checkpoint-dir=", 17) == 0) {
      args.checkpoint_dir = arg + 17;
    } else if (std::strncmp(arg, "--resume-from=", 14) == 0) {
      args.resume_from = arg + 14;
    } else if (std::strncmp(arg, "--die-at-day=", 13) == 0) {
      ok = ParseInt(arg + 13, &args.die_at_day);
    } else if (std::strncmp(arg, "--fault-rate=", 13) == 0) {
      char* end = nullptr;
      args.fault_rate = std::strtod(arg + 13, &end);
      ok = end != arg + 13 && *end == '\0' && args.fault_rate >= 0.0;
    } else if (std::strncmp(arg, "--fault-seed=", 13) == 0) {
      char* end = nullptr;
      args.fault_seed = std::strtoull(arg + 13, &end, 10);
      ok = end != arg + 13 && *end == '\0';
    } else if (std::strncmp(arg, "--sim-threads=", 14) == 0 ||
               std::strncmp(arg, "--sim-spec-horizon=", 19) == 0) {
      // Accepted for harness uniformity; the MRM stack is single-lane.
    } else {
      std::fprintf(stderr, "aging_campaign: unknown argument '%s'\n", arg);
      return 1;
    }
    if (!ok) {
      std::fprintf(stderr, "aging_campaign: bad value in '%s'\n", arg);
      return 1;
    }
  }
  if (args.checkpoint_dir.empty()) {
    args.checkpoint_dir = ".";
  }

  const std::uint64_t fingerprint = ConfigFingerprint(args);
  Stack stack(args);

  // Resume: an explicit --resume-from is authoritative (its rejection is
  // fatal — the caller asked for that exact snapshot); otherwise scan the
  // checkpoint directory newest-first and fall back through rejects.
  if (!args.resume_from.empty()) {
    if (!TryResume(args.resume_from, fingerprint, &stack)) {
      return 1;
    }
  } else {
    for (const std::string& name : ScanCheckpoints(args.checkpoint_dir)) {
      if (TryResume(args.checkpoint_dir + "/" + name, fingerprint, &stack)) {
        break;
      }
    }
  }
  const int start_day = static_cast<int>(stack.workload.days_completed);
  if (start_day > 0) {
    std::printf("aging_campaign: resumed at day %d of %d\n", start_day, args.days);
  } else {
    std::printf("aging_campaign: cold start, %d days\n", args.days);
  }

  for (int day = start_day; day < args.days; ++day) {
    RunDay(&stack, day);
    const int completed = day + 1;
    if (completed % args.checkpoint_every == 0 || completed == args.days) {
      const std::string path = args.checkpoint_dir + "/" + CheckpointName(completed);
      const snapshot::Error err =
          snapshot::SaveMrmStack(path, fingerprint, stack.simulator, stack.device, stack.plane,
                                 &stack.injector, EncodeWorkload(stack.workload));
      if (!err.ok()) {
        std::fprintf(stderr, "aging_campaign: checkpoint '%s' failed: %s\n", path.c_str(),
                     err.ToString().c_str());
        return 1;
      }
    }
    if (args.die_at_day > 0 && completed >= args.die_at_day) {
      // Crash injection: die without any cleanup, exactly as a power cut or
      // OOM kill would. The next invocation must resume bit-identically.
      std::fflush(nullptr);
      ::raise(SIGKILL);
    }
  }

  // The report: every metric below is simulation state, so a killed-and-
  // resumed campaign's JSON is bit-identical to an unkilled one's (only
  // wall-clock fields differ).
  bench::BenchRunner runner("aging_campaign");
  runner.SetConfig("suite", "multi-month aging campaign over the F2 fault ladder");
  runner.SetConfig("days", std::to_string(args.days));
  runner.SetConfig("fault_rate", std::to_string(args.fault_rate));
  runner.SetConfig("fault_seed", std::to_string(args.fault_seed));
  const Workload& w = stack.workload;
  runner.Add("campaign", [&](bench::PointResult& r) {
    r.events = stack.simulator.events_executed();
    r.metrics["days"] = static_cast<double>(w.days_completed);
    r.metrics["sim_seconds"] = stack.simulator.now_seconds();
    r.metrics["appends_ok"] = static_cast<double>(w.appends_ok);
    r.metrics["appends_failed"] = static_cast<double>(w.appends_failed);
    r.metrics["reads_ok"] = static_cast<double>(w.reads_ok);
    r.metrics["reads_lost"] = static_cast<double>(w.reads_lost);
    const double reads_total = static_cast<double>(w.reads_ok + w.reads_lost);
    r.metrics["availability"] =
        reads_total > 0.0 ? static_cast<double>(w.reads_ok) / reads_total : 0.0;
    r.metrics["usable_capacity"] = stack.plane.UsableCapacityFraction();
    const mrmcore::ControlPlaneStats& plane = stack.plane.stats();
    r.metrics["scrub_rewrites"] = static_cast<double>(plane.scrub_rewrites);
    r.metrics["read_retries"] = static_cast<double>(plane.read_retries);
    r.metrics["retry_successes"] = static_cast<double>(plane.retry_successes);
    r.metrics["emergency_scrubs"] = static_cast<double>(plane.emergency_scrubs);
    r.metrics["uncorrectable_drops"] = static_cast<double>(plane.uncorrectable_drops);
    r.metrics["zones_retired"] = static_cast<double>(plane.zones_retired);
    r.metrics["blocks_remapped"] = static_cast<double>(plane.blocks_remapped);
    r.metrics["accounting_errors"] = static_cast<double>(plane.accounting_errors);
    const mrmcore::MrmDeviceStats& device = stack.device.stats();
    r.metrics["corrected_reads"] = static_cast<double>(device.corrected_reads);
    r.metrics["uncorrectable_reads"] = static_cast<double>(device.uncorrectable_reads);
    r.metrics["silent_corruptions"] = static_cast<double>(device.silent_corruptions);
    r.metrics["stuck_blocks"] = static_cast<double>(device.stuck_blocks);
    r.metrics["zone_failures"] = static_cast<double>(device.zone_failures);
    const fault::FaultStats& faults = stack.injector.stats();
    r.metrics["fault_unresolved"] =
        static_cast<double>(faults.injected_total() - faults.resolutions);
  });
  return runner.RunAndReport(/*threads=*/1);
}
