// E10 — §3: technology comparison. "PCM, RRAM, and STT-MRAM have read
// performance and energy on par or better than DRAM... They also have
// potential for higher density and/or lower TCO/TB."
//
// Two parts:
//  1. The paper's cell-level comparison table plus the MRM operating points
//     each candidate reaches once retention is relaxed (printed directly).
//  2. A simulated sweep: each (technology, retention) operating point is
//     dropped into a DRAM-socket device (DDR5 geometry, cell-derived column
//     timing/energy, refresh off) and run under an identical closed-loop
//     workload. The sweep executes on the parallel BenchRunner harness and
//     emits BENCH_e10_tech_compare.json; per-point metrics are bit-identical
//     between single- and multi-threaded runs (MRMSIM_BENCH_THREADS=1 to
//     check).

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/common/bench_runner.h"
#include "bench/common/sim_workloads.h"
#include "src/cell/technology.h"
#include "src/cell/tradeoff.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/mem/device_config.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

// A DDR5-geometry device whose column path is driven by the cell operating
// point: reads wait the cell's read latency, write recovery covers the
// programming pulse, array energy follows the cell model, and refresh is off
// (retention is managed, not fought). Interface (IO) cost stays DRAM-class —
// that is the "same socket" assumption of paper §3.
mem::DeviceConfig DeviceForOperatingPoint(cell::Technology tech,
                                          const cell::OperatingPoint& point) {
  mem::DeviceConfig config = mem::DDR5Config();
  config.name = std::string(cell::TechnologyName(tech)) + "@" + FormatSeconds(point.retention_s);
  config.tech = tech;
  config.timings.tcas_ns = std::max(config.timings.tcas_ns, point.read_latency_ns);
  config.timings.trtp_ns = std::max(config.timings.trtp_ns, point.read_latency_ns / 2.0);
  config.timings.twr_ns = std::max(config.timings.twr_ns, point.write_latency_ns);
  // Slow cell reads stretch the column path; keep the row-cycle timings
  // covering it (tRAS >= tRCD + tCAS, tRC >= tRAS + tRP) or the controller
  // would close rows before the first read completes.
  config.timings.tras_ns =
      std::max(config.timings.tras_ns, config.timings.trcd_ns + config.timings.tcas_ns);
  config.timings.trc_ns =
      std::max(config.timings.trc_ns, config.timings.tras_ns + config.timings.trp_ns);
  config.energy.read_pj_per_bit = point.read_energy_pj_per_bit;
  config.energy.write_pj_per_bit = point.write_energy_pj_per_bit;
  config.energy.refresh_pj_per_row = 0.0;
  config.needs_refresh = false;
  return config;
}

void AddSweepPoint(bench::BenchRunner& runner, const std::string& label,
                   const mem::DeviceConfig& config, double endurance_cycles,
                   double retention_s) {
  runner.Add(label, [=](bench::PointResult& r) {
    sim::Simulator sim;
    mem::MemorySystem system(&sim, config, mem::SchedulerPolicy::kFrFcfs);
    if (!config.needs_refresh) {
      system.DisableRefresh();
    }
    // Same workload for every point: 70% reads, 60% sequential-ish — an
    // inference-serving-like mix (paper §2.2 is far more read-heavy; this
    // keeps the write path visible so slow writes show up).
    const bench::MemRunResult run = bench::MemClosedLoop(
        sim, system, /*total=*/60000, /*window=*/192, /*read_pct=*/70, /*seq_pct=*/60,
        /*rng_seed=*/11);
    const mem::SystemStats stats = system.GetStats();
    const double bytes = static_cast<double>(stats.bytes_read + stats.bytes_written);
    r.events = run.events;
    r.metrics["retention_s"] = retention_s;
    r.metrics["endurance_cycles"] = endurance_cycles;
    r.metrics["achieved_gbps"] = run.sim_seconds > 0.0 ? bytes / run.sim_seconds / 1e9 : 0.0;
    r.metrics["read_latency_mean_ns"] = run.read_latency_mean_ns;
    r.metrics["row_hit_rate"] = run.row_hit_rate;
    r.metrics["energy_pj_per_bit"] = bytes > 0.0 ? stats.energy.total_pj() / (bytes * 8.0) : 0.0;
  });
}

void PrintCellTables() {
  TablePrinter table({"technology", "read ns", "write ns", "read pJ/b", "write pJ/b",
                      "retention", "endurance (prod)", "endurance (pot.)", "rel density",
                      "rel $/bit"});
  for (const auto& profile : cell::AllTechnologyProfiles()) {
    table.AddRow({profile.name, FormatNumber(profile.read_latency_ns),
                  FormatNumber(profile.write_latency_ns),
                  FormatNumber(profile.read_energy_pj_per_bit),
                  FormatNumber(profile.write_energy_pj_per_bit),
                  FormatSeconds(profile.retention_s),
                  FormatNumber(profile.endurance.product_cycles),
                  FormatNumber(profile.endurance.potential_cycles),
                  FormatNumber(profile.relative_density),
                  FormatNumber(profile.relative_cost_per_bit)});
  }
  table.Print("Cell-level technology profiles (survey-calibrated)");

  // The MRM pivot: what each SCM candidate looks like at relaxed retention.
  TablePrinter mrm({"technology", "retention point", "write pJ/b", "write ns",
                    "endurance cycles"});
  for (cell::Technology tech :
       {cell::Technology::kSttMram, cell::Technology::kRram, cell::Technology::kPcm}) {
    auto tradeoff = cell::MakeTradeoffFor(tech).value();
    for (double retention : {10.0 * kYear, 30.0 * kDay, kDay, kHour}) {
      const cell::OperatingPoint point = tradeoff->AtRetention(retention);
      mrm.AddRow({cell::TechnologyName(tech), FormatSeconds(point.retention_s),
                  FormatNumber(point.write_energy_pj_per_bit),
                  FormatNumber(point.write_latency_ns),
                  FormatNumber(point.endurance_cycles)});
    }
  }
  mrm.Print("MRM operating points: what relaxing retention buys (paper §3)");

  // Quantified claims.
  const double dram_read_pj =
      cell::GetTechnologyProfile(cell::Technology::kDram).read_energy_pj_per_bit;
  std::printf("Claim 'read energy on par or better than DRAM (%.2f pJ/b)':\n", dram_read_pj);
  for (cell::Technology tech :
       {cell::Technology::kSttMram, cell::Technology::kRram, cell::Technology::kPcm}) {
    const auto& profile = cell::GetTechnologyProfile(tech);
    std::printf("  %-9s %.2f pJ/b -> %s\n", profile.name.c_str(),
                profile.read_energy_pj_per_bit,
                profile.read_energy_pj_per_bit <= dram_read_pj ? "holds" : "VIOLATED");
  }
}

}  // namespace

int main() {
  std::printf("E10: memory technology comparison (paper §3)\n\n");
  PrintCellTables();

  // Part 2: drop each operating point into the cycle-level simulator.
  bench::BenchRunner runner("e10_tech_compare");
  runner.SetConfig("sweep", "technology x retention, DDR5-socket device, FR-FCFS");
  runner.SetConfig("workload", "closed-loop 60k requests, 70% read, 60% sequential");

  AddSweepPoint(runner, "dram_baseline", mem::DDR5Config(),
                cell::GetTechnologyProfile(cell::Technology::kDram).endurance.product_cycles,
                cell::GetTechnologyProfile(cell::Technology::kDram).retention_s);
  for (cell::Technology tech :
       {cell::Technology::kSttMram, cell::Technology::kRram, cell::Technology::kPcm}) {
    auto tradeoff = cell::MakeTradeoffFor(tech).value();
    for (double retention : {10.0 * kYear, 30.0 * kDay, kDay, kHour}) {
      const cell::OperatingPoint point = tradeoff->AtRetention(retention);
      std::string label =
          std::string(cell::TechnologyName(tech)) + "_" + FormatSeconds(point.retention_s);
      std::erase(label, ' ');
      AddSweepPoint(runner, label, DeviceForOperatingPoint(tech, point),
                    point.endurance_cycles, point.retention_s);
    }
  }
  return runner.RunAndReport();
}
