// E10 — §3: technology comparison. "PCM, RRAM, and STT-MRAM have read
// performance and energy on par or better than DRAM... They also have
// potential for higher density and/or lower TCO/TB."
//
// Prints the cell-level comparison table and the MRM operating points each
// candidate reaches once retention is relaxed (the paper's opportunity).

#include <cstdio>

#include "src/cell/technology.h"
#include "src/cell/tradeoff.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

}  // namespace

int main() {
  std::printf("E10: memory technology comparison (paper §3)\n\n");

  TablePrinter table({"technology", "read ns", "write ns", "read pJ/b", "write pJ/b",
                      "retention", "endurance (prod)", "endurance (pot.)", "rel density",
                      "rel $/bit"});
  for (const auto& profile : cell::AllTechnologyProfiles()) {
    table.AddRow({profile.name, FormatNumber(profile.read_latency_ns),
                  FormatNumber(profile.write_latency_ns),
                  FormatNumber(profile.read_energy_pj_per_bit),
                  FormatNumber(profile.write_energy_pj_per_bit),
                  FormatSeconds(profile.retention_s),
                  FormatNumber(profile.endurance.product_cycles),
                  FormatNumber(profile.endurance.potential_cycles),
                  FormatNumber(profile.relative_density),
                  FormatNumber(profile.relative_cost_per_bit)});
  }
  table.Print("Cell-level technology profiles (survey-calibrated)");

  // The MRM pivot: what each SCM candidate looks like at relaxed retention.
  TablePrinter mrm({"technology", "retention point", "write pJ/b", "write ns",
                    "endurance cycles"});
  for (cell::Technology tech :
       {cell::Technology::kSttMram, cell::Technology::kRram, cell::Technology::kPcm}) {
    auto tradeoff = cell::MakeTradeoffFor(tech).value();
    for (double retention : {10.0 * kYear, 30.0 * kDay, kDay, kHour}) {
      const cell::OperatingPoint point = tradeoff->AtRetention(retention);
      mrm.AddRow({cell::TechnologyName(tech), FormatSeconds(point.retention_s),
                  FormatNumber(point.write_energy_pj_per_bit),
                  FormatNumber(point.write_latency_ns),
                  FormatNumber(point.endurance_cycles)});
    }
  }
  mrm.Print("MRM operating points: what relaxing retention buys (paper §3)");

  // Quantified claims.
  const double dram_read_pj =
      cell::GetTechnologyProfile(cell::Technology::kDram).read_energy_pj_per_bit;
  std::printf("Claim 'read energy on par or better than DRAM (%.2f pJ/b)':\n", dram_read_pj);
  for (cell::Technology tech :
       {cell::Technology::kSttMram, cell::Technology::kRram, cell::Technology::kPcm}) {
    const auto& profile = cell::GetTechnologyProfile(tech);
    std::printf("  %-9s %.2f pJ/b -> %s\n", profile.name.c_str(),
                profile.read_energy_pj_per_bit,
                profile.read_energy_pj_per_bit <= dram_read_pj ? "holds" : "VIOLATED");
  }
  return 0;
}
