// E11 — §2.2: "batching allows weight reuse across requests... but even
// together they do not fundamentally change the heavily read-dominated
// nature of the workload."
//
// Sweeps batch size (weight amortization) and a KV prefix-reuse fraction,
// showing the read:write ratio stays orders of magnitude above parity.

#include <cstdio>
#include <string>

#include "src/common/table.h"
#include "src/mem/device_config.h"
#include "src/tier/tier_spec.h"
#include "src/workload/inference_engine.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

workload::EngineSummary RunBatch(int max_batch, double prefix_reuse,
                                 double compression_ratio = 1.0) {
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
  workload::AnalyticBackend backend(hbm, workload::Llama2_70B().weight_bytes());
  workload::EngineConfig config;
  config.model = workload::Llama2_70B();
  config.max_batch = max_batch;
  config.compute_tflops = 1000.0;
  config.kv_compression_ratio = compression_ratio;
  config.kv_codec_flops_per_byte = compression_ratio < 1.0 ? 20.0 : 0.0;
  workload::InferenceEngine engine(config, &backend);

  std::vector<workload::InferenceRequest> requests;
  for (int i = 0; i < 2 * max_batch; ++i) {
    workload::InferenceRequest request;
    request.id = static_cast<std::uint64_t>(i + 1);
    // Prefix reuse: the shared prefix's KV does not need prefilling —
    // shorten the prompt accordingly (vLLM automatic prefix caching).
    request.prompt_tokens = static_cast<int>(1024.0 * (1.0 - prefix_reuse)) + 1;
    request.output_tokens = 96;
    requests.push_back(request);
  }
  return engine.Run(requests);
}

}  // namespace

int main() {
  std::printf("E11: batching and KV-prefix reuse do not change read dominance (§2.2)\n\n");

  TablePrinter batching({"max batch", "tokens/s", "R:W ratio", "weight reads/token"});
  for (int batch : {1, 2, 4, 8, 16, 32}) {
    const workload::EngineSummary summary = RunBatch(batch, 0.0);
    const double weight_reads_per_token =
        static_cast<double>(summary.weight_read_bytes) /
        static_cast<double>(workload::Llama2_70B().weight_bytes()) /
        static_cast<double>(summary.decode_tokens);
    batching.AddRow({std::to_string(batch), FormatNumber(summary.decode_tokens_per_s()),
                     FormatNumber(summary.read_write_ratio()),
                     FormatNumber(weight_reads_per_token)});
  }
  batching.Print("Batch-size sweep (weight reads amortize, ratio stays >> 1000)");

  TablePrinter reuse({"prefix reuse", "prefill tokens", "R:W ratio"});
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    const workload::EngineSummary summary = RunBatch(16, fraction);
    reuse.AddRow({FormatNumber(fraction), FormatNumber(static_cast<double>(summary.prefill_tokens)),
                  FormatNumber(summary.read_write_ratio())});
  }
  reuse.Print("KV prefix-reuse sweep at batch 16");

  // KV compression (CacheGen [27]): shrinks KV traffic, costs codec compute;
  // the byte mix stays read-dominated because weights dominate reads.
  TablePrinter compression({"compression ratio", "KV bytes moved", "tokens/s",
                            "R:W ratio (logical)"});
  for (double ratio : {1.0, 0.5, 0.25}) {
    const workload::EngineSummary summary = RunBatch(16, 0.0, ratio);
    compression.AddRow({FormatNumber(ratio), FormatBytes(summary.kv_moved_bytes),
                        FormatNumber(summary.decode_tokens_per_s()),
                        FormatNumber(summary.read_write_ratio())});
  }
  compression.Print("KV compression sweep at batch 16");

  std::printf("Shape check: batching divides weight reads per token (visible above) and\n");
  std::printf("prefix reuse removes prefill writes, yet the byte mix stays read-dominated\n");
  std::printf("by 3+ orders of magnitude in every configuration.\n");
  return 0;
}
