// E12 — §2.1: "even using HBM, a substantial part of every inference query
// is memory bound", and §3: MRM must match read bandwidth to compete.
//
// Part 1: cycle-level sequential-read bandwidth of every DRAM preset vs.
//         the analytic stream model (cross-validation).
// Part 2: shard scaling — the same HBM3e sequential stream executed
//         serially and on a channel-sharded worker pool (--sim-threads=N);
//         metrics are bit-identical, only events/sec moves.
// Part 3: decode-step roofline — memory-bound fraction as accelerator
//         compute scales, on HBM and on an MRM weights tier.
//
// Runs through BenchRunner, so the sweep also lands in
// BENCH_e12_bandwidth.json for scripted before/after comparisons.

#include <cstdio>
#include <string>

#include "bench/common/bench_runner.h"
#include "src/check/attach.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/mem/memory_system.h"
#include "src/mem/stream_model.h"
#include "src/sim/simulator.h"
#include "src/tier/tier_spec.h"
#include "src/tier/tiered_backend.h"
#include "src/workload/inference_engine.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

struct BandwidthRun {
  double bytes_per_s = 0.0;
  std::uint64_t events = 0;
  sim::EpochSchedStats sched;
  mem::SpecStats spec;
};

BandwidthRun MeasureSequentialBandwidth(const mem::DeviceConfig& config, int sim_threads,
                                        int epoch_batch, sim::Tick spec_window = 0) {
  // Picosecond ticks: HBM-class sub-ns burst timings would be quantized to
  // whole nanoseconds otherwise, understating bandwidth by up to 60%.
  sim::Simulator simulator(1e12);
  mem::MemorySystem system(&simulator, config);
  // In a checked build with MRMSIM_CHECK set, audit every command of the run
  // (the auditor is passive: measured stats are unchanged).
  check::ScopedChecker checker(&simulator, &system);
  simulator.SetWorkerThreads(sim_threads);
  simulator.SetEpochBatch(epoch_batch);
  simulator.SetSpeculationWindow(spec_window);
  const std::uint64_t bytes = 8ull << 20;
  bool done = false;
  system.Transfer(mem::Request::Kind::kRead, 0, bytes, 0, [&] { done = true; });
  simulator.Run();
  BandwidthRun run;
  run.bytes_per_s = done ? static_cast<double>(bytes) / simulator.now_seconds() : 0.0;
  run.events = simulator.events_executed();
  run.sched = simulator.epoch_sched_stats();
  run.spec = system.GetSpecStats();
  return run;
}

// Duty-cycled stream: short read bursts separated by idle gaps — the shape
// where speculation pays. Quiescent lanes jump each gap in a handful of
// speculative spans instead of marching conservative H-wide epochs through
// it, so dispatches collapse while measured bandwidth stays bit-identical.
BandwidthRun MeasureBurstyBandwidth(int sim_threads, int epoch_batch, sim::Tick spec_window) {
  sim::Simulator simulator(1e12);
  mem::MemorySystem system(&simulator, mem::HBM3EConfig());
  check::ScopedChecker checker(&simulator, &system);
  simulator.SetWorkerThreads(sim_threads);
  simulator.SetEpochBatch(epoch_batch);
  simulator.SetSpeculationWindow(spec_window);
  const std::uint64_t burst_bytes = 64ull << 10;
  const int bursts = 64;
  const sim::Tick gap = 2000000;  // 2 us of ps ticks: the device drains fully between bursts
  std::uint64_t done_bytes = 0;
  for (int b = 0; b < bursts; ++b) {
    simulator.ScheduleAt(static_cast<sim::Tick>(b) * gap + 1, [&, b] {
      system.Transfer(mem::Request::Kind::kRead,
                      static_cast<std::uint64_t>(b) * burst_bytes, burst_bytes, 0,
                      [&] { done_bytes += burst_bytes; });
    });
  }
  simulator.Run();
  BandwidthRun run;
  run.bytes_per_s = static_cast<double>(done_bytes) / simulator.now_seconds();
  run.events = simulator.events_executed();
  run.sched = simulator.epoch_sched_stats();
  run.spec = system.GetSpecStats();
  return run;
}

// Scheduler/speculation telemetry for a shard point: `sched_` fields vary
// with the epoch-batch and speculation knobs (that is their entire effect)
// and `spec_` with the window, so both prefixes are excluded from CI's
// cross-knob identity diffs.
void AddShardTelemetry(bench::PointResult& r, const BandwidthRun& run) {
  r.metrics["sched_epochs"] = static_cast<double>(run.sched.epochs);
  r.metrics["sched_hub_steps"] = static_cast<double>(run.sched.hub_steps);
  r.metrics["sched_dispatches"] = static_cast<double>(run.sched.dispatches);
  r.metrics["sched_spec_epochs"] = static_cast<double>(run.sched.spec_epochs);
  r.metrics["spec_rollbacks"] = static_cast<double>(run.spec.rollbacks);
  r.metrics["spec_commits"] = static_cast<double>(run.spec.spec_commits);
}

workload::EngineSummary RunDecodeHeavy(workload::MemoryBackend* backend, double tflops) {
  workload::EngineConfig config;
  config.model = workload::Llama2_70B();
  config.max_batch = 16;
  config.compute_tflops = tflops;
  workload::InferenceEngine engine(config, backend);
  std::vector<workload::InferenceRequest> requests;
  for (int i = 0; i < 16; ++i) {
    workload::InferenceRequest request;
    request.id = static_cast<std::uint64_t>(i + 1);
    request.prompt_tokens = 512;
    request.output_tokens = 128;
    requests.push_back(request);
  }
  return engine.Run(requests);
}

double Metric(const bench::PointResult& r, const std::string& key) {
  const auto it = r.metrics.find(key);
  return it == r.metrics.end() ? 0.0 : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const int sim_threads = bench::ParseSimThreads(argc, argv, /*fallback=*/4);
  const int epoch_batch = bench::ParseEpochBatch(argc, argv, /*fallback=*/0);
  const auto spec_horizon = static_cast<sim::Tick>(bench::ParseSpecHorizon(argc, argv));
  std::printf("E12: bandwidth validation and the memory-bound roofline (§2.1/§3)\n");

  bench::BenchRunner runner("e12_bandwidth");
  runner.SetSimThreads(sim_threads);
  runner.SetConfig("suite", "sequential bandwidth + decode roofline");
  runner.SetConfig("sim_threads", std::to_string(sim_threads));
  runner.SetConfig("epoch_batch", std::to_string(epoch_batch));
  runner.SetConfig("spec_horizon", std::to_string(spec_horizon));

  const std::vector<mem::DeviceConfig> devices = {mem::HBM3Config(), mem::HBM3EConfig(),
                                                  mem::LPDDR5XConfig(), mem::DDR5Config()};
  for (const mem::DeviceConfig& config : devices) {
    runner.Add("bw_" + config.name, [config, epoch_batch](bench::PointResult& r) {
      const BandwidthRun run = MeasureSequentialBandwidth(config, /*sim_threads=*/1, epoch_batch);
      r.events = run.events;
      r.metrics["peak_gb_s"] = config.peak_bandwidth_bytes_per_s() / 1e9;
      r.metrics["model_gb_s"] = mem::StreamModel(config).EffectiveBandwidth() / 1e9;
      r.metrics["measured_gb_s"] = run.bytes_per_s / 1e9;
    });
  }

  // Shard-scaling pair on the 16-channel device: compare the two labels'
  // events/sec for the parallel-engine speedup (run under
  // MRMSIM_BENCH_THREADS=1 so the bench pool does not steal cores).
  for (const int threads : {1, sim_threads}) {
    const std::string label =
        threads == 1 ? "bw_hbm3e_shard_serial" : "bw_hbm3e_shard_parallel";
    runner.Add(label, [threads, epoch_batch](bench::PointResult& r) {
      const BandwidthRun run = MeasureSequentialBandwidth(mem::HBM3EConfig(), threads, epoch_batch);
      r.events = run.events;
      r.metrics["sim_threads"] = static_cast<double>(threads);
      r.metrics["measured_gb_s"] = run.bytes_per_s / 1e9;
      AddShardTelemetry(r, run);
    });
  }
  // Same sharded stream with speculative lane execution enabled: measured
  // bandwidth is bit-identical to the spec-off pair (the determinism
  // contract), so this point exists to catch a speculation-induced drift the
  // moment one appears in CI's spec-on vs spec-off diff. The default window
  // is sized for this bench's picosecond clock (the fabric hop alone is
  // 4000 ticks), so a sub-hop window would never engage.
  runner.Add("bw_hbm3e_shard_parallel_spec", [sim_threads, epoch_batch,
                                              spec_horizon](bench::PointResult& r) {
    const BandwidthRun run =
        MeasureSequentialBandwidth(mem::HBM3EConfig(), sim_threads, epoch_batch,
                                   spec_horizon > 0 ? spec_horizon : sim::Tick{65536});
    r.events = run.events;
    r.metrics["sim_threads"] = static_cast<double>(sim_threads);
    r.metrics["measured_gb_s"] = run.bytes_per_s / 1e9;
    AddShardTelemetry(r, run);
  });

  // Bursty duty-cycled pair on the same device: this is where speculation's
  // dispatch collapse shows up in this suite (the saturated sequential
  // stream above never quiesces, so its spec point records honest overhead
  // instead). The spec-on window must cover the 2 us inter-burst gap on the
  // picosecond clock, hence the 4M-tick default.
  for (const bool spec_on : {false, true}) {
    const std::string label = spec_on ? "bw_hbm3e_burst_spec_on" : "bw_hbm3e_burst_spec_off";
    runner.Add(label, [sim_threads, epoch_batch, spec_horizon, spec_on](bench::PointResult& r) {
      const sim::Tick window =
          !spec_on ? sim::Tick{0}
                   : (spec_horizon > 0 ? spec_horizon : sim::Tick{4 * 1024 * 1024});
      const BandwidthRun run = MeasureBurstyBandwidth(sim_threads, epoch_batch, window);
      r.events = run.events;
      r.metrics["sim_threads"] = static_cast<double>(sim_threads);
      r.metrics["measured_gb_s"] = run.bytes_per_s / 1e9;
      AddShardTelemetry(r, run);
    });
  }

  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
  mrmcore::MrmDeviceConfig mrm_config;
  mrm_config.technology = cell::Technology::kSttMram;
  mrm_config.channels = 96;  // sized at HBM-comparable aggregate read bw
  mrm_config.channel_read_bw_bytes_per_s = 100e9;
  const workload::TierSpec mrm = tier::TierSpecFromMrm(mrm_config, 1, 6.0 * kHour);

  for (const double tflops : {100.0, 400.0, 1000.0, 2500.0, 5000.0}) {
    runner.Add("roofline_" + std::to_string(static_cast<int>(tflops)) + "tflops",
               [hbm, mrm, tflops](bench::PointResult& r) {
                 workload::AnalyticBackend hbm_backend(hbm, workload::Llama2_70B().weight_bytes());
                 const auto hbm_summary = RunDecodeHeavy(&hbm_backend, tflops);

                 tier::Placement placement;
                 placement.weights_tier = 1;
                 placement.kv_cold_tier = 1;
                 placement.kv_hot_fraction = 0.15;
                 tier::TieredBackend tiered({hbm, mrm}, placement,
                                            workload::Llama2_70B().weight_bytes());
                 const auto mrm_summary = RunDecodeHeavy(&tiered, tflops);

                 r.events = 16 * (512 + 128);  // tokens decoded per backend
                 r.metrics["tflops"] = tflops;
                 r.metrics["hbm_mem_bound_frac"] = hbm_summary.memory_bound_fraction();
                 r.metrics["hbm_tokens_per_s"] = hbm_summary.decode_tokens_per_s();
                 r.metrics["mrm_mem_bound_frac"] = mrm_summary.memory_bound_fraction();
                 r.metrics["mrm_tokens_per_s"] = mrm_summary.decode_tokens_per_s();
               });
  }

  const int rc = runner.RunAndReport();

  TablePrinter bandwidth({"device", "peak GB/s", "model GB/s", "measured GB/s",
                          "model/measured"});
  TablePrinter roofline({"accelerator TFLOPs", "HBM mem-bound frac", "HBM tokens/s",
                         "HBM+MRM mem-bound frac", "HBM+MRM tokens/s"});
  for (const auto& [label, result] : runner.results()) {
    if (label.rfind("bw_", 0) == 0 && label.find("shard") == std::string::npos &&
        label.find("burst") == std::string::npos) {
      const double model = Metric(result, "model_gb_s");
      const double measured = Metric(result, "measured_gb_s");
      bandwidth.AddRow({label.substr(3), FormatNumber(Metric(result, "peak_gb_s")),
                        FormatNumber(model), FormatNumber(measured),
                        FormatNumber(measured > 0.0 ? model / measured : 0.0)});
    } else if (label.rfind("roofline_", 0) == 0) {
      roofline.AddRow({FormatNumber(Metric(result, "tflops")),
                       FormatNumber(Metric(result, "hbm_mem_bound_frac")),
                       FormatNumber(Metric(result, "hbm_tokens_per_s")),
                       FormatNumber(Metric(result, "mrm_mem_bound_frac")),
                       FormatNumber(Metric(result, "mrm_tokens_per_s"))});
    }
  }
  bandwidth.Print("Sequential-read bandwidth: cycle simulator vs. analytic model");
  roofline.Print("Decode roofline: memory-boundedness vs. accelerator compute");

  std::printf("Shape check: the analytic model tracks the cycle simulator within ~5%%;\n");
  std::printf("decode is memory bound on HBM across realistic accelerator speeds (§2.1),\n");
  std::printf("and an MRM tier sized at comparable read bandwidth tracks the HBM\n");
  std::printf("roofline — read throughput, not write performance, is what matters (§3).\n");
  return rc;
}
