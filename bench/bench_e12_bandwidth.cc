// E12 — §2.1: "even using HBM, a substantial part of every inference query
// is memory bound", and §3: MRM must match read bandwidth to compete.
//
// Part 1: cycle-level sequential-read bandwidth of every DRAM preset vs.
//         the analytic stream model (cross-validation).
// Part 2: decode-step roofline — memory-bound fraction as accelerator
//         compute scales, on HBM and on an MRM weights tier.

#include <cstdio>
#include <string>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/mem/memory_system.h"
#include "src/mem/stream_model.h"
#include "src/sim/simulator.h"
#include "src/tier/tier_spec.h"
#include "src/tier/tiered_backend.h"
#include "src/workload/inference_engine.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

double MeasureSequentialBandwidth(const mem::DeviceConfig& config) {
  // Picosecond ticks: HBM-class sub-ns burst timings would be quantized to
  // whole nanoseconds otherwise, understating bandwidth by up to 60%.
  sim::Simulator simulator(1e12);
  mem::MemorySystem system(&simulator, config);
  const std::uint64_t bytes = 8ull << 20;
  bool done = false;
  system.Transfer(mem::Request::Kind::kRead, 0, bytes, 0, [&] { done = true; });
  simulator.Run();
  return done ? static_cast<double>(bytes) / simulator.now_seconds() : 0.0;
}

workload::EngineSummary RunDecodeHeavy(workload::MemoryBackend* backend, double tflops) {
  workload::EngineConfig config;
  config.model = workload::Llama2_70B();
  config.max_batch = 16;
  config.compute_tflops = tflops;
  workload::InferenceEngine engine(config, backend);
  std::vector<workload::InferenceRequest> requests;
  for (int i = 0; i < 16; ++i) {
    workload::InferenceRequest request;
    request.id = static_cast<std::uint64_t>(i + 1);
    request.prompt_tokens = 512;
    request.output_tokens = 128;
    requests.push_back(request);
  }
  return engine.Run(requests);
}

}  // namespace

int main() {
  std::printf("E12: bandwidth validation and the memory-bound roofline (§2.1/§3)\n\n");

  TablePrinter bandwidth({"device", "peak GB/s", "model GB/s", "measured GB/s",
                          "model/measured"});
  for (const auto& config :
       {mem::HBM3Config(), mem::HBM3EConfig(), mem::LPDDR5XConfig(), mem::DDR5Config()}) {
    const double peak = config.peak_bandwidth_bytes_per_s();
    const double model = mem::StreamModel(config).EffectiveBandwidth();
    const double measured = MeasureSequentialBandwidth(config);
    bandwidth.AddRow({config.name, FormatNumber(peak / 1e9), FormatNumber(model / 1e9),
                      FormatNumber(measured / 1e9), FormatNumber(model / measured)});
  }
  bandwidth.Print("Sequential-read bandwidth: cycle simulator vs. analytic model");

  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
  mrmcore::MrmDeviceConfig mrm_config;
  mrm_config.technology = cell::Technology::kSttMram;
  mrm_config.channels = 96;  // sized at HBM-comparable aggregate read bw
  mrm_config.channel_read_bw_bytes_per_s = 100e9;
  const workload::TierSpec mrm = tier::TierSpecFromMrm(mrm_config, 1, 6.0 * kHour);

  TablePrinter roofline({"accelerator TFLOPs", "HBM mem-bound frac", "HBM tokens/s",
                         "HBM+MRM mem-bound frac", "HBM+MRM tokens/s"});
  for (double tflops : {100.0, 400.0, 1000.0, 2500.0, 5000.0}) {
    workload::AnalyticBackend hbm_backend(hbm, workload::Llama2_70B().weight_bytes());
    const auto hbm_summary = RunDecodeHeavy(&hbm_backend, tflops);

    tier::Placement placement;
    placement.weights_tier = 1;
    placement.kv_cold_tier = 1;
    placement.kv_hot_fraction = 0.15;
    tier::TieredBackend tiered({hbm, mrm}, placement, workload::Llama2_70B().weight_bytes());
    const auto mrm_summary = RunDecodeHeavy(&tiered, tflops);

    roofline.AddRow({FormatNumber(tflops), FormatNumber(hbm_summary.memory_bound_fraction()),
                     FormatNumber(hbm_summary.decode_tokens_per_s()),
                     FormatNumber(mrm_summary.memory_bound_fraction()),
                     FormatNumber(mrm_summary.decode_tokens_per_s())});
  }
  roofline.Print("Decode roofline: memory-boundedness vs. accelerator compute");

  std::printf("Shape check: the analytic model tracks the cycle simulator within ~5%%;\n");
  std::printf("decode is memory bound on HBM across realistic accelerator speeds (§2.1),\n");
  std::printf("and an MRM tier sized at comparable read bandwidth tracks the HBM\n");
  std::printf("roofline — read throughput, not write performance, is what matters (§3).\n");
  return 0;
}
