// E12b — closed-loop validation of the unified backend interface (DESIGN.md
// §11): the same Llama2-70B serving workload executed on the analytic
// backend and on the cycle-level sim backend (channel-sharded MemorySystem,
// optional zoned MRM tier), through the identical workload::MemoryBackend
// transfer-batch contract.
//
// Part 1: decode-step probe — one weights+KV decode batch submitted to each
//         backend; the analytic/cycle-level ratio is the calibration figure
//         the ≤10% acceptance bound pins (closed_loop_validation_test.cc).
// Part 2: full serving run — J/token and decode tokens/s per backend.
// Part 3: shard pair — the sim backend at --sim-threads 1 and N; every
//         deterministic metric is bit-identical, only wall clock moves (the
//         CI closed-loop smoke job diffs the two JSON files).
//
// Runs through BenchRunner and lands in BENCH_e12_closed_loop.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common/bench_runner.h"
#include "src/check/attach.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/driver/sim_backend.h"
#include "src/tier/tier_spec.h"
#include "src/workload/inference_engine.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

constexpr int kDecodeBatch = 8;
constexpr int kDecodeContext = 2048;

// One decode step: the full weight sweep plus the batch's KV read and the
// new token's KV append — the same batch shape the engine submits.
double MeasureDecodeStep(workload::MemoryBackend* backend) {
  const workload::FoundationModelConfig model = workload::Llama2_70B();
  workload::StepBatch batch;
  batch.Read(workload::Stream::kWeights, model.weight_bytes());
  batch.Read(workload::Stream::kKvCache,
             static_cast<std::uint64_t>(kDecodeBatch) * kDecodeContext *
                 model.kv_bytes_per_token());
  batch.Write(workload::Stream::kKvCache,
              static_cast<std::uint64_t>(kDecodeBatch) * model.kv_bytes_per_token());
  return backend->SubmitStep(batch).seconds;
}

workload::EngineSummary RunServing(workload::MemoryBackend* backend) {
  workload::EngineConfig config;
  config.model = workload::Llama2_70B();
  config.max_batch = kDecodeBatch;
  config.compute_tflops = 1000.0;
  workload::InferenceEngine engine(config, backend);
  std::vector<workload::InferenceRequest> requests;
  for (int i = 0; i < 8; ++i) {
    workload::InferenceRequest request;
    request.id = static_cast<std::uint64_t>(i + 1);
    request.prompt_tokens = 256;
    request.output_tokens = 32;
    requests.push_back(request);
  }
  return engine.Run(requests);
}

void FillServingMetrics(const workload::EngineSummary& summary, bench::PointResult& r) {
  const double tokens =
      static_cast<double>(summary.prefill_tokens + summary.decode_tokens);
  r.metrics["decode_tokens_per_s"] = summary.decode_tokens_per_s();
  r.metrics["j_per_token"] = tokens > 0.0 ? summary.backend_energy_j / tokens : 0.0;
  r.metrics["mem_bound_frac"] = summary.memory_bound_fraction();
  r.metrics["requests_completed"] = static_cast<double>(summary.requests_completed);
}

driver::SimBackendOptions HbmSimOptions(int sim_threads) {
  driver::SimBackendOptions options;
  options.device = mem::HBM3EConfig();
  options.devices = 8;
  options.sim_threads = sim_threads;
  options.lower_scale = 8192;
  return options;
}

double Metric(const bench::PointResult& r, const std::string& key) {
  const auto it = r.metrics.find(key);
  return it == r.metrics.end() ? 0.0 : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const int sim_threads = bench::ParseSimThreads(argc, argv, /*fallback=*/4);
  const auto spec_horizon = static_cast<sim::Tick>(bench::ParseSpecHorizon(argc, argv));
  std::printf("E12b: closed-loop inference, analytic vs. cycle-level (DESIGN.md §11)\n");

  bench::BenchRunner runner("e12_closed_loop");
  runner.SetSimThreads(sim_threads);
  runner.SetConfig("suite", "closed-loop decode validation");
  runner.SetConfig("sim_threads", std::to_string(sim_threads));
  runner.SetConfig("spec_horizon", std::to_string(spec_horizon));

  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
  const std::uint64_t weight_bytes = workload::Llama2_70B().weight_bytes();

  runner.Add("analytic_hbm", [hbm, weight_bytes](bench::PointResult& r) {
    workload::AnalyticBackend backend(hbm, weight_bytes);
    r.metrics["decode_step_ms"] = MeasureDecodeStep(&backend) * 1e3;
    const auto summary = RunServing(&backend);
    FillServingMetrics(summary, r);
    r.events = summary.steps;
  });

  // The shard pair: identical workload at 1 and N worker threads. Every
  // metric below is deterministic — the CI smoke job diffs the two runs'
  // JSON modulo wall-clock fields to prove bit-identity.
  for (const bool parallel : {false, true}) {
    // The label stays fixed as --sim-threads varies so the CI smoke job can
    // diff two runs' JSON directly. The same holds for --sim-spec-horizon:
    // speculative lane execution must not move any deterministic metric, so
    // the spec-on vs spec-off CI diff compares these very labels.
    const std::string label = parallel ? "sim_hbm_parallel" : "sim_hbm_serial";
    const int threads = parallel ? sim_threads : 1;
    runner.Add(label, [threads, hbm, weight_bytes, spec_horizon](bench::PointResult& r) {
      driver::SimBackendOptions options = HbmSimOptions(threads);
      options.sim_spec_horizon = spec_horizon;
      driver::SimBackend backend(std::move(options), weight_bytes);
      // Audit every command when MRMSIM_CHECK=1 in a checked build.
      check::ScopedChecker checker(backend.simulator(), backend.memory_system());
      const double sim_step_s = MeasureDecodeStep(&backend);
      r.metrics["decode_step_ms"] = sim_step_s * 1e3;

      workload::AnalyticBackend analytic(hbm, weight_bytes);
      const double analytic_step_s = MeasureDecodeStep(&analytic);
      r.metrics["analytic_ratio"] = sim_step_s / analytic_step_s;

      const auto summary = RunServing(&backend);
      FillServingMetrics(summary, r);
      r.metrics["sim_threads"] = static_cast<double>(threads);
      r.metrics["dram_bytes"] = static_cast<double>(backend.sim_stats().dram_bytes);
      r.metrics["dram_segments"] =
          static_cast<double>(backend.sim_stats().dram_segments);
      r.events = backend.simulator()->events_executed();
    });
  }

  runner.Add("sim_hbm_mrm", [weight_bytes](bench::PointResult& r) {
    driver::SimBackendOptions options = HbmSimOptions(/*sim_threads=*/1);
    options.mrm_enabled = true;
    options.mrm.technology = cell::Technology::kSttMram;
    options.mrm.channels = 96;  // HBM-comparable aggregate read bandwidth
    options.mrm.channel_read_bw_bytes_per_s = 100e9;
    options.mrm_retention_s = 6.0 * kHour;
    options.placement.weights_tier = 1;
    options.placement.kv_cold_tier = 1;
    options.placement.kv_hot_fraction = 0.15;
    driver::SimBackend backend(std::move(options), weight_bytes);
    check::ScopedChecker checker(backend.simulator(), backend.memory_system());
    r.metrics["decode_step_ms"] = MeasureDecodeStep(&backend) * 1e3;
    const auto summary = RunServing(&backend);
    FillServingMetrics(summary, r);
    r.metrics["mrm_blocks_read"] =
        static_cast<double>(backend.sim_stats().mrm_blocks_read);
    r.metrics["mrm_blocks_written"] =
        static_cast<double>(backend.sim_stats().mrm_blocks_written);
    r.events = backend.simulator()->events_executed();
  });

  const int rc = runner.RunAndReport();

  TablePrinter table({"backend", "decode step ms", "J/token", "decode tokens/s",
                      "analytic/sim ratio"});
  for (const auto& [label, result] : runner.results()) {
    const double ratio = Metric(result, "analytic_ratio");
    table.AddRow({label, FormatNumber(Metric(result, "decode_step_ms")),
                  FormatNumber(Metric(result, "j_per_token")),
                  FormatNumber(Metric(result, "decode_tokens_per_s")),
                  ratio > 0.0 ? FormatNumber(1.0 / ratio) : "-"});
  }
  table.Print("Closed-loop decode: one workload, three backends, one contract");

  std::printf("Shape check: the cycle-level decode step lands within 10%% of the\n");
  std::printf("analytic roofline on the HBM calibration workload, and the sharded\n");
  std::printf("run's metrics are bit-identical at any --sim-threads value.\n");
  return rc;
}
