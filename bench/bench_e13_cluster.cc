// E13 — §4 extension: rack-scale serving with MRM.
//
// Three cluster organizations under the same Splitwise-style load:
//   A. colocated HBM nodes               — prefill stalls decode;
//   B. disaggregated, KV over interconnect— Splitwise with NVLink-class link;
//   C. disaggregated, fabric-attached MRM KV pool — prefill writes the KV
//      into the shared pool; decode nodes read it in place (the paper's
//      pooled-memory endgame, cf. [49] CXL KV storage).
//
// Reports throughput, TTFT and end-to-end latency distributions.

#include <cstdio>

#include "bench/common/bench_runner.h"
#include "src/cluster/cluster.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/mem/device_config.h"
#include "src/tier/tier_spec.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

cluster::ClusterConfig BaseCluster(cluster::ClusterMode mode) {
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
  cluster::ClusterConfig config;
  config.mode = mode;
  config.prefill_node = cluster::HbmNode(workload::Llama2_70B(), hbm, 1000.0);
  config.decode_node = config.prefill_node;
  // Prompt-heavy mix: size the pools accordingly (Splitwise right-sizing).
  config.prefill_nodes = 4;
  config.decode_nodes = 4;
  config.max_decode_batch = 16;
  return config;
}

struct RunResult {
  cluster::ClusterStats stats;
};

// Worker-pool size for any epoch domains the cluster's node models attach
// (--sim-threads=N / MRMSIM_SIM_THREADS); the analytic nodes used today run
// serial regardless, so the knob is plumbed but inert until cycle-level
// node memories land.
int g_sim_threads = 1;

RunResult Run(cluster::ClusterConfig config, double arrivals_per_s) {
  sim::Simulator simulator(1e9);
  simulator.SetWorkerThreads(g_sim_threads);
  cluster::Cluster cluster(&simulator, config);
  workload::RequestGenerator generator(workload::SplitwiseCoding(), arrivals_per_s, 404);
  for (int i = 0; i < 200; ++i) {
    cluster.Submit(generator.Next());
  }
  simulator.RunUntil(simulator.SecondsToTicks(7.0 * 86400.0));
  RunResult result;
  result.stats = cluster.stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  g_sim_threads = bench::ParseSimThreads(argc, argv, /*fallback=*/1);
  std::printf("E13: cluster organizations — colocated vs. disaggregated vs. MRM KV pool\n");
  std::printf("Llama2-70B, 8 nodes total, Splitwise coding arrivals (4/s, prompt-heavy), 200 reqs\n\n");

  const double arrival_rate = 4.0;

  TablePrinter table({"organization", "tokens/s", "TTFT p50 ms", "TTFT p99 ms",
                      "E2E p50 s", "E2E p99 s"});
  {
    cluster::ClusterConfig config = BaseCluster(cluster::ClusterMode::kColocated);
    config.decode_nodes = 8;  // all 8 nodes do both phases
    const RunResult result = Run(config, arrival_rate);
    table.AddRow({"A: colocated (8 mixed)", FormatNumber(result.stats.tokens_per_s()),
                  FormatNumber(result.stats.ttft_ms.Quantile(0.5)),
                  FormatNumber(result.stats.ttft_ms.Quantile(0.99)),
                  FormatNumber(result.stats.e2e_s.Quantile(0.5)),
                  FormatNumber(result.stats.e2e_s.Quantile(0.99))});
  }
  {
    cluster::ClusterConfig config = BaseCluster(cluster::ClusterMode::kDisaggregated);
    config.interconnect_bw_bytes_per_s = 0.9e12;
    const RunResult result = Run(config, arrival_rate);
    table.AddRow({"B: split, NVLink KV handoff", FormatNumber(result.stats.tokens_per_s()),
                  FormatNumber(result.stats.ttft_ms.Quantile(0.5)),
                  FormatNumber(result.stats.ttft_ms.Quantile(0.99)),
                  FormatNumber(result.stats.e2e_s.Quantile(0.5)),
                  FormatNumber(result.stats.e2e_s.Quantile(0.99))});
  }
  {
    // MRM pool: decode nodes read weights from MRM (freeing HBM for KV) and
    // the KV handoff is free.
    cluster::ClusterConfig config = BaseCluster(cluster::ClusterMode::kDisaggregated);
    config.interconnect_bw_bytes_per_s = 0.0;
    const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 2);
    mrmcore::MrmDeviceConfig mrm_config;
    mrm_config.technology = cell::Technology::kRram;
    mrm_config.channels = 96;
    mrm_config.channel_read_bw_bytes_per_s = 100e9;
    mrm_config.zones = 1024;
    const workload::TierSpec mrm = tier::TierSpecFromMrm(mrm_config, 1, 6.0 * kHour);
    config.decode_node = cluster::HbmMrmNode(workload::Llama2_70B(), hbm, mrm, 1000.0);
    const RunResult result = Run(config, arrival_rate);
    table.AddRow({"C: split, shared MRM KV pool", FormatNumber(result.stats.tokens_per_s()),
                  FormatNumber(result.stats.ttft_ms.Quantile(0.5)),
                  FormatNumber(result.stats.ttft_ms.Quantile(0.99)),
                  FormatNumber(result.stats.e2e_s.Quantile(0.5)),
                  FormatNumber(result.stats.e2e_s.Quantile(0.99))});
  }
  table.Print("Cluster organization comparison");

  // Pool right-sizing: the disaggregated split must match the phase mix.
  TablePrinter sizing({"prefill/decode split", "tokens/s", "TTFT p50 ms", "E2E p50 s"});
  for (int prefill_nodes = 1; prefill_nodes <= 6; ++prefill_nodes) {
    cluster::ClusterConfig config = BaseCluster(cluster::ClusterMode::kDisaggregated);
    config.prefill_nodes = prefill_nodes;
    config.decode_nodes = 8 - prefill_nodes;
    const RunResult result = Run(config, arrival_rate);
    sizing.AddRow({std::to_string(prefill_nodes) + "/" + std::to_string(8 - prefill_nodes),
                   FormatNumber(result.stats.tokens_per_s()),
                   FormatNumber(result.stats.ttft_ms.Quantile(0.5)),
                   FormatNumber(result.stats.e2e_s.Quantile(0.5))});
  }
  sizing.Print("Disaggregated pool split sweep (8 nodes total)");

  std::printf("Shape check: a right-sized disaggregated cluster trims the prefill-induced\n");
  std::printf("TTFT/E2E tail of the colocated one (Splitwise), the fabric-attached MRM\n");
  std::printf("pool removes the KV handoff on top, and the sweep shows pool sizing is the\n");
  std::printf("knob the paper's rack-scale control plane must manage (§4).\n");
  return 0;
}
