// E14 — §3 density claims: "potential for higher density and/or lower
// TCO/TB" via multi-level cells [10] and transistor-less crossbars [56],
// and "easier to stack on the same die, because resistive cells do not use
// tall capacitors" [40].
//
// Part 1: MLC net density after ECC (the honest gain, per bits/cell).
// Part 2: crossbar feasibility (IR-drop / sneak bounds) and the resulting
//         density versus planar DRAM, with and without stacking.

#include <cstdio>
#include <string>

#include "src/analysis/density.h"
#include "src/cell/tradeoff.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

}  // namespace

int main() {
  std::printf("E14: net density of MRM organizations (paper §3)\n\n");

  const auto tradeoff = cell::MakeRramTradeoff();
  const cell::OperatingPoint point = tradeoff->AtRetention(6.0 * kHour);
  const std::uint64_t codeword = 8ull * 64 * kKiB;  // one 64 KiB block
  const double target_uber = 1e-15;

  TablePrinter mlc({"bits/cell", "RBER", "ECC overhead %", "gross gain", "net gain",
                    "feasible"});
  for (int bits = 1; bits <= 4; ++bits) {
    const analysis::MlcDensityReport report =
        analysis::ComputeMlcDensity(point, bits, codeword, target_uber);
    mlc.AddRow({std::to_string(bits), FormatNumber(report.rber),
                FormatNumber(report.ecc_overhead * 100.0), FormatNumber(report.gross_gain),
                FormatNumber(report.net_gain), report.feasible ? "yes" : "NO"});
  }
  mlc.Print("MLC net density after ECC (RRAM at 6 h retention, 64 KiB codewords)");

  TablePrinter crossbar({"configuration", "IR-drop bound N", "sneak bound N",
                         "feasible N", "area efficiency", "density vs DRAM"});
  {
    cell::CrossbarParams params;
    const cell::CrossbarDesign design = cell::EvaluateCrossbar(params);
    crossbar.AddRow({"baseline crossbar (1 layer)", FormatNumber(design.ir_drop_bound),
                     FormatNumber(design.sneak_bound), FormatNumber(design.max_array_dim),
                     FormatNumber(design.area_efficiency),
                     FormatNumber(design.density_vs_dram)});
  }
  {
    cell::CrossbarParams params;
    params.wire_resistance_per_cell_ohm = 10.0;  // scaled wires resist more
    const cell::CrossbarDesign design = cell::EvaluateCrossbar(params);
    crossbar.AddRow({"aggressive node (4x wire R)", FormatNumber(design.ir_drop_bound),
                     FormatNumber(design.sneak_bound), FormatNumber(design.max_array_dim),
                     FormatNumber(design.area_efficiency),
                     FormatNumber(design.density_vs_dram)});
  }
  {
    cell::CrossbarParams params;
    params.stacked_layers = 8;  // resistive stacks: no tall capacitors [40]
    const cell::CrossbarDesign design = cell::EvaluateCrossbar(params);
    crossbar.AddRow({"8-layer stacked crossbar", FormatNumber(design.ir_drop_bound),
                     FormatNumber(design.sneak_bound), FormatNumber(design.max_array_dim),
                     FormatNumber(design.area_efficiency),
                     FormatNumber(design.density_vs_dram)});
  }
  {
    cell::CrossbarParams params;
    params.selector_selectivity = 1e3;  // weak selector kills the array
    const cell::CrossbarDesign design = cell::EvaluateCrossbar(params);
    crossbar.AddRow({"weak selector (1e3)", FormatNumber(design.ir_drop_bound),
                     FormatNumber(design.sneak_bound), FormatNumber(design.max_array_dim),
                     FormatNumber(design.area_efficiency),
                     FormatNumber(design.density_vs_dram)});
  }
  crossbar.Print("Crossbar feasibility and density (4F^2 cell vs 6F^2 DRAM)");

  // Combined headline: stacked crossbar + 2-bit MLC.
  cell::CrossbarParams stacked;
  stacked.stacked_layers = 8;
  const analysis::MlcDensityReport two_bit =
      analysis::ComputeMlcDensity(point, 2, codeword, target_uber);
  std::printf("Combined (8-layer crossbar x 2-bit MLC after ECC): %.1fx planar DRAM\n\n",
              analysis::CombinedDensityVsDram(stacked, two_bit));

  std::printf("Shape check: MLC gains are real but sub-linear once parity is paid (TLC/QLC\n");
  std::printf("saturate); crossbar density hinges on selector quality and wire resistance;\n");
  std::printf("stacking — which resistive cells permit and DRAM capacitors resist — is\n");
  std::printf("the decisive multiplier behind the paper's density claim.\n");
  return 0;
}
