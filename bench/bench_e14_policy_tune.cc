// E14b — two-fidelity DCM policy autotune (paper §4, DESIGN.md §14).
//
// Runs policy::RunTune over the default candidate grid: every candidate is
// measured on the analytic tiered backend (MRM tier priced at its compiled
// KV retention, capacity derated to its ECC payload fraction, scrub ages
// derived from MaxSafeAge of its code), the Pareto frontier is promoted to
// the cycle-level sim backend with the F2 fault ladder active, and the
// winner is the validated candidate that strictly beats the static 10-year
// SCM baseline on J/token at equal-or-better usable capacity.
//
// Metric labels are fixed per candidate so the CI policy-smoke job can diff
// a --sim-threads=1 run against a --sim-threads=4 run directly (everything
// but wall clock is bit-identical). Lands in BENCH_e14_policy_tune.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/common/bench_runner.h"
#include "src/common/table.h"
#include "src/policy/tuner.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

}  // namespace

int main(int argc, char** argv) {
  const int sim_threads = bench::ParseSimThreads(argc, argv, /*fallback=*/1);
  // arg > MRMSIM_POLICY_PRESET > default (empty = the full default grid).
  // A named preset restricts the tune to preset-vs-static-SCM-baseline.
  const std::string preset = bench::ParsePolicyPreset(argc, argv, /*fallback=*/"");
  std::printf("E14b: two-fidelity DCM policy autotune (DESIGN.md §14)\n");

  policy::TunerOptions options = policy::TunerOptions::Defaults();
  options.sim_threads = sim_threads;

  std::vector<policy::PolicyCandidate> grid;
  if (!preset.empty()) {
    auto restricted = policy::GridForPreset(preset);
    if (!restricted.ok()) {
      std::fprintf(stderr, "e14_policy_tune: %s\n", restricted.error().message().c_str());
      return 1;
    }
    grid = restricted.value();
  }

  bench::BenchRunner runner("e14_policy_tune");
  runner.SetSimThreads(sim_threads);
  runner.SetConfig("suite", "policy autotune, analytic grid + sim validation");
  runner.SetConfig("sim_threads", std::to_string(sim_threads));
  runner.SetConfig("policy_preset", preset.empty() ? "(default grid)" : preset);
  runner.SetConfig("fault_rate", std::to_string(options.fault_rate));
  runner.SetConfig("agreement_bound", std::to_string(options.agreement_bound));

  policy::TuneReport report;
  runner.Add("policy_tune", [&options, &report, &grid](bench::PointResult& r) {
    report = policy::RunTune(options, grid);
    std::uint64_t events = 0;
    for (const policy::CandidateOutcome& c : report.candidates) {
      r.metrics[c.name + ".j_per_token"] = c.analytic_j_per_token;
      r.metrics[c.name + ".decode_tokens_per_s"] = c.analytic_decode_tokens_per_s;
      r.metrics[c.name + ".capacity_frac"] = c.usable_capacity_fraction;
      r.metrics[c.name + ".kv_scrub_age_s"] = c.kv_scrub_age_s;
      r.metrics[c.name + ".feasible"] = c.feasible ? 1.0 : 0.0;
      r.metrics[c.name + ".meets_slo"] = c.meets_slo ? 1.0 : 0.0;
      r.metrics[c.name + ".on_frontier"] = c.on_frontier ? 1.0 : 0.0;
      r.metrics[c.name + ".validated"] = c.validated ? 1.0 : 0.0;
      if (c.validated) {
        r.metrics[c.name + ".sim_j_per_token"] = c.sim_j_per_token;
        r.metrics[c.name + ".agreement_ratio"] = c.agreement_ratio;
        r.metrics[c.name + ".within_agreement"] = c.within_agreement ? 1.0 : 0.0;
        r.metrics[c.name + ".faults_injected"] = static_cast<double>(c.faults_injected);
        events += c.sim_events;
      }
    }
    r.metrics["winner_found"] = report.winner_index >= 0 ? 1.0 : 0.0;
    r.metrics["winner_index"] = static_cast<double>(report.winner_index);
    r.metrics["j_per_token_delta_frac"] = report.j_per_token_delta_frac;
    r.metrics["capacity_delta_frac"] = report.capacity_delta_frac;
    r.metrics["max_agreement_error"] = report.max_agreement_error;
    r.events = events;
  });

  const int rc = runner.RunAndReport();

  TablePrinter table({"candidate", "J/token", "tokens/s", "capacity frac",
                      "frontier", "validated", "sim/analytic"});
  for (const policy::CandidateOutcome& c : report.candidates) {
    table.AddRow({c.name + (c.baseline ? " (baseline)" : ""),
                  c.feasible ? FormatNumber(c.analytic_j_per_token) : "infeasible",
                  FormatNumber(c.analytic_decode_tokens_per_s),
                  FormatNumber(c.usable_capacity_fraction),
                  c.on_frontier ? "yes" : "-", c.validated ? "yes" : "-",
                  c.validated ? FormatNumber(c.agreement_ratio) : "-"});
  }
  table.Print("Policy grid: three static references vs. the tuned DCM sweep");

  if (const policy::CandidateOutcome* winner = report.winner()) {
    std::printf("winner: %s  J/token %+.1f%%  capacity %+.1f%%  vs %s "
                "(max sim/analytic error %.1f%%)\n",
                winner->name.c_str(), report.j_per_token_delta_frac * 100.0,
                report.capacity_delta_frac * 100.0,
                report.baseline() != nullptr ? report.baseline()->name.c_str() : "?",
                report.max_agreement_error * 100.0);
  } else {
    std::printf("winner: none — no validated candidate dominates the baseline\n");
  }
  std::printf("Shape check: managed retention (tuned DCM) strictly beats the\n");
  std::printf("static 10-year SCM provisioning on J/token at equal-or-better\n");
  std::printf("usable capacity, and the promoted candidates' cycle-level decode\n");
  std::printf("steps agree with the analytic grid inside the documented bound.\n");
  return rc;
}
