// E15 — §2/§3: model-weight updates. "When a new model is deployed, the
// cluster stops accepting new requests, services ongoing ones, then loads
// weights for the new model." Weight updates are MRM's write-heavy corner:
// this bench quantifies the swap time on each substrate and the endurance
// budget across update cadences — the two weights rows of Figure 1, turned
// into deployment numbers.

#include <cstdio>
#include <string>

#include "src/analysis/endurance.h"
#include "src/cell/tradeoff.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/mem/stream_model.h"
#include "src/tier/tier_spec.h"
#include "src/workload/model_config.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

}  // namespace

int main() {
  std::printf("E15: model-swap cost and weight-update endurance budget (§2/§3)\n\n");

  const workload::FoundationModelConfig model = workload::Llama2_70B();
  const double weight_bytes = static_cast<double>(model.weight_bytes());
  std::printf("Model: %s, %s of weights\n\n", model.name.c_str(),
              FormatBytes(model.weight_bytes()).c_str());

  // Swap time = weights / write bandwidth of the substrate.
  TablePrinter swap({"substrate", "write bw", "swap time", "note"});
  {
    const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
    swap.AddRow({"HBM3e x8", FormatNumber(hbm.write_bw_bytes_per_s / 1e9) + " GB/s",
                 FormatSeconds(weight_bytes / hbm.write_bw_bytes_per_s),
                 "symmetric read/write"});
  }
  mrmcore::MrmDeviceConfig mrm_config;
  mrm_config.technology = cell::Technology::kSttMram;
  mrm_config.channels = 96;
  for (double retention : {10.0 * kYear, 30.0 * kDay, kDay}) {
    const workload::TierSpec mrm = tier::TierSpecFromMrm(mrm_config, 1, retention);
    swap.AddRow({"MRM @ " + FormatSeconds(retention),
                 FormatNumber(mrm.write_bw_bytes_per_s / 1e9) + " GB/s",
                 FormatSeconds(weight_bytes / mrm.write_bw_bytes_per_s),
                 retention >= kYear ? "non-volatile-grade writes" : "relaxed writes"});
  }
  swap.Print("Weight-swap time by substrate and programmed retention");

  // Endurance budget: writes/cell over 5 years per update cadence vs. the
  // endurance at the retention that cadence actually needs.
  auto tradeoff = cell::MakeTradeoffFor(cell::Technology::kSttMram).value();
  TablePrinter budget({"update cadence", "writes/cell (5y)", "needed retention",
                       "endurance @ that point", "margin"});
  struct Cadence {
    const char* name;
    double interval_s;
  };
  for (const Cadence& cadence : {Cadence{"monthly", 30.0 * kDay}, Cadence{"daily", kDay},
                                 Cadence{"hourly", kHour}, Cadence{"every second", 1.0}}) {
    analysis::WeightsEnduranceParams params;
    params.update_interval_s = cadence.interval_s;
    const double writes = analysis::WeightsWritesPerCell(params);
    // Weights only need to live until the next update (plus margin).
    const double retention = cadence.interval_s * 2.0;
    const cell::OperatingPoint point = tradeoff->AtRetention(retention);
    budget.AddRow({cadence.name, FormatNumber(writes),
                   FormatSeconds(point.retention_s), FormatNumber(point.endurance_cycles),
                   FormatNumber(point.endurance_cycles / writes)});
  }
  budget.Print("Weight-update endurance budget on STT-MRAM (DCM retention per cadence)");

  std::printf("Shape check: even at MRM's ~10x lower write bandwidth a full weight swap\n");
  std::printf("stays sub-second — negligible against hours-scale update cadences — and\n");
  std::printf("the DCM trick (retention = 2x cadence) keeps endurance margins >> 1 even\n");
  std::printf("for per-second updates (Figure 1's intensive case).\n");
  return 0;
}
