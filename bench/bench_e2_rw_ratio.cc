// E2 — §2.2: "read:write ratios of over 1000:1" during inference.
//
// Runs the token-level inference engine over HBM for several models and
// workload profiles and reports the byte-level read:write ratio, split by
// stream. Sweep shows the ratio grows with context length (more KV re-read
// per appended vector).

#include <cstdio>

#include "src/common/table.h"
#include "src/mem/device_config.h"
#include "src/tier/tier_spec.h"
#include "src/workload/inference_engine.h"
#include "src/workload/request_generator.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

workload::EngineSummary RunWorkload(const workload::FoundationModelConfig& model,
                                    const workload::WorkloadProfile& profile, int requests) {
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
  workload::AnalyticBackend backend(hbm, model.weight_bytes());
  workload::EngineConfig config;
  config.model = model;
  config.max_batch = 16;
  config.compute_tflops = 1000.0;
  workload::InferenceEngine engine(config, &backend);

  workload::RequestGenerator generator(profile, 10.0, 7);
  std::vector<workload::InferenceRequest> reqs;
  for (int i = 0; i < requests; ++i) {
    reqs.push_back(generator.Next());
  }
  return engine.Run(reqs);
}

}  // namespace

int main() {
  std::printf("E2: decode/prefill byte traffic and read:write ratio (paper §2.2: >1000:1)\n\n");

  TablePrinter table({"model", "profile", "read bytes", "write bytes",
                      "R:W (decode)", "R:W (total)", "kv read", "kv write"});
  for (const auto& model : {workload::Llama2_70B(), workload::Llama2_70B_MHA()}) {
    for (const auto& profile :
         {workload::SplitwiseConversation(), workload::SplitwiseCoding()}) {
      const workload::EngineSummary summary = RunWorkload(model, profile, 24);
      table.AddRow({model.name, profile.name, FormatBytes(summary.total_read_bytes()),
                    FormatBytes(summary.total_write_bytes()),
                    FormatNumber(summary.decode_read_write_ratio()),
                    FormatNumber(summary.read_write_ratio()),
                    FormatBytes(summary.kv_read_bytes), FormatBytes(summary.kv_write_bytes)});
    }
  }
  table.Print("Read:write ratios by model and workload (decode phase vs. whole run)");

  // Context-length sweep: longer outputs -> more KV re-reads per write.
  TablePrinter sweep({"output tokens", "decode R:W ratio"});
  for (int output : {16, 64, 256, 1024}) {
    const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
    workload::AnalyticBackend backend(hbm, workload::Llama2_70B().weight_bytes());
    workload::EngineConfig config;
    config.model = workload::Llama2_70B();
    config.max_batch = 8;
    config.compute_tflops = 1000.0;
    workload::InferenceEngine engine(config, &backend);
    std::vector<workload::InferenceRequest> reqs;
    for (int i = 0; i < 8; ++i) {
      workload::InferenceRequest request;
      request.id = static_cast<std::uint64_t>(i + 1);
      request.prompt_tokens = 1024;
      request.output_tokens = output;
      reqs.push_back(request);
    }
    const auto summary = engine.Run(reqs);
    sweep.AddRow({std::to_string(output), FormatNumber(summary.decode_read_write_ratio())});
  }
  sweep.Print("Ratio vs. output length (fixed 1024-token prompts)");

  std::printf("Conclusion: the decode phase — the paper's claim — is read-dominated past\n");
  std::printf("1000:1 everywhere; prefill-heavy mixes (coding) lower the whole-run ratio\n");
  std::printf("but writes stay append-only.\n");
  std::printf("Despite the ratio, absolute write rates (GB/s) remain far above storage\n");
  std::printf("workloads — the endurance requirement of Figure 1.\n");
  return 0;
}
