// E3 — §2.1/§3: DRAM/HBM refresh burns power even when idle; MRM does not.
//
// Three views:
//  1. Analytic: steady-state refresh power of each DRAM-class preset and its
//     share of idle power.
//  2. Cycle-level: energy report of a simulated HBM channel set, idle for
//     one second, refresh on vs. off.
//  3. MRM: the same capacity held in an MRM device for one second.

#include <cstdio>

#include "src/cell/refresh_model.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/mem/memory_system.h"
#include "src/mrm/mrm_device.h"
#include "src/sim/simulator.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

}  // namespace

int main() {
  std::printf("E3: refresh housekeeping cost of DRAM-class memory vs. MRM (paper §2.1)\n\n");

  // --- View 1: analytic steady-state refresh power per device preset. ---
  TablePrinter analytic({"device", "capacity", "retention window", "refresh power",
                         "refresh J/day", "share of idle power"});
  for (const auto& config :
       {mem::HBM3Config(), mem::HBM3EConfig(), mem::LPDDR5XConfig(), mem::DDR5Config()}) {
    const cell::TechnologyProfile& profile = cell::GetTechnologyProfile(config.tech);
    cell::RefreshModelParams params;
    params.capacity_bytes = config.capacity_bytes();
    params.retention_window_s = profile.retention_s;
    params.row_bytes = config.row_bytes;
    params.energy_per_row_refresh_pj = config.energy.refresh_pj_per_row;
    params.background_power_w = config.energy.background_mw_per_bank * 1e-3 *
                                config.channels * config.ranks * config.banks_per_rank();
    const cell::RefreshCost cost = cell::ComputeRefreshCost(params);
    analytic.AddRow({config.name, FormatBytes(config.capacity_bytes()),
                     FormatSeconds(profile.retention_s),
                     FormatNumber(cost.refresh_power_w) + " W",
                     FormatNumber(cost.energy_per_day_j),
                     FormatNumber(cost.refresh_fraction_of_idle * 100.0) + " %"});
  }
  analytic.Print("Analytic steady-state refresh cost");

  // --- View 2: cycle-level HBM idle second, refresh on vs. off. ---
  auto simulate_idle_hbm = [](bool refresh) {
    sim::Simulator simulator(1e9);
    mem::MemorySystem system(&simulator, mem::HBM3EConfig());
    if (!refresh) {
      system.DisableRefresh();
    }
    simulator.ScheduleAt(simulator.SecondsToTicks(1.0), [] {});
    simulator.Run();
    return system.GetStats().energy;
  };
  const mem::EnergyReport with_refresh = simulate_idle_hbm(true);
  const mem::EnergyReport without_refresh = simulate_idle_hbm(false);

  TablePrinter idle({"configuration", "refresh J", "background J", "total J"});
  idle.AddRow({"HBM3e, refresh on", FormatNumber(with_refresh.refresh_pj * 1e-12),
               FormatNumber(with_refresh.background_pj * 1e-12),
               FormatNumber(with_refresh.total_pj() * 1e-12)});
  idle.AddRow({"HBM3e, refresh off (hypothetical)",
               FormatNumber(without_refresh.refresh_pj * 1e-12),
               FormatNumber(without_refresh.background_pj * 1e-12),
               FormatNumber(without_refresh.total_pj() * 1e-12)});
  idle.Print("One idle second of a 24 GiB HBM3e stack (cycle-level energy report)");

  // --- View 3: the same second on an idle MRM device (no refresh at all). ---
  sim::Simulator simulator(1e9);
  mrmcore::MrmDeviceConfig mrm_config;
  mrm_config.name = "mrm-stt";
  mrm_config.technology = cell::Technology::kSttMram;
  simulator.ScheduleAt(simulator.SecondsToTicks(1.0), [] {});
  mrmcore::MrmDevice device(&simulator, mrm_config);
  simulator.Run();
  std::printf("Idle MRM device (%s, retention-matched, no refresh): %s J in the same second\n\n",
              FormatBytes(mrm_config.capacity_bytes()).c_str(),
              FormatNumber(device.TotalEnergyPj() * 1e-12).c_str());

  const double saved =
      (with_refresh.total_pj() - without_refresh.total_pj()) / with_refresh.total_pj();
  std::printf("Refresh share of HBM idle energy: %.1f%% — energy MRM's retention matching\n",
              saved * 100.0);
  std::printf("eliminates outright (paper: 'retention becomes a cornerstone of device\n");
  std::printf("power management').\n");
  return 0;
}
