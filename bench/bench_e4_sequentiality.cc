// E4 — §2.2: "memory accesses are sequential and predictable".
//
// Records the engine's extent trace for several workloads and quantifies
// sequentiality of reads, append-only-ness of writes, and the inter-step
// stability of the weight-page read order (the property that lets the
// virtual->physical mapping be static).

#include <cstdio>

#include "src/common/table.h"
#include "src/mem/device_config.h"
#include "src/tier/tier_spec.h"
#include "src/workload/inference_engine.h"
#include "src/workload/request_generator.h"
#include "src/workload/trace.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

workload::PredictabilityReport TraceWorkload(const workload::WorkloadProfile& profile,
                                             int requests, std::uint64_t* reads,
                                             std::uint64_t* writes) {
  const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
  workload::AnalyticBackend backend(hbm, workload::Llama2_70B().weight_bytes());
  workload::EngineConfig config;
  config.model = workload::Llama2_70B();
  config.max_batch = 8;
  config.compute_tflops = 1000.0;
  workload::TraceSink sink;
  workload::InferenceEngine engine(config, &backend, &sink);
  workload::RequestGenerator generator(profile, 8.0, 11);
  std::vector<workload::InferenceRequest> reqs;
  for (int i = 0; i < requests; ++i) {
    reqs.push_back(generator.Next());
  }
  engine.Run(reqs);
  const auto report = workload::AnalyzeTrace(sink.extents());
  *reads = report.read_bytes;
  *writes = report.write_bytes;
  return report;
}

}  // namespace

int main() {
  std::printf("E4: access-pattern predictability of foundation-model inference (§2.2)\n\n");

  TablePrinter table({"workload", "read sequentiality", "write append frac",
                      "overwrite frac", "step-order stability"});
  for (const auto& profile : {workload::SplitwiseConversation(), workload::SplitwiseCoding(),
                              workload::LongContextSummarization()}) {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    const auto report = TraceWorkload(profile, 16, &reads, &writes);
    table.AddRow({profile.name, FormatNumber(report.read_sequential_fraction),
                  FormatNumber(report.write_append_fraction),
                  FormatNumber(report.overwrite_fraction),
                  FormatNumber(report.step_order_stability)});
  }
  table.Print("Predictability metrics (1.0 = perfectly sequential/append-only/stable)");

  std::printf("Reading: weight/KV reads are overwhelmingly sequential; KV writes are pure\n");
  std::printf("appends; the weight-page read order repeats exactly every decode step —\n");
  std::printf("the workload a block-interface, statically-mapped MRM wants (paper §2.2/§4).\n");
  std::printf("Only activations overwrite in place, which is why they stay in HBM.\n");
  return 0;
}
