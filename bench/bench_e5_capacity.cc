// E5 — §2: data-structure scaling claims.
//
//  * Weights: 250 GB to over 1 TB for >500B-parameter models.
//  * Self-attention vector: "a few MBs" at most (MHA-class models).
//  * KV cache: grows to "a few tens of GBs" at the context limit.
//  * Activations: an order of magnitude smaller than weights / KV cache.

#include <cstdio>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/workload/model_config.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

}  // namespace

int main() {
  std::printf("E5: memory capacity anatomy per model (paper §2)\n\n");

  TablePrinter table({"model", "params", "weights", "KV vector/token",
                      "KV cache @ max context", "activations (batch 32)"});
  for (const auto& model : workload::AllModels()) {
    table.AddRow({model.name, FormatNumber(static_cast<double>(model.parameters)),
                  FormatBytes(model.weight_bytes()), FormatBytes(model.kv_bytes_per_token()),
                  FormatBytes(model.kv_cache_bytes(
                      static_cast<std::uint64_t>(model.max_context_tokens))),
                  FormatBytes(model.activation_bytes(32))});
  }
  table.Print("Capacity of the three inference data structures");

  TablePrinter claims({"paper claim", "model checked", "value", "holds?"});
  {
    const auto model = workload::Frontier_1T();
    const std::uint64_t weights = model.weight_bytes();
    claims.AddRow({"weights 250GB..1TB+ for >500B params", model.name, FormatBytes(weights),
                   (weights >= 250ull * kGB) ? "yes" : "NO"});
  }
  {
    const auto model = workload::Llama2_70B_MHA();
    const std::uint64_t vector = model.kv_bytes_per_token();
    claims.AddRow({"vector at most a few MBs", model.name, FormatBytes(vector),
                   (vector >= 1ull * kMiB && vector <= 8ull * kMiB) ? "yes" : "NO"});
  }
  {
    const auto model = workload::Llama2_70B_MHA();
    const std::uint64_t kv =
        model.kv_cache_bytes(static_cast<std::uint64_t>(model.max_context_tokens));
    claims.AddRow({"KV cache grows to tens of GBs", model.name, FormatBytes(kv),
                   (kv >= 10ull * kGiB && kv <= 100ull * kGiB) ? "yes" : "NO"});
  }
  {
    const auto model = workload::Llama2_70B();
    const std::uint64_t act = model.activation_bytes(32);
    const bool holds = act * 10 <= model.weight_bytes() &&
                       act * 5 <= model.kv_cache_bytes(2048);
    claims.AddRow({"activations ~10x smaller", model.name, FormatBytes(act),
                   holds ? "yes" : "NO"});
  }
  claims.Print("Quantitative checks of the paper's capacity claims");
  return 0;
}
