// E6 — §3: "matching retention to the lifetime of the data makes refresh,
// deletion, or wear-leveling unnecessary."
//
// Compares the housekeeping cost of holding a KV-cache-like churn workload
// (append, hold for a lifetime, delete) on three substrates:
//   DRAM  — pays continuous refresh;
//   Flash — pays GC write amplification + erases (retention too long);
//   MRM   — retention matched to lifetime: no refresh, no GC, cost-free
//           zone resets; scrub only if ECC demands it earlier.

#include <cstdio>
#include <vector>

#include "src/cell/refresh_model.h"
#include "src/common/rng.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/mem/flash.h"
#include "src/mrm/control_plane.h"
#include "src/sim/simulator.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

constexpr std::uint64_t kBlockBytes = 64 * 1024;
constexpr double kDataLifetimeS = 600.0;   // KV blocks live ~10 minutes
constexpr double kExperimentS = 3600.0;    // one simulated hour
constexpr int kBlocksPerBatch = 64;        // appended every kBatchPeriodS
constexpr double kBatchPeriodS = 10.0;

struct HousekeepingResult {
  double host_bytes = 0.0;
  double housekeeping_bytes = 0.0;  // extra device writes (GC, scrub)
  double housekeeping_j = 0.0;      // refresh/GC/scrub energy
  double total_j = 0.0;
};

// MRM under the control plane: lifetimes declared, retention matched.
HousekeepingResult RunMrm(bool retention_matched) {
  sim::Simulator simulator(1e9);
  mrmcore::MrmDeviceConfig config;
  config.technology = cell::Technology::kSttMram;
  config.channels = 8;
  config.zones = 256;
  config.zone_blocks = 64;
  config.block_bytes = kBlockBytes;
  mrmcore::MrmDevice device(&simulator, config);
  mrmcore::ControlPlaneOptions options;
  options.scrub_period_s = 60.0;
  if (!retention_matched) {
    // SCM-style: everything written at the 10-year point; ECC-safe age then
    // far exceeds the experiment, so no scrub either — but writes are the
    // expensive non-volatile kind (captured in device write energy).
    options.retention_policy = mrmcore::MakeFixedPolicy(10.0 * kYear);
  }
  mrmcore::ControlPlane plane(&simulator, &device, options);

  std::vector<std::pair<double, mrmcore::LogicalId>> live;  // (expiry, id)
  double host_bytes = 0.0;
  for (double t = 0.0; t < kExperimentS; t += kBatchPeriodS) {
    simulator.RunUntil(simulator.SecondsToTicks(t));
    while (!live.empty() && live.front().first <= t) {
      plane.Free(live.front().second);
      live.erase(live.begin());
    }
    for (int i = 0; i < kBlocksPerBatch; ++i) {
      auto id = plane.Append(kDataLifetimeS);
      if (id.ok()) {
        live.emplace_back(t + kDataLifetimeS, id.value());
        host_bytes += kBlockBytes;
      }
    }
  }
  simulator.RunUntil(simulator.SecondsToTicks(kExperimentS));

  HousekeepingResult result;
  result.host_bytes = host_bytes;
  result.housekeeping_bytes = static_cast<double>(plane.stats().scrub_bytes);
  // Housekeeping energy: the share of write energy due to scrubbing.
  const double total_written = static_cast<double>(device.stats().bytes_written);
  const double scrub_share =
      total_written > 0.0 ? result.housekeeping_bytes / total_written : 0.0;
  result.housekeeping_j = device.stats().write_energy_pj * scrub_share * 1e-12;
  result.total_j = device.TotalEnergyPj() * 1e-12;
  return result;
}

// Flash FTL under the same churn: random-ish block placement, no TRIM of
// expired data until overwritten (pessimistic but typical), GC pays.
HousekeepingResult RunFlash(bool trim) {
  mem::FlashConfig config;
  config.page_bytes = kBlockBytes;
  config.pages_per_block = 64;
  // Sized so the hour of churn is ~4 drive writes: GC reaches steady state.
  config.blocks = 96;
  config.overprovision = 0.1;
  config.pe_endurance = 1e5;
  config.erase_nj_per_block = 5e5;  // ~0.5 mJ block erase (realistic NAND)
  mem::FlashDevice device(config);

  const std::uint64_t logical_pages = config.logical_pages();
  Rng rng(17);
  std::vector<std::pair<double, std::uint64_t>> live;
  double host_bytes = 0.0;
  for (double t = 0.0; t < kExperimentS; t += kBatchPeriodS) {
    while (!live.empty() && live.front().first <= t) {
      if (trim) {
        device.TrimPage(live.front().second);
      }
      live.erase(live.begin());
    }
    for (int i = 0; i < kBlocksPerBatch; ++i) {
      const std::uint64_t page = rng.NextBounded(logical_pages);
      if (device.WritePage(page).ok()) {
        live.emplace_back(t + kDataLifetimeS, page);
        host_bytes += kBlockBytes;
      }
    }
  }
  HousekeepingResult result;
  result.host_bytes = host_bytes;
  result.housekeeping_bytes =
      static_cast<double>(device.stats().gc_relocations) * config.page_bytes;
  // GC relocation programs + erases are the housekeeping energy.
  const double erase_j = static_cast<double>(device.stats().erases) *
                         config.erase_nj_per_block * 1e-9;
  const double reloc_j = result.housekeeping_bytes * 8.0 * config.program_pj_per_bit * 1e-12;
  result.housekeeping_j = erase_j + reloc_j;
  result.total_j = device.stats().energy_pj * 1e-12;
  return result;
}

// DRAM: no write amplification, but the resident working set refreshes
// continuously for the whole hour.
HousekeepingResult RunDram() {
  HousekeepingResult result;
  const double resident_bytes =
      kBlocksPerBatch * kBlockBytes * (kDataLifetimeS / kBatchPeriodS);
  cell::RefreshModelParams params;
  params.capacity_bytes = static_cast<std::uint64_t>(resident_bytes);
  params.retention_window_s = 0.032;
  params.row_bytes = 1024;
  params.energy_per_row_refresh_pj = 230.0;
  const cell::RefreshCost cost = cell::ComputeRefreshCost(params);
  result.host_bytes =
      kBlocksPerBatch * kBlockBytes * (kExperimentS / kBatchPeriodS);
  result.housekeeping_bytes = cost.refreshes_per_second * kExperimentS * params.row_bytes;
  result.housekeeping_j = cost.refresh_power_w * kExperimentS;
  result.total_j = result.housekeeping_j;  // idle-dominated comparison
  return result;
}

}  // namespace

int main() {
  std::printf("E6: housekeeping cost of a KV-churn workload (1 h, %.0f-minute lifetimes)\n",
              kDataLifetimeS / 60.0);
  std::printf("on DRAM (refresh), flash FTL (GC/erase) and MRM (retention-matched)\n\n");

  TablePrinter table({"substrate", "host writes", "housekeeping writes", "write amp",
                      "housekeeping J"});
  {
    const HousekeepingResult dram = RunDram();
    table.AddRow({"DRAM (refresh)", FormatBytes(static_cast<std::uint64_t>(dram.host_bytes)),
                  FormatBytes(static_cast<std::uint64_t>(dram.housekeeping_bytes)),
                  "- (refresh, not writes)", FormatNumber(dram.housekeeping_j)});
  }
  {
    const HousekeepingResult flash = RunFlash(false);
    table.AddRow({"NAND FTL (no TRIM)",
                  FormatBytes(static_cast<std::uint64_t>(flash.host_bytes)),
                  FormatBytes(static_cast<std::uint64_t>(flash.housekeeping_bytes)),
                  FormatNumber(1.0 + flash.housekeeping_bytes / flash.host_bytes),
                  FormatNumber(flash.housekeeping_j)});
  }
  {
    const HousekeepingResult flash = RunFlash(true);
    table.AddRow({"NAND FTL (TRIM on expiry)",
                  FormatBytes(static_cast<std::uint64_t>(flash.host_bytes)),
                  FormatBytes(static_cast<std::uint64_t>(flash.housekeeping_bytes)),
                  FormatNumber(1.0 + flash.housekeeping_bytes / flash.host_bytes),
                  FormatNumber(flash.housekeeping_j)});
  }
  {
    const HousekeepingResult mrm = RunMrm(true);
    table.AddRow({"MRM (retention matched)",
                  FormatBytes(static_cast<std::uint64_t>(mrm.host_bytes)),
                  FormatBytes(static_cast<std::uint64_t>(mrm.housekeeping_bytes)),
                  FormatNumber(1.0 + mrm.housekeeping_bytes / mrm.host_bytes),
                  FormatNumber(mrm.housekeeping_j)});
  }
  table.Print("Housekeeping comparison");

  std::printf("Shape check (paper §3): DRAM pays continuous refresh energy, flash pays\n");
  std::printf("GC write amplification and erases, MRM with retention ~= lifetime pays\n");
  std::printf("(almost) nothing — expired zones reset for free.\n");
  return 0;
}
