// E7 — §4 Dynamically Configurable Memory ablation.
//
// Same KV-churn workload on the same MRM device under three retention
// policies:
//   fixed-10y   : SCM-style, every write at the non-volatile point;
//   fixed-24h   : one compromise retention for all data;
//   DCM         : per-write retention = lifetime x margin.
//
// Reports write energy, write time, scrub traffic and endurance headroom.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/mrm/control_plane.h"
#include "src/sim/simulator.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

struct AblationRow {
  std::string policy;
  double write_energy_j = 0.0;
  double scrub_bytes = 0.0;
  double drops = 0.0;
  double mean_endurance_margin = 0.0;  // endurance at written point / wear
  double total_j = 0.0;
};

AblationRow RunPolicy(const std::string& name, mrmcore::RetentionPolicy policy) {
  sim::Simulator simulator(1e9);
  mrmcore::MrmDeviceConfig config;
  config.technology = cell::Technology::kSttMram;
  config.channels = 8;
  config.zones = 256;
  config.zone_blocks = 64;
  config.block_bytes = 64 * 1024;
  mrmcore::MrmDevice device(&simulator, config);
  mrmcore::ControlPlaneOptions options;
  options.scrub_period_s = 60.0;
  options.retention_policy = std::move(policy);
  mrmcore::ControlPlane plane(&simulator, &device, options);

  // Mixed lifetimes: short-lived KV (10 min) and longer-lived weights-like
  // blocks (the whole run).
  std::vector<std::pair<double, mrmcore::LogicalId>> live;
  constexpr double kRunS = 3600.0;
  for (double t = 0.0; t < kRunS; t += 10.0) {
    simulator.RunUntil(simulator.SecondsToTicks(t));
    while (!live.empty() && live.front().first <= t) {
      plane.Free(live.front().second);
      live.erase(live.begin());
    }
    for (int i = 0; i < 32; ++i) {
      auto id = plane.Append(600.0);
      if (id.ok()) {
        live.emplace_back(t + 600.0, id.value());
      }
    }
  }
  simulator.RunUntil(simulator.SecondsToTicks(kRunS));

  AblationRow row;
  row.policy = name;
  row.write_energy_j = device.stats().write_energy_pj * 1e-12;
  row.scrub_bytes = static_cast<double>(plane.stats().scrub_bytes);
  row.drops = static_cast<double>(plane.stats().drops);
  row.total_j = device.TotalEnergyPj() * 1e-12;
  // Endurance margin at the policy's KV operating point.
  const cell::OperatingPoint point =
      device.tradeoff().AtRetention(plane.RetentionForLifetime(600.0));
  // Wear per block over 5 years at this churn: writes/block/hour x 5y.
  const double writes_per_hour =
      static_cast<double>(device.stats().blocks_written) /
      static_cast<double>(config.total_blocks());
  const double five_year_wear = writes_per_hour * 5.0 * 365.0 * 24.0;
  row.mean_endurance_margin =
      five_year_wear > 0.0 ? point.endurance_cycles / five_year_wear : 0.0;
  return row;
}

}  // namespace

int main() {
  std::printf("E7: DCM retention-policy ablation on STT-MRAM MRM (paper §4)\n");
  std::printf("1-hour KV churn, 10-minute data lifetimes\n\n");

  std::vector<AblationRow> rows;
  rows.push_back(RunPolicy("fixed 10 y (SCM-style)", mrmcore::MakeFixedPolicy(10.0 * kYear)));
  rows.push_back(RunPolicy("fixed 24 h", mrmcore::MakeFixedPolicy(kDay)));
  rows.push_back(RunPolicy("two-class (1h / 30d)",
                           mrmcore::MakeTwoClassPolicy(kHour, 30.0 * kDay, 2.0 * kHour)));
  rows.push_back(RunPolicy("DCM (lifetime x 1.25)", mrmcore::MakeDcmPolicy(1.25, 120.0)));

  TablePrinter table({"policy", "write energy J", "scrub bytes", "data drops",
                      "5y endurance margin", "total J"});
  for (const auto& row : rows) {
    table.AddRow({row.policy, FormatNumber(row.write_energy_j),
                  FormatBytes(static_cast<std::uint64_t>(row.scrub_bytes)),
                  FormatNumber(row.drops), FormatNumber(row.mean_endurance_margin),
                  FormatNumber(row.total_j)});
  }
  table.Print("Retention policy ablation");

  const double saving = 1.0 - rows.back().write_energy_j / rows.front().write_energy_j;
  std::printf("DCM vs. fixed-10y: %.0f%% lower write energy and a ~%sx endurance margin\n",
              saving * 100.0, FormatNumber(rows.back().mean_endurance_margin /
                                           std::max(rows.front().mean_endurance_margin, 1e-12))
                                  .c_str());
  std::printf("gain — right-provisioning retention is the mechanism the paper proposes.\n");
  return 0;
}
