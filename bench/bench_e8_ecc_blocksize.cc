// E8 — §4: "a large block-based MRM interface means that there is scope for
// considering error correction techniques that operate on larger code words
// and have less overhead" (Dolinar-Divsalar'98).
//
// Sweeps codeword size at fixed RBER and reliability target, reporting the
// parity overhead; then shows the scrub-interval side: stronger/larger codes
// let data age longer before a scrub, cutting scrub bandwidth.

#include <cstdio>
#include <string>

#include "src/cell/tradeoff.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/mrm/ecc.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

}  // namespace

int main() {
  std::printf("E8: ECC overhead vs. codeword size, and the scrub-interval payoff (§4)\n\n");

  const double rber = 1e-4;         // raw bit error rate at end of retention
  const double target_uber = 1e-15;  // JEDEC-class reliability

  TablePrinter table({"codeword (payload)", "t (correctable)", "parity bits",
                      "overhead %", "codeword fail prob"});
  for (std::uint64_t payload_bytes :
       {64ull, 256ull, 1024ull, 4096ull, 16384ull, 65536ull, 262144ull}) {
    const std::uint64_t bits = payload_bytes * 8;
    const mrmcore::EccScheme scheme =
        mrmcore::DesignEcc(bits, rber, target_uber * static_cast<double>(bits));
    table.AddRow({FormatBytes(payload_bytes), std::to_string(scheme.t),
                  std::to_string(scheme.parity_bits),
                  FormatNumber(scheme.overhead * 100.0),
                  FormatNumber(scheme.codeword_failure_prob)});
  }
  table.Print("Parity overhead vs. codeword size (RBER 1e-4, UBER target 1e-15)");

  // Scrub-interval view at EQUAL parity overhead (2%): bigger codewords
  // convert the same parity budget into more correctable errors per word,
  // which lets data age longer before a scrub is forced.
  auto tradeoff = cell::MakeSttMramTradeoff();
  TablePrinter scrub({"codeword (payload)", "t @ 2% overhead", "ECC-safe age",
                      "scrub bw for 1 TiB resident"});
  const double overhead_budget = 0.02;
  for (std::uint64_t payload_bytes : {64ull, 512ull, 4096ull, 65536ull, 262144ull}) {
    const std::uint64_t bits = payload_bytes * 8;
    // Invert the BCH cost: parity(t) = t * m; spend the whole budget.
    const std::uint64_t m = mrmcore::BchParityBits(bits, 1);
    const std::uint64_t t = static_cast<std::uint64_t>(
        overhead_budget * static_cast<double>(bits) / static_cast<double>(m));
    mrmcore::EccScheme scheme;
    scheme.payload_bits = bits;
    scheme.t = t;
    scheme.parity_bits = mrmcore::BchParityBits(bits, t);
    scheme.overhead =
        static_cast<double>(scheme.parity_bits) / static_cast<double>(bits);
    const double safe_age = mrmcore::MaxSafeAge(*tradeoff, kDay, scheme, target_uber);
    const double scrub_bw =
        safe_age > 0.0 ? static_cast<double>(kTiB) / safe_age : 0.0;
    scrub.AddRow({FormatBytes(payload_bytes), std::to_string(t), FormatSeconds(safe_age),
                  FormatBytes(static_cast<std::uint64_t>(scrub_bw)) + "/s"});
  }
  scrub.Print("Scrub deadline at equal 2% parity budget (24 h programmed retention)");

  std::printf("Shape check: overhead falls monotonically with codeword size at equal\n");
  std::printf("reliability, and at equal parity budget larger codewords correct more\n");
  std::printf("errors per word — extending the ECC-safe age and cutting scrub bandwidth\n");
  std::printf("(paper: 'larger code words... less overhead').\n");
  return 0;
}
