// E9 — §4: retention-aware tiering. Serving Llama2-70B on:
//   A. HBM only (8 stacks)                      — the status quo;
//   B. HBM (8) + LPDDR cold KV                  — the "cheap capacity" fix the
//                                                 paper notes does not improve
//                                                 read energy;
//   C. small HBM (2) + MRM weights & cold KV    — the paper's proposal;
//   D. C with scrub modelling on the MRM tier   — includes control-plane cost.
//
// Reports tokens/s, energy/token, memory cost and tokens per memory dollar.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/analysis/tco.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/mem/device_config.h"
#include "src/tier/tier_spec.h"
#include "src/tier/tiered_backend.h"
#include "src/workload/inference_engine.h"
#include "src/workload/request_generator.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

std::vector<workload::InferenceRequest> Workload() {
  // Long-context mix: large KV caches are what make the cold tier's read
  // bandwidth matter (the paper's LPDDR critique).
  workload::RequestGenerator generator(workload::LongContextSummarization(), 6.0, 21);
  std::vector<workload::InferenceRequest> requests;
  for (int i = 0; i < 24; ++i) {
    workload::InferenceRequest request = generator.Next();
    request.output_tokens = std::min(request.output_tokens, 128);
    requests.push_back(request);
  }
  return requests;
}

workload::EngineConfig Engine() {
  workload::EngineConfig config;
  config.model = workload::Llama2_70B();
  config.max_batch = 16;
  config.compute_tflops = 1000.0;
  return config;
}

struct Row {
  std::string name;
  workload::EngineSummary summary;
  analysis::TcoReport tco;
};

Row RunConfig(const std::string& name, std::vector<workload::TierSpec> tiers,
              tier::Placement placement, tier::TieredBackendOptions options = {}) {
  tier::TieredBackend backend(tiers, placement, workload::Llama2_70B().weight_bytes(),
                              options);
  workload::InferenceEngine engine(Engine(), &backend);
  Row row;
  row.name = name;
  row.summary = engine.Run(Workload());
  row.tco = analysis::ComputeTco(row.summary, tiers);
  return row;
}

}  // namespace

int main() {
  std::printf("E9: retention-aware tiering — HBM vs. HBM+LPDDR vs. HBM+MRM (§4)\n");
  std::printf("Llama2-70B, long-context summarization mix, 24 requests\n\n");

  const workload::TierSpec hbm8 = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
  const workload::TierSpec hbm2 = tier::TierSpecFromDevice(mem::HBM3EConfig(), 2);
  const workload::TierSpec lpddr = tier::TierSpecFromDevice(mem::LPDDR5XConfig(), 16);

  mrmcore::MrmDeviceConfig mrm_config;
  mrm_config.name = "mrm-rram";
  mrm_config.technology = cell::Technology::kRram;  // dense, cheap crossbar
  mrm_config.channels = 96;
  mrm_config.channel_read_bw_bytes_per_s = 100e9;  // 9.6 TB/s aggregate reads
  mrm_config.zones = 1024;                          // 256 GiB device
  const workload::TierSpec mrm = tier::TierSpecFromMrm(mrm_config, 1, 6.0 * kHour);

  std::vector<Row> rows;
  {
    tier::Placement placement;  // everything on tier 0
    rows.push_back(RunConfig("A: HBM x8 only", {hbm8}, placement));
  }
  {
    tier::Placement placement;
    placement.kv_cold_tier = 1;
    placement.kv_hot_fraction = 0.15;
    rows.push_back(RunConfig("B: HBM x8 + LPDDR cold KV", {hbm8, lpddr}, placement));
  }
  {
    tier::Placement placement;
    placement.weights_tier = 1;
    placement.kv_cold_tier = 1;
    placement.kv_hot_fraction = 0.15;
    rows.push_back(RunConfig("C: HBM x2 + MRM (weights+cold KV)", {hbm2, mrm}, placement));
  }
  {
    tier::Placement placement;
    placement.weights_tier = 1;
    placement.kv_cold_tier = 1;
    placement.kv_hot_fraction = 0.15;
    tier::TieredBackendOptions options;
    options.scrub_tier = 1;
    options.scrub_safe_age_s = 3.0 * kHour;  // ECC-driven scrub deadline
    rows.push_back(
        RunConfig("D: C + scrub cost on MRM", {hbm2, mrm}, placement, options));
  }

  TablePrinter table({"configuration", "tokens/s", "mJ/token", "memory cost $",
                      "tokens / memory-$", "memory-bound frac"});
  for (const auto& row : rows) {
    table.AddRow({row.name, FormatNumber(row.summary.decode_tokens_per_s()),
                  FormatNumber(row.summary.energy_per_decode_token_j() * 1e3),
                  FormatNumber(row.tco.memory_cost_dollars),
                  FormatNumber(row.tco.tokens_per_memory_dollar),
                  FormatNumber(row.summary.memory_bound_fraction())});
  }
  table.Print("Tiering comparison");

  std::printf("Shape check (paper §2/§4): LPDDR-offload cuts cost but drags bandwidth\n");
  std::printf("(tokens/s) and does not improve read energy; the MRM configuration keeps\n");
  std::printf("HBM-class tokens/s at a fraction of the memory cost and energy, and the\n");
  std::printf("scrub overhead the software control plane adds is small.\n");
  return 0;
}
