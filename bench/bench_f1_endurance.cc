// F1 — Reproduces Figure 1 of the paper: endurance requirements for KV
// cache and model weights vs. endurance of memory technologies.
//
// The paper's two observations must emerge:
//   1) HBM is vastly overprovisioned on endurance;
//   2) existing SCM devices do not meet the requirements but the
//      underlying technologies have the potential to do so.

#include <cmath>
#include <cstdio>
#include <string>

#include "src/analysis/endurance.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace {

using mrm::FormatNumber;
using mrm::TablePrinter;
using mrm::analysis::BuildFigure1;
using mrm::analysis::Figure1Entry;
using mrm::analysis::Figure1Params;
using mrm::analysis::JudgeEndurance;
using mrm::analysis::KvWritesPerCell;

const char* KindName(Figure1Entry::Kind kind) {
  switch (kind) {
    case Figure1Entry::Kind::kRequirement:
      return "requirement";
    case Figure1Entry::Kind::kProductEndurance:
      return "product";
    case Figure1Entry::Kind::kTechnologyPotential:
      return "potential";
  }
  return "?";
}

// An ASCII bar over the log10 scale so the figure's shape is visible.
std::string LogBar(double cycles) {
  const int length = static_cast<int>(std::log10(std::max(cycles, 1.0)));
  return std::string(static_cast<std::size_t>(length), '#');
}

}  // namespace

int main() {
  std::printf("Figure 1: workload endurance requirements (5-year deployment) vs.\n");
  std::printf("endurance of memory technologies (product / demonstrated potential)\n\n");

  const Figure1Params params;
  const auto entries = BuildFigure1(params);

  TablePrinter table({"bar (log10 writes/cell)", "kind", "entry", "writes/cell"});
  for (const auto& entry : entries) {
    table.AddRow({LogBar(entry.cycles), KindName(entry.kind), entry.label,
                  FormatNumber(entry.cycles)});
  }
  table.Print("Figure 1 data");

  // Paper-stated conclusions, checked quantitatively.
  const double kv_requirement = KvWritesPerCell(params.kv);
  std::printf("KV-cache endurance requirement: %s writes/cell over 5 years\n",
              FormatNumber(kv_requirement).c_str());
  std::printf("  (model %s, vector %s/token, %.0f tok/s prefill + %.0f tok/s decode,\n",
              params.kv.model.name.c_str(),
              mrm::FormatBytes(params.kv.model.kv_bytes_per_token()).c_str(),
              params.kv.prefill_tokens_per_s, params.kv.decode_tokens_per_s);
  std::printf("   %s KV region, perfect wear spreading)\n\n",
              mrm::FormatBytes(params.kv.kv_region_bytes).c_str());

  TablePrinter verdicts({"technology", "product meets KV?", "potential meets KV?",
                         "product margin", "potential margin"});
  for (mrm::cell::Technology tech :
       {mrm::cell::Technology::kHbm, mrm::cell::Technology::kSttMram,
        mrm::cell::Technology::kPcm, mrm::cell::Technology::kRram,
        mrm::cell::Technology::kNandSlc, mrm::cell::Technology::kNandTlc}) {
    const auto verdict = JudgeEndurance(tech, kv_requirement);
    verdicts.AddRow({mrm::cell::TechnologyName(tech), verdict.product_meets ? "yes" : "NO",
                     verdict.potential_meets ? "yes" : "NO",
                     FormatNumber(verdict.product_margin),
                     FormatNumber(verdict.potential_margin)});
  }
  verdicts.Print("Endurance verdicts at the KV-cache requirement");

  std::printf("Paper observation 1 (HBM vastly overprovisioned): margin %s x\n",
              FormatNumber(JudgeEndurance(mrm::cell::Technology::kHbm, kv_requirement)
                               .product_margin)
                  .c_str());
  std::printf(
      "Paper observation 2 (SCM products miss, technologies meet): PCM %s/%s, RRAM %s/%s\n",
      JudgeEndurance(mrm::cell::Technology::kPcm, kv_requirement).product_meets ? "meet" : "miss",
      JudgeEndurance(mrm::cell::Technology::kPcm, kv_requirement).potential_meets ? "meet"
                                                                                  : "miss",
      JudgeEndurance(mrm::cell::Technology::kRram, kv_requirement).product_meets ? "meet"
                                                                                 : "miss",
      JudgeEndurance(mrm::cell::Technology::kRram, kv_requirement).potential_meets ? "meet"
                                                                                   : "miss");
  return 0;
}
