// F2 — Fault injection sweep (DESIGN.md §10): availability and goodput of
// the MRM control plane under deterministic fault injection, as a function
// of fault rate × ECC strength.
//
// Each MRM point runs a closed-loop KV-churn workload (append with a
// lifetime, read while live, free on expiry) against a device whose reads
// pass the ECC decode model while the injector fires transient bit errors,
// stuck-at blocks and whole-zone failures. The control plane recovers:
// bounded read-retry, emergency scrub, zone retirement. Expected shape:
// availability degrades smoothly as the fault rate rises and is restored by
// a stronger code (larger ecc_t); capacity shrinks gracefully as zones
// retire.
//
// Two fabric points exercise the mem::MemorySystem stall / dropped-completion
// paths serially and on a sharded worker pool; their metrics must be
// bit-identical at any --sim-threads (the CI fault-smoke job diffs the JSON
// of a 1-thread and a 4-thread run).
//
// Fault overrides: --fault-seed=N picks the injector seed; the MRMSIM_FAULTS
// spec (see README "Fault injection") overrides any other rate. Runs through
// BenchRunner and lands in BENCH_f2_fault_sweep.json.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/common/bench_runner.h"
#include "src/check/attach.h"
#include "src/common/table.h"
#include "src/fault/fault_config.h"
#include "src/fault/fault_injector.h"
#include "src/mem/memory_system.h"
#include "src/mrm/control_plane.h"
#include "src/sim/simulator.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

constexpr std::uint64_t kBlockBytes = 64 * 1024;
constexpr double kDataLifetimeS = 600.0;  // KV blocks live ~10 minutes
constexpr double kExperimentS = 1800.0;   // half a simulated hour per point
constexpr int kBlocksPerBatch = 32;       // appended every kBatchPeriodS
constexpr int kReadsPerBatch = 48;        // live blocks re-read every batch
constexpr double kBatchPeriodS = 10.0;

// The sweep's fault axis: `rate` scales every MRM injection path at once
// (transient RBER directly; stuck-at and zone failure at derived rates kept
// rare enough that the read path, not catastrophic loss, dominates).
fault::FaultConfig MrmFaultConfig(double rate, const fault::FaultConfig& base) {
  fault::FaultConfig config = base;
  config.transient_rber = rate;
  config.stuck_block_prob = rate;
  config.stuck_wear_fraction = 0.0;  // wear-independent in the sweep
  config.zone_failure_prob = rate * 0.1;
  return config;
}

struct ChurnResult {
  std::uint64_t events = 0;
  std::uint64_t appends_ok = 0;
  std::uint64_t appends_failed = 0;
  std::uint64_t reads_ok = 0;
  std::uint64_t reads_lost = 0;
  double sim_seconds = 0.0;
  mrmcore::ControlPlaneStats plane;
  mrmcore::MrmDeviceStats device;
  fault::FaultStats faults;
  double usable_capacity = 1.0;
};

ChurnResult RunMrmChurn(double rate, int ecc_t, const fault::FaultConfig& base) {
  sim::Simulator simulator(1e9);
  mrmcore::MrmDeviceConfig config;
  config.technology = cell::Technology::kSttMram;
  config.channels = 4;
  config.zones = 64;
  config.zone_blocks = 32;
  config.block_bytes = kBlockBytes;
  config.ecc_t = ecc_t;
  config.ecc_codeword_bits = 4096;  // 512 B codewords: per-block UE rate is smooth
  mrmcore::MrmDevice device(&simulator, config);
  mrmcore::ControlPlaneOptions options;
  options.scrub_period_s = 60.0;
  mrmcore::ControlPlane plane(&simulator, &device, options);

  fault::FaultInjector injector(MrmFaultConfig(rate, base));
  plane.SetFaultInjector(&injector);
  // In a checked build with MRMSIM_CHECK set, audit the device contract and
  // fault conservation (passive: measured stats are unchanged).
  check::ScopedMrmChecker device_checker(&device);
  check::ScopedFaultChecker fault_checker(&injector);

  ChurnResult result;
  std::vector<std::pair<double, mrmcore::LogicalId>> live;  // (expiry, id)
  std::size_t read_cursor = 0;
  for (double t = 0.0; t < kExperimentS; t += kBatchPeriodS) {
    simulator.RunUntil(simulator.SecondsToTicks(t));
    while (!live.empty() && live.front().first <= t) {
      if (plane.Alive(live.front().second)) {
        plane.Free(live.front().second);
      }
      live.erase(live.begin());
    }
    for (int i = 0; i < kBlocksPerBatch; ++i) {
      auto id = plane.Append(kDataLifetimeS);
      if (id.ok()) {
        live.emplace_back(t + kDataLifetimeS, id.value());
        ++result.appends_ok;
      } else {
        ++result.appends_failed;
      }
    }
    for (int i = 0; i < kReadsPerBatch && !live.empty(); ++i) {
      read_cursor = (read_cursor + 1) % live.size();
      const Status issued = plane.Read(live[read_cursor].second, [&result](bool ok) {
        if (ok) {
          ++result.reads_ok;
        } else {
          ++result.reads_lost;
        }
      });
      if (!issued.ok()) {
        ++result.reads_lost;  // already dropped (zone failure before read)
      }
    }
  }
  // Drain in-flight reads / retries / scrubs; bounded because the periodic
  // scrub task reschedules itself forever (Run() would never return).
  simulator.RunUntil(simulator.SecondsToTicks(kExperimentS + kBatchPeriodS));

  result.events = simulator.events_executed();
  result.sim_seconds = simulator.now_seconds();
  result.plane = plane.stats();
  result.device = device.stats();
  result.faults = injector.stats();
  result.usable_capacity = plane.UsableCapacityFraction();
  return result;
}

// Fabric fault point: a sequential read stream through mem::MemorySystem
// with stall / dropped-completion injection, at a given worker-pool size and
// speculation window (0 = off; any window leaves the metrics bit-identical).
void RunFabricPoint(int sim_threads, sim::Tick spec_horizon, const fault::FaultConfig& base,
                    bench::PointResult& r) {
  fault::FaultConfig config = base;
  config.channel_stall_prob = 0.01;
  config.drop_completion_prob = 0.01;
  fault::FaultInjector injector(config);

  sim::Simulator simulator(1e12);
  mem::MemorySystem system(&simulator, mem::HBM3EConfig());
  system.SetFaultInjector(&injector);
  check::ScopedChecker checker(&simulator, &system);
  check::ScopedFaultChecker fault_checker(&injector);
  simulator.SetWorkerThreads(sim_threads);
  simulator.SetSpeculationWindow(spec_horizon);
  const std::uint64_t bytes = 8ull << 20;
  bool done = false;
  system.Transfer(mem::Request::Kind::kRead, 0, bytes, 0, [&] { done = true; });
  simulator.Run();

  const mem::SystemStats stats = system.GetStats();
  r.events = simulator.events_executed();
  r.metrics["measured_gb_s"] =
      done ? static_cast<double>(bytes) / simulator.now_seconds() / 1e9 : 0.0;
  r.metrics["injected_stalls"] = static_cast<double>(stats.injected_stalls);
  r.metrics["dropped_completions"] = static_cast<double>(stats.dropped_completions);
  r.metrics["fault_unresolved"] =
      static_cast<double>(injector.stats().injected_total() - injector.stats().resolutions);
}

std::string RateLabel(double rate) {
  if (rate <= 0.0) {
    return "0";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.0e", rate);
  return buffer;
}

double Metric(const bench::PointResult& r, const std::string& key) {
  const auto it = r.metrics.find(key);
  return it == r.metrics.end() ? 0.0 : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  const int sim_threads = bench::ParseSimThreads(argc, argv, /*fallback=*/4);
  const auto spec_horizon = static_cast<sim::Tick>(bench::ParseSpecHorizon(argc, argv));

  fault::FaultConfig base;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fault-seed=", 13) == 0) {
      char* end = nullptr;
      base.seed = std::strtoull(argv[i] + 13, &end, 10);
      if (end == argv[i] + 13 || *end != '\0') {
        std::fprintf(stderr, "bench_f2_fault_sweep: bad --fault-seed value '%s'\n", argv[i] + 13);
        return 1;
      }
    }
  }
  const auto env = fault::FaultConfigFromEnv(base);
  if (!env.ok()) {
    std::fprintf(stderr, "bench_f2_fault_sweep: %s\n", env.error().message().c_str());
    return 1;
  }
  base = env.value();

  std::printf("F2: fault-rate x ECC-strength sweep through the RAS recovery path (§4)\n");

  bench::BenchRunner runner("f2_fault_sweep");
  runner.SetSimThreads(sim_threads);
  runner.SetConfig("suite", "fault injection: availability/goodput vs rate x ecc_t");
  runner.SetConfig("fault_seed", std::to_string(base.seed));
  runner.SetConfig("sim_threads", std::to_string(sim_threads));
  runner.SetConfig("spec_horizon", std::to_string(spec_horizon));

  const std::vector<double> rates = {0.0, 1e-4, 3e-4, 1e-3, 3e-3};
  const std::vector<int> ecc_strengths = {4, 16, 64};
  for (const int ecc_t : ecc_strengths) {
    for (const double rate : rates) {
      const std::string label = "mrm_r" + RateLabel(rate) + "_t" + std::to_string(ecc_t);
      runner.Add(label, [rate, ecc_t, base](bench::PointResult& r) {
        const ChurnResult churn = RunMrmChurn(rate, ecc_t, base);
        r.events = churn.events;
        r.metrics["rate"] = rate;
        r.metrics["ecc_t"] = static_cast<double>(ecc_t);
        const double reads_total = static_cast<double>(churn.reads_ok + churn.reads_lost);
        r.metrics["availability"] =
            reads_total > 0.0 ? static_cast<double>(churn.reads_ok) / reads_total : 0.0;
        r.metrics["goodput_mb_s"] =
            churn.sim_seconds > 0.0
                ? static_cast<double>(churn.reads_ok) * kBlockBytes / churn.sim_seconds / 1e6
                : 0.0;
        r.metrics["usable_capacity"] = churn.usable_capacity;
        r.metrics["appends_failed"] = static_cast<double>(churn.appends_failed);
        r.metrics["read_retries"] = static_cast<double>(churn.plane.read_retries);
        r.metrics["retry_successes"] = static_cast<double>(churn.plane.retry_successes);
        r.metrics["emergency_scrubs"] = static_cast<double>(churn.plane.emergency_scrubs);
        r.metrics["uncorrectable_drops"] = static_cast<double>(churn.plane.uncorrectable_drops);
        r.metrics["zones_retired"] = static_cast<double>(churn.plane.zones_retired);
        r.metrics["blocks_remapped"] = static_cast<double>(churn.plane.blocks_remapped);
        r.metrics["corrected_reads"] = static_cast<double>(churn.device.corrected_reads);
        r.metrics["silent_corruptions"] = static_cast<double>(churn.device.silent_corruptions);
        r.metrics["accounting_errors"] = static_cast<double>(churn.plane.accounting_errors);
        r.metrics["fault_unresolved"] = static_cast<double>(churn.faults.injected_total() -
                                                            churn.faults.resolutions);
      });
    }
  }

  // Fabric pair: identical fault schedule serially and sharded. Both labels'
  // metrics must match each other — and a run at any other --sim-threads —
  // bit for bit (the determinism claim; CI diffs the JSON).
  runner.Add("fabric_faults_shard_serial",
             [base](bench::PointResult& r) { RunFabricPoint(1, /*spec_horizon=*/0, base, r); });
  runner.Add("fabric_faults_shard_parallel", [sim_threads, spec_horizon,
                                              base](bench::PointResult& r) {
    RunFabricPoint(sim_threads, spec_horizon, base, r);
  });

  const int rc = runner.RunAndReport();

  TablePrinter table({"point", "availability", "goodput MB/s", "usable cap", "retries",
                      "scrubs", "UE drops", "zones retired"});
  for (const auto& [label, result] : runner.results()) {
    if (label.rfind("mrm_", 0) != 0) {
      continue;
    }
    table.AddRow({label, FormatNumber(Metric(result, "availability")),
                  FormatNumber(Metric(result, "goodput_mb_s")),
                  FormatNumber(Metric(result, "usable_capacity")),
                  FormatNumber(Metric(result, "read_retries")),
                  FormatNumber(Metric(result, "emergency_scrubs")),
                  FormatNumber(Metric(result, "uncorrectable_drops")),
                  FormatNumber(Metric(result, "zones_retired"))});
  }
  table.Print("Availability / goodput vs fault rate x ECC strength");

  std::printf("Shape check: rate 0 matches the fault-free simulator exactly; availability\n");
  std::printf("falls smoothly with the fault rate and is restored by a stronger code\n");
  std::printf("(ecc_t 4 -> 64); capacity shrinks gracefully as zones retire (§4).\n");
  return rc;
}
