// Microbenchmarks of the simulator core: event-queue churn patterns plus
// closed-loop memory-system runs, executed through the parallel BenchRunner
// harness. Emits BENCH_micro_simulator.json (schema: DESIGN.md §"Event core
// internals") so before/after events-per-second comparisons are scriptable.
//
// "events" per point = operations processed: executed events for the queue
// and memory workloads, push/cancel or retime operations for the churn
// patterns (work performed even though the events never run).

#include <string>

#include "bench/common/bench_runner.h"
#include "bench/common/sim_workloads.h"
#include "src/mem/device_config.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

void AddQueuePoints(bench::BenchRunner& runner) {
  runner.Add("queue_dispatch", [](bench::PointResult& r) {
    sim::Simulator sim;
    bench::QueueDispatch(sim, 10000, 20);  // warmup
    r.events = bench::QueueDispatch(sim, 10000, 300);
  });
  runner.Add("queue_random", [](bench::PointResult& r) {
    sim::Simulator sim;
    bench::QueueRandom(sim, 16384, 10, 100000);  // warmup
    r.events = bench::QueueRandom(sim, 16384, 180, 100000);
  });
  runner.Add("queue_steady_64", [](bench::PointResult& r) {
    sim::Simulator sim;
    bench::QueueSteady(sim, 64, 100000);  // warmup
    r.events = bench::QueueSteady(sim, 64, 2000000);
  });
  runner.Add("queue_steady_4096", [](bench::PointResult& r) {
    sim::Simulator sim;
    bench::QueueSteady(sim, 4096, 100000);  // warmup
    r.events = bench::QueueSteady(sim, 4096, 3000000);
  });
  runner.Add("queue_retime_wake", [](bench::PointResult& r) {
    sim::Simulator sim;
    bench::QueueRetime(sim, 100000);  // warmup
    r.events = bench::QueueRetime(sim, 3000000);
  });
  runner.Add("queue_cancel_churn", [](bench::PointResult& r) {
    sim::Simulator sim;
    bench::QueueCancel(sim, 100000);  // warmup
    r.events = bench::QueueCancel(sim, 3000000);
  });
}

void AddMemoryPoint(bench::BenchRunner& runner, const std::string& label,
                    const std::string& device, mem::SchedulerPolicy policy, std::uint64_t total,
                    int read_pct, int seq_pct, std::uint64_t seed) {
  runner.Add(label, [=](bench::PointResult& r) {
    sim::Simulator sim;
    mem::MemorySystem system(&sim, mem::DeviceConfigByName(device).value(), policy);
    const bench::MemRunResult run =
        bench::MemClosedLoop(sim, system, total, /*window=*/192, read_pct, seq_pct, seed);
    r.events = run.events;
    r.metrics["reads"] = static_cast<double>(run.reads);
    r.metrics["writes"] = static_cast<double>(run.writes);
    r.metrics["row_hit_rate"] = run.row_hit_rate;
    r.metrics["read_latency_mean_ns"] = run.read_latency_mean_ns;
    r.metrics["sim_seconds"] = run.sim_seconds;
  });
}

// Shard-scaling pair: the same 16-channel closed-loop workload executed
// serially and on `sim_threads` worker threads (channel-sharded epochs).
// The two points produce bit-identical metrics — only events/sec may differ.
// Compare their events/sec for the parallel-engine speedup; run with
// MRMSIM_BENCH_THREADS=1 so the bench pool does not steal cores from the
// sharded point.
void AddShardScalingPoints(bench::BenchRunner& runner, int sim_threads) {
  const auto add = [&runner](const std::string& label, int threads) {
    runner.Add(label, [threads](bench::PointResult& r) {
      sim::Simulator sim;
      mem::MemorySystem system(&sim, mem::HBM3EConfig());
      sim.SetWorkerThreads(threads);
      const bench::MemRunResult run =
          bench::MemClosedLoop(sim, system, /*total=*/400000, /*window=*/1024,
                               /*read_pct=*/63, /*seq_pct=*/80, /*seed=*/7);
      r.events = run.events;
      r.metrics["sim_threads"] = static_cast<double>(threads);
      r.metrics["reads"] = static_cast<double>(run.reads);
      r.metrics["writes"] = static_cast<double>(run.writes);
      r.metrics["row_hit_rate"] = run.row_hit_rate;
      r.metrics["read_latency_mean_ns"] = run.read_latency_mean_ns;
      r.metrics["sim_seconds"] = run.sim_seconds;
    });
  };
  add("mem_hbm3e16_shard_serial", 1);
  add("mem_hbm3e16_shard_parallel", sim_threads);
}

}  // namespace

int main(int argc, char** argv) {
  const int sim_threads = bench::ParseSimThreads(argc, argv, /*fallback=*/4);

  bench::BenchRunner runner("micro_simulator");
  runner.SetConfig("suite", "event core + memory system microbenchmarks");
  runner.SetConfig("sim_threads", std::to_string(sim_threads));

  AddQueuePoints(runner);
  AddMemoryPoint(runner, "mem_ddr5_frfcfs_mixed", "ddr5", mem::SchedulerPolicy::kFrFcfs,
                 /*total=*/120000, /*read_pct=*/63, /*seq_pct=*/60, /*seed=*/1);
  AddMemoryPoint(runner, "mem_ddr5_fcfs_mixed", "ddr5", mem::SchedulerPolicy::kFcfs,
                 /*total=*/120000, /*read_pct=*/63, /*seq_pct=*/60, /*seed=*/2);
  AddMemoryPoint(runner, "mem_hbm3e_frfcfs_seq", "hbm3e", mem::SchedulerPolicy::kFrFcfs,
                 /*total=*/120000, /*read_pct=*/63, /*seq_pct=*/90, /*seed=*/3);
  AddMemoryPoint(runner, "mem_lpddr5x_frfcfs_rand", "lpddr5x", mem::SchedulerPolicy::kFrFcfs,
                 /*total=*/120000, /*read_pct=*/50, /*seq_pct=*/10, /*seed=*/4);
  AddShardScalingPoints(runner, sim_threads);

  return runner.RunAndReport();
}
