// Microbenchmarks of the simulator substrate itself (google-benchmark):
// event-queue throughput, controller command scheduling, ECC design and the
// endurance bookkeeping — the hot paths of every experiment binary.

#include <benchmark/benchmark.h>

#include "src/cell/tradeoff.h"
#include "src/common/rng.h"
#include "src/mem/memory_system.h"
#include "src/mrm/ecc.h"
#include "src/sim/simulator.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

void BM_EventQueuePushPop(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::int64_t i = 0; i < batch; ++i) {
      queue.Push(rng.NextU64() % 100000, [] {});
    }
    sim::Tick when = 0;
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.Pop(&when));
    }
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator;
    std::uint64_t counter = 0;
    for (int i = 0; i < 10000; ++i) {
      simulator.ScheduleAt(static_cast<sim::Tick>(i), [&counter] { ++counter; });
    }
    simulator.Run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_MemorySequentialRead(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator(1e12);  // ps ticks: keep sub-ns timings exact
    mem::DeviceConfig config = mem::HBM3Config();
    config.channels = 4;  // keep the microbench fast
    mem::MemorySystem system(&simulator, config);
    bool done = false;
    system.Transfer(mem::Request::Kind::kRead, 0, 256 * 1024, 0, [&] { done = true; });
    simulator.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetBytesProcessed(state.iterations() * 256 * 1024);
}
BENCHMARK(BM_MemorySequentialRead);

void BM_MemoryRandomRead(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simulator(1e9);
    mem::DeviceConfig config = mem::HBM3Config();
    config.channels = 4;
    mem::MemorySystem system(&simulator, config);
    Rng rng(7);
    int completed = 0;
    for (int i = 0; i < 1024; ++i) {
      mem::Request request;
      request.kind = mem::Request::Kind::kRead;
      request.addr = rng.NextBounded(config.capacity_bytes() / 64) * 64;
      request.size = 64;
      request.on_complete = [&completed](const mem::Request&) { ++completed; };
      system.Enqueue(std::move(request));
    }
    simulator.Run();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MemoryRandomRead);

void BM_EccDesign(benchmark::State& state) {
  const std::uint64_t payload_bits = static_cast<std::uint64_t>(state.range(0)) * 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mrmcore::DesignEcc(payload_bits, 1e-4, 1e-15 * static_cast<double>(payload_bits)));
  }
}
BENCHMARK(BM_EccDesign)->Arg(4096)->Arg(65536)->Arg(262144);

void BM_BinomialTail(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(mrmcore::BinomialTail(1 << 20, 150, 1e-4));
  }
}
BENCHMARK(BM_BinomialTail);

void BM_TradeoffQuery(benchmark::State& state) {
  auto tradeoff = cell::MakeSttMramTradeoff();
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tradeoff->AtRetention(rng.UniformDouble(60.0, 1e8)));
  }
}
BENCHMARK(BM_TradeoffQuery);

void BM_RngU64(benchmark::State& state) {
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextU64());
  }
}
BENCHMARK(BM_RngU64);

}  // namespace
