// Microbenchmarks of the simulator core: event-queue churn patterns plus
// closed-loop memory-system runs, executed through the parallel BenchRunner
// harness. Emits BENCH_micro_simulator.json (schema: DESIGN.md §"Event core
// internals") so before/after events-per-second comparisons are scriptable.
//
// "events" per point = operations processed: executed events for the queue
// and memory workloads, push/cancel or retime operations for the churn
// patterns (work performed even though the events never run).

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "bench/common/bench_runner.h"
#include "bench/common/sim_workloads.h"
#include "src/mem/device_config.h"
#include "src/sim/parallel_executor.h"

namespace {

using namespace mrm;  // NOLINT: bench binary

// Epoch-driver scheduling telemetry for a finished point. Everything here is
// a pure function of the epoch schedule, so it is bit-identical across
// bench-pool threading and across --sim-threads; metrics prefixed `sched_`
// may legitimately differ across --sim-epoch-batch values (that is the knob's
// entire effect) and are excluded from cross-batch identity diffs.
void AddSchedMetrics(bench::PointResult& r, const sim::Simulator& sim) {
  const sim::EpochSchedStats& s = sim.epoch_sched_stats();
  std::uint64_t cost_max = 0;
  std::uint64_t cost_sum = 0;
  for (const std::uint64_t c : s.lane_cost) {
    cost_max = std::max(cost_max, c);
    cost_sum += c;
  }
  r.metrics["lane_cost_max"] = static_cast<double>(cost_max);
  r.metrics["lane_cost_mean"] =
      s.lane_cost.empty() ? 0.0
                          : static_cast<double>(cost_sum) / static_cast<double>(s.lane_cost.size());
  r.metrics["sched_epochs"] = static_cast<double>(s.epochs);
  r.metrics["sched_hub_steps"] = static_cast<double>(s.hub_steps);
  r.metrics["sched_dispatches"] = static_cast<double>(s.dispatches);
  r.metrics["sched_epochs_per_dispatch"] =
      s.dispatches == 0 ? 0.0 : static_cast<double>(s.epochs) / static_cast<double>(s.dispatches);
  r.metrics["sched_rebalances"] = static_cast<double>(s.rebalances);
  r.metrics["sched_guard_stops"] = static_cast<double>(s.batch_guard_stops);
  r.metrics["sched_spec_epochs"] = static_cast<double>(s.spec_epochs);
}

// Speculation telemetry for a finished point. Thread-invariant (the
// speculation schedule is derived from simulation state alone) but dependent
// on the speculation window, so the `spec_` prefix is excluded from spec-on
// vs spec-off identity diffs alongside `sched_`.
void AddSpecMetrics(bench::PointResult& r, const mem::MemorySystem& system) {
  const mem::SpecStats& s = system.GetSpecStats();
  r.metrics["spec_rollbacks"] = static_cast<double>(s.rollbacks);
  r.metrics["spec_rolled_back_events"] = static_cast<double>(s.rolled_back_events);
  r.metrics["spec_commits"] = static_cast<double>(s.spec_commits);
  r.metrics["spec_suppressed"] = static_cast<double>(s.suppressed_records);
}

void AddQueuePoints(bench::BenchRunner& runner) {
  runner.Add("queue_dispatch", [](bench::PointResult& r) {
    sim::Simulator sim;
    bench::QueueDispatch(sim, 10000, 20);  // warmup
    r.events = bench::QueueDispatch(sim, 10000, 300);
  });
  runner.Add("queue_random", [](bench::PointResult& r) {
    sim::Simulator sim;
    bench::QueueRandom(sim, 16384, 10, 100000);  // warmup
    r.events = bench::QueueRandom(sim, 16384, 180, 100000);
  });
  runner.Add("queue_steady_64", [](bench::PointResult& r) {
    sim::Simulator sim;
    bench::QueueSteady(sim, 64, 100000);  // warmup
    r.events = bench::QueueSteady(sim, 64, 2000000);
  });
  runner.Add("queue_steady_4096", [](bench::PointResult& r) {
    sim::Simulator sim;
    bench::QueueSteady(sim, 4096, 100000);  // warmup
    r.events = bench::QueueSteady(sim, 4096, 3000000);
  });
  runner.Add("queue_retime_wake", [](bench::PointResult& r) {
    sim::Simulator sim;
    bench::QueueRetime(sim, 100000);  // warmup
    r.events = bench::QueueRetime(sim, 3000000);
  });
  runner.Add("queue_cancel_churn", [](bench::PointResult& r) {
    sim::Simulator sim;
    bench::QueueCancel(sim, 100000);  // warmup
    r.events = bench::QueueCancel(sim, 3000000);
  });
}

void AddMemoryPoint(bench::BenchRunner& runner, const std::string& label,
                    const std::string& device, mem::SchedulerPolicy policy, std::uint64_t total,
                    int read_pct, int seq_pct, std::uint64_t seed, int epoch_batch) {
  runner.Add(label, [=](bench::PointResult& r) {
    sim::Simulator sim;
    mem::MemorySystem system(&sim, mem::DeviceConfigByName(device).value(), policy);
    sim.SetEpochBatch(epoch_batch);
    const bench::MemRunResult run =
        bench::MemClosedLoop(sim, system, total, /*window=*/192, read_pct, seq_pct, seed);
    r.events = run.events;
    r.metrics["reads"] = static_cast<double>(run.reads);
    r.metrics["writes"] = static_cast<double>(run.writes);
    r.metrics["row_hit_rate"] = run.row_hit_rate;
    r.metrics["read_latency_mean_ns"] = run.read_latency_mean_ns;
    r.metrics["sim_seconds"] = run.sim_seconds;
  });
}

// Shard-scaling pair: the same 16-channel closed-loop workload executed
// serially and on `sim_threads` worker threads (channel-sharded epochs).
// The two points produce bit-identical metrics — only events/sec may differ.
// Compare their events/sec for the parallel-engine speedup; run with
// MRMSIM_BENCH_THREADS=1 so the bench pool does not steal cores from the
// sharded point.
void AddShardScalingPoints(bench::BenchRunner& runner, int sim_threads, int epoch_batch,
                           int spins_per_yield, sim::Tick spec_horizon) {
  const auto add = [&runner, epoch_batch, spins_per_yield](const std::string& label, int threads,
                                                           sim::Tick spec_window) {
    runner.Add(label, [threads, epoch_batch, spins_per_yield, spec_window](bench::PointResult& r) {
      sim::Simulator sim;
      mem::MemorySystem system(&sim, mem::HBM3EConfig());
      sim.SetWorkerThreads(threads);
      sim.SetEpochBatch(epoch_batch);
      if (spins_per_yield > 0) {
        sim.SetSpinsPerYield(spins_per_yield);
      }
      sim.SetSpeculationWindow(spec_window);
      const bench::MemRunResult run =
          bench::MemClosedLoop(sim, system, /*total=*/400000, /*window=*/1024,
                               /*read_pct=*/63, /*seq_pct=*/80, /*seed=*/7);
      r.events = run.events;
      r.metrics["sim_threads"] = static_cast<double>(threads);
      r.metrics["reads"] = static_cast<double>(run.reads);
      r.metrics["writes"] = static_cast<double>(run.writes);
      r.metrics["row_hit_rate"] = run.row_hit_rate;
      r.metrics["read_latency_mean_ns"] = run.read_latency_mean_ns;
      r.metrics["sim_seconds"] = run.sim_seconds;
      AddSchedMetrics(r, sim);
      AddSpecMetrics(r, system);
    });
  };
  add("mem_hbm3e16_shard_serial", 1, /*spec_window=*/0);
  add("mem_hbm3e16_shard_parallel", sim_threads, /*spec_window=*/0);
  // Speculation on a saturated closed loop is the honest-overhead point: all
  // paper-facing metrics stay bit-identical to the spec-off pair above, while
  // `sched_epochs` may rise a few percent (rolled-back work is re-executed)
  // and `hub_steps` stays workload-fixed. The win case is the bursty pair.
  add("mem_hbm3e16_shard_parallel_spec", sim_threads,
      spec_horizon > 0 ? spec_horizon : sim::Tick{4096});
}

// Bursty spec on/off pair: short request bursts separated by long idle gaps,
// the regime speculation targets. Spec off, the epoch driver crawls through
// each gap one refresh-paced conservative horizon at a time; spec on, every
// quiescent lane retires whole refresh trains per dispatch and commits them
// untouched (zero rollbacks), so `sched_dispatches` / `sched_epochs` collapse
// while reads/writes/latency stay bit-identical.
void AddBurstyPoints(bench::BenchRunner& runner, int sim_threads, int epoch_batch,
                     int spins_per_yield, sim::Tick spec_horizon) {
  const auto add = [=, &runner](const std::string& label, sim::Tick spec_window) {
    runner.Add(label, [=](bench::PointResult& r) {
      sim::Simulator sim;
      mem::MemorySystem system(&sim, mem::HBM3EConfig());
      sim.SetWorkerThreads(sim_threads);
      sim.SetEpochBatch(epoch_batch);
      if (spins_per_yield > 0) {
        sim.SetSpinsPerYield(spins_per_yield);
      }
      sim.SetSpeculationWindow(spec_window);
      const bench::MemRunResult run =
          bench::MemBursty(sim, system, /*bursts=*/60, /*burst_size=*/64,
                           /*gap_ticks=*/50000, /*read_pct=*/60, /*seed=*/99);
      r.events = run.events;
      r.metrics["reads"] = static_cast<double>(run.reads);
      r.metrics["writes"] = static_cast<double>(run.writes);
      r.metrics["row_hit_rate"] = run.row_hit_rate;
      r.metrics["read_latency_mean_ns"] = run.read_latency_mean_ns;
      r.metrics["sim_seconds"] = run.sim_seconds;
      AddSchedMetrics(r, sim);
      AddSpecMetrics(r, system);
    });
  };
  add("mem_hbm3e16_burst_spec_off", /*spec_window=*/0);
  add("mem_hbm3e16_burst_spec_on", spec_horizon > 0 ? spec_horizon : sim::Tick{65536});
}

// Barrier-overhead micro-points: raw ParallelExecutor dispatch cost with
// near-zero task bodies, isolating the fork/join handshake the epoch driver
// pays per dispatch. Three variants of the same 16-task dispatch:
//
//   exec_dispatch_static — PR-2 behavior: static striding engages the whole
//       pool, one publish + full join per dispatch.
//   exec_dispatch_packed — an installed plan packs every task onto the
//       caller, so no worker is engaged and the dispatch costs no barrier at
//       all. This is what the rebalancer produces on core-limited machines,
//       where it matters most: with more pool threads than free cores every
//       engaged worker is a forced context switch.
//   exec_dispatch_rounds — one publish drives 16 task rounds (the epoch-
//       batching shape), amortizing the publish/join across the batch.
//
// `events` counts dispatched task rounds (deterministic); the handshake cost
// shows up in wall time / events_per_sec, which identity diffs ignore. The
// packed/static events_per_sec ratio is the committed barrier-overhead
// figure; interpret it against the recorded hardware_threads.
void AddExecutorPoints(bench::BenchRunner& runner, int sim_threads) {
  constexpr int kTasks = 16;
  constexpr std::uint64_t kWarmup = 500;
  constexpr std::uint64_t kDispatches = 10000;
  const int pool = sim_threads > 1 ? sim_threads : 4;
  struct alignas(64) Slot {
    std::uint64_t value = 0;
  };
  const auto common_metrics = [pool](bench::PointResult& r, const std::vector<Slot>& slots,
                                     int engaged) {
    std::uint64_t invocations = 0;
    for (const Slot& slot : slots) {
      invocations += slot.value;
    }
    r.metrics["pool_threads"] = static_cast<double>(pool);
    r.metrics["tasks_per_dispatch"] = static_cast<double>(kTasks);
    r.metrics["engaged_participants"] = static_cast<double>(engaged);
    r.metrics["task_invocations"] = static_cast<double>(invocations);
  };
  runner.Add("exec_dispatch_static", [pool, common_metrics](bench::PointResult& r) {
    sim::ParallelExecutor exec(pool);
    std::vector<Slot> slots(kTasks);
    const std::function<void(int)> fn = [&slots](int i) {
      ++slots[static_cast<std::size_t>(i)].value;
    };
    for (std::uint64_t d = 0; d < kWarmup + kDispatches; ++d) {
      exec.Run(kTasks, fn);
    }
    r.events = kWarmup + kDispatches;
    common_metrics(r, slots, pool < kTasks ? pool : kTasks);
  });
  runner.Add("exec_dispatch_packed", [pool, common_metrics](bench::PointResult& r) {
    sim::ParallelExecutor exec(pool);
    std::vector<Slot> slots(kTasks);
    const std::function<void(int)> fn = [&slots](int i) {
      ++slots[static_cast<std::size_t>(i)].value;
    };
    std::vector<int> order(kTasks);
    for (int i = 0; i < kTasks; ++i) {
      order[static_cast<std::size_t>(i)] = i;
    }
    exec.SetPlan(order, {0, kTasks});
    for (std::uint64_t d = 0; d < kWarmup + kDispatches; ++d) {
      exec.Run(kTasks, fn);
    }
    r.events = kWarmup + kDispatches;
    common_metrics(r, slots, 1);
  });
  runner.Add("exec_dispatch_rounds", [pool, common_metrics](bench::PointResult& r) {
    constexpr int kRounds = 16;
    sim::ParallelExecutor exec(pool);
    std::vector<Slot> slots(kTasks);
    const std::function<void(int)> fn = [&slots](int i) {
      ++slots[static_cast<std::size_t>(i)].value;
    };
    for (std::uint64_t d = 0; d < (kWarmup + kDispatches) / kRounds; ++d) {
      int rounds_left = kRounds;
      exec.RunRounds(kTasks, fn, [&rounds_left] { return --rounds_left > 0; });
    }
    r.events = (kWarmup + kDispatches) / kRounds * kRounds;
    common_metrics(r, slots, pool < kTasks ? pool : kTasks);
    r.metrics["rounds_per_publish"] = static_cast<double>(kRounds);
  });
}

}  // namespace

int main(int argc, char** argv) {
  const int sim_threads = bench::ParseSimThreads(argc, argv, /*fallback=*/4);
  const int epoch_batch = bench::ParseEpochBatch(argc, argv, /*fallback=*/0);
  const int spins_per_yield = bench::ParseSpinsPerYield(argc, argv);
  const auto spec_horizon = static_cast<sim::Tick>(bench::ParseSpecHorizon(argc, argv));

  bench::BenchRunner runner("micro_simulator");
  runner.SetSimThreads(sim_threads);
  runner.SetConfig("suite", "event core + memory system microbenchmarks");
  runner.SetConfig("sim_threads", std::to_string(sim_threads));
  runner.SetConfig("epoch_batch", std::to_string(epoch_batch));
  runner.SetConfig("spins_per_yield", std::to_string(spins_per_yield));
  runner.SetConfig("spec_horizon", std::to_string(spec_horizon));

  AddQueuePoints(runner);
  AddMemoryPoint(runner, "mem_ddr5_frfcfs_mixed", "ddr5", mem::SchedulerPolicy::kFrFcfs,
                 /*total=*/120000, /*read_pct=*/63, /*seq_pct=*/60, /*seed=*/1, epoch_batch);
  AddMemoryPoint(runner, "mem_ddr5_fcfs_mixed", "ddr5", mem::SchedulerPolicy::kFcfs,
                 /*total=*/120000, /*read_pct=*/63, /*seq_pct=*/60, /*seed=*/2, epoch_batch);
  AddMemoryPoint(runner, "mem_hbm3e_frfcfs_seq", "hbm3e", mem::SchedulerPolicy::kFrFcfs,
                 /*total=*/120000, /*read_pct=*/63, /*seq_pct=*/90, /*seed=*/3, epoch_batch);
  AddMemoryPoint(runner, "mem_lpddr5x_frfcfs_rand", "lpddr5x", mem::SchedulerPolicy::kFrFcfs,
                 /*total=*/120000, /*read_pct=*/50, /*seq_pct=*/10, /*seed=*/4, epoch_batch);
  AddShardScalingPoints(runner, sim_threads, epoch_batch, spins_per_yield, spec_horizon);
  AddBurstyPoints(runner, sim_threads, epoch_batch, spins_per_yield, spec_horizon);
  AddExecutorPoints(runner, sim_threads);

  return runner.RunAndReport();
}
