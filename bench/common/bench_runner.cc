#include "bench/common/bench_runner.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace mrm {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

// %.17g round-trips IEEE doubles exactly, so two runs that computed the same
// value print the same bytes — the property the single- vs multi-threaded
// bit-identity check relies on.
void PrintDouble(std::FILE* f, double value) { std::fprintf(f, "%.17g", value); }

void PrintJsonString(std::FILE* f, const std::string& s) {
  std::fputc('"', f);
  for (const char c : s) {
    switch (c) {
      case '"':
        std::fputs("\\\"", f);
        break;
      case '\\':
        std::fputs("\\\\", f);
        break;
      case '\n':
        std::fputs("\\n", f);
        break;
      case '\t':
        std::fputs("\\t", f);
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::fprintf(f, "\\u%04x", c);
        } else {
          std::fputc(c, f);
        }
    }
  }
  std::fputc('"', f);
}

}  // namespace

int ParseSimThreads(int argc, char** argv, int fallback) {
  int threads = fallback;
  if (const char* env = std::getenv("MRMSIM_SIM_THREADS")) {
    threads = static_cast<int>(std::strtol(env, nullptr, 10));
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--sim-threads=";
    if (arg.rfind(prefix, 0) == 0) {
      threads = static_cast<int>(std::strtol(arg.c_str() + prefix.size(), nullptr, 10));
    }
  }
  return threads < 1 ? 1 : threads;
}

int ParseEpochBatch(int argc, char** argv, int fallback) {
  int batch = fallback;
  if (const char* env = std::getenv("MRMSIM_EPOCH_BATCH")) {
    batch = static_cast<int>(std::strtol(env, nullptr, 10));
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--sim-epoch-batch=";
    if (arg.rfind(prefix, 0) == 0) {
      batch = static_cast<int>(std::strtol(arg.c_str() + prefix.size(), nullptr, 10));
    }
  }
  return batch < 0 ? 0 : batch;
}

namespace {

// Strictly-parsed integer knob: on a malformed or out-of-range value the
// current setting is kept and one diagnostic line names the offender, so a
// typo in an env var degrades loudly instead of silently running the wrong
// configuration.
long long ResolveKnob(const char* text, const char* source, long long min_valid,
                      long long current, const char* what) {
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || value < min_valid) {
    std::fprintf(stderr, "bench_runner: ignoring invalid %s '%s' from %s (integer >= %lld)\n",
                 what, text, source, min_valid);
    return current;
  }
  return value;
}

long long ParseKnob(int argc, char** argv, const char* arg_prefix, const char* env_name,
                    long long min_valid, long long fallback, const char* what) {
  long long value = fallback;
  if (const char* env = std::getenv(env_name)) {
    value = ResolveKnob(env, env_name, min_valid, value, what);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(arg_prefix, 0) == 0) {
      value = ResolveKnob(arg.c_str() + std::string(arg_prefix).size(), arg_prefix, min_valid,
                          value, what);
    }
  }
  return value;
}

}  // namespace

int ParseSpinsPerYield(int argc, char** argv, int fallback) {
  return static_cast<int>(ParseKnob(argc, argv, "--spins-per-yield=", "MRMSIM_SPINS_PER_YIELD",
                                    /*min_valid=*/0, fallback, "spins-per-yield"));
}

std::uint64_t ParseSpecHorizon(int argc, char** argv, std::uint64_t fallback) {
  return static_cast<std::uint64_t>(
      ParseKnob(argc, argv, "--sim-spec-horizon=", "MRMSIM_SPEC_HORIZON",
                /*min_valid=*/0, static_cast<long long>(fallback), "sim-spec-horizon"));
}

std::string ParsePolicyPreset(int argc, char** argv, const std::string& fallback) {
  std::string preset = fallback;
  if (const char* env = std::getenv("MRMSIM_POLICY_PRESET")) {
    preset = env;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--policy-preset=";
    if (arg.rfind(prefix, 0) == 0) {
      preset = arg.substr(prefix.size());
    }
  }
  if (preset.empty()) {
    std::fprintf(stderr, "bench: empty policy-preset value ignored, using \"%s\"\n",
                 fallback.c_str());
    preset = fallback;
  }
  return preset;
}

BenchRunner::BenchRunner(std::string name) : name_(std::move(name)) {}

void BenchRunner::Add(std::string label, std::function<void(PointResult&)> fn) {
  points_.push_back({std::move(label), std::move(fn)});
}

void BenchRunner::SetConfig(std::string key, std::string value) {
  config_[std::move(key)] = std::move(value);
}

unsigned BenchRunner::ResolveThreads(unsigned requested) const {
  unsigned threads = requested;
  if (threads == 0) {
    if (const char* env = std::getenv("MRMSIM_BENCH_THREADS")) {
      threads = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    }
  }
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
  }
  if (threads == 0) {
    threads = 1;
  }
  if (threads > points_.size()) {
    threads = static_cast<unsigned>(points_.size());
  }
  return threads;
}

int BenchRunner::RunAndReport(unsigned requested_threads) {
  const unsigned threads = ResolveThreads(requested_threads);

  results_.assign(points_.size(), {});
  wall_seconds_.assign(points_.size(), 0.0);
  for (std::size_t i = 0; i < points_.size(); ++i) {
    results_[i].first = points_[i].label;
  }

  // Work-stealing by atomic index: threads race for the next unstarted point,
  // but each point's result lands in its registration slot, so the report is
  // deterministic in order and (per the contract) in content.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= points_.size()) {
        return;
      }
      const auto begin = Clock::now();
      points_[i].fn(results_[i].second);
      wall_seconds_[i] = Seconds(begin, Clock::now());
    }
  };

  const auto sweep_begin = Clock::now();
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  total_wall_seconds_ = Seconds(sweep_begin, Clock::now());

  std::uint64_t total_events = 0;
  for (const auto& [label, result] : results_) {
    total_events += result.events;
  }

  std::printf("\n%-34s %14s %12s %16s\n", "point", "events", "wall s", "events/sec");
  for (std::size_t i = 0; i < results_.size(); ++i) {
    const PointResult& r = results_[i].second;
    const double rate = wall_seconds_[i] > 0.0 ? static_cast<double>(r.events) / wall_seconds_[i]
                                               : 0.0;
    std::printf("%-34s %14llu %12.4f %16.0f\n", results_[i].first.c_str(),
                static_cast<unsigned long long>(r.events), wall_seconds_[i], rate);
  }
  const double total_rate =
      total_wall_seconds_ > 0.0 ? static_cast<double>(total_events) / total_wall_seconds_ : 0.0;
  std::printf("%-34s %14llu %12.4f %16.0f  (%u threads)\n", "TOTAL",
              static_cast<unsigned long long>(total_events), total_wall_seconds_, total_rate,
              threads);

  return WriteJson(threads, total_wall_seconds_, wall_seconds_) ? 0 : 1;
}

bool BenchRunner::WriteJson(unsigned threads, double total_wall_seconds,
                            const std::vector<double>& point_wall_seconds) const {
  std::string path = "BENCH_" + name_ + ".json";
  if (const char* dir = std::getenv("MRMSIM_BENCH_OUT")) {
    path = std::string(dir) + "/" + path;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_runner: cannot write %s\n", path.c_str());
    return false;
  }

  std::uint64_t total_events = 0;
  for (const auto& [label, result] : results_) {
    total_events += result.events;
  }

  // "threads" is the sim worker-pool size when the bench declared one (the
  // count that shapes the simulation's own numbers); the pool that merely
  // runs points side by side is "bench_threads". hardware_threads records
  // the machine the numbers came from: wall-clock figures (and any
  // parallel-speedup point pair) are meaningless without knowing how many
  // cores were actually available.
  std::fprintf(f, "{\n  \"bench\": ");
  PrintJsonString(f, name_);
  std::fprintf(f,
               ",\n  \"threads\": %u,\n  \"bench_threads\": %u,\n  \"hardware_threads\": %u,\n",
               sim_threads_ > 0 ? static_cast<unsigned>(sim_threads_) : threads, threads,
               std::thread::hardware_concurrency());

  // Provenance: which tree produced these numbers and whether the static
  // analysis layer (DESIGN.md §12) passed on it. tools/tier1.sh exports both
  // variables after running the lints; a bench launched by hand stamps
  // "unknown" rather than implying a verdict nobody computed.
  const char* git_sha = std::getenv("MRMSIM_GIT_SHA");
  const char* lint_status = std::getenv("MRMSIM_LINT_CLEAN");
  std::fputs("  \"lint_clean\": {\n    \"git_sha\": ", f);
  PrintJsonString(f, git_sha != nullptr ? git_sha : "unknown");
  std::fputs(",\n    \"status\": ", f);
  PrintJsonString(f, lint_status != nullptr ? lint_status : "unknown");
  std::fputs("\n  },\n  \"config\": {", f);
  bool first = true;
  for (const auto& [key, value] : config_) {
    std::fprintf(f, "%s\n    ", first ? "" : ",");
    PrintJsonString(f, key);
    std::fputs(": ", f);
    PrintJsonString(f, value);
    first = false;
  }
  std::fprintf(f, "%s},\n", config_.empty() ? "" : "\n  ");

  const double total_rate =
      total_wall_seconds > 0.0 ? static_cast<double>(total_events) / total_wall_seconds : 0.0;
  std::fprintf(f, "  \"totals\": {\n    \"wall_seconds\": ");
  PrintDouble(f, total_wall_seconds);
  std::fprintf(f, ",\n    \"events\": %llu,\n    \"events_per_sec\": ",
               static_cast<unsigned long long>(total_events));
  PrintDouble(f, total_rate);
  std::fprintf(f, "\n  },\n  \"points\": [");

  for (std::size_t i = 0; i < results_.size(); ++i) {
    const PointResult& r = results_[i].second;
    const double wall = point_wall_seconds[i];
    const double rate = wall > 0.0 ? static_cast<double>(r.events) / wall : 0.0;
    std::fprintf(f, "%s\n    {\n      \"label\": ", i == 0 ? "" : ",");
    PrintJsonString(f, results_[i].first);
    std::fprintf(f, ",\n      \"wall_seconds\": ");
    PrintDouble(f, wall);
    std::fprintf(f, ",\n      \"events\": %llu,\n      \"events_per_sec\": ",
                 static_cast<unsigned long long>(r.events));
    PrintDouble(f, rate);
    std::fprintf(f, ",\n      \"metrics\": {");
    bool first_metric = true;
    for (const auto& [key, value] : r.metrics) {
      std::fprintf(f, "%s\n        ", first_metric ? "" : ",");
      PrintJsonString(f, key);
      std::fputs(": ", f);
      PrintDouble(f, value);
      first_metric = false;
    }
    std::fprintf(f, "%s}\n    }", r.metrics.empty() ? "" : "\n      ");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace bench
}  // namespace mrm
