// Parallel benchmark harness: a registry of named sweep points executed by a
// thread pool, reported as a table plus a machine-readable BENCH_<name>.json
// (schema in DESIGN.md §"Event core internals").
//
// Determinism contract: every point function must be self-contained (own
// Simulator / RNG, no shared mutable state), so the per-point `events` and
// `metrics` are bit-identical whether the sweep runs on one thread or many.
// Only wall-clock fields vary between runs. Results are stored and reported
// in registration order regardless of which thread finished first.

#ifndef MRMSIM_BENCH_COMMON_BENCH_RUNNER_H_
#define MRMSIM_BENCH_COMMON_BENCH_RUNNER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace mrm {
namespace bench {

// Worker-pool size for the simulation itself (sim::Simulator::SetWorkerThreads
// inside a point), as opposed to the bench pool that runs points side by side.
// Resolution order: a `--sim-threads=N` argument, the MRMSIM_SIM_THREADS
// environment variable, then `fallback`. Values < 1 resolve to 1 (serial).
int ParseSimThreads(int argc, char** argv, int fallback = 1);

// Epoch-batch limit for the simulation (sim::Simulator::SetEpochBatch inside
// a point): how many back-to-back epochs one worker-pool fork/join may drive
// when provably safe. Resolution order: a `--sim-epoch-batch=K` argument, the
// MRMSIM_EPOCH_BATCH environment variable, then `fallback`. 0 (the default
// fallback) is the safe auto mode — the simulator picks its built-in limit;
// 1 disables batching; values < 0 resolve to 0.
int ParseEpochBatch(int argc, char** argv, int fallback = 0);

// Spin-then-yield budget of the sim worker pool's barriers
// (sim::Simulator::SetSpinsPerYield inside a point). Resolution order: a
// `--spins-per-yield=N` argument, the MRMSIM_SPINS_PER_YIELD environment
// variable, then `fallback`. 0 (the default fallback) keeps the executor's
// built-in budget — points should only call SetSpinsPerYield for values > 0.
// Bad values (negative or non-numeric) are ignored with a one-line stderr
// diagnostic.
int ParseSpinsPerYield(int argc, char** argv, int fallback = 0);

// Speculation window in ticks (sim::Simulator::SetSpeculationWindow inside a
// point): how far past the conservative epoch horizon a quiescent lane may
// run optimistically before deterministic rollback covers for it. Resolution
// order: a `--sim-spec-horizon=W` argument, the MRMSIM_SPEC_HORIZON
// environment variable, then `fallback`. 0 (the default fallback) disables
// speculation. Bad values (negative or non-numeric) are ignored with a
// one-line stderr diagnostic.
std::uint64_t ParseSpecHorizon(int argc, char** argv, std::uint64_t fallback = 0);

// Policy preset name for benches that run the policy layer (DESIGN.md §14):
// one of policy::PolicyPresetByName's spellings ("dcm", "scm-10y",
// "two-class"). Resolution order: a `--policy-preset=NAME` argument, the
// MRMSIM_POLICY_PRESET environment variable, then `fallback`. The spelling is
// not validated here — BuildMemoryPolicy rejects unknown names with a proper
// diagnostic; an empty value falls back with a one-line stderr note.
std::string ParsePolicyPreset(int argc, char** argv, const std::string& fallback);

// Filled in by a point function; wall time is measured by the runner around
// the call. `events` is whatever unit of work the bench counts (simulator
// events, requests, ...) and drives the events/sec throughput figures.
// `metrics` holds the point's simulation results (latencies, bandwidths,
// energies, ...) — the deterministic part compared between runs.
struct PointResult {
  std::uint64_t events = 0;
  std::map<std::string, double> metrics;
};

class BenchRunner {
 public:
  // `name` becomes the JSON file name: BENCH_<name>.json.
  explicit BenchRunner(std::string name);

  // Registers a sweep point. Functions run concurrently; each must be
  // self-contained (see determinism contract above).
  void Add(std::string label, std::function<void(PointResult&)> fn);

  // Static key/value context recorded in the JSON "config" object.
  void SetConfig(std::string key, std::string value);

  // Declares the sim worker-pool size the points run with. When set (> 0),
  // the JSON's top-level "threads" reports this — the thread count that
  // shapes the simulation numbers — and the bench pool size moves to
  // "bench_threads". Unset, "threads" falls back to the bench pool size.
  void SetSimThreads(int sim_threads) { sim_threads_ = sim_threads; }

  // Runs all points on a pool of `threads` threads (0 = MRMSIM_BENCH_THREADS
  // env var, else hardware_concurrency), prints a table, writes
  // BENCH_<name>.json into MRMSIM_BENCH_OUT (default: cwd). Returns 0 on
  // success, 1 when the JSON file could not be written.
  int RunAndReport(unsigned threads = 0);

  // The measured results, in registration order (valid after RunAndReport).
  const std::vector<std::pair<std::string, PointResult>>& results() const { return results_; }

 private:
  struct Point {
    std::string label;
    std::function<void(PointResult&)> fn;
  };

  unsigned ResolveThreads(unsigned requested) const;
  bool WriteJson(unsigned threads, double total_wall_seconds,
                 const std::vector<double>& point_wall_seconds) const;

  std::string name_;
  int sim_threads_ = 0;  // 0 = not declared; see SetSimThreads
  std::vector<Point> points_;
  std::map<std::string, std::string> config_;
  std::vector<std::pair<std::string, PointResult>> results_;
  std::vector<double> wall_seconds_;
  double total_wall_seconds_ = 0.0;
};

}  // namespace bench
}  // namespace mrm

#endif  // MRMSIM_BENCH_COMMON_BENCH_RUNNER_H_
