// Shared simulator workloads used by bench_micro_simulator and the
// event-core regression tests: event-queue churn patterns plus small
// closed-loop memory-system runs. Every workload is deterministic (fixed
// seeds) and self-contained, matching the BenchRunner contract.
//
// The queue workloads are written against the Simulator public API only and
// feature-detect Retime(), so the same source builds against older trees for
// before/after comparisons.

#ifndef MRMSIM_BENCH_COMMON_SIM_WORKLOADS_H_
#define MRMSIM_BENCH_COMMON_SIM_WORKLOADS_H_

#include <algorithm>
#include <cstdint>
#include <random>

#include "src/check/attach.h"
#include "src/mem/memory_system.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace bench {

// ---------------------------------------------------------------------------
// Event-queue churn patterns. Each returns the number of operations performed
// (executed events, or push/cancel/retime ops for the churn patterns).

// Schedules `n` events at consecutive ticks and drains, `iters` times.
inline std::uint64_t QueueDispatch(sim::Simulator& sim, int n, int iters) {
  std::uint64_t executed = 0;
  for (int it = 0; it < iters; ++it) {
    for (int i = 0; i < n; ++i) {
      sim.ScheduleAfter(static_cast<sim::Tick>(i), [] {});
    }
    executed += sim.Run();
  }
  return executed;
}

// Schedules `n` events at uniform random offsets in [0, horizon) and drains.
inline std::uint64_t QueueRandom(sim::Simulator& sim, int n, int iters, std::uint64_t horizon) {
  std::mt19937_64 rng(42);
  std::uint64_t executed = 0;
  for (int it = 0; it < iters; ++it) {
    for (int i = 0; i < n; ++i) {
      sim.ScheduleAfter(static_cast<sim::Tick>(rng() % horizon), [] {});
    }
    executed += sim.Run();
  }
  return executed;
}

// Steady-state churn: `outstanding` self-rescheduling chains, each hop a
// random delay in [1, 100], until `events` total callbacks ran. This is the
// hold-then-pop pattern a running simulation exercises.
inline std::uint64_t QueueSteady(sim::Simulator& sim, int outstanding, std::int64_t events) {
  struct Chain {
    sim::Simulator* sim;
    std::mt19937_64* rng;
    std::int64_t* left;
    void operator()() const {
      if (--*left > 0) {
        sim->ScheduleAfter(1 + (*rng)() % 100, *this);
      }
    }
  };
  std::mt19937_64 rng(7);
  std::int64_t left = events;
  for (int i = 0; i < outstanding; ++i) {
    sim.ScheduleAfter(1 + rng() % 100, Chain{&sim, &rng, &left});
  }
  return sim.Run();
}

// Moves a pending event to `when`: Retime when the tree has it, otherwise
// the Cancel + ScheduleAt churn it replaces. Templated so the Retime probe
// stays dependent and the same source builds against pre-Retime trees.
template <typename Sim>
sim::EventId RetimeOrReschedule(Sim& sim, sim::EventId id, sim::Tick when) {
  if constexpr (requires(Sim& s) { s.Retime(id, when); }) {
    return sim.Retime(id, when);
  } else {
    sim.Cancel(id);
    return sim.ScheduleAt(when, [] {});
  }
}

// Controller wake pattern: one long-lived event repeatedly pulled earlier /
// pushed later, interleaved with short drains.
inline std::uint64_t QueueRetime(sim::Simulator& sim, std::int64_t ops) {
  std::mt19937_64 rng(9);
  std::int64_t done = 0;
  while (done < ops) {
    sim::EventId wake = sim.ScheduleAfter(1000000, [] {});
    for (int j = 0; j < 100; ++j, ++done) {
      wake = RetimeOrReschedule(sim, wake, sim.now() + 10 + rng() % 50);
    }
    sim.Cancel(wake);
    sim.RunUntil(sim.now() + 500);
  }
  sim.Run();
  return static_cast<std::uint64_t>(done);
}

// Push + immediate cancel churn with periodic idle drains.
inline std::uint64_t QueueCancel(sim::Simulator& sim, std::int64_t ops) {
  for (std::int64_t i = 0; i < ops; ++i) {
    const sim::EventId id = sim.ScheduleAfter(100 + (i % 997), [] {});
    sim.Cancel(id);
    if ((i & 1023) == 0) {
      sim.RunUntil(sim.now() + 1);
    }
  }
  sim.Run();
  return static_cast<std::uint64_t>(ops);
}

// ---------------------------------------------------------------------------
// Closed-loop memory-system workload: keeps `window` requests outstanding
// against a MemorySystem until `total` complete. `read_pct` of requests are
// reads; `seq_pct` stay within a marching hot region (row-hit friendly), the
// rest address the whole device. Returns the per-run statistics so callers
// can both count events and check determinism.

struct MemRunResult {
  std::uint64_t events = 0;  // simulator events executed
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double row_hit_rate = 0.0;
  double read_latency_mean_ns = 0.0;
  double sim_seconds = 0.0;
};

inline MemRunResult MemClosedLoop(sim::Simulator& sim, mem::MemorySystem& system,
                                  std::uint64_t total, int window, int read_pct, int seq_pct,
                                  std::uint64_t rng_seed) {
  // In a checked build with MRMSIM_CHECK set, audit every command of the run
  // (the auditor is passive: measured stats are unchanged).
  check::ScopedChecker protocol_audit(&sim, &system);
  const std::uint64_t start_events = sim.events_executed();
  const std::uint64_t capacity = system.capacity_bytes();
  const std::uint64_t line = system.config().access_bytes;
  const std::uint64_t lines = capacity / line;

  struct State {
    sim::Simulator* sim;
    mem::MemorySystem* system;
    std::mt19937_64 rng;
    std::uint64_t remaining_to_issue;
    std::uint64_t remaining_to_complete;
    std::uint64_t lines;
    std::uint64_t line;
    std::uint64_t hot_base = 0;
    int read_pct;
    int seq_pct;
  };
  State state{&sim,    &system, std::mt19937_64(rng_seed), total, total, lines, line, 0,
              read_pct, seq_pct};

  const auto issue_one = [](State* s) {
    --s->remaining_to_issue;
    mem::Request request;
    const bool is_read = static_cast<int>(s->rng() % 100) < s->read_pct;
    request.kind = is_read ? mem::Request::Kind::kRead : mem::Request::Kind::kWrite;
    if (static_cast<int>(s->rng() % 100) < s->seq_pct) {
      // Marching hot region: mostly consecutive lines, row-hit friendly.
      s->hot_base = (s->hot_base + 1 + s->rng() % 4) % s->lines;
      request.addr = s->hot_base * s->line;
    } else {
      request.addr = (s->rng() % s->lines) * s->line;
    }
    request.size = static_cast<std::uint32_t>(s->line);
    return request;
  };

  std::function<void(const mem::Request&)> on_complete = [&state, &issue_one,
                                                          &on_complete](const mem::Request&) {
    --state.remaining_to_complete;
    if (state.remaining_to_issue > 0) {
      mem::Request next = issue_one(&state);
      next.on_complete = on_complete;
      state.system->Enqueue(std::move(next));
    }
  };

  const int initial = static_cast<int>(
      std::min<std::uint64_t>(static_cast<std::uint64_t>(window), total));
  for (int i = 0; i < initial; ++i) {
    mem::Request request = issue_one(&state);
    request.on_complete = on_complete;
    system.Enqueue(std::move(request));
  }
  sim.Run();

  const mem::SystemStats stats = system.GetStats();
  MemRunResult result;
  result.events = sim.events_executed() - start_events;
  result.reads = stats.reads_completed;
  result.writes = stats.writes_completed;
  result.row_hit_rate = stats.row_hit_rate();
  result.read_latency_mean_ns = stats.read_latency_ns.mean();
  result.sim_seconds = sim.now_seconds();
  return result;
}

// Bursty open-loop workload: `bursts` batches of `burst_size` uniform-random
// requests land `gap_ticks` apart, the device idle (refresh-paced) between
// batches. This is the shape where speculative lane execution pays: through
// each idle gap the conservative driver steps one short epoch per refresh
// wake across the whole stack, while speculating lanes retire entire refresh
// trains per dispatch and commit them untouched.
inline MemRunResult MemBursty(sim::Simulator& sim, mem::MemorySystem& system, int bursts,
                              int burst_size, sim::Tick gap_ticks, int read_pct,
                              std::uint64_t rng_seed) {
  check::ScopedChecker protocol_audit(&sim, &system);
  const std::uint64_t start_events = sim.events_executed();
  const std::uint64_t line = system.config().access_bytes;
  const std::uint64_t lines = system.capacity_bytes() / line;

  std::mt19937_64 rng(rng_seed);
  for (int b = 0; b < bursts; ++b) {
    sim.ScheduleAt(static_cast<sim::Tick>(b) * gap_ticks + 1, [&system, &rng, burst_size, lines,
                                                               line, read_pct] {
      for (int i = 0; i < burst_size; ++i) {
        mem::Request request;
        const bool is_read = static_cast<int>(rng() % 100) < read_pct;
        request.kind = is_read ? mem::Request::Kind::kRead : mem::Request::Kind::kWrite;
        request.addr = (rng() % lines) * line;
        request.size = static_cast<std::uint32_t>(line);
        request.on_complete = [](const mem::Request&) {};
        system.Enqueue(std::move(request));
      }
    });
  }
  sim.Run();

  const mem::SystemStats stats = system.GetStats();
  MemRunResult result;
  result.events = sim.events_executed() - start_events;
  result.reads = stats.reads_completed;
  result.writes = stats.writes_completed;
  result.row_hit_rate = stats.row_hit_rate();
  result.read_latency_mean_ns = stats.read_latency_ns.mean();
  result.sim_seconds = sim.now_seconds();
  return result;
}

}  // namespace bench
}  // namespace mrm

#endif  // MRMSIM_BENCH_COMMON_SIM_WORKLOADS_H_
