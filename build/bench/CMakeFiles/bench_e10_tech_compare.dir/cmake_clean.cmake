file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_tech_compare.dir/bench_e10_tech_compare.cc.o"
  "CMakeFiles/bench_e10_tech_compare.dir/bench_e10_tech_compare.cc.o.d"
  "bench_e10_tech_compare"
  "bench_e10_tech_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_tech_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
