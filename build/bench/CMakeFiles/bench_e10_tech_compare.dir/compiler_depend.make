# Empty compiler generated dependencies file for bench_e10_tech_compare.
# This may be replaced when dependencies are built.
