file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_batching.dir/bench_e11_batching.cc.o"
  "CMakeFiles/bench_e11_batching.dir/bench_e11_batching.cc.o.d"
  "bench_e11_batching"
  "bench_e11_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
