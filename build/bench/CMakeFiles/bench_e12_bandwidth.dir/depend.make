# Empty dependencies file for bench_e12_bandwidth.
# This may be replaced when dependencies are built.
