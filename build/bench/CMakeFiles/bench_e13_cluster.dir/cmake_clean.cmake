file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_cluster.dir/bench_e13_cluster.cc.o"
  "CMakeFiles/bench_e13_cluster.dir/bench_e13_cluster.cc.o.d"
  "bench_e13_cluster"
  "bench_e13_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
