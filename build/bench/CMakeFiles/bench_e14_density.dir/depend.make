# Empty dependencies file for bench_e14_density.
# This may be replaced when dependencies are built.
