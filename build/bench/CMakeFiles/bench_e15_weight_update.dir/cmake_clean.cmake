file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_weight_update.dir/bench_e15_weight_update.cc.o"
  "CMakeFiles/bench_e15_weight_update.dir/bench_e15_weight_update.cc.o.d"
  "bench_e15_weight_update"
  "bench_e15_weight_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_weight_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
