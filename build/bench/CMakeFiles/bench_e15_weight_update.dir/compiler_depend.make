# Empty compiler generated dependencies file for bench_e15_weight_update.
# This may be replaced when dependencies are built.
