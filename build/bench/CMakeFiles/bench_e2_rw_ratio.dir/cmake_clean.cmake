file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_rw_ratio.dir/bench_e2_rw_ratio.cc.o"
  "CMakeFiles/bench_e2_rw_ratio.dir/bench_e2_rw_ratio.cc.o.d"
  "bench_e2_rw_ratio"
  "bench_e2_rw_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_rw_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
