# Empty dependencies file for bench_e2_rw_ratio.
# This may be replaced when dependencies are built.
