# Empty compiler generated dependencies file for bench_e3_refresh_energy.
# This may be replaced when dependencies are built.
