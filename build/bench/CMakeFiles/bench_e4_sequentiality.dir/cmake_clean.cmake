file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_sequentiality.dir/bench_e4_sequentiality.cc.o"
  "CMakeFiles/bench_e4_sequentiality.dir/bench_e4_sequentiality.cc.o.d"
  "bench_e4_sequentiality"
  "bench_e4_sequentiality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_sequentiality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
