file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_capacity.dir/bench_e5_capacity.cc.o"
  "CMakeFiles/bench_e5_capacity.dir/bench_e5_capacity.cc.o.d"
  "bench_e5_capacity"
  "bench_e5_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
