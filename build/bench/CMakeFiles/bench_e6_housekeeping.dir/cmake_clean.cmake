file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_housekeeping.dir/bench_e6_housekeeping.cc.o"
  "CMakeFiles/bench_e6_housekeeping.dir/bench_e6_housekeeping.cc.o.d"
  "bench_e6_housekeeping"
  "bench_e6_housekeeping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_housekeeping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
