# Empty compiler generated dependencies file for bench_e6_housekeeping.
# This may be replaced when dependencies are built.
