# Empty compiler generated dependencies file for bench_e7_dcm_ablation.
# This may be replaced when dependencies are built.
