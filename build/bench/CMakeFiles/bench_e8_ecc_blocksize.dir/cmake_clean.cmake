file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_ecc_blocksize.dir/bench_e8_ecc_blocksize.cc.o"
  "CMakeFiles/bench_e8_ecc_blocksize.dir/bench_e8_ecc_blocksize.cc.o.d"
  "bench_e8_ecc_blocksize"
  "bench_e8_ecc_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_ecc_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
