# Empty dependencies file for bench_e8_ecc_blocksize.
# This may be replaced when dependencies are built.
