
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_f1_endurance.cc" "bench/CMakeFiles/bench_f1_endurance.dir/bench_f1_endurance.cc.o" "gcc" "bench/CMakeFiles/bench_f1_endurance.dir/bench_f1_endurance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/mrm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/mrm_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mrm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/tier/CMakeFiles/mrm_tier.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mrm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/mrm/CMakeFiles/mrm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/mrm_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mrm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
