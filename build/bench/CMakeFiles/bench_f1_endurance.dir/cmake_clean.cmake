file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_endurance.dir/bench_f1_endurance.cc.o"
  "CMakeFiles/bench_f1_endurance.dir/bench_f1_endurance.cc.o.d"
  "bench_f1_endurance"
  "bench_f1_endurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
