# Empty dependencies file for bench_f1_endurance.
# This may be replaced when dependencies are built.
