file(REMOVE_RECURSE
  "CMakeFiles/configurable_sim.dir/configurable_sim.cpp.o"
  "CMakeFiles/configurable_sim.dir/configurable_sim.cpp.o.d"
  "configurable_sim"
  "configurable_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/configurable_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
