# Empty compiler generated dependencies file for configurable_sim.
# This may be replaced when dependencies are built.
