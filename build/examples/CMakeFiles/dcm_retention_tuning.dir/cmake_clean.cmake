file(REMOVE_RECURSE
  "CMakeFiles/dcm_retention_tuning.dir/dcm_retention_tuning.cpp.o"
  "CMakeFiles/dcm_retention_tuning.dir/dcm_retention_tuning.cpp.o.d"
  "dcm_retention_tuning"
  "dcm_retention_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcm_retention_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
