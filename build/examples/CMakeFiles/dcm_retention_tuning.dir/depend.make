# Empty dependencies file for dcm_retention_tuning.
# This may be replaced when dependencies are built.
