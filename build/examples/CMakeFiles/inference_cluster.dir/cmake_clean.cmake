file(REMOVE_RECURSE
  "CMakeFiles/inference_cluster.dir/inference_cluster.cpp.o"
  "CMakeFiles/inference_cluster.dir/inference_cluster.cpp.o.d"
  "inference_cluster"
  "inference_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
