# Empty dependencies file for inference_cluster.
# This may be replaced when dependencies are built.
