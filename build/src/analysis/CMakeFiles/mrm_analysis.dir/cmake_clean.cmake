file(REMOVE_RECURSE
  "CMakeFiles/mrm_analysis.dir/density.cc.o"
  "CMakeFiles/mrm_analysis.dir/density.cc.o.d"
  "CMakeFiles/mrm_analysis.dir/endurance.cc.o"
  "CMakeFiles/mrm_analysis.dir/endurance.cc.o.d"
  "CMakeFiles/mrm_analysis.dir/tco.cc.o"
  "CMakeFiles/mrm_analysis.dir/tco.cc.o.d"
  "libmrm_analysis.a"
  "libmrm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
