file(REMOVE_RECURSE
  "libmrm_analysis.a"
)
