# Empty dependencies file for mrm_analysis.
# This may be replaced when dependencies are built.
