
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cell/crossbar.cc" "src/cell/CMakeFiles/mrm_cell.dir/crossbar.cc.o" "gcc" "src/cell/CMakeFiles/mrm_cell.dir/crossbar.cc.o.d"
  "/root/repo/src/cell/mlc.cc" "src/cell/CMakeFiles/mrm_cell.dir/mlc.cc.o" "gcc" "src/cell/CMakeFiles/mrm_cell.dir/mlc.cc.o.d"
  "/root/repo/src/cell/refresh_model.cc" "src/cell/CMakeFiles/mrm_cell.dir/refresh_model.cc.o" "gcc" "src/cell/CMakeFiles/mrm_cell.dir/refresh_model.cc.o.d"
  "/root/repo/src/cell/technology.cc" "src/cell/CMakeFiles/mrm_cell.dir/technology.cc.o" "gcc" "src/cell/CMakeFiles/mrm_cell.dir/technology.cc.o.d"
  "/root/repo/src/cell/tradeoff.cc" "src/cell/CMakeFiles/mrm_cell.dir/tradeoff.cc.o" "gcc" "src/cell/CMakeFiles/mrm_cell.dir/tradeoff.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
