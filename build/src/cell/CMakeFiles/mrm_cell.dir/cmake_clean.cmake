file(REMOVE_RECURSE
  "CMakeFiles/mrm_cell.dir/crossbar.cc.o"
  "CMakeFiles/mrm_cell.dir/crossbar.cc.o.d"
  "CMakeFiles/mrm_cell.dir/mlc.cc.o"
  "CMakeFiles/mrm_cell.dir/mlc.cc.o.d"
  "CMakeFiles/mrm_cell.dir/refresh_model.cc.o"
  "CMakeFiles/mrm_cell.dir/refresh_model.cc.o.d"
  "CMakeFiles/mrm_cell.dir/technology.cc.o"
  "CMakeFiles/mrm_cell.dir/technology.cc.o.d"
  "CMakeFiles/mrm_cell.dir/tradeoff.cc.o"
  "CMakeFiles/mrm_cell.dir/tradeoff.cc.o.d"
  "libmrm_cell.a"
  "libmrm_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrm_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
