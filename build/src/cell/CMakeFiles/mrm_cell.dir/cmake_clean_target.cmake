file(REMOVE_RECURSE
  "libmrm_cell.a"
)
