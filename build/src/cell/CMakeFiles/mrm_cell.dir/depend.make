# Empty dependencies file for mrm_cell.
# This may be replaced when dependencies are built.
