file(REMOVE_RECURSE
  "CMakeFiles/mrm_cluster.dir/cluster.cc.o"
  "CMakeFiles/mrm_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/mrm_cluster.dir/node_model.cc.o"
  "CMakeFiles/mrm_cluster.dir/node_model.cc.o.d"
  "libmrm_cluster.a"
  "libmrm_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrm_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
