file(REMOVE_RECURSE
  "libmrm_cluster.a"
)
