# Empty compiler generated dependencies file for mrm_cluster.
# This may be replaced when dependencies are built.
