file(REMOVE_RECURSE
  "CMakeFiles/mrm_common.dir/config.cc.o"
  "CMakeFiles/mrm_common.dir/config.cc.o.d"
  "CMakeFiles/mrm_common.dir/logging.cc.o"
  "CMakeFiles/mrm_common.dir/logging.cc.o.d"
  "CMakeFiles/mrm_common.dir/rng.cc.o"
  "CMakeFiles/mrm_common.dir/rng.cc.o.d"
  "CMakeFiles/mrm_common.dir/stats.cc.o"
  "CMakeFiles/mrm_common.dir/stats.cc.o.d"
  "CMakeFiles/mrm_common.dir/table.cc.o"
  "CMakeFiles/mrm_common.dir/table.cc.o.d"
  "libmrm_common.a"
  "libmrm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
