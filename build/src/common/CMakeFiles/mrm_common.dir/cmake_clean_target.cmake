file(REMOVE_RECURSE
  "libmrm_common.a"
)
