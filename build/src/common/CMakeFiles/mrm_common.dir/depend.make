# Empty dependencies file for mrm_common.
# This may be replaced when dependencies are built.
