file(REMOVE_RECURSE
  "CMakeFiles/mrm_driver.dir/builders.cc.o"
  "CMakeFiles/mrm_driver.dir/builders.cc.o.d"
  "libmrm_driver.a"
  "libmrm_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrm_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
