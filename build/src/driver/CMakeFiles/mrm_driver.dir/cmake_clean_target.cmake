file(REMOVE_RECURSE
  "libmrm_driver.a"
)
