# Empty compiler generated dependencies file for mrm_driver.
# This may be replaced when dependencies are built.
