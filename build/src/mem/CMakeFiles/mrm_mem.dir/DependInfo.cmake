
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_map.cc" "src/mem/CMakeFiles/mrm_mem.dir/address_map.cc.o" "gcc" "src/mem/CMakeFiles/mrm_mem.dir/address_map.cc.o.d"
  "/root/repo/src/mem/bank.cc" "src/mem/CMakeFiles/mrm_mem.dir/bank.cc.o" "gcc" "src/mem/CMakeFiles/mrm_mem.dir/bank.cc.o.d"
  "/root/repo/src/mem/controller.cc" "src/mem/CMakeFiles/mrm_mem.dir/controller.cc.o" "gcc" "src/mem/CMakeFiles/mrm_mem.dir/controller.cc.o.d"
  "/root/repo/src/mem/device_config.cc" "src/mem/CMakeFiles/mrm_mem.dir/device_config.cc.o" "gcc" "src/mem/CMakeFiles/mrm_mem.dir/device_config.cc.o.d"
  "/root/repo/src/mem/flash.cc" "src/mem/CMakeFiles/mrm_mem.dir/flash.cc.o" "gcc" "src/mem/CMakeFiles/mrm_mem.dir/flash.cc.o.d"
  "/root/repo/src/mem/memory_system.cc" "src/mem/CMakeFiles/mrm_mem.dir/memory_system.cc.o" "gcc" "src/mem/CMakeFiles/mrm_mem.dir/memory_system.cc.o.d"
  "/root/repo/src/mem/stream_model.cc" "src/mem/CMakeFiles/mrm_mem.dir/stream_model.cc.o" "gcc" "src/mem/CMakeFiles/mrm_mem.dir/stream_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/mrm_cell.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
