file(REMOVE_RECURSE
  "CMakeFiles/mrm_mem.dir/address_map.cc.o"
  "CMakeFiles/mrm_mem.dir/address_map.cc.o.d"
  "CMakeFiles/mrm_mem.dir/bank.cc.o"
  "CMakeFiles/mrm_mem.dir/bank.cc.o.d"
  "CMakeFiles/mrm_mem.dir/controller.cc.o"
  "CMakeFiles/mrm_mem.dir/controller.cc.o.d"
  "CMakeFiles/mrm_mem.dir/device_config.cc.o"
  "CMakeFiles/mrm_mem.dir/device_config.cc.o.d"
  "CMakeFiles/mrm_mem.dir/flash.cc.o"
  "CMakeFiles/mrm_mem.dir/flash.cc.o.d"
  "CMakeFiles/mrm_mem.dir/memory_system.cc.o"
  "CMakeFiles/mrm_mem.dir/memory_system.cc.o.d"
  "CMakeFiles/mrm_mem.dir/stream_model.cc.o"
  "CMakeFiles/mrm_mem.dir/stream_model.cc.o.d"
  "libmrm_mem.a"
  "libmrm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
