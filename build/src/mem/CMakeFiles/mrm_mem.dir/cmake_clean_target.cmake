file(REMOVE_RECURSE
  "libmrm_mem.a"
)
