# Empty dependencies file for mrm_mem.
# This may be replaced when dependencies are built.
