
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mrm/control_plane.cc" "src/mrm/CMakeFiles/mrm_core.dir/control_plane.cc.o" "gcc" "src/mrm/CMakeFiles/mrm_core.dir/control_plane.cc.o.d"
  "/root/repo/src/mrm/dcm.cc" "src/mrm/CMakeFiles/mrm_core.dir/dcm.cc.o" "gcc" "src/mrm/CMakeFiles/mrm_core.dir/dcm.cc.o.d"
  "/root/repo/src/mrm/ecc.cc" "src/mrm/CMakeFiles/mrm_core.dir/ecc.cc.o" "gcc" "src/mrm/CMakeFiles/mrm_core.dir/ecc.cc.o.d"
  "/root/repo/src/mrm/mrm_device.cc" "src/mrm/CMakeFiles/mrm_core.dir/mrm_device.cc.o" "gcc" "src/mrm/CMakeFiles/mrm_core.dir/mrm_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/mrm_cell.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
