file(REMOVE_RECURSE
  "CMakeFiles/mrm_core.dir/control_plane.cc.o"
  "CMakeFiles/mrm_core.dir/control_plane.cc.o.d"
  "CMakeFiles/mrm_core.dir/dcm.cc.o"
  "CMakeFiles/mrm_core.dir/dcm.cc.o.d"
  "CMakeFiles/mrm_core.dir/ecc.cc.o"
  "CMakeFiles/mrm_core.dir/ecc.cc.o.d"
  "CMakeFiles/mrm_core.dir/mrm_device.cc.o"
  "CMakeFiles/mrm_core.dir/mrm_device.cc.o.d"
  "libmrm_core.a"
  "libmrm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
