file(REMOVE_RECURSE
  "libmrm_core.a"
)
