# Empty dependencies file for mrm_core.
# This may be replaced when dependencies are built.
