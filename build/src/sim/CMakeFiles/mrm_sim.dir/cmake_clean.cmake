file(REMOVE_RECURSE
  "CMakeFiles/mrm_sim.dir/event_queue.cc.o"
  "CMakeFiles/mrm_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/mrm_sim.dir/simulator.cc.o"
  "CMakeFiles/mrm_sim.dir/simulator.cc.o.d"
  "libmrm_sim.a"
  "libmrm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
