file(REMOVE_RECURSE
  "libmrm_sim.a"
)
