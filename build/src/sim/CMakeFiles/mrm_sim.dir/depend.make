# Empty dependencies file for mrm_sim.
# This may be replaced when dependencies are built.
