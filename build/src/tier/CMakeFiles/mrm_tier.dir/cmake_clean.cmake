file(REMOVE_RECURSE
  "CMakeFiles/mrm_tier.dir/refresh_or_recompute.cc.o"
  "CMakeFiles/mrm_tier.dir/refresh_or_recompute.cc.o.d"
  "CMakeFiles/mrm_tier.dir/tier_spec.cc.o"
  "CMakeFiles/mrm_tier.dir/tier_spec.cc.o.d"
  "CMakeFiles/mrm_tier.dir/tiered_backend.cc.o"
  "CMakeFiles/mrm_tier.dir/tiered_backend.cc.o.d"
  "libmrm_tier.a"
  "libmrm_tier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrm_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
