file(REMOVE_RECURSE
  "libmrm_tier.a"
)
