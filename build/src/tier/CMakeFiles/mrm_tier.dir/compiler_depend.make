# Empty compiler generated dependencies file for mrm_tier.
# This may be replaced when dependencies are built.
