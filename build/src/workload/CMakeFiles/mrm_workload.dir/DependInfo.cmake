
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/backend.cc" "src/workload/CMakeFiles/mrm_workload.dir/backend.cc.o" "gcc" "src/workload/CMakeFiles/mrm_workload.dir/backend.cc.o.d"
  "/root/repo/src/workload/inference_engine.cc" "src/workload/CMakeFiles/mrm_workload.dir/inference_engine.cc.o" "gcc" "src/workload/CMakeFiles/mrm_workload.dir/inference_engine.cc.o.d"
  "/root/repo/src/workload/model_config.cc" "src/workload/CMakeFiles/mrm_workload.dir/model_config.cc.o" "gcc" "src/workload/CMakeFiles/mrm_workload.dir/model_config.cc.o.d"
  "/root/repo/src/workload/request_generator.cc" "src/workload/CMakeFiles/mrm_workload.dir/request_generator.cc.o" "gcc" "src/workload/CMakeFiles/mrm_workload.dir/request_generator.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/mrm_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/mrm_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
