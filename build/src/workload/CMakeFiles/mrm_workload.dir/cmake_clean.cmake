file(REMOVE_RECURSE
  "CMakeFiles/mrm_workload.dir/backend.cc.o"
  "CMakeFiles/mrm_workload.dir/backend.cc.o.d"
  "CMakeFiles/mrm_workload.dir/inference_engine.cc.o"
  "CMakeFiles/mrm_workload.dir/inference_engine.cc.o.d"
  "CMakeFiles/mrm_workload.dir/model_config.cc.o"
  "CMakeFiles/mrm_workload.dir/model_config.cc.o.d"
  "CMakeFiles/mrm_workload.dir/request_generator.cc.o"
  "CMakeFiles/mrm_workload.dir/request_generator.cc.o.d"
  "CMakeFiles/mrm_workload.dir/trace.cc.o"
  "CMakeFiles/mrm_workload.dir/trace.cc.o.d"
  "libmrm_workload.a"
  "libmrm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
