file(REMOVE_RECURSE
  "libmrm_workload.a"
)
