# Empty dependencies file for mrm_workload.
# This may be replaced when dependencies are built.
