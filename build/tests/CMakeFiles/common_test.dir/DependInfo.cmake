
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_config_test.cc" "tests/CMakeFiles/common_test.dir/common_config_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common_config_test.cc.o.d"
  "/root/repo/tests/common_logging_test.cc" "tests/CMakeFiles/common_test.dir/common_logging_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common_logging_test.cc.o.d"
  "/root/repo/tests/common_result_test.cc" "tests/CMakeFiles/common_test.dir/common_result_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common_result_test.cc.o.d"
  "/root/repo/tests/common_rng_test.cc" "tests/CMakeFiles/common_test.dir/common_rng_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common_rng_test.cc.o.d"
  "/root/repo/tests/common_stats_test.cc" "tests/CMakeFiles/common_test.dir/common_stats_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common_stats_test.cc.o.d"
  "/root/repo/tests/common_table_test.cc" "tests/CMakeFiles/common_test.dir/common_table_test.cc.o" "gcc" "tests/CMakeFiles/common_test.dir/common_table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/mrm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/mrm_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mrm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/tier/CMakeFiles/mrm_tier.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mrm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/mrm/CMakeFiles/mrm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/mrm_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mrm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
