
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem_address_map_test.cc" "tests/CMakeFiles/mem_test.dir/mem_address_map_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem_address_map_test.cc.o.d"
  "/root/repo/tests/mem_bank_test.cc" "tests/CMakeFiles/mem_test.dir/mem_bank_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem_bank_test.cc.o.d"
  "/root/repo/tests/mem_controller_test.cc" "tests/CMakeFiles/mem_test.dir/mem_controller_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem_controller_test.cc.o.d"
  "/root/repo/tests/mem_flash_test.cc" "tests/CMakeFiles/mem_test.dir/mem_flash_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem_flash_test.cc.o.d"
  "/root/repo/tests/mem_memory_system_test.cc" "tests/CMakeFiles/mem_test.dir/mem_memory_system_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem_memory_system_test.cc.o.d"
  "/root/repo/tests/mem_property_test.cc" "tests/CMakeFiles/mem_test.dir/mem_property_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem_property_test.cc.o.d"
  "/root/repo/tests/mem_stream_model_test.cc" "tests/CMakeFiles/mem_test.dir/mem_stream_model_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem_stream_model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/mrm_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/mrm_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mrm_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/tier/CMakeFiles/mrm_tier.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mrm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/mrm/CMakeFiles/mrm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/mrm_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mrm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
