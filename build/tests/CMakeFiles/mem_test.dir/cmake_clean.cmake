file(REMOVE_RECURSE
  "CMakeFiles/mem_test.dir/mem_address_map_test.cc.o"
  "CMakeFiles/mem_test.dir/mem_address_map_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem_bank_test.cc.o"
  "CMakeFiles/mem_test.dir/mem_bank_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem_controller_test.cc.o"
  "CMakeFiles/mem_test.dir/mem_controller_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem_flash_test.cc.o"
  "CMakeFiles/mem_test.dir/mem_flash_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem_memory_system_test.cc.o"
  "CMakeFiles/mem_test.dir/mem_memory_system_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem_property_test.cc.o"
  "CMakeFiles/mem_test.dir/mem_property_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem_stream_model_test.cc.o"
  "CMakeFiles/mem_test.dir/mem_stream_model_test.cc.o.d"
  "mem_test"
  "mem_test.pdb"
  "mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
