file(REMOVE_RECURSE
  "CMakeFiles/mrm_test.dir/mrm_control_plane_test.cc.o"
  "CMakeFiles/mrm_test.dir/mrm_control_plane_test.cc.o.d"
  "CMakeFiles/mrm_test.dir/mrm_dcm_test.cc.o"
  "CMakeFiles/mrm_test.dir/mrm_dcm_test.cc.o.d"
  "CMakeFiles/mrm_test.dir/mrm_device_test.cc.o"
  "CMakeFiles/mrm_test.dir/mrm_device_test.cc.o.d"
  "CMakeFiles/mrm_test.dir/mrm_ecc_property_test.cc.o"
  "CMakeFiles/mrm_test.dir/mrm_ecc_property_test.cc.o.d"
  "CMakeFiles/mrm_test.dir/mrm_ecc_test.cc.o"
  "CMakeFiles/mrm_test.dir/mrm_ecc_test.cc.o.d"
  "CMakeFiles/mrm_test.dir/mrm_property_test.cc.o"
  "CMakeFiles/mrm_test.dir/mrm_property_test.cc.o.d"
  "mrm_test"
  "mrm_test.pdb"
  "mrm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
