# Empty compiler generated dependencies file for mrm_test.
# This may be replaced when dependencies are built.
