file(REMOVE_RECURSE
  "CMakeFiles/tier_test.dir/tier_backend_test.cc.o"
  "CMakeFiles/tier_test.dir/tier_backend_test.cc.o.d"
  "CMakeFiles/tier_test.dir/tier_refresh_or_recompute_test.cc.o"
  "CMakeFiles/tier_test.dir/tier_refresh_or_recompute_test.cc.o.d"
  "CMakeFiles/tier_test.dir/tier_spec_test.cc.o"
  "CMakeFiles/tier_test.dir/tier_spec_test.cc.o.d"
  "tier_test"
  "tier_test.pdb"
  "tier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
