// Example: config-file-driven what-if runs — no recompilation needed.
//
// Usage:
//   ./build/examples/configurable_sim                # built-in demo config
//   ./build/examples/configurable_sim my_run.cfg     # your scenario
//
// The built-in demo compares an HBM-only node against an HBM+MRM node by
// flipping two lines of config.

#include <cstdio>
#include <string>

#include "src/common/config.h"
#include "src/driver/builders.h"

namespace {

using namespace mrm;  // NOLINT: example brevity

constexpr const char* kBaselineConfig = R"(
# HBM-only Llama2-70B serving node
model             = llama2-70b
hbm.preset        = hbm3e
hbm.devices       = 8
engine.max_batch  = 16
engine.tflops     = 1000
workload.profile  = splitwise-conversation
workload.rate     = 8
workload.requests = 32
workload.seed     = 7
)";

constexpr const char* kMrmConfig = R"(
# Same node with a 256 GiB RRAM MRM tier for weights + cold KV
model             = llama2-70b
hbm.preset        = hbm3e
hbm.devices       = 2
mrm.technology    = rram
mrm.channels      = 96
mrm.zones         = 1024
mrm.retention     = 6h
placement.weights = mrm
placement.kv_hot_fraction = 0.15
engine.max_batch  = 16
engine.tflops     = 1000
workload.profile  = splitwise-conversation
workload.rate     = 8
workload.requests = 32
workload.seed     = 7
)";

int RunFromText(const char* title, const std::string& text) {
  auto parsed = Config::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "config error: %s\n", parsed.error().message().c_str());
    return 1;
  }
  auto scenario = driver::BuildScenario(parsed.value());
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", scenario.error().message().c_str());
    return 1;
  }
  const driver::ScenarioResult result = driver::RunScenario(scenario.value());
  std::printf("%s  [%s]\n", title, result.backend_name.c_str());
  std::printf("  completed %llu requests, %.1f tokens/s, %.3g mJ/token\n",
              static_cast<unsigned long long>(result.summary.requests_completed),
              result.summary.decode_tokens_per_s(),
              result.summary.energy_per_decode_token_j() * 1e3);
  std::printf("  memory $%.0f -> %.3g tokens per memory-$\n\n",
              result.tco.memory_cost_dollars, result.tco.tokens_per_memory_dollar);

  // Flag config typos: keys nobody consumed.
  const auto untouched = parsed.value().UntouchedKeys();
  for (const auto& key : untouched) {
    std::fprintf(stderr, "  warning: unused config key '%s'\n", key.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    auto config = Config::FromFile(argv[1]);
    if (!config.ok()) {
      std::fprintf(stderr, "%s\n", config.error().message().c_str());
      return 1;
    }
    auto scenario = driver::BuildScenario(config.value());
    if (!scenario.ok()) {
      std::fprintf(stderr, "%s\n", scenario.error().message().c_str());
      return 1;
    }
    const driver::ScenarioResult result = driver::RunScenario(scenario.value());
    std::printf("%s: %.1f tokens/s, %.3g mJ/token, %.3g tokens per memory-$\n",
                argv[1], result.summary.decode_tokens_per_s(),
                result.summary.energy_per_decode_token_j() * 1e3,
                result.tco.tokens_per_memory_dollar);
    return 0;
  }
  int status = RunFromText("[baseline]", kBaselineConfig);
  status |= RunFromText("[mrm]     ", kMrmConfig);
  return status;
}
