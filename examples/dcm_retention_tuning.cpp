// Example: exploring the Dynamically Configurable Memory (DCM) design space.
//
// For each MRM cell technology, sweeps the programmed retention and prints
// the full operating point (write energy/latency, endurance, scrub deadline
// under a 64 KiB-codeword ECC) — the table a deployment engineer would use
// to pick per-stream retention targets.
//
// Build & run:  ./build/examples/dcm_retention_tuning

#include <cstdio>

#include "src/cell/tradeoff.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/mrm/ecc.h"

int main() {
  using namespace mrm;  // NOLINT: example brevity

  std::printf("DCM design space: operating points per programmed retention\n");
  std::printf("(ECC: one codeword per 64 KiB block, UBER target 1e-15)\n\n");

  const double retentions[] = {60.0, kHour, 6.0 * kHour, kDay, 7.0 * kDay,
                               30.0 * kDay, kYear, 10.0 * kYear};

  for (cell::Technology tech :
       {cell::Technology::kSttMram, cell::Technology::kRram, cell::Technology::kPcm}) {
    auto tradeoff = cell::MakeTradeoffFor(tech).value();

    TablePrinter table({"retention", "write pJ/b", "write ns", "endurance",
                        "ECC-safe age", "scrub bw (1 TiB resident)"});
    for (double retention : retentions) {
      const cell::OperatingPoint point = tradeoff->AtRetention(retention);
      const mrmcore::EccScheme scheme = mrmcore::DesignEcc(
          8ull * 64 * kKiB, point.rber_at_retention, 1e-15 * 8.0 * 64.0 * kKiB);
      const double safe_age =
          mrmcore::MaxSafeAge(*tradeoff, point.retention_s, scheme, 1e-15);
      const double scrub_bw = safe_age > 0.0 ? static_cast<double>(kTiB) / safe_age : 0.0;
      table.AddRow({FormatSeconds(point.retention_s),
                    FormatNumber(point.write_energy_pj_per_bit),
                    FormatNumber(point.write_latency_ns),
                    FormatNumber(point.endurance_cycles), FormatSeconds(safe_age),
                    FormatBytes(static_cast<std::uint64_t>(scrub_bw)) + "/s"});
    }
    table.Print(tradeoff->name());
  }

  std::printf("How to read this: pick the shortest retention whose ECC-safe age still\n");
  std::printf("covers your data lifetime — every step down buys write energy, write\n");
  std::printf("latency and endurance (the paper's §3 trade-off), while the scrub\n");
  std::printf("bandwidth column shows the §4 control-plane cost if you go too short.\n");
  return 0;
}
