// Example: serving Llama2-70B on an accelerator with an HBM + MRM memory
// system — the deployment the paper sketches in §4.
//
// Builds tier specs from the cycle-level device presets, routes weights and
// cold KV to MRM, runs a Splitwise-style request mix through the
// token-level inference engine, and prints throughput / latency / energy /
// TCO next to an HBM-only baseline.
//
// Build & run:  ./build/examples/inference_cluster

#include <cstdio>

#include "src/analysis/tco.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/mem/device_config.h"
#include "src/tier/tier_spec.h"
#include "src/tier/tiered_backend.h"
#include "src/workload/inference_engine.h"
#include "src/workload/request_generator.h"

namespace {

using namespace mrm;  // NOLINT: example brevity

void PrintRun(const char* name, const workload::EngineSummary& summary,
              const analysis::TcoReport& tco) {
  std::printf("%s\n", name);
  std::printf("  requests completed : %llu (rejected %llu)\n",
              static_cast<unsigned long long>(summary.requests_completed),
              static_cast<unsigned long long>(summary.requests_rejected));
  std::printf("  decode throughput  : %.1f tokens/s (mean batch %.1f)\n",
              summary.decode_tokens_per_s(), summary.mean_batch);
  std::printf("  TTFT               : %s ms\n", summary.ttft_ms.Summary().c_str());
  std::printf("  memory bound steps : %.0f%%\n", summary.memory_bound_fraction() * 100.0);
  std::printf("  memory energy      : %.3g mJ/token, avg %.1f W\n",
              summary.energy_per_decode_token_j() * 1e3, tco.memory_power_w);
  std::printf("  memory cost        : $%.0f -> %.3g tokens per memory-$\n\n",
              tco.memory_cost_dollars, tco.tokens_per_memory_dollar);
}

}  // namespace

int main() {
  const workload::FoundationModelConfig model = workload::Llama2_70B();
  std::printf("Serving %s: weights %s, KV vector %s/token\n\n", model.name.c_str(),
              FormatBytes(model.weight_bytes()).c_str(),
              FormatBytes(model.kv_bytes_per_token()).c_str());

  // The request mix: Splitwise conversation profile, Poisson arrivals.
  workload::RequestGenerator generator(workload::SplitwiseConversation(), 8.0, 2024);
  std::vector<workload::InferenceRequest> requests;
  for (int i = 0; i < 48; ++i) {
    requests.push_back(generator.Next());
  }

  workload::EngineConfig engine_config;
  engine_config.model = model;
  engine_config.max_batch = 16;
  engine_config.compute_tflops = 1000.0;

  // Baseline: 8 HBM3e stacks (B200-class capacity).
  {
    const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 8);
    workload::AnalyticBackend backend(hbm, model.weight_bytes());
    workload::InferenceEngine engine(engine_config, &backend);
    const workload::EngineSummary summary = engine.Run(requests);
    PrintRun("[baseline] 8x HBM3e (192 GiB)", summary, analysis::ComputeTco(summary, {hbm}));
  }

  // MRM deployment: 2 HBM3e stacks for activations + hot KV, a 1 TiB MRM
  // device for weights + cold KV, scrub cost included.
  {
    const workload::TierSpec hbm = tier::TierSpecFromDevice(mem::HBM3EConfig(), 2);
    mrmcore::MrmDeviceConfig mrm_config;
    mrm_config.name = "mrm-rram";
    mrm_config.technology = cell::Technology::kRram;
    mrm_config.channels = 96;
    mrm_config.channel_read_bw_bytes_per_s = 100e9;
    mrm_config.zones = 1024;  // 256 GiB
    const workload::TierSpec mrm = tier::TierSpecFromMrm(mrm_config, 1, 6.0 * kHour);

    tier::Placement placement;
    placement.weights_tier = 1;
    placement.kv_hot_tier = 0;
    placement.kv_cold_tier = 1;
    placement.kv_hot_fraction = 0.15;
    placement.activations_tier = 0;
    tier::TieredBackendOptions options;
    options.scrub_tier = 1;
    options.scrub_safe_age_s = 3.0 * kHour;

    tier::TieredBackend backend({hbm, mrm}, placement, model.weight_bytes(), options);
    workload::InferenceEngine engine(engine_config, &backend);
    const workload::EngineSummary summary = engine.Run(requests);
    PrintRun("[proposal] 2x HBM3e + 256 GiB MRM (weights + cold KV on MRM)", summary,
             analysis::ComputeTco(summary, {hbm, mrm}));
    std::printf("  scrub overhead     : %s rewritten, %.3g J\n",
                FormatBytes(backend.scrub_bytes()).c_str(), backend.scrub_joules());
  }
  return 0;
}
