// Example: KV-cache offload with the refresh-or-recompute scheduler (§4).
//
// Simulates idle conversations parked on MRM: when a context's retention is
// about to lapse, the scheduler weighs rewriting its KV cache (certain MRM
// write cost) against letting it expire and re-running prefill if the user
// returns (probabilistic compute cost). Sweeps the reuse probability and
// shows the break-even the paper's scheduling section implies.
//
// Build & run:  ./build/examples/kv_offload

#include <cstdio>

#include "src/cell/tradeoff.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/tier/refresh_or_recompute.h"
#include "src/workload/model_config.h"

int main() {
  using namespace mrm;  // NOLINT: example brevity

  const workload::FoundationModelConfig model = workload::Llama2_70B();
  const int context_tokens = 4096;
  const std::uint64_t kv_bytes = model.kv_cache_bytes(context_tokens);

  // MRM rewrite cost at a 6-hour retention point (read + write per byte).
  auto tradeoff = cell::MakeTradeoffFor(cell::Technology::kSttMram).value();
  const cell::OperatingPoint point = tradeoff->AtRetention(6.0 * kHour);
  const double rewrite_j_per_byte =
      (point.write_energy_pj_per_bit + point.read_energy_pj_per_bit) * 8.0 * 1e-12;

  // Recompute cost: prefill energy per token on a ~1 kW accelerator running
  // at ~10k tokens/s prefill -> ~0.1 J/token.
  const double recompute_j_per_token = 0.1;
  const double recompute_s_per_token = 1.0 / 10000.0;

  std::printf("KV offload for %s: %d-token context = %s of KV on MRM\n\n",
              model.name.c_str(), context_tokens, FormatBytes(kv_bytes).c_str());

  tier::RefreshOrRecomputeParams params;
  params.kv_bytes = kv_bytes;
  params.context_tokens = context_tokens;
  params.rewrite_j_per_byte = rewrite_j_per_byte;
  params.recompute_j_per_token = recompute_j_per_token;
  params.recompute_seconds_per_token = recompute_s_per_token;

  TablePrinter table({"P[user returns]", "refresh cost J", "E[recompute] J", "decision"});
  for (double p : {0.00001, 0.00003, 0.0001, 0.001, 0.01, 0.1, 0.9}) {
    params.reuse_probability = p;
    const tier::RefreshDecision decision = tier::DecideRefreshOrRecompute(params);
    table.AddRow({FormatNumber(p), FormatNumber(decision.refresh_cost_j),
                  FormatNumber(decision.expected_recompute_cost_j),
                  decision.refresh ? "refresh (rewrite KV)" : "drop (recompute on return)"});
  }
  table.Print("Refresh-or-recompute sweep");

  std::printf("Break-even reuse probability: %.4f\n",
              tier::BreakEvenReuseProbability(params));

  // Latency-sensitive tier: value each second of extra TTFT at 50 J.
  params.latency_penalty_j_per_s = 50.0;
  std::printf("With a latency SLA (50 J/s penalty on prefill delay): %.4f\n",
              tier::BreakEvenReuseProbability(params));
  std::printf("\nReading: the break-even sits around 1e-4 — MRM rewrites are so cheap that\n");
  std::printf("recompute only wins for essentially-dead contexts, and a latency SLA pushes\n");
  std::printf("the threshold lower still. This is the retention-aware scheduling decision\n");
  std::printf("of paper §4: the control plane can afford to refresh almost everything and\n");
  std::printf("let the rare cold context expire.\n");
  return 0;
}
