// Example: channel-sharded parallel simulation (DESIGN.md §8).
//
// A MemorySystem runs every channel controller on its own lane; with
// sim::Simulator::SetWorkerThreads(N) the lanes execute on a worker pool in
// conservative, epoch-synchronized batches. The schedule is derived from
// simulation state alone, so the results — every counter, histogram bucket
// and picojoule — are bit-identical for any thread count. This example runs
// the same mixed workload serially and sharded, then proves it.
//
// Build & run:  ./build/examples/parallel_channels [--sim-threads=N]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/mem/device_config.h"
#include "src/mem/memory_system.h"
#include "src/sim/simulator.h"

namespace {

using namespace mrm;  // NOLINT: example brevity

struct RunOutput {
  mem::SystemStats stats;
  double sim_seconds = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
};

// 2 MiB of sequential reads plus a burst of random single requests — enough
// concurrent work to keep all 16 HBM3e channels busy.
RunOutput RunWorkload(int threads) {
  sim::Simulator simulator;
  mem::MemorySystem system(&simulator, mem::HBM3EConfig());
  simulator.SetWorkerThreads(threads);

  const auto begin = std::chrono::steady_clock::now();
  bool transfer_done = false;
  system.Transfer(mem::Request::Kind::kRead, 0, 2ull << 20, /*stream=*/0,
                  [&] { transfer_done = true; });
  std::uint64_t rng = 1;
  for (int i = 0; i < 4096; ++i) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    mem::Request request;
    request.kind = (rng >> 40) % 4 == 0 ? mem::Request::Kind::kWrite : mem::Request::Kind::kRead;
    request.addr = (rng >> 8) % (system.capacity_bytes() / 64) * 64;
    request.size = 64;
    system.Enqueue(std::move(request));
  }
  simulator.Run();

  RunOutput out;
  out.stats = system.GetStats();
  out.sim_seconds = simulator.now_seconds();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin).count();
  out.events = simulator.events_executed();
  if (!transfer_done) {
    std::fprintf(stderr, "transfer did not complete\n");
    std::exit(1);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int threads = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sim-threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 14);
    }
  }

  const RunOutput serial = RunWorkload(1);
  const RunOutput sharded = RunWorkload(threads);

  std::printf("workload: 2 MiB sequential read + 4096 mixed requests on %s\n",
              mem::HBM3EConfig().name.c_str());
  std::printf("  serial      : %8llu events, %.4f sim ms, %.3f wall s\n",
              static_cast<unsigned long long>(serial.events), serial.sim_seconds * 1e3,
              serial.wall_seconds);
  std::printf("  %2d threads  : %8llu events, %.4f sim ms, %.3f wall s\n", threads,
              static_cast<unsigned long long>(sharded.events), sharded.sim_seconds * 1e3,
              sharded.wall_seconds);

  const bool identical = serial.stats == sharded.stats && serial.events == sharded.events &&
                         serial.sim_seconds == sharded.sim_seconds;
  std::printf("results bit-identical across thread counts: %s\n", identical ? "yes" : "NO");
  std::printf("  reads=%llu writes=%llu row-hit=%.3f read-p99=%.1f ns energy=%.3g pJ\n",
              static_cast<unsigned long long>(serial.stats.reads_completed),
              static_cast<unsigned long long>(serial.stats.writes_completed),
              serial.stats.row_hit_rate(), serial.stats.read_latency_ns.Quantile(0.99),
              serial.stats.energy.total_pj());
  return identical ? 0 : 1;
}
