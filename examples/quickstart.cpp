// Quickstart: the mrmsim public API in ~80 lines.
//
//  1. Build an MRM device from a cell technology.
//  2. Put a software control plane on top (retention tracking, scrubbing,
//     wear levelling).
//  3. Write data with lifetime hints, read it back, watch soft state expire.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/common/table.h"
#include "src/common/units.h"
#include "src/mrm/control_plane.h"
#include "src/mrm/mrm_device.h"
#include "src/sim/simulator.h"

int main() {
  using namespace mrm;  // NOLINT: example brevity

  // A simulator with 1 ns ticks drives everything.
  sim::Simulator simulator(1e9);

  // 1. An STT-MRAM-based MRM device: zoned, block-addressed, no on-device
  //    refresh or wear levelling.
  mrmcore::MrmDeviceConfig device_config;
  device_config.name = "demo-mrm";
  device_config.technology = cell::Technology::kSttMram;
  device_config.channels = 8;
  device_config.zones = 64;
  device_config.zone_blocks = 256;
  device_config.block_bytes = 64 * kKiB;
  mrmcore::MrmDevice device(&simulator, device_config);
  std::printf("device: %s, %s across %d channels\n", device_config.name.c_str(),
              FormatBytes(device_config.capacity_bytes()).c_str(), device_config.channels);

  // 2. The control plane owns placement, retention and scrubbing.
  mrmcore::ControlPlaneOptions options;
  options.scrub_period_s = 60.0;
  mrmcore::ControlPlane plane(&simulator, &device, options);
  plane.SetLossHandler([](mrmcore::LogicalId id) {
    std::printf("  [loss handler] block %llu expired -> would recompute\n",
                static_cast<unsigned long long>(id));
  });

  // 3. Write two kinds of data: a long-lived "weights" block and a
  //    short-lived "KV cache" block. DCM programs retention per write.
  auto weights = plane.Append(/*lifetime_s=*/30 * kDay);
  auto kv = plane.Append(/*lifetime_s=*/120.0);
  if (!weights.ok() || !kv.ok()) {
    std::printf("append failed\n");
    return 1;
  }
  std::printf("weights block -> retention %s; kv block -> retention %s\n",
              FormatSeconds(plane.RetentionForLifetime(30 * kDay)).c_str(),
              FormatSeconds(plane.RetentionForLifetime(120.0)).c_str());

  // Read both back immediately.
  (void)plane.Read(weights.value(), [](bool ok) {
    std::printf("  weights read at t=0s: %s\n", ok ? "ok" : "LOST");
  });
  (void)plane.Read(kv.value(), [](bool ok) {
    std::printf("  kv read at t=0s:      %s\n", ok ? "ok" : "LOST");
  });
  simulator.RunUntil(simulator.SecondsToTicks(1.0));

  // Advance 10 simulated minutes: the KV block's lifetime lapses, the scrub
  // pass drops it (soft state), the weights block survives.
  simulator.RunUntil(simulator.SecondsToTicks(600.0));
  std::printf("t=600s: weights alive=%s, kv alive=%s\n",
              plane.Alive(weights.value()) ? "yes" : "no",
              plane.Alive(kv.value()) ? "yes" : "no");

  const mrmcore::MrmDeviceStats& stats = device.stats();
  std::printf("device stats: %llu blocks written, %llu read, %.3g J total energy\n",
              static_cast<unsigned long long>(stats.blocks_written),
              static_cast<unsigned long long>(stats.blocks_read),
              device.TotalEnergyPj() * 1e-12);
  std::printf("control plane: %llu scrub rewrites, %llu drops, %llu zones reclaimed\n",
              static_cast<unsigned long long>(plane.stats().scrub_rewrites),
              static_cast<unsigned long long>(plane.stats().drops),
              static_cast<unsigned long long>(plane.stats().zones_reclaimed));
  return 0;
}
