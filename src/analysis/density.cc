#include "src/analysis/density.h"

#include "src/common/logging.h"
#include "src/mrm/ecc.h"

namespace mrm {
namespace analysis {

MlcDensityReport ComputeMlcDensity(const cell::OperatingPoint& slc_point, int bits_per_cell,
                                   std::uint64_t codeword_payload_bits, double target_uber,
                                   const cell::MlcParams& params) {
  MRM_CHECK(bits_per_cell >= 1 && bits_per_cell <= 4);
  MRM_CHECK(codeword_payload_bits > 0);

  const double target_failure =
      target_uber * static_cast<double>(codeword_payload_bits);

  const mrmcore::EccScheme slc_scheme =
      mrmcore::DesignEcc(codeword_payload_bits, slc_point.rber_at_retention, target_failure);

  const cell::OperatingPoint mlc_point =
      cell::DerateForMlc(slc_point, bits_per_cell, params);
  const mrmcore::EccScheme mlc_scheme =
      mrmcore::DesignEcc(codeword_payload_bits, mlc_point.rber_at_retention, target_failure);

  MlcDensityReport report;
  report.bits_per_cell = bits_per_cell;
  report.rber = mlc_point.rber_at_retention;
  report.ecc_overhead = mlc_scheme.overhead;
  report.gross_gain = static_cast<double>(bits_per_cell);
  report.feasible = mlc_scheme.overhead < 1.0;
  if (!report.feasible) {
    report.net_gain = 0.0;
    return report;
  }
  // Capacity per cell after parity, normalized to SLC after its parity.
  report.net_gain = static_cast<double>(bits_per_cell) * (1.0 + slc_scheme.overhead) /
                    (1.0 + mlc_scheme.overhead);
  return report;
}

double CombinedDensityVsDram(const cell::CrossbarParams& crossbar_params,
                             const MlcDensityReport& mlc) {
  const cell::CrossbarDesign design = cell::EvaluateCrossbar(crossbar_params);
  return design.density_vs_dram * mlc.net_gain;
}

}  // namespace analysis
}  // namespace mrm
