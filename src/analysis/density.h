// Net density analysis: MLC encoding and crossbar organization, after ECC.
//
// The paper (§3) argues MRM technologies have "potential for higher density
// and/or lower TCO/TB" via multi-level cells and crossbar layouts. This
// module computes the *net* gains: MLC inflates the raw bit error rate, so
// part of the capacity win is paid back in parity; crossbar arrays are
// bounded by IR drop and sneak currents, so part of the 4F^2 win is paid in
// peripheral area.

#ifndef MRMSIM_SRC_ANALYSIS_DENSITY_H_
#define MRMSIM_SRC_ANALYSIS_DENSITY_H_

#include <cstdint>

#include "src/cell/crossbar.h"
#include "src/cell/mlc.h"
#include "src/cell/tradeoff.h"

namespace mrm {
namespace analysis {

struct MlcDensityReport {
  int bits_per_cell = 1;
  double rber = 0.0;
  double ecc_overhead = 0.0;   // parity / payload at the target UBER
  double gross_gain = 1.0;     // bits per cell
  double net_gain = 1.0;       // after parity, relative to SLC-with-its-ECC
  bool feasible = true;        // false when parity would exceed 100%
};

// Net density of b-bit cells versus SLC at equal reliability, using a
// BCH-like code over `codeword_payload_bits` designed for `target_uber`.
MlcDensityReport ComputeMlcDensity(const cell::OperatingPoint& slc_point, int bits_per_cell,
                                   std::uint64_t codeword_payload_bits, double target_uber,
                                   const cell::MlcParams& params = {});

// Combined technology density versus planar DRAM: crossbar geometry x MLC
// net gain x stacking.
double CombinedDensityVsDram(const cell::CrossbarParams& crossbar_params,
                             const MlcDensityReport& mlc);

}  // namespace analysis
}  // namespace mrm

#endif  // MRMSIM_SRC_ANALYSIS_DENSITY_H_
