#include "src/analysis/endurance.h"

#include "src/common/logging.h"
#include "src/common/units.h"

namespace mrm {
namespace analysis {

double WeightsWritesPerCell(const WeightsEnduranceParams& params) {
  MRM_CHECK(params.update_interval_s > 0.0);
  return params.lifetime_s / params.update_interval_s;
}

double KvWritesPerCell(const KvEnduranceParams& params) {
  MRM_CHECK(params.kv_region_bytes > 0);
  MRM_CHECK(params.wear_leveling_efficiency > 0.0 && params.wear_leveling_efficiency <= 1.0);
  const double vector_bytes = static_cast<double>(params.model.kv_bytes_per_token());
  const double write_rate =
      vector_bytes * (params.prefill_tokens_per_s + params.decode_tokens_per_s);
  const double total_bytes = write_rate * params.lifetime_s;
  const double per_cell = total_bytes / static_cast<double>(params.kv_region_bytes);
  return per_cell / params.wear_leveling_efficiency;
}

Figure1Params::Figure1Params() {
  weights_conservative.update_interval_s = kHour;
  weights_intensive.update_interval_s = 1.0;
  kv.model = workload::Llama2_70B_MHA();  // "a few MBs" per vector (§2)
  kv.kv_region_bytes = 256ull * kGiB;     // KV share of a serving node's memory
}

std::vector<Figure1Entry> BuildFigure1(const Figure1Params& params) {
  std::vector<Figure1Entry> entries;

  entries.push_back({Figure1Entry::Kind::kRequirement, "weights (hourly update, 5y)",
                     WeightsWritesPerCell(params.weights_conservative)});
  entries.push_back({Figure1Entry::Kind::kRequirement, "weights (1/s update, 5y)",
                     WeightsWritesPerCell(params.weights_intensive)});
  entries.push_back(
      {Figure1Entry::Kind::kRequirement, "KV cache (Splitwise rates, 5y)",
       KvWritesPerCell(params.kv)});

  for (const auto& profile : cell::AllTechnologyProfiles()) {
    if (profile.endurance.product_cycles > 0.0) {
      entries.push_back({Figure1Entry::Kind::kProductEndurance, profile.name + " (product)",
                         profile.endurance.product_cycles});
    }
    if (profile.endurance.potential_cycles > 0.0) {
      entries.push_back({Figure1Entry::Kind::kTechnologyPotential,
                         profile.name + " (potential)", profile.endurance.potential_cycles});
    }
  }
  return entries;
}

EnduranceVerdict JudgeEndurance(cell::Technology tech, double writes_per_cell) {
  const cell::TechnologyProfile& profile = cell::GetTechnologyProfile(tech);
  EnduranceVerdict verdict;
  if (writes_per_cell > 0.0) {
    verdict.product_margin = profile.endurance.product_cycles / writes_per_cell;
    verdict.potential_margin = profile.endurance.potential_cycles / writes_per_cell;
  }
  verdict.product_meets = verdict.product_margin >= 1.0;
  verdict.potential_meets = verdict.potential_margin >= 1.0;
  return verdict;
}

}  // namespace analysis
}  // namespace mrm
