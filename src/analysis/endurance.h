// Figure 1: endurance requirements of the inference workload vs. endurance
// of memory technologies (paper §3).
//
// The paper's method, reproduced exactly:
//  * Weights are bulk-overwritten on every model update; over a deployment
//    lifetime the per-cell write count is lifetime / update_interval
//    (the weights region is fully rewritten each time, so every cell sees
//    one write per update). Two operating points: conservative hourly
//    updates and an intensive once-per-second refresh.
//  * KV-cache cells absorb vector appends at the cluster's token rate; with
//    wear spread across the KV region, writes per cell =
//    (vector_bytes x tokens/s x lifetime) / region_bytes, divided by the
//    wear-levelling efficiency. Token rates and median context lengths
//    follow the Splitwise Llama2-70B numbers the paper cites.

#ifndef MRMSIM_SRC_ANALYSIS_ENDURANCE_H_
#define MRMSIM_SRC_ANALYSIS_ENDURANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cell/technology.h"
#include "src/workload/model_config.h"

namespace mrm {
namespace analysis {

struct WeightsEnduranceParams {
  double lifetime_s = 5.0 * 365.0 * 86400.0;  // 5 years
  double update_interval_s = 3600.0;          // hourly (conservative)
};

// Writes per weight cell over the deployment lifetime.
double WeightsWritesPerCell(const WeightsEnduranceParams& params);

struct KvEnduranceParams {
  workload::FoundationModelConfig model;
  // Cluster-level sustained token rates (Splitwise-derived defaults for a
  // Llama2-70B serving node: prefill-heavy machines ingest prompts at
  // thousands of tokens/s; decode machines emit hundreds).
  double prefill_tokens_per_s = 7000.0;
  double decode_tokens_per_s = 600.0;
  // Memory dedicated to KV caches on the node.
  std::uint64_t kv_region_bytes = 0;
  // 1.0 = writes spread perfectly across the region (log-structured zones);
  // lower values model imperfect wear spreading.
  double wear_leveling_efficiency = 1.0;
  double lifetime_s = 5.0 * 365.0 * 86400.0;
};

// Writes per KV-region cell over the deployment lifetime.
double KvWritesPerCell(const KvEnduranceParams& params);

// One bar of Figure 1.
struct Figure1Entry {
  enum class Kind { kRequirement, kProductEndurance, kTechnologyPotential };
  Kind kind;
  std::string label;
  double cycles = 0.0;  // writes per cell (requirement) or endurance (supply)
};

struct Figure1Params {
  WeightsEnduranceParams weights_conservative;  // hourly
  WeightsEnduranceParams weights_intensive;     // per-second
  KvEnduranceParams kv;
  Figure1Params();
};

// The full figure: requirement bars + product/potential endurance bars for
// every technology in the cell registry.
std::vector<Figure1Entry> BuildFigure1(const Figure1Params& params);

// Convenience: does technology `tech` meet requirement `writes_per_cell`
// with its product devices / its demonstrated potential?
struct EnduranceVerdict {
  bool product_meets = false;
  bool potential_meets = false;
  double product_margin = 0.0;    // endurance / requirement
  double potential_margin = 0.0;
};
EnduranceVerdict JudgeEndurance(cell::Technology tech, double writes_per_cell);

}  // namespace analysis
}  // namespace mrm

#endif  // MRMSIM_SRC_ANALYSIS_ENDURANCE_H_
