#include "src/analysis/tco.h"

#include "src/common/units.h"
#include "src/tier/tier_spec.h"

namespace mrm {
namespace analysis {

TcoReport ComputeTco(const workload::EngineSummary& summary,
                     const std::vector<workload::TierSpec>& tiers, const TcoParams& params) {
  TcoReport report;
  report.memory_cost_dollars = tier::SystemCostDollars(tiers);
  report.tokens_per_s = summary.decode_tokens_per_s();
  report.energy_per_token_j = summary.energy_per_decode_token_j();
  report.memory_power_w =
      summary.duration_s > 0.0 ? summary.backend_energy_j / summary.duration_s : 0.0;

  // Memory TCO over the amortization window: capex + energy.
  const double seconds = params.amortization_years * kYear;
  const double energy_kwh = report.memory_power_w * seconds / 3.6e6;
  const double tco = report.memory_cost_dollars +
                     energy_kwh * params.electricity_dollars_per_kwh;
  const double lifetime_tokens = report.tokens_per_s * seconds;
  report.tokens_per_memory_dollar = tco > 0.0 ? lifetime_tokens / tco : 0.0;
  return report;
}

}  // namespace analysis
}  // namespace mrm
