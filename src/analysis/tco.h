// Tokens-per-dollar and energy-per-token metrics (paper §2.1/§5: "maximize
// tokens generated per dollar"). Combines an EngineSummary with the tier
// set that served it.

#ifndef MRMSIM_SRC_ANALYSIS_TCO_H_
#define MRMSIM_SRC_ANALYSIS_TCO_H_

#include <vector>

#include "src/workload/backend.h"
#include "src/workload/inference_engine.h"

namespace mrm {
namespace analysis {

struct TcoParams {
  double electricity_dollars_per_kwh = 0.10;
  double amortization_years = 5.0;
};

struct TcoReport {
  double memory_cost_dollars = 0.0;
  double tokens_per_s = 0.0;
  double energy_per_token_j = 0.0;
  double memory_power_w = 0.0;         // average over the run
  // Tokens per dollar of memory TCO (capex amortized + memory energy).
  double tokens_per_memory_dollar = 0.0;
};

TcoReport ComputeTco(const workload::EngineSummary& summary,
                     const std::vector<workload::TierSpec>& tiers,
                     const TcoParams& params = {});

}  // namespace analysis
}  // namespace mrm

#endif  // MRMSIM_SRC_ANALYSIS_TCO_H_
