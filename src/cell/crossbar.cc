#include "src/cell/crossbar.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace mrm {
namespace cell {

double CrossbarAreaEfficiency(std::uint64_t n, const CrossbarParams& params) {
  if (n == 0) {
    return 0.0;
  }
  const double nd = static_cast<double>(n);
  const double cell_area = nd * nd;
  const double periphery = 2.0 * nd * params.periphery_cells_per_line;
  return cell_area / (cell_area + periphery);
}

CrossbarDesign EvaluateCrossbar(const CrossbarParams& params) {
  MRM_CHECK(params.cell_on_resistance_ohm > 0.0);
  MRM_CHECK(params.wire_resistance_per_cell_ohm > 0.0);
  CrossbarDesign design;

  // IR drop: attenuation = R_cell / (R_cell + 2 N R_wire) >= 1 - max_drop
  //   =>  N <= R_cell * max_drop / ((1 - max_drop) * 2 R_wire).
  const double drop = params.max_ir_drop_fraction;
  design.ir_drop_bound = static_cast<std::uint64_t>(
      params.cell_on_resistance_ohm * drop /
      ((1.0 - drop) * 2.0 * params.wire_resistance_per_cell_ohm));

  // Sneak: (N - 1) half-selected cells each leak I_on / selectivity at half
  // bias (~ I_on / (2 selectivity)); the budget is max_sneak * I_on.
  //   =>  N - 1 <= 2 * selectivity * max_sneak.
  design.sneak_bound = static_cast<std::uint64_t>(
      2.0 * params.selector_selectivity * params.max_sneak_fraction) + 1;

  design.max_array_dim = std::min(design.ir_drop_bound, design.sneak_bound);
  design.area_efficiency = CrossbarAreaEfficiency(design.max_array_dim, params);

  // Relative density: (6F^2 / cell_area_F2) * layers * area efficiency,
  // normalized to a DRAM array with ~85% area efficiency.
  constexpr double kDramCellAreaF2 = 6.0;
  constexpr double kDramAreaEfficiency = 0.85;
  design.density_vs_dram = (kDramCellAreaF2 / params.cell_area_f2) *
                           static_cast<double>(params.stacked_layers) *
                           design.area_efficiency / kDramAreaEfficiency;
  return design;
}

}  // namespace cell
}  // namespace mrm
