// Transistor-less crossbar array model (paper §3: resistive cells "can be
// organized into high-density, transistor-less crossbar layouts" [56]).
//
// A crossbar reads a cell through its word/bit lines; two effects bound the
// feasible array size N x N (Xu et al., HPCA'15):
//  * IR drop — wire resistance along the worst-case path attenuates the
//    read signal by R_cell / (R_cell + 2 N R_wire);
//  * sneak currents — half-selected cells leak through the selector,
//    polluting the sense current.
// Bigger arrays amortize the peripheral circuitry (drivers, sense amps), so
// the feasible N caps the achievable area efficiency and density.

#ifndef MRMSIM_SRC_CELL_CROSSBAR_H_
#define MRMSIM_SRC_CELL_CROSSBAR_H_

#include <cstdint>

namespace mrm {
namespace cell {

struct CrossbarParams {
  double cell_on_resistance_ohm = 100e3;   // low-resistance state
  double wire_resistance_per_cell_ohm = 2.5;
  // Selector non-linearity: half-selected leakage = on-current / selectivity.
  double selector_selectivity = 1e5;
  // Maximum tolerable signal attenuation from IR drop (fraction lost).
  double max_ir_drop_fraction = 0.1;
  // Sneak-current budget as a fraction of the sense current.
  double max_sneak_fraction = 0.2;
  // Peripheral circuitry area, in cell-areas per row+column.
  double periphery_cells_per_line = 20.0;
  // Cell footprint in F^2 (4F^2 for crossbar vs. 6F^2 DRAM).
  double cell_area_f2 = 4.0;
  int stacked_layers = 1;  // monolithic 3D stacking multiplier
};

struct CrossbarDesign {
  std::uint64_t max_array_dim = 0;      // feasible N (IR-drop and sneak bound)
  std::uint64_t ir_drop_bound = 0;
  std::uint64_t sneak_bound = 0;
  double area_efficiency = 0.0;         // cell area / (cell + periphery)
  // Density relative to a 6F^2 planar DRAM array at the same feature size.
  double density_vs_dram = 0.0;
};

// Evaluates the feasible array at the given parameters.
CrossbarDesign EvaluateCrossbar(const CrossbarParams& params);

// Area efficiency of a specific N (for sweeps).
double CrossbarAreaEfficiency(std::uint64_t n, const CrossbarParams& params);

}  // namespace cell
}  // namespace mrm

#endif  // MRMSIM_SRC_CELL_CROSSBAR_H_
