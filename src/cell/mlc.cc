#include "src/cell/mlc.h"

#include <cmath>

#include "src/common/logging.h"

namespace mrm {
namespace cell {

double MlcRberMultiplier(int bits_per_cell, const MlcParams& params) {
  MRM_CHECK(bits_per_cell >= 1 && bits_per_cell <= 4);
  if (bits_per_cell == 1) {
    return 1.0;
  }
  const double levels_minus_one = std::pow(2.0, bits_per_cell) - 1.0;
  return std::pow(levels_minus_one, params.rber_exponent);
}

OperatingPoint DerateForMlc(const OperatingPoint& slc_point, int bits_per_cell,
                            const MlcParams& params) {
  MRM_CHECK(bits_per_cell >= 1 && bits_per_cell <= 4);
  if (bits_per_cell == 1) {
    return slc_point;
  }
  OperatingPoint point = slc_point;
  const double levels = std::pow(2.0, bits_per_cell);

  point.rber_at_retention = slc_point.rber_at_retention * MlcRberMultiplier(bits_per_cell, params);

  // Program-and-verify: one coarse pulse plus per-level trims. Energy and
  // latency scale together; per *bit* costs divide by the extra bits.
  const double program_factor = 1.0 + params.program_iteration_cost * (levels - 2.0);
  point.write_latency_ns = slc_point.write_latency_ns * program_factor;
  point.write_energy_pj_per_bit = slc_point.write_energy_pj_per_bit * program_factor /
                                  static_cast<double>(bits_per_cell);

  // b sequential senses per read; energy amortizes over b bits.
  point.read_latency_ns = slc_point.read_latency_ns *
                          (1.0 + params.read_sense_cost * (bits_per_cell - 1));
  point.read_energy_pj_per_bit =
      slc_point.read_energy_pj_per_bit *
      (1.0 + params.read_sense_cost * (bits_per_cell - 1)) /
      static_cast<double>(bits_per_cell);

  point.endurance_cycles = slc_point.endurance_cycles *
                           std::pow(params.endurance_derating_per_bit, bits_per_cell - 1);
  return point;
}

}  // namespace cell
}  // namespace mrm
