// Multi-level-cell (MLC) encoding model (paper §3: STT-MRAM and RRAM cells
// "have already demonstrated potential for multi-level encoding" [10]).
//
// Storing b bits per cell splits the resistance window into 2^b levels:
// density multiplies by b, but the per-level margin shrinks, inflating the
// raw bit error rate and the program time (program-and-verify iterations).
// The net capacity gain after the stronger ECC is paid for is computed in
// analysis/density.h.

#ifndef MRMSIM_SRC_CELL_MLC_H_
#define MRMSIM_SRC_CELL_MLC_H_

#include "src/cell/tradeoff.h"

namespace mrm {
namespace cell {

struct MlcParams {
  // RBER multiplier exponent: rber(b) = rber(1) * (2^b - 1)^alpha. Alpha ~2
  // models margin^-2 sensitivity (levels are Gaussian-separated).
  double rber_exponent = 2.0;
  // Program-and-verify iterations per extra level (write-latency factor
  // 1 + iteration_cost * (2^b - 2) versus the SLC pulse).
  double program_iteration_cost = 0.6;
  // Read needs b sequential sense operations.
  double read_sense_cost = 1.0;
  // Endurance derating per extra bit: tighter margins age out sooner.
  double endurance_derating_per_bit = 0.5;
};

// RBER multiplier of b-bit cells relative to SLC.
double MlcRberMultiplier(int bits_per_cell, const MlcParams& params = {});

// Derates an SLC operating point for b bits per cell. b == 1 returns the
// input unchanged.
OperatingPoint DerateForMlc(const OperatingPoint& slc_point, int bits_per_cell,
                            const MlcParams& params = {});

}  // namespace cell
}  // namespace mrm

#endif  // MRMSIM_SRC_CELL_MLC_H_
