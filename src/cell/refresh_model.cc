#include "src/cell/refresh_model.h"

#include "src/common/logging.h"
#include "src/common/units.h"

namespace mrm {
namespace cell {

RefreshCost ComputeRefreshCost(const RefreshModelParams& params) {
  MRM_CHECK(params.retention_window_s > 0.0);
  MRM_CHECK(params.row_bytes > 0);

  RefreshCost cost;
  cost.rows = static_cast<double>(params.capacity_bytes) / static_cast<double>(params.row_bytes);
  cost.refreshes_per_second = cost.rows / params.retention_window_s;
  cost.refresh_power_w =
      cost.refreshes_per_second * PicojoulesToJoules(params.energy_per_row_refresh_pj);
  cost.energy_per_day_j = cost.refresh_power_w * kDay;
  const double idle = cost.refresh_power_w + params.background_power_w;
  cost.refresh_fraction_of_idle = idle > 0.0 ? cost.refresh_power_w / idle : 0.0;
  return cost;
}

}  // namespace cell
}  // namespace mrm
