// Analytic DRAM refresh cost model (paper §2.1: HBM "fundamentally requires
// frequent refreshing, consuming power even when the memory is idle").
//
// Complements the cycle-level refresh engine in src/mem: the analytic model
// answers "what fraction of device power is refresh" in closed form, the
// simulator measures it under load.

#ifndef MRMSIM_SRC_CELL_REFRESH_MODEL_H_
#define MRMSIM_SRC_CELL_REFRESH_MODEL_H_

#include <cstdint>

namespace mrm {
namespace cell {

struct RefreshModelParams {
  std::uint64_t capacity_bytes = 0;
  double retention_window_s = 0.064;  // all rows must refresh within this
  std::uint64_t row_bytes = 1024;     // bytes restored per row refresh
  double energy_per_row_refresh_pj = 200.0;  // ACT+PRE of one row
  // Non-refresh background power (peripheral logic, DLLs), watts.
  double background_power_w = 0.0;
};

struct RefreshCost {
  double rows = 0.0;                  // rows in the device
  double refreshes_per_second = 0.0;  // row refresh rate
  double refresh_power_w = 0.0;       // average refresh power
  double energy_per_day_j = 0.0;      // refresh energy over 24h (idle device)
  // Fraction of (refresh + background) power that is refresh.
  double refresh_fraction_of_idle = 0.0;
};

// Computes the steady-state refresh cost of a DRAM-class device.
RefreshCost ComputeRefreshCost(const RefreshModelParams& params);

}  // namespace cell
}  // namespace mrm

#endif  // MRMSIM_SRC_CELL_REFRESH_MODEL_H_
