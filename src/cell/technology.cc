#include "src/cell/technology.h"

#include <array>

#include "src/common/logging.h"
#include "src/common/units.h"

namespace mrm {
namespace cell {
namespace {

// One-time construction of the built-in profile set. Latency/energy values
// are cell+array access figures from the survey literature the paper cites
// (Meena'14 tab. 1, Sun'13, Marinelli'22); they intentionally exclude the
// channel/interface, which the mem module adds per device preset.
std::vector<TechnologyProfile> BuildProfiles() {
  std::vector<TechnologyProfile> profiles;

  {
    TechnologyProfile p;
    p.tech = Technology::kDram;
    p.name = "DRAM (DDR5)";
    p.read_latency_ns = 15.0;
    p.write_latency_ns = 15.0;
    p.read_energy_pj_per_bit = 1.2;
    p.write_energy_pj_per_bit = 1.2;
    p.retention_s = 0.064;  // 64 ms refresh window
    p.endurance = {1e15, 1e16};
    p.relative_density = 0.5;  // no 3D stacking
    p.relative_cost_per_bit = 0.35;
    p.needs_refresh = true;
    profiles.push_back(p);
  }
  {
    TechnologyProfile p;
    p.tech = Technology::kHbm;
    p.name = "HBM3e";
    p.read_latency_ns = 18.0;
    p.write_latency_ns = 18.0;
    p.read_energy_pj_per_bit = 3.5;  // includes TSV/stack overheads
    p.write_energy_pj_per_bit = 3.5;
    p.retention_s = 0.032;  // hotter stacks refresh faster
    p.endurance = {1e15, 1e16};
    p.relative_density = 1.0;
    p.relative_cost_per_bit = 1.0;
    p.needs_refresh = true;
    profiles.push_back(p);
  }
  {
    TechnologyProfile p;
    p.tech = Technology::kLpddr;
    p.name = "LPDDR5X";
    p.read_latency_ns = 25.0;
    p.write_latency_ns = 25.0;
    p.read_energy_pj_per_bit = 0.65;
    p.write_energy_pj_per_bit = 0.65;
    p.retention_s = 0.064;
    p.endurance = {1e15, 1e16};
    p.relative_density = 0.4;
    p.relative_cost_per_bit = 0.25;
    p.needs_refresh = true;
    profiles.push_back(p);
  }
  {
    TechnologyProfile p;
    p.tech = Technology::kSttMram;
    p.name = "STT-MRAM";
    p.read_latency_ns = 5.0;  // on par or faster than DRAM (Kultursay'13)
    p.write_latency_ns = 10.0;
    p.read_energy_pj_per_bit = 0.5;
    p.write_energy_pj_per_bit = 2.5;  // at 10-year-retention operating point
    p.retention_s = 10.0 * 365.0 * 86400.0;
    p.endurance = {1e10, 1e15};  // Everspin product / demonstrated potential
    p.retention_programmable = true;
    p.relative_density = 0.8;
    p.relative_cost_per_bit = 1.5;
    profiles.push_back(p);
  }
  {
    TechnologyProfile p;
    p.tech = Technology::kRram;
    p.name = "RRAM";
    p.read_latency_ns = 10.0;
    p.write_latency_ns = 50.0;
    p.read_energy_pj_per_bit = 0.4;
    p.write_energy_pj_per_bit = 4.0;  // SET/RESET at non-volatile point
    p.retention_s = 10.0 * 365.0 * 86400.0;
    p.endurance = {1e5, 1e11};  // Weebit-class product / demonstrated (Lee'10)
    p.retention_programmable = true;
    p.relative_density = 1.6;  // crossbar + MLC headroom (Xu'15)
    p.relative_cost_per_bit = 0.5;
    profiles.push_back(p);
  }
  {
    TechnologyProfile p;
    p.tech = Technology::kPcm;
    p.name = "PCM";
    p.read_latency_ns = 50.0;
    p.write_latency_ns = 150.0;  // RESET-limited
    p.read_energy_pj_per_bit = 1.0;
    p.write_energy_pj_per_bit = 15.0;  // melt-quench RESET
    p.retention_s = 10.0 * 365.0 * 86400.0;
    p.endurance = {1e7, 1e9};  // Optane-derived product / Lee'09 potential
    p.retention_programmable = true;
    p.relative_density = 1.4;
    p.relative_cost_per_bit = 0.45;
    profiles.push_back(p);
  }
  {
    TechnologyProfile p;
    p.tech = Technology::kNandSlc;
    p.name = "NAND (SLC)";
    p.read_latency_ns = 25000.0;  // page read
    p.write_latency_ns = 200000.0;
    p.read_energy_pj_per_bit = 0.05;   // amortized over a page
    p.write_energy_pj_per_bit = 0.25;  // program, excluding erase
    p.retention_s = 10.0 * 365.0 * 86400.0;
    p.endurance = {1e5, 1e6};
    p.relative_density = 4.0;
    p.relative_cost_per_bit = 0.02;
    p.needs_erase = true;
    profiles.push_back(p);
  }
  {
    TechnologyProfile p;
    p.tech = Technology::kNandTlc;
    p.name = "NAND (TLC)";
    p.read_latency_ns = 60000.0;
    p.write_latency_ns = 600000.0;
    p.read_energy_pj_per_bit = 0.03;
    p.write_energy_pj_per_bit = 0.2;
    p.retention_s = 10.0 * 365.0 * 86400.0;
    p.endurance = {3e3, 1e4};
    p.relative_density = 12.0;
    p.relative_cost_per_bit = 0.005;
    p.needs_erase = true;
    profiles.push_back(p);
  }
  {
    TechnologyProfile p;
    p.tech = Technology::kNorFlash;
    p.name = "NOR Flash";
    p.read_latency_ns = 80.0;  // byte-addressable reads
    p.write_latency_ns = 1e6;
    p.read_energy_pj_per_bit = 0.8;
    p.write_energy_pj_per_bit = 50.0;
    p.retention_s = 20.0 * 365.0 * 86400.0;
    p.endurance = {1e5, 1e6};
    p.relative_density = 0.3;
    p.relative_cost_per_bit = 0.8;
    p.needs_erase = true;
    profiles.push_back(p);
  }
  return profiles;
}

const std::vector<TechnologyProfile>& Profiles() {
  static const std::vector<TechnologyProfile>* profiles =
      new std::vector<TechnologyProfile>(BuildProfiles());
  return *profiles;
}

}  // namespace

const char* TechnologyName(Technology tech) {
  switch (tech) {
    case Technology::kDram:
      return "DRAM";
    case Technology::kHbm:
      return "HBM";
    case Technology::kLpddr:
      return "LPDDR";
    case Technology::kSttMram:
      return "STT-MRAM";
    case Technology::kRram:
      return "RRAM";
    case Technology::kPcm:
      return "PCM";
    case Technology::kNandSlc:
      return "NAND-SLC";
    case Technology::kNandTlc:
      return "NAND-TLC";
    case Technology::kNorFlash:
      return "NOR";
  }
  return "?";
}

const TechnologyProfile& GetTechnologyProfile(Technology tech) {
  for (const auto& profile : Profiles()) {
    if (profile.tech == tech) {
      return profile;
    }
  }
  MRM_LOG(Fatal) << "no profile for technology " << static_cast<int>(tech);
  __builtin_unreachable();
}

std::vector<TechnologyProfile> AllTechnologyProfiles() { return Profiles(); }

}  // namespace cell
}  // namespace mrm
