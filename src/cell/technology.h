// Memory technology profiles: the per-cell constants behind Figure 1 and the
// E10 technology-comparison table.
//
// Numbers come from the public sources the paper cites:
//   * DRAM/HBM: JEDEC-class parts; endurance effectively unlimited (>1e15).
//   * NAND: SLC ~1e5 P/E cycles, MLC ~1e4, TLC ~3e3 (Chang'07 and vendor
//     specs); block-erase granularity.
//   * PCM: Intel Optane product endurance derived from DWPD specs (~1e7
//     writes); technology potential 1e8-1e9 (Lee'09, Meena'14).
//   * RRAM: Weebit embedded product ~1e5-1e6 cycles (Molas'22); demonstrated
//     potential up to ~1e10-1e12 (Lee'10, Meena'14).
//   * STT-MRAM: Everspin product ~1e10 cycles (Shum'17); potential >1e15
//     (Meena'14).
// All values are configurable; the defaults reproduce the paper's Figure 1
// ordering and orders of magnitude.

#ifndef MRMSIM_SRC_CELL_TECHNOLOGY_H_
#define MRMSIM_SRC_CELL_TECHNOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mrm {
namespace cell {

enum class Technology {
  kDram,      // commodity DDR-class DRAM
  kHbm,       // 3D-stacked DRAM (HBM3/HBM3e class)
  kLpddr,     // low-power DRAM
  kSttMram,
  kRram,
  kPcm,
  kNandSlc,
  kNandTlc,
  kNorFlash,
};

const char* TechnologyName(Technology tech);

// Endurance figures carry both what shipped products achieve and what the
// underlying technology has demonstrated (the two bar families in Figure 1).
struct EnduranceSpec {
  double product_cycles = 0.0;    // 0 = no shipping product
  double potential_cycles = 0.0;  // demonstrated / projected capability
};

struct TechnologyProfile {
  Technology tech = Technology::kDram;
  std::string name;

  // Cell-level IO characteristics (array access, excluding interface).
  double read_latency_ns = 0.0;
  double write_latency_ns = 0.0;
  double read_energy_pj_per_bit = 0.0;
  double write_energy_pj_per_bit = 0.0;

  // Retention of a freshly written cell at the technology's standard
  // operating point (seconds). DRAM ~64 ms; flash/SCM 10+ years.
  double retention_s = 0.0;

  EnduranceSpec endurance;

  // Whether retention can be traded at write time (the MRM-enabling knob).
  bool retention_programmable = false;

  // Relative cost/density indicators used by the TCO model (HBM == 1.0).
  double relative_density = 1.0;       // bits per unit area vs. HBM layer
  double relative_cost_per_bit = 1.0;  // $/bit vs. HBM

  // True when the device needs refresh to retain data indefinitely.
  bool needs_refresh = false;
  // True when writes require erase cycles / FTL housekeeping.
  bool needs_erase = false;
};

// Returns the built-in profile for `tech`.
const TechnologyProfile& GetTechnologyProfile(Technology tech);

// All built-in profiles, in a stable display order.
std::vector<TechnologyProfile> AllTechnologyProfiles();

}  // namespace cell
}  // namespace mrm

#endif  // MRMSIM_SRC_CELL_TECHNOLOGY_H_
