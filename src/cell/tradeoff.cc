#include "src/cell/tradeoff.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/units.h"

namespace mrm {
namespace cell {

double RetentionTradeoff::RberAtAge(double retention_s, double age_s) const {
  // Failure probability of a single bit follows 1 - exp(-age/t_char) where
  // t_char is calibrated so that RBER(retention) == rber_at_retention. For
  // age << retention the RBER is proportionally tiny; past retention it
  // saturates toward 0.5 (data is noise).
  const OperatingPoint point = AtRetention(retention_s);
  if (age_s <= 0.0) {
    return 0.0;
  }
  const double target = point.rber_at_retention;
  // Solve 1 - exp(-retention/t_char) = target -> t_char.
  const double t_char = -point.retention_s / std::log1p(-target);
  const double raw = 1.0 - std::exp(-age_s / t_char);
  return std::min(raw, 0.5);
}

namespace {

// ---------------------------------------------------------------------------
// STT-MRAM: retention t = tau0 * exp(delta). Write energy/latency scale with
// delta (higher barrier needs more spin-torque current for longer); endurance
// grows exponentially as the write voltage backs off from the barrier's
// breakdown margin.
// ---------------------------------------------------------------------------
class SttMramTradeoff final : public RetentionTradeoff {
 public:
  explicit SttMramTradeoff(const SttMramParams& params) : params_(params) {
    MRM_CHECK(params_.delta_ref > params_.min_delta);
  }

  Technology technology() const override { return Technology::kSttMram; }
  std::string name() const override { return "STT-MRAM (thermal stability model)"; }

  double min_retention_s() const override {
    return params_.tau0_s * std::exp(params_.min_delta);
  }
  double max_retention_s() const override {
    return params_.tau0_s * std::exp(params_.delta_ref);
  }

  OperatingPoint AtRetention(double retention_s) const override {
    const double clamped =
        std::clamp(retention_s, min_retention_s(), max_retention_s());
    const double delta = std::log(clamped / params_.tau0_s);
    const double scale = delta / params_.delta_ref;  // in (0, 1]

    OperatingPoint point;
    point.retention_s = clamped;
    point.write_energy_pj_per_bit = params_.write_energy_ref_pj * scale;
    point.write_latency_ns = params_.write_latency_ref_ns * scale;
    point.read_latency_ns = params_.read_latency_ns;
    point.read_energy_pj_per_bit = params_.read_energy_pj;
    // Endurance: exp growth in the backed-off stress (1 - scale).
    point.endurance_cycles =
        params_.endurance_ref * std::exp(params_.endurance_exponent * (1.0 - scale));
    point.rber_at_retention = params_.rber_at_retention;
    return point;
  }

 private:
  SttMramParams params_;
};

// ---------------------------------------------------------------------------
// Shared shape for RRAM and PCM: write cost interpolates log-linearly in
// retention between a floor (weakest stable write) and the 10-year reference;
// endurance follows a bounded power law in the retention backoff.
// ---------------------------------------------------------------------------
struct LogLinearParams {
  Technology tech;
  std::string name;
  double retention_ref_s;
  double min_retention_s;
  double write_energy_ref_pj;
  double write_energy_floor_pj;
  double write_latency_ref_ns;
  double write_latency_floor_ns;
  double read_latency_ns;
  double read_energy_pj;
  double endurance_ref;
  double endurance_retention_exponent;
  double endurance_cap;
  double rber_at_retention;
};

class LogLinearTradeoff final : public RetentionTradeoff {
 public:
  explicit LogLinearTradeoff(LogLinearParams params) : params_(std::move(params)) {
    MRM_CHECK(params_.retention_ref_s > params_.min_retention_s);
  }

  Technology technology() const override { return params_.tech; }
  std::string name() const override { return params_.name; }

  double min_retention_s() const override { return params_.min_retention_s; }
  double max_retention_s() const override { return params_.retention_ref_s; }

  OperatingPoint AtRetention(double retention_s) const override {
    const double clamped =
        std::clamp(retention_s, min_retention_s(), max_retention_s());
    // Position in log-retention space, 0 at the floor, 1 at the reference.
    const double span =
        std::log(params_.retention_ref_s) - std::log(params_.min_retention_s);
    const double u = (std::log(clamped) - std::log(params_.min_retention_s)) / span;

    OperatingPoint point;
    point.retention_s = clamped;
    point.write_energy_pj_per_bit =
        params_.write_energy_floor_pj +
        u * (params_.write_energy_ref_pj - params_.write_energy_floor_pj);
    point.write_latency_ns =
        params_.write_latency_floor_ns +
        u * (params_.write_latency_ref_ns - params_.write_latency_floor_ns);
    point.read_latency_ns = params_.read_latency_ns;
    point.read_energy_pj_per_bit = params_.read_energy_pj;
    const double gain =
        std::pow(params_.retention_ref_s / clamped, params_.endurance_retention_exponent);
    point.endurance_cycles = std::min(params_.endurance_ref * gain, params_.endurance_cap);
    point.rber_at_retention = params_.rber_at_retention;
    return point;
  }

 private:
  LogLinearParams params_;
};

}  // namespace

std::unique_ptr<RetentionTradeoff> MakeSttMramTradeoff(const SttMramParams& params) {
  return std::make_unique<SttMramTradeoff>(params);
}

std::unique_ptr<RetentionTradeoff> MakeRramTradeoff(const RramParams& params) {
  LogLinearParams p;
  p.tech = Technology::kRram;
  p.name = "RRAM (filament model)";
  p.retention_ref_s = params.retention_ref_s;
  p.min_retention_s = params.min_retention_s;
  p.write_energy_ref_pj = params.write_energy_ref_pj;
  p.write_energy_floor_pj = params.write_energy_floor_pj;
  p.write_latency_ref_ns = params.write_latency_ref_ns;
  p.write_latency_floor_ns = params.write_latency_floor_ns;
  p.read_latency_ns = params.read_latency_ns;
  p.read_energy_pj = params.read_energy_pj;
  p.endurance_ref = params.endurance_ref;
  p.endurance_retention_exponent = params.endurance_retention_exponent;
  p.endurance_cap = params.endurance_cap;
  p.rber_at_retention = params.rber_at_retention;
  return std::make_unique<LogLinearTradeoff>(std::move(p));
}

std::unique_ptr<RetentionTradeoff> MakePcmTradeoff(const PcmParams& params) {
  LogLinearParams p;
  p.tech = Technology::kPcm;
  p.name = "PCM (amorphous volume model)";
  p.retention_ref_s = params.retention_ref_s;
  p.min_retention_s = params.min_retention_s;
  p.write_energy_ref_pj = params.write_energy_ref_pj;
  p.write_energy_floor_pj = params.write_energy_floor_pj;
  p.write_latency_ref_ns = params.write_latency_ref_ns;
  p.write_latency_floor_ns = params.write_latency_floor_ns;
  p.read_latency_ns = params.read_latency_ns;
  p.read_energy_pj = params.read_energy_pj;
  p.endurance_ref = params.endurance_ref;
  p.endurance_retention_exponent = params.endurance_retention_exponent;
  p.endurance_cap = params.endurance_cap;
  p.rber_at_retention = params.rber_at_retention;
  return std::make_unique<LogLinearTradeoff>(std::move(p));
}

Result<std::unique_ptr<RetentionTradeoff>> MakeTradeoffFor(Technology tech) {
  switch (tech) {
    case Technology::kSttMram:
      return std::unique_ptr<RetentionTradeoff>(MakeSttMramTradeoff());
    case Technology::kRram:
      return std::unique_ptr<RetentionTradeoff>(MakeRramTradeoff());
    case Technology::kPcm:
      return std::unique_ptr<RetentionTradeoff>(MakePcmTradeoff());
    default:
      return Error(std::string("technology ") + TechnologyName(tech) +
                   " does not support retention programming");
  }
}

}  // namespace cell
}  // namespace mrm
