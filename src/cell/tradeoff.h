// Retention <-> write-energy <-> endurance trade-off models.
//
// This is the physical mechanism MRM exploits (paper §3): SCM cell families
// buy 10-year retention with aggressive write pulses, paying in write
// latency, energy and endurance. Relaxing the retention target lets the cell
// be written with a gentler pulse, which is faster, cheaper and less
// damaging.
//
// Three concrete models, each following the paper's cited literature:
//
//  * SttMramTradeoff — thermal-stability-factor model (Smullen'11, Jog'12,
//    Sun'11). Retention t = tau0 * exp(Delta); write current/energy scale
//    ~linearly with Delta; endurance rises exponentially as barrier stress
//    drops.
//  * RramTradeoff — filament strength model (Nail'16, Lammie'21, Ielmini'10).
//    Log-retention is proportional to programming voltage; endurance follows
//    a power law in retention.
//  * PcmTradeoff — amorphous-volume model (Lee'09). RESET (melt) energy sets
//    the retention margin; endurance degrades with per-write thermal stress.
//
// All models expose the same OperatingPoint query so the MRM device layer is
// technology-agnostic.

#ifndef MRMSIM_SRC_CELL_TRADEOFF_H_
#define MRMSIM_SRC_CELL_TRADEOFF_H_

#include <memory>
#include <string>

#include "src/cell/technology.h"
#include "src/common/result.h"

namespace mrm {
namespace cell {

// The write-time operating point for one programmed retention target.
struct OperatingPoint {
  double retention_s = 0.0;            // achieved retention (>= requested)
  double write_latency_ns = 0.0;       // programming pulse duration
  double write_energy_pj_per_bit = 0.0;
  double read_latency_ns = 0.0;        // reads are retention-independent
  double read_energy_pj_per_bit = 0.0;
  double endurance_cycles = 0.0;       // cycles the cell survives if always
                                       // written at this point
  // Raw bit-error probability at end of retention window (pre-ECC). The
  // retention target is defined as the age where RBER crosses this value.
  double rber_at_retention = 1e-4;
};

class RetentionTradeoff {
 public:
  virtual ~RetentionTradeoff() = default;

  virtual Technology technology() const = 0;
  virtual std::string name() const = 0;

  // Inclusive bounds of programmable retention.
  virtual double min_retention_s() const = 0;
  virtual double max_retention_s() const = 0;

  // Operating point for a retention target (clamped into bounds).
  virtual OperatingPoint AtRetention(double retention_s) const = 0;

  // Raw bit error rate of data of the given age, written for the given
  // retention target. Models exponential failure-rate growth near and past
  // the retention horizon; used by the ECC/scrubbing machinery.
  virtual double RberAtAge(double retention_s, double age_s) const;
};

// --- STT-MRAM ---------------------------------------------------------------
struct SttMramParams {
  double tau0_s = 1e-9;          // thermal attempt period
  double delta_ref = 40.0;       // stability factor at the 10-year point
  double write_energy_ref_pj = 2.5;   // pJ/bit at delta_ref
  double write_latency_ref_ns = 10.0; // ns at delta_ref
  double read_latency_ns = 5.0;
  double read_energy_pj = 0.5;
  double endurance_ref = 1e10;   // cycles at delta_ref (product-class)
  double endurance_exponent = 12.0;  // d(ln endurance)/d(1 - delta/delta_ref)
  double min_delta = 10.0;       // below this the cell is not a memory
  double rber_at_retention = 1e-4;
};

std::unique_ptr<RetentionTradeoff> MakeSttMramTradeoff(const SttMramParams& params = {});

// --- RRAM --------------------------------------------------------------------
struct RramParams {
  double retention_ref_s = 10.0 * 365.0 * 86400.0;  // 10 years
  double write_energy_ref_pj = 4.0;   // pJ/bit at the 10-year SET/RESET point
  double write_latency_ref_ns = 50.0;
  double read_latency_ns = 10.0;
  double read_energy_pj = 0.4;
  double endurance_ref = 1e5;         // cycles at the non-volatile point
  // Endurance ~ endurance_ref * (retention_ref / retention)^p  (Nail'16).
  double endurance_retention_exponent = 0.55;
  double endurance_cap = 1e12;        // demonstrated ceiling
  // Write energy ~ ref * (log t - log tmin)/(log tref - log tmin) + floor.
  double write_energy_floor_pj = 0.4;
  double write_latency_floor_ns = 5.0;
  double min_retention_s = 1.0;
  double rber_at_retention = 1e-4;
};

std::unique_ptr<RetentionTradeoff> MakeRramTradeoff(const RramParams& params = {});

// --- PCM ---------------------------------------------------------------------
struct PcmParams {
  double retention_ref_s = 10.0 * 365.0 * 86400.0;
  double write_energy_ref_pj = 15.0;  // melt-quench RESET at 10-year margin
  double write_latency_ref_ns = 150.0;
  double read_latency_ns = 50.0;
  double read_energy_pj = 1.0;
  double endurance_ref = 1e7;   // Optane-class
  double endurance_retention_exponent = 0.4;
  double endurance_cap = 1e9;
  double write_energy_floor_pj = 2.0;
  double write_latency_floor_ns = 40.0;
  double min_retention_s = 10.0;
  double rber_at_retention = 1e-4;
};

std::unique_ptr<RetentionTradeoff> MakePcmTradeoff(const PcmParams& params = {});

// Builds the default trade-off model for a programmable technology; returns
// an error for DRAM/flash class technologies where retention is not a
// write-time knob.
Result<std::unique_ptr<RetentionTradeoff>> MakeTradeoffFor(Technology tech);

}  // namespace cell
}  // namespace mrm

#endif  // MRMSIM_SRC_CELL_TRADEOFF_H_
