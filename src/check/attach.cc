#include "src/check/attach.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/common/check_hooks.h"
#include "src/common/logging.h"

namespace mrm {
namespace check {

bool CheckRequestedByEnv() {
  const char* value = std::getenv("MRMSIM_CHECK");
  return value != nullptr && value[0] != '\0' && std::strcmp(value, "0") != 0;
}

ScopedChecker::ScopedChecker(sim::Simulator* simulator, mem::MemorySystem* system, bool force)
    : system_(system) {
  if (!kCheckedHooks || system == nullptr || (!force && !CheckRequestedByEnv())) {
    return;
  }
  checker_ = std::make_unique<ProtocolChecker>(system->config(), simulator->ticks_per_second());
  system->SetCommandObserver(checker_.get());
}

ScopedChecker::~ScopedChecker() {
  if (!checker_) {
    return;
  }
  system_->SetCommandObserver(nullptr);
  std::fprintf(stderr, "[mrmsim] protocol audit: %llu commands, %llu violations\n",
               static_cast<unsigned long long>(checker_->commands_observed()),
               static_cast<unsigned long long>(checker_->violation_count()));
  MRM_CHECK(checker_->violation_count() == 0) << "\n" << checker_->Report();
}

ScopedMrmChecker::ScopedMrmChecker(mrmcore::MrmDevice* device, bool force) : device_(device) {
  if (!kCheckedHooks || device == nullptr || (!force && !CheckRequestedByEnv())) {
    return;
  }
  checker_ = std::make_unique<MrmChecker>(device->config(), &device->tradeoff());
  device->SetObserver(checker_.get());
}

ScopedMrmChecker::~ScopedMrmChecker() {
  if (!checker_) {
    return;
  }
  device_->SetObserver(nullptr);
  std::fprintf(stderr, "[mrmsim] mrm audit: %llu events, %llu violations\n",
               static_cast<unsigned long long>(checker_->events_observed()),
               static_cast<unsigned long long>(checker_->violation_count()));
  MRM_CHECK(checker_->violation_count() == 0) << "\n" << checker_->Report();
}

ScopedFaultChecker::ScopedFaultChecker(fault::FaultInjector* injector, bool force)
    : injector_(injector) {
  if (!kCheckedHooks || injector == nullptr || (!force && !CheckRequestedByEnv())) {
    return;
  }
  checker_ = std::make_unique<FaultChecker>();
  injector->SetObserver(checker_.get());
}

ScopedFaultChecker::~ScopedFaultChecker() {
  if (!checker_) {
    return;
  }
  injector_->SetObserver(nullptr);
  checker_->Finalize();
  std::fprintf(stderr, "[mrmsim] fault audit: %llu faults, %llu resolutions, %llu violations\n",
               static_cast<unsigned long long>(checker_->faults_observed()),
               static_cast<unsigned long long>(checker_->resolutions_observed()),
               static_cast<unsigned long long>(checker_->violation_count()));
  MRM_CHECK(checker_->violation_count() == 0) << "\n" << checker_->Report();
}

}  // namespace check
}  // namespace mrm
