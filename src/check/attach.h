// RAII attachment of the auditors to a running simulation.
//
// A ScopedChecker (memory system) or ScopedMrmChecker (MRM device) decides at
// construction whether auditing is on: the build must define MRMSIM_CHECKED
// (otherwise the hook sites do not exist and attaching would observe nothing)
// and the run must opt in, either programmatically (`force`) or through the
// MRMSIM_CHECK environment variable. When inactive, construction is free and
// the simulation is untouched.
//
// On destruction the scope detaches the observer, prints a one-line audit
// summary to stderr, and — if any violation was recorded — prints the full
// diagnostic report and aborts, so a checked bench or test run cannot pass
// while the simulator breaks its own protocol. The auditors never mutate
// simulation state, so checked and unchecked runs produce bit-identical
// statistics.

#ifndef MRMSIM_SRC_CHECK_ATTACH_H_
#define MRMSIM_SRC_CHECK_ATTACH_H_

#include <memory>

#include "src/check/fault_checker.h"
#include "src/check/mrm_checker.h"
#include "src/check/protocol_checker.h"
#include "src/fault/fault_injector.h"
#include "src/mem/memory_system.h"
#include "src/mrm/mrm_device.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace check {

// True when the MRMSIM_CHECK environment variable is set to anything but ""
// or "0".
bool CheckRequestedByEnv();

class ScopedChecker {
 public:
  ScopedChecker(sim::Simulator* simulator, mem::MemorySystem* system, bool force = false);
  ~ScopedChecker();

  ScopedChecker(const ScopedChecker&) = delete;
  ScopedChecker& operator=(const ScopedChecker&) = delete;

  bool active() const { return checker_ != nullptr; }
  const ProtocolChecker* checker() const { return checker_.get(); }

 private:
  mem::MemorySystem* system_;
  std::unique_ptr<ProtocolChecker> checker_;
};

class ScopedMrmChecker {
 public:
  explicit ScopedMrmChecker(mrmcore::MrmDevice* device, bool force = false);
  ~ScopedMrmChecker();

  ScopedMrmChecker(const ScopedMrmChecker&) = delete;
  ScopedMrmChecker& operator=(const ScopedMrmChecker&) = delete;

  bool active() const { return checker_ != nullptr; }
  const MrmChecker* checker() const { return checker_.get(); }
  // Mutable access for audit configuration (e.g. DeclarePolicy); nullptr
  // when auditing is off.
  MrmChecker* mutable_checker() { return checker_.get(); }

 private:
  mrmcore::MrmDevice* device_;
  std::unique_ptr<MrmChecker> checker_;
};

// Attaches a FaultChecker to a FaultInjector for the scope's lifetime. On
// destruction it finalizes the conservation ledger (every injected fault must
// have a terminal disposition) before the usual report-and-abort step.
class ScopedFaultChecker {
 public:
  explicit ScopedFaultChecker(fault::FaultInjector* injector, bool force = false);
  ~ScopedFaultChecker();

  ScopedFaultChecker(const ScopedFaultChecker&) = delete;
  ScopedFaultChecker& operator=(const ScopedFaultChecker&) = delete;

  bool active() const { return checker_ != nullptr; }
  const FaultChecker* checker() const { return checker_.get(); }

 private:
  fault::FaultInjector* injector_;
  std::unique_ptr<FaultChecker> checker_;
};

}  // namespace check
}  // namespace mrm

#endif  // MRMSIM_SRC_CHECK_ATTACH_H_
