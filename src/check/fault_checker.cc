#include "src/check/fault_checker.h"

#include <sstream>

namespace mrm {
namespace check {

void FaultChecker::OnFault(const fault::FaultRecord& record) {
  ++events_;
  ++faults_;
  const int kind = static_cast<int>(record.kind);
  if (kind >= 0 && kind < kKindCount) {
    ++injected_by_kind_[kind];
  }
  ++open_[Key(kind, record.entity)];
}

void FaultChecker::OnResolution(const fault::ResolutionRecord& record) {
  ++events_;
  ++resolutions_;
  const int kind = static_cast<int>(record.kind);
  if (kind >= 0 && kind < kKindCount) {
    ++resolved_by_kind_[kind];
  }
  const auto it = open_.find(Key(kind, record.entity));
  if (it == open_.end() || it->second == 0) {
    std::ostringstream detail;
    detail << ViolationName(ViolationKind::kFaultUnmatched) << ": resolution '"
           << fault::FaultResolutionName(record.resolution) << "' for "
           << fault::FaultKindName(record.kind) << " on entity " << record.entity
           << " with no open fault";
    AddViolation(ViolationKind::kFaultUnmatched, detail.str());
    return;
  }
  if (--it->second == 0) {
    open_.erase(it);
  }
}

void FaultChecker::Finalize() {
  for (const auto& [key, count] : open_) {
    std::ostringstream detail;
    detail << ViolationName(ViolationKind::kFaultUnresolved) << ": " << count << " "
           << fault::FaultKindName(static_cast<fault::FaultKind>(key.first))
           << " fault(s) on entity " << key.second << " never resolved";
    AddViolation(ViolationKind::kFaultUnresolved, detail.str());
  }
  open_.clear();
}

std::uint64_t FaultChecker::unresolved_count() const {
  std::uint64_t total = 0;
  for (const auto& [key, count] : open_) {
    (void)key;
    total += count;
  }
  return total;
}

void FaultChecker::AddViolation(ViolationKind kind, std::string detail) {
  ++violations_total_;
  if (violations_.size() < kMaxViolations) {
    Violation violation;
    violation.kind = kind;
    violation.message = std::move(detail);
    violations_.push_back(std::move(violation));
  }
}

std::string FaultChecker::Report(std::size_t max_violations) const {
  std::ostringstream out;
  out << "fault audit: " << faults_ << " faults, " << resolutions_ << " resolutions, "
      << unresolved_count() << " open, " << violations_total_ << " violations\n";
  for (int kind = 0; kind < kKindCount; ++kind) {
    if (injected_by_kind_[kind] == 0 && resolved_by_kind_[kind] == 0) {
      continue;
    }
    out << "  " << fault::FaultKindName(static_cast<fault::FaultKind>(kind)) << ": "
        << injected_by_kind_[kind] << " injected, " << resolved_by_kind_[kind] << " resolved\n";
  }
  std::size_t shown = 0;
  for (const Violation& violation : violations_) {
    if (shown++ >= max_violations) {
      out << "  ... " << (violations_total_ - max_violations) << " more\n";
      break;
    }
    out << "  " << violation.message << "\n";
  }
  return out.str();
}

}  // namespace check
}  // namespace mrm
