// Fault conservation auditor (DESIGN.md §10): proves that every fault the
// injector fires receives exactly one terminal disposition from the recovery
// machinery.
//
// The injector reports each injected fault (FaultRecord) and each recovery
// action (ResolutionRecord) naming the same (kind, entity) pair — the block,
// zone or request the fault landed on. The checker keeps a ledger of open
// faults per (kind, entity):
//
//   open fault       OnFault increments the ledger entry.
//   resolution       OnResolution decrements it; a resolution with no open
//                    fault on that entity is a kFaultUnmatched violation
//                    (the recovery path claimed credit for a fault that was
//                    never injected, or resolved the same fault twice).
//   conservation     Finalize() converts every still-open entry into a
//                    kFaultUnresolved violation: an injected fault must not
//                    simply vanish — it was retried clean, scrubbed, dropped
//                    to the owner, retired with its zone, delivered late, or
//                    accounted in the RAS statistics.
//
// The injector runs on the hub simulator thread, so the checker needs no
// synchronization.

#ifndef MRMSIM_SRC_CHECK_FAULT_CHECKER_H_
#define MRMSIM_SRC_CHECK_FAULT_CHECKER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/check/violation.h"
#include "src/fault/fault_observer.h"

namespace mrm {
namespace check {

class FaultChecker : public fault::FaultObserver {
 public:
  static constexpr std::size_t kMaxViolations = 64;
  static constexpr int kKindCount = static_cast<int>(fault::FaultKind::kDroppedCompletion) + 1;

  // fault::FaultObserver
  void OnFault(const fault::FaultRecord& record) override;
  void OnResolution(const fault::ResolutionRecord& record) override;

  // Flushes the conservation check: every fault still open in the ledger
  // becomes a kFaultUnresolved violation. Call once, after the simulation
  // has drained (the scoped attachment does this on detach).
  void Finalize();

  std::uint64_t events_observed() const { return events_; }
  std::uint64_t faults_observed() const { return faults_; }
  std::uint64_t resolutions_observed() const { return resolutions_; }
  // Injected faults currently without a terminal disposition.
  std::uint64_t unresolved_count() const;
  std::uint64_t violation_count() const { return violations_total_; }
  const std::vector<Violation>& violations() const { return violations_; }
  std::string Report(std::size_t max_violations = 16) const;

 private:
  // Ledger key: (kind, entity). Ordered so the report lists leftovers
  // deterministically.
  using Key = std::pair<int, std::uint64_t>;

  void AddViolation(ViolationKind kind, std::string detail);

  std::map<Key, std::uint64_t> open_;  // open fault count per (kind, entity)
  std::uint64_t injected_by_kind_[kKindCount] = {};
  std::uint64_t resolved_by_kind_[kKindCount] = {};
  std::uint64_t events_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t resolutions_ = 0;
  std::uint64_t violations_total_ = 0;
  std::vector<Violation> violations_;  // capped at kMaxViolations
};

}  // namespace check
}  // namespace mrm

#endif  // MRMSIM_SRC_CHECK_FAULT_CHECKER_H_
