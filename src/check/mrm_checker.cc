#include "src/check/mrm_checker.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mrm {
namespace check {
namespace {

const char* ZoneStateName(int state) {
  switch (state) {
    case 0:
      return "empty";
    case 1:
      return "open";
    case 2:
      return "full";
    case 3:
      return "retired";
  }
  return "?";
}

}  // namespace

MrmChecker::MrmChecker(const mrmcore::MrmDeviceConfig& config,
                       const cell::RetentionTradeoff* tradeoff)
    : config_(config), tradeoff_(tradeoff) {
  zones_.resize(config_.zones);
}

void MrmChecker::AddViolation(ViolationKind kind, std::string detail) {
  ++violations_total_;
  if (violations_.size() >= kMaxViolations) {
    return;
  }
  Violation v;
  v.kind = kind;
  v.message = std::string(ViolationName(kind)) + ": " + detail;
  violations_.push_back(std::move(v));
}

void MrmChecker::OnZoneOpen(std::uint32_t zone) {
  ++events_;
  ZoneAudit& audit = zones_[zone];
  if (audit.state != ZoneState::kEmpty) {
    AddViolation(ViolationKind::kZoneLifecycle,
                 "zone " + std::to_string(zone) + " opened while " +
                     ZoneStateName(static_cast<int>(audit.state)));
  }
  audit.state = ZoneState::kOpen;
  audit.write_pointer = 0;
}

void MrmChecker::OnZoneReset(std::uint32_t zone) {
  ++events_;
  ZoneAudit& audit = zones_[zone];
  if (audit.state == ZoneState::kRetired) {
    AddViolation(ViolationKind::kZoneLifecycle,
                 "zone " + std::to_string(zone) + " reset while retired");
  }
  // Resets clear the data but not the wear: there is no erase, the cells
  // simply become appendable again.
  const std::uint64_t base = static_cast<std::uint64_t>(zone) * config_.zone_blocks;
  for (std::uint32_t i = 0; i < audit.write_pointer; ++i) {
    auto it = blocks_.find(base + i);
    if (it != blocks_.end()) {
      it->second.written = false;
    }
  }
  audit.state = ZoneState::kEmpty;
  audit.write_pointer = 0;
}

void MrmChecker::OnZoneRetire(std::uint32_t zone) {
  ++events_;
  zones_[zone].state = ZoneState::kRetired;
}

void MrmChecker::OnZoneFail(std::uint32_t zone) {
  ++events_;
  zones_[zone].failed = true;
}

void MrmChecker::OnSlotBurn(const mrmcore::MrmSlotBurnRecord& record) {
  ++events_;
  ZoneAudit& audit = zones_[record.zone];
  if (audit.state != ZoneState::kOpen) {
    AddViolation(ViolationKind::kZoneLifecycle,
                 "slot burn in zone " + std::to_string(record.zone) + " while " +
                     ZoneStateName(static_cast<int>(audit.state)));
  }
  const std::uint64_t expected_block =
      static_cast<std::uint64_t>(record.zone) * config_.zone_blocks + audit.write_pointer;
  if (record.block != expected_block || record.write_pointer_after != audit.write_pointer + 1) {
    AddViolation(ViolationKind::kWritePointer,
                 "slot burn in zone " + std::to_string(record.zone) + " consumed block " +
                     std::to_string(record.block) + " (pointer after: " +
                     std::to_string(record.write_pointer_after) + "), expected block " +
                     std::to_string(expected_block) + " (pointer after: " +
                     std::to_string(audit.write_pointer + 1) + ")");
  }
  BlockAudit& block = blocks_[record.block];
  // The failed program attempt still wears the cells by one cycle.
  if (record.wear_after != block.wear + 1) {
    AddViolation(ViolationKind::kWearAccounting,
                 "block " + std::to_string(record.block) + " reports wear " +
                     std::to_string(record.wear_after) + " after slot burn, audit expects " +
                     std::to_string(block.wear + 1));
  }
  block.wear = record.wear_after;
  block.written = false;  // a burned slot holds no data
  ++audit.write_pointer;
  if (audit.write_pointer == config_.zone_blocks && audit.state == ZoneState::kOpen) {
    audit.state = ZoneState::kFull;
  }
}

void MrmChecker::OnAppend(const mrmcore::MrmAppendRecord& record) {
  ++events_;
  ZoneAudit& audit = zones_[record.zone];
  if (audit.state != ZoneState::kOpen) {
    AddViolation(ViolationKind::kZoneLifecycle,
                 "append to zone " + std::to_string(record.zone) + " while " +
                     ZoneStateName(static_cast<int>(audit.state)));
  }
  if (audit.failed) {
    AddViolation(ViolationKind::kZoneLifecycle,
                 "append to zone " + std::to_string(record.zone) + " after zone failure");
  }
  const std::uint64_t expected_block =
      static_cast<std::uint64_t>(record.zone) * config_.zone_blocks + audit.write_pointer;
  if (record.block != expected_block || record.write_pointer_after != audit.write_pointer + 1) {
    AddViolation(ViolationKind::kWritePointer,
                 "append to zone " + std::to_string(record.zone) + " landed on block " +
                     std::to_string(record.block) + " (pointer after: " +
                     std::to_string(record.write_pointer_after) + "), expected block " +
                     std::to_string(expected_block) + " (pointer after: " +
                     std::to_string(audit.write_pointer + 1) + ")");
  }
  BlockAudit& block = blocks_[record.block];
  if (record.wear_after != block.wear + 1) {
    AddViolation(ViolationKind::kWearAccounting,
                 "block " + std::to_string(record.block) + " reports wear " +
                     std::to_string(record.wear_after) + " after append, audit expects " +
                     std::to_string(block.wear + 1));
  }
  const cell::OperatingPoint point = tradeoff_->AtRetention(record.requested_retention_s);
  if (static_cast<double>(block.wear) + 1.0 > point.endurance_cycles) {
    AddViolation(ViolationKind::kEndurance,
                 "append to block " + std::to_string(record.block) + " accepted at wear " +
                     std::to_string(block.wear + 1) + " but the operating point at retention " +
                     std::to_string(record.requested_retention_s) + "s endures only " +
                     std::to_string(point.endurance_cycles) + " cycles");
  }
  if (record.programmed_retention_s != point.retention_s) {
    AddViolation(ViolationKind::kRetentionClaim,
                 "block " + std::to_string(record.block) + " programmed retention " +
                     std::to_string(record.programmed_retention_s) +
                     "s disagrees with the trade-off model's " +
                     std::to_string(point.retention_s) + "s");
  }
  if (policy_retention_pending_) {
    // Plane→device consistency: the append's requested retention must be the
    // last policy decision, after the device's substitution/clamp rules
    // (0 → default, then the config floor/cap).
    double expected = pending_policy_retention_s_;
    if (expected <= 0.0) {
      expected = config_.default_retention_s;
    }
    if (config_.retention_floor_s > 0.0) {
      expected = std::max(expected, config_.retention_floor_s);
    }
    if (config_.retention_cap_s > 0.0) {
      expected = std::min(expected, config_.retention_cap_s);
    }
    const double tol = 1e-9 * std::max(std::abs(expected), 1.0);
    if (std::abs(record.requested_retention_s - expected) > tol) {
      AddViolation(ViolationKind::kPolicyRetention,
                   "block " + std::to_string(record.block) + " requested retention " +
                       std::to_string(record.requested_retention_s) +
                       "s disagrees with the policy decision " +
                       std::to_string(pending_policy_retention_s_) + "s (clamped: " +
                       std::to_string(expected) + "s)");
    }
    policy_retention_pending_ = false;
  }
  block.wear = record.wear_after;
  block.written = true;
  block.written_at_s = record.now_s;
  block.retention_s = record.programmed_retention_s;
  ++audit.write_pointer;
  if (audit.write_pointer == config_.zone_blocks && audit.state == ZoneState::kOpen) {
    audit.state = ZoneState::kFull;
  }
}

void MrmChecker::OnPolicyRetention(const mrmcore::MrmPolicyRecord& record) {
  ++events_;
  if (declared_policy_) {
    const double expected = declared_policy_(record.lifetime_s);
    const double tol = 1e-9 * std::max(std::abs(expected), 1.0);
    if (std::abs(record.retention_s - expected) > tol) {
      AddViolation(ViolationKind::kPolicyRetention,
                   "lifetime hint " + std::to_string(record.lifetime_s) +
                       "s mapped to retention " + std::to_string(record.retention_s) +
                       "s, declared policy says " + std::to_string(expected) + "s");
    }
  }
  policy_retention_pending_ = true;
  pending_policy_retention_s_ = record.retention_s;
}

void MrmChecker::OnRead(const mrmcore::MrmReadRecord& record) {
  ++events_;
  const auto it = blocks_.find(record.block);
  if (it == blocks_.end() || !it->second.written) {
    AddViolation(ViolationKind::kZoneLifecycle,
                 "read of block " + std::to_string(record.block) + " that was never appended");
    return;
  }
  const BlockAudit& block = it->second;
  if (record.written_at_s != block.written_at_s || record.retention_s != block.retention_s) {
    AddViolation(ViolationKind::kRetentionClaim,
                 "block " + std::to_string(record.block) + " metadata (written_at " +
                     std::to_string(record.written_at_s) + "s, retention " +
                     std::to_string(record.retention_s) + "s) disagrees with the audit (" +
                     std::to_string(block.written_at_s) + "s, " +
                     std::to_string(block.retention_s) + "s)");
  }
  const bool alive_expected = record.now_s - block.written_at_s <= block.retention_s;
  if (record.alive_claimed != alive_expected) {
    AddViolation(ViolationKind::kRetentionClaim,
                 "block " + std::to_string(record.block) + " claimed " +
                     (record.alive_claimed ? "alive" : "expired") + " at age " +
                     std::to_string(record.now_s - block.written_at_s) +
                     "s against programmed retention " + std::to_string(block.retention_s) + "s");
  }
}

std::string MrmChecker::Report(std::size_t max_violations) const {
  std::ostringstream out;
  out << "mrm audit: " << events_ << " events, " << violations_total_ << " violations\n";
  std::size_t shown = 0;
  for (const Violation& v : violations_) {
    if (shown == max_violations) {
      out << "  ... (further violations suppressed)\n";
      break;
    }
    out << "  " << v.message << "\n";
    ++shown;
  }
  return out.str();
}

}  // namespace check
}  // namespace mrm
