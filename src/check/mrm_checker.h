// MRM invariant auditor (DESIGN.md §9): independently re-derives the managed
// retention contract an MrmDevice claims to enforce.
//
// The checker keeps its own shadow of the zone lifecycle and per-block wear
// and write metadata, driven only by the observer records, and cross-checks
// the device's accounting against it:
//
//   zone lifecycle   Empty -> Open -> Full, Reset -> Empty, Retire -> Retired;
//                    opening a non-empty zone or appending to a non-open zone
//                    is a violation.
//   write pointer    every append lands on zone * zone_blocks + write_pointer
//                    and advances the pointer by exactly one (appends are
//                    strictly sequential within a zone).
//   wear accounting  the device's post-append wear counter equals the shadow
//                    counter + 1 (wear survives zone resets: there is no
//                    erase, but the cells still age).
//   endurance        an append accepted by the device must satisfy the
//                    operating point's endurance at the *requested* retention,
//                    re-derived through the same RetentionTradeoff model.
//   retention claim  a read's alive/expired verdict must match the deadline
//                    re-computed from the shadow's written_at + programmed
//                    retention.
//
// MrmDevice runs on a single simulator thread, so the checker needs no
// synchronization.

#ifndef MRMSIM_SRC_CHECK_MRM_CHECKER_H_
#define MRMSIM_SRC_CHECK_MRM_CHECKER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/cell/tradeoff.h"
#include "src/check/violation.h"
#include "src/mrm/dcm.h"
#include "src/mrm/mrm_config.h"
#include "src/mrm/mrm_observer.h"

namespace mrm {
namespace check {

class MrmChecker : public mrmcore::MrmObserver {
 public:
  static constexpr std::size_t kMaxViolations = 64;

  // `tradeoff` must be the same model the audited device uses (see
  // MrmDevice::tradeoff()) and must outlive the checker.
  MrmChecker(const mrmcore::MrmDeviceConfig& config, const cell::RetentionTradeoff* tradeoff);

  // Audits the control plane's retention decisions against a declared policy
  // (policy layer, DESIGN.md §14): every OnPolicyRetention record must match
  // `policy`(lifetime), and the following append's requested retention must
  // equal that decision after the device's floor/cap clamping. Without a
  // declared policy only the plane→device consistency half runs.
  void DeclarePolicy(mrmcore::RetentionPolicy policy) { declared_policy_ = std::move(policy); }

  // mrmcore::MrmObserver
  void OnZoneOpen(std::uint32_t zone) override;
  void OnZoneReset(std::uint32_t zone) override;
  void OnZoneRetire(std::uint32_t zone) override;
  void OnZoneFail(std::uint32_t zone) override;
  void OnAppend(const mrmcore::MrmAppendRecord& record) override;
  void OnSlotBurn(const mrmcore::MrmSlotBurnRecord& record) override;
  void OnRead(const mrmcore::MrmReadRecord& record) override;
  void OnPolicyRetention(const mrmcore::MrmPolicyRecord& record) override;

  std::uint64_t events_observed() const { return events_; }
  std::uint64_t violation_count() const { return violations_total_; }
  const std::vector<Violation>& violations() const { return violations_; }
  std::string Report(std::size_t max_violations = 16) const;

 private:
  enum class ZoneState { kEmpty, kOpen, kFull, kRetired };
  struct ZoneAudit {
    ZoneState state = ZoneState::kEmpty;
    std::uint32_t write_pointer = 0;
    bool failed = false;  // whole-zone fault reported; appends must stop
  };
  struct BlockAudit {
    std::uint32_t wear = 0;
    bool written = false;
    double written_at_s = 0.0;
    double retention_s = 0.0;
  };

  void AddViolation(ViolationKind kind, std::string detail);

  mrmcore::MrmDeviceConfig config_;
  const cell::RetentionTradeoff* tradeoff_;
  mrmcore::RetentionPolicy declared_policy_;  // empty = no policy audit
  bool policy_retention_pending_ = false;
  double pending_policy_retention_s_ = 0.0;
  std::vector<ZoneAudit> zones_;
  // Sparse shadow of per-block state: lookups only, never iterated, so the
  // unordered map cannot introduce ordering nondeterminism.
  std::unordered_map<std::uint64_t, BlockAudit> blocks_;
  std::uint64_t events_ = 0;
  std::uint64_t violations_total_ = 0;
  std::vector<Violation> violations_;  // capped at kMaxViolations
};

}  // namespace check
}  // namespace mrm

#endif  // MRMSIM_SRC_CHECK_MRM_CHECKER_H_
