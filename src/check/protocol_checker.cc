#include "src/check/protocol_checker.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/mem/controller.h"

namespace mrm {
namespace check {
namespace {

// True when `now` respects a `window`-tick gap after `last` (or no such event
// ever happened).
bool WindowOk(sim::Tick last, sim::Tick window, sim::Tick now) {
  return last == sim::kTickNever || now >= last + window;
}

std::string Describe(const mem::CommandRecord& record) {
  std::ostringstream out;
  out << mem::CommandName(record.command) << " @" << record.tick << " ch" << record.channel
      << " rank" << record.rank;
  if (record.flat_bank == mem::CommandRecord::kAllBanks) {
    out << " bank*";
  } else {
    out << " bank" << record.flat_bank;
  }
  out << " row" << record.row;
  return out.str();
}

}  // namespace

ProtocolChecker::ProtocolChecker(const mem::DeviceConfig& config, double ticks_per_second)
    : ticks_(mem::TimingTicksFromNs(config.timings, ticks_per_second)),
      ranks_(config.ranks),
      banks_per_rank_(config.banks_per_rank()) {
  // Same rounding as the MemorySystem fabric: ceil to whole ticks, >= 1.
  {
    const double ticks = config.fabric_latency_ns * 1e-9 * ticks_per_second;
    const auto rounded = static_cast<sim::Tick>(std::ceil(ticks - 1e-9));
    fabric_ticks_ = std::max<sim::Tick>(rounded, 1);
  }
  channels_.resize(static_cast<std::size_t>(config.channels));
  for (ChannelAudit& channel : channels_) {
    channel.banks.resize(static_cast<std::size_t>(config.ranks * banks_per_rank_));
    channel.ranks.resize(static_cast<std::size_t>(config.ranks));
    channel.refresh_enabled = config.needs_refresh;
    for (std::size_t r = 0; r < channel.ranks.size(); ++r) {
      // Mirrors the controller's staggered initial due ticks exactly,
      // including the integer tick division.
      channel.ranks[r].refresh_due =
          ticks_.trefi + r * (ticks_.trefi / std::max(1, ranks_));
    }
  }
  hub_.last_routed.assign(static_cast<std::size_t>(config.channels), 0);
}

void ProtocolChecker::AddViolation(ChannelAudit& channel, ViolationKind kind,
                                   const mem::CommandRecord& record, std::string detail) {
  ++channel.violations_total;
  if (channel.violations.size() >= kMaxViolationsPerChannel) {
    return;
  }
  Violation v;
  v.kind = kind;
  v.tick = record.tick;
  v.channel = record.channel;
  v.message = std::string(ViolationName(kind)) + ": " + Describe(record) + ": " + detail;
  channel.violations.push_back(std::move(v));
}

void ProtocolChecker::AddHubViolation(ViolationKind kind, int channel, sim::Tick tick,
                                      std::string detail) {
  ++hub_.violations_total;
  if (hub_.violations.size() >= kMaxViolationsPerChannel) {
    return;
  }
  Violation v;
  v.kind = kind;
  v.tick = tick;
  v.channel = channel;
  v.message = std::string(ViolationName(kind)) + ": ch" + std::to_string(channel) + " @" +
              std::to_string(tick) + ": " + detail;
  hub_.violations.push_back(std::move(v));
}

void ProtocolChecker::OnCommand(const mem::CommandRecord& record) {
  ChannelAudit& audit = channels_[static_cast<std::size_t>(record.channel)];
  ++audit.commands;
  audit.history[audit.history_count % kHistoryDepth] = record;
  ++audit.history_count;
  if (record.tick < audit.last_tick) {
    AddViolation(audit, ViolationKind::kEpochAdmitOrder, record,
                 "command issued before the channel's previous command at tick " +
                     std::to_string(audit.last_tick));
  }
  audit.last_tick = std::max(audit.last_tick, record.tick);
  switch (record.command) {
    case mem::Command::kActivate:
      CheckActivate(audit, record);
      break;
    case mem::Command::kPrecharge:
      CheckPrecharge(audit, record);
      break;
    case mem::Command::kRead:
    case mem::Command::kWrite:
      CheckColumn(audit, record);
      break;
    case mem::Command::kRefresh:
      CheckRefresh(audit, record);
      break;
  }
}

void ProtocolChecker::CheckRefreshOverdue(ChannelAudit& audit, const mem::CommandRecord& record) {
  if (!audit.refresh_enabled) {
    return;
  }
  const RankAudit& rank = audit.ranks[static_cast<std::size_t>(record.rank)];
  if (record.tick >= rank.refresh_due) {
    AddViolation(audit, ViolationKind::kRefreshOverdue, record,
                 "data command while the rank's refresh has been due since tick " +
                     std::to_string(rank.refresh_due));
  }
}

void ProtocolChecker::CheckActivate(ChannelAudit& audit, const mem::CommandRecord& record) {
  BankAudit& bank = audit.banks[static_cast<std::size_t>(record.flat_bank)];
  RankAudit& rank = audit.ranks[static_cast<std::size_t>(record.rank)];
  const sim::Tick now = record.tick;
  if (bank.active) {
    AddViolation(audit, ViolationKind::kBankState,
                 record, "ACT while row " + std::to_string(bank.open_row) + " is open");
  }
  if (!WindowOk(bank.last_pre, ticks_.trp, now)) {
    AddViolation(audit, ViolationKind::kTrp, record,
                 "only " + std::to_string(now - bank.last_pre) + " ticks after PRE @" +
                     std::to_string(bank.last_pre) + ", requires " + std::to_string(ticks_.trp));
  }
  if (!WindowOk(bank.last_act, ticks_.trc, now)) {
    AddViolation(audit, ViolationKind::kTrc, record,
                 "only " + std::to_string(now - bank.last_act) + " ticks after ACT @" +
                     std::to_string(bank.last_act) + ", requires " + std::to_string(ticks_.trc));
  }
  if (!WindowOk(bank.last_ref, ticks_.trfc, now)) {
    AddViolation(audit, ViolationKind::kTrfc, record,
                 "only " + std::to_string(now - bank.last_ref) + " ticks after REF @" +
                     std::to_string(bank.last_ref) + ", requires " + std::to_string(ticks_.trfc));
  }
  if (!WindowOk(rank.last_act, ticks_.trrd, now)) {
    AddViolation(audit, ViolationKind::kTrrd, record,
                 "only " + std::to_string(now - rank.last_act) + " ticks after the rank's ACT @" +
                     std::to_string(rank.last_act) + ", requires " + std::to_string(ticks_.trrd));
  }
  if (rank.act_count == 4 && now < rank.recent_acts[rank.act_pos] + ticks_.tfaw) {
    AddViolation(audit, ViolationKind::kTfaw, record,
                 "fifth ACT only " + std::to_string(now - rank.recent_acts[rank.act_pos]) +
                     " ticks after ACT @" + std::to_string(rank.recent_acts[rank.act_pos]) +
                     ", window is " + std::to_string(ticks_.tfaw));
  }
  CheckRefreshOverdue(audit, record);
  bank.active = true;
  bank.open_row = record.row;
  bank.last_act = now;
  rank.last_act = now;
  rank.recent_acts[rank.act_pos] = now;
  rank.act_pos = (rank.act_pos + 1) & 3;
  if (rank.act_count < 4) {
    ++rank.act_count;
  }
}

void ProtocolChecker::CheckPrecharge(ChannelAudit& audit, const mem::CommandRecord& record) {
  BankAudit& bank = audit.banks[static_cast<std::size_t>(record.flat_bank)];
  const sim::Tick now = record.tick;
  if (!bank.active) {
    AddViolation(audit, ViolationKind::kBankState, record, "PRE on an idle bank");
  }
  if (!WindowOk(bank.last_act, ticks_.tras, now)) {
    AddViolation(audit, ViolationKind::kTras, record,
                 "only " + std::to_string(now - bank.last_act) + " ticks after ACT @" +
                     std::to_string(bank.last_act) + ", requires " + std::to_string(ticks_.tras));
  }
  if (!WindowOk(bank.last_rd, ticks_.trtp, now)) {
    AddViolation(audit, ViolationKind::kTrtp, record,
                 "only " + std::to_string(now - bank.last_rd) + " ticks after RD @" +
                     std::to_string(bank.last_rd) + ", requires " + std::to_string(ticks_.trtp));
  }
  const sim::Tick write_recovery = ticks_.tcwl + ticks_.tburst + ticks_.twr;
  if (!WindowOk(bank.last_wr, write_recovery, now)) {
    AddViolation(audit, ViolationKind::kTwr, record,
                 "only " + std::to_string(now - bank.last_wr) + " ticks after WR @" +
                     std::to_string(bank.last_wr) + ", write recovery needs " +
                     std::to_string(write_recovery));
  }
  bank.active = false;
  bank.last_pre = now;
}

void ProtocolChecker::CheckColumn(ChannelAudit& audit, const mem::CommandRecord& record) {
  BankAudit& bank = audit.banks[static_cast<std::size_t>(record.flat_bank)];
  const sim::Tick now = record.tick;
  const bool is_read = record.command == mem::Command::kRead;
  if (!bank.active) {
    AddViolation(audit, ViolationKind::kBankState, record,
                 is_read ? "RD on an idle bank" : "WR on an idle bank");
  } else if (bank.open_row != record.row) {
    AddViolation(audit, ViolationKind::kRowMismatch, record,
                 "open row is " + std::to_string(bank.open_row));
  }
  if (!WindowOk(bank.last_act, ticks_.trcd, now)) {
    AddViolation(audit, ViolationKind::kTrcd, record,
                 "only " + std::to_string(now - bank.last_act) + " ticks after ACT @" +
                     std::to_string(bank.last_act) + ", requires " + std::to_string(ticks_.trcd));
  }
  if (!WindowOk(bank.last_col, ticks_.tccd, now)) {
    AddViolation(audit, ViolationKind::kTccd, record,
                 "only " + std::to_string(now - bank.last_col) + " ticks after the last column "
                 "command @" + std::to_string(bank.last_col) + ", requires " +
                     std::to_string(ticks_.tccd));
  }
  const sim::Tick data_start = now + (is_read ? ticks_.tcas : ticks_.tcwl);
  if (data_start < audit.bus_free) {
    AddViolation(audit, ViolationKind::kDataBusOverlap, record,
                 "data burst starts @" + std::to_string(data_start) +
                     " but the bus is busy until @" + std::to_string(audit.bus_free));
  }
  CheckRefreshOverdue(audit, record);
  audit.bus_free = std::max(audit.bus_free, data_start + ticks_.tburst);
  bank.last_col = now;
  if (is_read) {
    bank.last_rd = now;
  } else {
    bank.last_wr = now;
  }
}

void ProtocolChecker::CheckRefresh(ChannelAudit& audit, const mem::CommandRecord& record) {
  RankAudit& rank = audit.ranks[static_cast<std::size_t>(record.rank)];
  const sim::Tick now = record.tick;
  const int first = record.rank * banks_per_rank_;
  for (int b = first; b < first + banks_per_rank_; ++b) {
    BankAudit& bank = audit.banks[static_cast<std::size_t>(b)];
    if (bank.active) {
      AddViolation(audit, ViolationKind::kBankState, record,
                   "REF while bank " + std::to_string(b) + " has row " +
                       std::to_string(bank.open_row) + " open");
    }
    if (!WindowOk(bank.last_pre, ticks_.trp, now)) {
      AddViolation(audit, ViolationKind::kTrp, record,
                   "REF only " + std::to_string(now - bank.last_pre) + " ticks after bank " +
                       std::to_string(b) + "'s PRE @" + std::to_string(bank.last_pre) +
                       ", requires " + std::to_string(ticks_.trp));
    }
    if (!WindowOk(bank.last_ref, ticks_.trfc, now)) {
      AddViolation(audit, ViolationKind::kTrfc, record,
                   "REF only " + std::to_string(now - bank.last_ref) + " ticks after bank " +
                       std::to_string(b) + "'s REF @" + std::to_string(bank.last_ref) +
                       ", requires " + std::to_string(ticks_.trfc));
    }
    bank.last_ref = now;
  }
  if (audit.refresh_enabled && now < rank.refresh_due) {
    AddViolation(audit, ViolationKind::kRefreshEarly, record,
                 "REF before the rank's due tick " + std::to_string(rank.refresh_due));
  }
  // Mirrors the controller's catch-up rule: refreshes skipped while the
  // controller slept idle are dropped, not queued.
  rank.refresh_due = std::max(rank.refresh_due + ticks_.trefi, now + 1);
}

void ProtocolChecker::OnRefreshDisabled(int channel) {
  channels_[static_cast<std::size_t>(channel)].refresh_enabled = false;
}

void ProtocolChecker::OnRouted(int channel, sim::Tick hub_now, sim::Tick arrival_tick) {
  if (arrival_tick != sim::TickAdd(hub_now, fabric_ticks_)) {
    AddHubViolation(ViolationKind::kEpochFabricLatency, channel, arrival_tick,
                    "arrival tick is not hub time " + std::to_string(hub_now) + " + fabric " +
                        std::to_string(fabric_ticks_));
  }
  sim::Tick& last = hub_.last_routed[static_cast<std::size_t>(channel)];
  if (arrival_tick < last) {
    AddHubViolation(ViolationKind::kEpochRouteOrder, channel, arrival_tick,
                    "arrival routed behind the lane's previous arrival at tick " +
                        std::to_string(last));
  }
  last = std::max(last, arrival_tick);
}

void ProtocolChecker::OnArrivalAdmitted(int channel, sim::Tick admit_tick, sim::Tick horizon) {
  ChannelAudit& audit = channels_[static_cast<std::size_t>(channel)];
  if (admit_tick >= horizon) {
    Violation v;
    v.kind = ViolationKind::kEpochHorizon;
    v.tick = admit_tick;
    v.channel = channel;
    v.message = std::string(ViolationName(v.kind)) + ": ch" + std::to_string(channel) +
                " admitted an arrival @" + std::to_string(admit_tick) +
                " at/past the epoch horizon " + std::to_string(horizon);
    ++audit.violations_total;
    if (audit.violations.size() < kMaxViolationsPerChannel) {
      audit.violations.push_back(std::move(v));
    }
  }
  if (admit_tick < audit.last_admit) {
    Violation v;
    v.kind = ViolationKind::kEpochAdmitOrder;
    v.tick = admit_tick;
    v.channel = channel;
    v.message = std::string(ViolationName(v.kind)) + ": ch" + std::to_string(channel) +
                " admission @" + std::to_string(admit_tick) +
                " regressed behind the previous admission @" + std::to_string(audit.last_admit);
    ++audit.violations_total;
    if (audit.violations.size() < kMaxViolationsPerChannel) {
      audit.violations.push_back(std::move(v));
    }
  }
  audit.last_admit = std::max(audit.last_admit, admit_tick);
}

void ProtocolChecker::OnRecordProcessed(int channel, sim::Tick effect_tick,
                                        std::uint64_t request_id, sim::Tick hub_now) {
  if (hub_now != effect_tick) {
    AddHubViolation(ViolationKind::kEpochEffectTick, channel, effect_tick,
                    "record applied with the hub clock at " + std::to_string(hub_now));
  }
  if (hub_.any_record &&
      (effect_tick < hub_.last_effect ||
       (effect_tick == hub_.last_effect && request_id <= hub_.last_request_id))) {
    AddHubViolation(ViolationKind::kEpochRecordOrder, channel, effect_tick,
                    "record (tick " + std::to_string(effect_tick) + ", id " +
                        std::to_string(request_id) + ") applied after (tick " +
                        std::to_string(hub_.last_effect) + ", id " +
                        std::to_string(hub_.last_request_id) + ")");
  }
  hub_.any_record = true;
  hub_.last_effect = effect_tick;
  hub_.last_request_id = request_id;
  ChannelAudit& audit = channels_[static_cast<std::size_t>(channel)];
  audit.last_processed_effect = effect_tick;
  audit.last_processed_id = request_id;
  audit.any_processed = true;
}

void ProtocolChecker::OnRecordSuppressed(int channel, sim::Tick effect_tick,
                                         std::uint64_t request_id) {
  // Rollback conservation: a suppressed replay record must correspond to a
  // record the hub consumed out of the rolled-back span, so its key can
  // never exceed the channel's hub-processed frontier. Violations are stored
  // channel-locally (this hook fires on the lane).
  ChannelAudit& audit = channels_[static_cast<std::size_t>(channel)];
  const bool beyond_frontier =
      !audit.any_processed || effect_tick > audit.last_processed_effect ||
      (effect_tick == audit.last_processed_effect && request_id > audit.last_processed_id);
  if (!beyond_frontier) {
    return;
  }
  Violation v;
  v.kind = ViolationKind::kRollbackConservation;
  v.tick = effect_tick;
  v.channel = channel;
  v.message = std::string(ViolationName(v.kind)) + ": ch" + std::to_string(channel) +
              " suppressed record (tick " + std::to_string(effect_tick) + ", id " +
              std::to_string(request_id) + ") past the hub-processed frontier (tick " +
              std::to_string(audit.last_processed_effect) + ", id " +
              std::to_string(audit.last_processed_id) + ")";
  ++audit.violations_total;
  if (audit.violations.size() < kMaxViolationsPerChannel) {
    audit.violations.push_back(std::move(v));
  }
}

std::uint64_t ProtocolChecker::commands_observed() const {
  std::uint64_t total = 0;
  for (const ChannelAudit& channel : channels_) {
    total += channel.commands;
  }
  return total;
}

std::uint64_t ProtocolChecker::violation_count() const {
  std::uint64_t total = hub_.violations_total;
  for (const ChannelAudit& channel : channels_) {
    total += channel.violations_total;
  }
  return total;
}

std::vector<Violation> ProtocolChecker::violations() const {
  std::vector<Violation> all;
  for (const ChannelAudit& channel : channels_) {
    all.insert(all.end(), channel.violations.begin(), channel.violations.end());
  }
  all.insert(all.end(), hub_.violations.begin(), hub_.violations.end());
  return all;
}

std::string ProtocolChecker::Report(std::size_t max_violations) const {
  std::ostringstream out;
  out << "protocol audit: " << commands_observed() << " commands, " << violation_count()
      << " violations\n";
  std::size_t shown = 0;
  for (const Violation& v : violations()) {
    if (shown == max_violations) {
      out << "  ... (further violations suppressed)\n";
      break;
    }
    out << "  " << v.message << "\n";
    ++shown;
  }
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    const ChannelAudit& channel = channels_[c];
    if (channel.violations.empty()) {
      continue;
    }
    out << "  ch" << c << " recent commands:\n";
    const std::uint64_t depth = std::min<std::uint64_t>(channel.history_count, kHistoryDepth);
    for (std::uint64_t i = channel.history_count - depth; i < channel.history_count; ++i) {
      out << "    " << Describe(channel.history[i % kHistoryDepth]) << "\n";
    }
  }
  return out.str();
}

}  // namespace check
}  // namespace mrm
