// Runtime protocol auditor (DESIGN.md §9): an independent re-derivation of
// every legality rule the channel controller claims to enforce.
//
// The checker deliberately shares no scheduling state with the controller.
// Where the controller precomputes "earliest next issue" ticks, the auditor
// records the raw event history (last ACT/PRE/RD/WR/REF per bank, the last
// four ACTs per rank, the data-bus busy horizon, the refresh due clock) and
// re-checks each JEDEC window from first principles on every command. The
// only shared code is TimingTicksFromNs, so both sides agree on what one
// nanosecond parameter means in ticks — the audit then verifies exactly the
// constraints the controller claims to honor, via a second implementation.
//
// Checked constraints per command:
//   ACT: bank idle, tRP since PRE, tRC since ACT, tRFC since REF, tRRD since
//        the rank's last ACT, tFAW over the rank's last four ACTs, and the
//        rank's refresh not overdue.
//   PRE: bank active, tRAS since ACT, tRTP since RD, write recovery
//        (tCWL + tBURST + tWR) since WR.
//   RD/WR: bank active with the matching row open, tRCD since ACT, tCCD
//        since the last column command, no data-bus burst overlap, refresh
//        not overdue.
//   REF: every bank of the rank idle and past recovery, and the REF not
//        earlier than the rank's due tick; the due clock then advances by
//        tREFI (or to now + 1 after an idle skip, mirroring the controller's
//        documented catch-up rule).
//
// Epoch-execution invariants (DESIGN.md §8) are audited through the
// MemorySystem hooks: every routed request arrives exactly one fabric hop
// after hub time, per-lane arrival/admission ticks never regress, no
// admission at or past the epoch horizon, and completion records apply in
// strictly increasing (effect_tick, request id) order with the hub clock
// equal to the record's effect tick.
//
// Thread safety follows the observer threading contract (src/mem/observer.h):
// per-channel state is only touched from that channel's lane, hub state only
// from the serial hub phase, so the checker needs no locks and runs clean
// under TSAN at any --sim-threads count.

#ifndef MRMSIM_SRC_CHECK_PROTOCOL_CHECKER_H_
#define MRMSIM_SRC_CHECK_PROTOCOL_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/check/violation.h"
#include "src/mem/bank.h"
#include "src/mem/device_config.h"
#include "src/mem/observer.h"

namespace mrm {
namespace check {

class ProtocolChecker : public mem::CommandObserver {
 public:
  // Number of recent commands kept per channel for diagnostics.
  static constexpr std::size_t kHistoryDepth = 32;
  // Violations recorded per channel before further ones are only counted.
  static constexpr std::size_t kMaxViolationsPerChannel = 64;

  ProtocolChecker(const mem::DeviceConfig& config, double ticks_per_second);

  // mem::CommandObserver
  void OnCommand(const mem::CommandRecord& record) override;
  void OnRefreshDisabled(int channel) override;
  void OnRouted(int channel, sim::Tick hub_now, sim::Tick arrival_tick) override;
  void OnArrivalAdmitted(int channel, sim::Tick admit_tick, sim::Tick horizon) override;
  void OnRecordProcessed(int channel, sim::Tick effect_tick, std::uint64_t request_id,
                         sim::Tick hub_now) override;
  void OnRecordSuppressed(int channel, sim::Tick effect_tick, std::uint64_t request_id) override;

  // Aggregated results. Call only after the simulation quiesces (no lane is
  // running), e.g. after Simulator::Run returns.
  std::uint64_t commands_observed() const;
  std::uint64_t violation_count() const;
  std::vector<Violation> violations() const;

  // Human-readable report: every recorded violation plus the recent command
  // history of each offending channel.
  std::string Report(std::size_t max_violations = 16) const;

 private:
  struct BankAudit {
    bool active = false;
    std::uint64_t open_row = 0;
    sim::Tick last_act = sim::kTickNever;
    sim::Tick last_pre = sim::kTickNever;
    sim::Tick last_rd = sim::kTickNever;
    sim::Tick last_wr = sim::kTickNever;
    sim::Tick last_col = sim::kTickNever;  // last RD or WR
    sim::Tick last_ref = sim::kTickNever;
  };
  struct RankAudit {
    sim::Tick last_act = sim::kTickNever;      // tRRD base
    sim::Tick recent_acts[4] = {0, 0, 0, 0};   // tFAW ring
    int act_pos = 0;
    int act_count = 0;
    sim::Tick refresh_due = 0;
  };
  // Everything a single lane mutates; never touched by another lane.
  struct ChannelAudit {
    std::vector<BankAudit> banks;
    std::vector<RankAudit> ranks;
    sim::Tick bus_free = 0;       // first tick the data bus is free again
    sim::Tick last_tick = 0;      // commands must issue in nondecreasing order
    sim::Tick last_admit = 0;     // arrival admissions must not regress
    // Hub-processed record frontier for this channel: written on the serial
    // hub phase, read on the lane when a replayed record is suppressed
    // (rollback conservation). Safe without locks — hub phases and lane
    // epochs alternate with a barrier between them (observer.h contract).
    sim::Tick last_processed_effect = 0;
    std::uint64_t last_processed_id = 0;
    bool any_processed = false;
    bool refresh_enabled = true;
    std::uint64_t commands = 0;
    std::uint64_t violations_total = 0;
    std::vector<Violation> violations;              // capped
    mem::CommandRecord history[kHistoryDepth] = {};  // ring of recent commands
    std::uint64_t history_count = 0;
  };
  // Hub-phase state (serial by construction).
  struct HubAudit {
    std::vector<sim::Tick> last_routed;  // per channel
    sim::Tick last_effect = 0;
    std::uint64_t last_request_id = 0;
    bool any_record = false;
    std::uint64_t violations_total = 0;
    std::vector<Violation> violations;  // capped at kMaxViolationsPerChannel
  };

  void AddViolation(ChannelAudit& channel, ViolationKind kind, const mem::CommandRecord& record,
                    std::string detail);
  void AddHubViolation(ViolationKind kind, int channel, sim::Tick tick, std::string detail);

  void CheckActivate(ChannelAudit& audit, const mem::CommandRecord& record);
  void CheckPrecharge(ChannelAudit& audit, const mem::CommandRecord& record);
  void CheckColumn(ChannelAudit& audit, const mem::CommandRecord& record);
  void CheckRefresh(ChannelAudit& audit, const mem::CommandRecord& record);
  void CheckRefreshOverdue(ChannelAudit& audit, const mem::CommandRecord& record);

  mem::TimingTicks ticks_;
  sim::Tick fabric_ticks_ = 1;
  int ranks_ = 1;
  int banks_per_rank_ = 1;
  std::vector<ChannelAudit> channels_;
  HubAudit hub_;
};

}  // namespace check
}  // namespace mrm

#endif  // MRMSIM_SRC_CHECK_PROTOCOL_CHECKER_H_
