#include "src/check/violation.h"

namespace mrm {
namespace check {

const char* ViolationName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kBankState:
      return "bank-state";
    case ViolationKind::kRowMismatch:
      return "row-mismatch";
    case ViolationKind::kTrcd:
      return "tRCD";
    case ViolationKind::kTrp:
      return "tRP";
    case ViolationKind::kTras:
      return "tRAS";
    case ViolationKind::kTrc:
      return "tRC";
    case ViolationKind::kTrrd:
      return "tRRD";
    case ViolationKind::kTccd:
      return "tCCD";
    case ViolationKind::kTfaw:
      return "tFAW";
    case ViolationKind::kTwr:
      return "tWR";
    case ViolationKind::kTrtp:
      return "tRTP";
    case ViolationKind::kTrfc:
      return "tRFC";
    case ViolationKind::kDataBusOverlap:
      return "data-bus-overlap";
    case ViolationKind::kRefreshEarly:
      return "refresh-early";
    case ViolationKind::kRefreshOverdue:
      return "refresh-overdue";
    case ViolationKind::kEpochFabricLatency:
      return "epoch-fabric-latency";
    case ViolationKind::kEpochRouteOrder:
      return "epoch-route-order";
    case ViolationKind::kEpochHorizon:
      return "epoch-horizon";
    case ViolationKind::kEpochAdmitOrder:
      return "epoch-admit-order";
    case ViolationKind::kEpochEffectTick:
      return "epoch-effect-tick";
    case ViolationKind::kEpochRecordOrder:
      return "epoch-record-order";
    case ViolationKind::kRollbackConservation:
      return "rollback-conservation";
    case ViolationKind::kZoneLifecycle:
      return "zone-lifecycle";
    case ViolationKind::kWritePointer:
      return "write-pointer";
    case ViolationKind::kWearAccounting:
      return "wear-accounting";
    case ViolationKind::kEndurance:
      return "endurance";
    case ViolationKind::kRetentionClaim:
      return "retention-claim";
    case ViolationKind::kPolicyRetention:
      return "policy-retention";
    case ViolationKind::kFaultUnmatched:
      return "fault-unmatched";
    case ViolationKind::kFaultUnresolved:
      return "fault-unresolved";
  }
  return "unknown";
}

}  // namespace check
}  // namespace mrm
