// Structured diagnostics emitted by the verification layer (DESIGN.md §9).
//
// Every violation names the constraint it breaks (the enum + ViolationName)
// and carries a human-readable message with the ticks/ids involved, so a
// failing checked run points directly at the broken rule rather than at a
// downstream symptom.

#ifndef MRMSIM_SRC_CHECK_VIOLATION_H_
#define MRMSIM_SRC_CHECK_VIOLATION_H_

#include <string>

#include "src/sim/event_queue.h"

namespace mrm {
namespace check {

enum class ViolationKind {
  // Bank / rank state machine.
  kBankState,        // command illegal in the bank's current state
  kRowMismatch,      // RD/WR to a row other than the open one
  // JEDEC timing windows.
  kTrcd,             // ACT -> RD/WR too early
  kTrp,              // PRE -> ACT too early
  kTras,             // ACT -> PRE too early
  kTrc,              // ACT -> ACT (same bank) too early
  kTrrd,             // ACT -> ACT (same rank) too early
  kTccd,             // column -> column too early
  kTfaw,             // fifth ACT inside the four-activate window
  kTwr,              // WR -> PRE before write recovery
  kTrtp,             // RD -> PRE too early
  kTrfc,             // REF -> ACT before refresh recovery
  kDataBusOverlap,   // data burst overlaps the previous one on the channel bus
  // Refresh cadence.
  kRefreshEarly,     // REF issued before the rank's refresh was due
  kRefreshOverdue,   // data command issued at/after the rank's refresh due tick
  // Epoch-execution invariants (DESIGN.md §8).
  kEpochFabricLatency,  // arrival tick != hub time + fabric latency
  kEpochRouteOrder,     // per-lane arrival ticks regressed
  kEpochHorizon,        // lane admitted an arrival at/after the epoch horizon
  kEpochAdmitOrder,     // per-lane admissions regressed
  kEpochEffectTick,     // record applied with hub clock != its effect tick
  kEpochRecordOrder,    // records not in (effect_tick, request id) order
  kRollbackConservation,  // suppressed replay record the hub never consumed
  // MRM device invariants.
  kZoneLifecycle,    // open/reset/retire/append in an illegal zone state
  kWritePointer,     // append landed off the zone's write pointer
  kWearAccounting,   // device wear counter disagrees with the audit
  kEndurance,        // append accepted past the operating point's endurance
  kRetentionClaim,   // read liveness verdict disagrees with the deadline
  kPolicyRetention,  // programmed retention disagrees with the declared policy
  // Fault conservation (DESIGN.md §10).
  kFaultUnmatched,   // recovery resolved a fault that was never injected
  kFaultUnresolved,  // injected fault had no terminal disposition at run end
};

// Stable short name of the violated constraint, e.g. "tRCD" or
// "refresh-overdue". Diagnostics and tests key on these.
const char* ViolationName(ViolationKind kind);

struct Violation {
  ViolationKind kind = ViolationKind::kBankState;
  std::string message;   // full diagnostic, starts with ViolationName(kind)
  sim::Tick tick = 0;    // simulation tick of the offending event (0 if n/a)
  int channel = -1;      // channel of the offending event (-1 if n/a)
};

}  // namespace check
}  // namespace mrm

#endif  // MRMSIM_SRC_CHECK_VIOLATION_H_
