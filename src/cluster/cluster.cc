#include "src/cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace mrm {
namespace cluster {
namespace {

constexpr double kEpsilonTokens = 1e-6;

}  // namespace

Cluster::Cluster(sim::Simulator* simulator, ClusterConfig config)
    : simulator_(simulator),
      config_(std::move(config)),
      prefill_model_(config_.prefill_node),
      decode_model_(config_.decode_node) {
  MRM_CHECK(config_.decode_nodes > 0);
  MRM_CHECK(config_.max_decode_batch > 0);
  if (config_.mode == ClusterMode::kDisaggregated) {
    MRM_CHECK(config_.prefill_nodes > 0);
    prefill_pool_.resize(static_cast<std::size_t>(config_.prefill_nodes));
  }
  decode_pool_.resize(static_cast<std::size_t>(config_.decode_nodes));
}

Cluster::~Cluster() = default;

void Cluster::Submit(const workload::InferenceRequest& request) {
  ++stats_.submitted;
  Job job;
  job.request = request;
  simulator_->ScheduleAt(simulator_->SecondsToTicks(request.arrival_s),
                         [this, job = std::move(job)]() mutable { OnArrival(std::move(job)); });
}

void Cluster::OnArrival(Job job) {
  if (config_.mode == ClusterMode::kDisaggregated) {
    StartPrefillDisaggregated(std::move(job));
    return;
  }
  // Colocated: prefill runs on the decode node itself, with priority.
  const int node_index = LeastLoadedDecodeNode();
  DecodeNode& node = decode_pool_[static_cast<std::size_t>(node_index)];
  node.prefill_queue.push_back(std::move(job));
  PumpColocatedPrefill(static_cast<std::size_t>(node_index));
}

void Cluster::StartPrefillDisaggregated(Job job) {
  // Pick the prefill server that frees up first (FIFO across the pool).
  std::size_t best = 0;
  for (std::size_t i = 1; i < prefill_pool_.size(); ++i) {
    if (prefill_pool_[i].free_at < prefill_pool_[best].free_at) {
      best = i;
    }
  }
  PrefillServer& server = prefill_pool_[best];
  const sim::Tick start = std::max(simulator_->now(), server.free_at);
  stats_.queue_wait_ms.Add(simulator_->TicksToSeconds(start - simulator_->now()) * 1e3);
  const double service_s = prefill_model_.PrefillSeconds(job.request.prompt_tokens);
  const sim::Tick done = start + simulator_->SecondsToTicks(service_s);
  server.free_at = done;
  simulator_->ScheduleAt(done, [this, job = std::move(job)]() mutable {
    OnPrefillDone(std::move(job), /*decode_hint=*/-1);
  });
}

void Cluster::OnPrefillDone(Job job, int decode_hint) {
  job.kv_bytes = static_cast<double>(job.request.prompt_tokens) *
                 static_cast<double>(config_.decode_node.model.kv_bytes_per_token());
  const int node_index = decode_hint >= 0 ? decode_hint : LeastLoadedDecodeNode();
  if (config_.mode == ClusterMode::kDisaggregated &&
      config_.interconnect_bw_bytes_per_s > 0.0) {
    // KV handoff over the interconnect.
    const double transfer_s = job.kv_bytes / config_.interconnect_bw_bytes_per_s;
    simulator_->ScheduleAfter(simulator_->SecondsToTicks(transfer_s),
                              [this, job = std::move(job), node_index]() mutable {
                                EnqueueDecode(std::move(job), node_index);
                              });
    return;
  }
  // Shared MRM pool (or colocated): the decode node reads KV in place.
  EnqueueDecode(std::move(job), node_index);
}

int Cluster::LeastLoadedDecodeNode() const {
  int best = 0;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < decode_pool_.size(); ++i) {
    const DecodeNode& node = decode_pool_[i];
    const std::size_t load =
        node.active.size() + node.admission_queue.size() + node.prefill_queue.size();
    if (load < best_load) {
      best_load = load;
      best = static_cast<int>(i);
    }
  }
  return best;
}

void Cluster::EnqueueDecode(Job job, int node_index) {
  DecodeNode& node = decode_pool_[static_cast<std::size_t>(node_index)];
  AdvanceNode(node);
  node.admission_queue.push_back(std::move(job));
  AdmitFromQueue(node);
  RescheduleCompletion(static_cast<std::size_t>(node_index));
}

void Cluster::AdmitFromQueue(DecodeNode& node) {
  while (!node.admission_queue.empty() &&
         node.active.size() < static_cast<std::size_t>(config_.max_decode_batch)) {
    Job job = std::move(node.admission_queue.front());
    node.admission_queue.pop_front();
    if (!job.first_token_counted) {
      // First token arrives roughly one decode step after joining.
      const double step =
          decode_model_.DecodeStepSeconds(static_cast<int>(node.active.size()) + 1,
                                          std::max(job.kv_bytes, 1.0));
      stats_.ttft_ms.Add(
          (simulator_->now_seconds() + step - job.request.arrival_s) * 1e3);
      job.first_token_counted = true;
    }
    node.active.push_back(std::move(job));
  }
}

double Cluster::NodeTokenRatePerJob(const DecodeNode& node) const {
  if (node.active.empty()) {
    return 0.0;
  }
  if (node.prefill_running) {
    return 0.0;  // colocated: prefill has the node
  }
  double mean_kv = 0.0;
  for (const Job& job : node.active) {
    mean_kv += job.kv_bytes;
  }
  mean_kv /= static_cast<double>(node.active.size());
  const double step =
      decode_model_.DecodeStepSeconds(static_cast<int>(node.active.size()), mean_kv);
  return 1.0 / step;  // tokens/s per request under continuous batching
}

void Cluster::AdvanceNode(DecodeNode& node) {
  const sim::Tick now = simulator_->now();
  if (now > node.last_update && !node.active.empty()) {
    const double elapsed = simulator_->TicksToSeconds(now - node.last_update);
    const double rate = NodeTokenRatePerJob(node);
    const double kv_per_token =
        static_cast<double>(config_.decode_node.model.kv_bytes_per_token());
    for (Job& job : node.active) {
      const double produced = elapsed * rate;
      job.produced += produced;
      job.kv_bytes += produced * kv_per_token;
    }
  }
  node.last_update = now;
}

void Cluster::RescheduleCompletion(std::size_t node_index) {
  DecodeNode& node = decode_pool_[node_index];
  if (node.has_completion_event) {
    simulator_->Cancel(node.completion_event);
    node.has_completion_event = false;
  }
  const double rate = NodeTokenRatePerJob(node);
  if (rate <= 0.0 || node.active.empty()) {
    return;
  }
  double soonest_s = std::numeric_limits<double>::infinity();
  for (const Job& job : node.active) {
    const double remaining =
        std::max(static_cast<double>(job.request.output_tokens) - job.produced, 0.0);
    soonest_s = std::min(soonest_s, remaining / rate);
  }
  node.completion_event = simulator_->ScheduleAfter(
      simulator_->SecondsToTicks(soonest_s) + 1, [this, node_index] {
        DecodeNode& target = decode_pool_[node_index];
        target.has_completion_event = false;
        AdvanceNode(target);
        // Retire finished jobs.
        for (std::size_t i = target.active.size(); i-- > 0;) {
          Job& job = target.active[i];
          if (job.produced + kEpsilonTokens >=
              static_cast<double>(job.request.output_tokens)) {
            stats_.decode_tokens += static_cast<std::uint64_t>(job.request.output_tokens);
            stats_.e2e_s.Add(simulator_->now_seconds() - job.request.arrival_s);
            stats_.last_completion_s = simulator_->now_seconds();
            ++stats_.completed;
            target.active.erase(target.active.begin() + static_cast<std::ptrdiff_t>(i));
          }
        }
        AdmitFromQueue(target);
        RescheduleCompletion(node_index);
      });
  node.has_completion_event = true;
}

void Cluster::PumpColocatedPrefill(std::size_t node_index) {
  DecodeNode& node = decode_pool_[node_index];
  if (node.prefill_running || node.prefill_queue.empty()) {
    return;
  }
  // Prefill takes over: freeze decode progress first.
  AdvanceNode(node);
  node.prefill_running = true;
  RescheduleCompletion(node_index);  // cancels (rate is now 0)

  Job job = std::move(node.prefill_queue.front());
  node.prefill_queue.pop_front();
  stats_.queue_wait_ms.Add(0.0);
  const double service_s = prefill_model_.PrefillSeconds(job.request.prompt_tokens);
  simulator_->ScheduleAfter(
      simulator_->SecondsToTicks(service_s),
      [this, node_index, job = std::move(job)]() mutable {
        DecodeNode& target = decode_pool_[node_index];
        AdvanceNode(target);  // no decode progress accrued (rate was 0)
        target.prefill_running = false;
        OnPrefillDone(std::move(job), static_cast<int>(node_index));
        PumpColocatedPrefill(node_index);
        RescheduleCompletion(node_index);
      });
}

}  // namespace cluster
}  // namespace mrm
