// Event-driven cluster serving simulation (paper §4's "rack-scale OS" and
// the Splitwise-style phase splitting the paper's endurance math builds on).
//
// Two deployment shapes:
//  * kColocated     — every node runs prefill and decode; prefill has
//    priority and stalls the node's decode batch (the coupling Splitwise
//    identified).
//  * kDisaggregated — a prefill pool feeds a decode pool; finished prompts
//    hand their KV cache over the interconnect, or for free when both pools
//    share a fabric-attached MRM KV store (the paper's §4/[49] pooled-memory
//    scenario: interconnect_bw == 0 means shared pool).
//
// Decode nodes run continuous batching modeled as processor sharing: the
// node-wide token rate comes from NodeModel::DecodeStepSeconds at the
// current batch size and mean resident KV, re-evaluated on every membership
// change.

#ifndef MRMSIM_SRC_CLUSTER_CLUSTER_H_
#define MRMSIM_SRC_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/cluster/node_model.h"
#include "src/common/stats.h"
#include "src/sim/simulator.h"
#include "src/workload/request_generator.h"

namespace mrm {
namespace cluster {

enum class ClusterMode { kColocated, kDisaggregated };

struct ClusterConfig {
  ClusterMode mode = ClusterMode::kDisaggregated;
  NodeModelConfig prefill_node;
  NodeModelConfig decode_node;
  int prefill_nodes = 2;   // ignored in colocated mode
  int decode_nodes = 6;    // total nodes in colocated mode
  int max_decode_batch = 16;
  // KV handoff bandwidth between pools; 0 = shared MRM pool (no transfer).
  double interconnect_bw_bytes_per_s = 0.9e12;
};

struct ClusterStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t decode_tokens = 0;
  Histogram ttft_ms;       // arrival -> first decode token
  Histogram e2e_s;         // arrival -> last token
  Histogram queue_wait_ms; // arrival -> prefill start
  double last_completion_s = 0.0;

  double tokens_per_s() const {
    return last_completion_s > 0.0
               ? static_cast<double>(decode_tokens) / last_completion_s
               : 0.0;
  }
};

class Cluster {
 public:
  Cluster(sim::Simulator* simulator, ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Schedules the request's arrival; call before running the simulator.
  void Submit(const workload::InferenceRequest& request);

  // True when every submitted request has completed.
  bool Drained() const { return stats_.completed == stats_.submitted; }

  const ClusterStats& stats() const { return stats_; }

 private:
  struct Job {
    workload::InferenceRequest request;
    double kv_bytes = 0.0;       // resident KV after prefill
    double produced = 0.0;       // decode tokens so far (fractional)
    bool first_token_counted = false;
  };

  struct PrefillServer {
    sim::Tick free_at = 0;
  };

  struct DecodeNode {
    std::vector<Job> active;
    sim::Tick last_update = 0;
    bool has_completion_event = false;
    sim::EventId completion_event = 0;
    // Colocated mode: outstanding prefill work blocks decode.
    std::deque<Job> prefill_queue;
    bool prefill_running = false;
    std::deque<Job> admission_queue;  // waiting for a batch slot
  };

  void OnArrival(Job job);
  void StartPrefillDisaggregated(Job job);
  void OnPrefillDone(Job job, int decode_hint);
  void EnqueueDecode(Job job, int node_index);
  void AdmitFromQueue(DecodeNode& node);
  void AdvanceNode(DecodeNode& node);
  void RescheduleCompletion(std::size_t node_index);
  double NodeTokenRatePerJob(const DecodeNode& node) const;
  int LeastLoadedDecodeNode() const;

  // Colocated-mode prefill handling on decode nodes.
  void PumpColocatedPrefill(std::size_t node_index);

  sim::Simulator* simulator_;
  ClusterConfig config_;
  NodeModel prefill_model_;
  NodeModel decode_model_;
  std::vector<PrefillServer> prefill_pool_;
  std::vector<DecodeNode> decode_pool_;
  ClusterStats stats_;
};

}  // namespace cluster
}  // namespace mrm

#endif  // MRMSIM_SRC_CLUSTER_CLUSTER_H_
