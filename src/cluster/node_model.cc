#include "src/cluster/node_model.h"

#include <algorithm>

#include "src/common/logging.h"

namespace mrm {
namespace cluster {

NodeModel::NodeModel(const NodeModelConfig& config) : config_(config) {
  MRM_CHECK(config_.model.Validate().ok());
  MRM_CHECK(config_.compute_tflops > 0.0);
  MRM_CHECK(config_.weight_read_bw_bytes_per_s > 0.0);
  MRM_CHECK(config_.kv_read_bw_bytes_per_s > 0.0);
  MRM_CHECK(config_.kv_write_bw_bytes_per_s > 0.0);
  compute_s_per_token_ = 2.0 * static_cast<double>(config_.model.parameters) /
                         (config_.compute_tflops * 1e12);
}

double NodeModel::PrefillTokensPerSecond() const {
  // One chunk: read all weights once, compute chunk tokens, write chunk KV.
  const double chunk = static_cast<double>(config_.prefill_chunk_tokens);
  const double weight_s = static_cast<double>(config_.model.weight_bytes()) /
                          config_.weight_read_bw_bytes_per_s;
  const double kv_s = chunk * static_cast<double>(config_.model.kv_bytes_per_token()) /
                      config_.kv_write_bw_bytes_per_s;
  const double mem_s =
      config_.streams_share_tier ? weight_s + kv_s : std::max(weight_s, kv_s);
  const double comp_s = chunk * compute_s_per_token_;
  return chunk / std::max(mem_s, comp_s);
}

double NodeModel::PrefillSeconds(int tokens) const {
  return static_cast<double>(tokens) / PrefillTokensPerSecond();
}

double NodeModel::DecodeStepSeconds(int batch, double mean_kv_bytes) const {
  MRM_CHECK(batch > 0);
  const double weight_s = static_cast<double>(config_.model.weight_bytes()) /
                          config_.weight_read_bw_bytes_per_s;
  const double kv_s =
      static_cast<double>(batch) * mean_kv_bytes / config_.kv_read_bw_bytes_per_s;
  // Streams on one tier serialize on its bus; streams on separate tiers
  // transfer in parallel (same overlap model as tier::TieredBackend).
  const double mem_s =
      config_.streams_share_tier ? weight_s + kv_s : std::max(weight_s, kv_s);
  const double comp_s = static_cast<double>(batch) * compute_s_per_token_;
  return std::max(mem_s, comp_s);
}

double NodeModel::DecodeTokensPerSecond(int batch, double mean_kv_bytes) const {
  return static_cast<double>(batch) / DecodeStepSeconds(batch, mean_kv_bytes);
}

NodeModelConfig HbmNode(const workload::FoundationModelConfig& model,
                        const workload::TierSpec& hbm, double tflops) {
  NodeModelConfig config;
  config.model = model;
  config.compute_tflops = tflops;
  // One bus for everything: full bandwidth per stream, serialized.
  config.weight_read_bw_bytes_per_s = hbm.read_bw_bytes_per_s;
  config.kv_read_bw_bytes_per_s = hbm.read_bw_bytes_per_s;
  config.kv_write_bw_bytes_per_s = hbm.write_bw_bytes_per_s;
  config.streams_share_tier = true;
  return config;
}

NodeModelConfig CalibrateNodeModel(const workload::FoundationModelConfig& model,
                                   workload::MemoryBackend* backend, double tflops,
                                   int prefill_chunk_tokens, int probe_batch) {
  MRM_CHECK(backend != nullptr);
  MRM_CHECK(model.Validate().ok());
  MRM_CHECK(probe_batch > 0);
  NodeModelConfig config;
  config.model = model;
  config.compute_tflops = tflops;
  config.prefill_chunk_tokens = prefill_chunk_tokens;

  const std::uint64_t weight_probe = model.weight_bytes();
  // A decode-sized KV working set: probe_batch requests at 4K context.
  const std::uint64_t kv_probe =
      static_cast<std::uint64_t>(probe_batch) * 4096ULL * model.kv_bytes_per_token();

  workload::StepBatch batch;
  batch.Read(workload::Stream::kWeights, weight_probe);
  const double weight_s = backend->SubmitStep(batch).seconds;
  MRM_CHECK(weight_s > 0.0) << "weight probe produced zero step time";
  config.weight_read_bw_bytes_per_s = static_cast<double>(weight_probe) / weight_s;

  batch.Clear();
  batch.Read(workload::Stream::kKvCache, kv_probe);
  const double kv_read_s = backend->SubmitStep(batch).seconds;
  MRM_CHECK(kv_read_s > 0.0) << "KV read probe produced zero step time";
  config.kv_read_bw_bytes_per_s = static_cast<double>(kv_probe) / kv_read_s;

  batch.Clear();
  batch.Write(workload::Stream::kKvCache, kv_probe);
  const double kv_write_s = backend->SubmitStep(batch).seconds;
  MRM_CHECK(kv_write_s > 0.0) << "KV write probe produced zero step time";
  config.kv_write_bw_bytes_per_s = static_cast<double>(kv_probe) / kv_write_s;

  // If the combined step costs roughly the sum of the solo probes the two
  // streams serialize on one bus; if it costs about the max they overlap.
  // The midpoint (max + half the min) splits the two hypotheses.
  batch.Clear();
  batch.Read(workload::Stream::kWeights, weight_probe);
  batch.Read(workload::Stream::kKvCache, kv_probe);
  const double combined_s = backend->SubmitStep(batch).seconds;
  const double solo_max = std::max(weight_s, kv_read_s);
  const double solo_min = std::min(weight_s, kv_read_s);
  config.streams_share_tier = combined_s >= solo_max + 0.5 * solo_min;
  return config;
}

NodeModelConfig HbmMrmNode(const workload::FoundationModelConfig& model,
                           const workload::TierSpec& hbm, const workload::TierSpec& mrm,
                           double tflops) {
  NodeModelConfig config;
  config.model = model;
  config.compute_tflops = tflops;
  // Weights stream from MRM at full rate; KV reads split but are dominated
  // by the cold tier; KV appends go to MRM's (slower) write path.
  config.weight_read_bw_bytes_per_s = mrm.read_bw_bytes_per_s;
  config.kv_read_bw_bytes_per_s = hbm.read_bw_bytes_per_s;
  config.kv_write_bw_bytes_per_s = mrm.write_bw_bytes_per_s;
  config.streams_share_tier = false;
  return config;
}

}  // namespace cluster
}  // namespace mrm
