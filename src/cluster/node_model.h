// Analytic per-node performance model for cluster-scale simulation.
//
// Reduces (model, memory tiers, accelerator FLOPs) to the two rates the
// cluster scheduler needs:
//   * prefill token rate  — roofline of prefill compute vs. weight-read
//     bandwidth (chunked prefill amortizes the weight sweep per chunk);
//   * decode step time    — max(compute, memory) for a batch of B requests
//     with a given mean resident KV per request.
// The token-level engine (workload::InferenceEngine) implements the same
// roofline step-by-step; tests pin the two against each other.

#ifndef MRMSIM_SRC_CLUSTER_NODE_MODEL_H_
#define MRMSIM_SRC_CLUSTER_NODE_MODEL_H_

#include <cstdint>

#include "src/workload/backend.h"
#include "src/workload/model_config.h"

namespace mrm {
namespace cluster {

struct NodeModelConfig {
  workload::FoundationModelConfig model;
  double compute_tflops = 1000.0;
  int prefill_chunk_tokens = 2048;
  // Bandwidth serving the weight stream and the KV stream. In an HBM-only
  // node both equal the HBM bandwidth; in an MRM node weights (and cold KV)
  // stream from MRM while the rest stays in HBM — tiers overlap, so each
  // stream sees its own tier's bandwidth.
  double weight_read_bw_bytes_per_s = 0.0;
  double kv_read_bw_bytes_per_s = 0.0;
  double kv_write_bw_bytes_per_s = 0.0;
  // True when weights and KV live on the same tier: their transfers
  // serialize on one bus (sum); false = independent tiers that overlap (max).
  bool streams_share_tier = true;
};

class NodeModel {
 public:
  explicit NodeModel(const NodeModelConfig& config);

  const NodeModelConfig& config() const { return config_; }

  // Sustained prefill rate (tokens/s) for one request at a time.
  double PrefillTokensPerSecond() const;

  // Seconds to prefill a prompt of `tokens`.
  double PrefillSeconds(int tokens) const;

  // Duration of one decode step for `batch` requests whose mean resident KV
  // is `mean_kv_bytes`.
  double DecodeStepSeconds(int batch, double mean_kv_bytes) const;

  // Decode tokens/s of the whole batch at that operating point.
  double DecodeTokensPerSecond(int batch, double mean_kv_bytes) const;

 private:
  NodeModelConfig config_;
  double compute_s_per_token_;
};

// Convenience builders from tier specs.
NodeModelConfig HbmNode(const workload::FoundationModelConfig& model,
                        const workload::TierSpec& hbm, double tflops);
NodeModelConfig HbmMrmNode(const workload::FoundationModelConfig& model,
                           const workload::TierSpec& hbm, const workload::TierSpec& mrm,
                           double tflops);

// Calibrates a node model against a live backend by probing it with
// synthetic SubmitStep batches: a pure weight sweep and pure KV read/write
// probes pin the three stream bandwidths, and a combined weights+KV probe
// decides whether the streams share a bus (time adds) or overlap (max).
// Works on any MemoryBackend — analytic, tiered or cycle-level sim — so the
// cluster layer inherits whichever fidelity the backend provides. The
// backend's energy/scrub ledgers advance during probing; calibrate on a
// dedicated instance when those matter.
NodeModelConfig CalibrateNodeModel(const workload::FoundationModelConfig& model,
                                   workload::MemoryBackend* backend, double tflops,
                                   int prefill_chunk_tokens = 2048,
                                   int probe_batch = 8);

}  // namespace cluster
}  // namespace mrm

#endif  // MRMSIM_SRC_CLUSTER_NODE_MODEL_H_
