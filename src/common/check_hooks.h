// Compile-time switch for the verification layer's observer hooks.
//
// The protocol auditor (src/check/, DESIGN.md §9) observes every command the
// simulator issues through hook points in ChannelController, MemorySystem and
// MrmDevice. The hooks are compiled in only when the MRMSIM_CHECKED CMake
// option is ON; otherwise `kCheckedHooks` is false and every hook site is an
// `if constexpr (false)` branch the compiler removes entirely, so unchecked
// builds pay nothing — not even a branch on the observer pointer.
//
// Even in a checked build, auditing is opt-in at runtime: nothing is checked
// until an observer is attached (see src/check/attach.h and the MRMSIM_CHECK
// environment variable).

#ifndef MRMSIM_SRC_COMMON_CHECK_HOOKS_H_
#define MRMSIM_SRC_COMMON_CHECK_HOOKS_H_

namespace mrm {

#ifdef MRMSIM_CHECKED
inline constexpr bool kCheckedHooks = true;
#else
inline constexpr bool kCheckedHooks = false;
#endif

}  // namespace mrm

#endif  // MRMSIM_SRC_COMMON_CHECK_HOOKS_H_
