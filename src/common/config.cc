#include "src/common/config.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace mrm {
namespace {

std::string Trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

// Splits "123.5GiB" into (123.5, "GiB").
bool SplitNumberSuffix(const std::string& text, double* number, std::string* suffix) {
  const std::string t = Trim(text);
  if (t.empty()) {
    return false;
  }
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end == t.c_str()) {
    return false;
  }
  *number = v;
  *suffix = Trim(std::string(end));
  return true;
}

}  // namespace

Result<Config> Config::Parse(const std::string& text) {
  Config config;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments ('#' or ';').
    const std::size_t comment = line.find_first_of("#;");
    if (comment != std::string::npos) {
      line = line.substr(0, comment);
    }
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) {
      continue;
    }
    const std::size_t eq = trimmed.find('=');
    if (eq == std::string::npos) {
      return Error("config line " + std::to_string(line_no) + ": expected 'key = value', got '" +
                   trimmed + "'");
    }
    const std::string key = Trim(trimmed.substr(0, eq));
    const std::string value = Trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      return Error("config line " + std::to_string(line_no) + ": empty key");
    }
    config.Set(key, value);
  }
  return config;
}

Result<Config> Config::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Error("cannot open config file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parse(buffer.str());
}

void Config::Set(const std::string& key, const std::string& value) { values_[key] = value; }

bool Config::Has(const std::string& key) const { return values_.count(key) != 0; }

std::string Config::GetString(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  touched_[key] = true;
  return it->second;
}

std::int64_t Config::GetInt(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  touched_[key] = true;
  return std::strtoll(it->second.c_str(), nullptr, 0);
}

double Config::GetDouble(const std::string& key, double def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  touched_[key] = true;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Config::GetBool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  touched_[key] = true;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::uint64_t Config::GetSize(const std::string& key, std::uint64_t def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return def;
  }
  touched_[key] = true;
  const auto parsed = ParseSize(it->second);
  return parsed.ok() ? parsed.value() : def;
}

double Config::GetDuration(const std::string& key, double def_seconds) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return def_seconds;
  }
  touched_[key] = true;
  const auto parsed = ParseDuration(it->second);
  return parsed.ok() ? parsed.value() : def_seconds;
}

std::vector<std::string> Config::UntouchedKeys() const {
  std::vector<std::string> keys;
  for (const auto& [key, value] : values_) {
    if (!touched_.count(key)) {
      keys.push_back(key);
    }
  }
  return keys;
}

std::vector<std::pair<std::string, std::string>> Config::Items() const {
  return {values_.begin(), values_.end()};
}

Result<std::uint64_t> Config::ParseSize(const std::string& text) {
  double number = 0.0;
  std::string suffix;
  if (!SplitNumberSuffix(text, &number, &suffix)) {
    return Error("bad size literal: '" + text + "'");
  }
  double multiplier = 1.0;
  if (suffix.empty() || suffix == "B") {
    multiplier = 1.0;
  } else if (suffix == "KiB") {
    multiplier = 1024.0;
  } else if (suffix == "MiB") {
    multiplier = 1024.0 * 1024.0;
  } else if (suffix == "GiB") {
    multiplier = 1024.0 * 1024.0 * 1024.0;
  } else if (suffix == "TiB") {
    multiplier = 1024.0 * 1024.0 * 1024.0 * 1024.0;
  } else if (suffix == "KB") {
    multiplier = 1e3;
  } else if (suffix == "MB") {
    multiplier = 1e6;
  } else if (suffix == "GB") {
    multiplier = 1e9;
  } else if (suffix == "TB") {
    multiplier = 1e12;
  } else {
    return Error("unknown size suffix: '" + suffix + "'");
  }
  const double bytes = number * multiplier;
  if (bytes < 0.0) {
    return Error("negative size: '" + text + "'");
  }
  return static_cast<std::uint64_t>(bytes);
}

Result<double> Config::ParseDuration(const std::string& text) {
  double number = 0.0;
  std::string suffix;
  if (!SplitNumberSuffix(text, &number, &suffix)) {
    return Error("bad duration literal: '" + text + "'");
  }
  double scale = 1.0;
  if (suffix.empty() || suffix == "s") {
    scale = 1.0;
  } else if (suffix == "ns") {
    scale = 1e-9;
  } else if (suffix == "us") {
    scale = 1e-6;
  } else if (suffix == "ms") {
    scale = 1e-3;
  } else if (suffix == "m" || suffix == "min") {
    scale = 60.0;
  } else if (suffix == "h") {
    scale = 3600.0;
  } else if (suffix == "d") {
    scale = 86400.0;
  } else if (suffix == "y") {
    scale = 86400.0 * 365.0;
  } else {
    return Error("unknown duration suffix: '" + suffix + "'");
  }
  return number * scale;
}

}  // namespace mrm
