// Flat key-value configuration with typed accessors.
//
// Format (one entry per line):
//   # comment
//   workload.model = llama2-70b
//   mem.channels   = 8
//   mrm.retention_s = 3600        ; trailing comments with ';' or '#'
//
// Keys are dotted paths; values are strings parsed on demand. Unknown keys
// are detected via Touched()/UntouchedKeys() so experiments can reject typos.

#ifndef MRMSIM_SRC_COMMON_CONFIG_H_
#define MRMSIM_SRC_COMMON_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace mrm {

class Config {
 public:
  Config() = default;

  // Parses the textual format above. Later duplicate keys override earlier.
  static Result<Config> Parse(const std::string& text);
  static Result<Config> FromFile(const std::string& path);

  void Set(const std::string& key, const std::string& value);

  bool Has(const std::string& key) const;

  // Typed getters with defaults. Sizes accept suffixes: KiB/MiB/GiB/TiB and
  // KB/MB/GB/TB (and bare numbers). Durations accept ns/us/ms/s/m/h/d/y.
  std::string GetString(const std::string& key, const std::string& def = "") const;
  std::int64_t GetInt(const std::string& key, std::int64_t def = 0) const;
  double GetDouble(const std::string& key, double def = 0.0) const;
  bool GetBool(const std::string& key, bool def = false) const;
  std::uint64_t GetSize(const std::string& key, std::uint64_t def = 0) const;
  double GetDuration(const std::string& key, double def_seconds = 0.0) const;

  // All keys never read through a getter (typo detection).
  std::vector<std::string> UntouchedKeys() const;

  // All key=value pairs, sorted by key (for echoing into experiment logs).
  std::vector<std::pair<std::string, std::string>> Items() const;

  // Parses a standalone size/duration literal (shared with getters).
  static Result<std::uint64_t> ParseSize(const std::string& text);
  static Result<double> ParseDuration(const std::string& text);

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace mrm

#endif  // MRMSIM_SRC_COMMON_CONFIG_H_
