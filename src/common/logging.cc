#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace mrm {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  // Keep only the basename to reduce noise.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LogLevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace mrm
