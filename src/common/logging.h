// Minimal leveled logging to stderr.
//
// Usage:  MRM_LOG(Info) << "loaded " << n << " weights";
// Level is a process-wide threshold (default Info). Fatal aborts.

#ifndef MRMSIM_SRC_COMMON_LOGGING_H_
#define MRMSIM_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mrm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Sets / reads the global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

const char* LogLevelName(LogLevel level);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace mrm

#define MRM_LOG(severity) \
  ::mrm::LogMessage(::mrm::LogLevel::k##severity, __FILE__, __LINE__).stream()

// Logs and aborts when `condition` is false; always evaluated (also in
// release builds) because simulator invariants guard correctness of results.
#define MRM_CHECK(condition)                                                     \
  if (!(condition))                                                              \
  ::mrm::LogMessage(::mrm::LogLevel::kFatal, __FILE__, __LINE__).stream()        \
      << "check failed: " #condition " "

#endif  // MRMSIM_SRC_COMMON_LOGGING_H_
