// A minimal Result<T> / Status type for fallible operations.
//
// mrmsim is exception-free in its hot paths (simulator inner loops); fallible
// configuration / device operations return Result<T> or Status instead.

#ifndef MRMSIM_SRC_COMMON_RESULT_H_
#define MRMSIM_SRC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace mrm {

// Error holds a human-readable message. Cheap to move, comparable for tests.
class Error {
 public:
  explicit Error(std::string message) : message_(std::move(message)) {}

  const std::string& message() const { return message_; }

  friend bool operator==(const Error& a, const Error& b) { return a.message_ == b.message_; }

 private:
  std::string message_;
};

// Status: success or an Error.
class Status {
 public:
  Status() = default;  // OK
  Status(Error error) : error_(std::move(error)) {}  // NOLINT: implicit by design

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  const Error& error() const {
    assert(!ok());
    return *error_;
  }
  // Message of the error, or "" when OK. Convenient for logging.
  std::string message() const { return ok() ? std::string() : error_->message(); }

 private:
  std::optional<Error> error_;
};

// Result<T>: either a value or an Error.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}      // NOLINT: implicit by design
  Result(Error error) : data_(std::move(error)) {}  // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  // Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

  Status status() const { return ok() ? Status::Ok() : Status(std::get<Error>(data_)); }

 private:
  std::variant<T, Error> data_;
};

}  // namespace mrm

#endif  // MRMSIM_SRC_COMMON_RESULT_H_
