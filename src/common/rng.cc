#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace mrm {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

std::uint64_t Rng::NextU64() {
  // xoshiro256++
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Lemire's nearly-divisionless method.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -std::log(1.0 - u) / lambda;
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Lognormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

std::uint64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    const double v = Normal(mean, std::sqrt(mean)) + 0.5;
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
  }
  // Knuth's algorithm.
  const double limit = std::exp(-mean);
  double product = NextDouble();
  std::uint64_t count = 0;
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

std::uint64_t Rng::Zipf(std::uint64_t n, double s) {
  assert(n > 0);
  if (n == 1 || s == 0.0) {
    return NextBounded(n);
  }
  // Rejection-inversion (Gray): approximate the Zipf CDF by the integral of
  // x^-s and reject. Works for s != 1; for s == 1 use the log form.
  const double nd = static_cast<double>(n);
  while (true) {
    const double u = NextDouble();
    double x;
    if (std::abs(s - 1.0) < 1e-9) {
      x = std::exp(u * std::log(nd + 1.0));
    } else {
      const double t = std::pow(nd + 1.0, 1.0 - s);
      x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    }
    const std::uint64_t k = static_cast<std::uint64_t>(x);  // in [1, n]
    if (k < 1 || k > n) {
      continue;
    }
    // Acceptance ratio: (k/x)^s accounts for the discretization.
    const double ratio = std::pow(static_cast<double>(k) / x, s);
    if (NextDouble() < ratio) {
      return k - 1;
    }
  }
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace mrm
