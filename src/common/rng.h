// Deterministic pseudo-random number generation for simulations.
//
// All stochastic behaviour in mrmsim flows through Rng so that a (seed,
// config) pair reproduces a simulation bit-for-bit. The core generator is
// xoshiro256++ seeded via SplitMix64; distribution helpers cover the needs of
// the workload generator (exponential inter-arrivals, lognormal context
// lengths, Zipf popularity, Poisson counts).

#ifndef MRMSIM_SRC_COMMON_RNG_H_
#define MRMSIM_SRC_COMMON_RNG_H_

#include <array>
#include <cstdint>

namespace mrm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform 64-bit value.
  std::uint64_t NextU64();

  // Uniform in [0, bound). bound == 0 returns 0. Uses Lemire rejection to
  // avoid modulo bias.
  std::uint64_t NextBounded(std::uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Exponential with rate lambda (mean 1/lambda). lambda must be > 0.
  double Exponential(double lambda);

  // Standard normal via Box-Muller (cached second value).
  double Normal(double mean, double stddev);

  // Lognormal: exp(Normal(mu, sigma)).
  double Lognormal(double mu, double sigma);

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64).
  std::uint64_t Poisson(double mean);

  // Zipf-distributed rank in [0, n) with exponent s (s == 0 -> uniform).
  // Uses inverse-CDF over precomputation-free rejection (Jim Gray's method).
  std::uint64_t Zipf(std::uint64_t n, double s);

  // Splits off an independent child generator; the child stream is a pure
  // function of this generator's current state.
  Rng Fork();

 private:
  std::array<std::uint64_t, 4> state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mrm

#endif  // MRMSIM_SRC_COMMON_RNG_H_
