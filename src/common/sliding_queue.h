// A FIFO over a contiguous vector with a sliding head index.
//
// push_back appends; pop_front advances the head without moving elements, and
// storage is recycled (head reset, capacity kept) whenever the queue drains.
// In a steady-state producer/consumer cycle that periodically empties — the
// shape of the memory system's arrival, backlog and completion queues — this
// is allocation-free once warmed up, unlike std::deque whose block map churns
// the allocator at chunk boundaries.

#ifndef MRMSIM_SRC_COMMON_SLIDING_QUEUE_H_
#define MRMSIM_SRC_COMMON_SLIDING_QUEUE_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace mrm {

template <typename T>
class SlidingQueue {
 public:
  bool empty() const { return head_ == items_.size(); }
  std::size_t size() const { return items_.size() - head_; }

  void push_back(T value) { items_.push_back(std::move(value)); }

  T& front() { return items_[head_]; }
  const T& front() const { return items_[head_]; }

  // Indexed from the current head (operator[](0) == front()).
  T& operator[](std::size_t i) { return items_[head_ + i]; }
  const T& operator[](std::size_t i) const { return items_[head_ + i]; }

  void pop_front() {
    ++head_;
    if (head_ == items_.size()) {
      clear();
    }
  }

  // Drops everything but keeps the vector's capacity.
  void clear() {
    items_.clear();
    head_ = 0;
  }

  // The underlying storage from the head onward, for bulk consumption.
  typename std::vector<T>::iterator begin() { return items_.begin() + static_cast<std::ptrdiff_t>(head_); }
  typename std::vector<T>::iterator end() { return items_.end(); }
  typename std::vector<T>::const_iterator begin() const {
    return items_.begin() + static_cast<std::ptrdiff_t>(head_);
  }
  typename std::vector<T>::const_iterator end() const { return items_.end(); }

 private:
  std::vector<T> items_;
  std::size_t head_ = 0;
};

}  // namespace mrm

#endif  // MRMSIM_SRC_COMMON_SLIDING_QUEUE_H_
