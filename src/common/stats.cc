#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mrm {

void StreamingStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StreamingStats::Reset() { *this = StreamingStats(); }

double StreamingStats::variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram() : buckets_(static_cast<std::size_t>(kSubBuckets) * kDecades, 0) {}

int Histogram::BucketIndex(double value) {
  // value >= 1 guaranteed by caller.
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);  // value = mantissa * 2^exp, mantissa in [0.5, 1)
  int decade = exponent - 1;                              // floor(log2(value))
  if (decade >= kDecades) {
    decade = kDecades - 1;
  }
  // Position within the decade: (value / 2^decade - 1) in [0, 1).
  const double frac = mantissa * 2.0 - 1.0;
  int sub = static_cast<int>(frac * kSubBuckets);
  sub = std::clamp(sub, 0, kSubBuckets - 1);
  return decade * kSubBuckets + sub;
}

double Histogram::BucketLowerBound(int index) {
  const int decade = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, decade);
}

void Histogram::Add(double value) {
  if (value < 0.0) {
    value = 0.0;
  }
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  if (value < 1.0) {
    ++underflow_;
    return;
  }
  ++buckets_[static_cast<std::size_t>(BucketIndex(value))];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  underflow_ += other.underflow_;
  sum_ += other.sum_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0ull);
  count_ = 0;
  underflow_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double seen = static_cast<double>(underflow_);
  if (target <= seen) {
    // Within the [0,1) underflow bucket; interpolate linearly.
    return underflow_ == 0 ? 0.0 : target / static_cast<double>(underflow_);
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double in_bucket = static_cast<double>(buckets_[i]);
    if (seen + in_bucket >= target && in_bucket > 0) {
      const double lo = BucketLowerBound(static_cast<int>(i));
      const double hi = BucketLowerBound(static_cast<int>(i) + 1);
      const double frac = (target - seen) / in_bucket;
      return std::min(lo + frac * (hi - lo), max_);
    }
    seen += in_bucket;
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.3g p50=%.3g p90=%.3g p99=%.3g max=%.3g",
                static_cast<unsigned long long>(count_), mean(), Quantile(0.5), Quantile(0.9),
                Quantile(0.99), max());
  return buf;
}

}  // namespace mrm
