// Streaming statistics and histograms.
//
// StreamingStats accumulates count/mean/variance/min/max in O(1) space
// (Welford's algorithm). Histogram buckets values on a log2 scale and reports
// approximate quantiles; it is the workhorse for latency distributions.

#ifndef MRMSIM_SRC_COMMON_STATS_H_
#define MRMSIM_SRC_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mrm {

class StreamingStats {
 public:
  void Add(double x);
  void Merge(const StreamingStats& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return count_ == 0 ? 0.0 : mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Log2-bucketed histogram over non-negative values.
//
// Each power-of-two decade is split into `kSubBuckets` linear sub-buckets,
// giving a worst-case relative quantile error of 1/kSubBuckets.
class Histogram {
 public:
  Histogram();

  void Add(double value);
  void Merge(const Histogram& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  // Approximate quantile, q in [0, 1]. Returns 0 when empty.
  double Quantile(double q) const;

  // Convenience: p50/p99 etc. formatted as "p50=.. p90=.. p99=.. max=..".
  std::string Summary() const;

  // Exact state equality (bucket counts and moments), used to verify
  // bit-identical aggregation across execution modes.
  friend bool operator==(const Histogram&, const Histogram&) = default;

  static constexpr int kSubBuckets = 16;
  static constexpr int kDecades = 64;  // covers doubles up to 2^63

  // Checkpoint of the full histogram state (durable snapshots, DESIGN.md
  // §13): bucket counts plus the exact moments, so a restored histogram is
  // bit-identical to the saved one — quantiles, mean and equality included.
  struct SavedState {
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    std::uint64_t underflow = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  void SaveState(SavedState* out) const {
    out->buckets = buckets_;
    out->count = count_;
    out->underflow = underflow_;
    out->sum = sum_;
    out->min = min_;
    out->max = max_;
  }
  void RestoreState(const SavedState& saved) {
    buckets_ = saved.buckets;
    count_ = saved.count;
    underflow_ = saved.underflow;
    sum_ = saved.sum;
    min_ = saved.min;
    max_ = saved.max;
  }

 private:
  static int BucketIndex(double value);
  static double BucketLowerBound(int index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t underflow_ = 0;  // values in [0, 1)
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace mrm

#endif  // MRMSIM_SRC_COMMON_STATS_H_
