#include "src/common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mrm {

std::string FormatBytes(std::uint64_t bytes) {
  static const char* kSuffixes[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  double value = static_cast<double>(bytes);
  int suffix = 0;
  while (value >= 1024.0 && suffix < 5) {
    value /= 1024.0;
    ++suffix;
  }
  char buf[48];
  if (suffix == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kSuffixes[suffix]);
  }
  return buf;
}

std::string FormatNumber(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4g", value);
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[48];
  const double a = std::abs(seconds);
  if (a < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3g ns", seconds * 1e9);
  } else if (a < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3g us", seconds * 1e6);
  } else if (a < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3g ms", seconds * 1e3);
  } else if (a < 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.3g s", seconds);
  } else if (a < 86400.0) {
    std::snprintf(buf, sizeof(buf), "%.3g h", seconds / 3600.0);
  } else if (a < 86400.0 * 365.0) {
    std::snprintf(buf, sizeof(buf), "%.3g d", seconds / 86400.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g y", seconds / (86400.0 * 365.0));
  }
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> header) : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) {
        line.append(widths[c] - row[c].size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };
  std::string out = render_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

std::string TablePrinter::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) {
      return cell;
    }
    std::string escaped = "\"";
    for (char ch : cell) {
      if (ch == '"') {
        escaped += '"';
      }
      escaped += ch;
    }
    escaped += '"';
    return escaped;
  };
  auto render = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += escape(row[c]);
      if (c + 1 < row.size()) {
        line += ',';
      }
    }
    line += '\n';
    return line;
  };
  std::string out = render(header_);
  for (const auto& row : rows_) {
    out += render(row);
  }
  return out;
}

void TablePrinter::Print(const std::string& title) const {
  std::printf("== %s ==\n%s\n", title.c_str(), ToString().c_str());
  std::fflush(stdout);
}

}  // namespace mrm
