// Plain-text table and CSV rendering for bench harnesses.
//
// Every experiment binary prints its rows/series through TablePrinter so all
// reproduced tables/figures share one format and can be diffed run-to-run.

#ifndef MRMSIM_SRC_COMMON_TABLE_H_
#define MRMSIM_SRC_COMMON_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mrm {

// Formats a byte count with a binary-unit suffix, e.g. "1.5 GiB".
std::string FormatBytes(std::uint64_t bytes);

// Formats a double in engineering notation, e.g. "1.58e+08" -> "1.6e8" style
// kept simple: %.3g.
std::string FormatNumber(double value);

// Formats a duration in seconds with an adaptive unit (ns/us/ms/s/h/d/y).
std::string FormatSeconds(double seconds);

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends a row; the row is padded/truncated to the header width.
  void AddRow(std::vector<std::string> row);

  // Renders with aligned columns.
  std::string ToString() const;

  // Renders as CSV (RFC-ish: comma-separated, quotes when a cell contains a
  // comma or quote).
  std::string ToCsv() const;

  // Prints ToString() to stdout, framed by the given title.
  void Print(const std::string& title) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mrm

#endif  // MRMSIM_SRC_COMMON_TABLE_H_
