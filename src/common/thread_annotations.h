// Clang Thread Safety Analysis vocabulary for the hybrid PDES engine.
//
// The engine has no conventional fine-grained locking: correctness rests on
// an ownership protocol (DESIGN.md §8) in which every piece of mutable state
// belongs to exactly one *context* at any instant:
//
//   * hub context — the single thread driving the epoch executive. It owns
//     all cross-lane state (routing tables, record heaps, request maps) and,
//     while every lane is parked at the epoch barrier, it may also touch
//     lane-owned state (routing arrivals, rolling a lane back, sealing).
//   * lane context — during an epoch, each lane (its sub-Simulator, its
//     ChannelController, its speculation scratch) is driven by exactly one
//     worker thread, which owns that lane's state exclusively and must not
//     touch hub-shared state or any other lane.
//
// These contexts are not mutexes, so we model them as *phantom capabilities*
// (tsa::ThreadRole below): zero-size objects carrying a clang
// `capability` attribute, acquired/asserted by empty inline functions. The
// handoff points of the real protocol (the epoch dispatch/join barrier in
// sim::ParallelExecutor) are where the fictional capability changes hands;
// an `Assert*` call at the top of a function is the machine-checked form of
// the comment "runs in hub context" / "runs in lane context". Under
// `-Werror=thread-safety` (CMake option MRMSIM_THREAD_SAFETY, clang only),
// any new code path that touches guarded state without the matching context
// claim fails to compile — e.g. a hub-shared write added to lane code, the
// aliasing bug class that would silently break bit-identical replay.
//
// Everything here compiles away to nothing outside
// clang + MRMSIM_THREAD_SAFETY, so gcc builds and release builds are
// byte-for-byte unaffected.
//
// Vocabulary (see DESIGN.md §12 for the full policy):
//   MRMSIM_LANE_OWNED(role)     member owned by one lane; guarded by that
//                               lane's ThreadRole.
//   MRMSIM_HUB_SHARED           member owned by the serial hub context;
//                               guarded by tsa::hub_role.
//   MRMSIM_EPOCH_BARRIER_ONLY   hub-owned member that is additionally only
//                               meaningful between epoch dispatches (LPT
//                               plans, scheduling telemetry). Same guard as
//                               MRMSIM_HUB_SHARED; the distinct spelling is
//                               documentation that lanes must never need it
//                               even at a seal.
//   MRMSIM_CONST_SHARED         documentation-only: immutable after
//                               construction, safe to read from any context.

#ifndef MRMSIM_SRC_COMMON_THREAD_ANNOTATIONS_H_
#define MRMSIM_SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(MRMSIM_THREAD_SAFETY) && defined(__clang__)
#define MRMSIM_TSA_ATTR(x) __attribute__((x))
#else
#define MRMSIM_TSA_ATTR(x)  // no-op outside clang -Werror=thread-safety builds
#endif

// Canonical clang thread-safety attribute spellings.
#define MRMSIM_CAPABILITY(x) MRMSIM_TSA_ATTR(capability(x))
#define MRMSIM_SCOPED_CAPABILITY MRMSIM_TSA_ATTR(scoped_lockable)
#define MRMSIM_GUARDED_BY(x) MRMSIM_TSA_ATTR(guarded_by(x))
#define MRMSIM_PT_GUARDED_BY(x) MRMSIM_TSA_ATTR(pt_guarded_by(x))
#define MRMSIM_REQUIRES(...) MRMSIM_TSA_ATTR(requires_capability(__VA_ARGS__))
#define MRMSIM_REQUIRES_SHARED(...) MRMSIM_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#define MRMSIM_ACQUIRE(...) MRMSIM_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define MRMSIM_ACQUIRE_SHARED(...) MRMSIM_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define MRMSIM_RELEASE(...) MRMSIM_TSA_ATTR(release_capability(__VA_ARGS__))
#define MRMSIM_RELEASE_SHARED(...) MRMSIM_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define MRMSIM_EXCLUDES(...) MRMSIM_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define MRMSIM_ASSERT_CAPABILITY(x) MRMSIM_TSA_ATTR(assert_capability(x))
#define MRMSIM_ASSERT_SHARED_CAPABILITY(x) MRMSIM_TSA_ATTR(assert_shared_capability(x))
#define MRMSIM_RETURN_CAPABILITY(x) MRMSIM_TSA_ATTR(lock_returned(x))
#define MRMSIM_NO_THREAD_SAFETY_ANALYSIS MRMSIM_TSA_ATTR(no_thread_safety_analysis)

// Project ownership markers (see header comment).
#define MRMSIM_LANE_OWNED(role) MRMSIM_GUARDED_BY(role)
#define MRMSIM_HUB_SHARED MRMSIM_GUARDED_BY(::mrm::tsa::hub_role)
#define MRMSIM_EPOCH_BARRIER_ONLY MRMSIM_GUARDED_BY(::mrm::tsa::hub_role)
#define MRMSIM_CONST_SHARED  // immutable after construction; any context may read

namespace mrm {
namespace tsa {

// A phantom capability standing for "this thread currently plays role X".
// It has no runtime state: Acquire/Release/Held are empty inline functions
// whose only effect is the thread-safety attribute. Exclusive hold means
// "this thread may mutate state guarded by the role"; shared hold means
// "this thread may read it" (used for hub-side inspection of parked lanes).
//
// The Held()/HeldShared() *assert* forms are the workhorse: the ownership
// handoffs happen through the executor's generation barrier, not through
// lexically scoped acquire/release pairs, so functions claim — rather than
// take — the role they run under, exactly like Mutex::AssertHeld in
// handshake-based code. The claim is then checked against every guarded
// access in that function body (including lambdas, which clang analyzes as
// separate functions — each lambda body needs its own claim).
class MRMSIM_CAPABILITY("role") ThreadRole {
 public:
  constexpr ThreadRole() = default;
  // Copying a phantom is harmless — the capability's identity is the member
  // object itself, so a moved Lane's role guards the new Lane as expected —
  // and keeping roles copyable keeps their owners vector-friendly.
  constexpr ThreadRole(const ThreadRole&) = default;
  ThreadRole& operator=(const ThreadRole&) = default;

  void Acquire() const MRMSIM_ACQUIRE() {}
  void Release() const MRMSIM_RELEASE() {}
  void AcquireShared() const MRMSIM_ACQUIRE_SHARED() {}
  void ReleaseShared() const MRMSIM_RELEASE_SHARED() {}

  // "The protocol guarantees this thread holds the role here." Checked
  // claims, not runtime checks: they cost nothing and make the analysis
  // verify every guarded access downstream in the enclosing body.
  void Held() const MRMSIM_ASSERT_CAPABILITY(this) {}
  void HeldShared() const MRMSIM_ASSERT_SHARED_CAPABILITY(this) {}
};

// The serial hub / epoch-executive context. There is exactly one such
// context per process-wide simulation step (nested lane Simulators never
// claim it), so a single global phantom suffices — holding it means "I am
// the thread serially driving the executive right now".
inline constexpr ThreadRole hub_role;

}  // namespace tsa
}  // namespace mrm

#endif  // MRMSIM_SRC_COMMON_THREAD_ANNOTATIONS_H_
