// Unit helpers and physical constants used throughout mrmsim.
//
// Conventions:
//  * Sizes are in bytes (std::uint64_t) unless suffixed otherwise.
//  * Energy is in picojoules (double) at the device level and joules (double)
//    at the cluster/analysis level; helpers convert between the two.
//  * Time at the device level is in controller clock ticks (sim::Tick); wall
//    time in analyses is in seconds (double).

#ifndef MRMSIM_SRC_COMMON_UNITS_H_
#define MRMSIM_SRC_COMMON_UNITS_H_

#include <cstdint>

namespace mrm {

// --- Sizes (IEC binary for memory structures, SI decimal for marketing GB) ---
inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;
inline constexpr std::uint64_t kTiB = 1024ull * kGiB;

inline constexpr std::uint64_t kKB = 1000ull;
inline constexpr std::uint64_t kMB = 1000ull * kKB;
inline constexpr std::uint64_t kGB = 1000ull * kMB;
inline constexpr std::uint64_t kTB = 1000ull * kGB;

// --- Time (seconds) ---
inline constexpr double kNanosecond = 1e-9;
inline constexpr double kMicrosecond = 1e-6;
inline constexpr double kMillisecond = 1e-3;
inline constexpr double kSecond = 1.0;
inline constexpr double kMinute = 60.0;
inline constexpr double kHour = 3600.0;
inline constexpr double kDay = 24.0 * kHour;
inline constexpr double kYear = 365.0 * kDay;

// --- Energy ---
inline constexpr double kPicojoule = 1e-12;  // in joules
inline constexpr double kNanojoule = 1e-9;   // in joules

// Converts an energy in picojoules to joules.
constexpr double PicojoulesToJoules(double pj) { return pj * kPicojoule; }

// Converts joules to picojoules.
constexpr double JoulesToPicojoules(double j) { return j / kPicojoule; }

// --- Physical constants ---
// Boltzmann constant in J/K; used by the STT-MRAM thermal-stability model.
inline constexpr double kBoltzmann = 1.380649e-23;
// Room temperature in kelvin, the reference for retention models.
inline constexpr double kRoomTemperatureK = 300.0;
// Thermal attempt period tau0 (~1 ns) for Arrhenius-style retention models.
inline constexpr double kThermalAttemptPeriod = 1e-9;

// Formats a byte count as a human-readable short string is provided by
// common/table.h (FormatBytes); kept there to avoid pulling <string> here.

}  // namespace mrm

#endif  // MRMSIM_SRC_COMMON_UNITS_H_
