#include "src/driver/builders.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/common/units.h"
#include "src/driver/sim_backend.h"
#include "src/policy/policy_config.h"
#include "src/tier/tier_spec.h"

namespace mrm {
namespace driver {
namespace {

Result<cell::Technology> TechnologyByName(const std::string& name) {
  if (name == "stt-mram") {
    return cell::Technology::kSttMram;
  }
  if (name == "rram") {
    return cell::Technology::kRram;
  }
  if (name == "pcm") {
    return cell::Technology::kPcm;
  }
  return Error("unknown MRM technology: '" + name + "' (stt-mram | rram | pcm)");
}

}  // namespace

Result<BackendKind> BackendKindByName(const std::string& name) {
  if (name == "analytic") {
    return BackendKind::kAnalytic;
  }
  if (name == "tiered") {
    return BackendKind::kTiered;
  }
  if (name == "sim") {
    return BackendKind::kSim;
  }
  return Error("unknown backend: '" + name + "' (analytic | tiered | sim)");
}

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kAnalytic:
      return "analytic";
    case BackendKind::kTiered:
      return "tiered";
    case BackendKind::kSim:
      return "sim";
  }
  return "unknown";
}

Result<mem::DeviceConfig> BuildDeviceConfig(const Config& config, const std::string& prefix) {
  const std::string preset = config.GetString(prefix + ".preset", "hbm3e");
  auto device = mem::DeviceConfigByName(preset);
  if (!device.ok()) {
    return device.error();
  }
  mem::DeviceConfig result = device.value();
  result.channels = static_cast<int>(config.GetInt(prefix + ".channels", result.channels));
  result.rows_per_bank =
      static_cast<std::uint64_t>(config.GetInt(prefix + ".rows_per_bank",
                                               static_cast<std::int64_t>(result.rows_per_bank)));
  result.row_bytes =
      static_cast<std::uint32_t>(config.GetInt(prefix + ".row_bytes", result.row_bytes));
  const Status valid = result.Validate();
  if (!valid.ok()) {
    return valid.error();
  }
  return result;
}

Result<mrmcore::MrmDeviceConfig> BuildMrmConfig(const Config& config,
                                                const std::string& prefix) {
  mrmcore::MrmDeviceConfig result;
  result.name = config.GetString(prefix + ".name", "mrm");
  auto tech = TechnologyByName(config.GetString(prefix + ".technology", "stt-mram"));
  if (!tech.ok()) {
    return tech.error();
  }
  result.technology = tech.value();
  result.channels = static_cast<int>(config.GetInt(prefix + ".channels", result.channels));
  result.zones = static_cast<std::uint32_t>(config.GetInt(prefix + ".zones", result.zones));
  result.zone_blocks =
      static_cast<std::uint32_t>(config.GetInt(prefix + ".zone_blocks", result.zone_blocks));
  result.block_bytes = static_cast<std::uint32_t>(
      config.GetSize(prefix + ".block_bytes", result.block_bytes));
  result.channel_read_bw_bytes_per_s =
      config.GetDouble(prefix + ".read_bw_gbps", result.channel_read_bw_bytes_per_s / 1e9) *
      1e9;
  result.channel_write_bw_ref_bytes_per_s =
      config.GetDouble(prefix + ".write_bw_gbps",
                       result.channel_write_bw_ref_bytes_per_s / 1e9) *
      1e9;
  result.default_retention_s =
      config.GetDuration(prefix + ".retention", result.default_retention_s);
  result.background_mw = config.GetDouble(prefix + ".background_mw", result.background_mw);
  const Status valid = result.Validate();
  if (!valid.ok()) {
    return valid.error();
  }
  return result;
}

Result<workload::FoundationModelConfig> BuildModel(const Config& config) {
  auto model = workload::ModelByName(config.GetString("model", "llama2-70b"));
  if (!model.ok()) {
    return model.error();
  }
  workload::FoundationModelConfig result = model.value();
  result.max_context_tokens =
      static_cast<int>(config.GetInt("model.max_context", result.max_context_tokens));
  const Status valid = result.Validate();
  if (!valid.ok()) {
    return valid.error();
  }
  return result;
}

Result<workload::WorkloadProfile> BuildProfile(const std::string& name) {
  if (name == "splitwise-conversation") {
    return workload::SplitwiseConversation();
  }
  if (name == "splitwise-coding") {
    return workload::SplitwiseCoding();
  }
  if (name == "long-context-summarization") {
    return workload::LongContextSummarization();
  }
  return Error("unknown workload profile: '" + name + "'");
}

Result<Scenario> BuildScenario(const Config& config) {
  Scenario scenario;

  auto model = BuildModel(config);
  if (!model.ok()) {
    return model.error();
  }
  scenario.model = model.value();

  // HBM tier (always present).
  auto hbm_device = BuildDeviceConfig(config, "hbm");
  if (!hbm_device.ok()) {
    return hbm_device.error();
  }
  const int hbm_devices = static_cast<int>(config.GetInt("hbm.devices", 8));
  if (hbm_devices <= 0) {
    return Error("hbm.devices must be positive");
  }
  scenario.hbm_device = hbm_device.value();
  scenario.hbm_devices = hbm_devices;
  scenario.tiers.push_back(tier::TierSpecFromDevice(hbm_device.value(), hbm_devices));

  // Optional MRM tier.
  const bool has_mrm = config.GetBool("mrm.enabled", config.Has("mrm.technology"));
  if (has_mrm) {
    auto mrm_config = BuildMrmConfig(config, "mrm");
    if (!mrm_config.ok()) {
      return mrm_config.error();
    }
    scenario.mrm_retention_s = config.GetDuration("mrm.retention", 6.0 * kHour);
    const int mrm_devices = static_cast<int>(config.GetInt("mrm.devices", 1));
    if (mrm_devices <= 0) {
      return Error("mrm.devices must be positive");
    }
    scenario.mrm_enabled = true;
    scenario.mrm_device = mrm_config.value();
    scenario.mrm_devices = mrm_devices;
    scenario.tiers.push_back(
        tier::TierSpecFromMrm(mrm_config.value(), mrm_devices, scenario.mrm_retention_s));
  }

  // Placement.
  const std::string weights_tier = config.GetString("placement.weights", has_mrm ? "mrm" : "hbm");
  if (weights_tier == "mrm" && !has_mrm) {
    return Error("placement.weights = mrm but no MRM tier configured");
  }
  scenario.placement.weights_tier = weights_tier == "mrm" ? 1 : 0;
  scenario.placement.kv_hot_tier = 0;
  scenario.placement.kv_cold_tier = has_mrm ? 1 : 0;
  scenario.placement.kv_hot_fraction =
      config.GetDouble("placement.kv_hot_fraction", has_mrm ? 0.15 : 1.0);
  scenario.placement.activations_tier = 0;
  if (has_mrm && config.GetBool("mrm.scrub", true)) {
    scenario.backend_options.scrub_tier = 1;
    scenario.backend_options.scrub_safe_age_s =
        config.GetDuration("mrm.scrub_safe_age", scenario.mrm_retention_s / 2.0);
  }

  // Policy layer (DESIGN.md §14): policy.* keys refine the placement/scrub
  // knobs parsed above and add retention classes, ECC bands and the scrub
  // crossover. The parsed values seed the policy so a policy-less scenario
  // and a `policy.preset = dcm` scenario share their tiering baseline.
  if (policy::HasPolicyKeys(config)) {
    policy::MemoryPolicy defaults;
    defaults.placement = scenario.placement;
    defaults.tiering = scenario.backend_options;
    auto built = policy::BuildMemoryPolicy(config, defaults);
    if (!built.ok()) {
      return built.error();
    }
    scenario.policy = built.value();
    scenario.has_policy = true;
    const Status policy_ok =
        scenario.policy.Validate(static_cast<int>(scenario.tiers.size()));
    if (!policy_ok.ok()) {
      return Error(policy_ok.message());
    }
    scenario.placement = scenario.policy.placement;
    scenario.backend_options = scenario.policy.tiering;
    if (has_mrm) {
      // Re-price the MRM tier at the retention the policy actually programs
      // for the KV stream (the steady-state write traffic).
      scenario.mrm_retention_s = scenario.policy.KvRetention();
      scenario.tiers[1] = tier::TierSpecFromMrm(scenario.mrm_device, scenario.mrm_devices,
                                                scenario.mrm_retention_s);
    }
  }
  const int tier_count = static_cast<int>(scenario.tiers.size());
  const Status placement_ok = scenario.placement.Validate(tier_count);
  if (!placement_ok.ok()) {
    return Error(placement_ok.message());
  }
  const Status options_ok = scenario.backend_options.Validate(scenario.placement, tier_count);
  if (!options_ok.ok()) {
    return Error(options_ok.message());
  }

  // Backend selection.
  auto backend = BackendKindByName(config.GetString("backend", "tiered"));
  if (!backend.ok()) {
    return backend.error();
  }
  scenario.backend = backend.value();
  scenario.sim_threads = static_cast<int>(config.GetInt("sim.threads", 1));
  if (scenario.sim_threads <= 0) {
    return Error("sim.threads must be positive");
  }
  scenario.sim_epoch_batch = static_cast<int>(config.GetInt("sim.epoch_batch", 0));
  if (scenario.sim_epoch_batch < 0) {
    return Error("sim.epoch_batch must be >= 0 (0 = auto, 1 = off)");
  }
  const std::int64_t spec_horizon = config.GetInt("sim.spec_horizon", 0);
  if (spec_horizon < 0) {
    return Error("sim.spec_horizon must be >= 0 (ticks past the horizon, 0 = off)");
  }
  scenario.sim_spec_horizon = static_cast<std::uint64_t>(spec_horizon);
  const std::int64_t lower_scale = config.GetInt("sim.lower_scale", 8192);
  if (lower_scale <= 0) {
    return Error("sim.lower_scale must be positive");
  }
  scenario.sim_lower_scale = static_cast<std::uint64_t>(lower_scale);
  if (scenario.backend == BackendKind::kAnalytic && has_mrm) {
    return Error("backend = analytic supports a single HBM tier; "
                 "use backend = tiered or sim for MRM scenarios");
  }

  // Engine.
  scenario.engine.model = scenario.model;
  scenario.engine.max_batch = static_cast<int>(config.GetInt("engine.max_batch", 16));
  scenario.engine.compute_tflops = config.GetDouble("engine.tflops", 1000.0);
  scenario.engine.prefill_chunk_tokens =
      static_cast<int>(config.GetInt("engine.prefill_chunk", 2048));

  // Workload.
  auto profile = BuildProfile(
      config.GetString("workload.profile", "splitwise-conversation"));
  if (!profile.ok()) {
    return profile.error();
  }
  scenario.profile = profile.value();
  scenario.arrivals_per_s = config.GetDouble("workload.rate", 1.0);
  scenario.request_count = static_cast<int>(config.GetInt("workload.requests", 16));
  scenario.seed = static_cast<std::uint64_t>(config.GetInt("workload.seed", 1));
  if (scenario.arrivals_per_s <= 0.0 || scenario.request_count <= 0) {
    return Error("workload.rate and workload.requests must be positive");
  }
  return scenario;
}

Result<std::unique_ptr<workload::MemoryBackend>> MakeBackend(const Scenario& scenario) {
  const std::uint64_t weight_bytes = scenario.model.weight_bytes();
  switch (scenario.backend) {
    case BackendKind::kAnalytic: {
      if (scenario.tiers.size() != 1) {
        return Error("backend = analytic requires exactly one (HBM) tier");
      }
      return std::unique_ptr<workload::MemoryBackend>(
          new workload::AnalyticBackend(scenario.tiers[0], weight_bytes));
    }
    case BackendKind::kTiered: {
      return std::unique_ptr<workload::MemoryBackend>(
          new tier::TieredBackend(scenario.tiers, scenario.placement, weight_bytes,
                                  scenario.backend_options));
    }
    case BackendKind::kSim: {
      SimBackendOptions options;
      options.device = scenario.hbm_device;
      options.devices = scenario.hbm_devices;
      options.sim_threads = scenario.sim_threads;
      options.sim_epoch_batch = scenario.sim_epoch_batch;
      options.sim_spec_horizon = static_cast<sim::Tick>(scenario.sim_spec_horizon);
      options.lower_scale = scenario.sim_lower_scale;
      options.mrm_enabled = scenario.mrm_enabled;
      options.mrm = scenario.mrm_device;
      options.mrm_devices = scenario.mrm_devices;
      options.mrm_retention_s =
          scenario.mrm_retention_s > 0.0 ? scenario.mrm_retention_s : 6.0 * kHour;
      options.placement = scenario.placement;
      if (scenario.has_policy) {
        options.has_mrm_policy = true;
        options.mrm_policy = scenario.policy;
      }
      const Status valid = options.Validate(weight_bytes);
      if (!valid.ok()) {
        return Error(valid.message());
      }
      return std::unique_ptr<workload::MemoryBackend>(
          new SimBackend(std::move(options), weight_bytes));
    }
  }
  return Error("unknown backend kind");
}

ScenarioResult RunScenario(const Scenario& scenario) {
  auto backend_or = MakeBackend(scenario);
  MRM_CHECK(backend_or.ok()) << backend_or.status().message();
  std::unique_ptr<workload::MemoryBackend> backend = std::move(backend_or.value());
  workload::InferenceEngine engine(scenario.engine, backend.get());
  workload::RequestGenerator generator(scenario.profile, scenario.arrivals_per_s,
                                       scenario.seed);
  std::vector<workload::InferenceRequest> requests;
  requests.reserve(static_cast<std::size_t>(scenario.request_count));
  for (int i = 0; i < scenario.request_count; ++i) {
    requests.push_back(generator.Next());
  }
  ScenarioResult result;
  result.summary = engine.Run(std::move(requests));
  result.tco = analysis::ComputeTco(result.summary, scenario.tiers);
  result.backend_name = backend->name();
  return result;
}

}  // namespace driver
}  // namespace mrm
