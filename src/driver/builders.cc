#include "src/driver/builders.h"

#include <algorithm>

#include "src/common/units.h"
#include "src/tier/tier_spec.h"

namespace mrm {
namespace driver {
namespace {

Result<cell::Technology> TechnologyByName(const std::string& name) {
  if (name == "stt-mram") {
    return cell::Technology::kSttMram;
  }
  if (name == "rram") {
    return cell::Technology::kRram;
  }
  if (name == "pcm") {
    return cell::Technology::kPcm;
  }
  return Error("unknown MRM technology: '" + name + "' (stt-mram | rram | pcm)");
}

}  // namespace

Result<mem::DeviceConfig> BuildDeviceConfig(const Config& config, const std::string& prefix) {
  const std::string preset = config.GetString(prefix + ".preset", "hbm3e");
  auto device = mem::DeviceConfigByName(preset);
  if (!device.ok()) {
    return device.error();
  }
  mem::DeviceConfig result = device.value();
  result.channels = static_cast<int>(config.GetInt(prefix + ".channels", result.channels));
  result.rows_per_bank =
      static_cast<std::uint64_t>(config.GetInt(prefix + ".rows_per_bank",
                                               static_cast<std::int64_t>(result.rows_per_bank)));
  result.row_bytes =
      static_cast<std::uint32_t>(config.GetInt(prefix + ".row_bytes", result.row_bytes));
  const Status valid = result.Validate();
  if (!valid.ok()) {
    return valid.error();
  }
  return result;
}

Result<mrmcore::MrmDeviceConfig> BuildMrmConfig(const Config& config,
                                                const std::string& prefix) {
  mrmcore::MrmDeviceConfig result;
  result.name = config.GetString(prefix + ".name", "mrm");
  auto tech = TechnologyByName(config.GetString(prefix + ".technology", "stt-mram"));
  if (!tech.ok()) {
    return tech.error();
  }
  result.technology = tech.value();
  result.channels = static_cast<int>(config.GetInt(prefix + ".channels", result.channels));
  result.zones = static_cast<std::uint32_t>(config.GetInt(prefix + ".zones", result.zones));
  result.zone_blocks =
      static_cast<std::uint32_t>(config.GetInt(prefix + ".zone_blocks", result.zone_blocks));
  result.block_bytes = static_cast<std::uint32_t>(
      config.GetSize(prefix + ".block_bytes", result.block_bytes));
  result.channel_read_bw_bytes_per_s =
      config.GetDouble(prefix + ".read_bw_gbps", result.channel_read_bw_bytes_per_s / 1e9) *
      1e9;
  result.channel_write_bw_ref_bytes_per_s =
      config.GetDouble(prefix + ".write_bw_gbps",
                       result.channel_write_bw_ref_bytes_per_s / 1e9) *
      1e9;
  result.default_retention_s =
      config.GetDuration(prefix + ".retention", result.default_retention_s);
  result.background_mw = config.GetDouble(prefix + ".background_mw", result.background_mw);
  const Status valid = result.Validate();
  if (!valid.ok()) {
    return valid.error();
  }
  return result;
}

Result<workload::FoundationModelConfig> BuildModel(const Config& config) {
  auto model = workload::ModelByName(config.GetString("model", "llama2-70b"));
  if (!model.ok()) {
    return model.error();
  }
  workload::FoundationModelConfig result = model.value();
  result.max_context_tokens =
      static_cast<int>(config.GetInt("model.max_context", result.max_context_tokens));
  const Status valid = result.Validate();
  if (!valid.ok()) {
    return valid.error();
  }
  return result;
}

Result<workload::WorkloadProfile> BuildProfile(const std::string& name) {
  if (name == "splitwise-conversation") {
    return workload::SplitwiseConversation();
  }
  if (name == "splitwise-coding") {
    return workload::SplitwiseCoding();
  }
  if (name == "long-context-summarization") {
    return workload::LongContextSummarization();
  }
  return Error("unknown workload profile: '" + name + "'");
}

Result<Scenario> BuildScenario(const Config& config) {
  Scenario scenario;

  auto model = BuildModel(config);
  if (!model.ok()) {
    return model.error();
  }
  scenario.model = model.value();

  // HBM tier (always present).
  auto hbm_device = BuildDeviceConfig(config, "hbm");
  if (!hbm_device.ok()) {
    return hbm_device.error();
  }
  const int hbm_devices = static_cast<int>(config.GetInt("hbm.devices", 8));
  if (hbm_devices <= 0) {
    return Error("hbm.devices must be positive");
  }
  scenario.tiers.push_back(tier::TierSpecFromDevice(hbm_device.value(), hbm_devices));

  // Optional MRM tier.
  const bool has_mrm = config.GetBool("mrm.enabled", config.Has("mrm.technology"));
  if (has_mrm) {
    auto mrm_config = BuildMrmConfig(config, "mrm");
    if (!mrm_config.ok()) {
      return mrm_config.error();
    }
    scenario.mrm_retention_s = config.GetDuration("mrm.retention", 6.0 * kHour);
    const int mrm_devices = static_cast<int>(config.GetInt("mrm.devices", 1));
    scenario.tiers.push_back(
        tier::TierSpecFromMrm(mrm_config.value(), mrm_devices, scenario.mrm_retention_s));
  }

  // Placement.
  const std::string weights_tier = config.GetString("placement.weights", has_mrm ? "mrm" : "hbm");
  if (weights_tier == "mrm" && !has_mrm) {
    return Error("placement.weights = mrm but no MRM tier configured");
  }
  scenario.placement.weights_tier = weights_tier == "mrm" ? 1 : 0;
  scenario.placement.kv_hot_tier = 0;
  scenario.placement.kv_cold_tier = has_mrm ? 1 : 0;
  scenario.placement.kv_hot_fraction =
      config.GetDouble("placement.kv_hot_fraction", has_mrm ? 0.15 : 1.0);
  if (scenario.placement.kv_hot_fraction < 0.0 || scenario.placement.kv_hot_fraction > 1.0) {
    return Error("placement.kv_hot_fraction must be in [0, 1]");
  }
  scenario.placement.activations_tier = 0;
  if (has_mrm && config.GetBool("mrm.scrub", true)) {
    scenario.backend_options.scrub_tier = 1;
    scenario.backend_options.scrub_safe_age_s =
        config.GetDuration("mrm.scrub_safe_age", scenario.mrm_retention_s / 2.0);
  }

  // Engine.
  scenario.engine.model = scenario.model;
  scenario.engine.max_batch = static_cast<int>(config.GetInt("engine.max_batch", 16));
  scenario.engine.compute_tflops = config.GetDouble("engine.tflops", 1000.0);
  scenario.engine.prefill_chunk_tokens =
      static_cast<int>(config.GetInt("engine.prefill_chunk", 2048));

  // Workload.
  auto profile = BuildProfile(
      config.GetString("workload.profile", "splitwise-conversation"));
  if (!profile.ok()) {
    return profile.error();
  }
  scenario.profile = profile.value();
  scenario.arrivals_per_s = config.GetDouble("workload.rate", 1.0);
  scenario.request_count = static_cast<int>(config.GetInt("workload.requests", 16));
  scenario.seed = static_cast<std::uint64_t>(config.GetInt("workload.seed", 1));
  if (scenario.arrivals_per_s <= 0.0 || scenario.request_count <= 0) {
    return Error("workload.rate and workload.requests must be positive");
  }
  return scenario;
}

ScenarioResult RunScenario(const Scenario& scenario) {
  tier::TieredBackend backend(scenario.tiers, scenario.placement,
                              scenario.model.weight_bytes(), scenario.backend_options);
  workload::InferenceEngine engine(scenario.engine, &backend);
  workload::RequestGenerator generator(scenario.profile, scenario.arrivals_per_s,
                                       scenario.seed);
  std::vector<workload::InferenceRequest> requests;
  requests.reserve(static_cast<std::size_t>(scenario.request_count));
  for (int i = 0; i < scenario.request_count; ++i) {
    requests.push_back(generator.Next());
  }
  ScenarioResult result;
  result.summary = engine.Run(std::move(requests));
  result.tco = analysis::ComputeTco(result.summary, scenario.tiers);
  result.backend_name = backend.name();
  return result;
}

}  // namespace driver
}  // namespace mrm
