// Config-driven construction of devices, models, workloads and whole
// serving scenarios.
//
// Experiments beyond the built-in benches shouldn't require recompiling:
// a flat key-value config (common/config.h) selects presets and overrides
// fields. Example (examples/configurable_sim.cpp ships a complete one):
//
//   model            = llama2-70b
//   model.max_context = 8192
//   hbm.preset       = hbm3e
//   hbm.devices      = 2
//   mrm.technology   = stt-mram
//   mrm.channels     = 96
//   mrm.retention    = 6h
//   placement.weights = mrm        ; hbm | mrm
//   placement.kv_hot_fraction = 0.15
//   workload.profile = splitwise-conversation
//   workload.rate    = 8
//   workload.requests = 48
//   engine.max_batch = 16
//   engine.tflops    = 1000

#ifndef MRMSIM_SRC_DRIVER_BUILDERS_H_
#define MRMSIM_SRC_DRIVER_BUILDERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/tco.h"
#include "src/common/config.h"
#include "src/common/result.h"
#include "src/mem/device_config.h"
#include "src/mrm/mrm_config.h"
#include "src/policy/memory_policy.h"
#include "src/tier/tiered_backend.h"
#include "src/workload/inference_engine.h"
#include "src/workload/request_generator.h"

namespace mrm {
namespace driver {

// DRAM-class device: `<prefix>.preset` selects hbm3/hbm3e/lpddr5x/ddr5,
// optional overrides: `<prefix>.channels`, `<prefix>.rows_per_bank`,
// `<prefix>.row_bytes`.
Result<mem::DeviceConfig> BuildDeviceConfig(const Config& config, const std::string& prefix);

// MRM device: `<prefix>.technology` in {stt-mram, rram, pcm}; overrides:
// channels, zones, zone_blocks, block_bytes (size), read_bw/write_bw (GB/s
// per channel), retention (duration), background_mw.
Result<mrmcore::MrmDeviceConfig> BuildMrmConfig(const Config& config,
                                                const std::string& prefix);

// Foundation model: `model` names a preset; `model.max_context` overrides.
Result<workload::FoundationModelConfig> BuildModel(const Config& config);

// Workload profile by name: splitwise-conversation, splitwise-coding,
// long-context-summarization.
Result<workload::WorkloadProfile> BuildProfile(const std::string& name);

// Which MemoryBackend implementation serves the workload. All three consume
// the same Scenario — the point of the unified transfer-batch contract.
enum class BackendKind {
  kAnalytic,  // single-tier constants (HBM only)
  kTiered,    // multi-tier analytic with placement + scrub model
  kSim,       // cycle-level: sharded mem::MemorySystem (+ zoned MRM)
};

Result<BackendKind> BackendKindByName(const std::string& name);
const char* BackendKindName(BackendKind kind);

// A complete single-node serving scenario parsed from a config.
struct Scenario {
  workload::FoundationModelConfig model;
  workload::EngineConfig engine;
  std::vector<workload::TierSpec> tiers;   // [0]=hbm, [1]=mrm when present
  tier::Placement placement;
  tier::TieredBackendOptions backend_options;
  workload::WorkloadProfile profile;
  double arrivals_per_s = 1.0;
  int request_count = 16;
  std::uint64_t seed = 1;
  // The MRM retention used for the mrm tier (informational).
  double mrm_retention_s = 0.0;

  // Memory policy (`policy.*` keys, DESIGN.md §14). When has_policy is set,
  // `placement`, `backend_options` and the MRM tier pricing above were
  // derived from it, and MakeBackend hands it to the sim backend so the
  // control plane programs retention/ECC per the declared policy.
  bool has_policy = false;
  policy::MemoryPolicy policy;

  // Backend selection (`backend = analytic | tiered | sim`) and the
  // cycle-level device configs behind the tier specs, kept so the sim
  // backend can instantiate the real devices.
  BackendKind backend = BackendKind::kTiered;
  mem::DeviceConfig hbm_device;
  int hbm_devices = 8;
  bool mrm_enabled = false;
  mrmcore::MrmDeviceConfig mrm_device;
  int mrm_devices = 1;
  // Cycle-level knobs (`sim.threads`, `sim.epoch_batch`, `sim.spec_horizon`,
  // `sim.lower_scale`).
  int sim_threads = 1;
  int sim_epoch_batch = 0;  // 0 = auto, 1 = off, K > 1 = epochs per fork/join
  std::uint64_t sim_spec_horizon = 0;  // speculation window in ticks, 0 = off
  std::uint64_t sim_lower_scale = 8192;
};

Result<Scenario> BuildScenario(const Config& config);

// Instantiates the scenario's backend. The same scenario runs unmodified on
// any BackendKind; kAnalytic requires an HBM-only scenario (one tier).
Result<std::unique_ptr<workload::MemoryBackend>> MakeBackend(const Scenario& scenario);

struct ScenarioResult {
  workload::EngineSummary summary;
  analysis::TcoReport tco;
  std::string backend_name;
};

// Builds the backend, generates the workload, runs the engine.
ScenarioResult RunScenario(const Scenario& scenario);

}  // namespace driver
}  // namespace mrm

#endif  // MRMSIM_SRC_DRIVER_BUILDERS_H_
