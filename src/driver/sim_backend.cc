#include "src/driver/sim_backend.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/tier/tier_spec.h"

namespace mrm {
namespace driver {
namespace {

// Logical lifetime hint for simulated blocks. The closed-loop clock only
// spans memory-active time (microseconds per run), so blocks must never
// expire mid-run; frees are driven explicitly by OnKvFreed instead.
constexpr double kBlockLifetimeS = 1e9;

std::uint64_t AlignUp(std::uint64_t value, std::uint64_t unit) {
  return (value + unit - 1) / unit * unit;
}

std::uint64_t CeilDiv(std::uint64_t value, std::uint64_t divisor) {
  return (value + divisor - 1) / divisor;
}

}  // namespace

Status SimBackendOptions::Validate(std::uint64_t weight_bytes) const {
  if (devices < 1) {
    return Error("sim backend: devices must be >= 1");
  }
  if (sim_threads < 1) {
    return Error("sim backend: sim_threads must be >= 1");
  }
  if (sim_epoch_batch < 0) {
    return Error("sim backend: sim_epoch_batch must be >= 0");
  }
  // sim_spec_horizon is unsigned; any value is valid (0 = speculation off).
  if (lower_scale < 1) {
    return Error("sim backend: lower_scale must be >= 1");
  }
  if (!(ticks_per_second > 0.0)) {
    return Error("sim backend: ticks_per_second must be positive");
  }
  if (Status s = device.Validate(); !s.ok()) {
    return s;
  }
  const int tier_count = mrm_enabled ? 2 : 1;
  if (Status s = placement.Validate(tier_count); !s.ok()) {
    return s;
  }
  if (mrm_enabled) {
    if (mrm_devices < 1) {
      return Error("sim backend: mrm_devices must be >= 1");
    }
    if (!(mrm_retention_s > 0.0)) {
      return Error("sim backend: mrm_retention_s must be positive");
    }
    if (Status s = mrm.Validate(); !s.ok()) {
      return s;
    }
    if (has_mrm_policy) {
      if (Status s = mrm_policy.Validate(tier_count); !s.ok()) {
        return s;
      }
    }
  }
  // The lowered working sets must leave room on the simulated devices: the
  // weight sweep at most half the DRAM capacity (the rest serves KV +
  // activations), the MRM weight set at most half its blocks.
  const std::uint64_t divisor = static_cast<std::uint64_t>(devices) * lower_scale;
  if (placement.weights_tier == 0 &&
      AlignUp(CeilDiv(weight_bytes, divisor), device.access_bytes) >
          device.capacity_bytes() / 2) {
    return Error("sim backend: lowered weight sweep exceeds half the simulated "
                 "device; raise lower_scale or devices");
  }
  if (mrm_enabled && placement.weights_tier == 1) {
    const std::uint64_t mrm_divisor =
        static_cast<std::uint64_t>(mrm_devices) * lower_scale;
    if (CeilDiv(CeilDiv(weight_bytes, mrm_divisor), mrm.block_bytes) >
        mrm.total_blocks() / 2) {
      return Error("sim backend: lowered weight set exceeds half the simulated MRM "
                   "blocks; raise lower_scale or mrm_devices");
    }
  }
  return Status::Ok();
}

SimBackend::SimBackend(SimBackendOptions options, std::uint64_t weight_bytes)
    : options_(std::move(options)),
      weight_bytes_(weight_bytes),
      simulator_(options_.ticks_per_second) {
  const Status valid = options_.Validate(weight_bytes_);
  MRM_CHECK(valid.ok()) << valid.message();

  tier_specs_.push_back(tier::TierSpecFromDevice(options_.device, options_.devices));
  simulator_.SetWorkerThreads(options_.sim_threads);
  simulator_.SetEpochBatch(options_.sim_epoch_batch);
  simulator_.SetSpeculationWindow(options_.sim_spec_horizon);
  system_ = std::make_unique<mem::MemorySystem>(&simulator_, options_.device);

  // Carve the simulated DRAM device into cyclic per-stream regions. Weights
  // get their exact lowered sweep (a full-region read per step reproduces
  // the steady-state sequential pattern); activations an eighth of the
  // device; the KV cache the remainder.
  const std::uint64_t access = options_.device.access_bytes;
  const std::uint64_t capacity = system_->capacity_bytes();
  const std::uint64_t min_region = std::max<std::uint64_t>(access, options_.device.row_bytes);
  std::uint64_t weight_span = min_region;
  if (options_.placement.weights_tier == 0) {
    weight_span = std::max(weight_span, AlignUp(LowerDramBytes(weight_bytes_), access));
  }
  const std::uint64_t act_span = std::max(min_region, capacity / 8 / access * access);
  MRM_CHECK(weight_span + act_span < capacity) << "simulated device too small";
  weights_region_ = Region{0, weight_span, 0, 0};
  act_region_ = Region{capacity - act_span, act_span, 0, 0};
  kv_region_ = Region{weight_span, capacity - act_span - weight_span, 0, 0};

  if (options_.mrm_enabled) {
    mrm_device_ = std::make_unique<mrmcore::MrmDevice>(&simulator_, options_.mrm);
    // The analytic twin prices MRM writes at the programmed retention; under
    // a policy that is the KV class at its predicted lifetime (KV appends
    // dominate the steady-state write stream).
    const double twin_retention_s = options_.has_mrm_policy
                                        ? options_.mrm_policy.KvRetention()
                                        : options_.mrm_retention_s;
    tier_specs_.push_back(
        tier::TierSpecFromMrm(options_.mrm, options_.mrm_devices, twin_retention_s));
    if (options_.has_mrm_policy) {
      // The policy's ECC parity is physical traffic and occupied cells:
      // payload bytes inflate by 1/fraction on the wire (InflateMrmBytes)
      // and the twin's usable capacity shrinks by the same fraction.
      mrm_payload_fraction_ = options_.mrm_policy.UsablePayloadFraction(options_.mrm);
      tier_specs_.back().capacity_bytes = static_cast<std::uint64_t>(
          static_cast<double>(tier_specs_.back().capacity_bytes) * mrm_payload_fraction_);
    }
    mrmcore::ControlPlaneOptions cp_options;
    if (options_.has_mrm_policy) {
      cp_options = options_.mrm_policy.PlaneOptions(options_.mrm, mrm_device_->tradeoff(),
                                                    cp_options);
    }
    control_ = std::make_unique<mrmcore::ControlPlane>(&simulator_, mrm_device_.get(),
                                                       cp_options);
    if (options_.on_mrm_ready) {
      options_.on_mrm_ready(mrm_device_.get(), control_.get());
    }
    mrm_weight_lifetime_s_ = options_.has_mrm_policy
                                 ? options_.mrm_policy.weight_lifetime_hint_s
                                 : kBlockLifetimeS;
    mrm_kv_lifetime_s_ =
        options_.has_mrm_policy ? options_.mrm_policy.kv_lifetime_hint_s : kBlockLifetimeS;
    // KV ring bound: leave headroom over the preloaded weight set so zone
    // reclamation always finds free zones.
    const std::uint64_t total_blocks = options_.mrm.total_blocks();
    std::uint64_t weight_blocks = 0;
    if (options_.placement.weights_tier == 1) {
      weight_blocks = LowerMrmBlocks(InflateMrmBytes(weight_bytes_));
    }
    mrm_max_live_blocks_ = (total_blocks - weight_blocks) / 2;
    MRM_CHECK(mrm_max_live_blocks_ > 0) << "simulated MRM device too small";

    if (weight_blocks > 0) {
      // Preload the weight set; the programming time is load-time, not step
      // time, so the span is discarded.
      mrm_weight_ids_.reserve(weight_blocks);
      mrm_outstanding_ = weight_blocks;
      active_chains_ = 1;
      for (std::uint64_t i = 0; i < weight_blocks; ++i) {
        auto id = control_->Append(mrm_weight_lifetime_s_, [this] { OnMrmBlockDone(); });
        MRM_CHECK(id.ok()) << "weight preload failed: " << id.error().message();
        mrm_weight_ids_.push_back(id.value());
        ++stats_.mrm_blocks_written;
      }
      simulator_.Run();
      MRM_CHECK(active_chains_ == 0) << "weight preload did not drain";
    }
  }
}

SimBackend::~SimBackend() = default;

std::string SimBackend::name() const {
  std::string name = "sim(" + options_.device.name + " x" + std::to_string(options_.devices);
  if (options_.mrm_enabled) {
    name += " + " + tier_specs_[1].name;
    if (options_.mrm_devices > 1) {
      name += " x" + std::to_string(options_.mrm_devices);
    }
  }
  return name + ")";
}

std::uint64_t SimBackend::LowerDramBytes(std::uint64_t bytes) const {
  if (bytes == 0) {
    return 0;
  }
  const std::uint64_t divisor =
      static_cast<std::uint64_t>(options_.devices) * options_.lower_scale;
  return AlignUp(std::max<std::uint64_t>(CeilDiv(bytes, divisor), 1),
                 options_.device.access_bytes);
}

std::uint64_t SimBackend::LowerMrmBlocks(std::uint64_t bytes) const {
  if (bytes == 0) {
    return 0;
  }
  const std::uint64_t divisor =
      static_cast<std::uint64_t>(options_.mrm_devices) * options_.lower_scale;
  return std::max<std::uint64_t>(CeilDiv(CeilDiv(bytes, divisor), options_.mrm.block_bytes),
                                 1);
}

std::uint64_t SimBackend::InflateMrmBytes(std::uint64_t bytes) const {
  if (mrm_payload_fraction_ >= 1.0 || bytes == 0) {
    return bytes;
  }
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(bytes) / mrm_payload_fraction_));
}

void SimBackend::PlanDramTransfer(Region* region, bool is_write, std::uint64_t len,
                                  std::uint32_t stream) {
  if (len == 0) {
    return;
  }
  MRM_CHECK(region->size > 0);
  std::uint64_t* cursor = is_write ? &region->write_cursor : &region->read_cursor;
  while (len > 0) {
    const std::uint64_t avail = region->size - *cursor;
    const std::uint64_t seg = std::min(len, avail);
    dram_plan_.push_back(DramSegment{is_write, region->base + *cursor, seg, stream});
    *cursor = (*cursor + seg) % region->size;
    len -= seg;
  }
}

void SimBackend::PlanStream(int tier, workload::Stream stream, bool is_write,
                            std::uint64_t bytes) {
  if (bytes == 0) {
    return;
  }
  if (tier == 1) {
    mrm_plan_.push_back(MrmOp{is_write, LowerMrmBlocks(InflateMrmBytes(bytes)), stream});
    return;
  }
  Region* region = &act_region_;
  if (stream == workload::Stream::kWeights) {
    region = &weights_region_;
  } else if (stream == workload::Stream::kKvCache) {
    region = &kv_region_;
  }
  PlanDramTransfer(region, is_write, LowerDramBytes(bytes), static_cast<std::uint32_t>(stream));
}

void SimBackend::PlanTransfer(const workload::Transfer& transfer) {
  const tier::Placement& placement = options_.placement;
  switch (transfer.stream) {
    case workload::Stream::kWeights:
      PlanStream(placement.weights_tier, transfer.stream, transfer.is_write, transfer.bytes);
      break;
    case workload::Stream::kKvCache: {
      const auto hot = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(transfer.bytes) * placement.kv_hot_fraction));
      PlanStream(placement.kv_hot_tier, transfer.stream, transfer.is_write, hot);
      PlanStream(placement.kv_cold_tier, transfer.stream, transfer.is_write,
                 transfer.bytes - hot);
      break;
    }
    case workload::Stream::kActivations:
    case workload::Stream::kNone:
      PlanStream(placement.activations_tier, transfer.stream, transfer.is_write,
                 transfer.bytes);
      break;
  }
}

double SimBackend::DramDynamicPj() const {
  const mem::SystemStats stats = system_->GetStats();
  return stats.energy.activate_pj + stats.energy.read_pj + stats.energy.write_pj +
         stats.energy.io_pj;
}

double SimBackend::MrmDynamicPj() const {
  if (mrm_device_ == nullptr) {
    return 0.0;
  }
  const mrmcore::MrmDeviceStats& stats = mrm_device_->stats();
  return stats.write_energy_pj + stats.read_energy_pj + stats.io_energy_pj;
}

void SimBackend::IssueNextDramSegment() {
  if (dram_next_ == dram_plan_.size()) {
    ChainFinished();
    return;
  }
  const DramSegment& seg = dram_plan_[dram_next_++];
  ++stats_.dram_segments;
  stats_.dram_bytes += seg.len;
  system_->Transfer(seg.is_write ? mem::Request::Kind::kWrite : mem::Request::Kind::kRead,
                    seg.addr, seg.len, seg.stream, [this] { IssueNextDramSegment(); });
}

void SimBackend::AppendKvBlock() {
  auto id = control_->Append(mrm_kv_lifetime_s_, [this] { OnMrmBlockDone(); });
  if (!id.ok()) {
    // Capacity pressure: reclaim the oldest ring blocks and retry once.
    const std::size_t reclaim =
        std::min<std::size_t>(mrm_kv_ids_.size(), options_.mrm.zone_blocks);
    for (std::size_t i = 0; i < reclaim; ++i) {
      control_->Free(mrm_kv_ids_.front());
      mrm_kv_ids_.pop_front();
    }
    id = control_->Append(mrm_kv_lifetime_s_, [this] { OnMrmBlockDone(); });
    MRM_CHECK(id.ok()) << "MRM append failed: " << id.error().message();
  }
  mrm_kv_ids_.push_back(id.value());
  ++stats_.mrm_blocks_written;
  while (mrm_kv_ids_.size() > mrm_max_live_blocks_) {
    control_->Free(mrm_kv_ids_.front());
    mrm_kv_ids_.pop_front();
  }
}

void SimBackend::IssueNextMrmOp() {
  if (mrm_next_ == mrm_plan_.size()) {
    ChainFinished();
    return;
  }
  const MrmOp op = mrm_plan_[mrm_next_++];
  mrm_outstanding_ = op.blocks;
  for (std::uint64_t i = 0; i < op.blocks; ++i) {
    if (op.is_write) {
      AppendKvBlock();
      continue;
    }
    // Read path: weights cycle over the preloaded set, KV over the live
    // ring; an empty working set is a cold miss served by writing (the
    // owner recomputes and re-appends, §4's recompute arm).
    const bool weights = op.stream == workload::Stream::kWeights && !mrm_weight_ids_.empty();
    if (!weights && mrm_kv_ids_.empty()) {
      ++stats_.mrm_fill_blocks;
      AppendKvBlock();
      continue;
    }
    mrmcore::LogicalId id = 0;
    if (weights) {
      id = mrm_weight_ids_[mrm_weight_read_cursor_ % mrm_weight_ids_.size()];
      ++mrm_weight_read_cursor_;
    } else {
      id = mrm_kv_ids_[mrm_kv_read_cursor_ % mrm_kv_ids_.size()];
      ++mrm_kv_read_cursor_;
    }
    ++stats_.mrm_blocks_read;
    const Status status = control_->Read(id, [this](bool ok) {
      if (!ok) {
        ++stats_.mrm_read_failures;
      }
      OnMrmBlockDone();
    });
    if (!status.ok()) {
      // Block dropped by the control plane (lost to a fault); the owner
      // recomputes. Completes synchronously.
      ++stats_.mrm_read_failures;
      OnMrmBlockDone();
    }
  }
}

void SimBackend::OnMrmBlockDone() {
  MRM_CHECK(mrm_outstanding_ > 0);
  if (--mrm_outstanding_ == 0) {
    IssueNextMrmOp();
  }
}

void SimBackend::ChainFinished() {
  MRM_CHECK(active_chains_ > 0);
  if (--active_chains_ == 0) {
    step_end_tick_ = simulator_.now();
    simulator_.Stop();
  }
}

sim::Tick SimBackend::RunPlans() {
  // Lanes may have run ahead of the hub in the previous span; re-align so
  // new arrivals never land in a lane's past (MemorySystem::LatestClock).
  const sim::Tick resume = std::max(simulator_.now(), system_->LatestClock());
  if (resume > simulator_.now()) {
    simulator_.AdvanceTo(resume);
  }
  const sim::Tick start = simulator_.now();
  step_end_tick_ = start;
  active_chains_ = 0;
  if (!dram_plan_.empty()) {
    ++active_chains_;
  }
  if (!mrm_plan_.empty()) {
    ++active_chains_;
  }
  if (active_chains_ == 0) {
    return 0;
  }
  // The two tiers transfer concurrently; within a tier ops serialize on its
  // bus — the same overlap model as TieredBackend and the analytic path.
  if (!dram_plan_.empty()) {
    IssueNextDramSegment();
  }
  if (!mrm_plan_.empty()) {
    IssueNextMrmOp();
  }
  simulator_.Run();
  MRM_CHECK(active_chains_ == 0) << "closed-loop step did not drain";
  MRM_CHECK(system_->Idle()) << "DRAM requests left in flight after step";
  return step_end_tick_ - start;
}

workload::StepCost SimBackend::SubmitStep(const std::vector<workload::Transfer>& transfers) {
  dram_plan_.clear();
  mrm_plan_.clear();
  dram_next_ = 0;
  mrm_next_ = 0;
  mrm_outstanding_ = 0;
  for (const workload::Transfer& transfer : transfers) {
    PlanTransfer(transfer);
  }
  ++stats_.steps;

  const double dram_pj_before = DramDynamicPj();
  const double mrm_pj_before = MrmDynamicPj();
  const sim::Tick span = RunPlans();

  workload::StepCost cost;
  const double span_s = simulator_.TicksToSeconds(span);
  simulated_seconds_ += span_s;
  cost.seconds = span_s * static_cast<double>(options_.lower_scale);
  // One simulated device carries 1/(devices * lower_scale) of the tier's
  // bytes; per-tier dynamic energy scales back by its device count and the
  // shared lowering factor.
  const double scaled_pj =
      (DramDynamicPj() - dram_pj_before) * static_cast<double>(options_.devices) +
      (MrmDynamicPj() - mrm_pj_before) * static_cast<double>(options_.mrm_devices);
  cost.energy_j = scaled_pj * 1e-12 * static_cast<double>(options_.lower_scale);
  dynamic_j_ += cost.energy_j;
  return cost;
}

void SimBackend::AccountTime(double seconds) {
  // The simulated clock only spans memory-active (and lowered) time, so
  // background + refresh power is charged analytically over real step time,
  // from the same TierSpec derivation the analytic backends use.
  for (const workload::TierSpec& spec : tier_specs_) {
    static_j_ += spec.static_power_w * seconds;
  }
}

double SimBackend::EnergyJoules() const { return dynamic_j_ + static_j_; }

std::uint64_t SimBackend::KvCapacityBytes() const {
  // Same hot/cold-split capacity formula as tier::TieredBackend, over the
  // real (un-lowered) tier capacities.
  auto available = [this](int index) -> double {
    const workload::TierSpec& spec = tier_specs_[static_cast<std::size_t>(index)];
    if (spec.capacity_bytes == 0) {
      return 1e30;
    }
    double capacity = static_cast<double>(spec.capacity_bytes);
    if (index == options_.placement.weights_tier) {
      capacity -= static_cast<double>(weight_bytes_);
    }
    return std::max(capacity, 0.0);
  };
  const double f = options_.placement.kv_hot_fraction;
  double limit = 1e30;
  if (f > 0.0) {
    limit = std::min(limit, available(options_.placement.kv_hot_tier) / f);
  }
  if (f < 1.0) {
    limit = std::min(limit, available(options_.placement.kv_cold_tier) / (1.0 - f));
  }
  if (limit >= 1e30) {
    return 0;  // unlimited
  }
  return static_cast<std::uint64_t>(limit);
}

void SimBackend::OnKvFreed(std::uint64_t bytes) {
  if (control_ == nullptr || mrm_kv_ids_.empty()) {
    return;
  }
  // Free the oldest lowered blocks covering the freed share of the cold KV.
  const tier::Placement& placement = options_.placement;
  double fraction = 0.0;
  if (placement.kv_cold_tier == 1) {
    fraction += 1.0 - placement.kv_hot_fraction;
  }
  if (placement.kv_hot_tier == 1) {
    fraction += placement.kv_hot_fraction;
  }
  const auto mrm_bytes = static_cast<std::uint64_t>(
      std::llround(static_cast<double>(bytes) * fraction));
  std::uint64_t blocks = LowerMrmBlocks(InflateMrmBytes(mrm_bytes));
  while (blocks > 0 && !mrm_kv_ids_.empty()) {
    control_->Free(mrm_kv_ids_.front());
    mrm_kv_ids_.pop_front();
    --blocks;
  }
}

}  // namespace driver
}  // namespace mrm
