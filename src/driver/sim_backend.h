// Cycle-level workload::MemoryBackend: closed-loop LLM inference on the
// channel-sharded simulator (DESIGN.md §11).
//
// Each SubmitStep() lowers the step's transfer batch into real device
// traffic — mem::Request streams through mem::MemorySystem for the DRAM
// tier, zoned appends/reads through mrm::ControlPlane for the optional MRM
// tier — runs the hub simulator for exactly the step's span, and converts
// the measured tick span and energy-counter deltas back into the step's
// StepCost. The sharded engine executes the same epoch schedule at any
// sim-thread count, so step times, SystemStats and energy are bit-identical
// for --sim-threads 1/2/4.
//
// Sampled lowering: simulating every byte of a 140 GB weight sweep per step
// is ~2e9 column accesses; instead one device of `devices` identical stacks
// is simulated and only 1/lower_scale of its share of each transfer is
// issued. Measured time and dynamic energy scale back by lower_scale (and
// energy by `devices`), which is exact for steady-state sequential streams
// (the LLM weight/KV traffic this backend exists for) and validated against
// the analytic model by tests/closed_loop_validation_test.cc.

#ifndef MRMSIM_SRC_DRIVER_SIM_BACKEND_H_
#define MRMSIM_SRC_DRIVER_SIM_BACKEND_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/units.h"
#include "src/mem/device_config.h"
#include "src/mem/memory_system.h"
#include "src/mrm/control_plane.h"
#include "src/mrm/mrm_config.h"
#include "src/mrm/mrm_device.h"
#include "src/policy/memory_policy.h"
#include "src/sim/simulator.h"
#include "src/tier/tiered_backend.h"
#include "src/workload/backend.h"

namespace mrm {
namespace driver {

struct SimBackendOptions {
  // DRAM tier: `devices` identical stacks; one is simulated and traffic is
  // divided by `devices` (each stack carries an equal share concurrently).
  mem::DeviceConfig device = mem::HBM3EConfig();
  int devices = 8;

  // Worker threads for the channel-sharded epoch engine (stats are
  // bit-identical for any value; >1 needs free hardware threads to pay off).
  int sim_threads = 1;

  // Epoch-batch limit: back-to-back epochs per worker-pool fork/join when no
  // cross-shard effects are pending. 0 = auto, 1 = off, K > 1 = cap. Stats
  // are bit-identical for any value (the batch guard preserves the epoch
  // schedule exactly).
  int sim_epoch_batch = 0;

  // Speculation window in ticks: how far past the conservative epoch horizon
  // a quiescent lane may run optimistically, covered by deterministic
  // rollback (DESIGN.md §8 "Speculative horizons & rollback"). 0 = off.
  // Stats are bit-identical for any value.
  sim::Tick sim_spec_horizon = 0;

  // Sampled-lowering divisor: simulate 1/lower_scale of each device's share
  // of every transfer, scale measured time/energy back up. Must keep the
  // lowered weight sweep within half the simulated device's capacity.
  std::uint64_t lower_scale = 4096;

  // Hub clock resolution; ps keeps sub-ns DRAM timing exact.
  double ticks_per_second = 1e12;

  // Optional cycle-level MRM tier behind the zoned control plane. Tier
  // indices for `placement`: 0 = DRAM, 1 = MRM.
  bool mrm_enabled = false;
  mrmcore::MrmDeviceConfig mrm;
  int mrm_devices = 1;
  double mrm_retention_s = 6.0 * kHour;
  tier::Placement placement;

  // Optional memory policy (DESIGN.md §14). When set, the MRM control plane
  // is configured from it (retention classes, ECC bands, reliability target,
  // scrub crossover), appends carry the policy's per-stream predicted
  // lifetimes instead of the legacy never-expires hint, and the MRM analytic
  // twin is priced at the policy's KV retention (mrm_retention_s is
  // ignored). The policy's ECC parity also becomes physical traffic: every
  // payload byte on the MRM tier moves 1/UsablePayloadFraction bytes of
  // cells, and the twin's usable capacity shrinks by the same fraction.
  // `placement` stays authoritative — callers copy mrm_policy.placement
  // into it (MakeBackend does).
  bool has_mrm_policy = false;
  policy::MemoryPolicy mrm_policy;

  // Invoked after the MRM device and control plane are constructed but
  // before any traffic (weight preload included), so auditors can observe
  // the device from its very first append. Null = no hook.
  std::function<void(mrmcore::MrmDevice*, mrmcore::ControlPlane*)> on_mrm_ready;

  // `weight_bytes` (the model's resident weights) lets the check bound the
  // lowered working sets against the simulated devices' capacity.
  Status Validate(std::uint64_t weight_bytes = 0) const;
};

// Closed-loop op counters (lowered units, post-division).
struct SimBackendStats {
  std::uint64_t steps = 0;
  std::uint64_t dram_segments = 0;      // bulk transfers issued to the DRAM tier
  std::uint64_t dram_bytes = 0;         // lowered bytes through the DRAM tier
  std::uint64_t mrm_blocks_written = 0;
  std::uint64_t mrm_blocks_read = 0;
  std::uint64_t mrm_fill_blocks = 0;    // reads served by writing (cold miss)
  std::uint64_t mrm_read_failures = 0;  // lost/expired blocks (recompute)
};

class SimBackend final : public workload::MemoryBackend {
 public:
  // Dies (MRM_CHECK) on invalid options; call options.Validate() first for a
  // recoverable error.
  SimBackend(SimBackendOptions options, std::uint64_t weight_bytes);
  ~SimBackend() override;

  SimBackend(const SimBackend&) = delete;
  SimBackend& operator=(const SimBackend&) = delete;

  using workload::MemoryBackend::SubmitStep;

  std::string name() const override;
  workload::StepCost SubmitStep(const std::vector<workload::Transfer>& transfers) override;
  void AccountTime(double seconds) override;
  double EnergyJoules() const override;
  std::uint64_t KvCapacityBytes() const override;
  void OnKvFreed(std::uint64_t bytes) override;

  // Introspection for tests, benches and the protocol auditor.
  sim::Simulator* simulator() { return &simulator_; }
  mem::MemorySystem* memory_system() { return system_.get(); }
  mrmcore::MrmDevice* mrm_device() { return mrm_device_.get(); }
  mrmcore::ControlPlane* control_plane() { return control_.get(); }
  mem::SystemStats MemStats() const { return system_->GetStats(); }
  const SimBackendStats& sim_stats() const { return stats_; }
  const SimBackendOptions& options() const { return options_; }
  // Analytic twins of the simulated tiers ([0]=DRAM, [1]=MRM when enabled).
  const std::vector<workload::TierSpec>& tier_specs() const { return tier_specs_; }
  // Un-scaled simulator time spent inside SubmitStep spans so far.
  double simulated_seconds() const { return simulated_seconds_; }

 private:
  // One bulk transfer on the simulated DRAM device (already lowered).
  struct DramSegment {
    bool is_write = false;
    std::uint64_t addr = 0;
    std::uint64_t len = 0;
    std::uint32_t stream = 0;
  };
  // One lowered MRM operation (blocks move as a unit per channel schedule).
  struct MrmOp {
    bool is_write = false;
    std::uint64_t blocks = 0;
    workload::Stream stream = workload::Stream::kNone;
  };
  // A cyclic window of the simulated address space backing one stream.
  struct Region {
    std::uint64_t base = 0;
    std::uint64_t size = 0;
    std::uint64_t read_cursor = 0;   // offset within the region
    std::uint64_t write_cursor = 0;
  };

  std::uint64_t LowerDramBytes(std::uint64_t bytes) const;
  std::uint64_t LowerMrmBlocks(std::uint64_t bytes) const;
  // Payload bytes -> physical MRM bytes: under a policy, ECC parity rides
  // along every access (identity without one).
  std::uint64_t InflateMrmBytes(std::uint64_t bytes) const;
  // Splits a lowered transfer into cyclic segments of `region` and appends
  // them to the DRAM plan.
  void PlanDramTransfer(Region* region, bool is_write, std::uint64_t len,
                        std::uint32_t stream);
  // Routes one batch transfer to the DRAM and/or MRM plans per placement.
  void PlanTransfer(const workload::Transfer& transfer);
  void PlanStream(int tier, workload::Stream stream, bool is_write, std::uint64_t bytes);

  void IssueNextDramSegment();
  void IssueNextMrmOp();
  void AppendKvBlock();  // one lowered KV block through the control plane
  void OnMrmBlockDone();
  void ChainFinished();
  // Runs the hub until both chains drain, returns the span in ticks.
  sim::Tick RunPlans();

  double DramDynamicPj() const;
  double MrmDynamicPj() const;

  SimBackendOptions options_;
  std::uint64_t weight_bytes_ = 0;
  std::vector<workload::TierSpec> tier_specs_;  // [0]=DRAM, [1]=MRM (analytic twin)

  sim::Simulator simulator_;
  std::unique_ptr<mem::MemorySystem> system_;
  std::unique_ptr<mrmcore::MrmDevice> mrm_device_;
  std::unique_ptr<mrmcore::ControlPlane> control_;

  Region weights_region_;
  Region kv_region_;
  Region act_region_;

  // MRM logical-block working set: weights are preloaded once; KV blocks
  // ring-buffer (appends push, OnKvFreed pops oldest).
  std::vector<mrmcore::LogicalId> mrm_weight_ids_;
  std::deque<mrmcore::LogicalId> mrm_kv_ids_;
  // Lifetime hints attached to MRM appends: the policy's per-stream
  // predictions when one is set, the never-expires legacy hint otherwise.
  double mrm_weight_lifetime_s_ = 0.0;
  double mrm_kv_lifetime_s_ = 0.0;
  // Payload share of an MRM codeword under the policy's band-0 ECC (1.0
  // without a policy); divides payload bytes into physical traffic.
  double mrm_payload_fraction_ = 1.0;
  std::uint64_t mrm_kv_read_cursor_ = 0;
  std::uint64_t mrm_weight_read_cursor_ = 0;
  std::uint64_t mrm_max_live_blocks_ = 0;

  // Per-step plan + chain state.
  std::vector<DramSegment> dram_plan_;
  std::vector<MrmOp> mrm_plan_;
  std::size_t dram_next_ = 0;
  std::size_t mrm_next_ = 0;
  std::uint64_t mrm_outstanding_ = 0;
  int active_chains_ = 0;
  sim::Tick step_end_tick_ = 0;

  // Ledgers.
  SimBackendStats stats_;
  double dynamic_j_ = 0.0;  // scaled-back dynamic energy across steps
  double static_j_ = 0.0;   // analytic background/refresh via AccountTime
  double simulated_seconds_ = 0.0;
};

}  // namespace driver
}  // namespace mrm

#endif  // MRMSIM_SRC_DRIVER_SIM_BACKEND_H_
