#include "src/fault/fault_config.h"

#include <cstdlib>

namespace mrm {
namespace fault {
namespace {

Status CheckProbability(const char* name, double value) {
  if (value < 0.0 || value > 1.0) {
    return Error(std::string("fault config: ") + name + " must be in [0, 1]");
  }
  return Status::Ok();
}

Status CheckNonNegative(const char* name, double value) {
  if (value < 0.0) {
    return Error(std::string("fault config: ") + name + " must be >= 0");
  }
  return Status::Ok();
}

}  // namespace

Status FaultConfig::Validate() const {
  struct Rule {
    const char* name;
    double value;
    bool is_probability;
  };
  const Rule rules[] = {
      {"transient_rber", transient_rber, true},
      {"stuck_block_prob", stuck_block_prob, true},
      {"stuck_wear_fraction", stuck_wear_fraction, true},
      {"zone_failure_prob", zone_failure_prob, true},
      {"channel_stall_prob", channel_stall_prob, true},
      {"drop_completion_prob", drop_completion_prob, true},
      {"silent_fraction", silent_fraction, true},
      {"channel_stall_ns", channel_stall_ns, false},
      {"completion_retry_ns", completion_retry_ns, false},
  };
  for (const Rule& rule : rules) {
    const Status status = rule.is_probability ? CheckProbability(rule.name, rule.value)
                                              : CheckNonNegative(rule.name, rule.value);
    if (!status.ok()) {
      return status;
    }
  }
  if (transient_rber > 0.5) {
    return Error("fault config: transient_rber must be <= 0.5 (data is noise beyond)");
  }
  return Status::Ok();
}

Result<FaultConfig> ParseFaultSpec(const std::string& spec, FaultConfig base) {
  FaultConfig config = base;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) {
      continue;
    }
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Error("fault spec: expected key=value, got '" + entry + "'");
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    char* parse_end = nullptr;
    const double number = std::strtod(value.c_str(), &parse_end);
    if (value.empty() || parse_end == nullptr || *parse_end != '\0') {
      return Error("fault spec: malformed value for '" + key + "': '" + value + "'");
    }
    if (key == "seed") {
      config.seed = static_cast<std::uint64_t>(number);
    } else if (key == "transient_rber") {
      config.transient_rber = number;
    } else if (key == "stuck_block_prob") {
      config.stuck_block_prob = number;
    } else if (key == "stuck_wear_fraction") {
      config.stuck_wear_fraction = number;
    } else if (key == "zone_failure_prob") {
      config.zone_failure_prob = number;
    } else if (key == "channel_stall_prob") {
      config.channel_stall_prob = number;
    } else if (key == "channel_stall_ns") {
      config.channel_stall_ns = number;
    } else if (key == "drop_completion_prob") {
      config.drop_completion_prob = number;
    } else if (key == "completion_retry_ns") {
      config.completion_retry_ns = number;
    } else if (key == "silent_fraction") {
      config.silent_fraction = number;
    } else {
      return Error("fault spec: unknown key '" + key + "'");
    }
  }
  const Status valid = config.Validate();
  if (!valid.ok()) {
    return valid.error();
  }
  return config;
}

Result<FaultConfig> FaultConfigFromEnv(FaultConfig base) {
  const char* spec = std::getenv("MRMSIM_FAULTS");
  if (spec == nullptr || spec[0] == '\0') {
    return base;
  }
  return ParseFaultSpec(spec, base);
}

}  // namespace fault
}  // namespace mrm
