// Configuration of the deterministic fault injector (DESIGN.md §10).
//
// All rates are probabilities per injection opportunity (one read attempt,
// one append, one routed request, one completion record), rolled through
// keyed mrm::Rng streams so a (seed, config) pair reproduces every fault
// bit-for-bit at any worker-thread count. A default-constructed config
// injects nothing; `enabled()` is the single gate the device and memory
// system consult before paying any fault-path cost.

#ifndef MRMSIM_SRC_FAULT_FAULT_CONFIG_H_
#define MRMSIM_SRC_FAULT_FAULT_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/common/result.h"

namespace mrm {
namespace fault {

struct FaultConfig {
  // Seed of every keyed decision stream (see FaultInjector::Roll).
  std::uint64_t seed = 0;

  // (a) Raw bit errors: additive transient-upset RBER applied on every read
  // attempt on top of the cell model's RBER(age, retention, wear) curve.
  // Retries re-roll, so transient upsets are recoverable; the age-driven
  // component persists.
  double transient_rber = 0.0;

  // (b) Stuck-at blocks: once a block's wear crosses `stuck_wear_fraction`
  // of its operating point's endurance bound, each further append fires a
  // stuck-at fault with probability `stuck_block_prob` (the slot is burned
  // and the append fails).
  double stuck_block_prob = 0.0;
  double stuck_wear_fraction = 0.9;

  // (c) Whole-zone failures: per-append probability that the target zone
  // fails outright (all of its data becomes uncorrectable and further
  // appends are rejected until the control plane retires it).
  double zone_failure_prob = 0.0;

  // (d) Transient fabric faults in mem::MemorySystem: a routed request is
  // stalled for `channel_stall_ns` before entering the fabric with
  // probability `channel_stall_prob`; a completion record is dropped and
  // re-delivered `completion_retry_ns` later with probability
  // `drop_completion_prob`.
  double channel_stall_prob = 0.0;
  double channel_stall_ns = 200.0;
  double drop_completion_prob = 0.0;
  double completion_retry_ns = 500.0;

  // Share of detected-uncorrectable codeword events that the decoder
  // miscorrects silently instead of flagging (silent data corruption).
  double silent_fraction = 1e-3;

  // True when any injection path can fire; false reproduces the fault-free
  // simulator exactly (no rolls are drawn at all).
  bool enabled() const {
    return transient_rber > 0.0 || stuck_block_prob > 0.0 || zone_failure_prob > 0.0 ||
           channel_stall_prob > 0.0 || drop_completion_prob > 0.0;
  }

  Status Validate() const;
};

// Parses a "key=value,key=value" fault spec (the MRMSIM_FAULTS format, see
// README "Fault injection"): transient_rber, stuck_block_prob,
// stuck_wear_fraction, zone_failure_prob, channel_stall_prob,
// channel_stall_ns, drop_completion_prob, completion_retry_ns,
// silent_fraction, seed. Unknown keys and malformed values are errors; the
// result starts from `base` so a spec only overrides what it names.
Result<FaultConfig> ParseFaultSpec(const std::string& spec, FaultConfig base = {});

// Reads the MRMSIM_FAULTS environment variable; returns `base` unchanged
// when it is unset or empty.
Result<FaultConfig> FaultConfigFromEnv(FaultConfig base = {});

}  // namespace fault
}  // namespace mrm

#endif  // MRMSIM_SRC_FAULT_FAULT_CONFIG_H_
