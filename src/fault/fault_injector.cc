#include "src/fault/fault_injector.h"

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace mrm {
namespace fault {
namespace {

// SplitMix64 finalizer: the standard 64-bit avalanche mix.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kReadCorrected:
      return "read-corrected";
    case FaultKind::kReadUncorrectable:
      return "read-uncorrectable";
    case FaultKind::kReadSilent:
      return "read-silent";
    case FaultKind::kStuckBlock:
      return "stuck-block";
    case FaultKind::kZoneFailure:
      return "zone-failure";
    case FaultKind::kChannelStall:
      return "channel-stall";
    case FaultKind::kDroppedCompletion:
      return "dropped-completion";
  }
  return "?";
}

const char* FaultResolutionName(FaultResolution resolution) {
  switch (resolution) {
    case FaultResolution::kRetryCorrected:
      return "retry-corrected";
    case FaultResolution::kEmergencyScrub:
      return "emergency-scrub";
    case FaultResolution::kDropped:
      return "dropped";
    case FaultResolution::kReported:
      return "reported";
    case FaultResolution::kZoneRetired:
      return "zone-retired";
    case FaultResolution::kDelivered:
      return "delivered";
    case FaultResolution::kAccountedInStats:
      return "accounted-in-stats";
  }
  return "?";
}

FaultInjector::FaultInjector(const FaultConfig& config) : config_(config) {
  const Status valid = config_.Validate();
  MRM_CHECK(valid.ok()) << valid.message();
}

double FaultInjector::Roll(std::uint64_t stream, std::uint64_t a, std::uint64_t b) const {
  // Chain the key through the SplitMix64 finalizer; the resulting state
  // seeds a throwaway Rng whose first variate is the decision. Keyed, not
  // sequential: the draw is a pure function of (seed, stream, a, b).
  const std::uint64_t key = Mix64(Mix64(Mix64(config_.seed ^ stream) ^ a) ^ b);
  Rng rng(key);
  return rng.NextDouble();
}

void FaultInjector::ReportFault(FaultKind kind, std::uint64_t entity) {
  if constexpr (kCheckedHooks) {
    if (observer_ != nullptr) {
      FaultRecord record;
      record.kind = kind;
      record.entity = entity;
      observer_->OnFault(record);
    }
  }
}

void FaultInjector::ReportResolution(FaultKind kind, FaultResolution resolution,
                                     std::uint64_t entity) {
  ++stats_.resolutions;
  if constexpr (kCheckedHooks) {
    if (observer_ != nullptr) {
      ResolutionRecord record;
      record.kind = kind;
      record.resolution = resolution;
      record.entity = entity;
      observer_->OnResolution(record);
    }
  }
}

FaultInjector::ReadRoll FaultInjector::RollRead(std::uint64_t block, std::uint64_t read_seq,
                                                double p_uncorrectable, double p_any_error) {
  ++stats_.read_rolls;
  const double u = Roll(kStreamRead, block, read_seq);
  if (u < p_uncorrectable) {
    // Uncorrectable codeword: with silent_fraction the decoder miscorrects
    // instead of detecting. An independent stream keeps the two decisions
    // uncorrelated.
    if (Roll(kStreamSilent, block, read_seq) < config_.silent_fraction) {
      ++stats_.reads_silent;
      ReportFault(FaultKind::kReadSilent, block);
      // Silent corruption is terminal at injection: nothing downstream can
      // observe it, so it is accounted in the statistics ledger here.
      ReportResolution(FaultKind::kReadSilent, FaultResolution::kAccountedInStats, block);
      return ReadRoll::kSilent;
    }
    ++stats_.reads_uncorrectable;
    ReportFault(FaultKind::kReadUncorrectable, block);
    return ReadRoll::kUncorrectable;
  }
  if (p_any_error > 0.0 && Roll(kStreamCorrected, block, read_seq) < p_any_error) {
    ++stats_.reads_corrected;
    ReportFault(FaultKind::kReadCorrected, block);
    // Corrected errors are invisible to the caller by construction; the ECC
    // stats ledger is their accounting.
    ReportResolution(FaultKind::kReadCorrected, FaultResolution::kAccountedInStats, block);
    return ReadRoll::kCorrected;
  }
  return ReadRoll::kClean;
}

bool FaultInjector::RollStuck(std::uint64_t block, std::uint32_t wear, double wear_fraction) {
  if (config_.stuck_block_prob <= 0.0 || wear_fraction < config_.stuck_wear_fraction) {
    return false;
  }
  if (Roll(kStreamStuck, block, wear) >= config_.stuck_block_prob) {
    return false;
  }
  ++stats_.stuck_blocks;
  ReportFault(FaultKind::kStuckBlock, block);
  return true;
}

bool FaultInjector::RollZoneFailure(std::uint32_t zone, std::uint64_t zone_seq) {
  if (config_.zone_failure_prob <= 0.0 ||
      Roll(kStreamZone, zone, zone_seq) >= config_.zone_failure_prob) {
    return false;
  }
  ++stats_.zone_failures;
  ReportFault(FaultKind::kZoneFailure, zone);
  return true;
}

bool FaultInjector::RollStall(std::uint64_t request_id) {
  if (config_.channel_stall_prob <= 0.0 ||
      Roll(kStreamStall, request_id, 0) >= config_.channel_stall_prob) {
    return false;
  }
  ++stats_.channel_stalls;
  ReportFault(FaultKind::kChannelStall, request_id);
  return true;
}

bool FaultInjector::RollDrop(std::uint64_t request_id) {
  if (config_.drop_completion_prob <= 0.0 ||
      Roll(kStreamDrop, request_id, 0) >= config_.drop_completion_prob) {
    return false;
  }
  ++stats_.dropped_completions;
  ReportFault(FaultKind::kDroppedCompletion, request_id);
  return true;
}

void FaultInjector::ResolveRead(std::uint64_t block, FaultResolution resolution) {
  ReportResolution(FaultKind::kReadUncorrectable, resolution, block);
}

void FaultInjector::ResolveStuck(std::uint64_t block, FaultResolution resolution) {
  ReportResolution(FaultKind::kStuckBlock, resolution, block);
}

void FaultInjector::ResolveZone(std::uint32_t zone, FaultResolution resolution) {
  ReportResolution(FaultKind::kZoneFailure, resolution, zone);
}

void FaultInjector::ResolveStall(std::uint64_t request_id) {
  ReportResolution(FaultKind::kChannelStall, FaultResolution::kDelivered, request_id);
}

void FaultInjector::ResolveDrop(std::uint64_t request_id) {
  ReportResolution(FaultKind::kDroppedCompletion, FaultResolution::kDelivered, request_id);
}

// SavedState (== FaultStats) claims the stats ledger is the injector's ONLY
// mutable state. Enforce the claim on the class layout: the injector must be
// exactly {immutable config, stats ledger, observer pointer} with no room for
// an extra member. Adding one forces this assertion to fail, so the author
// must either widen SavedState or consciously exempt the new member.
static_assert(sizeof(FaultInjector) ==
                  sizeof(FaultConfig) + sizeof(FaultStats) + sizeof(FaultObserver*),
              "FaultInjector gained state outside {config, stats, observer}: "
              "update SavedState (fault_injector.h) before relaxing this");

}  // namespace fault
}  // namespace mrm
