// Deterministic fault injection (DESIGN.md §10).
//
// Every injection decision is a *keyed roll*: the uniform variate for a
// decision is drawn from an mrm::Rng seeded by a SplitMix64 hash of
// (config.seed, decision stream, entity id, sequence number). A decision
// therefore depends only on simulation state — never on the order in which
// threads reach the decision point — so a (seed, config) pair reproduces the
// exact same fault sequence at any --sim-threads count. This is the same
// argument that makes counter-based RNGs (Philox-style) parallel-safe, built
// from the repo's existing generator.
//
// The injector decides; the device / control plane / memory system act. Each
// actor reports recovery back through the Resolve* calls so the RAS ledger
// (and, in checked builds, check::FaultChecker) can prove every injected
// fault was corrected, reported or accounted — never silently lost.

#ifndef MRMSIM_SRC_FAULT_FAULT_INJECTOR_H_
#define MRMSIM_SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>

#include "src/common/check_hooks.h"
#include "src/fault/fault_config.h"
#include "src/fault/fault_observer.h"

namespace mrm {
namespace fault {

struct FaultStats {
  std::uint64_t read_rolls = 0;           // decode decisions drawn
  std::uint64_t reads_corrected = 0;      // injected faults by kind
  std::uint64_t reads_uncorrectable = 0;
  std::uint64_t reads_silent = 0;
  std::uint64_t stuck_blocks = 0;
  std::uint64_t zone_failures = 0;
  std::uint64_t channel_stalls = 0;
  std::uint64_t dropped_completions = 0;
  std::uint64_t resolutions = 0;          // recovery reports received

  std::uint64_t injected_total() const {
    return reads_corrected + reads_uncorrectable + reads_silent + stuck_blocks + zone_failures +
           channel_stalls + dropped_completions;
  }

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

class FaultInjector {
 public:
  // Decode outcome of one read attempt. kClean/kCorrected deliver good data;
  // kUncorrectable is detected (the caller must recover); kSilent delivers
  // corrupt data as good — only the stats (and checker) know.
  enum class ReadRoll { kClean, kCorrected, kUncorrectable, kSilent };

  // The config must be valid (FaultConfig::Validate).
  explicit FaultInjector(const FaultConfig& config);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultConfig& config() const { return config_; }
  const FaultStats& stats() const { return stats_; }

  // --- Decisions (keyed rolls; deterministic for any call order) ----------
  // `p_uncorrectable` / `p_any_error` come from the caller's ECC model at
  // the effective RBER (which already includes config().transient_rber).
  ReadRoll RollRead(std::uint64_t block, std::uint64_t read_seq, double p_uncorrectable,
                    double p_any_error);

  // Per-append stuck-at decision; `wear_fraction` = wear / endurance at the
  // operating point. Fires only past config().stuck_wear_fraction.
  bool RollStuck(std::uint64_t block, std::uint32_t wear, double wear_fraction);

  // Per-append whole-zone failure decision; `zone_seq` is the zone's
  // cumulative append count (so repeated rolls are independent).
  bool RollZoneFailure(std::uint32_t zone, std::uint64_t zone_seq);

  // Per-request fabric decisions, keyed by the (unique) request id.
  bool RollStall(std::uint64_t request_id);
  bool RollDrop(std::uint64_t request_id);

  // --- Recovery reports ---------------------------------------------------
  void ResolveRead(std::uint64_t block, FaultResolution resolution);
  void ResolveStuck(std::uint64_t block, FaultResolution resolution);
  void ResolveZone(std::uint32_t zone, FaultResolution resolution);
  void ResolveStall(std::uint64_t request_id);
  void ResolveDrop(std::uint64_t request_id);

  // Attaches the conservation auditor (checked builds only; the hook sites
  // compile away otherwise). Pass nullptr to detach.
  void SetObserver(FaultObserver* observer) { observer_ = observer; }

  // Checkpoint of the injector's mutable state. Decisions are keyed rolls —
  // pure functions of (seed, stream, entity, sequence) with no generator
  // cursor — so the stats ledger is the ONLY mutable state: a speculative
  // lane rollback that replays its requests re-derives identical fault
  // decisions without the injector ever rewinding (both fabric fault points
  // run hub-side anyway). Save/Restore exist for whole-simulation
  // checkpointing (ROADMAP item 4), mirroring sim::Simulator::SaveState.
  // This claim is enforced statically: fault_injector.cc asserts the class
  // layout is exactly {config, stats ledger, observer pointer}, so a future
  // mutable member cannot be added without either widening SavedState or
  // consciously updating the assertion (and the exemption comments below).
  using SavedState = FaultStats;
  void SaveState(SavedState* out) const { *out = stats_; }
  void RestoreState(const SavedState& saved) { stats_ = saved; }

 private:
  // Decision streams; part of the roll key so the same entity draws
  // independent variates for different decisions.
  enum Stream : std::uint64_t {
    kStreamRead = 1,
    kStreamSilent = 2,
    kStreamCorrected = 3,
    kStreamStuck = 4,
    kStreamZone = 5,
    kStreamStall = 6,
    kStreamDrop = 7,
  };

  double Roll(std::uint64_t stream, std::uint64_t a, std::uint64_t b) const;
  void ReportFault(FaultKind kind, std::uint64_t entity);
  void ReportResolution(FaultKind kind, FaultResolution resolution, std::uint64_t entity);

  // snapshot-exempt(immutable after construction; decisions are keyed rolls
  // derived from the config's seed, never from mutable generator state)
  FaultConfig config_;
  FaultStats stats_;
  // snapshot-exempt(attachment wiring; the owner re-attaches observers after
  // a restore, mirroring ChannelController::observer_)
  FaultObserver* observer_ = nullptr;
};

}  // namespace fault
}  // namespace mrm

#endif  // MRMSIM_SRC_FAULT_FAULT_INJECTOR_H_
