// Observation interface for the fault subsystem (DESIGN.md §10).
//
// Every fault the injector fires is reported as a FaultRecord; every
// recovery action the device / control plane / memory system takes on a
// fault is reported as a ResolutionRecord referencing the same entity
// (block, zone or request id). check::FaultChecker matches the two streams
// and proves conservation: no injected fault may remain unresolved when the
// run ends.
//
// Like the other auditing interfaces, observers are strictly passive and the
// hook sites compile away unless MRMSIM_CHECKED is defined.

#ifndef MRMSIM_SRC_FAULT_FAULT_OBSERVER_H_
#define MRMSIM_SRC_FAULT_FAULT_OBSERVER_H_

#include <cstdint>

namespace mrm {
namespace fault {

enum class FaultKind {
  kReadCorrected,      // raw bit errors occurred, ECC corrected them
  kReadUncorrectable,  // detected-uncorrectable codeword (needs recovery)
  kReadSilent,         // miscorrection: bad data delivered as good
  kStuckBlock,         // cell wear-out: append slot burned
  kZoneFailure,        // whole zone lost
  kChannelStall,       // request delayed entering the fabric
  kDroppedCompletion,  // completion record lost, re-delivered after timeout
};

const char* FaultKindName(FaultKind kind);

enum class FaultResolution {
  kRetryCorrected,   // a bounded read-retry eventually decoded clean
  kEmergencyScrub,   // re-programmed from the logical copy
  kDropped,          // data loss surfaced to the owner (recompute per §4)
  kReported,         // error returned to an unmanaged caller
  kZoneRetired,      // control plane retired the zone and remapped survivors
  kDelivered,        // stalled/dropped message eventually delivered
  kAccountedInStats, // terminal at injection: recorded in RAS statistics
};

const char* FaultResolutionName(FaultResolution resolution);

struct FaultRecord {
  FaultKind kind = FaultKind::kReadCorrected;
  // Block id for read/stuck faults, zone for zone failures, request id for
  // fabric faults.
  std::uint64_t entity = 0;
};

struct ResolutionRecord {
  FaultKind kind = FaultKind::kReadCorrected;
  FaultResolution resolution = FaultResolution::kReported;
  std::uint64_t entity = 0;
};

class FaultObserver {
 public:
  virtual ~FaultObserver() = default;

  virtual void OnFault(const FaultRecord& /*record*/) {}
  virtual void OnResolution(const ResolutionRecord& /*record*/) {}
};

}  // namespace fault
}  // namespace mrm

#endif  // MRMSIM_SRC_FAULT_FAULT_OBSERVER_H_
