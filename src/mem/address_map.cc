#include "src/mem/address_map.h"

#include "src/common/logging.h"

namespace mrm {
namespace mem {

AddressMap::AddressMap(const DeviceConfig& config, AddressMapPolicy policy)
    : policy_(policy),
      channels_(config.channels),
      ranks_(config.ranks),
      bank_groups_(config.bank_groups),
      banks_per_group_(config.banks_per_group),
      rows_(config.rows_per_bank),
      columns_(config.columns_per_row()),
      access_bytes_(config.access_bytes) {}

Location AddressMap::Decode(std::uint64_t addr) const {
  std::uint64_t unit = addr / access_bytes_;
  Location loc;
  auto take = [&unit](std::uint64_t radix) {
    const std::uint64_t digit = unit % radix;
    unit /= radix;
    return digit;
  };
  switch (policy_) {
    case AddressMapPolicy::kRowBankRankColumnChannel:
      loc.channel = static_cast<int>(take(channels_));
      loc.column = take(columns_);
      loc.rank = static_cast<int>(take(ranks_));
      loc.bank = static_cast<int>(take(banks_per_group_));
      loc.bank_group = static_cast<int>(take(bank_groups_));
      loc.row = take(rows_);
      break;
    case AddressMapPolicy::kRowColumnBankRankChannel:
      loc.channel = static_cast<int>(take(channels_));
      loc.rank = static_cast<int>(take(ranks_));
      loc.bank = static_cast<int>(take(banks_per_group_));
      loc.bank_group = static_cast<int>(take(bank_groups_));
      loc.column = take(columns_);
      loc.row = take(rows_);
      break;
  }
  MRM_CHECK(unit == 0) << "address beyond device capacity";
  return loc;
}

std::uint64_t AddressMap::Encode(const Location& location) const {
  std::uint64_t unit = 0;
  auto put = [&unit](std::uint64_t digit, std::uint64_t radix) {
    unit = unit * radix + digit;
  };
  switch (policy_) {
    case AddressMapPolicy::kRowBankRankColumnChannel:
      put(location.row, rows_);
      put(static_cast<std::uint64_t>(location.bank_group), bank_groups_);
      put(static_cast<std::uint64_t>(location.bank), banks_per_group_);
      put(static_cast<std::uint64_t>(location.rank), ranks_);
      put(location.column, columns_);
      put(static_cast<std::uint64_t>(location.channel), channels_);
      break;
    case AddressMapPolicy::kRowColumnBankRankChannel:
      put(location.row, rows_);
      put(location.column, columns_);
      put(static_cast<std::uint64_t>(location.bank_group), bank_groups_);
      put(static_cast<std::uint64_t>(location.bank), banks_per_group_);
      put(static_cast<std::uint64_t>(location.rank), ranks_);
      put(static_cast<std::uint64_t>(location.channel), channels_);
      break;
  }
  return unit * access_bytes_;
}

}  // namespace mem
}  // namespace mrm
