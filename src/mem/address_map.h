// Physical address decomposition.
//
// Ownership (DESIGN.md §12): immutable after construction (CONST_SHARED) —
// the hub routes with it and every lane decodes with it concurrently.
//
// The default policy is RoBaRaCoCh ("row : bank : rank : column : channel"
// from most to least significant), which stripes consecutive cache lines
// across channels and then across columns of one row — the layout that makes
// the sequential weight/KV streams of the paper's workload row-buffer
// friendly across all channels.

#ifndef MRMSIM_SRC_MEM_ADDRESS_MAP_H_
#define MRMSIM_SRC_MEM_ADDRESS_MAP_H_

#include <cstdint>

#include "src/mem/device_config.h"
#include "src/mem/request.h"

namespace mrm {
namespace mem {

enum class AddressMapPolicy {
  kRowBankRankColumnChannel,  // sequential-friendly (default)
  kRowColumnBankRankChannel,  // bank-interleaved at fine grain
};

class AddressMap {
 public:
  AddressMap(const DeviceConfig& config, AddressMapPolicy policy);

  // Decodes a byte address (must be < capacity) into its location.
  Location Decode(std::uint64_t addr) const;

  // Inverse of Decode (used by tests and trace tooling).
  std::uint64_t Encode(const Location& location) const;

  AddressMapPolicy policy() const { return policy_; }

 private:
  AddressMapPolicy policy_;
  int channels_;
  int ranks_;
  int bank_groups_;
  int banks_per_group_;
  std::uint64_t rows_;
  std::uint64_t columns_;
  std::uint32_t access_bytes_;
};

}  // namespace mem
}  // namespace mrm

#endif  // MRMSIM_SRC_MEM_ADDRESS_MAP_H_
