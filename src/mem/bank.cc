#include "src/mem/bank.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace mrm {
namespace mem {
namespace {

sim::Tick NsToTicks(double ns, double ticks_per_second) {
  const double ticks = ns * 1e-9 * ticks_per_second;
  const auto rounded = static_cast<sim::Tick>(std::ceil(ticks - 1e-9));
  return std::max<sim::Tick>(rounded, 1);
}

}  // namespace

TimingTicks TimingTicksFromNs(const Timings& t, double ticks_per_second) {
  TimingTicks ticks;
  ticks.tck = NsToTicks(t.tck_ns, ticks_per_second);
  ticks.trcd = NsToTicks(t.trcd_ns, ticks_per_second);
  ticks.trp = NsToTicks(t.trp_ns, ticks_per_second);
  ticks.tcas = NsToTicks(t.tcas_ns, ticks_per_second);
  ticks.tcwl = NsToTicks(t.tcwl_ns, ticks_per_second);
  ticks.tras = NsToTicks(t.tras_ns, ticks_per_second);
  ticks.trc = NsToTicks(t.trc_ns, ticks_per_second);
  ticks.trrd = NsToTicks(t.trrd_ns, ticks_per_second);
  ticks.tccd = NsToTicks(t.tccd_ns, ticks_per_second);
  ticks.tburst = NsToTicks(t.tburst_ns, ticks_per_second);
  ticks.tfaw = NsToTicks(t.tfaw_ns, ticks_per_second);
  ticks.twr = NsToTicks(t.twr_ns, ticks_per_second);
  ticks.trtp = NsToTicks(t.trtp_ns, ticks_per_second);
  ticks.trfc = NsToTicks(t.trfc_ns, ticks_per_second);
  ticks.trefi = NsToTicks(t.trefi_ns, ticks_per_second);
  return ticks;
}

sim::Tick Bank::EarliestIssue(Command command) const {
  switch (command) {
    case Command::kActivate:
      return state_ == State::kIdle ? next_activate_ : sim::kTickNever;
    case Command::kPrecharge:
      return state_ == State::kActive ? next_precharge_ : sim::kTickNever;
    case Command::kRead:
      return state_ == State::kActive ? next_read_ : sim::kTickNever;
    case Command::kWrite:
      return state_ == State::kActive ? next_write_ : sim::kTickNever;
    case Command::kRefresh:
      // Refresh legality is a rank-level decision; a bank only needs to be
      // idle and past its precharge recovery.
      return state_ == State::kIdle ? next_activate_ : sim::kTickNever;
  }
  return sim::kTickNever;
}

void Bank::Issue(Command command, std::uint64_t row, sim::Tick now) {
  const TimingTicks& t = *timings_;
  switch (command) {
    case Command::kActivate:
      MRM_CHECK(state_ == State::kIdle && now >= next_activate_);
      state_ = State::kActive;
      open_row_ = row;
      next_read_ = now + t.trcd;
      next_write_ = now + t.trcd;
      next_precharge_ = now + t.tras;
      next_activate_ = now + t.trc;  // same-bank ACT-to-ACT
      break;
    case Command::kPrecharge:
      MRM_CHECK(state_ == State::kActive && now >= next_precharge_);
      state_ = State::kIdle;
      next_activate_ = std::max(next_activate_, now + t.trp);
      break;
    case Command::kRead:
      MRM_CHECK(state_ == State::kActive && now >= next_read_);
      next_read_ = now + t.tccd;
      next_write_ = now + t.tccd;
      next_precharge_ = std::max(next_precharge_, now + t.trtp);
      break;
    case Command::kWrite:
      MRM_CHECK(state_ == State::kActive && now >= next_write_);
      next_read_ = now + t.tccd;
      next_write_ = now + t.tccd;
      next_precharge_ = std::max(next_precharge_, now + t.tcwl + t.tburst + t.twr);
      break;
    case Command::kRefresh:
      MRM_CHECK(state_ == State::kIdle);
      next_activate_ = std::max(next_activate_, now + t.trfc);
      break;
  }
}

void Bank::BlockUntil(sim::Tick until) {
  state_ = State::kIdle;
  next_activate_ = std::max(next_activate_, until);
}

}  // namespace mem
}  // namespace mrm
