// Per-bank command state machine with JEDEC-style timing constraints.
//
// Ownership (DESIGN.md §12): Bank instances live in ChannelController's
// banks_ array, which is MRMSIM_LANE_OWNED — all bank state is mutated only
// by the thread holding the owning controller's role (the lane's epoch
// worker mid-epoch, the hub during serial phases). Banks themselves carry no
// guards; the controller's member annotations are the enforcement point.

#ifndef MRMSIM_SRC_MEM_BANK_H_
#define MRMSIM_SRC_MEM_BANK_H_

#include <cstdint>

#include "src/mem/request.h"
#include "src/mem/timing.h"
#include "src/sim/event_queue.h"

namespace mrm {
namespace mem {

// All timing parameters converted to controller ticks.
struct TimingTicks {
  sim::Tick tck = 1;
  sim::Tick trcd = 14;
  sim::Tick trp = 14;
  sim::Tick tcas = 14;
  sim::Tick tcwl = 12;
  sim::Tick tras = 32;
  sim::Tick trc = 46;
  sim::Tick trrd = 4;
  sim::Tick tccd = 2;
  sim::Tick tburst = 2;
  sim::Tick tfaw = 16;
  sim::Tick twr = 15;
  sim::Tick trtp = 8;
  sim::Tick trfc = 350;
  sim::Tick trefi = 3900;
};

// Converts nanosecond timing parameters to controller ticks: each window is
// rounded up to whole ticks and clamped to at least one tick. Both the
// controller and the protocol auditor derive their tick windows through this
// one function, so a checked run audits exactly the constraints the
// controller claims to honor.
TimingTicks TimingTicksFromNs(const Timings& timings, double ticks_per_second);

class Bank {
 public:
  enum class State { kIdle, kActive };

  explicit Bank(const TimingTicks* timings) : timings_(timings) {}

  State state() const { return state_; }
  std::uint64_t open_row() const { return open_row_; }

  // True when the bank is active with exactly `row` open (a row hit).
  bool IsOpenRow(std::uint64_t row) const {
    return state_ == State::kActive && open_row_ == row;
  }

  // Earliest tick at which `command` may be issued to this bank. For kRead /
  // kWrite the row must already be open (callers check open_row()).
  sim::Tick EarliestIssue(Command command) const;

  bool CanIssue(Command command, sim::Tick now) const { return EarliestIssue(command) <= now; }

  // Applies the command's timing side effects. Caller has verified legality.
  void Issue(Command command, std::uint64_t row, sim::Tick now);

  // Forces the bank idle and blocks activates until `until` (refresh).
  void BlockUntil(sim::Tick until);

  // Durable checkpoint of the bank's timing state (DESIGN.md §13). A plain
  // value type on purpose: copying a whole Bank would drag its timings_
  // pointer along, which dangles the moment the snapshot crosses a process
  // boundary. Restore writes only the mutable fields, leaving the target
  // bank's own timings_ (fixed at construction) untouched.
  struct SavedState {
    State state = State::kIdle;
    std::uint64_t open_row = 0;
    sim::Tick next_activate = 0;
    sim::Tick next_precharge = 0;
    sim::Tick next_read = 0;
    sim::Tick next_write = 0;

    friend bool operator==(const SavedState&, const SavedState&) = default;
  };

  void SaveState(SavedState* out) const {
    out->state = state_;
    out->open_row = open_row_;
    out->next_activate = next_activate_;
    out->next_precharge = next_precharge_;
    out->next_read = next_read_;
    out->next_write = next_write_;
  }
  void RestoreState(const SavedState& saved) {
    state_ = saved.state;
    open_row_ = saved.open_row;
    next_activate_ = saved.next_activate;
    next_precharge_ = saved.next_precharge;
    next_read_ = saved.next_read;
    next_write_ = saved.next_write;
  }

 private:
  // snapshot-exempt(borrowed config; points at the owning controller's
  // timing table, fixed at construction)
  const TimingTicks* timings_;
  State state_ = State::kIdle;
  std::uint64_t open_row_ = 0;

  sim::Tick next_activate_ = 0;
  sim::Tick next_precharge_ = 0;
  sim::Tick next_read_ = 0;
  sim::Tick next_write_ = 0;
};

}  // namespace mem
}  // namespace mrm

#endif  // MRMSIM_SRC_MEM_BANK_H_
