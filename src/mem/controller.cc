#include "src/mem/controller.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace mrm {
namespace mem {
namespace {

// JEDEC convention: the refresh window is covered by 8192 REF commands.
constexpr std::uint64_t kRefreshCommandsPerWindow = 8192;

}  // namespace

const char* CommandName(Command command) {
  switch (command) {
    case Command::kActivate:
      return "ACT";
    case Command::kPrecharge:
      return "PRE";
    case Command::kRead:
      return "RD";
    case Command::kWrite:
      return "WR";
    case Command::kRefresh:
      return "REF";
  }
  return "?";
}

ChannelController::ChannelController(sim::Simulator* simulator, const DeviceConfig* config,
                                     const AddressMap* map, int channel, SchedulerPolicy policy)
    : simulator_(simulator),
      config_(config),
      map_(map),
      channel_(channel),
      policy_(policy),
      ticks_(TimingTicksFromNs(config->timings, simulator->ticks_per_second())) {
  role_.Held();  // construction: no other thread can reach this object yet
  const int banks = config_->ranks * config_->banks_per_rank();
  banks_.reserve(static_cast<std::size_t>(banks));
  for (int i = 0; i < banks; ++i) {
    banks_.emplace_back(&ticks_);
  }
  bank_queues_.resize(static_cast<std::size_t>(banks));
  pass2_failed_.resize(static_cast<std::size_t>(banks));
  pool_.resize(kQueueCapacity);
  for (std::size_t i = 0; i < kQueueCapacity; ++i) {
    pool_[i].next_age = i + 1 < kQueueCapacity ? static_cast<std::uint32_t>(i + 1) : kNilIndex;
  }
  free_head_ = 0;
  ranks_.resize(static_cast<std::size_t>(config_->ranks));
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    // Stagger initial refresh due times across ranks to avoid lockstep.
    ranks_[r].next_refresh_due = ticks_.trefi + r * (ticks_.trefi / std::max(1, config_->ranks));
  }
  rows_per_refresh_ = std::max<std::uint64_t>(
      1, (config_->rows_per_bank + kRefreshCommandsPerWindow - 1) / kRefreshCommandsPerWindow);
  refresh_enabled_ = config_->needs_refresh;
}

bool ChannelController::Enqueue(Request request) {
  const Location location = map_->Decode(request.addr);
  return Enqueue(request, location);
}

bool ChannelController::Enqueue(Request& request, const Location& location) {
  role_.Held();
  if (free_head_ == kNilIndex) {
    return false;  // pool exhausted == queue full
  }
  MRM_CHECK(request.size <= config_->access_bytes) << "request exceeds access granularity";
  request.enqueue_tick = simulator_->now();
  const std::uint32_t index = free_head_;
  Pending& p = pool_[index];
  free_head_ = p.next_age;
  p.location = location;
  p.request = std::move(request);
  p.age_seq = next_age_seq_++;
  p.bank = static_cast<std::uint32_t>(
      p.location.FlatBank(config_->bank_groups, config_->banks_per_group));
  p.needed_activate = false;
  p.prev_age = age_tail_;
  p.next_age = kNilIndex;
  (age_tail_ == kNilIndex ? age_head_ : pool_[age_tail_].next_age) = index;
  age_tail_ = index;
  BankList& bl = bank_queues_[p.bank];
  p.prev_in_bank = bl.tail;
  p.next_in_bank = kNilIndex;
  (bl.tail == kNilIndex ? bl.head : pool_[bl.tail].next_in_bank) = index;
  bl.tail = index;
  ++queue_size_;
  if (bl.row_hit_head == kNilIndex && banks_[p.bank].IsOpenRow(p.location.row)) {
    SetRowHitHead(p.bank, index);
  }
  ScheduleWakeAt(simulator_->now());
  return true;
}

void ChannelController::SetRowHitHead(std::uint32_t bank, std::uint32_t head) {
  role_.Held();
  BankList& bl = bank_queues_[bank];
  if ((bl.row_hit_head == kNilIndex) != (head == kNilIndex)) {
    if (head == kNilIndex) {
      const std::uint32_t last = hit_banks_.back();
      hit_banks_[bl.hit_pos] = last;
      bank_queues_[last].hit_pos = bl.hit_pos;
      hit_banks_.pop_back();
      bl.hit_pos = kNilIndex;
    } else {
      bl.hit_pos = static_cast<std::uint32_t>(hit_banks_.size());
      hit_banks_.push_back(bank);
    }
  }
  bl.row_hit_head = head;
}

void ChannelController::RemovePending(std::uint32_t index) {
  role_.Held();
  Pending& p = pool_[index];
  (p.prev_age == kNilIndex ? age_head_ : pool_[p.prev_age].next_age) = p.next_age;
  (p.next_age == kNilIndex ? age_tail_ : pool_[p.next_age].prev_age) = p.prev_age;
  BankList& bl = bank_queues_[p.bank];
  if (bl.row_hit_head == index) {
    // Advance to the next pending on the same row: data commands leave the
    // row open, so the row-match invariant carries over.
    std::uint32_t j = p.next_in_bank;
    const std::uint64_t row = p.location.row;
    while (j != kNilIndex && pool_[j].location.row != row) {
      j = pool_[j].next_in_bank;
    }
    SetRowHitHead(p.bank, j);
  }
  (p.prev_in_bank == kNilIndex ? bl.head : pool_[p.prev_in_bank].next_in_bank) = p.next_in_bank;
  (p.next_in_bank == kNilIndex ? bl.tail : pool_[p.next_in_bank].prev_in_bank) = p.prev_in_bank;
  p.next_age = free_head_;
  free_head_ = index;
  --queue_size_;
}

std::uint32_t ChannelController::AcquireInflight() {
  role_.Held();
  if (inflight_free_ != kNilIndex) {
    const std::uint32_t slot = inflight_free_;
    inflight_free_ = inflight_[slot].next_free;
    return slot;
  }
  inflight_.emplace_back();
  return static_cast<std::uint32_t>(inflight_.size() - 1);
}

void ChannelController::DisableRefresh() {
  role_.Held();
  refresh_enabled_ = false;
  if constexpr (kCheckedHooks) {
    if (observer_ != nullptr) {
      observer_->OnRefreshDisabled(channel_);
    }
  }
}

void ChannelController::ScheduleWakeAt(sim::Tick when) {
  role_.Held();
  if (when < simulator_->now()) {
    when = simulator_->now();
  }
  if (wake_scheduled_) {
    if (wake_at_ <= when) {
      return;
    }
    // Pull the existing wake earlier in place; no cancel + re-push churn.
    const sim::EventId moved = simulator_->Retime(wake_event_, when);
    if (moved != sim::kInvalidEventId) {
      wake_event_ = moved;
      wake_at_ = when;
      return;
    }
  }
  wake_scheduled_ = true;
  wake_at_ = when;
  wake_event_ = simulator_->ScheduleAt(when, [this] { Wake(); });
}

void ChannelController::Wake() {
  role_.Held();
  wake_scheduled_ = false;
  const sim::Tick now = simulator_->now();
  bool progress = TryRefresh(now);
  if (!progress) {
    progress = TryRequests(now);
  }
  if (progress) {
    // Another command slot right after this one.
    ScheduleWakeAt(now + ticks_.tck);
    return;
  }
  const sim::Tick next = NextInterestingTick(now);
  if (next != sim::kTickNever) {
    ScheduleWakeAt(std::max(next, now + 1));
  }
}

bool ChannelController::RankActAllowed(int rank, sim::Tick now) const {
  role_.HeldShared();
  const RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  if (rs.refresh_pending) {
    return false;
  }
  if (now < rs.next_act) {
    return false;
  }
  if (rs.act_count == 4 && now < rs.recent_acts[rs.act_pos] + ticks_.tfaw) {
    return false;
  }
  return true;
}

sim::Tick ChannelController::RankNextActTick(int rank) const {
  role_.HeldShared();
  const RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  sim::Tick t = rs.next_act;
  if (rs.act_count == 4) {
    t = std::max(t, rs.recent_acts[rs.act_pos] + ticks_.tfaw);
  }
  return t;
}

void ChannelController::RecordActivate(int rank, sim::Tick now) {
  role_.Held();
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  rs.next_act = now + ticks_.trrd;
  rs.recent_acts[rs.act_pos] = now;
  rs.act_pos = (rs.act_pos + 1) & 3;
  if (rs.act_count < 4) {
    ++rs.act_count;
  }
}

bool ChannelController::TryRefresh(sim::Tick now) {
  role_.Held();
  if (!refresh_enabled_) {
    return false;
  }
  for (int rank = 0; rank < config_->ranks; ++rank) {
    RankState& rs = ranks_[static_cast<std::size_t>(rank)];
    if (!rs.refresh_pending && now >= rs.next_refresh_due) {
      rs.refresh_pending = true;
    }
    if (!rs.refresh_pending) {
      continue;
    }
    const int first = rank * config_->banks_per_rank();
    const int last = first + config_->banks_per_rank();
    // Step 1: precharge any open bank (one command per wake).
    for (int b = first; b < last; ++b) {
      Bank& bank = banks_[static_cast<std::size_t>(b)];
      if (bank.state() == Bank::State::kActive && bank.CanIssue(Command::kPrecharge, now)) {
        bank.Issue(Command::kPrecharge, 0, now);
        Observe(Command::kPrecharge, rank, b, 0, 0);
        SetRowHitHead(static_cast<std::uint32_t>(b), kNilIndex);
        ++energy_.precharges;
        return true;
      }
    }
    // Step 2: all banks idle and past recovery -> issue the REF.
    bool ready = true;
    for (int b = first; b < last; ++b) {
      if (!banks_[static_cast<std::size_t>(b)].CanIssue(Command::kRefresh, now)) {
        ready = false;
        break;
      }
    }
    if (!ready) {
      continue;
    }
    for (int b = first; b < last; ++b) {
      banks_[static_cast<std::size_t>(b)].Issue(Command::kRefresh, 0, now);
    }
    Observe(Command::kRefresh, rank, CommandRecord::kAllBanks, 0, 0);
    energy_.refresh_rows +=
        rows_per_refresh_ * static_cast<std::uint64_t>(config_->banks_per_rank());
    ++stats_.refreshes;
    rs.refresh_pending = false;
    // Skip any refreshes missed while the controller slept idle; their energy
    // is accounted analytically in GetEnergyReport (steady-state rate).
    rs.next_refresh_due = std::max(rs.next_refresh_due + ticks_.trefi, now + 1);
    return true;
  }
  return false;
}

bool ChannelController::TryRequests(sim::Tick now) {
  role_.Held();
  if (age_head_ == kNilIndex) {
    return false;
  }
  if (policy_ == SchedulerPolicy::kFcfs) {
    return TryIssueFor(age_head_, now, /*row_hit_only=*/false);
  }
  // FR-FCFS pass 1: oldest row hit. Each bank's candidates are the row-hit
  // head and the same-row pendings behind it, in age order, so the global
  // winner is the minimum age over per-bank first-issuable candidates. When
  // the data bus blocks both command kinds, no row hit can issue at all.
  if (bus_free_ <= now + std::max(ticks_.tcas, ticks_.tcwl)) {
    std::uint32_t best = kNilIndex;
    std::uint64_t best_seq = ~std::uint64_t{0};
    for (const std::uint32_t b : hit_banks_) {
      std::uint32_t i = bank_queues_[b].row_hit_head;
      if (pool_[i].age_seq >= best_seq) {
        continue;
      }
      if (ranks_[static_cast<std::size_t>(pool_[i].location.rank)].refresh_pending) {
        continue;
      }
      const Bank& bank = banks_[b];
      const std::uint64_t row = bank.open_row();
      for (; i != kNilIndex; i = pool_[i].next_in_bank) {
        const Pending& p = pool_[i];
        if (p.age_seq >= best_seq) {
          break;  // bank FIFO is age-ordered: nothing further can win
        }
        if (p.location.row != row) {
          continue;
        }
        const bool is_read = p.request.kind == Request::Kind::kRead;
        const Command cmd = is_read ? Command::kRead : Command::kWrite;
        const sim::Tick data_offset = is_read ? ticks_.tcas : ticks_.tcwl;
        if (bank.CanIssue(cmd, now) && bus_free_ <= now + data_offset) {
          best = i;
          best_seq = p.age_seq;
          break;
        }
      }
    }
    if (best != kNilIndex) {
      return TryIssueFor(best, now, /*row_hit_only=*/true);
    }
  }
  // Pass 2: oldest request that can make any progress. Within a bank, every
  // pending of the same class hits identical gates — row-hit read/write
  // share the bank+bus timing, conflict PREs share the precharge window, and
  // idle ACTs share the activate + rank gates — so after one failure the
  // rest of the class can be skipped without changing which request issues.
  std::fill(pass2_failed_.begin(), pass2_failed_.end(), std::uint8_t{0});
  for (std::uint32_t i = age_head_; i != kNilIndex;) {
    const std::uint32_t next = pool_[i].next_age;
    const Pending& p = pool_[i];
    const Bank& bank = banks_[p.bank];
    std::uint8_t cls;
    if (bank.state() != Bank::State::kActive) {
      cls = 1;  // idle: ACT
    } else if (bank.open_row() == p.location.row) {
      cls = p.request.kind == Request::Kind::kRead ? 2 : 4;  // row hit
    } else {
      cls = 8;  // conflict: PRE
    }
    std::uint8_t& failed = pass2_failed_[p.bank];
    if ((failed & cls) == 0) {
      if (TryIssueFor(i, now, /*row_hit_only=*/false)) {
        return true;
      }
      failed |= cls;
    }
    i = next;
  }
  return false;
}

bool ChannelController::TryIssueFor(std::uint32_t index, sim::Tick now, bool row_hit_only) {
  role_.Held();
  Pending& pending = pool_[index];
  const Location& loc = pending.location;
  const RankState& rs = ranks_[static_cast<std::size_t>(loc.rank)];
  if (rs.refresh_pending) {
    return false;
  }
  Bank& bank = banks_[pending.bank];
  const bool is_read = pending.request.kind == Request::Kind::kRead;

  if (bank.IsOpenRow(loc.row)) {
    const Command cmd = is_read ? Command::kRead : Command::kWrite;
    const sim::Tick data_offset = is_read ? ticks_.tcas : ticks_.tcwl;
    if (!bank.CanIssue(cmd, now) || bus_free_ > now + data_offset) {
      return false;
    }
    if (pending.needed_activate) {
      ++stats_.row_misses;
    } else {
      ++stats_.row_hits;
    }
    bank.Issue(cmd, loc.row, now);
    Observe(cmd, loc.rank, static_cast<int>(pending.bank), loc.row, pending.request.size);
    const sim::Tick data_end = now + data_offset + ticks_.tburst;
    bus_free_ = data_end;
    const std::uint64_t bits = static_cast<std::uint64_t>(pending.request.size) * 8;
    if (is_read) {
      energy_.read_bits += bits;
    } else {
      energy_.write_bits += bits;
    }
    // Park the request in the in-flight slab, free the queue slot, and
    // schedule completion. The {this, slot} capture stays in the event
    // queue's inline storage, so issuing a command never heap-allocates.
    const std::uint32_t slot = AcquireInflight();
    Inflight& inflight = inflight_[slot];
    inflight.request = std::move(pending.request);
    inflight.request.complete_tick = data_end;
    inflight.is_read = is_read;
    RemovePending(index);
    scheduled_completions_.push_back(data_end);
    simulator_->ScheduleAt(data_end, [this, slot] { CompleteDataCommand(slot); });
    if (on_slot_free_) {
      on_slot_free_();
    }
    return true;
  }

  if (row_hit_only) {
    return false;
  }

  if (bank.state() == Bank::State::kActive) {
    // Row conflict: close the row.
    if (bank.CanIssue(Command::kPrecharge, now)) {
      bank.Issue(Command::kPrecharge, 0, now);
      Observe(Command::kPrecharge, loc.rank, static_cast<int>(pending.bank), 0, 0);
      SetRowHitHead(pending.bank, kNilIndex);
      ++energy_.precharges;
      pending.needed_activate = true;
      return true;
    }
    return false;
  }

  // Bank idle: open the row.
  if (bank.CanIssue(Command::kActivate, now) && RankActAllowed(loc.rank, now)) {
    bank.Issue(Command::kActivate, loc.row, now);
    Observe(Command::kActivate, loc.rank, static_cast<int>(pending.bank), loc.row, 0);
    RecordActivate(loc.rank, now);
    ++energy_.activates;
    pending.needed_activate = true;
    // The freshly opened row makes its oldest same-row pending the bank's
    // row-hit candidate.
    std::uint32_t j = bank_queues_[pending.bank].head;
    while (pool_[j].location.row != loc.row) {
      j = pool_[j].next_in_bank;  // terminates: `index` itself matches
    }
    SetRowHitHead(pending.bank, j);
    return true;
  }
  return false;
}

void ChannelController::CompleteDataCommand(std::uint32_t inflight_slot) {
  role_.Held();
  // Move everything out and release the slot first: the callbacks below may
  // re-enter Enqueue and issue a new command, reusing (or growing) the slab.
  Request request = std::move(inflight_[inflight_slot].request);
  const bool is_read = inflight_[inflight_slot].is_read;
  inflight_[inflight_slot].next_free = inflight_free_;
  inflight_free_ = inflight_slot;
  scheduled_completions_.pop_front();
  const double latency_ns =
      simulator_->TicksToSeconds(request.complete_tick - request.enqueue_tick) * 1e9;
  if (is_read) {
    ++stats_.reads_completed;
    stats_.bytes_read += request.size;
    stats_.read_latency_ns.Add(latency_ns);
  } else {
    ++stats_.writes_completed;
    stats_.bytes_written += request.size;
    stats_.write_latency_ns.Add(latency_ns);
  }
  if (completion_sink_) {
    // Epoch mode: completion callbacks are cross-lane effects; hand the
    // request to the owner for deferred, deterministically-ordered delivery.
    completion_sink_(std::move(request));
    return;
  }
  if (on_request_complete_) {
    on_request_complete_(request);
  }
  if (request.on_complete) {
    request.on_complete(request);
  }
}

void ChannelController::SaveState(SavedState* out) const {
  role_.HeldShared();
  MRM_CHECK(queue_size_ == 0 && scheduled_completions_.empty())
      << "ChannelController::SaveState requires a quiescent controller";
  out->banks.resize(banks_.size());
  for (std::size_t i = 0; i < banks_.size(); ++i) {
    banks_[i].SaveState(&out->banks[i]);
  }
  out->ranks = ranks_;
  out->bus_free = bus_free_;
  out->next_age_seq = next_age_seq_;
  out->pool_free_order.clear();
  for (std::uint32_t i = free_head_; i != kNilIndex; i = pool_[i].next_age) {
    out->pool_free_order.push_back(i);
  }
  MRM_CHECK(out->pool_free_order.size() == pool_.size());
  out->inflight_free_order.clear();
  for (std::uint32_t i = inflight_free_; i != kNilIndex; i = inflight_[i].next_free) {
    out->inflight_free_order.push_back(i);
  }
  MRM_CHECK(out->inflight_free_order.size() == inflight_.size());
  out->inflight_count = inflight_.size();
  out->wake_scheduled = wake_scheduled_;
  out->wake_at = wake_at_;
  out->wake_event = wake_event_;
  out->stats = stats_;
  out->energy = energy_;
}

void ChannelController::RestoreState(const SavedState& saved) {
  role_.Held();
  MRM_CHECK(saved.banks.size() == banks_.size() && saved.ranks.size() == ranks_.size())
      << "ChannelController::RestoreState: snapshot shape does not match this "
         "controller's configuration";
  for (std::size_t i = 0; i < banks_.size(); ++i) {
    banks_[i].RestoreState(saved.banks[i]);
  }
  ranks_ = saved.ranks;
  bus_free_ = saved.bus_free;
  next_age_seq_ = saved.next_age_seq;
  // The pool was entirely free at save time; relink its free chain in the
  // saved order so replayed enqueues land in the same slots.
  free_head_ = kNilIndex;
  std::uint32_t* link = &free_head_;
  for (const std::uint32_t index : saved.pool_free_order) {
    *link = index;
    link = &pool_[index].next_age;
  }
  *link = kNilIndex;
  age_head_ = kNilIndex;
  age_tail_ = kNilIndex;
  queue_size_ = 0;
  for (BankList& bl : bank_queues_) {
    bl = BankList{};
  }
  hit_banks_.clear();
  // Same for the in-flight slab, except it may have grown during the
  // discarded span: keep the grown slots (their indices are unobservable)
  // appended after the saved chain, in ascending order. A disk restore runs
  // the other way — the fresh controller's slab is smaller than the saved
  // one — so grow it first; replayed acquisitions then reuse the same slots.
  if (inflight_.size() < saved.inflight_count) {
    inflight_.resize(saved.inflight_count);
  }
  inflight_free_ = kNilIndex;
  link = &inflight_free_;
  for (const std::uint32_t index : saved.inflight_free_order) {
    *link = index;
    link = &inflight_[index].next_free;
  }
  for (std::size_t i = saved.inflight_count; i < inflight_.size(); ++i) {
    *link = static_cast<std::uint32_t>(i);
    link = &inflight_[i].next_free;
  }
  *link = kNilIndex;
  wake_scheduled_ = saved.wake_scheduled;
  wake_at_ = saved.wake_at;
  wake_event_ = saved.wake_event;
  stats_ = saved.stats;
  energy_ = saved.energy;
  scheduled_completions_.clear();
}

std::uint64_t ChannelController::WakeSequence() const {
  role_.HeldShared();
  if (!wake_scheduled_) {
    return 0;
  }
  sim::Tick when = 0;
  std::uint64_t sequence = 0;
  MRM_CHECK(simulator_->LookupEvent(wake_event_, &when, &sequence))
      << "ChannelController::WakeSequence: scheduled wake has no live event";
  MRM_CHECK(when == wake_at_);
  return sequence;
}

void ChannelController::ReestablishWake(std::uint64_t sequence) {
  role_.Held();
  if (!wake_scheduled_) {
    return;
  }
  // The lane queue was cleared by Simulator::RestoreExecution (which also
  // killed the constructor's initial wake), so this is the only wake event.
  wake_event_ = simulator_->ScheduleRestored(wake_at_, sequence, [this] { Wake(); });
}

sim::Tick ChannelController::EarliestActionFor(const Pending& pending) const {
  role_.HeldShared();
  const Location& loc = pending.location;
  const RankState& rs = ranks_[static_cast<std::size_t>(loc.rank)];
  if (rs.refresh_pending) {
    // Refresh machinery generates its own wakes; this request waits.
    return sim::kTickNever;
  }
  const Bank& bank = banks_[pending.bank];
  const bool is_read = pending.request.kind == Request::Kind::kRead;
  if (bank.IsOpenRow(loc.row)) {
    const Command cmd = is_read ? Command::kRead : Command::kWrite;
    const sim::Tick data_offset = is_read ? ticks_.tcas : ticks_.tcwl;
    sim::Tick t = bank.EarliestIssue(cmd);
    if (bus_free_ > data_offset) {
      t = std::max(t, bus_free_ - data_offset);
    }
    return t;
  }
  if (bank.state() == Bank::State::kActive) {
    return bank.EarliestIssue(Command::kPrecharge);
  }
  return std::max(bank.EarliestIssue(Command::kActivate), RankNextActTick(loc.rank));
}

sim::Tick ChannelController::NextInterestingTick(sim::Tick now) const {
  role_.HeldShared();
  sim::Tick next = sim::kTickNever;
  if (refresh_enabled_) {
    for (int rank = 0; rank < config_->ranks; ++rank) {
      const RankState& rs = ranks_[static_cast<std::size_t>(rank)];
      if (!rs.refresh_pending) {
        // Arm a wake for the next refresh only while there is work queued:
        // an idle controller sleeps, and refresh energy while idle is
        // charged analytically (see GetEnergyReport).
        if (age_head_ != kNilIndex) {
          next = std::min(next, rs.next_refresh_due);
        }
        continue;
      }
      // Refresh in progress: the next step is either a PRE on an active bank
      // or (all idle) the REF itself once every bank recovers.
      const int first = rank * config_->banks_per_rank();
      const int last = first + config_->banks_per_rank();
      bool any_active = false;
      sim::Tick pre_tick = sim::kTickNever;
      sim::Tick ref_tick = 0;
      for (int b = first; b < last; ++b) {
        const Bank& bank = banks_[static_cast<std::size_t>(b)];
        if (bank.state() == Bank::State::kActive) {
          any_active = true;
          pre_tick = std::min(pre_tick, bank.EarliestIssue(Command::kPrecharge));
        } else {
          ref_tick = std::max(ref_tick, bank.EarliestIssue(Command::kRefresh));
        }
      }
      next = std::min(next, any_active ? pre_tick : ref_tick);
    }
  }
  for (std::uint32_t i = age_head_; i != kNilIndex; i = pool_[i].next_age) {
    next = std::min(next, EarliestActionFor(pool_[i]));
    if (next <= now + 1) {
      break;  // the clamp below caps the answer at now + 1 anyway
    }
  }
  if (next != sim::kTickNever && next <= now) {
    next = now + 1;
  }
  return next;
}

EnergyReport ChannelController::GetEnergyReport(sim::Tick now) const {
  role_.HeldShared();
  const EnergyParams& e = config_->energy;
  EnergyReport report;
  report.activate_pj = static_cast<double>(energy_.activates) * e.act_pre_pj;
  report.read_pj = static_cast<double>(energy_.read_bits) * e.read_pj_per_bit;
  report.write_pj = static_cast<double>(energy_.write_bits) * e.write_pj_per_bit;
  report.io_pj = static_cast<double>(energy_.read_bits + energy_.write_bits) * e.io_pj_per_bit;
  // Refresh energy is charged at the steady-state rate over elapsed time
  // (the cell array must be refreshed whether or not the controller's event
  // loop was awake), which matches JEDEC behaviour for an always-powered
  // device.
  if (refresh_enabled_ && config_->timings.trefi_ns > 0.0) {
    const double elapsed_ns = simulator_->TicksToSeconds(now) * 1e9;
    const double refreshes = elapsed_ns / config_->timings.trefi_ns;
    report.refresh_pj = refreshes * static_cast<double>(rows_per_refresh_) *
                        config_->banks_per_rank() * config_->ranks * e.refresh_pj_per_row;
  }
  const double seconds = simulator_->TicksToSeconds(now);
  const double banks = static_cast<double>(config_->ranks * config_->banks_per_rank());
  report.background_pj = (e.background_mw_per_bank * 1e-3) * banks * seconds * 1e12 +
                         (refresh_enabled_ ? e.refresh_idle_mw * 1e-3 * seconds * 1e12 : 0.0);
  return report;
}

}  // namespace mem
}  // namespace mrm
