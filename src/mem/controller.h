// Per-channel memory controller: request queue, FR-FCFS/FCFS command
// scheduling, refresh engine, data-bus arbitration and energy accounting.
//
// The controller is event-driven: it wakes when a request arrives, when a
// timing constraint expires, or when a refresh comes due; each wake issues at
// most one command (one command-bus slot) and computes the next interesting
// tick, so simulated time advances without per-cycle polling.
//
// Scheduling structures are allocation-free on the steady-state path: pending
// requests live in a fixed pool threaded onto per-bank FIFO lists plus a
// global age list (FR-FCFS pass 1 walks per-bank row-hit candidates from a
// cached head; pass 2 walks age order), in-flight data transfers park in a
// reusable slab so completion events capture only {this, slot}, and the
// single wake event is retimed in place instead of cancelled and re-pushed.

#ifndef MRMSIM_SRC_MEM_CONTROLLER_H_
#define MRMSIM_SRC_MEM_CONTROLLER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/check_hooks.h"
#include "src/common/sliding_queue.h"
#include "src/common/stats.h"
#include "src/common/thread_annotations.h"
#include "src/mem/address_map.h"
#include "src/mem/bank.h"
#include "src/mem/device_config.h"
#include "src/mem/observer.h"
#include "src/mem/request.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace mem {

enum class SchedulerPolicy {
  kFcfs,    // strictly oldest-first
  kFrFcfs,  // row hits first, then oldest (default)
};

// Raw event counts the energy report is derived from.
struct EnergyCounters {
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t read_bits = 0;
  std::uint64_t write_bits = 0;
  std::uint64_t refresh_rows = 0;
};

struct EnergyReport {
  double activate_pj = 0.0;
  double read_pj = 0.0;
  double write_pj = 0.0;
  double io_pj = 0.0;
  double refresh_pj = 0.0;
  double background_pj = 0.0;
  double total_pj() const {
    return activate_pj + read_pj + write_pj + io_pj + refresh_pj + background_pj;
  }

  // Component-wise accumulation. Addition is commutative but not exactly
  // associative in floating point, so deterministic aggregation must merge
  // in a fixed order (the memory system merges channel 0, 1, 2, ...).
  void Merge(const EnergyReport& other) {
    activate_pj += other.activate_pj;
    read_pj += other.read_pj;
    write_pj += other.write_pj;
    io_pj += other.io_pj;
    refresh_pj += other.refresh_pj;
    background_pj += other.background_pj;
  }

  friend bool operator==(const EnergyReport&, const EnergyReport&) = default;
};

struct ChannelStats {
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t refreshes = 0;
  Histogram read_latency_ns;
  Histogram write_latency_ns;

  friend bool operator==(const ChannelStats&, const ChannelStats&) = default;
};

class ChannelController {
 public:
  // `config` and `map` must outlive the controller. `channel` is this
  // controller's index (addresses arriving here already target it).
  ChannelController(sim::Simulator* simulator, const DeviceConfig* config, const AddressMap* map,
                    int channel, SchedulerPolicy policy);

  ChannelController(const ChannelController&) = delete;
  ChannelController& operator=(const ChannelController&) = delete;

  // Accepts a request unless the queue is full.
  bool Enqueue(Request request);

  // Same, with the address already decoded (the memory system decodes once
  // per request and reuses the location across backlog retries). On success
  // `request` is moved from; on failure it is left untouched.
  bool Enqueue(Request& request, const Location& location);

  std::size_t queue_depth() const {
    role_.HeldShared();
    return queue_size_;
  }
  std::size_t queue_capacity() const { return kQueueCapacity; }

  // Invoked after each request completes AND a queue slot freed; the memory
  // system uses it to drain its backlog.
  void set_on_slot_free(std::function<void()> callback) { on_slot_free_ = std::move(callback); }

  // Invoked for every completed request, before the request's own
  // on_complete. Lets an owner keep in-flight accounting without wrapping
  // each request's callback in a fresh (heap-allocated) closure.
  void set_on_request_complete(std::function<void(const Request&)> callback) {
    on_request_complete_ = std::move(callback);
  }

  // Epoch mode: when set, a completed request is handed to the sink (after
  // channel-local stats/energy accounting) INSTEAD of invoking
  // on_request_complete_/request.on_complete inline. The memory system uses
  // this to defer completion callbacks to its serial hub phase; standalone
  // controllers (unit tests) keep the inline path.
  void set_completion_sink(std::function<void(Request&&)> sink) {
    completion_sink_ = std::move(sink);
  }

  // Tick of the earliest already-scheduled data completion; kTickNever when
  // nothing is in flight. Completion ticks are strictly increasing per
  // channel (the data bus serializes bursts), so a FIFO ring suffices.
  sim::Tick NextScheduledCompletion() const {
    role_.HeldShared();
    return scheduled_completions_.empty() ? sim::kTickNever : scheduled_completions_.front();
  }

  // Lower bound, in ticks, between issuing any data command and its
  // completion: min(tCAS, tCWL) + tBURST. Together with
  // NextScheduledCompletion() this bounds how soon a not-yet-issued request
  // could complete — the epoch driver's lookahead.
  sim::Tick MinCommandLatencyTicks() const {
    return std::min(ticks_.tcas, ticks_.tcwl) + ticks_.tburst;
  }

  // True while any accepted request has not yet completed its data burst.
  bool HasUnfinishedRequests() const {
    role_.HeldShared();
    return queue_size_ > 0 || !scheduled_completions_.empty();
  }

  const ChannelStats& stats() const {
    role_.HeldShared();
    return stats_;
  }
  const EnergyCounters& energy_counters() const {
    role_.HeldShared();
    return energy_;
  }

  // Energy including background power integrated up to `now`.
  EnergyReport GetEnergyReport(sim::Tick now) const;

  // Disables the refresh engine (for no-refresh ablations).
  void DisableRefresh();

  // Attaches a passive observer that receives every issued command (the
  // protocol auditor, DESIGN.md §9). Only effective in MRMSIM_CHECKED builds;
  // otherwise the hook sites are compiled out and the observer never fires.
  void SetCommandObserver(CommandObserver* observer) { observer_ = observer; }

 private:
  static constexpr std::size_t kQueueCapacity = 64;
  static constexpr std::uint32_t kNilIndex = ~std::uint32_t{0};

  // A queued request, threaded onto two intrusive lists: the channel-wide
  // age list (FCFS order) and its bank's FIFO. Slots come from a fixed pool,
  // so indices are stable for a request's whole queued life and removal is
  // an O(1) unlink instead of a deque erase.
  struct Pending {
    Request request;
    Location location;
    std::uint64_t age_seq = 0;  // global arrival order
    std::uint32_t bank = 0;     // flat bank index
    std::uint32_t prev_age = kNilIndex;
    std::uint32_t next_age = kNilIndex;  // doubles as the free-list link
    std::uint32_t prev_in_bank = kNilIndex;
    std::uint32_t next_in_bank = kNilIndex;
    // True when the controller had to ACT (or PRE+ACT) to serve this
    // request; drives row-hit/miss statistics.
    bool needed_activate = false;
  };

  // Per-bank scheduling state. row_hit_head caches the oldest pending whose
  // row matches the bank's open row (kNilIndex when the bank is closed or no
  // pending matches), so FR-FCFS pass 1 starts at a candidate instead of
  // rescanning the whole queue.
  struct BankList {
    std::uint32_t head = kNilIndex;
    std::uint32_t tail = kNilIndex;
    std::uint32_t row_hit_head = kNilIndex;
    std::uint32_t hit_pos = kNilIndex;  // position in hit_banks_ when listed
  };

  // A request whose data transfer has been issued and awaits completion. The
  // slab keeps the Request alive so the completion event only captures
  // {this, slot} — small enough for the event queue's inline storage.
  struct Inflight {
    Request request;
    bool is_read = false;
    std::uint32_t next_free = kNilIndex;
  };

  void Wake();
  void ScheduleWakeAt(sim::Tick when);
  bool TryRefresh(sim::Tick now);
  bool TryRequests(sim::Tick now);
  bool TryIssueFor(std::uint32_t index, sim::Tick now, bool row_hit_only);
  void RemovePending(std::uint32_t index);
  void SetRowHitHead(std::uint32_t bank, std::uint32_t head);
  std::uint32_t AcquireInflight();
  void CompleteDataCommand(std::uint32_t inflight_slot);
  sim::Tick NextInterestingTick(sim::Tick now) const;
  sim::Tick EarliestActionFor(const Pending& pending) const;
  bool RankActAllowed(int rank, sim::Tick now) const;
  sim::Tick RankNextActTick(int rank) const;
  void RecordActivate(int rank, sim::Tick now);

  // Auditor hook: reports an issued command. Compiled out (branch and all)
  // unless MRMSIM_CHECKED is ON.
  void Observe(Command command, int rank, int flat_bank, std::uint64_t row, std::uint32_t size) {
    if constexpr (kCheckedHooks) {
      if (observer_ != nullptr) {
        CommandRecord record;
        record.tick = simulator_->now();
        record.command = command;
        record.channel = channel_;
        record.rank = rank;
        record.flat_bank = flat_bank;
        record.row = row;
        record.size = size;
        observer_->OnCommand(record);
      }
    }
  }

  Bank& BankAt(const Location& location) {
    role_.Held();
    return banks_[static_cast<std::size_t>(
        location.FlatBank(config_->bank_groups, config_->banks_per_group))];
  }
  const Bank& BankAt(const Location& location) const {
    role_.HeldShared();
    return banks_[static_cast<std::size_t>(
        location.FlatBank(config_->bank_groups, config_->banks_per_group))];
  }

  // The context that owns this controller's channel lane (DESIGN.md §8/§12):
  // the lane's epoch worker during an epoch, the serial hub while all lanes
  // are parked. Standalone controllers (unit tests) are driven by one thread
  // throughout, which trivially plays the role.
  // snapshot-exempt(phantom capability; no runtime state)
  tsa::ThreadRole role_;

  // snapshot-exempt(owning lane simulator; the lane snapshots it separately)
  sim::Simulator* simulator_ MRMSIM_CONST_SHARED;
  // snapshot-exempt(borrowed configuration; fixed for the controller's life)
  const DeviceConfig* config_ MRMSIM_CONST_SHARED;
  // snapshot-exempt(borrowed address map; fixed for the controller's life)
  const AddressMap* map_ MRMSIM_CONST_SHARED;
  // snapshot-exempt(constructor parameter; fixed channel index)
  int channel_ MRMSIM_CONST_SHARED;
  // snapshot-exempt(constructor parameter; fixed scheduling policy)
  SchedulerPolicy policy_ MRMSIM_CONST_SHARED;
  // snapshot-exempt(derived from config at construction; never mutated)
  TimingTicks ticks_ MRMSIM_CONST_SHARED;

  std::vector<Bank> banks_ MRMSIM_LANE_OWNED(role_);

  // Request pool and the lists threaded through it. SavedState is only taken
  // quiescent, when the pool is pure free-list structure: the free-chain
  // orders below are what the snapshot captures.
  std::vector<Pending> pool_ MRMSIM_LANE_OWNED(role_);  // fixed kQueueCapacity slots
  std::uint32_t free_head_ MRMSIM_LANE_OWNED(role_) = kNilIndex;
  std::uint32_t age_head_ MRMSIM_LANE_OWNED(role_) = kNilIndex;
  std::uint32_t age_tail_ MRMSIM_LANE_OWNED(role_) = kNilIndex;
  std::size_t queue_size_ MRMSIM_LANE_OWNED(role_) = 0;
  std::uint64_t next_age_seq_ MRMSIM_LANE_OWNED(role_) = 0;
  std::vector<BankList> bank_queues_ MRMSIM_LANE_OWNED(role_);
  // Banks whose row_hit_head is set (unordered, swap-remove): FR-FCFS pass 1
  // visits only these instead of scanning every bank.
  std::vector<std::uint32_t> hit_banks_ MRMSIM_LANE_OWNED(role_);
  // Per-bank bitmask of request classes that already failed during the
  // current FR-FCFS pass 2 (scratch, reset each pass).
  // snapshot-exempt(pass-local scratch; reset at the start of every pass)
  std::vector<std::uint8_t> pass2_failed_ MRMSIM_LANE_OWNED(role_);

  std::vector<Inflight> inflight_ MRMSIM_LANE_OWNED(role_);  // grows to peak, then reused
  std::uint32_t inflight_free_ MRMSIM_LANE_OWNED(role_) = kNilIndex;

  // Data bus: busy until this tick.
  sim::Tick bus_free_ MRMSIM_LANE_OWNED(role_) = 0;

  // Per-rank activate bookkeeping (tRRD / tFAW) and refresh state. The last
  // four ACT times sit in a ring: once full, `act_pos` is the oldest entry,
  // which is exactly the tFAW horizon.
  struct RankState {
    sim::Tick next_act = 0;  // tRRD gate
    sim::Tick recent_acts[4] = {0, 0, 0, 0};
    std::uint8_t act_count = 0;  // saturates at 4
    std::uint8_t act_pos = 0;    // oldest slot once saturated
    sim::Tick next_refresh_due = 0;
    bool refresh_pending = false;
  };
  std::vector<RankState> ranks_ MRMSIM_LANE_OWNED(role_);
  // snapshot-exempt(ablation toggle set before any run; results knob, not
  // evolving state)
  bool refresh_enabled_ MRMSIM_LANE_OWNED(role_) = true;
  // snapshot-exempt(derived from config at construction; never mutated)
  std::uint64_t rows_per_refresh_ MRMSIM_CONST_SHARED = 0;

  // Wake management: at most one outstanding wake event, retimed in place
  // when a nearer deadline appears.
  bool wake_scheduled_ MRMSIM_LANE_OWNED(role_) = false;
  sim::Tick wake_at_ MRMSIM_LANE_OWNED(role_) = 0;
  sim::EventId wake_event_ MRMSIM_LANE_OWNED(role_) = 0;

  ChannelStats stats_ MRMSIM_LANE_OWNED(role_);
  EnergyCounters energy_ MRMSIM_LANE_OWNED(role_);
  // Attachment pointer and owner callbacks: written only at setup while the
  // system is quiescent, invoked from whatever context drives the lane — so
  // they stay unguarded (see MemorySystem::observer_).
  // snapshot-exempt(attachment; the owner re-attaches observers on restore)
  CommandObserver* observer_ = nullptr;
  // snapshot-exempt(owner callback wiring; re-established at construction)
  std::function<void()> on_slot_free_;
  // snapshot-exempt(owner callback wiring; re-established at construction)
  std::function<void(const Request&)> on_request_complete_;
  // snapshot-exempt(owner callback wiring; re-established at construction)
  std::function<void(Request&&)> completion_sink_;
  // Data-completion ticks in schedule order (strictly increasing); the front
  // is popped as each completion event fires.
  SlidingQueue<sim::Tick> scheduled_completions_ MRMSIM_LANE_OWNED(role_);

 public:
  // Quiescent-state snapshot, the per-channel half of speculative rollback
  // (DESIGN.md §8, "Speculative horizons & rollback"). Only legal while
  // HasUnfinishedRequests() is false: the request pool, age/bank lists and
  // in-flight slab are then pure free-list structure, so the snapshot is the
  // bank/rank timing state, the accounting counters, and the free-chain
  // orders that keep future slot assignment deterministic across a rollback
  // + replay. The wake event itself lives in the owning lane simulator's
  // queue; Simulator::SaveState must be taken at the same instant so the
  // saved wake handle stays valid after both restores.
  struct SavedState {
    std::vector<Bank::SavedState> banks;
    std::vector<RankState> ranks;
    sim::Tick bus_free = 0;
    std::uint64_t next_age_seq = 0;
    std::vector<std::uint32_t> pool_free_order;      // free_head_ chain, in order
    std::vector<std::uint32_t> inflight_free_order;  // inflight_free_ chain, in order
    std::size_t inflight_count = 0;                  // slab size at save time
    bool wake_scheduled = false;
    sim::Tick wake_at = 0;
    sim::EventId wake_event = 0;
    ChannelStats stats;
    EnergyCounters energy;
  };

  // Captures the controller's state into `out` (overwriting it). Dies unless
  // the controller is quiescent (no queued requests, no in-flight bursts).
  void SaveState(SavedState* out) const;

  // Restores the state captured by SaveState. The controller must again be
  // logically quiescent in the sense that every effect since the save is
  // being discarded wholesale (the caller rewinds the lane simulator's clock
  // and event queue in the same motion). Also accepts a freshly constructed
  // controller of the same configuration as the target (disk restore): the
  // in-flight slab is grown to the saved size if needed, and Bank state is
  // written field-wise so each bank keeps its own timings pointer.
  void RestoreState(const SavedState& saved);

  // --- durable (cross-process) restore support, DESIGN.md §13 -------------
  // The in-memory SavedState above keeps the wake EventId valid because the
  // lane simulator's queue is restored slot-for-slot. A disk restore instead
  // clears the queue and re-creates events: WakeSequence() reads the pending
  // wake's saved sequence number, and ReestablishWake() re-pushes the wake at
  // (wake_at_, that sequence) after Simulator::RestoreExecution, preserving
  // the exact pop order of the saved run.
  std::uint64_t WakeSequence() const;
  void ReestablishWake(std::uint64_t sequence);
};

}  // namespace mem
}  // namespace mrm

#endif  // MRMSIM_SRC_MEM_CONTROLLER_H_
