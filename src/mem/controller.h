// Per-channel memory controller: request queue, FR-FCFS/FCFS command
// scheduling, refresh engine, data-bus arbitration and energy accounting.
//
// The controller is event-driven: it wakes when a request arrives, when a
// timing constraint expires, or when a refresh comes due; each wake issues at
// most one command (one command-bus slot) and computes the next interesting
// tick, so simulated time advances without per-cycle polling.

#ifndef MRMSIM_SRC_MEM_CONTROLLER_H_
#define MRMSIM_SRC_MEM_CONTROLLER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/stats.h"
#include "src/mem/address_map.h"
#include "src/mem/bank.h"
#include "src/mem/device_config.h"
#include "src/mem/request.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace mem {

enum class SchedulerPolicy {
  kFcfs,    // strictly oldest-first
  kFrFcfs,  // row hits first, then oldest (default)
};

// Raw event counts the energy report is derived from.
struct EnergyCounters {
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t read_bits = 0;
  std::uint64_t write_bits = 0;
  std::uint64_t refresh_rows = 0;
};

struct EnergyReport {
  double activate_pj = 0.0;
  double read_pj = 0.0;
  double write_pj = 0.0;
  double io_pj = 0.0;
  double refresh_pj = 0.0;
  double background_pj = 0.0;
  double total_pj() const {
    return activate_pj + read_pj + write_pj + io_pj + refresh_pj + background_pj;
  }
};

struct ChannelStats {
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t refreshes = 0;
  Histogram read_latency_ns;
  Histogram write_latency_ns;
};

class ChannelController {
 public:
  // `config` and `map` must outlive the controller. `channel` is this
  // controller's index (addresses arriving here already target it).
  ChannelController(sim::Simulator* simulator, const DeviceConfig* config, const AddressMap* map,
                    int channel, SchedulerPolicy policy);

  ChannelController(const ChannelController&) = delete;
  ChannelController& operator=(const ChannelController&) = delete;

  // Accepts a request unless the queue is full.
  bool Enqueue(Request request);

  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t queue_capacity() const { return kQueueCapacity; }

  // Invoked after each request completes AND a queue slot freed; the memory
  // system uses it to drain its backlog.
  void set_on_slot_free(std::function<void()> callback) { on_slot_free_ = std::move(callback); }

  const ChannelStats& stats() const { return stats_; }
  const EnergyCounters& energy_counters() const { return energy_; }

  // Energy including background power integrated up to `now`.
  EnergyReport GetEnergyReport(sim::Tick now) const;

  // Disables the refresh engine (for no-refresh ablations).
  void DisableRefresh();

 private:
  static constexpr std::size_t kQueueCapacity = 64;

  struct Pending {
    Request request;
    Location location;
    // True when the controller had to ACT (or PRE+ACT) to serve this
    // request; drives row-hit/miss statistics.
    bool needed_activate = false;
  };

  void Wake();
  void ScheduleWakeAt(sim::Tick when);
  bool TryRefresh(sim::Tick now);
  bool TryRequests(sim::Tick now);
  bool TryIssueFor(Pending& pending, sim::Tick now, bool row_hit_only);
  void CompleteDataCommand(std::size_t queue_index, sim::Tick now);
  sim::Tick NextInterestingTick(sim::Tick now) const;
  sim::Tick EarliestActionFor(const Pending& pending) const;
  bool RankActAllowed(int rank, sim::Tick now) const;
  sim::Tick RankNextActTick(int rank) const;
  void RecordActivate(int rank, sim::Tick now);

  Bank& BankAt(const Location& location) {
    return banks_[static_cast<std::size_t>(
        location.FlatBank(config_->bank_groups, config_->banks_per_group))];
  }
  const Bank& BankAt(const Location& location) const {
    return banks_[static_cast<std::size_t>(
        location.FlatBank(config_->bank_groups, config_->banks_per_group))];
  }

  sim::Simulator* simulator_;
  const DeviceConfig* config_;
  const AddressMap* map_;
  int channel_;
  SchedulerPolicy policy_;
  TimingTicks ticks_;

  std::vector<Bank> banks_;
  std::deque<Pending> queue_;

  // Data bus: busy until this tick.
  sim::Tick bus_free_ = 0;

  // Per-rank activate bookkeeping (tRRD / tFAW) and refresh state.
  struct RankState {
    sim::Tick next_act = 0;               // tRRD gate
    std::deque<sim::Tick> recent_acts;    // for tFAW (keep last 4)
    sim::Tick next_refresh_due = 0;
    bool refresh_pending = false;
  };
  std::vector<RankState> ranks_;
  bool refresh_enabled_ = true;
  std::uint64_t rows_per_refresh_ = 0;

  // Wake management: at most one outstanding wake event.
  bool wake_scheduled_ = false;
  sim::Tick wake_at_ = 0;
  sim::EventId wake_event_ = 0;

  ChannelStats stats_;
  EnergyCounters energy_;
  std::function<void()> on_slot_free_;
};

}  // namespace mem
}  // namespace mrm

#endif  // MRMSIM_SRC_MEM_CONTROLLER_H_
