#include "src/mem/device_config.h"

#include "src/common/units.h"

namespace mrm {
namespace mem {

Status DeviceConfig::Validate() const {
  if (channels <= 0 || ranks <= 0 || bank_groups <= 0 || banks_per_group <= 0) {
    return Error(name + ": geometry counts must be positive");
  }
  if (rows_per_bank == 0 || row_bytes == 0 || access_bytes == 0) {
    return Error(name + ": sizes must be positive");
  }
  if (row_bytes % access_bytes != 0) {
    return Error(name + ": row_bytes must be a multiple of access_bytes");
  }
  if ((access_bytes & (access_bytes - 1)) != 0) {
    return Error(name + ": access_bytes must be a power of two");
  }
  if (timings.tck_ns <= 0.0 || timings.tburst_ns <= 0.0) {
    return Error(name + ": clock/burst timings must be positive");
  }
  if (timings.trcd_ns <= 0.0 || timings.trp_ns <= 0.0 || timings.tcas_ns <= 0.0 ||
      timings.tcwl_ns <= 0.0 || timings.tras_ns <= 0.0 || timings.trc_ns <= 0.0 ||
      timings.trrd_ns <= 0.0 || timings.tccd_ns <= 0.0 || timings.tfaw_ns <= 0.0 ||
      timings.twr_ns <= 0.0 || timings.trtp_ns <= 0.0) {
    return Error(name + ": command timings must be positive");
  }
  // Cross-field consistency: a row must stay open long enough to complete the
  // access that opened it, and the ACT-to-ACT cycle must cover open + close.
  // A config violating these would let the controller "legally" schedule
  // command sequences a real device rejects.
  if (timings.tras_ns < timings.trcd_ns + timings.tcas_ns) {
    return Error(name + ": tRAS must cover tRCD + tCAS (row open through first read)");
  }
  if (timings.trc_ns < timings.tras_ns + timings.trp_ns) {
    return Error(name + ": tRC must cover tRAS + tRP (full activate cycle)");
  }
  if (needs_refresh && (timings.trefi_ns <= 0.0 || timings.trfc_ns <= 0.0)) {
    return Error(name + ": refresh timings must be positive when refresh is on");
  }
  if (needs_refresh && timings.trefi_ns < timings.trfc_ns) {
    return Error(name + ": tREFI below tRFC leaves no time between refreshes");
  }
  if (fabric_latency_ns < 0.0) {
    return Error(name + ": fabric latency must be non-negative");
  }
  return Status::Ok();
}

DeviceConfig HBM3Config() {
  DeviceConfig config;
  config.name = "HBM3";
  config.tech = cell::Technology::kHbm;
  config.channels = 16;
  config.ranks = 1;
  config.bank_groups = 4;
  config.banks_per_group = 4;
  config.rows_per_bank = 1 << 15;     // 32768 rows
  config.row_bytes = 1024;
  config.access_bytes = 64;           // 64B burst per channel
  // 16 GiB stack: 16 ch * 16 banks * 32768 rows * 1 KiB = 8 GiB; double rows.
  config.rows_per_bank = 1 << 16;     // -> 16 GiB
  config.timings.tck_ns = 0.625;      // 1.6 GHz controller clock
  config.timings.trcd_ns = 14.0;
  config.timings.trp_ns = 14.0;
  config.timings.tcas_ns = 14.0;
  config.timings.tcwl_ns = 10.0;
  config.timings.tras_ns = 28.0;
  config.timings.trc_ns = 42.0;
  config.timings.trrd_ns = 4.0;
  config.timings.tccd_ns = 1.25;
  config.timings.tburst_ns = 1.25;    // 64 B / 1.25 ns = 51.2 GB/s/channel
  config.timings.tfaw_ns = 12.0;
  config.timings.twr_ns = 14.0;
  config.timings.trtp_ns = 6.0;
  config.timings.trfc_ns = 260.0;
  config.timings.trefi_ns = 3900.0;
  config.energy.act_pre_pj = 230.0;
  config.energy.read_pj_per_bit = 1.1;
  config.energy.write_pj_per_bit = 1.1;
  config.energy.io_pj_per_bit = 2.4;  // TSV + interposer PHY
  config.energy.refresh_pj_per_row = 230.0;
  config.energy.background_mw_per_bank = 1.2;
  config.needs_refresh = true;
  return config;
}

DeviceConfig HBM3EConfig() {
  DeviceConfig config = HBM3Config();
  config.name = "HBM3e";
  config.rows_per_bank = 3ull << 15;  // +50% capacity -> 24 GiB
  config.timings.tburst_ns = 0.833;   // 64 B / 0.833 ns = 76.8 GB/s/channel
  config.timings.tccd_ns = 0.833;
  config.timings.tck_ns = 0.5;
  config.energy.io_pj_per_bit = 2.2;
  return config;
}

DeviceConfig LPDDR5XConfig() {
  DeviceConfig config;
  config.name = "LPDDR5X";
  config.tech = cell::Technology::kLpddr;
  config.channels = 4;
  config.ranks = 1;
  config.bank_groups = 4;
  config.banks_per_group = 4;
  config.rows_per_bank = 1 << 16;
  config.row_bytes = 2048;
  config.access_bytes = 64;           // 16-bit channel, BL32
  config.timings.tck_ns = 1.25;
  config.timings.trcd_ns = 18.0;
  config.timings.trp_ns = 18.0;
  config.timings.tcas_ns = 17.0;
  config.timings.tcwl_ns = 9.0;
  config.timings.tras_ns = 42.0;
  config.timings.trc_ns = 60.0;
  config.timings.trrd_ns = 7.5;
  config.timings.tccd_ns = 3.75;
  config.timings.tburst_ns = 3.75;    // 64 B / 3.75 ns = 17 GB/s/channel
  config.timings.tfaw_ns = 30.0;
  config.timings.twr_ns = 18.0;
  config.timings.trtp_ns = 7.5;
  config.timings.trfc_ns = 280.0;
  config.timings.trefi_ns = 3900.0;
  config.energy.act_pre_pj = 160.0;
  config.energy.read_pj_per_bit = 0.6;
  config.energy.write_pj_per_bit = 0.6;
  config.energy.io_pj_per_bit = 0.35;  // short, low-swing interface
  config.energy.refresh_pj_per_row = 160.0;
  config.energy.background_mw_per_bank = 0.25;
  config.needs_refresh = true;
  return config;
}

DeviceConfig DDR5Config() {
  DeviceConfig config;
  config.name = "DDR5";
  config.tech = cell::Technology::kDram;
  config.channels = 2;                // one DIMM = 2 independent 32-bit channels
  config.ranks = 2;
  config.bank_groups = 8;
  config.banks_per_group = 4;
  config.rows_per_bank = 1 << 16;
  config.row_bytes = 1024;
  config.access_bytes = 64;
  config.timings.tck_ns = 0.416;      // DDR5-4800
  config.timings.trcd_ns = 16.0;
  config.timings.trp_ns = 16.0;
  config.timings.tcas_ns = 16.0;
  config.timings.tcwl_ns = 14.0;
  config.timings.tras_ns = 32.0;
  config.timings.trc_ns = 48.0;
  config.timings.trrd_ns = 5.0;
  config.timings.tccd_ns = 3.33;
  config.timings.tburst_ns = 3.33;    // 64 B / 3.33 ns = 19.2 GB/s/channel
  config.timings.tfaw_ns = 13.3;
  config.timings.twr_ns = 30.0;
  config.timings.trtp_ns = 7.5;
  config.timings.trfc_ns = 295.0;
  config.timings.trefi_ns = 3900.0;
  config.energy.act_pre_pj = 190.0;
  config.energy.read_pj_per_bit = 1.2;
  config.energy.write_pj_per_bit = 1.2;
  config.energy.io_pj_per_bit = 4.5;  // long PCB traces
  config.energy.refresh_pj_per_row = 190.0;
  config.energy.background_mw_per_bank = 0.8;
  config.needs_refresh = true;
  return config;
}

DeviceConfig HBM2EConfig() {
  DeviceConfig config = HBM3Config();
  config.name = "HBM2e";
  config.channels = 8;                // 8 x 128-bit channels
  config.rows_per_bank = 1 << 16;     // 16 GiB at 8 ch x 16 banks
  config.rows_per_bank = 1 << 17;
  config.timings.tck_ns = 0.875;
  config.timings.tburst_ns = 2.22;    // 64 B / 2.22 ns = 28.8 GB/s/channel
  config.timings.tccd_ns = 2.22;
  config.energy.io_pj_per_bit = 2.8;
  return config;
}

DeviceConfig GDDR6Config() {
  DeviceConfig config;
  config.name = "GDDR6";
  config.tech = cell::Technology::kDram;
  config.channels = 2;                // two 16-bit channels per device
  config.ranks = 1;
  config.bank_groups = 4;
  config.banks_per_group = 4;
  config.rows_per_bank = 1 << 14;
  config.row_bytes = 2048;
  config.access_bytes = 64;
  config.timings.tck_ns = 0.5;
  config.timings.trcd_ns = 14.0;
  config.timings.trp_ns = 14.0;
  config.timings.tcas_ns = 14.0;
  config.timings.tcwl_ns = 10.0;
  config.timings.tras_ns = 28.0;
  config.timings.trc_ns = 42.0;
  config.timings.trrd_ns = 5.0;
  config.timings.tccd_ns = 2.0;
  config.timings.tburst_ns = 2.0;     // 64 B / 2 ns = 32 GB/s/channel
  config.timings.tfaw_ns = 20.0;
  config.timings.twr_ns = 15.0;
  config.timings.trtp_ns = 7.5;
  config.timings.trfc_ns = 260.0;
  config.timings.trefi_ns = 3900.0;
  config.energy.act_pre_pj = 200.0;
  config.energy.read_pj_per_bit = 1.3;
  config.energy.write_pj_per_bit = 1.3;
  config.energy.io_pj_per_bit = 6.0;  // high-swing GDDR PHY
  config.energy.refresh_pj_per_row = 200.0;
  config.energy.background_mw_per_bank = 0.9;
  config.needs_refresh = true;
  return config;
}

Result<DeviceConfig> DeviceConfigByName(const std::string& name) {
  if (name == "hbm2e") {
    return HBM2EConfig();
  }
  if (name == "gddr6") {
    return GDDR6Config();
  }
  if (name == "hbm3") {
    return HBM3Config();
  }
  if (name == "hbm3e") {
    return HBM3EConfig();
  }
  if (name == "lpddr5x") {
    return LPDDR5XConfig();
  }
  if (name == "ddr5") {
    return DDR5Config();
  }
  return Error("unknown device preset: '" + name + "'");
}

}  // namespace mem
}  // namespace mrm
