// Device geometry + timing + energy presets for the cycle-level simulator.
//
// Ownership (DESIGN.md §12): a DeviceConfig is immutable once a MemorySystem
// is built on it (CONST_SHARED) — controllers on every lane read it
// concurrently through borrowed const pointers.
//
// Presets model one *device* (an HBM stack, an LPDDR package, a DDR5 DIMM);
// a MemorySystem instantiates one controller per channel and interleaves
// addresses across them.

#ifndef MRMSIM_SRC_MEM_DEVICE_CONFIG_H_
#define MRMSIM_SRC_MEM_DEVICE_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/cell/technology.h"
#include "src/common/result.h"
#include "src/mem/timing.h"

namespace mrm {
namespace mem {

struct DeviceConfig {
  std::string name;
  cell::Technology tech = cell::Technology::kDram;

  // Geometry.
  int channels = 8;
  int ranks = 1;
  int bank_groups = 4;
  int banks_per_group = 4;
  std::uint64_t rows_per_bank = 1 << 16;
  std::uint32_t row_bytes = 1024;    // row buffer (page) size
  std::uint32_t access_bytes = 64;   // one column access (burst) transfers this

  // Peak per-channel data rate implied by tburst: access_bytes / tburst.
  Timings timings;
  EnergyParams energy;

  bool needs_refresh = true;

  // One-way latency of the front-end fabric between the host-facing port and
  // a channel controller (request routing in, completion notification out).
  // Physically this is the PHY + on-die interconnect hop; in the simulator it
  // is also the cross-channel lookahead that lets channels execute in
  // parallel epochs (DESIGN.md §8). Rounded up to at least one tick.
  double fabric_latency_ns = 4.0;

  // Derived quantities.
  int banks_per_rank() const { return bank_groups * banks_per_group; }
  int total_banks() const { return channels * ranks * banks_per_rank(); }
  std::uint64_t bytes_per_bank() const { return rows_per_bank * row_bytes; }
  std::uint64_t capacity_bytes() const {
    return static_cast<std::uint64_t>(total_banks()) * bytes_per_bank();
  }
  std::uint64_t columns_per_row() const { return row_bytes / access_bytes; }
  // Peak bandwidth in bytes/second (all channels).
  double peak_bandwidth_bytes_per_s() const {
    return static_cast<double>(channels) * access_bytes / (timings.tburst_ns * 1e-9);
  }

  // Sanity checks; returns an error describing the first violated invariant.
  Status Validate() const;
};

// Built-in presets. Geometry/timing/energy values are representative of the
// public specs for each class (see DESIGN.md §5); capacity is scaled to a
// single device/stack.
DeviceConfig HBM2EConfig();   // ~460 GB/s stack, 16 GiB (previous gen)
DeviceConfig HBM3Config();    // ~819 GB/s stack, 16 GiB
DeviceConfig HBM3EConfig();   // ~1.2 TB/s stack, 24 GiB
DeviceConfig LPDDR5XConfig(); // ~68 GB/s package, 16 GiB
DeviceConfig DDR5Config();    // ~38 GB/s DIMM-channel pair, 32 GiB
DeviceConfig GDDR6Config();   // ~64 GB/s per device, 2 GiB (graphics class)

// Looks a preset up by name ("hbm2e", "hbm3", "hbm3e", "lpddr5x", "ddr5",
// "gddr6").
Result<DeviceConfig> DeviceConfigByName(const std::string& name);

}  // namespace mem
}  // namespace mrm

#endif  // MRMSIM_SRC_MEM_DEVICE_CONFIG_H_
