#include "src/mem/flash.h"

#include <algorithm>
#include <limits>

#include "src/common/logging.h"

namespace mrm {
namespace mem {
namespace {

constexpr std::uint32_t kNoBlock = ~std::uint32_t{0};

}  // namespace

FlashDevice::FlashDevice(const FlashConfig& config) : config_(config) {
  MRM_CHECK(config_.blocks >= 8) << "flash needs at least 8 blocks";
  MRM_CHECK(config_.overprovision > 0.0 && config_.overprovision < 0.5);
  blocks_.resize(config_.blocks);
  for (auto& block : blocks_) {
    block.page_lpn.assign(config_.pages_per_block, kUnmapped);
    block.valid.assign(config_.pages_per_block, false);
  }
  l2p_.assign(config_.logical_pages(), kUnmapped);
  // All blocks start free except the first, which becomes the active block.
  for (std::uint32_t b = config_.blocks; b > 1; --b) {
    free_blocks_.push_back(b - 1);
  }
  active_block_ = 0;
}

Status FlashDevice::WritePage(std::uint64_t logical_page) {
  if (logical_page >= l2p_.size()) {
    return Error("logical page out of range");
  }
  if (worn_out_) {
    return Error("device worn out");
  }
  // Invalidate the previous copy.
  const std::uint64_t old_ppn = l2p_[logical_page];
  if (old_ppn != kUnmapped) {
    Block& old_block = blocks_[old_ppn / config_.pages_per_block];
    const std::uint32_t page = static_cast<std::uint32_t>(old_ppn % config_.pages_per_block);
    if (old_block.valid[page]) {
      old_block.valid[page] = false;
      --old_block.valid_count;
    }
  }
  ++stats_.host_page_writes;
  const Status programmed = ProgramInto(logical_page);
  if (!programmed.ok()) {
    return programmed;
  }
  RunGcIfNeeded();
  return Status::Ok();
}

Status FlashDevice::ProgramInto(std::uint64_t logical_page) {
  Block* active = &blocks_[active_block_];
  if (active->write_pointer >= config_.pages_per_block) {
    if (free_blocks_.empty()) {
      return Error("no free blocks (GC cannot keep up)");
    }
    OpenNewActiveBlock();
    active = &blocks_[active_block_];
  }
  const std::uint32_t page = active->write_pointer++;
  active->page_lpn[page] = logical_page;
  active->valid[page] = true;
  ++active->valid_count;
  l2p_[logical_page] =
      static_cast<std::uint64_t>(active_block_) * config_.pages_per_block + page;
  ++stats_.nand_page_writes;
  stats_.busy_time_s += config_.program_latency_us * 1e-6;
  stats_.energy_pj += static_cast<double>(config_.page_bytes) * 8.0 * config_.program_pj_per_bit;
  return Status::Ok();
}

Status FlashDevice::ReadPage(std::uint64_t logical_page) {
  if (logical_page >= l2p_.size()) {
    return Error("logical page out of range");
  }
  if (l2p_[logical_page] == kUnmapped) {
    return Error("page never written");
  }
  ++stats_.host_page_reads;
  stats_.busy_time_s += config_.read_latency_us * 1e-6;
  stats_.energy_pj += static_cast<double>(config_.page_bytes) * 8.0 * config_.read_pj_per_bit;
  return Status::Ok();
}

void FlashDevice::TrimPage(std::uint64_t logical_page) {
  if (logical_page >= l2p_.size() || l2p_[logical_page] == kUnmapped) {
    return;
  }
  const std::uint64_t ppn = l2p_[logical_page];
  Block& block = blocks_[ppn / config_.pages_per_block];
  const std::uint32_t page = static_cast<std::uint32_t>(ppn % config_.pages_per_block);
  if (block.valid[page]) {
    block.valid[page] = false;
    --block.valid_count;
  }
  l2p_[logical_page] = kUnmapped;
}

void FlashDevice::OpenNewActiveBlock() {
  MRM_CHECK(!free_blocks_.empty()) << "flash out of free blocks";
  active_block_ = free_blocks_.back();
  free_blocks_.pop_back();
}

std::uint32_t FlashDevice::PickGcVictim() const {
  // Greedy: the sealed block with the fewest valid pages. Skips the active
  // block and free blocks.
  std::uint32_t victim = kNoBlock;
  std::uint32_t best_valid = std::numeric_limits<std::uint32_t>::max();
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    if (b == active_block_) {
      continue;
    }
    const Block& block = blocks_[b];
    if (block.write_pointer < config_.pages_per_block) {
      continue;  // not sealed (free or partially written non-active)
    }
    if (block.valid_count < best_valid) {
      best_valid = block.valid_count;
      victim = b;
    }
  }
  return victim;
}

void FlashDevice::RunStaticWearLeveling() {
  if (config_.wear_level_threshold == 0 || free_blocks_.empty()) {
    return;
  }
  // Find the most-worn and least-worn sealed blocks.
  std::uint32_t hot = kNoBlock;
  std::uint32_t cold = kNoBlock;
  for (std::uint32_t b = 0; b < blocks_.size(); ++b) {
    if (b == active_block_) {
      continue;
    }
    const Block& block = blocks_[b];
    if (hot == kNoBlock || block.erase_count > blocks_[hot].erase_count) {
      hot = b;
    }
    // Cold candidate: sealed, holds valid data (that data pins the block).
    if (block.write_pointer == config_.pages_per_block && block.valid_count > 0 &&
        (cold == kNoBlock || block.erase_count < blocks_[cold].erase_count)) {
      cold = b;
    }
  }
  if (hot == kNoBlock || cold == kNoBlock || hot == cold) {
    return;
  }
  if (blocks_[hot].erase_count - blocks_[cold].erase_count <
      config_.wear_level_threshold) {
    return;
  }
  // Relocate the cold block's valid pages so the low-wear block rejoins the
  // free pool and can absorb future (hot) writes.
  Block& victim = blocks_[cold];
  for (std::uint32_t page = 0; page < config_.pages_per_block; ++page) {
    if (!victim.valid[page]) {
      continue;
    }
    const std::uint64_t lpn = victim.page_lpn[page];
    victim.valid[page] = false;
    --victim.valid_count;
    ++stats_.gc_relocations;
    if (!ProgramInto(lpn).ok()) {
      worn_out_ = true;
      return;
    }
  }
  EraseBlock(cold);
  free_blocks_.push_back(cold);
  ++stats_.wear_level_swaps;
}

void FlashDevice::RunGcIfNeeded() {
  RunStaticWearLeveling();
  while (free_blocks_.size() < config_.gc_free_threshold && !worn_out_) {
    const std::uint32_t victim_index = PickGcVictim();
    if (victim_index == kNoBlock) {
      return;
    }
    Block& victim = blocks_[victim_index];
    // Relocate valid pages into the active block.
    for (std::uint32_t page = 0; page < config_.pages_per_block; ++page) {
      if (!victim.valid[page]) {
        continue;
      }
      const std::uint64_t lpn = victim.page_lpn[page];
      victim.valid[page] = false;
      --victim.valid_count;
      ++stats_.gc_relocations;
      const Status moved = ProgramInto(lpn);
      if (!moved.ok()) {
        worn_out_ = true;
        return;
      }
    }
    EraseBlock(victim_index);
    free_blocks_.push_back(victim_index);
  }
}

void FlashDevice::EraseBlock(std::uint32_t block_index) {
  Block& block = blocks_[block_index];
  block.page_lpn.assign(config_.pages_per_block, kUnmapped);
  block.valid.assign(config_.pages_per_block, false);
  block.write_pointer = 0;
  block.valid_count = 0;
  ++block.erase_count;
  ++stats_.erases;
  stats_.busy_time_s += config_.erase_latency_ms * 1e-3;
  stats_.energy_pj += config_.erase_nj_per_block * 1e3;  // nJ -> pJ
  if (static_cast<double>(block.erase_count) > config_.pe_endurance) {
    worn_out_ = true;
  }
}

double FlashDevice::max_block_wear() const {
  std::uint32_t max_wear = 0;
  for (const auto& block : blocks_) {
    max_wear = std::max(max_wear, block.erase_count);
  }
  return static_cast<double>(max_wear);
}

double FlashDevice::mean_block_wear() const {
  double total = 0.0;
  for (const auto& block : blocks_) {
    total += block.erase_count;
  }
  return total / static_cast<double>(blocks_.size());
}

}  // namespace mem
}  // namespace mrm
