// NAND flash device with a log-structured FTL (page mapping, greedy garbage
// collection, optional static wear levelling).
//
// Ownership (DESIGN.md §12): single-context — a FlashDevice is driven
// entirely by the one thread running its owning simulator (bench_e6 uses the
// serial executive); it never participates in the hub/lane split.
//
// Purpose in this repro: quantify the housekeeping cost the paper attributes
// to retention/lifetime mismatch (§3): flash pays erase cycles, GC write
// amplification and wear-levelling traffic because its cells retain for 10+
// years while the data (KV cache) lives for minutes — exactly the overhead
// MRM's retention-matching removes. Used by bench_e6_housekeeping.

#ifndef MRMSIM_SRC_MEM_FLASH_H_
#define MRMSIM_SRC_MEM_FLASH_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"

namespace mrm {
namespace mem {

struct FlashConfig {
  std::uint32_t page_bytes = 16 * 1024;
  std::uint32_t pages_per_block = 256;
  std::uint32_t blocks = 1024;           // physical blocks
  double overprovision = 0.07;           // fraction of blocks hidden from host
  std::uint32_t gc_free_threshold = 4;   // run GC below this many free blocks
  double pe_endurance = 100000.0;        // SLC-class P/E cycles
  // Static wear levelling: when the erase-count spread between the most and
  // least worn blocks exceeds this, relocate the coldest block's valid data
  // so its (cold) home can absorb hot writes. 0 disables.
  std::uint32_t wear_level_threshold = 0;

  // Latency (not simulated event-by-event; accumulated as busy time).
  double read_latency_us = 25.0;
  double program_latency_us = 200.0;
  double erase_latency_ms = 2.0;

  // Energy.
  double read_pj_per_bit = 0.05;
  double program_pj_per_bit = 0.25;
  double erase_nj_per_block = 2000.0;

  std::uint64_t physical_pages() const {
    return static_cast<std::uint64_t>(blocks) * pages_per_block;
  }
  std::uint64_t logical_pages() const {
    return static_cast<std::uint64_t>(static_cast<double>(physical_pages()) *
                                      (1.0 - overprovision));
  }
  std::uint64_t logical_bytes() const { return logical_pages() * page_bytes; }
};

struct FlashStats {
  std::uint64_t host_page_writes = 0;
  std::uint64_t nand_page_writes = 0;  // host + GC relocations
  std::uint64_t gc_relocations = 0;
  std::uint64_t erases = 0;
  std::uint64_t host_page_reads = 0;
  std::uint64_t wear_level_swaps = 0;
  double busy_time_s = 0.0;
  double energy_pj = 0.0;

  double write_amplification() const {
    return host_page_writes == 0
               ? 1.0
               : static_cast<double>(nand_page_writes) / static_cast<double>(host_page_writes);
  }
};

class FlashDevice {
 public:
  explicit FlashDevice(const FlashConfig& config);

  // Writes one logical page (log-structured; old copy invalidated).
  Status WritePage(std::uint64_t logical_page);

  // Reads one logical page; error when never written.
  Status ReadPage(std::uint64_t logical_page);

  // Marks a logical page as deleted (TRIM); frees GC pressure.
  void TrimPage(std::uint64_t logical_page);

  const FlashConfig& config() const { return config_; }
  const FlashStats& stats() const { return stats_; }

  // Wear spread: max and mean erase counts across blocks.
  double max_block_wear() const;
  double mean_block_wear() const;

  // True when any block has exceeded its P/E endurance.
  bool worn_out() const { return worn_out_; }

 private:
  static constexpr std::uint64_t kUnmapped = ~std::uint64_t{0};

  struct Block {
    std::vector<std::uint64_t> page_lpn;  // lpn of each physical page, kUnmapped if free/invalid
    std::vector<bool> valid;
    std::uint32_t write_pointer = 0;      // next free page index
    std::uint32_t valid_count = 0;
    std::uint32_t erase_count = 0;
  };

  Status ProgramInto(std::uint64_t logical_page);
  void RunGcIfNeeded();
  void RunStaticWearLeveling();
  void EraseBlock(std::uint32_t block_index);
  std::uint32_t PickGcVictim() const;
  void OpenNewActiveBlock();

  FlashConfig config_;
  FlashStats stats_;
  std::vector<Block> blocks_;
  std::vector<std::uint64_t> l2p_;        // logical page -> physical page id
  std::vector<std::uint32_t> free_blocks_;
  std::uint32_t active_block_ = 0;
  bool worn_out_ = false;
};

}  // namespace mem
}  // namespace mrm

#endif  // MRMSIM_SRC_MEM_FLASH_H_
