#include "src/mem/memory_system.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/logging.h"

namespace mrm {
namespace mem {
namespace {

// Same rounding convention as the controller's timing conversion: round the
// nanosecond latency up to whole ticks, never below one tick (a zero-tick
// fabric would collapse the epoch lookahead).
sim::Tick FabricTicks(double ns, const sim::Simulator& simulator) {
  const double ticks = ns * 1e-9 * simulator.ticks_per_second();
  const auto rounded = static_cast<sim::Tick>(std::ceil(ticks - 1e-9));
  return std::max<sim::Tick>(rounded, 1);
}

}  // namespace

MemorySystem::MemorySystem(sim::Simulator* simulator, DeviceConfig config, SchedulerPolicy policy,
                           AddressMapPolicy map_policy)
    : simulator_(simulator), config_(std::move(config)), map_(config_, map_policy) {
  const Status valid = config_.Validate();
  MRM_CHECK(valid.ok()) << valid.message();
  fabric_ticks_ = FabricTicks(config_.fabric_latency_ns, *simulator_);
  lanes_.resize(static_cast<std::size_t>(config_.channels));
  for (int c = 0; c < config_.channels; ++c) {
    Lane& lane = lanes_[static_cast<std::size_t>(c)];
    lane.role.Held();  // construction: no other thread exists yet
    lane.sim = std::make_unique<sim::Simulator>(simulator_->ticks_per_second());
    lane.controller =
        std::make_unique<ChannelController>(lane.sim.get(), &config_, &map_, c, policy);
    lane.controller->set_on_slot_free([this, c] { DrainBacklog(c); });
    // Completions leave the lane as records; the hub applies their callbacks
    // one fabric hop later in deterministic order. A replay after rollback
    // re-completes requests whose records the hub consumed before the
    // rollback — those duplicates are swallowed here (their hub-side effects
    // already stand; see DESIGN.md §8, "Speculative horizons & rollback").
    lane.controller->set_completion_sink([this, c](Request&& request) {
      Lane& owner = lanes_[static_cast<std::size_t>(c)];
      // The sink fires from the owning lane's controller — lane context (or
      // the serial hub replaying/rolling the lane while workers are parked).
      owner.role.Held();
      const sim::Tick effect = sim::TickAdd(request.complete_tick, fabric_ticks_);
      if (owner.spec.suppress_remaining > 0) {
        --owner.spec.suppress_remaining;
        ++owner.spec.suppressed;
        if constexpr (kCheckedHooks) {
          MRM_CHECK(!owner.spec.suppress_keys.empty())
              << "record suppression with no recorded consumed key";
          const RecordKey& key = owner.spec.suppress_keys.front();
          MRM_CHECK(key.effect_tick == effect && key.request_id == request.id)
              << "replayed record (" << effect << ", " << request.id
              << ") does not match the hub-consumed record (" << key.effect_tick << ", "
              << key.request_id << ")";
          owner.spec.suppress_keys.pop_front();
          if (observer_ != nullptr) {
            observer_->OnRecordSuppressed(c, effect, request.id);
          }
        }
        return;
      }
      owner.records.push_back({effect, std::move(request)});
    });
  }
  simulator_->RegisterEpochDomain(this);
}

MemorySystem::~MemorySystem() { simulator_->UnregisterEpochDomain(this); }

void MemorySystem::Enqueue(Request request) {
  // Front-door entry: always hub context (drivers between Run spans, or a
  // completion callback the hub is processing).
  tsa::hub_role.Held();
  request.id = next_request_id_++;
  ++inflight_requests_;
  // Transient channel stall (fault path): the request is held at the fabric
  // entrance and routed stall_ticks_ later. The delayed Route() still runs
  // on the hub at a later hub time, so per-lane arrivals stay tick-sorted
  // and the epoch schedule — hence determinism — is untouched. The decision
  // is a keyed roll on the (unique) request id: identical at any thread
  // count and any call order.
  if (injector_ != nullptr && injector_->config().enabled() &&
      injector_->RollStall(request.id)) {
    ++injected_stalls_;
    const std::uint64_t id = request.id;
    simulator_->ScheduleAfter(stall_ticks_,
                              [this, id, request = std::move(request)]() mutable {
                                tsa::hub_role.Held();  // hub event callback
                                injector_->ResolveStall(id);
                                Route(std::move(request));
                              });
    return;
  }
  Route(std::move(request));
}

void MemorySystem::SetFaultInjector(fault::FaultInjector* injector) {
  injector_ = injector;
  if (injector_ != nullptr) {
    stall_ticks_ = FabricTicks(injector_->config().channel_stall_ns, *simulator_);
    drop_retry_ticks_ = FabricTicks(injector_->config().completion_retry_ns, *simulator_);
  }
}

void MemorySystem::Route(Request request) {
  // Hub context; while it runs, every lane is parked, so the hub may touch
  // the target lane's arrival queue and speculation state.
  tsa::hub_role.Held();
  MRM_CHECK(request.addr + request.size <= config_.capacity_bytes())
      << "address out of range: " << request.addr;
  const Location location = map_.Decode(request.addr);
  Lane& lane = lanes_[static_cast<std::size_t>(location.channel)];
  lane.role.Held();
  // Hub time only moves forward, so per-lane arrivals stay tick-sorted.
  const sim::Tick arrival_tick = sim::TickAdd(simulator_->now(), fabric_ticks_);
  if constexpr (kCheckedHooks) {
    if (observer_ != nullptr) {
      observer_->OnRouted(location.channel, simulator_->now(), arrival_tick);
    }
  }
  // Conflict: the arrival lands at or inside the lane's speculated span (the
  // lane optimistically executed past this tick). Roll the lane back to its
  // committed snapshot first; the replay then admits this arrival in its
  // correct place. Pushing after the rollback keeps the queue tick-sorted:
  // every restored arrival was routed at an earlier hub time.
  if (lane.spec.speculating && arrival_tick <= lane.sim->now() && !test_ignore_conflict_) {
    RollbackLane(location.channel, arrival_tick);
  }
  lane.arrivals.push_back({arrival_tick, std::move(request), location});
  work_next_cache_ = std::min(work_next_cache_, arrival_tick);
}

void MemorySystem::DrainBacklog(int channel) {
  // Fired by the channel's own controller when a queue slot frees: whichever
  // context is executing this lane owns it — never another lane, never the
  // hub mid-epoch.
  Lane& lane = lanes_[static_cast<std::size_t>(channel)];
  lane.role.Held();
  while (!lane.backlog.empty()) {
    Backlogged& entry = lane.backlog.front();
    if (!lane.controller->Enqueue(entry.request, entry.location)) {
      break;  // channel full again; wait for the next freed slot
    }
    lane.backlog.pop_front();
  }
}

void MemorySystem::Transfer(Request::Kind kind, std::uint64_t addr, std::uint64_t bytes,
                            std::uint32_t stream, std::function<void()> on_done,
                            std::size_t window) {
  MRM_CHECK(bytes > 0);
  auto transfer = std::make_shared<TransferState>();
  transfer->kind = kind;
  transfer->next_addr = addr;
  transfer->end_addr = addr + bytes;
  transfer->stream = stream;
  // Default window: enough outstanding accesses per channel to cover the
  // ACT+CAS latency pipeline plus the fabric round trip at full bus rate
  // (HBM3e needs ~35 in flight per channel for the command pipeline alone,
  // and the 2x fabric hop adds ~8 ns of latency to hide). Overflow beyond
  // the per-channel queue capacity parks in the backlog.
  transfer->window =
      window != 0 ? window : static_cast<std::size_t>(96 * config_.channels);
  transfer->on_done = std::move(on_done);
  PumpTransfer(transfer);
}

void MemorySystem::PumpTransfer(const std::shared_ptr<TransferState>& transfer) {
  while (transfer->next_addr < transfer->end_addr && transfer->in_flight < transfer->window) {
    const std::uint64_t remaining = transfer->end_addr - transfer->next_addr;
    // Respect access-granularity alignment: the first/last access may be
    // shorter than access_bytes.
    const std::uint64_t line = config_.access_bytes;
    const std::uint64_t offset_in_line = transfer->next_addr % line;
    const std::uint32_t size =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(line - offset_in_line, remaining));

    Request request;
    request.kind = transfer->kind;
    request.addr = transfer->next_addr;
    request.size = size;
    request.stream = transfer->stream;
    request.on_complete = [this, transfer](const Request&) {
      --transfer->in_flight;
      PumpTransfer(transfer);
    };
    transfer->next_addr += size;
    ++transfer->in_flight;
    Enqueue(std::move(request));
  }
  if (transfer->next_addr >= transfer->end_addr && transfer->in_flight == 0) {
    if (transfer->on_done) {
      // Fire exactly once.
      auto done = std::move(transfer->on_done);
      transfer->on_done = nullptr;
      done();
    }
  }
}

bool MemorySystem::Idle() const {
  tsa::hub_role.HeldShared();
  return inflight_requests_ == 0;
}

sim::Tick MemorySystem::LatestClock() const {
  sim::Tick now = simulator_->now();
  for (const Lane& lane : lanes_) {
    lane.role.HeldShared();  // caller runs between epochs; lanes are parked
    now = std::max(now, lane.sim->now());
  }
  return now;
}

// --- EpochDomain ----------------------------------------------------------

int MemorySystem::LaneCount() const { return config_.channels; }

sim::Tick MemorySystem::ArrivalDelay() const { return fabric_ticks_; }

sim::Tick MemorySystem::NextWorkTime() {
  tsa::hub_role.HeldShared();
  return work_next_cache_;
}

sim::Tick MemorySystem::NextRecordTime() const {
  tsa::hub_role.HeldShared();
  if (record_heap_.empty()) {
    return sim::kTickNever;
  }
  const Lane& lane = lanes_[static_cast<std::size_t>(record_heap_.front())];
  lane.role.HeldShared();  // sealed records are stable while the hub looks
  return lane.records.front().effect_tick;
}

sim::Tick MemorySystem::EarliestCompletionEffect(sim::Tick from) const {
  tsa::hub_role.HeldShared();
  sim::Tick earliest = sim::kTickNever;
  for (const Lane& lane : lanes_) {
    lane.role.HeldShared();  // horizon derivation: lanes parked at the barrier
    if (!lane.controller->HasUnfinishedRequests() && lane.backlog.empty() &&
        lane.arrivals.empty()) {
      continue;
    }
    // Either a data burst already on the wire completes (ring front), or a
    // not-yet-issued command — which cannot issue before `from` — takes at
    // least the minimum command latency.
    earliest = std::min(earliest, lane.controller->NextScheduledCompletion());
    earliest =
        std::min(earliest, sim::TickAdd(from, lane.controller->MinCommandLatencyTicks()));
  }
  return sim::TickAdd(earliest, fabric_ticks_);
}

std::uint64_t MemorySystem::RunLane(int lane_index, sim::Tick horizon) {
  return RunLaneTo(lane_index, horizon, /*speculative=*/false);
}

std::uint64_t MemorySystem::RunLaneTo(int lane_index, sim::Tick horizon, bool speculative) {
  // Lane context: exactly one thread drives this lane for the epoch. No
  // hub-shared state may be touched here — claiming tsa::hub_role in this
  // call tree would be a protocol violation, and omitting it makes any
  // hub-shared access below fail -Werror=thread-safety.
  Lane& lane = lanes_[static_cast<std::size_t>(lane_index)];
  lane.role.Held();
  std::uint64_t executed = 0;
  for (;;) {
    const sim::Tick arrival =
        lane.arrivals.empty() ? sim::kTickNever : lane.arrivals.front().tick;
    const sim::Tick event = lane.sim->NextEventTime();
    if (arrival <= event) {
      // Arrivals admit before lane events on tick ties: a request reaching
      // the controller at tick T is visible to the scheduling decision made
      // at T, exactly as in serial execution.
      if (arrival >= horizon) {
        break;
      }
      lane.sim->AdvanceTo(arrival);
      Arrival message = std::move(lane.arrivals.front());
      lane.arrivals.pop_front();
      if (speculative) {
        // Journal a pristine copy before admission mutates the request, so a
        // rollback can replay the exact arrival sequence.
        lane.spec.journal.push_back(message);
      }
      if constexpr (kCheckedHooks) {
        if (observer_ != nullptr) {
          if (speculative) {
            lane.spec.hook_buffer.push_back({{}, message.tick, horizon, false});
          } else {
            observer_->OnArrivalAdmitted(lane_index, message.tick, horizon);
          }
        }
      }
      if (!lane.controller->Enqueue(message.request, message.location)) {
        // Queue full. The backlog preserves arrival order: the controller
        // refuses new work whenever the backlog is non-empty (slots freed
        // drain the backlog first), so no later arrival can jump the line.
        lane.backlog.push_back({std::move(message.request), message.location});
      }
    } else {
      if (event >= horizon) {
        break;
      }
      lane.sim->ExecutePeeked(event);
      ++executed;
    }
  }
  return executed;
}

std::uint64_t MemorySystem::RunLaneSpeculative(int lane_index, sim::Tick horizon,
                                               sim::Tick spec_horizon) {
  Lane& lane = lanes_[static_cast<std::size_t>(lane_index)];
  lane.role.Held();  // lane context (see RunLaneTo)
  if (lane.spec.speculating && lane.sim->now() < horizon) {
    // The conservative horizon has passed the speculated frontier: any
    // not-yet-routed cross-shard effect lands at >= horizon, so nothing can
    // conflict with the span any more — it is now committed history.
    CommitLane(lane_index);
  }
  if (lane.spec.speculating) {
    // The frontier is still at/past the conservative horizon; keep extending
    // the open span under the same snapshot, but never past the limit frozen
    // at snapshot time — the span must stay one window deep so a rollback
    // replays a bounded amount of work.
    return RunLaneTo(lane_index, std::min(spec_horizon, lane.spec.limit), /*speculative=*/true);
  }
  if (spec_horizon > horizon && horizon > lane.spec.cooldown_until && lane.records.empty() &&
      lane.backlog.empty() && !lane.controller->HasUnfinishedRequests()) {
    // Quiescent at the epoch boundary (the snapshot is cheap: free-chain
    // orders plus counters, no live scheduling state) with pending work
    // inside the speculative window. Snapshot BEFORE admitting anything so
    // the span covers the whole epoch: the lane chews through entire
    // requests — hundreds of ticks of commands — instead of stopping at the
    // conservative horizon mid-request and waiting epochs for it to crawl
    // forward.
    const sim::Tick arrival =
        lane.arrivals.empty() ? sim::kTickNever : lane.arrivals.front().tick;
    if (std::min(arrival, lane.sim->NextEventTime()) < spec_horizon) {
      SnapshotLane(lane_index);
      lane.spec.limit = spec_horizon;
      return RunLaneTo(lane_index, spec_horizon, /*speculative=*/true);
    }
  }
  return RunLaneTo(lane_index, horizon, /*speculative=*/false);
}

void MemorySystem::SnapshotLane(int lane_index) {
  Lane& lane = lanes_[static_cast<std::size_t>(lane_index)];
  lane.role.Held();  // lane context
  LaneSpec& spec = lane.spec;
  lane.sim->SaveState(&spec.sim);
  lane.controller->SaveState(&spec.controller);
  spec.suppress_at_snap = spec.suppress_remaining;
  spec.journal.clear();
  spec.consumed_since_snap = 0;
  spec.speculating = true;
  if constexpr (kCheckedHooks) {
    spec.suppress_keys_at_snap = spec.suppress_keys;
    spec.consumed_keys.clear();
    spec.hook_buffer.clear();
    if (observer_ != nullptr) {
      lane.buffer_observer.buffer = &spec.hook_buffer;
      lane.controller->SetCommandObserver(&lane.buffer_observer);
    }
  }
}

void MemorySystem::CommitLane(int lane_index) {
  // Lane context, or the hub resolving an open span at run exit
  // (FinishSpeculation) — either way the caller owns the lane.
  Lane& lane = lanes_[static_cast<std::size_t>(lane_index)];
  lane.role.Held();
  LaneSpec& spec = lane.spec;
  MRM_CHECK(spec.speculating);
  spec.speculating = false;
  spec.cooldown_until = 0;  // conflicts stopped landing; speculate freely again
  spec.failures = 0;
  spec.journal.clear();
  spec.consumed_since_snap = 0;
  ++spec.commits;
  if constexpr (kCheckedHooks) {
    spec.consumed_keys.clear();
    spec.suppress_keys_at_snap.clear();
    if (observer_ != nullptr) {
      lane.controller->SetCommandObserver(observer_);
      // Flush the span's buffered hooks in order: the auditor sees the
      // committed history exactly as a conservative run would have.
      for (const BufferedHook& hook : spec.hook_buffer) {
        if (hook.is_command) {
          observer_->OnCommand(hook.command);
        } else {
          observer_->OnArrivalAdmitted(lane_index, hook.admit_tick, hook.horizon);
        }
      }
      spec.hook_buffer.clear();
    }
  }
}

void MemorySystem::RollbackLane(int lane_index, sim::Tick cooldown_until) {
  // Hub only (Route conflict / stop exit): rebuilds the lane's queues and
  // the global record heap, so it must never run while the lane executes.
  tsa::hub_role.Held();
  Lane& lane = lanes_[static_cast<std::size_t>(lane_index)];
  lane.role.Held();
  LaneSpec& spec = lane.spec;
  MRM_CHECK(spec.speculating);
  ++spec.rollbacks;
  spec.rolled_back_events += lane.sim->events_executed() - spec.sim.events_executed;
  if (cooldown_until > 0) {
    // Deterministic exponential backoff: each consecutive rollback pushes the
    // next speculation attempt further past the conflict point, in units of
    // the failed span's depth. A lane the workload keeps conflicting with
    // stops paying for optimism; one commit re-arms it.
    const sim::Tick depth = std::max<sim::Tick>(spec.limit - spec.sim.now, 1);
    const std::uint32_t shift = std::min<std::uint32_t>(spec.failures, 16);
    const sim::Tick backoff =
        depth > (sim::kTickNever >> shift) ? sim::kTickNever : depth << shift;
    spec.cooldown_until = sim::TickAdd(cooldown_until, backoff);
    ++spec.failures;
  }
  const bool had_records = !lane.records.empty();
  lane.records.clear();  // all speculative: the queue was empty at snapshot
  lane.sim->RestoreState(spec.sim);
  lane.controller->RestoreState(spec.controller);
  lane.backlog.clear();  // overflow from journaled admissions; replay re-derives it
  // Rebuild the arrival queue: journaled admissions (pristine copies, in
  // admission order) ahead of the never-admitted remainder — a prefix/suffix
  // split of one tick-sorted sequence, so the result is sorted too.
  arrival_scratch_.clear();
  for (Arrival& entry : spec.journal) {
    arrival_scratch_.push_back(std::move(entry));
  }
  for (Arrival& entry : lane.arrivals) {
    arrival_scratch_.push_back(std::move(entry));
  }
  spec.journal.clear();
  lane.arrivals.clear();
  for (Arrival& entry : arrival_scratch_) {
    lane.arrivals.push_back(std::move(entry));
  }
  arrival_scratch_.clear();
  spec.suppress_remaining = spec.suppress_at_snap + spec.consumed_since_snap;
  spec.consumed_since_snap = 0;
  spec.speculating = false;
  if constexpr (kCheckedHooks) {
    spec.hook_buffer.clear();  // discarded: the auditor never saw the span
    spec.suppress_keys = spec.suppress_keys_at_snap;
    for (const RecordKey& key : spec.consumed_keys) {
      spec.suppress_keys.push_back(key);
    }
    spec.consumed_keys.clear();
    spec.suppress_keys_at_snap.clear();
    if (observer_ != nullptr) {
      lane.controller->SetCommandObserver(observer_);
    }
  }
  if (had_records) {
    RebuildRecordHeap();
  }
  // The restored arrivals/events may precede the cached next-work time.
  if (!lane.arrivals.empty()) {
    work_next_cache_ = std::min(work_next_cache_, lane.arrivals.front().tick);
  }
  work_next_cache_ = std::min(work_next_cache_, lane.sim->NextEventTime());
}

void MemorySystem::FinishSpeculation(bool commit) {
  tsa::hub_role.Held();  // run-exit resolution: every worker has joined
  for (int c = 0; c < config_.channels; ++c) {
    Lane& lane = lanes_[static_cast<std::size_t>(c)];
    lane.role.Held();
    if (!lane.spec.speculating) {
      continue;
    }
    if (commit) {
      CommitLane(c);
    } else {
      RollbackLane(c, /*cooldown_until=*/0);
    }
  }
}

bool MemorySystem::RecordBefore(int lane_a, int lane_b) const {
  const Lane& la = lanes_[static_cast<std::size_t>(lane_a)];
  const Lane& lb = lanes_[static_cast<std::size_t>(lane_b)];
  la.role.HeldShared();
  lb.role.HeldShared();
  const Record& a = la.records.front();
  const Record& b = lb.records.front();
  if (a.effect_tick != b.effect_tick) {
    return a.effect_tick < b.effect_tick;
  }
  return a.request.id < b.request.id;
}

void MemorySystem::RecordHeapSift(std::size_t hole) {
  tsa::hub_role.Held();
  // Standard binary-heap sift-down over lane indices; the key of a lane is
  // its front record's (effect_tick, request id).
  const std::size_t size = record_heap_.size();
  for (;;) {
    const std::size_t left = 2 * hole + 1;
    if (left >= size) {
      return;
    }
    std::size_t best = left;
    const std::size_t right = left + 1;
    if (right < size && RecordBefore(record_heap_[right], record_heap_[left])) {
      best = right;
    }
    if (!RecordBefore(record_heap_[best], record_heap_[hole])) {
      return;
    }
    std::swap(record_heap_[hole], record_heap_[best]);
    hole = best;
  }
}

void MemorySystem::RebuildRecordHeap() {
  tsa::hub_role.Held();
  record_heap_.clear();
  for (int c = 0; c < config_.channels; ++c) {
    if (!lanes_[static_cast<std::size_t>(c)].records.empty()) {
      record_heap_.push_back(c);
    }
  }
  if (record_heap_.size() > 1) {
    for (std::size_t i = record_heap_.size() / 2; i-- > 0;) {
      RecordHeapSift(i);
    }
  }
}

void MemorySystem::SealEpoch() {
  // Records emitted during the epoch sit in their lane queues, already
  // sorted by effect tick (the channel bus serializes bursts). Re-key the
  // lane heap so the hub pops them globally by (effect_tick, request id) —
  // an order independent of how lanes were scheduled onto threads — and
  // refresh the work-time cache the epoch just invalidated.
  tsa::hub_role.Held();  // the serial epoch barrier
  RebuildRecordHeap();
  sim::Tick next = sim::kTickNever;
  for (Lane& lane : lanes_) {
    lane.role.HeldShared();  // lanes parked; the seal only reads their fronts
    if (!lane.arrivals.empty()) {
      next = std::min(next, lane.arrivals.front().tick);
    }
    next = std::min(next, lane.sim->NextEventTime());
  }
  work_next_cache_ = next;
}

void MemorySystem::ProcessOneRecord() {
  tsa::hub_role.Held();  // serial hub step
  const int channel = record_heap_.front();
  Lane& lane = lanes_[static_cast<std::size_t>(channel)];
  lane.role.Held();
  // Move the record out and fix the heap BEFORE running anything: the
  // completion callback may route new work and trigger a rollback — possibly
  // of this very lane — which clears the lane's record queue and rebuilds
  // the heap under us.
  Record record = std::move(lane.records.front());
  lane.records.pop_front();
  if (lane.records.empty()) {
    record_heap_.front() = record_heap_.back();
    record_heap_.pop_back();
  }
  if (record_heap_.size() > 1) {
    RecordHeapSift(0);
  }
  if (lane.spec.speculating) {
    // Consuming out of an open speculative span: if the span later rolls
    // back, the replay re-publishes this record bit-identically and the
    // completion sink must swallow the duplicate (its effects, applied
    // below, stand).
    ++lane.spec.consumed_since_snap;
    if constexpr (kCheckedHooks) {
      lane.spec.consumed_keys.push_back({record.effect_tick, record.request.id});
    }
  }
  if constexpr (kCheckedHooks) {
    if (observer_ != nullptr) {
      observer_->OnRecordProcessed(channel, record.effect_tick, record.request.id,
                                   simulator_->now());
    }
  }
  if (injector_ != nullptr && injector_->config().enabled() &&
      injector_->RollDrop(record.request.id)) {
    // Dropped completion (fault path): the record is still consumed at its
    // effect tick in the deterministic global order — only the callback
    // delivery is lost, re-delivered after the timeout. The request stays
    // in flight until then, so Idle() keeps waiting for it.
    ++dropped_completions_;
    const std::uint64_t id = record.request.id;
    simulator_->ScheduleAfter(drop_retry_ticks_,
                              [this, id, request = std::move(record.request)]() mutable {
                                tsa::hub_role.Held();  // hub event callback
                                injector_->ResolveDrop(id);
                                --inflight_requests_;
                                if (request.on_complete) {
                                  auto callback = std::move(request.on_complete);
                                  callback(request);
                                }
                              });
  } else {
    --inflight_requests_;
    if (record.request.on_complete) {
      // Move the callback out first: it may re-enter Enqueue/Transfer.
      auto callback = std::move(record.request.on_complete);
      callback(record.request);
    }
  }
}

// --------------------------------------------------------------------------

SystemStats MemorySystem::GetStats() const {
  tsa::hub_role.HeldShared();  // called between runs; everything is parked
  SystemStats total;
  total.injected_stalls = injected_stalls_;
  total.dropped_completions = dropped_completions_;
  // Background/refresh energy integrates to the latest clock in the system:
  // the hub may trail the lanes (it only advances on hub-side activity), and
  // every channel is charged over the same interval.
  sim::Tick now = simulator_->now();
  for (const Lane& lane : lanes_) {
    lane.role.HeldShared();
    now = std::max(now, lane.sim->now());
  }
  for (const Lane& lane : lanes_) {
    lane.role.HeldShared();
    const ChannelStats& cs = lane.controller->stats();
    total.reads_completed += cs.reads_completed;
    total.writes_completed += cs.writes_completed;
    total.bytes_read += cs.bytes_read;
    total.bytes_written += cs.bytes_written;
    total.row_hits += cs.row_hits;
    total.row_misses += cs.row_misses;
    total.refreshes += cs.refreshes;
    total.read_latency_ns.Merge(cs.read_latency_ns);
    total.write_latency_ns.Merge(cs.write_latency_ns);
    total.energy.Merge(lane.controller->GetEnergyReport(now));
  }
  return total;
}

SpecStats MemorySystem::GetSpecStats() const {
  SpecStats total;
  for (const Lane& lane : lanes_) {
    lane.role.HeldShared();  // called after the run quiesces
    total.rollbacks += lane.spec.rollbacks;
    total.rolled_back_events += lane.spec.rolled_back_events;
    total.spec_commits += lane.spec.commits;
    total.suppressed_records += lane.spec.suppressed;
  }
  return total;
}

void MemorySystem::SaveState(SavedState* out) const {
  tsa::hub_role.HeldShared();  // quiescent point: called between runs
  MRM_CHECK(inflight_requests_ == 0 && record_heap_.empty())
      << "MemorySystem::SaveState requires an idle fabric";
  out->lanes.resize(lanes_.size());
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const Lane& lane = lanes_[i];
    lane.role.HeldShared();
    MRM_CHECK(!lane.spec.speculating && lane.arrivals.empty() && lane.backlog.empty() &&
              lane.records.empty())
        << "MemorySystem::SaveState requires quiescent lanes (lane " << i << ")";
    SavedState::LaneSaved& saved = out->lanes[i];
    saved.sim_now = lane.sim->now();
    saved.sim_events = lane.sim->events_executed();
    saved.sim_next_sequence = lane.sim->next_event_sequence();
    saved.wake_sequence = lane.controller->WakeSequence();
    lane.controller->SaveState(&saved.controller);
  }
  out->next_request_id = next_request_id_;
  out->injected_stalls = injected_stalls_;
  out->dropped_completions = dropped_completions_;
}

void MemorySystem::RestoreState(const SavedState& saved) {
  tsa::hub_role.Held();
  MRM_CHECK(inflight_requests_ == 0) << "MemorySystem::RestoreState requires an idle fabric";
  MRM_CHECK(saved.lanes.size() == lanes_.size())
      << "MemorySystem::RestoreState: snapshot has " << saved.lanes.size()
      << " lanes, this system has " << lanes_.size();
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    Lane& lane = lanes_[i];
    lane.role.Held();  // restore runs single-threaded; every lane is parked
    const SavedState::LaneSaved& ls = saved.lanes[i];
    lane.sim->RestoreExecution(ls.sim_now, ls.sim_events, ls.sim_next_sequence);
    lane.controller->RestoreState(ls.controller);
    lane.controller->ReestablishWake(ls.wake_sequence);
    lane.arrivals.clear();
    lane.backlog.clear();
    lane.records.clear();
  }
  next_request_id_ = saved.next_request_id;
  injected_stalls_ = saved.injected_stalls;
  dropped_completions_ = saved.dropped_completions;
  record_heap_.clear();
  // Re-derive the earliest lane-side work from the restored lane queues (the
  // same recomputation SealEpoch performs).
  work_next_cache_ = sim::kTickNever;
  for (Lane& lane : lanes_) {
    work_next_cache_ = std::min(work_next_cache_, lane.sim->NextEventTime());
  }
}

void MemorySystem::DisableRefresh() {
  for (Lane& lane : lanes_) {
    lane.role.Held();  // setup: single-threaded, before any run
    lane.controller->DisableRefresh();
  }
}

void MemorySystem::SetCommandObserver(CommandObserver* observer) {
  observer_ = observer;
  for (Lane& lane : lanes_) {
    lane.role.Held();  // setup: single-threaded, before any run
    lane.controller->SetCommandObserver(observer);
  }
}

}  // namespace mem
}  // namespace mrm
