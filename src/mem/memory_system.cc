#include "src/mem/memory_system.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace mrm {
namespace mem {

MemorySystem::MemorySystem(sim::Simulator* simulator, DeviceConfig config, SchedulerPolicy policy,
                           AddressMapPolicy map_policy)
    : simulator_(simulator), config_(std::move(config)), map_(config_, map_policy) {
  const Status valid = config_.Validate();
  MRM_CHECK(valid.ok()) << valid.message();
  channels_.reserve(static_cast<std::size_t>(config_.channels));
  backlog_.resize(static_cast<std::size_t>(config_.channels));
  for (int c = 0; c < config_.channels; ++c) {
    channels_.push_back(
        std::make_unique<ChannelController>(simulator_, &config_, &map_, c, policy));
    channels_.back()->set_on_slot_free([this, c] { DrainBacklog(c); });
    // In-flight accounting rides the controller's completion tap, so Enqueue
    // never has to wrap each request's on_complete in a fresh closure.
    channels_.back()->set_on_request_complete([this](const Request&) { --inflight_requests_; });
  }
}

void MemorySystem::Enqueue(Request request) {
  request.id = next_request_id_++;
  ++inflight_requests_;
  Route(std::move(request));
}

void MemorySystem::Route(Request request) {
  MRM_CHECK(request.addr + request.size <= config_.capacity_bytes())
      << "address out of range: " << request.addr;
  const Location location = map_.Decode(request.addr);
  auto& channel = channels_[static_cast<std::size_t>(location.channel)];
  if (!channel->Enqueue(request, location)) {
    backlog_[static_cast<std::size_t>(location.channel)].push_back({std::move(request), location});
    ++backlog_count_;
  }
}

void MemorySystem::DrainBacklog(int channel) {
  auto& backlog = backlog_[static_cast<std::size_t>(channel)];
  while (!backlog.empty()) {
    Backlogged& entry = backlog.front();
    if (!channels_[static_cast<std::size_t>(channel)]->Enqueue(entry.request, entry.location)) {
      break;  // channel full again; wait for the next freed slot
    }
    backlog.pop_front();
    --backlog_count_;
  }
}

void MemorySystem::Transfer(Request::Kind kind, std::uint64_t addr, std::uint64_t bytes,
                            std::uint32_t stream, std::function<void()> on_done,
                            std::size_t window) {
  MRM_CHECK(bytes > 0);
  auto transfer = std::make_shared<TransferState>();
  transfer->kind = kind;
  transfer->next_addr = addr;
  transfer->end_addr = addr + bytes;
  transfer->stream = stream;
  // Default window: enough outstanding accesses per channel to cover the
  // ACT+CAS latency pipeline at full bus rate (HBM3e needs ~35 in flight per
  // channel), bounded by the per-channel queue capacity.
  transfer->window =
      window != 0 ? window : static_cast<std::size_t>(48 * config_.channels);
  transfer->on_done = std::move(on_done);
  PumpTransfer(transfer);
}

void MemorySystem::PumpTransfer(const std::shared_ptr<TransferState>& transfer) {
  while (transfer->next_addr < transfer->end_addr && transfer->in_flight < transfer->window) {
    const std::uint64_t remaining = transfer->end_addr - transfer->next_addr;
    // Respect access-granularity alignment: the first/last access may be
    // shorter than access_bytes.
    const std::uint64_t line = config_.access_bytes;
    const std::uint64_t offset_in_line = transfer->next_addr % line;
    const std::uint32_t size =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(line - offset_in_line, remaining));

    Request request;
    request.kind = transfer->kind;
    request.addr = transfer->next_addr;
    request.size = size;
    request.stream = transfer->stream;
    request.on_complete = [this, transfer](const Request&) {
      --transfer->in_flight;
      PumpTransfer(transfer);
    };
    transfer->next_addr += size;
    ++transfer->in_flight;
    Enqueue(std::move(request));
  }
  if (transfer->next_addr >= transfer->end_addr && transfer->in_flight == 0) {
    if (transfer->on_done) {
      // Fire exactly once.
      auto done = std::move(transfer->on_done);
      transfer->on_done = nullptr;
      done();
    }
  }
}

bool MemorySystem::Idle() const { return inflight_requests_ == 0 && backlog_count_ == 0; }

SystemStats MemorySystem::GetStats() const {
  SystemStats total;
  const sim::Tick now = simulator_->now();
  for (const auto& channel : channels_) {
    const ChannelStats& cs = channel->stats();
    total.reads_completed += cs.reads_completed;
    total.writes_completed += cs.writes_completed;
    total.bytes_read += cs.bytes_read;
    total.bytes_written += cs.bytes_written;
    total.row_hits += cs.row_hits;
    total.row_misses += cs.row_misses;
    total.refreshes += cs.refreshes;
    total.read_latency_ns.Merge(cs.read_latency_ns);
    total.write_latency_ns.Merge(cs.write_latency_ns);
    const EnergyReport energy = channel->GetEnergyReport(now);
    total.energy.activate_pj += energy.activate_pj;
    total.energy.read_pj += energy.read_pj;
    total.energy.write_pj += energy.write_pj;
    total.energy.io_pj += energy.io_pj;
    total.energy.refresh_pj += energy.refresh_pj;
    total.energy.background_pj += energy.background_pj;
  }
  return total;
}

void MemorySystem::DisableRefresh() {
  for (auto& channel : channels_) {
    channel->DisableRefresh();
  }
}

}  // namespace mem
}  // namespace mrm
