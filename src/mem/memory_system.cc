#include "src/mem/memory_system.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/logging.h"

namespace mrm {
namespace mem {
namespace {

// Same rounding convention as the controller's timing conversion: round the
// nanosecond latency up to whole ticks, never below one tick (a zero-tick
// fabric would collapse the epoch lookahead).
sim::Tick FabricTicks(double ns, const sim::Simulator& simulator) {
  const double ticks = ns * 1e-9 * simulator.ticks_per_second();
  const auto rounded = static_cast<sim::Tick>(std::ceil(ticks - 1e-9));
  return std::max<sim::Tick>(rounded, 1);
}

}  // namespace

MemorySystem::MemorySystem(sim::Simulator* simulator, DeviceConfig config, SchedulerPolicy policy,
                           AddressMapPolicy map_policy)
    : simulator_(simulator), config_(std::move(config)), map_(config_, map_policy) {
  const Status valid = config_.Validate();
  MRM_CHECK(valid.ok()) << valid.message();
  fabric_ticks_ = FabricTicks(config_.fabric_latency_ns, *simulator_);
  lanes_.resize(static_cast<std::size_t>(config_.channels));
  for (int c = 0; c < config_.channels; ++c) {
    Lane& lane = lanes_[static_cast<std::size_t>(c)];
    lane.sim = std::make_unique<sim::Simulator>(simulator_->ticks_per_second());
    lane.controller =
        std::make_unique<ChannelController>(lane.sim.get(), &config_, &map_, c, policy);
    lane.controller->set_on_slot_free([this, c] { DrainBacklog(c); });
    // Completions leave the lane as records; the hub applies their callbacks
    // one fabric hop later in deterministic order.
    lane.controller->set_completion_sink([this, c](Request&& request) {
      Lane& owner = lanes_[static_cast<std::size_t>(c)];
      owner.records.push_back(
          {sim::TickAdd(request.complete_tick, fabric_ticks_), std::move(request)});
    });
  }
  simulator_->RegisterEpochDomain(this);
}

MemorySystem::~MemorySystem() { simulator_->UnregisterEpochDomain(this); }

void MemorySystem::Enqueue(Request request) {
  request.id = next_request_id_++;
  ++inflight_requests_;
  // Transient channel stall (fault path): the request is held at the fabric
  // entrance and routed stall_ticks_ later. The delayed Route() still runs
  // on the hub at a later hub time, so per-lane arrivals stay tick-sorted
  // and the epoch schedule — hence determinism — is untouched. The decision
  // is a keyed roll on the (unique) request id: identical at any thread
  // count and any call order.
  if (injector_ != nullptr && injector_->config().enabled() &&
      injector_->RollStall(request.id)) {
    ++injected_stalls_;
    const std::uint64_t id = request.id;
    simulator_->ScheduleAfter(stall_ticks_,
                              [this, id, request = std::move(request)]() mutable {
                                injector_->ResolveStall(id);
                                Route(std::move(request));
                              });
    return;
  }
  Route(std::move(request));
}

void MemorySystem::SetFaultInjector(fault::FaultInjector* injector) {
  injector_ = injector;
  if (injector_ != nullptr) {
    stall_ticks_ = FabricTicks(injector_->config().channel_stall_ns, *simulator_);
    drop_retry_ticks_ = FabricTicks(injector_->config().completion_retry_ns, *simulator_);
  }
}

void MemorySystem::Route(Request request) {
  MRM_CHECK(request.addr + request.size <= config_.capacity_bytes())
      << "address out of range: " << request.addr;
  const Location location = map_.Decode(request.addr);
  Lane& lane = lanes_[static_cast<std::size_t>(location.channel)];
  // Hub time only moves forward, so per-lane arrivals stay tick-sorted.
  const sim::Tick arrival_tick = sim::TickAdd(simulator_->now(), fabric_ticks_);
  if constexpr (kCheckedHooks) {
    if (observer_ != nullptr) {
      observer_->OnRouted(location.channel, simulator_->now(), arrival_tick);
    }
  }
  lane.arrivals.push_back({arrival_tick, std::move(request), location});
  work_next_cache_ = std::min(work_next_cache_, arrival_tick);
}

void MemorySystem::DrainBacklog(int channel) {
  Lane& lane = lanes_[static_cast<std::size_t>(channel)];
  while (!lane.backlog.empty()) {
    Backlogged& entry = lane.backlog.front();
    if (!lane.controller->Enqueue(entry.request, entry.location)) {
      break;  // channel full again; wait for the next freed slot
    }
    lane.backlog.pop_front();
  }
}

void MemorySystem::Transfer(Request::Kind kind, std::uint64_t addr, std::uint64_t bytes,
                            std::uint32_t stream, std::function<void()> on_done,
                            std::size_t window) {
  MRM_CHECK(bytes > 0);
  auto transfer = std::make_shared<TransferState>();
  transfer->kind = kind;
  transfer->next_addr = addr;
  transfer->end_addr = addr + bytes;
  transfer->stream = stream;
  // Default window: enough outstanding accesses per channel to cover the
  // ACT+CAS latency pipeline plus the fabric round trip at full bus rate
  // (HBM3e needs ~35 in flight per channel for the command pipeline alone,
  // and the 2x fabric hop adds ~8 ns of latency to hide). Overflow beyond
  // the per-channel queue capacity parks in the backlog.
  transfer->window =
      window != 0 ? window : static_cast<std::size_t>(96 * config_.channels);
  transfer->on_done = std::move(on_done);
  PumpTransfer(transfer);
}

void MemorySystem::PumpTransfer(const std::shared_ptr<TransferState>& transfer) {
  while (transfer->next_addr < transfer->end_addr && transfer->in_flight < transfer->window) {
    const std::uint64_t remaining = transfer->end_addr - transfer->next_addr;
    // Respect access-granularity alignment: the first/last access may be
    // shorter than access_bytes.
    const std::uint64_t line = config_.access_bytes;
    const std::uint64_t offset_in_line = transfer->next_addr % line;
    const std::uint32_t size =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(line - offset_in_line, remaining));

    Request request;
    request.kind = transfer->kind;
    request.addr = transfer->next_addr;
    request.size = size;
    request.stream = transfer->stream;
    request.on_complete = [this, transfer](const Request&) {
      --transfer->in_flight;
      PumpTransfer(transfer);
    };
    transfer->next_addr += size;
    ++transfer->in_flight;
    Enqueue(std::move(request));
  }
  if (transfer->next_addr >= transfer->end_addr && transfer->in_flight == 0) {
    if (transfer->on_done) {
      // Fire exactly once.
      auto done = std::move(transfer->on_done);
      transfer->on_done = nullptr;
      done();
    }
  }
}

bool MemorySystem::Idle() const { return inflight_requests_ == 0; }

sim::Tick MemorySystem::LatestClock() const {
  sim::Tick now = simulator_->now();
  for (const Lane& lane : lanes_) {
    now = std::max(now, lane.sim->now());
  }
  return now;
}

// --- EpochDomain ----------------------------------------------------------

int MemorySystem::LaneCount() const { return config_.channels; }

sim::Tick MemorySystem::ArrivalDelay() const { return fabric_ticks_; }

sim::Tick MemorySystem::NextWorkTime() { return work_next_cache_; }

sim::Tick MemorySystem::NextRecordTime() const {
  return record_heap_.empty()
             ? sim::kTickNever
             : lanes_[static_cast<std::size_t>(record_heap_.front())].records.front().effect_tick;
}

sim::Tick MemorySystem::EarliestCompletionEffect(sim::Tick from) const {
  sim::Tick earliest = sim::kTickNever;
  for (const Lane& lane : lanes_) {
    if (!lane.controller->HasUnfinishedRequests() && lane.backlog.empty() &&
        lane.arrivals.empty()) {
      continue;
    }
    // Either a data burst already on the wire completes (ring front), or a
    // not-yet-issued command — which cannot issue before `from` — takes at
    // least the minimum command latency.
    earliest = std::min(earliest, lane.controller->NextScheduledCompletion());
    earliest =
        std::min(earliest, sim::TickAdd(from, lane.controller->MinCommandLatencyTicks()));
  }
  return sim::TickAdd(earliest, fabric_ticks_);
}

std::uint64_t MemorySystem::RunLane(int lane_index, sim::Tick horizon) {
  Lane& lane = lanes_[static_cast<std::size_t>(lane_index)];
  std::uint64_t executed = 0;
  for (;;) {
    const sim::Tick arrival =
        lane.arrivals.empty() ? sim::kTickNever : lane.arrivals.front().tick;
    const sim::Tick event = lane.sim->NextEventTime();
    if (arrival <= event) {
      // Arrivals admit before lane events on tick ties: a request reaching
      // the controller at tick T is visible to the scheduling decision made
      // at T, exactly as in serial execution.
      if (arrival >= horizon) {
        break;
      }
      lane.sim->AdvanceTo(arrival);
      Arrival message = std::move(lane.arrivals.front());
      lane.arrivals.pop_front();
      if constexpr (kCheckedHooks) {
        if (observer_ != nullptr) {
          observer_->OnArrivalAdmitted(lane_index, message.tick, horizon);
        }
      }
      if (!lane.controller->Enqueue(message.request, message.location)) {
        // Queue full. The backlog preserves arrival order: the controller
        // refuses new work whenever the backlog is non-empty (slots freed
        // drain the backlog first), so no later arrival can jump the line.
        lane.backlog.push_back({std::move(message.request), message.location});
      }
    } else {
      if (event >= horizon) {
        break;
      }
      lane.sim->ExecutePeeked(event);
      ++executed;
    }
  }
  return executed;
}

bool MemorySystem::RecordBefore(int lane_a, int lane_b) const {
  const Record& a = lanes_[static_cast<std::size_t>(lane_a)].records.front();
  const Record& b = lanes_[static_cast<std::size_t>(lane_b)].records.front();
  if (a.effect_tick != b.effect_tick) {
    return a.effect_tick < b.effect_tick;
  }
  return a.request.id < b.request.id;
}

void MemorySystem::RecordHeapSift(std::size_t hole) {
  // Standard binary-heap sift-down over lane indices; the key of a lane is
  // its front record's (effect_tick, request id).
  const std::size_t size = record_heap_.size();
  for (;;) {
    const std::size_t left = 2 * hole + 1;
    if (left >= size) {
      return;
    }
    std::size_t best = left;
    const std::size_t right = left + 1;
    if (right < size && RecordBefore(record_heap_[right], record_heap_[left])) {
      best = right;
    }
    if (!RecordBefore(record_heap_[best], record_heap_[hole])) {
      return;
    }
    std::swap(record_heap_[hole], record_heap_[best]);
    hole = best;
  }
}

void MemorySystem::RebuildRecordHeap() {
  record_heap_.clear();
  for (int c = 0; c < config_.channels; ++c) {
    if (!lanes_[static_cast<std::size_t>(c)].records.empty()) {
      record_heap_.push_back(c);
    }
  }
  if (record_heap_.size() > 1) {
    for (std::size_t i = record_heap_.size() / 2; i-- > 0;) {
      RecordHeapSift(i);
    }
  }
}

void MemorySystem::SealEpoch() {
  // Records emitted during the epoch sit in their lane queues, already
  // sorted by effect tick (the channel bus serializes bursts). Re-key the
  // lane heap so the hub pops them globally by (effect_tick, request id) —
  // an order independent of how lanes were scheduled onto threads — and
  // refresh the work-time cache the epoch just invalidated.
  RebuildRecordHeap();
  sim::Tick next = sim::kTickNever;
  for (Lane& lane : lanes_) {
    if (!lane.arrivals.empty()) {
      next = std::min(next, lane.arrivals.front().tick);
    }
    next = std::min(next, lane.sim->NextEventTime());
  }
  work_next_cache_ = next;
}

void MemorySystem::ProcessOneRecord() {
  const int channel = record_heap_.front();
  Lane& lane = lanes_[static_cast<std::size_t>(channel)];
  {
    Record& record = lane.records.front();
    if constexpr (kCheckedHooks) {
      if (observer_ != nullptr) {
        observer_->OnRecordProcessed(channel, record.effect_tick, record.request.id,
                                     simulator_->now());
      }
    }
    if (injector_ != nullptr && injector_->config().enabled() &&
        injector_->RollDrop(record.request.id)) {
      // Dropped completion (fault path): the record is still consumed at its
      // effect tick in the deterministic global order — only the callback
      // delivery is lost, re-delivered after the timeout. The request stays
      // in flight until then, so Idle() keeps waiting for it.
      ++dropped_completions_;
      const std::uint64_t id = record.request.id;
      simulator_->ScheduleAfter(drop_retry_ticks_,
                                [this, id, request = std::move(record.request)]() mutable {
                                  injector_->ResolveDrop(id);
                                  --inflight_requests_;
                                  if (request.on_complete) {
                                    auto callback = std::move(request.on_complete);
                                    callback(request);
                                  }
                                });
    } else {
      --inflight_requests_;
      if (record.request.on_complete) {
        // Move the callback out first: it may re-enter Enqueue/Transfer, and
        // the Request is dead once the lane queue advances.
        auto callback = std::move(record.request.on_complete);
        callback(record.request);
      }
    }
  }
  lane.records.pop_front();
  if (lane.records.empty()) {
    record_heap_.front() = record_heap_.back();
    record_heap_.pop_back();
  }
  if (record_heap_.size() > 1) {
    RecordHeapSift(0);
  }
}

// --------------------------------------------------------------------------

SystemStats MemorySystem::GetStats() const {
  SystemStats total;
  total.injected_stalls = injected_stalls_;
  total.dropped_completions = dropped_completions_;
  // Background/refresh energy integrates to the latest clock in the system:
  // the hub may trail the lanes (it only advances on hub-side activity), and
  // every channel is charged over the same interval.
  sim::Tick now = simulator_->now();
  for (const Lane& lane : lanes_) {
    now = std::max(now, lane.sim->now());
  }
  for (const Lane& lane : lanes_) {
    const ChannelStats& cs = lane.controller->stats();
    total.reads_completed += cs.reads_completed;
    total.writes_completed += cs.writes_completed;
    total.bytes_read += cs.bytes_read;
    total.bytes_written += cs.bytes_written;
    total.row_hits += cs.row_hits;
    total.row_misses += cs.row_misses;
    total.refreshes += cs.refreshes;
    total.read_latency_ns.Merge(cs.read_latency_ns);
    total.write_latency_ns.Merge(cs.write_latency_ns);
    total.energy.Merge(lane.controller->GetEnergyReport(now));
  }
  return total;
}

void MemorySystem::DisableRefresh() {
  for (Lane& lane : lanes_) {
    lane.controller->DisableRefresh();
  }
}

void MemorySystem::SetCommandObserver(CommandObserver* observer) {
  observer_ = observer;
  for (Lane& lane : lanes_) {
    lane.controller->SetCommandObserver(observer);
  }
}

}  // namespace mem
}  // namespace mrm
