// MemorySystem: the full device — one controller per channel, an address
// interleaver, a backlog for queue-full conditions, and a bulk-transfer
// engine that decomposes multi-KB/MB transfers into column accesses with a
// bounded issue window (closed-loop, so measured bandwidth reflects real
// queue/bank contention).
//
// Execution model (DESIGN.md §8): every channel controller runs on its own
// lane — a private sub-simulator with its own clock and event queue — and
// the MemorySystem registers itself as an EpochDomain on the hub simulator
// it was constructed with. Requests cross the front-end fabric
// (config.fabric_latency_ns each way): Enqueue() posts an arrival message
// the lane admits fabric-latency ticks later, and a completed request
// surfaces as a completion record whose callback the hub processes
// fabric-latency ticks after the data burst ends, in (effect tick, request
// id) order. The same epoch schedule runs whether lanes execute serially
// (the default, and the only mode when channels == 1) or on a worker pool
// (sim::Simulator::SetWorkerThreads), so stats are bit-identical for any
// thread count.

#ifndef MRMSIM_SRC_MEM_MEMORY_SYSTEM_H_
#define MRMSIM_SRC_MEM_MEMORY_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/common/check_hooks.h"
#include "src/common/sliding_queue.h"
#include "src/common/thread_annotations.h"
#include "src/fault/fault_injector.h"
#include "src/mem/address_map.h"
#include "src/mem/controller.h"
#include "src/mem/observer.h"
#include "src/mem/device_config.h"
#include "src/mem/request.h"
#include "src/sim/epoch_domain.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace mem {

struct SystemStats {
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t refreshes = 0;
  // Fabric fault injection (DESIGN.md §10); zero without an injector.
  std::uint64_t injected_stalls = 0;       // requests delayed entering the fabric
  std::uint64_t dropped_completions = 0;   // completions re-delivered after timeout
  Histogram read_latency_ns;
  Histogram write_latency_ns;
  EnergyReport energy;

  double row_hit_rate() const {
    const double total = static_cast<double>(row_hits + row_misses);
    return total == 0.0 ? 0.0 : static_cast<double>(row_hits) / total;
  }

  friend bool operator==(const SystemStats&, const SystemStats&) = default;
};

// Speculation telemetry (DESIGN.md §8, "Speculative horizons & rollback").
// Every field derives from the epoch schedule and simulation state alone, so
// for a fixed speculation window the counts are bit-identical at any
// --sim-threads; they are all zero when speculation is off.
struct SpecStats {
  std::uint64_t rollbacks = 0;            // speculated spans rolled back
  std::uint64_t rolled_back_events = 0;   // lane events discarded by rollbacks
  std::uint64_t spec_commits = 0;         // speculated spans committed
  std::uint64_t suppressed_records = 0;   // replayed duplicate records swallowed

  friend bool operator==(const SpecStats&, const SpecStats&) = default;
};

class MemorySystem : public sim::EpochDomain {
 public:
  MemorySystem(sim::Simulator* simulator, DeviceConfig config,
               SchedulerPolicy policy = SchedulerPolicy::kFrFcfs,
               AddressMapPolicy map_policy = AddressMapPolicy::kRowBankRankColumnChannel);
  ~MemorySystem() override;

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  const DeviceConfig& config() const { return config_; }

  // Single column access. Never fails: overflow goes to an internal backlog
  // drained as queue slots free up. `on_complete` fires at data completion
  // (plus the fabric's return latency).
  void Enqueue(Request request);

  // Bulk sequential transfer of [addr, addr + bytes). Decomposed into
  // access_bytes requests, at most `window` in flight. `on_done` fires when
  // the last byte completes.
  void Transfer(Request::Kind kind, std::uint64_t addr, std::uint64_t bytes, std::uint32_t stream,
                std::function<void()> on_done, std::size_t window = 0 /* 0 = default */);

  // True when no requests are queued, backlogged or in flight.
  bool Idle() const;

  // Aggregated statistics across channels, merged in channel order (energy
  // includes background power up to the latest clock in the system).
  SystemStats GetStats() const;

  // Turns off refresh in every channel (ablations / MRM-style devices).
  void DisableRefresh();

  // Attaches a strictly passive command/epoch observer (the protocol
  // auditor, DESIGN.md §9). Forwarded to every channel controller; the
  // epoch-routing hooks fire on the hub side. Hook sites compile away unless
  // the build defines MRMSIM_CHECKED. Pass nullptr to detach.
  void SetCommandObserver(CommandObserver* observer);

  // Attaches the deterministic fault injector (DESIGN.md §10): per-request
  // keyed rolls may stall a request before it enters the fabric or drop a
  // completion record's delivery (re-delivered completion_retry_ns later).
  // Both fault points run on the hub side, so the epoch schedule — and hence
  // bit-identical stats at any --sim-threads — is preserved. Pass nullptr to
  // detach; detached or all-zero-rate reproduces the fault-free system.
  void SetFaultInjector(fault::FaultInjector* injector);

  std::uint64_t capacity_bytes() const { return config_.capacity_bytes(); }

  // Latest clock anywhere in the system — the hub may trail the lanes, which
  // run ahead to each epoch's horizon. A driver issuing traffic in multiple
  // Run() spans (the closed-loop backend) must advance the hub here first so
  // new arrivals never land in a lane's past. Deterministic for any worker
  // count (the epoch schedule is).
  sim::Tick LatestClock() const;

  // Aggregated speculation telemetry (zero when sim::Simulator's speculation
  // window is 0). Call after Run()/RunUntil() returns.
  SpecStats GetSpecStats() const;

  // Test-only mutation hook: skip the conflict check that rolls a lane back
  // when a late cross-shard arrival lands inside its speculated span.
  // Violates causality by design — used to prove the check is load-bearing
  // (the run must abort on the lane's clock regression).
  void TestOnlyIgnoreConflictCheck(bool ignore) { test_ignore_conflict_ = ignore; }

  // Durable checkpoint of the whole fabric (DESIGN.md §13). Only legal at a
  // quiescent point — Idle(), every lane's arrival/backlog/record queues
  // empty, no open speculative span (RunUntil exits commit speculation, so
  // any post-run instant qualifies). The only pending events then are the
  // per-lane refresh wakes, captured as (wake_at, sequence) pairs the restore
  // re-creates; telemetry (EpochSchedStats, SpecStats) is deliberately
  // excluded — it describes who ran a lane, never simulation results.
  struct SavedState {
    struct LaneSaved {
      sim::Tick sim_now = 0;
      std::uint64_t sim_events = 0;
      std::uint64_t sim_next_sequence = 0;
      std::uint64_t wake_sequence = 0;
      ChannelController::SavedState controller;
    };
    std::vector<LaneSaved> lanes;
    std::uint64_t next_request_id = 1;
    std::uint64_t injected_stalls = 0;
    std::uint64_t dropped_completions = 0;
  };

  // Captures the system into `out` (overwriting it). Dies unless quiescent.
  void SaveState(SavedState* out) const;

  // Restores a snapshot into this system, which must be quiescent and built
  // from the same DeviceConfig (a fresh construction or a drained run; the
  // config fingerprint check lives in src/snapshot). Lane clocks and event
  // queues are reset via Simulator::RestoreExecution — killing the fresh
  // constructors' pre-scheduled wakes — and each controller re-creates its
  // wake at the saved (tick, sequence), so the continuation's event pop
  // order is bit-identical to the uninterrupted run's.
  void RestoreState(const SavedState& saved);

 private:
  struct TransferState {
    Request::Kind kind;
    std::uint64_t next_addr = 0;
    std::uint64_t end_addr = 0;
    std::uint32_t stream = 0;
    std::size_t in_flight = 0;
    std::size_t window = 0;
    std::function<void()> on_done;
  };

  // A request crossing the fabric toward its channel, with the decoded
  // location so lanes never touch the (shared) address map.
  struct Arrival {
    sim::Tick tick = 0;  // lane admission tick (hub time + fabric latency)
    Request request;
    Location location;
  };

  // A request waiting for a queue slot, with its decoded location so retries
  // never re-run the address map.
  struct Backlogged {
    Request request;
    Location location;
  };

  // A completed request traveling back across the fabric; the hub runs its
  // callback at effect_tick.
  struct Record {
    sim::Tick effect_tick = 0;
    Request request;
  };

  // Global record identity, used by checked builds to prove rollback
  // conservation (every suppressed replay matches a record the hub consumed).
  struct RecordKey {
    sim::Tick effect_tick = 0;
    std::uint64_t request_id = 0;
  };

  // One buffered auditor callback (checked builds): observer hooks fired
  // inside a speculative span are held back until the span commits and
  // discarded when it rolls back, so the auditor sees exactly the committed
  // history once.
  struct BufferedHook {
    CommandRecord command;     // valid when is_command
    sim::Tick admit_tick = 0;  // valid when !is_command
    sim::Tick horizon = 0;
    bool is_command = false;
  };

  // Redirects a controller's command stream into a lane's hook buffer for
  // the duration of a speculative span (checked builds only).
  class BufferingObserver : public CommandObserver {
   public:
    void OnCommand(const CommandRecord& record) override {
      buffer->push_back({record, 0, 0, true});
    }
    std::vector<BufferedHook>* buffer = nullptr;
  };

  // Per-lane speculation state (DESIGN.md §8, "Speculative horizons &
  // rollback"). The snapshot (sim + controller + suppress watermark) is taken
  // only when the lane is quiescent — empty record queue and backlog, no
  // queued or in-flight requests — so it is a handful of copies plus the
  // event-queue clone, never a deep copy of scheduling structures. The
  // journal holds pristine pre-admission copies of every arrival admitted
  // inside the span; a rollback replays them in order, and the suppress
  // counter swallows the replayed duplicates of records the hub already
  // consumed before the rollback (the replay reproduces them bit-identically,
  // so their hub-side effects stand).
  struct LaneSpec {
    bool speculating = false;
    // Frozen end of the open span: the speculative horizon in force when the
    // snapshot was taken. Later epochs extend the span only up to this tick,
    // so a rollback never replays more than one window's worth of work; the
    // lane re-snapshots from a fresh baseline once the span commits.
    sim::Tick limit = 0;
    // Optimism throttle: after a rollback, no new span opens until the
    // conservative horizon passes the conflict point plus a backoff that
    // doubles with each consecutive rollback (reset on commit). Without this
    // a conflict-heavy lane re-speculates a doomed window every epoch,
    // re-executing (and re-discarding) near-identical work while
    // conservative progress crawls underneath; with it such lanes converge
    // to conservative execution while burst/idle lanes speculate freely.
    // Hub-written (rollback), lane-read; safe under the fork/join barrier.
    sim::Tick cooldown_until = 0;
    std::uint32_t failures = 0;  // consecutive rollbacks since the last commit
    sim::Simulator::SavedState sim;
    ChannelController::SavedState controller;
    SlidingQueue<Arrival> journal;          // admissions since the snapshot
    std::uint64_t consumed_since_snap = 0;  // records the hub popped since it
    std::uint64_t suppress_remaining = 0;   // replayed duplicates to swallow
    std::uint64_t suppress_at_snap = 0;     // suppress_remaining at snapshot
    // Telemetry: rollbacks/rolled_back_events are hub-written, the rest
    // lane-written; aggregated by GetSpecStats() after the run quiesces.
    std::uint64_t rollbacks = 0;
    std::uint64_t rolled_back_events = 0;
    std::uint64_t commits = 0;
    std::uint64_t suppressed = 0;
    // Checked-build bookkeeping: exact keys behind the suppress counters and
    // the buffered auditor hooks for the open span.
    SlidingQueue<RecordKey> suppress_keys;
    SlidingQueue<RecordKey> suppress_keys_at_snap;
    std::vector<RecordKey> consumed_keys;
    std::vector<BufferedHook> hook_buffer;
  };

  // Everything one channel's lane owns. Lanes are mutated only by RunLane
  // (one thread per lane per epoch) plus the serial hub phases, never
  // concurrently. `role` is the phantom capability narrating exactly that
  // protocol: the lane's worker holds it exclusively during an epoch, and
  // the hub claims it per-lane during the serial phases (routing, sealing,
  // rollback) while every worker is parked. Lane code must never claim
  // tsa::hub_role, so a hub-shared access added to a lane path fails
  // -Werror=thread-safety.
  struct Lane {
    tsa::ThreadRole role;
    std::unique_ptr<sim::Simulator> sim MRMSIM_LANE_OWNED(role);
    std::unique_ptr<ChannelController> controller MRMSIM_LANE_OWNED(role);
    SlidingQueue<Arrival> arrivals MRMSIM_LANE_OWNED(role);    // fabric-in, sorted by tick
    SlidingQueue<Backlogged> backlog MRMSIM_LANE_OWNED(role);  // admission overflow, FIFO
    SlidingQueue<Record> records MRMSIM_LANE_OWNED(role);      // fabric-out, by effect tick
    LaneSpec spec MRMSIM_LANE_OWNED(role);
    BufferingObserver buffer_observer MRMSIM_LANE_OWNED(role);  // checked builds, spec spans
  };

  // sim::EpochDomain (driven by the hub simulator's epoch loop).
  int LaneCount() const override;
  sim::Tick ArrivalDelay() const override;
  sim::Tick NextWorkTime() override;
  sim::Tick NextRecordTime() const override;
  bool HasPendingRecords() const override {
    tsa::hub_role.HeldShared();
    return !record_heap_.empty();
  }
  sim::Tick EarliestCompletionEffect(sim::Tick from) const override;
  std::uint64_t RunLane(int lane, sim::Tick horizon) override;
  std::uint64_t RunLaneSpeculative(int lane, sim::Tick horizon, sim::Tick spec_horizon) override;
  void FinishSpeculation(bool commit) override;
  void SealEpoch() override;
  void ProcessOneRecord() override;

  // Shared lane loop behind RunLane/RunLaneSpeculative: delivers due arrivals
  // and executes lane events up to (exclusive) `horizon`; when `speculative`,
  // journals admissions and (checked builds) buffers auditor hooks.
  std::uint64_t RunLaneTo(int lane, sim::Tick horizon, bool speculative);
  void SnapshotLane(int lane);   // lane thread; lane must be quiescent
  void CommitLane(int lane);     // lane thread or hub (FinishSpeculation)
  // Hub only (Route conflict / stop exit). `cooldown_until` throttles
  // re-speculation: the conflict's arrival tick on a Route conflict (past it,
  // conservative execution has absorbed the conflict), 0 on a stop exit.
  void RollbackLane(int lane, sim::Tick cooldown_until);

  void PumpTransfer(const std::shared_ptr<TransferState>& transfer);
  void DrainBacklog(int channel);
  void Route(Request request);

  // Record ordering: per-lane queues are already sorted by effect tick (the
  // channel bus serializes bursts), so global (effect_tick, request id)
  // order falls out of a small heap of LANE INDICES keyed by each lane's
  // front record. Processing a record is a head-index bump plus an O(log
  // channels) sift — the Request itself never moves.
  bool RecordBefore(int lane_a, int lane_b) const;
  void RecordHeapSift(std::size_t hole);
  void RebuildRecordHeap();

  // snapshot-exempt(hub simulator; captured separately by the checkpoint layer)
  sim::Simulator* simulator_ MRMSIM_CONST_SHARED;  // hub sim; pointer fixed at construction
  // snapshot-exempt(construction parameter; covered by the config fingerprint)
  DeviceConfig config_ MRMSIM_CONST_SHARED;
  // snapshot-exempt(derived from config at construction; never mutated)
  AddressMap map_ MRMSIM_CONST_SHARED;
  // snapshot-exempt(derived from config at construction; never mutated)
  sim::Tick fabric_ticks_ MRMSIM_CONST_SHARED = 1;  // one-way fabric latency, >= 1 tick
  // The vector itself is sized once at construction; each element's state is
  // guarded by that element's role.
  std::vector<Lane> lanes_;
  std::vector<int> record_heap_ MRMSIM_HUB_SHARED;  // lanes with pending records, min-heap
  // Earliest lane-side work (arrival or lane event), maintained so the epoch
  // driver's per-record bookkeeping is O(1): exact after every SealEpoch,
  // and lowered as Route() posts arrivals in between.
  sim::Tick work_next_cache_ MRMSIM_HUB_SHARED = sim::kTickNever;
  std::uint64_t next_request_id_ MRMSIM_HUB_SHARED = 1;
  std::uint64_t inflight_requests_ MRMSIM_HUB_SHARED = 0;
  // Attachment pointers: written only while the system is quiescent (setup),
  // read by both contexts during a run — effectively immutable mid-run, so
  // they stay unguarded rather than pretending a lock protocol exists.
  // snapshot-exempt(attachment; the owner re-attaches observers on restore)
  CommandObserver* observer_ = nullptr;
  // snapshot-exempt(attachment; the injector snapshots its own stats ledger)
  fault::FaultInjector* injector_ = nullptr;
  // snapshot-exempt(derived from the injector's config at attach time)
  sim::Tick stall_ticks_ MRMSIM_CONST_SHARED = 1;       // channel_stall_ns in hub ticks
  // snapshot-exempt(derived from the injector's config at attach time)
  sim::Tick drop_retry_ticks_ MRMSIM_CONST_SHARED = 1;  // completion_retry_ns in hub ticks
  std::uint64_t injected_stalls_ MRMSIM_HUB_SHARED = 0;
  std::uint64_t dropped_completions_ MRMSIM_HUB_SHARED = 0;
  // snapshot-exempt(test-only mutation hook, never set outside guard tests)
  bool test_ignore_conflict_ = false;  // test-only knob, set while quiescent
  // Rollback scratch for rebuilding a lane's arrival queue (hub-side only).
  // snapshot-exempt(rollback scratch; recomputed before every use)
  std::vector<Arrival> arrival_scratch_ MRMSIM_HUB_SHARED;
};

}  // namespace mem
}  // namespace mrm

#endif  // MRMSIM_SRC_MEM_MEMORY_SYSTEM_H_
