// MemorySystem: the full device — one controller per channel, an address
// interleaver, a backlog for queue-full conditions, and a bulk-transfer
// engine that decomposes multi-KB/MB transfers into column accesses with a
// bounded issue window (closed-loop, so measured bandwidth reflects real
// queue/bank contention).

#ifndef MRMSIM_SRC_MEM_MEMORY_SYSTEM_H_
#define MRMSIM_SRC_MEM_MEMORY_SYSTEM_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/mem/address_map.h"
#include "src/mem/controller.h"
#include "src/mem/device_config.h"
#include "src/mem/request.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace mem {

struct SystemStats {
  std::uint64_t reads_completed = 0;
  std::uint64_t writes_completed = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t refreshes = 0;
  Histogram read_latency_ns;
  Histogram write_latency_ns;
  EnergyReport energy;

  double row_hit_rate() const {
    const double total = static_cast<double>(row_hits + row_misses);
    return total == 0.0 ? 0.0 : static_cast<double>(row_hits) / total;
  }
};

class MemorySystem {
 public:
  MemorySystem(sim::Simulator* simulator, DeviceConfig config,
               SchedulerPolicy policy = SchedulerPolicy::kFrFcfs,
               AddressMapPolicy map_policy = AddressMapPolicy::kRowBankRankColumnChannel);

  MemorySystem(const MemorySystem&) = delete;
  MemorySystem& operator=(const MemorySystem&) = delete;

  const DeviceConfig& config() const { return config_; }

  // Single column access. Never fails: overflow goes to an internal backlog
  // drained as queue slots free up. `on_complete` fires at data completion.
  void Enqueue(Request request);

  // Bulk sequential transfer of [addr, addr + bytes). Decomposed into
  // access_bytes requests, at most `window` in flight. `on_done` fires when
  // the last byte completes.
  void Transfer(Request::Kind kind, std::uint64_t addr, std::uint64_t bytes, std::uint32_t stream,
                std::function<void()> on_done, std::size_t window = 0 /* 0 = default */);

  // True when no requests are queued, backlogged or in flight.
  bool Idle() const;

  // Aggregated statistics across channels (energy includes background power
  // up to the simulator's current time).
  SystemStats GetStats() const;

  // Turns off refresh in every channel (ablations / MRM-style devices).
  void DisableRefresh();

  std::uint64_t capacity_bytes() const { return config_.capacity_bytes(); }

 private:
  struct TransferState {
    Request::Kind kind;
    std::uint64_t next_addr = 0;
    std::uint64_t end_addr = 0;
    std::uint32_t stream = 0;
    std::size_t in_flight = 0;
    std::size_t window = 0;
    std::function<void()> on_done;
  };

  // A request waiting for a queue slot, with its decoded location so retries
  // never re-run the address map.
  struct Backlogged {
    Request request;
    Location location;
  };

  void PumpTransfer(const std::shared_ptr<TransferState>& transfer);
  void DrainBacklog(int channel);
  void Route(Request request);

  sim::Simulator* simulator_;
  DeviceConfig config_;
  AddressMap map_;
  std::vector<std::unique_ptr<ChannelController>> channels_;
  // One backlog per channel: an entry only becomes admittable when its own
  // channel frees a slot, so a freed slot never rescans unrelated requests.
  std::vector<std::deque<Backlogged>> backlog_;
  std::size_t backlog_count_ = 0;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t inflight_requests_ = 0;
};

}  // namespace mem
}  // namespace mrm

#endif  // MRMSIM_SRC_MEM_MEMORY_SYSTEM_H_
