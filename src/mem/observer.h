// Observation interface for the protocol auditor (DESIGN.md §9).
//
// A CommandObserver attached to a ChannelController (or, via
// MemorySystem::SetCommandObserver, to every controller of a device) receives
// one OnCommand callback per issued command, after the controller decided the
// command is legal but before any simulation state depends on the observer —
// observers are strictly passive and must not mutate simulation state, so an
// observed run produces bit-identical statistics to an unobserved one.
//
// Threading contract: OnCommand, OnArrivalAdmitted and OnRecordSuppressed
// fire on the lane that owns `record.channel` / `channel` (one thread per
// lane per epoch, never two lanes on one channel), while OnRouted and
// OnRecordProcessed fire on the serial hub phase. An observer that keeps
// per-channel state plus hub-only state therefore needs no synchronization:
// lane epochs and hub phases alternate with a fork/join barrier between
// them, so even per-channel fields written on the hub and read on the lane
// (the rollback-conservation frontier) are race-free. This is the observer's
// view of the hub/lane ownership protocol that DESIGN.md §12 machine-checks
// inside the engine via the role capabilities of
// src/common/thread_annotations.h.
//
// The hook sites compile away entirely unless the MRMSIM_CHECKED CMake
// option is ON (see src/common/check_hooks.h).

#ifndef MRMSIM_SRC_MEM_OBSERVER_H_
#define MRMSIM_SRC_MEM_OBSERVER_H_

#include <cstdint>

#include "src/mem/request.h"

namespace mrm {
namespace mem {

// One issued command. REF is rank-scoped (the controller refreshes all banks
// of a rank at once): it is reported once with flat_bank == kAllBanks.
struct CommandRecord {
  static constexpr int kAllBanks = -1;

  sim::Tick tick = 0;
  Command command = Command::kActivate;
  int channel = 0;
  int rank = 0;
  int flat_bank = 0;        // rank-major flat index within the channel
  std::uint64_t row = 0;    // target row (ACT) or open row (RD/WR); 0 for PRE/REF
  std::uint32_t size = 0;   // transferred bytes for RD/WR, 0 otherwise
};

class CommandObserver {
 public:
  virtual ~CommandObserver() = default;

  // Every command a controller issues, in issue order per channel.
  virtual void OnCommand(const CommandRecord& record) = 0;

  // The channel's refresh engine was turned off (ablations / MRM devices);
  // refresh-cadence invariants stop applying from this point on.
  virtual void OnRefreshDisabled(int /*channel*/) {}

  // --- MemorySystem epoch plumbing (hooks below are no-ops by default so
  // --- standalone controller observers need not care) ----------------------

  // A request was posted toward `channel`'s lane at hub time `hub_now`, to be
  // admitted at `arrival_tick` (one fabric hop later).
  virtual void OnRouted(int /*channel*/, sim::Tick /*hub_now*/, sim::Tick /*arrival_tick*/) {}

  // `channel`'s lane admitted an arrival at `admit_tick` while running an
  // epoch bounded by `horizon` (exclusive).
  virtual void OnArrivalAdmitted(int /*channel*/, sim::Tick /*admit_tick*/,
                                 sim::Tick /*horizon*/) {}

  // The hub applied the completion record of request `request_id` from
  // `channel` with the hub clock at `hub_now`; the record's cross-shard
  // effect tick is `effect_tick`.
  virtual void OnRecordProcessed(int /*channel*/, sim::Tick /*effect_tick*/,
                                 std::uint64_t /*request_id*/, sim::Tick /*hub_now*/) {}

  // `channel`'s lane, replaying a rolled-back speculative span (DESIGN.md §8,
  // "Speculative horizons & rollback"), re-published the completion record of
  // request `request_id` and swallowed it because the hub consumed the
  // original before the rollback. Rollback conservation requires the
  // suppressed key to never exceed the channel's hub-processed frontier.
  virtual void OnRecordSuppressed(int /*channel*/, sim::Tick /*effect_tick*/,
                                  std::uint64_t /*request_id*/) {}
};

}  // namespace mem
}  // namespace mrm

#endif  // MRMSIM_SRC_MEM_OBSERVER_H_
