// Memory requests and command definitions.
//
// Ownership (DESIGN.md §12): value types. A Request is created in hub
// context, handed to exactly one lane by Route(), and owned by that lane's
// controller until its completion record is sealed back to the hub — at any
// instant exactly one context holds it, so the types carry no guards.

#ifndef MRMSIM_SRC_MEM_REQUEST_H_
#define MRMSIM_SRC_MEM_REQUEST_H_

#include <cstdint>
#include <functional>

#include "src/sim/event_queue.h"

namespace mrm {
namespace mem {

enum class Command { kActivate, kPrecharge, kRead, kWrite, kRefresh };

const char* CommandName(Command command);

// One column-granularity access. Bulk transfers are decomposed by the issuer
// (or modeled analytically via StreamModel for multi-GB streams).
struct Request {
  enum class Kind { kRead, kWrite };

  std::uint64_t id = 0;
  Kind kind = Kind::kRead;
  std::uint64_t addr = 0;   // byte address within the device
  std::uint32_t size = 64;  // bytes; must be <= device access_bytes

  // Identifies the logical stream (weights, kv-cache, activations) for
  // per-stream statistics. 0 = unattributed.
  std::uint32_t stream = 0;

  sim::Tick enqueue_tick = 0;
  sim::Tick complete_tick = 0;

  // Invoked exactly once when the data transfer completes.
  std::function<void(const Request&)> on_complete;
};

// Decoded physical location of an address.
struct Location {
  int channel = 0;
  int rank = 0;
  int bank_group = 0;
  int bank = 0;           // within the bank group
  std::uint64_t row = 0;
  std::uint64_t column = 0;

  // Flat bank index within a channel: rank-major, then group, then bank.
  int FlatBank(int bank_groups, int banks_per_group) const {
    return (rank * bank_groups + bank_group) * banks_per_group + bank;
  }
};

}  // namespace mem
}  // namespace mrm

#endif  // MRMSIM_SRC_MEM_REQUEST_H_
