#include "src/mem/stream_model.h"

#include <algorithm>

#include "src/common/logging.h"

namespace mrm {
namespace mem {

StreamModel::StreamModel(const DeviceConfig& config) : config_(config) {
  const Status valid = config_.Validate();
  MRM_CHECK(valid.ok()) << valid.message();
}

double StreamModel::RefreshBlackoutFraction() const {
  if (!config_.needs_refresh || config_.timings.trefi_ns <= 0.0) {
    return 0.0;
  }
  return config_.timings.trfc_ns / config_.timings.trefi_ns;
}

double StreamModel::RowTurnaroundFraction() const {
  const Timings& t = config_.timings;
  // Time the data bus needs to stream one row.
  const double row_time_ns =
      static_cast<double>(config_.columns_per_row()) * t.tburst_ns;
  // The activate pipeline must sustain one ACT per row_time; it is gated by
  // tRRD, tFAW/4 and (per bank) tRC spread over all banks of a rank.
  const double act_period_ns =
      std::max({t.trrd_ns, t.tfaw_ns / 4.0,
                t.trc_ns / static_cast<double>(config_.banks_per_rank())});
  const double effective_period_ns = std::max(row_time_ns, act_period_ns);
  return 1.0 - row_time_ns / effective_period_ns;
}

double StreamModel::EffectiveBandwidth() const {
  return config_.peak_bandwidth_bytes_per_s() * (1.0 - RowTurnaroundFraction()) *
         (1.0 - RefreshBlackoutFraction());
}

StreamEstimate StreamModel::EstimateSequential(std::uint64_t bytes, bool is_read) const {
  StreamEstimate estimate;
  estimate.bandwidth_bytes_per_s = EffectiveBandwidth();
  estimate.seconds = static_cast<double>(bytes) / estimate.bandwidth_bytes_per_s;

  const double bits = static_cast<double>(bytes) * 8.0;
  const double rows = static_cast<double>(bytes) / config_.row_bytes;
  const EnergyParams& e = config_.energy;
  estimate.energy_pj = rows * e.act_pre_pj +
                       bits * (is_read ? e.read_pj_per_bit : e.write_pj_per_bit) +
                       bits * e.io_pj_per_bit;
  return estimate;
}

}  // namespace mem
}  // namespace mrm
