// Analytic bulk-transfer model.
//
// Ownership (DESIGN.md §12): pure functions of immutable config
// (CONST_SHARED inputs); safe from any context.
//
// The cycle-level simulator is exact but costs ~2 events per 64 B access —
// impractical for the paper's multi-hundred-GB weight reads. For large
// sequential streams the controller behaviour is regular enough to compute
// in closed form: row-buffer-friendly striped reads achieve close to peak
// bus bandwidth, degraded by the row-activation duty cycle and refresh
// blackouts. The tier/workload layers use this model for bulk traffic and
// reserve the cycle-level path for fine-grained contention studies. Tests
// validate the model against the simulator (tests/mem/stream_model_test.cc).

#ifndef MRMSIM_SRC_MEM_STREAM_MODEL_H_
#define MRMSIM_SRC_MEM_STREAM_MODEL_H_

#include <cstdint>

#include "src/mem/device_config.h"

namespace mrm {
namespace mem {

struct StreamEstimate {
  double seconds = 0.0;         // transfer completion time
  double bandwidth_bytes_per_s = 0.0;
  double energy_pj = 0.0;       // row activation + column access + IO energy
};

class StreamModel {
 public:
  explicit StreamModel(const DeviceConfig& config);

  // Sequential read/write of `bytes` striped across all channels.
  StreamEstimate EstimateSequential(std::uint64_t bytes, bool is_read) const;

  // Effective sequential bandwidth (bytes/s) after row-miss and refresh
  // overheads; the headline number for E12.
  double EffectiveBandwidth() const;

  // Fraction of time a channel is unavailable due to refresh (tRFC/tREFI).
  double RefreshBlackoutFraction() const;

  // Fraction of peak bus bandwidth lost to row turnarounds on a perfectly
  // sequential stream.
  double RowTurnaroundFraction() const;

 private:
  const DeviceConfig config_;
};

}  // namespace mem
}  // namespace mrm

#endif  // MRMSIM_SRC_MEM_STREAM_MODEL_H_
