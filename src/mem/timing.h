// DRAM-class timing and energy parameters.
//
// Ownership (DESIGN.md §12): plain parameter structs, immutable once the
// owning DeviceConfig is built (CONST_SHARED).
//
// All timing parameters are in nanoseconds; the controller converts them to
// simulator ticks at construction. Parameter names follow JEDEC/Ramulator
// conventions.

#ifndef MRMSIM_SRC_MEM_TIMING_H_
#define MRMSIM_SRC_MEM_TIMING_H_

#include <cstdint>

namespace mrm {
namespace mem {

struct Timings {
  double tck_ns = 1.0;     // controller clock period
  double trcd_ns = 14.0;   // ACT -> RD/WR
  double trp_ns = 14.0;    // PRE -> ACT
  double tcas_ns = 14.0;   // RD -> first data (CL)
  double tcwl_ns = 12.0;   // WR -> first data
  double tras_ns = 32.0;   // ACT -> PRE
  double trc_ns = 46.0;    // ACT -> ACT, same bank
  double trrd_ns = 4.0;    // ACT -> ACT, different bank
  double tccd_ns = 2.0;    // back-to-back column commands, same bank group
  double tburst_ns = 2.0;  // data bus occupancy of one access
  double tfaw_ns = 16.0;   // four-activate window
  double twr_ns = 15.0;    // write recovery (last data -> PRE)
  double trtp_ns = 7.5;    // read -> PRE
  double trfc_ns = 350.0;  // refresh command duration (all-bank)
  double trefi_ns = 3900.0;  // refresh interval
};

struct EnergyParams {
  double act_pre_pj = 200.0;        // one ACT+PRE pair (row open+close)
  double read_pj_per_bit = 1.2;     // column read, array + on-die datapath
  double write_pj_per_bit = 1.2;
  double io_pj_per_bit = 0.6;       // interface/PHY per transferred bit
  double refresh_pj_per_row = 200.0;
  double background_mw_per_bank = 0.5;  // leakage/peripheral, always on
  double refresh_idle_mw = 0.0;     // extra standby power for refresh logic
};

}  // namespace mem
}  // namespace mrm

#endif  // MRMSIM_SRC_MEM_TIMING_H_
