#include "src/mrm/control_plane.h"

#include <algorithm>
#include <limits>

#include "src/common/logging.h"

namespace mrm {
namespace mrmcore {

ControlPlane::ControlPlane(sim::Simulator* simulator, MrmDevice* device,
                           ControlPlaneOptions options)
    : simulator_(simulator), device_(device), options_(std::move(options)) {
  if (options_.ecc.payload_bits == 0) {
    // Default: one codeword per block at the cell model's design RBER.
    const double rber = device_->tradeoff().AtRetention(device_->config().default_retention_s)
                            .rber_at_retention;
    options_.ecc = DesignEcc(static_cast<std::uint64_t>(device_->config().block_bytes) * 8, rber,
                             options_.target_uber *
                                 static_cast<double>(device_->config().block_bytes) * 8);
  }
  zone_live_.assign(device_->config().zones, 0);
  scrub_task_ = std::make_unique<sim::PeriodicTask>(
      simulator_, simulator_->SecondsToTicks(options_.scrub_period_s), [this] { ScrubNow(); });
}

double ControlPlane::RetentionForLifetime(double lifetime_s) const {
  if (options_.retention_policy) {
    return options_.retention_policy(lifetime_s);
  }
  const double floor = 2.0 * options_.scrub_period_s;
  return std::max(lifetime_s, floor) * options_.retention_margin;
}

double ControlPlane::ScrubDeadlineFor(double written_at_s, double retention_s) const {
  const double safe_age =
      MaxSafeAge(device_->tradeoff(), retention_s, options_.ecc, options_.target_uber);
  return written_at_s + safe_age;
}

Result<std::uint32_t> ControlPlane::AllocateZone() {
  // Least-worn empty zone first: software wear levelling.
  const auto& config = device_->config();
  std::uint32_t best = config.zones;
  std::uint64_t best_wear = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t z = 0; z < config.zones; ++z) {
    const ZoneInfo& info = device_->zone_info(z);
    if (info.state != ZoneState::kEmpty) {
      continue;
    }
    if (info.wear_cycles < best_wear) {
      best_wear = info.wear_cycles;
      best = z;
    }
  }
  if (best == config.zones) {
    ++stats_.allocation_failures;
    return Error("no empty zones");
  }
  const Status opened = device_->OpenZone(best);
  if (!opened.ok()) {
    return opened.error();
  }
  return best;
}

Result<BlockId> ControlPlane::AppendPhysical(double retention_s) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!has_open_zone_ || device_->zone_info(open_zone_).state != ZoneState::kOpen) {
      auto zone = AllocateZone();
      if (!zone.ok()) {
        return zone.error();
      }
      open_zone_ = zone.value();
      has_open_zone_ = true;
    }
    auto block = device_->AppendBlock(open_zone_, retention_s, nullptr);
    if (block.ok()) {
      return block;
    }
    // Zone filled up or wore out between checks; grab a fresh one.
    has_open_zone_ = false;
  }
  return Error("append failed after zone reallocation");
}

Result<LogicalId> ControlPlane::Append(double lifetime_s) {
  const double retention = RetentionForLifetime(lifetime_s);
  auto block = AppendPhysical(retention);
  if (!block.ok()) {
    return block.error();
  }
  const BlockId phys = block.value();
  const BlockMeta& meta = device_->block_meta(phys);

  Tracked tracked;
  tracked.phys = phys;
  tracked.zone = static_cast<std::uint32_t>(phys / device_->config().zone_blocks);
  tracked.expiry_s = simulator_->now_seconds() + lifetime_s;
  tracked.deadline_s = ScrubDeadlineFor(meta.written_at_s, meta.retention_s);

  const LogicalId id = next_id_++;
  ++zone_live_[tracked.zone];
  deadlines_.push(HeapEntry{tracked.deadline_s, id, phys});
  map_.emplace(id, tracked);
  ++stats_.appends;
  return id;
}

Status ControlPlane::Read(LogicalId id, std::function<void(bool)> on_done) {
  const auto it = map_.find(id);
  if (it == map_.end()) {
    return Error("unknown or dropped logical block");
  }
  return device_->ReadBlock(it->second.phys, std::move(on_done));
}

bool ControlPlane::Alive(LogicalId id) const { return map_.count(id) != 0; }

void ControlPlane::Free(LogicalId id) {
  const auto it = map_.find(id);
  if (it == map_.end()) {
    return;
  }
  OnZoneBlockDead(it->second.zone);
  map_.erase(it);
}

void ControlPlane::OnZoneBlockDead(std::uint32_t zone) {
  MRM_CHECK(zone_live_[zone] > 0);
  if (--zone_live_[zone] == 0) {
    const ZoneInfo& info = device_->zone_info(zone);
    // Only reclaim sealed/full or open zones that the writer moved past.
    if (info.state == ZoneState::kFull ||
        (info.state == ZoneState::kOpen && !(has_open_zone_ && open_zone_ == zone))) {
      if (device_->ResetZone(zone).ok()) {
        ++stats_.zones_reclaimed;
      }
    }
  }
}

void ControlPlane::ScrubNow() {
  const double now = simulator_->now_seconds();
  const double horizon = now + options_.scrub_period_s;  // act before it's late
  // Snapshot the due entries first: a migrated block whose ECC-safe age is
  // shorter than the scrub period would otherwise re-enter the heap with a
  // deadline still inside the horizon and spin this pass forever. Such data
  // is simply rewritten once per pass.
  std::vector<HeapEntry> due;
  while (!deadlines_.empty() && deadlines_.top().deadline_s <= horizon) {
    due.push_back(deadlines_.top());
    deadlines_.pop();
  }
  for (const HeapEntry& entry : due) {
    const auto it = map_.find(entry.id);
    if (it == map_.end() || it->second.phys != entry.phys) {
      continue;  // stale: freed or already migrated
    }
    Tracked& tracked = it->second;

    if (tracked.expiry_s <= now || !options_.refresh_expiring) {
      // Data no longer needed (or policy says don't refresh): drop it.
      const LogicalId id = entry.id;
      OnZoneBlockDead(tracked.zone);
      map_.erase(it);
      ++stats_.drops;
      if (loss_handler_) {
        loss_handler_(id);
      }
      continue;
    }

    // Still needed: migrate to a fresh block with retention covering the
    // remaining lifetime.
    const double remaining = tracked.expiry_s - now;
    const double retention = RetentionForLifetime(remaining);
    auto block = AppendPhysical(retention);
    if (!block.ok()) {
      // Could not refresh (no space / endurance): treat as loss.
      const LogicalId id = entry.id;
      OnZoneBlockDead(tracked.zone);
      map_.erase(it);
      ++stats_.drops;
      if (loss_handler_) {
        loss_handler_(id);
      }
      continue;
    }
    const std::uint32_t old_zone = tracked.zone;
    tracked.phys = block.value();
    tracked.zone = static_cast<std::uint32_t>(tracked.phys / device_->config().zone_blocks);
    const BlockMeta& meta = device_->block_meta(tracked.phys);
    tracked.deadline_s = ScrubDeadlineFor(meta.written_at_s, meta.retention_s);
    ++zone_live_[tracked.zone];
    deadlines_.push(HeapEntry{tracked.deadline_s, entry.id, tracked.phys});
    OnZoneBlockDead(old_zone);
    ++stats_.scrub_rewrites;
    stats_.scrub_bytes += device_->config().block_bytes;
  }
}

}  // namespace mrmcore
}  // namespace mrm
