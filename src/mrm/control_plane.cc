#include "src/mrm/control_plane.h"

#include <algorithm>
#include <limits>

#include "src/common/logging.h"

namespace mrm {
namespace mrmcore {

ControlPlane::ControlPlane(sim::Simulator* simulator, MrmDevice* device,
                           ControlPlaneOptions options)
    : simulator_(simulator), device_(device), options_(std::move(options)) {
  if (!options_.ecc_bands.empty()) {
    // Policy-declared wear bands must be well-formed: ascending thresholds
    // starting at wear 0, every scheme concrete.
    MRM_CHECK(options_.ecc_bands.front().min_wear_cycles == 0);
    for (std::size_t i = 0; i < options_.ecc_bands.size(); ++i) {
      MRM_CHECK(options_.ecc_bands[i].ecc.payload_bits > 0);
      MRM_CHECK(i == 0 || options_.ecc_bands[i - 1].min_wear_cycles <
                              options_.ecc_bands[i].min_wear_cycles);
    }
    if (options_.ecc.payload_bits == 0) {
      options_.ecc = options_.ecc_bands.front().ecc;
    }
  }
  if (options_.ecc.payload_bits == 0) {
    // Default: one codeword per block at the cell model's design RBER.
    const double rber = device_->tradeoff().AtRetention(device_->config().default_retention_s)
                            .rber_at_retention;
    options_.ecc = DesignEcc(static_cast<std::uint64_t>(device_->config().block_bytes) * 8, rber,
                             options_.target_uber *
                                 static_cast<double>(device_->config().block_bytes) * 8);
  }
  zone_live_.assign(device_->config().zones, 0);
  zone_uncorrectable_.assign(device_->config().zones, 0);
  scrub_task_ = std::make_unique<sim::PeriodicTask>(
      simulator_, simulator_->SecondsToTicks(options_.scrub_period_s), [this] { ScrubNow(); });
}

double ControlPlane::UsableCapacityFraction() const {
  const auto& config = device_->config();
  std::uint32_t unusable = 0;
  for (std::uint32_t z = 0; z < config.zones; ++z) {
    const ZoneInfo& info = device_->zone_info(z);
    if (info.state == ZoneState::kRetired || info.failed) {
      ++unusable;
    }
  }
  return 1.0 - static_cast<double>(unusable) / static_cast<double>(config.zones);
}

double ControlPlane::RetentionForLifetime(double lifetime_s) const {
  if (options_.retention_policy) {
    return options_.retention_policy(lifetime_s);
  }
  const double floor = 2.0 * options_.scrub_period_s;
  return std::max(lifetime_s, floor) * options_.retention_margin;
}

double ControlPlane::PolicyRetention(double lifetime_s) const {
  const double retention = RetentionForLifetime(lifetime_s);
  if constexpr (kCheckedHooks) {
    if (MrmObserver* observer = device_->observer()) {
      MrmPolicyRecord record;
      record.lifetime_s = lifetime_s;
      record.retention_s = retention;
      record.now_s = simulator_->now_seconds();
      observer->OnPolicyRetention(record);
    }
  }
  return retention;
}

const EccScheme& ControlPlane::EccForZone(std::uint32_t zone) const {
  if (options_.ecc_bands.empty()) {
    return options_.ecc;
  }
  const std::uint64_t wear = device_->zone_info(zone).wear_cycles;
  const EccScheme* best = &options_.ecc_bands.front().ecc;
  for (const auto& band : options_.ecc_bands) {
    if (band.min_wear_cycles > wear) {
      break;
    }
    best = &band.ecc;
  }
  return *best;
}

double ControlPlane::ScrubDeadlineFor(std::uint32_t zone, double written_at_s,
                                      double retention_s) const {
  const double safe_age =
      MaxSafeAge(device_->tradeoff(), retention_s, EccForZone(zone), options_.target_uber);
  return written_at_s + safe_age;
}

Result<std::uint32_t> ControlPlane::AllocateZone() {
  // Least-worn empty zone first: software wear levelling.
  const auto& config = device_->config();
  std::uint32_t best = config.zones;
  std::uint64_t best_wear = std::numeric_limits<std::uint64_t>::max();
  for (std::uint32_t z = 0; z < config.zones; ++z) {
    const ZoneInfo& info = device_->zone_info(z);
    if (info.state != ZoneState::kEmpty) {
      continue;
    }
    if (info.wear_cycles < best_wear) {
      best_wear = info.wear_cycles;
      best = z;
    }
  }
  if (best == config.zones) {
    ++stats_.allocation_failures;
    return Error("no empty zones");
  }
  const Status opened = device_->OpenZone(best);
  if (!opened.ok()) {
    return opened.error();
  }
  return best;
}

Result<BlockId> ControlPlane::AppendPhysical(double retention_s,
                                             std::function<void(BlockId)> on_programmed) {
  for (int attempt = 0; attempt < 2;) {
    if (!has_open_zone_ || device_->zone_info(open_zone_).state != ZoneState::kOpen ||
        device_->ZoneFailed(open_zone_)) {
      auto zone = AllocateZone();
      if (!zone.ok()) {
        return zone.error();
      }
      open_zone_ = zone.value();
      has_open_zone_ = true;
    }
    const std::uint32_t pointer_before = device_->zone_info(open_zone_).write_pointer;
    // The callback is only consumed by a successful append: failed attempts
    // below never schedule a programming pulse, so it stays intact for the
    // retry.
    auto block = device_->AppendBlock(open_zone_, retention_s, on_programmed);
    if (block.ok()) {
      return block;
    }
    if (device_->ZoneFailed(open_zone_)) {
      // Whole-zone failure fired on this append: everything in the zone is
      // lost; retire it and move on to a fresh zone.
      HandleZoneFailure(open_zone_);
      ++attempt;
      continue;
    }
    if (device_->zone_info(open_zone_).state == ZoneState::kOpen &&
        device_->zone_info(open_zone_).write_pointer > pointer_before) {
      // A stuck-at slot burned: the zone advanced past it and stays usable,
      // so retry the next slot without consuming a reallocation attempt.
      // Bounded by the zone size (every burn advances the pointer).
      continue;
    }
    // Zone filled up or wore out between checks; grab a fresh one.
    has_open_zone_ = false;
    ++attempt;
  }
  return Error("append failed after zone reallocation");
}

Result<LogicalId> ControlPlane::Append(double lifetime_s, std::function<void()> on_programmed) {
  const double retention = PolicyRetention(lifetime_s);
  auto block = AppendPhysical(
      retention, on_programmed == nullptr
                     ? std::function<void(BlockId)>()
                     : [cb = std::move(on_programmed)](BlockId /*block*/) { cb(); });
  if (!block.ok()) {
    return block.error();
  }
  const BlockId phys = block.value();
  const BlockMeta& meta = device_->block_meta(phys);

  Tracked tracked;
  tracked.phys = phys;
  tracked.zone = static_cast<std::uint32_t>(phys / device_->config().zone_blocks);
  tracked.expiry_s = simulator_->now_seconds() + lifetime_s;
  tracked.deadline_s = ScrubDeadlineFor(tracked.zone, meta.written_at_s, meta.retention_s);

  const LogicalId id = next_id_++;
  ++zone_live_[tracked.zone];
  deadlines_.push(HeapEntry{tracked.deadline_s, id, phys});
  map_.emplace(id, tracked);
  ++stats_.appends;
  return id;
}

Status ControlPlane::Read(LogicalId id, std::function<void(bool)> on_done) {
  if (map_.find(id) == map_.end()) {
    return Error("unknown or dropped logical block");
  }
  return DoRead(id, 0, 0, 0, std::make_shared<std::function<void(bool)>>(std::move(on_done)));
}

Status ControlPlane::DoRead(LogicalId id, int attempt, std::uint32_t open_faults,
                            BlockId held_phys, SharedDone on_done) {
  const auto it = map_.find(id);
  if (it == map_.end()) {
    // Freed (or dropped) while a retry was pending: the data is gone.
    ResolveReads(held_phys, open_faults, fault::FaultResolution::kDropped);
    if (*on_done) {
      (*on_done)(false);
    }
    return Status::Ok();
  }
  const BlockId phys = it->second.phys;
  if (open_faults > 0 && phys != held_phys) {
    // The block was migrated (scrubbed) between attempts: the re-program
    // renewed the data, which is what resolved the held faults.
    ResolveReads(held_phys, open_faults, fault::FaultResolution::kEmergencyScrub);
    open_faults = 0;
  }
  const Status issued =
      device_->ReadBlockEx(phys, [this, id, phys, attempt, open_faults, on_done](ReadResult r) {
        OnReadResult(id, phys, attempt, open_faults, r, on_done);
      });
  if (!issued.ok()) {
    ResolveReads(phys, open_faults, fault::FaultResolution::kDropped);
    ++stats_.accounting_errors;  // mapped blocks should always be readable
    if (*on_done) {
      (*on_done)(false);
    }
  }
  return issued;
}

void ControlPlane::ResolveReads(BlockId phys, std::uint32_t count,
                                fault::FaultResolution resolution) {
  if (injector_ == nullptr) {
    return;
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    injector_->ResolveRead(phys, resolution);
  }
}

void ControlPlane::OnReadResult(LogicalId id, BlockId phys, int attempt,
                                std::uint32_t open_faults, ReadResult result, SharedDone on_done) {
  if (result.outcome != ReadOutcome::kUncorrectable) {
    // Data delivered (clean, corrected, or silently corrupt — the control
    // plane cannot tell the last two apart; only the RAS stats know).
    ResolveReads(phys, open_faults, fault::FaultResolution::kRetryCorrected);
    if (attempt > 0) {
      ++stats_.retry_successes;
    }
    if (*on_done) {
      (*on_done)(true);
    }
    return;
  }

  std::uint32_t ue_zone = device_->config().zones;  // sentinel: no UE charged
  if (result.injected) {
    ++open_faults;
    ue_zone = static_cast<std::uint32_t>(phys / device_->config().zone_blocks);
    ++zone_uncorrectable_[ue_zone];
  }

  const auto it = map_.find(id);
  if (it == map_.end()) {
    // Freed mid-flight; nothing left to recover for.
    ResolveReads(phys, open_faults, fault::FaultResolution::kDropped);
    if (*on_done) {
      (*on_done)(false);
    }
    return;
  }

  if (result.permanent) {
    ResolveReads(phys, open_faults, fault::FaultResolution::kDropped);
    const std::uint32_t zone = it->second.zone;
    if (device_->ZoneFailed(zone)) {
      // Whole-zone failure: this read is one of the casualties. Retire the
      // zone and surface the loss for every mapped block in it.
      HandleZoneFailure(zone);
    }
    // Expired data keeps the legacy contract: report the loss, let the
    // periodic scrub collect the mapping.
    if (*on_done) {
      (*on_done)(false);
    }
    return;
  }

  // Transient detected-uncorrectable: bounded retry with exponential backoff
  // (each retry draws a fresh decode roll).
  if (attempt < options_.max_read_retries) {
    ++stats_.read_retries;
    const double delay_s = options_.retry_backoff_ns * 1e-9 * static_cast<double>(1 << attempt);
    simulator_->ScheduleAfter(
        simulator_->SecondsToTicks(delay_s), [this, id, attempt, open_faults, phys, on_done] {
          (void)DoRead(id, attempt + 1, open_faults, phys, on_done);
        });
    if (ue_zone < device_->config().zones) {
      MaybeRetireZone(ue_zone);
    }
    return;
  }

  // Retries exhausted: emergency scrub (re-program from the logical copy)
  // or drop-and-recompute, per policy (§4).
  if (options_.emergency_scrub && MigrateBlock(it->second, id, /*account_old_zone=*/true)) {
    ++stats_.emergency_scrubs;
    ResolveReads(phys, open_faults, fault::FaultResolution::kEmergencyScrub);
    if (*on_done) {
      (*on_done)(true);
    }
  } else {
    ResolveReads(phys, open_faults, fault::FaultResolution::kDropped);
    ++stats_.uncorrectable_drops;
    DropBlock(id, /*account_zone=*/true);
    if (*on_done) {
      (*on_done)(false);
    }
  }
  if (ue_zone < device_->config().zones) {
    MaybeRetireZone(ue_zone);
  }
}

bool ControlPlane::MigrateBlock(Tracked& tracked, LogicalId id, bool account_old_zone) {
  const double now = simulator_->now_seconds();
  const double remaining = tracked.expiry_s - now;
  if (remaining <= 0.0 || remaining < options_.scrub_crossover_s) {
    // Expired, or inside the recompute crossover: not worth re-programming.
    return false;
  }
  auto block = AppendPhysical(PolicyRetention(remaining));
  if (!block.ok()) {
    return false;
  }
  const std::uint32_t old_zone = tracked.zone;
  tracked.phys = block.value();
  tracked.zone = static_cast<std::uint32_t>(tracked.phys / device_->config().zone_blocks);
  const BlockMeta& meta = device_->block_meta(tracked.phys);
  tracked.deadline_s = ScrubDeadlineFor(tracked.zone, meta.written_at_s, meta.retention_s);
  ++zone_live_[tracked.zone];
  deadlines_.push(HeapEntry{tracked.deadline_s, id, tracked.phys});
  if (account_old_zone) {
    OnZoneBlockDead(old_zone);
  }
  return true;
}

void ControlPlane::DropBlock(LogicalId id, bool account_zone) {
  const auto it = map_.find(id);
  if (it == map_.end()) {
    return;
  }
  const std::uint32_t zone = it->second.zone;
  map_.erase(it);
  if (account_zone) {
    OnZoneBlockDead(zone);
  }
  if (loss_handler_) {
    loss_handler_(id);
  }
}

void ControlPlane::HandleZoneFailure(std::uint32_t zone) {
  if (device_->zone_info(zone).state == ZoneState::kRetired) {
    return;  // a concurrent read already retired it
  }
  // All data in the zone is gone: surface the loss for every mapped block
  // (the owner recomputes, §4), then retire the zone for good.
  std::vector<LogicalId> victims;
  for (const auto& entry : map_) {
    if (entry.second.zone == zone) {
      victims.push_back(entry.first);
    }
  }
  for (const LogicalId victim : victims) {
    ++stats_.uncorrectable_drops;
    DropBlock(victim, /*account_zone=*/false);
  }
  zone_live_[zone] = 0;
  if (has_open_zone_ && open_zone_ == zone) {
    has_open_zone_ = false;
  }
  device_->RetireZone(zone);
  ++stats_.zones_retired;
  if (injector_ != nullptr) {
    injector_->ResolveZone(zone, fault::FaultResolution::kZoneRetired);
  }
}

void ControlPlane::MaybeRetireZone(std::uint32_t zone) {
  if (options_.zone_retire_uncorrectable == 0 ||
      zone_uncorrectable_[zone] < options_.zone_retire_uncorrectable) {
    return;
  }
  if (device_->zone_info(zone).state == ZoneState::kRetired) {
    return;
  }
  if (device_->ZoneFailed(zone)) {
    HandleZoneFailure(zone);
    return;
  }
  // The zone keeps producing uncorrectable reads: migrate its live blocks to
  // healthy zones while they are still (mostly) readable, then retire it.
  // Stop appending into it first so migrations land elsewhere.
  if (has_open_zone_ && open_zone_ == zone) {
    has_open_zone_ = false;
  }
  std::vector<LogicalId> residents;
  for (const auto& entry : map_) {
    if (entry.second.zone == zone) {
      residents.push_back(entry.first);
    }
  }
  for (const LogicalId resident : residents) {
    const auto it = map_.find(resident);
    if (it == map_.end()) {
      continue;
    }
    if (MigrateBlock(it->second, resident, /*account_old_zone=*/false)) {
      ++stats_.blocks_remapped;
    } else {
      ++stats_.uncorrectable_drops;
      DropBlock(resident, /*account_zone=*/false);
    }
  }
  zone_live_[zone] = 0;
  if (has_open_zone_ && open_zone_ == zone) {
    has_open_zone_ = false;
  }
  device_->RetireZone(zone);
  ++stats_.zones_retired;
}

bool ControlPlane::Alive(LogicalId id) const { return map_.count(id) != 0; }

void ControlPlane::Free(LogicalId id) {
  const auto it = map_.find(id);
  if (it == map_.end()) {
    return;
  }
  OnZoneBlockDead(it->second.zone);
  map_.erase(it);
}

void ControlPlane::OnZoneBlockDead(std::uint32_t zone) {
  // Bookkeeping guard instead of a hard abort: a miscounted zone is recorded
  // and skipped; the run degrades instead of dying (DESIGN.md §10).
  if (zone >= zone_live_.size() || zone_live_[zone] == 0) {
    ++stats_.accounting_errors;
    return;
  }
  if (--zone_live_[zone] == 0) {
    const ZoneInfo& info = device_->zone_info(zone);
    // Only reclaim sealed/full or open zones that the writer moved past.
    if (info.state == ZoneState::kFull ||
        (info.state == ZoneState::kOpen && !(has_open_zone_ && open_zone_ == zone))) {
      if (device_->ResetZone(zone).ok()) {
        ++stats_.zones_reclaimed;
        zone_uncorrectable_[zone] = 0;  // fresh data, fresh RAS history
      }
    }
  }
}

void ControlPlane::ScrubNow() {
  const double now = simulator_->now_seconds();
  const double horizon = now + options_.scrub_period_s;  // act before it's late
  // Snapshot the due entries first: a migrated block whose ECC-safe age is
  // shorter than the scrub period would otherwise re-enter the heap with a
  // deadline still inside the horizon and spin this pass forever. Such data
  // is simply rewritten once per pass.
  std::vector<HeapEntry> due;
  while (!deadlines_.empty() && deadlines_.top().deadline_s <= horizon) {
    due.push_back(deadlines_.top());
    deadlines_.pop();
  }
  for (const HeapEntry& entry : due) {
    const auto it = map_.find(entry.id);
    if (it == map_.end() || it->second.phys != entry.phys) {
      continue;  // stale: freed or already migrated
    }
    Tracked& tracked = it->second;

    if (tracked.expiry_s <= now || !options_.refresh_expiring ||
        tracked.expiry_s - now < options_.scrub_crossover_s) {
      // Data no longer needed, policy says don't refresh, or the remaining
      // lifetime is inside the scrub-vs-recompute crossover: drop it and let
      // the owner recompute (§4) instead of paying a program pulse.
      const LogicalId id = entry.id;
      OnZoneBlockDead(tracked.zone);
      map_.erase(it);
      ++stats_.drops;
      if (loss_handler_) {
        loss_handler_(id);
      }
      continue;
    }

    // Still needed: migrate to a fresh block with retention covering the
    // remaining lifetime.
    const double remaining = tracked.expiry_s - now;
    const double retention = PolicyRetention(remaining);
    auto block = AppendPhysical(retention);
    if (!block.ok()) {
      // Could not refresh (no space / endurance): treat as loss.
      const LogicalId id = entry.id;
      OnZoneBlockDead(tracked.zone);
      map_.erase(it);
      ++stats_.drops;
      if (loss_handler_) {
        loss_handler_(id);
      }
      continue;
    }
    const std::uint32_t old_zone = tracked.zone;
    tracked.phys = block.value();
    tracked.zone = static_cast<std::uint32_t>(tracked.phys / device_->config().zone_blocks);
    const BlockMeta& meta = device_->block_meta(tracked.phys);
    tracked.deadline_s = ScrubDeadlineFor(tracked.zone, meta.written_at_s, meta.retention_s);
    ++zone_live_[tracked.zone];
    deadlines_.push(HeapEntry{tracked.deadline_s, entry.id, tracked.phys});
    OnZoneBlockDead(old_zone);
    ++stats_.scrub_rewrites;
    stats_.scrub_bytes += device_->config().block_bytes;
  }
}

// std::priority_queue's container is a protected member; tie order among
// equal deadlines depends on its exact heap-array layout, so the snapshot
// must read and write that array verbatim (rebuilding via push or make_heap
// is not guaranteed to reproduce the same layout). A class derived from the
// queue may form a pointer to the protected container member and apply it to
// any queue object — the standard's sanctioned route to the raw array.
void ControlPlane::SaveState(SavedState* out) const {
  struct Access : DeadlineQueue {
    static const std::vector<HeapEntry>& Container(const DeadlineQueue& q) {
      return q.*(&Access::c);
    }
  };
  out->map.clear();
  out->map.reserve(map_.size());
  for (const auto& [id, tracked] : map_) {
    out->map.push_back(SavedState::TrackedEntry{id, tracked});
  }
  out->deadlines = Access::Container(deadlines_);
  out->zone_live = zone_live_;
  out->zone_uncorrectable = zone_uncorrectable_;
  out->open_zone = open_zone_;
  out->has_open_zone = has_open_zone_;
  out->next_id = next_id_;
  out->stats = stats_;
  scrub_task_->SaveState(&out->scrub);
}

void ControlPlane::RestoreState(const SavedState& saved) {
  struct Access : DeadlineQueue {
    static std::vector<HeapEntry>& Container(DeadlineQueue& q) { return q.*(&Access::c); }
  };
  MRM_CHECK(saved.zone_live.size() == zone_live_.size() &&
            saved.zone_uncorrectable.size() == zone_uncorrectable_.size())
      << "ControlPlane::RestoreState: snapshot shape does not match this "
         "control plane's configuration";
  map_.clear();
  for (const SavedState::TrackedEntry& entry : saved.map) {
    map_.emplace(entry.id, entry.tracked);
  }
  Access::Container(deadlines_) = saved.deadlines;
  zone_live_ = saved.zone_live;
  zone_uncorrectable_ = saved.zone_uncorrectable;
  open_zone_ = saved.open_zone;
  has_open_zone_ = saved.has_open_zone;
  next_id_ = saved.next_id;
  stats_ = saved.stats;
  scrub_task_->Stop();
  scrub_task_->RestoreState(saved.scrub);
}

}  // namespace mrmcore
}  // namespace mrm
