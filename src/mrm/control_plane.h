// The MRM software control plane (paper §4).
//
// The device is deliberately dumb: no refresh, no wear levelling, no GC.
// This class is the host-side "foundation model OS" component that owns
// those decisions:
//
//  * Zone allocation — least-worn-first, which wear-levels across zones in
//    software.
//  * Retention tracking — every logical block carries an expiry (when its
//    data stops being useful) and a scrub deadline (when ECC can no longer
//    guarantee it, from the cell RBER curve and the configured code).
//  * Scrubbing — a periodic task migrates still-needed blocks whose scrub
//    deadline approaches into a fresh zone (re-programming renews
//    retention), and drops blocks whose data expired — for soft state the
//    owner recomputes instead (the refresh-or-recompute decision of §4).
//  * Reclamation — zones whose blocks are all dead are reset (free) with no
//    erase cost.
//
// Data is addressed by LogicalId; the control plane keeps the logical ->
// physical map exactly as a zoned-flash host FTL would, but driven by
// retention rather than by overwrite invalidation.

#ifndef MRMSIM_SRC_MRM_CONTROL_PLANE_H_
#define MRMSIM_SRC_MRM_CONTROL_PLANE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/mrm/dcm.h"
#include "src/mrm/ecc.h"
#include "src/mrm/mrm_device.h"
#include "src/sim/periodic_task.h"

namespace mrm {
namespace mrmcore {

using LogicalId = std::uint64_t;

struct ControlPlaneOptions {
  // Period of the scrub scan.
  double scrub_period_s = 60.0;
  // Programmed retention = max(lifetime hint, scrub window) * margin.
  double retention_margin = 1.25;
  // Overrides the default DCM mapping from lifetime hint to programmed
  // retention when set (ablations: fixed / two-class policies from dcm.h).
  RetentionPolicy retention_policy;
  // ECC code protecting each block and the reliability target; together with
  // the cell model they set the scrub deadline for every written block.
  EccScheme ecc;
  double target_uber = 1e-15;
  // Wear-banded ECC (policy layer, paper §4): zones whose wear_cycles have
  // reached a band's threshold use that band's stronger code for scrub
  // deadlines. Ascending by min_wear_cycles, first band at 0. Empty = use
  // `ecc` for every zone. When bands are set and `ecc` is default-empty, the
  // band-0 scheme becomes the plane-wide `ecc`.
  struct EccBandScheme {
    std::uint64_t min_wear_cycles = 0;
    EccScheme ecc;
  };
  std::vector<EccBandScheme> ecc_bands;
  // When false, expiring-but-still-needed data is dropped (owner recomputes)
  // instead of rewritten.
  bool refresh_expiring = true;
  // Scrub-vs-drop-and-recompute crossover: at scrub time, a block with less
  // than this much remaining lifetime is dropped (the loss handler fires and
  // the owner recomputes) instead of being rewritten. Cheaper than paying an
  // MRM program pulse for data about to die anyway. 0 = always refresh.
  double scrub_crossover_s = 0.0;

  // --- RAS recovery (DESIGN.md §10) ---------------------------------------
  // Bounded read-retry on transient detected-uncorrectable reads: each retry
  // waits retry_backoff_ns * 2^attempt before re-reading (transient upsets
  // re-roll, so a retry can decode clean).
  int max_read_retries = 3;
  double retry_backoff_ns = 1000.0;
  // After retries are exhausted: re-program the block from the logical copy
  // (emergency scrub) when true; otherwise drop it and let the owner
  // recompute (the paper's §4 refresh-or-recompute decision).
  bool emergency_scrub = true;
  // Retire a zone (and remap its live blocks) once this many uncorrectable
  // reads have landed in it. 0 disables threshold retirement.
  std::uint32_t zone_retire_uncorrectable = 4;
};

struct ControlPlaneStats {
  std::uint64_t appends = 0;
  std::uint64_t scrub_rewrites = 0;
  std::uint64_t scrub_bytes = 0;
  std::uint64_t drops = 0;             // expired, owner must recompute
  std::uint64_t zones_reclaimed = 0;
  std::uint64_t allocation_failures = 0;
  // RAS recovery ledger (all zero on a fault-free run).
  std::uint64_t read_retries = 0;        // retry attempts issued
  std::uint64_t retry_successes = 0;     // reads rescued by a retry
  std::uint64_t emergency_scrubs = 0;    // blocks re-programmed after UE
  std::uint64_t uncorrectable_drops = 0; // data lost to uncorrectable reads
  std::uint64_t zones_retired = 0;
  std::uint64_t blocks_remapped = 0;     // live blocks migrated off a retiring zone
  std::uint64_t accounting_errors = 0;   // internal bookkeeping guards tripped

  friend bool operator==(const ControlPlaneStats&, const ControlPlaneStats&) = default;
};

class ControlPlane {
 public:
  // Both pointers must outlive the control plane.
  ControlPlane(sim::Simulator* simulator, MrmDevice* device, ControlPlaneOptions options);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  // Writes one block of data expected to be useful for `lifetime_s`.
  // Returns the logical id. Physical placement, retention programming and
  // any later scrub migration are invisible to the caller. `on_programmed`
  // (optional) fires when the device finishes the programming pulse — the
  // closed-loop driver uses it to time a step's MRM writes.
  Result<LogicalId> Append(double lifetime_s, std::function<void()> on_programmed = nullptr);

  // Reads a logical block; on_done(ok) — ok==false when the data was lost
  // (expired before read and not refreshed).
  Status Read(LogicalId id, std::function<void(bool)> on_done);

  // Marks a logical block dead (its data is no longer needed).
  void Free(LogicalId id);

  // True when the logical block still maps to live data.
  bool Alive(LogicalId id) const;

  // Invoked when the control plane drops a block (expired soft state); the
  // owner decides whether to recompute.
  void SetLossHandler(std::function<void(LogicalId)> handler) {
    loss_handler_ = std::move(handler);
  }

  // The retention the DCM policy would program for a lifetime hint.
  double RetentionForLifetime(double lifetime_s) const;

  // The ECC scheme protecting `zone` right now: the strongest declared wear
  // band the zone's wear_cycles have reached, or the plane-wide scheme when
  // no bands are declared.
  const EccScheme& EccForZone(std::uint32_t zone) const;

  const ControlPlaneStats& stats() const { return stats_; }
  std::uint64_t live_blocks() const { return map_.size(); }

  // Runs one scrub pass immediately (tests / shutdown flushes).
  void ScrubNow();

  // Attaches the deterministic fault injector to this control plane and its
  // device (nullptr detaches). The control plane reports its recovery
  // actions (retry, emergency scrub, zone retirement, drop) back through it.
  void SetFaultInjector(fault::FaultInjector* injector) {
    injector_ = injector;
    device_->SetFaultInjector(injector);
  }

  // Graceful degradation: fraction of the device's zones still usable
  // (neither retired nor failed). Shrinks as RAS retires zones; allocation
  // pressure (stats().allocation_failures) is the backpressure signal.
  double UsableCapacityFraction() const;

 private:
  struct Tracked {
    BlockId phys = 0;
    std::uint32_t zone = 0;
    double expiry_s = 0.0;    // when the data stops being useful
    double deadline_s = 0.0;  // ECC-safe age bound (absolute sim time)
  };

  struct HeapEntry {
    double deadline_s;
    LogicalId id;
    BlockId phys;  // stale-entry detection
    bool operator>(const HeapEntry& other) const { return deadline_s > other.deadline_s; }
  };

  Result<std::uint32_t> AllocateZone();
  Result<BlockId> AppendPhysical(double retention_s,
                                 std::function<void(BlockId)> on_programmed = nullptr);
  void OnZoneBlockDead(std::uint32_t zone);
  double ScrubDeadlineFor(std::uint32_t zone, double written_at_s, double retention_s) const;
  // RetentionForLifetime plus the checked-build policy-audit hook: emits an
  // MrmPolicyRecord so MrmChecker can compare the programmed retention
  // against the declared policy. Used at every programming site.
  double PolicyRetention(double lifetime_s) const;

  // --- RAS recovery path (DESIGN.md §10) ----------------------------------
  using SharedDone = std::shared_ptr<std::function<void(bool)>>;
  // Issues read attempt `attempt` of a logical block. `open_faults` injected
  // uncorrectable faults (all on `held_phys`) are carried until the op's
  // disposition is known, then resolved with it.
  Status DoRead(LogicalId id, int attempt, std::uint32_t open_faults, BlockId held_phys,
                SharedDone on_done);
  void OnReadResult(LogicalId id, BlockId phys, int attempt, std::uint32_t open_faults,
                    ReadResult result, SharedDone on_done);
  // Reports `count` injected read faults on `phys` as resolved.
  void ResolveReads(BlockId phys, std::uint32_t count, fault::FaultResolution resolution);
  // Re-programs a live block from its logical copy into a fresh zone.
  // `account_old_zone` runs the old zone's live-count bookkeeping (off when
  // the old zone is being retired wholesale).
  bool MigrateBlock(Tracked& tracked, LogicalId id, bool account_old_zone);
  // Drops a logical block: data lost, owner must recompute (§4).
  void DropBlock(LogicalId id, bool account_zone);
  // Whole-zone failure: every mapped block in the zone is lost; drop them,
  // retire the zone, resolve the zone fault.
  void HandleZoneFailure(std::uint32_t zone);
  // Threshold retirement: too many uncorrectable reads landed in the zone —
  // remap its live blocks elsewhere and retire it.
  void MaybeRetireZone(std::uint32_t zone);

  // snapshot-exempt(owning simulator; captured separately by the checkpoint layer)
  sim::Simulator* simulator_;
  // snapshot-exempt(borrowed device; snapshots itself via MrmDevice::SaveState)
  MrmDevice* device_;
  // snapshot-exempt(construction parameters; covered by the config fingerprint)
  ControlPlaneOptions options_;

  // Ordered map: zone retirement iterates it to collect a zone's blocks, and
  // iteration order must be deterministic (determinism lint, DESIGN.md §9).
  std::map<LogicalId, Tracked> map_;
  using DeadlineQueue =
      std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>>;
  DeadlineQueue deadlines_;
  std::vector<std::uint32_t> zone_live_;  // live logical blocks per zone
  std::vector<std::uint32_t> zone_uncorrectable_;  // UE reads per zone (RAS)
  std::uint32_t open_zone_ = 0;
  bool has_open_zone_ = false;
  LogicalId next_id_ = 1;
  ControlPlaneStats stats_;
  // snapshot-exempt(owner callback wiring; re-established after construction)
  std::function<void(LogicalId)> loss_handler_;
  std::unique_ptr<sim::PeriodicTask> scrub_task_;
  // snapshot-exempt(attachment; the injector snapshots its own stats ledger)
  fault::FaultInjector* injector_ = nullptr;

 public:
  // Durable checkpoint of the control plane (DESIGN.md §13): the full
  // logical->physical map, the scrub-deadline heap, per-zone live/UE counts,
  // the open-zone cursor, the id allocator, the stats ledger, and the scrub
  // task's schedule. `deadlines` stores the priority_queue's RAW underlying
  // array: ties on deadline_s (common — one batch's appends share a
  // deadline) pop in heap-layout order, so the restore must reproduce that
  // exact layout rather than rebuild the heap from sorted input.
  struct SavedState {
    struct TrackedEntry {
      LogicalId id = 0;
      Tracked tracked;
    };
    std::vector<TrackedEntry> map;
    std::vector<HeapEntry> deadlines;  // verbatim heap-array layout
    std::vector<std::uint32_t> zone_live;
    std::vector<std::uint32_t> zone_uncorrectable;
    std::uint32_t open_zone = 0;
    bool has_open_zone = false;
    LogicalId next_id = 1;
    ControlPlaneStats stats;
    sim::PeriodicTask::SavedState scrub;
  };

  // Captures the control plane into `out` (overwriting it).
  void SaveState(SavedState* out) const;

  // Restores a snapshot taken from an identically configured control plane.
  // Precondition for a cross-process restore: the simulator's queue was
  // cleared via RestoreExecution, so re-creating the scrub task's event
  // cannot leave the constructor-scheduled one alive.
  void RestoreState(const SavedState& saved);
};

}  // namespace mrmcore
}  // namespace mrm

#endif  // MRMSIM_SRC_MRM_CONTROL_PLANE_H_
