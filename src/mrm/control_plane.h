// The MRM software control plane (paper §4).
//
// The device is deliberately dumb: no refresh, no wear levelling, no GC.
// This class is the host-side "foundation model OS" component that owns
// those decisions:
//
//  * Zone allocation — least-worn-first, which wear-levels across zones in
//    software.
//  * Retention tracking — every logical block carries an expiry (when its
//    data stops being useful) and a scrub deadline (when ECC can no longer
//    guarantee it, from the cell RBER curve and the configured code).
//  * Scrubbing — a periodic task migrates still-needed blocks whose scrub
//    deadline approaches into a fresh zone (re-programming renews
//    retention), and drops blocks whose data expired — for soft state the
//    owner recomputes instead (the refresh-or-recompute decision of §4).
//  * Reclamation — zones whose blocks are all dead are reset (free) with no
//    erase cost.
//
// Data is addressed by LogicalId; the control plane keeps the logical ->
// physical map exactly as a zoned-flash host FTL would, but driven by
// retention rather than by overwrite invalidation.

#ifndef MRMSIM_SRC_MRM_CONTROL_PLANE_H_
#define MRMSIM_SRC_MRM_CONTROL_PLANE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/mrm/dcm.h"
#include "src/mrm/ecc.h"
#include "src/mrm/mrm_device.h"
#include "src/sim/periodic_task.h"

namespace mrm {
namespace mrmcore {

using LogicalId = std::uint64_t;

struct ControlPlaneOptions {
  // Period of the scrub scan.
  double scrub_period_s = 60.0;
  // Programmed retention = max(lifetime hint, scrub window) * margin.
  double retention_margin = 1.25;
  // Overrides the default DCM mapping from lifetime hint to programmed
  // retention when set (ablations: fixed / two-class policies from dcm.h).
  RetentionPolicy retention_policy;
  // ECC code protecting each block and the reliability target; together with
  // the cell model they set the scrub deadline for every written block.
  EccScheme ecc;
  double target_uber = 1e-15;
  // When false, expiring-but-still-needed data is dropped (owner recomputes)
  // instead of rewritten.
  bool refresh_expiring = true;
};

struct ControlPlaneStats {
  std::uint64_t appends = 0;
  std::uint64_t scrub_rewrites = 0;
  std::uint64_t scrub_bytes = 0;
  std::uint64_t drops = 0;             // expired, owner must recompute
  std::uint64_t zones_reclaimed = 0;
  std::uint64_t allocation_failures = 0;
};

class ControlPlane {
 public:
  // Both pointers must outlive the control plane.
  ControlPlane(sim::Simulator* simulator, MrmDevice* device, ControlPlaneOptions options);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  // Writes one block of data expected to be useful for `lifetime_s`.
  // Returns the logical id. Physical placement, retention programming and
  // any later scrub migration are invisible to the caller.
  Result<LogicalId> Append(double lifetime_s);

  // Reads a logical block; on_done(ok) — ok==false when the data was lost
  // (expired before read and not refreshed).
  Status Read(LogicalId id, std::function<void(bool)> on_done);

  // Marks a logical block dead (its data is no longer needed).
  void Free(LogicalId id);

  // True when the logical block still maps to live data.
  bool Alive(LogicalId id) const;

  // Invoked when the control plane drops a block (expired soft state); the
  // owner decides whether to recompute.
  void SetLossHandler(std::function<void(LogicalId)> handler) {
    loss_handler_ = std::move(handler);
  }

  // The retention the DCM policy would program for a lifetime hint.
  double RetentionForLifetime(double lifetime_s) const;

  const ControlPlaneStats& stats() const { return stats_; }
  std::uint64_t live_blocks() const { return map_.size(); }

  // Runs one scrub pass immediately (tests / shutdown flushes).
  void ScrubNow();

 private:
  struct Tracked {
    BlockId phys = 0;
    std::uint32_t zone = 0;
    double expiry_s = 0.0;    // when the data stops being useful
    double deadline_s = 0.0;  // ECC-safe age bound (absolute sim time)
  };

  struct HeapEntry {
    double deadline_s;
    LogicalId id;
    BlockId phys;  // stale-entry detection
    bool operator>(const HeapEntry& other) const { return deadline_s > other.deadline_s; }
  };

  Result<std::uint32_t> AllocateZone();
  Result<BlockId> AppendPhysical(double retention_s);
  void OnZoneBlockDead(std::uint32_t zone);
  double ScrubDeadlineFor(double written_at_s, double retention_s) const;

  sim::Simulator* simulator_;
  MrmDevice* device_;
  ControlPlaneOptions options_;

  std::unordered_map<LogicalId, Tracked> map_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>> deadlines_;
  std::vector<std::uint32_t> zone_live_;  // live logical blocks per zone
  std::uint32_t open_zone_ = 0;
  bool has_open_zone_ = false;
  LogicalId next_id_ = 1;
  ControlPlaneStats stats_;
  std::function<void(LogicalId)> loss_handler_;
  std::unique_ptr<sim::PeriodicTask> scrub_task_;
};

}  // namespace mrmcore
}  // namespace mrm

#endif  // MRMSIM_SRC_MRM_CONTROL_PLANE_H_
