#include "src/mrm/dcm.h"

#include <algorithm>
#include <cmath>

namespace mrm {
namespace mrmcore {

namespace {

// A lifetime hint is advisory; a non-finite or negative one (NaN from a
// failed estimate, inf from an "immortal" marker) must not poison retention
// math downstream. Treat both as "unknown" — 0 — which lands on the policy's
// conservative branch (floor / short class).
double SanitizeLifetime(double lifetime_s) {
  if (!std::isfinite(lifetime_s) || lifetime_s < 0.0) {
    return 0.0;
  }
  return lifetime_s;
}

}  // namespace

RetentionPolicy MakeDcmPolicy(double margin, double floor_s) {
  return [margin, floor_s](double lifetime_s) {
    return std::max(SanitizeLifetime(lifetime_s), floor_s) * margin;
  };
}

RetentionPolicy MakeFixedPolicy(double retention_s) {
  return [retention_s](double /*lifetime_s*/) { return retention_s; };
}

RetentionPolicy MakeTwoClassPolicy(double short_retention_s, double long_retention_s,
                                   double short_threshold_s) {
  return [=](double lifetime_s) {
    return SanitizeLifetime(lifetime_s) <= short_threshold_s ? short_retention_s
                                                             : long_retention_s;
  };
}

}  // namespace mrmcore
}  // namespace mrm
