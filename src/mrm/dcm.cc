#include "src/mrm/dcm.h"

#include <algorithm>

namespace mrm {
namespace mrmcore {

RetentionPolicy MakeDcmPolicy(double margin, double floor_s) {
  return [margin, floor_s](double lifetime_s) {
    return std::max(lifetime_s, floor_s) * margin;
  };
}

RetentionPolicy MakeFixedPolicy(double retention_s) {
  return [retention_s](double /*lifetime_s*/) { return retention_s; };
}

RetentionPolicy MakeTwoClassPolicy(double short_retention_s, double long_retention_s,
                                   double short_threshold_s) {
  return [=](double lifetime_s) {
    return lifetime_s <= short_threshold_s ? short_retention_s : long_retention_s;
  };
}

}  // namespace mrmcore
}  // namespace mrm
