// Dynamically Configurable Memory (DCM) retention policies (paper §4).
//
// A retention policy maps a data-lifetime hint to the retention the write
// should be programmed with. DCM right-provisions per write; the fixed
// policies model conventional devices (one retention for everything) and are
// the baselines in the E7 ablation.

#ifndef MRMSIM_SRC_MRM_DCM_H_
#define MRMSIM_SRC_MRM_DCM_H_

#include <functional>

namespace mrm {
namespace mrmcore {

// Returns the retention (seconds) to program for a write whose data is
// expected to live `lifetime_s`. Non-finite or negative lifetime hints are
// treated as 0 (unknown) by every policy built here, so a bad estimate lands
// on the conservative branch instead of poisoning the retention math.
using RetentionPolicy = std::function<double(double lifetime_s)>;

// DCM: retention = max(lifetime, floor) * margin. The floor keeps very
// short-lived data scrubbable (at least two scrub periods).
RetentionPolicy MakeDcmPolicy(double margin, double floor_s);

// Fixed: every write programmed at `retention_s` regardless of lifetime —
// how an SCM-era device behaves (typically retention_s = 10 years).
RetentionPolicy MakeFixedPolicy(double retention_s);

// Class-based: one retention per data class, chosen offline. Middle ground
// between fixed and DCM; `short_threshold_s` splits the two classes.
RetentionPolicy MakeTwoClassPolicy(double short_retention_s, double long_retention_s,
                                   double short_threshold_s);

}  // namespace mrmcore
}  // namespace mrm

#endif  // MRMSIM_SRC_MRM_DCM_H_
