#include "src/mrm/ecc.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace mrm {
namespace mrmcore {
namespace {

// log of the binomial pmf at k, computed with lgamma for stability.
double LogBinomialPmf(std::uint64_t n, std::uint64_t k, double p) {
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  return std::lgamma(nd + 1.0) - std::lgamma(kd + 1.0) - std::lgamma(nd - kd + 1.0) +
         kd * std::log(p) + (nd - kd) * std::log1p(-p);
}

}  // namespace

double BinomialTail(std::uint64_t n, std::uint64_t t, double p) {
  if (p <= 0.0) {
    return 0.0;
  }
  if (p >= 1.0) {
    return t < n ? 1.0 : 0.0;
  }
  if (t >= n) {
    return 0.0;
  }
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  // When t is far below the mean the tail is ~1.
  if (static_cast<double>(t) < mean - 12.0 * sd) {
    return 1.0;
  }
  // Sum pmf from t+1 upward; terms decay geometrically past the mode, so a
  // bounded sweep suffices. Work in linear space with a log-domain anchor.
  const std::uint64_t k_start = t + 1;
  const std::uint64_t k_end =
      std::min(n, k_start + static_cast<std::uint64_t>(20.0 * sd + 64.0));
  double total = 0.0;
  double log_term = LogBinomialPmf(n, k_start, p);
  double term = std::exp(log_term);
  const double odds = p / (1.0 - p);
  for (std::uint64_t k = k_start; k <= k_end; ++k) {
    total += term;
    // pmf(k+1) = pmf(k) * (n-k)/(k+1) * odds
    term *= static_cast<double>(n - k) / static_cast<double>(k + 1) * odds;
    if (term < total * 1e-17 && k > k_start + 4) {
      break;
    }
  }
  return std::min(total, 1.0);
}

std::uint64_t BchParityBits(std::uint64_t n_payload_bits, std::uint64_t t) {
  if (t == 0) {
    return 0;
  }
  // m = ceil(log2(n + 1)) field size over the full codeword; iterate once to
  // account for parity growing the codeword.
  std::uint64_t m = 1;
  while ((1ull << m) < n_payload_bits + 1) {
    ++m;
  }
  std::uint64_t parity = t * m;
  while ((1ull << m) < n_payload_bits + parity + 1) {
    ++m;
    parity = t * m;
  }
  return parity;
}

EccScheme DesignEcc(std::uint64_t payload_bits, double rber, double target_failure) {
  MRM_CHECK(payload_bits > 0);
  EccScheme scheme;
  scheme.payload_bits = payload_bits;

  // Binary search the smallest t with tail(n, t) <= target. The tail is
  // monotone decreasing in t.
  std::uint64_t lo = 0;
  std::uint64_t hi = payload_bits;
  if (BinomialTail(payload_bits, 0, rber) <= target_failure) {
    hi = 0;
  } else {
    // Exponential probe for an upper bound first to keep the search tight.
    std::uint64_t probe = 1;
    while (probe < payload_bits &&
           BinomialTail(payload_bits, probe, rber) > target_failure) {
      lo = probe;
      probe *= 2;
    }
    hi = std::min<std::uint64_t>(probe, payload_bits);
    while (lo + 1 < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (BinomialTail(payload_bits, mid, rber) <= target_failure) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
  }
  scheme.t = hi;
  scheme.parity_bits = BchParityBits(payload_bits, scheme.t);
  scheme.overhead = static_cast<double>(scheme.parity_bits) / static_cast<double>(payload_bits);
  scheme.codeword_failure_prob = BinomialTail(payload_bits, scheme.t, rber);
  return scheme;
}

EccScheme EccSchemeForT(std::uint64_t payload_bits, std::uint64_t t, double rber) {
  MRM_CHECK(payload_bits > 0);
  EccScheme scheme;
  scheme.payload_bits = payload_bits;
  scheme.t = std::min<std::uint64_t>(t, payload_bits);
  scheme.parity_bits = BchParityBits(payload_bits, scheme.t);
  scheme.overhead = static_cast<double>(scheme.parity_bits) / static_cast<double>(payload_bits);
  scheme.codeword_failure_prob = BinomialTail(payload_bits, scheme.t, rber);
  return scheme;
}

double UberOf(const EccScheme& scheme, double rber) {
  const double failure = BinomialTail(scheme.payload_bits, scheme.t, rber);
  // JEDEC-style UBER: uncorrectable events per payload bit read.
  return failure / static_cast<double>(scheme.payload_bits);
}

double MaxSafeAge(const cell::RetentionTradeoff& tradeoff, double retention_s,
                  const EccScheme& scheme, double target_uber) {
  // Failure prob target per codeword from the UBER target.
  const double target_failure = target_uber * static_cast<double>(scheme.payload_bits);
  auto failure_at = [&](double age) {
    const double rber = tradeoff.RberAtAge(retention_s, age);
    return BinomialTail(scheme.payload_bits, scheme.t, rber);
  };
  if (failure_at(0.0) > target_failure) {
    return 0.0;
  }
  // Exponential + binary search over age.
  double lo = 0.0;
  double hi = 1.0;
  while (failure_at(hi) <= target_failure && hi < retention_s * 1e3) {
    lo = hi;
    hi *= 2.0;
  }
  for (int i = 0; i < 64; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (failure_at(mid) <= target_failure) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace mrmcore
}  // namespace mrm
