// Retention-aware error correction for MRM (paper §4).
//
// MRM's block interface permits codewords far larger than the 64-256 b words
// of on-die DRAM ECC. Per Dolinar-Divsalar'98, coding efficiency improves
// with block size: the parity overhead needed to reach a target uncorrectable
// bit-error rate (UBER) shrinks as the codeword grows. We model a BCH-like
// code: t-error-correcting over n bits costs ~ t * ceil(log2(n+1)) parity
// bits; codeword failure is the binomial tail P[#raw errors > t].
//
// The scrub planner inverts the cell model's RBER(age) curve: given a code
// and a reliability target it computes how old data may get before it must
// be scrubbed (rewritten) or dropped — the knob that couples ECC strength to
// refresh traffic.

#ifndef MRMSIM_SRC_MRM_ECC_H_
#define MRMSIM_SRC_MRM_ECC_H_

#include <cstdint>

#include "src/cell/tradeoff.h"

namespace mrm {
namespace mrmcore {

// P[X > t] for X ~ Binomial(n, p). Stable in the regimes ECC design needs
// (n up to ~1e7 bits, p in [1e-12, 0.5]).
double BinomialTail(std::uint64_t n, std::uint64_t t, double p);

// Parity bits of a t-error-correcting BCH-like code over an n-bit payload.
std::uint64_t BchParityBits(std::uint64_t n_payload_bits, std::uint64_t t);

struct EccScheme {
  std::uint64_t payload_bits = 0;
  std::uint64_t t = 0;             // correctable bit errors per codeword
  std::uint64_t parity_bits = 0;
  double overhead = 0.0;           // parity / payload
  double codeword_failure_prob = 0.0;  // at the design RBER
};

// Smallest-t code over `payload_bits` that keeps the codeword failure
// probability below `target_failure` at raw bit error rate `rber`.
// Returns t == payload_bits (degenerate) when unsatisfiable.
EccScheme DesignEcc(std::uint64_t payload_bits, double rber, double target_failure);

// Fixed-strength code over `payload_bits`: parity and overhead from
// BchParityBits at the declared `t`, failure probability evaluated at `rber`.
// This is how policy-declared ECC bands become schemes (no smallest-t
// search — the policy already chose t).
EccScheme EccSchemeForT(std::uint64_t payload_bits, std::uint64_t t, double rber);

// Uncorrectable-bit-error rate of a scheme at raw error rate `rber`
// (codeword failures amortized over payload bits).
double UberOf(const EccScheme& scheme, double rber);

// Maximum data age (seconds) at which `scheme` still meets `target_uber`,
// for data written at `retention_s` on `tradeoff`'s technology. This is the
// scrub deadline; returns 0 when the target cannot be met even at age 0.
double MaxSafeAge(const cell::RetentionTradeoff& tradeoff, double retention_s,
                  const EccScheme& scheme, double target_uber);

}  // namespace mrmcore
}  // namespace mrm

#endif  // MRMSIM_SRC_MRM_ECC_H_
