#include "src/mrm/mrm_config.h"

namespace mrm {
namespace mrmcore {

// Each rule rejects with its own diagnostic so a misconfiguration points at
// the offending field, not at "the config".
Status MrmDeviceConfig::Validate() const {
  if (channels <= 0) {
    return Error(name + ": channels must be positive");
  }
  if (zones == 0) {
    return Error(name + ": zones must be positive");
  }
  if (zone_blocks == 0) {
    return Error(name + ": zone_blocks must be positive");
  }
  if (block_bytes == 0) {
    return Error(name + ": block_bytes must be positive");
  }
  if (read_latency_ns < 0.0) {
    return Error(name + ": read latency must be non-negative");
  }
  if (channel_read_bw_bytes_per_s <= 0.0 || channel_write_bw_ref_bytes_per_s <= 0.0) {
    return Error(name + ": bandwidths must be positive");
  }
  if (io_pj_per_bit < 0.0 || background_mw < 0.0) {
    return Error(name + ": energy parameters must be non-negative");
  }
  if (default_retention_s <= 0.0) {
    return Error(name + ": default retention must be positive");
  }
  if (retention_floor_s < 0.0 || retention_cap_s < 0.0) {
    return Error(name + ": retention bounds must be non-negative");
  }
  if (retention_cap_s > 0.0 && retention_floor_s > retention_cap_s) {
    return Error(name + ": retention bounds out of order (floor > cap)");
  }
  if (retention_floor_s > 0.0 && default_retention_s < retention_floor_s) {
    return Error(name + ": default retention below the retention floor");
  }
  if (retention_cap_s > 0.0 && default_retention_s > retention_cap_s) {
    return Error(name + ": default retention above the retention cap");
  }
  if (static_cast<std::uint64_t>(ecc_codeword_bits) > block_bits()) {
    return Error(name + ": ECC codeword larger than the block");
  }
  if (static_cast<std::uint64_t>(ecc_t) >= ecc_payload_bits()) {
    return Error(name + ": ECC strength t must be smaller than the codeword payload");
  }
  return Status::Ok();
}

}  // namespace mrmcore
}  // namespace mrm
