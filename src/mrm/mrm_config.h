// MRM device configuration.
//
// An MRM device exposes a zoned, block-granularity interface (paper §4
// "lightweight memory controllers"): zones are append-only block sequences,
// blocks are the read/write unit, and there is no device-side refresh, wear
// levelling or garbage collection — those live in the software control plane.

#ifndef MRMSIM_SRC_MRM_MRM_CONFIG_H_
#define MRMSIM_SRC_MRM_MRM_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/cell/technology.h"
#include "src/common/result.h"

namespace mrm {
namespace mrmcore {

struct MrmDeviceConfig {
  std::string name = "mrm";
  cell::Technology technology = cell::Technology::kSttMram;

  // Geometry: capacity = zones * zone_blocks * block_bytes.
  int channels = 8;
  std::uint32_t zones = 1024;
  std::uint32_t zone_blocks = 4096;      // blocks per zone
  std::uint32_t block_bytes = 64 * 1024; // access granularity

  // Per-channel read path: array pipe start latency + streaming bandwidth.
  double read_latency_ns = 500.0;             // first-block latency
  double channel_read_bw_bytes_per_s = 100e9; // per channel

  // Write path at the cell model's reference (max-retention) point; the
  // effective write bandwidth scales inversely with the programmed pulse
  // duration: bw(retention) = ref_bw * ref_pulse / pulse(retention).
  double channel_write_bw_ref_bytes_per_s = 10e9;

  // Interface energy (close-coupled stack, between LPDDR and HBM PHY cost).
  double io_pj_per_bit = 0.8;
  // Static (non-refresh) background power of the whole device.
  double background_mw = 50.0;

  // Default programmed retention when the writer does not specify one.
  double default_retention_s = 6.0 * 3600.0;

  // Optional bounds on programmable retention, applied on top of the cell
  // model's own range: append requests are clamped into [floor, cap]. Zero
  // means unbounded on that side (the default: no clamp at all).
  double retention_floor_s = 0.0;
  double retention_cap_s = 0.0;

  // ECC decode model for the fault path (DESIGN.md §10): a t-error-
  // correcting BCH-like code per codeword. ecc_codeword_bits == 0 spans the
  // whole block with one codeword (MRM's large-block coding-efficiency win,
  // paper §4).
  std::uint32_t ecc_t = 16;
  std::uint32_t ecc_codeword_bits = 0;

  // Lightweight-controller scheduling (paper §4): when true, queued reads
  // preempt queued writes on a channel, so slow retention-programmed writes
  // do not add to read latency. Ops in service are never interrupted.
  bool read_priority = true;

  std::uint64_t zone_bytes() const {
    return static_cast<std::uint64_t>(zone_blocks) * block_bytes;
  }
  std::uint64_t capacity_bytes() const { return static_cast<std::uint64_t>(zones) * zone_bytes(); }
  std::uint64_t total_blocks() const {
    return static_cast<std::uint64_t>(zones) * zone_blocks;
  }
  double peak_read_bw_bytes_per_s() const {
    return static_cast<double>(channels) * channel_read_bw_bytes_per_s;
  }
  std::uint64_t block_bits() const { return static_cast<std::uint64_t>(block_bytes) * 8; }
  // Effective ECC codeword payload: the configured size, or the whole block.
  std::uint64_t ecc_payload_bits() const {
    return ecc_codeword_bits > 0 ? ecc_codeword_bits : block_bits();
  }

  // Cross-field validation; each rule rejects with its own diagnostic (see
  // mrm_config.cc). Implemented out of line in mrm_config.cc.
  Status Validate() const;
};

}  // namespace mrmcore
}  // namespace mrm

#endif  // MRMSIM_SRC_MRM_MRM_CONFIG_H_
