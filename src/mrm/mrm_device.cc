#include "src/mrm/mrm_device.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/units.h"

namespace mrm {
namespace mrmcore {

MrmDevice::MrmDevice(sim::Simulator* simulator, const MrmDeviceConfig& config,
                     std::unique_ptr<cell::RetentionTradeoff> tradeoff)
    : simulator_(simulator), config_(config), tradeoff_(std::move(tradeoff)) {
  const Status valid = config_.Validate();
  MRM_CHECK(valid.ok()) << valid.message();
  if (!tradeoff_) {
    auto made = cell::MakeTradeoffFor(config_.technology);
    MRM_CHECK(made.ok()) << made.error().message();
    tradeoff_ = std::move(made).value();
  }
  zones_.resize(config_.zones);
  blocks_.resize(config_.total_blocks());
  channels_.resize(static_cast<std::size_t>(config_.channels));
  // The decode scheme is fixed by the config; only its failure probability
  // varies with data age, so that part is computed per read.
  ecc_.payload_bits = config_.ecc_payload_bits();
  ecc_.t = config_.ecc_t;
  ecc_.parity_bits = BchParityBits(ecc_.payload_bits, ecc_.t);
  ecc_.overhead = static_cast<double>(ecc_.parity_bits) / static_cast<double>(ecc_.payload_bits);
  ecc_codewords_per_block_ = (config_.block_bits() + ecc_.payload_bits - 1) / ecc_.payload_bits;
}

Status MrmDevice::OpenZone(std::uint32_t zone) {
  if (zone >= zones_.size()) {
    return Error("zone out of range");
  }
  ZoneInfo& info = zones_[zone];
  if (info.state == ZoneState::kRetired) {
    return Error("zone is retired");
  }
  if (info.failed) {
    return Error("zone failed");
  }
  if (info.state != ZoneState::kEmpty) {
    return Error("zone is not empty");
  }
  info.state = ZoneState::kOpen;
  info.write_pointer = 0;
  if constexpr (kCheckedHooks) {
    if (observer_ != nullptr) {
      observer_->OnZoneOpen(zone);
    }
  }
  return Status::Ok();
}

Status MrmDevice::ResetZone(std::uint32_t zone) {
  if (zone >= zones_.size()) {
    return Error("zone out of range");
  }
  ZoneInfo& info = zones_[zone];
  if (info.state == ZoneState::kRetired) {
    return Error("zone is retired");
  }
  if (info.failed) {
    return Error("zone failed");
  }
  const BlockId base = static_cast<BlockId>(zone) * config_.zone_blocks;
  for (std::uint32_t i = 0; i < info.write_pointer; ++i) {
    blocks_[base + i].written = false;
  }
  info.state = ZoneState::kEmpty;
  info.write_pointer = 0;
  if constexpr (kCheckedHooks) {
    if (observer_ != nullptr) {
      observer_->OnZoneReset(zone);
    }
  }
  return Status::Ok();
}

void MrmDevice::RetireZone(std::uint32_t zone) {
  MRM_CHECK(zone < zones_.size());
  zones_[zone].state = ZoneState::kRetired;
  if constexpr (kCheckedHooks) {
    if (observer_ != nullptr) {
      observer_->OnZoneRetire(zone);
    }
  }
}

void MrmDevice::EnqueueOnChannel(int channel, ChannelOp op) {
  channels_[static_cast<std::size_t>(channel)].queue.push_back(std::move(op));
  PumpChannel(channel);
}

void MrmDevice::PumpChannel(int channel) {
  ChannelState& state = channels_[static_cast<std::size_t>(channel)];
  if (state.busy || state.queue.empty()) {
    return;
  }
  // Lightweight-controller scheduling: reads jump queued (not in-service)
  // writes so slow programming pulses don't inflate read latency.
  auto next = state.queue.begin();
  if (config_.read_priority && !next->is_read) {
    for (auto it = state.queue.begin(); it != state.queue.end(); ++it) {
      if (it->is_read) {
        next = it;
        ++stats_.read_preemptions;
        break;
      }
    }
  }
  ChannelOp op = std::move(*next);
  state.queue.erase(next);
  state.busy = true;
  simulator_->ScheduleAfter(op.service_ticks,
                            [this, channel, done = std::move(op.on_service_done)] {
                              channels_[static_cast<std::size_t>(channel)].busy = false;
                              if (done) {
                                done();
                              }
                              PumpChannel(channel);
                            });
}

void MrmDevice::BurnSlot(std::uint32_t zone, BlockId block, bool fresh) {
  ZoneInfo& info = zones_[zone];
  BlockMeta& meta = blocks_[block];
  meta.stuck = true;
  meta.written = false;
  ++meta.wear;  // the failed program attempt still stresses the cells
  ++info.write_pointer;
  ++info.wear_cycles;
  if (info.write_pointer == config_.zone_blocks && info.state == ZoneState::kOpen) {
    info.state = ZoneState::kFull;
  }
  if (fresh) {
    ++stats_.stuck_blocks;
  }
  if constexpr (kCheckedHooks) {
    if (observer_ != nullptr) {
      MrmSlotBurnRecord record;
      record.zone = zone;
      record.block = block;
      record.write_pointer_after = info.write_pointer;
      record.wear_after = meta.wear;
      observer_->OnSlotBurn(record);
    }
  }
  if (fresh && injector_ != nullptr) {
    // The append error is the recovery: the caller sees the failure and
    // retries on the next slot, so the fault is reported, not lost.
    injector_->ResolveStuck(block, fault::FaultResolution::kReported);
  }
}

Result<BlockId> MrmDevice::AppendBlock(std::uint32_t zone, double retention_s,
                                       std::function<void(BlockId)> on_done) {
  if (zone >= zones_.size()) {
    return Error("zone out of range");
  }
  ZoneInfo& info = zones_[zone];
  if (info.failed) {
    return Error("zone failed");
  }
  if (info.state != ZoneState::kOpen) {
    return Error("zone not open");
  }
  if (retention_s <= 0.0) {
    retention_s = config_.default_retention_s;
  }
  // Config-level retention clamp (validated ordered; zero means unbounded).
  if (config_.retention_floor_s > 0.0 && retention_s < config_.retention_floor_s) {
    retention_s = config_.retention_floor_s;
  }
  if (config_.retention_cap_s > 0.0 && retention_s > config_.retention_cap_s) {
    retention_s = config_.retention_cap_s;
  }
  const cell::OperatingPoint point = tradeoff_->AtRetention(retention_s);

  const BlockId block_id = static_cast<BlockId>(zone) * config_.zone_blocks + info.write_pointer;
  BlockMeta& meta = blocks_[block_id];

  const bool faults = injector_ != nullptr && injector_->config().enabled();
  if (faults && injector_->RollZoneFailure(zone, info.wear_cycles)) {
    info.failed = true;
    ++stats_.zone_failures;
    if constexpr (kCheckedHooks) {
      if (observer_ != nullptr) {
        observer_->OnZoneFail(zone);
      }
    }
    return Error("zone failed");
  }

  // A slot already known stuck (hit again after a zone reset) burns again
  // without a new injection.
  if (meta.stuck) {
    BurnSlot(zone, block_id, /*fresh=*/false);
    return Error("append slot stuck-at; slot burned");
  }

  // Endurance gate: the cells of this block fail once their cumulative wear
  // exceeds the endurance of the weakest operating point they were written
  // at. We track wear per block and compare against the current point.
  if (static_cast<double>(meta.wear) + 1.0 > point.endurance_cycles) {
    ++stats_.endurance_failures;
    return Error("block endurance exhausted at this retention point");
  }

  // Wear-out stuck-at faults fire only near the endurance bound.
  if (faults &&
      injector_->RollStuck(block_id, meta.wear,
                           (static_cast<double>(meta.wear) + 1.0) / point.endurance_cycles)) {
    BurnSlot(zone, block_id, /*fresh=*/true);
    return Error("append slot stuck-at; slot burned");
  }

  ++info.write_pointer;
  ++info.wear_cycles;
  if (info.write_pointer == config_.zone_blocks) {
    info.state = ZoneState::kFull;
  }
  meta.written = true;
  meta.written_at_s = simulator_->now_seconds();
  meta.retention_s = point.retention_s;
  ++meta.wear;
  if constexpr (kCheckedHooks) {
    if (observer_ != nullptr) {
      MrmAppendRecord record;
      record.zone = zone;
      record.block = block_id;
      record.write_pointer_after = info.write_pointer;
      record.requested_retention_s = retention_s;
      record.programmed_retention_s = point.retention_s;
      record.wear_after = meta.wear;
      record.now_s = meta.written_at_s;
      observer_->OnAppend(record);
    }
  }

  // Service time: the programming pulse throttles streaming writes. The
  // reference bandwidth is defined at the max-retention pulse; shorter
  // pulses scale bandwidth up proportionally.
  const cell::OperatingPoint ref = tradeoff_->AtRetention(tradeoff_->max_retention_s());
  const double pulse_scale = point.write_latency_ns / ref.write_latency_ns;
  const double write_bw = config_.channel_write_bw_ref_bytes_per_s / pulse_scale;
  const double service_s = static_cast<double>(config_.block_bytes) / write_bw;

  const double bits = static_cast<double>(config_.block_bytes) * 8.0;
  stats_.write_energy_pj += bits * point.write_energy_pj_per_bit;
  stats_.io_energy_pj += bits * config_.io_pj_per_bit;
  ++stats_.blocks_written;
  stats_.bytes_written += config_.block_bytes;

  ++inflight_;
  const sim::Tick enqueued = simulator_->now();
  ChannelOp op;
  op.is_read = false;
  op.service_ticks = simulator_->SecondsToTicks(service_s);
  op.on_service_done = [this, block_id, enqueued, on_done = std::move(on_done)] {
    stats_.write_latency_us.Add(simulator_->TicksToSeconds(simulator_->now() - enqueued) * 1e6);
    --inflight_;
    if (on_done) {
      on_done(block_id);
    }
  };
  EnqueueOnChannel(ChannelOf(block_id), std::move(op));
  return block_id;
}

bool MrmDevice::BlockAlive(BlockId block) const {
  const BlockMeta& meta = blocks_[block];
  if (!meta.written) {
    return false;
  }
  return BlockAge(block) <= meta.retention_s;
}

double MrmDevice::BlockAge(BlockId block) const {
  return simulator_->now_seconds() - blocks_[block].written_at_s;
}

Status MrmDevice::ReadBlock(BlockId block, std::function<void(bool)> on_done) {
  return ReadBlockEx(block, [on_done = std::move(on_done)](ReadResult result) {
    if (on_done) {
      on_done(result.ok());
    }
  });
}

ReadResult MrmDevice::DecodeRead(BlockId block, BlockMeta& meta, bool alive) {
  ReadResult result;
  const std::uint32_t zone = static_cast<std::uint32_t>(block / config_.zone_blocks);
  if (zones_[zone].failed) {
    // Whole-zone failure: everything in the zone is gone; the zone-level
    // fault is the tracked one, so the read itself is not a new injection.
    result.outcome = ReadOutcome::kUncorrectable;
    result.permanent = true;
    return result;
  }
  if (!alive) {
    // Aged past the programmed retention: uncorrectable by contract,
    // exactly the legacy verdict.
    result.outcome = ReadOutcome::kUncorrectable;
    result.permanent = true;
    return result;
  }
  if (injector_ == nullptr || !injector_->config().enabled()) {
    return result;  // fault-free: decoded clean, no roll drawn
  }
  ++stats_.decoded_reads;
  const double age_rber = tradeoff_->RberAtAge(meta.retention_s, BlockAge(block));
  const double rber = std::min(0.5, age_rber + injector_->config().transient_rber);
  const double p_codeword = BinomialTail(ecc_.payload_bits, ecc_.t, rber);
  const double p_uncorrectable =
      1.0 - std::pow(1.0 - p_codeword, static_cast<double>(ecc_codewords_per_block_));
  const double p_any_error =
      1.0 - std::pow(1.0 - rber, static_cast<double>(config_.block_bits()));
  switch (injector_->RollRead(block, meta.read_attempts++, p_uncorrectable, p_any_error)) {
    case fault::FaultInjector::ReadRoll::kClean:
      break;
    case fault::FaultInjector::ReadRoll::kCorrected:
      result.outcome = ReadOutcome::kCorrected;
      ++stats_.corrected_reads;
      break;
    case fault::FaultInjector::ReadRoll::kUncorrectable:
      // Transient: a retry draws a fresh roll (read_attempts advanced) and
      // may decode clean. The injector tracks it until the caller resolves.
      result.outcome = ReadOutcome::kUncorrectable;
      result.injected = true;
      ++stats_.uncorrectable_reads;
      break;
    case fault::FaultInjector::ReadRoll::kSilent:
      result.outcome = ReadOutcome::kSilent;
      ++stats_.silent_corruptions;
      break;
  }
  return result;
}

Status MrmDevice::ReadBlockEx(BlockId block, std::function<void(ReadResult)> on_done) {
  if (block >= blocks_.size()) {
    return Error("block out of range");
  }
  BlockMeta& meta = blocks_[block];
  if (!meta.written) {
    return Error("block not written");
  }
  const bool alive = BlockAlive(block);
  if (!alive) {
    ++stats_.expired_reads;
  }
  const ReadResult result = DecodeRead(block, meta, alive);
  if constexpr (kCheckedHooks) {
    if (observer_ != nullptr) {
      MrmReadRecord record;
      record.block = block;
      record.alive_claimed = alive;
      record.written_at_s = meta.written_at_s;
      record.retention_s = meta.retention_s;
      record.now_s = simulator_->now_seconds();
      observer_->OnRead(record);
    }
  }

  const cell::OperatingPoint point = tradeoff_->AtRetention(meta.retention_s);
  const double transfer_s =
      static_cast<double>(config_.block_bytes) / config_.channel_read_bw_bytes_per_s;
  const double service_s = config_.read_latency_ns * 1e-9 + transfer_s;

  const double bits = static_cast<double>(config_.block_bytes) * 8.0;
  stats_.read_energy_pj += bits * point.read_energy_pj_per_bit;
  stats_.io_energy_pj += bits * config_.io_pj_per_bit;
  ++stats_.blocks_read;
  stats_.bytes_read += config_.block_bytes;

  ++inflight_;
  const sim::Tick enqueued = simulator_->now();
  ChannelOp op;
  op.is_read = true;
  op.service_ticks = simulator_->SecondsToTicks(service_s);
  op.on_service_done = [this, result, enqueued, on_done = std::move(on_done)] {
    stats_.read_latency_us.Add(simulator_->TicksToSeconds(simulator_->now() - enqueued) * 1e6);
    --inflight_;
    if (on_done) {
      on_done(result);
    }
  };
  EnqueueOnChannel(ChannelOf(block), std::move(op));
  return Status::Ok();
}

Status MrmDevice::ReadBlocks(BlockId first, std::uint32_t count,
                             std::function<void(std::uint32_t)> on_done) {
  if (count == 0) {
    return Error("empty read");
  }
  if (first + count > blocks_.size()) {
    return Error("block range out of range");
  }
  // Validate up front so no completion is left dangling on partial failure.
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!blocks_[first + i].written) {
      return Error("block not written");
    }
  }
  auto ok_count = std::make_shared<std::uint32_t>(0);
  auto remaining = std::make_shared<std::uint32_t>(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const Status status =
        ReadBlock(first + i, [ok_count, remaining, on_done](bool ok) {
          if (ok) {
            ++*ok_count;
          }
          if (--*remaining == 0 && on_done) {
            on_done(*ok_count);
          }
        });
    if (!status.ok()) {
      return status;
    }
  }
  return Status::Ok();
}

double MrmDevice::TotalEnergyPj() const {
  const double background_pj =
      config_.background_mw * 1e-3 * simulator_->now_seconds() * 1e12;
  return stats_.write_energy_pj + stats_.read_energy_pj + stats_.io_energy_pj + background_pj;
}

void MrmDevice::SaveState(SavedState* out) const {
  MRM_CHECK(inflight_ == 0) << "MrmDevice::SaveState requires an idle device";
  for (const ChannelState& channel : channels_) {
    MRM_CHECK(!channel.busy && channel.queue.empty())
        << "MrmDevice::SaveState requires idle channels";
  }
  out->zones = zones_;
  out->blocks = blocks_;
  out->stats = stats_;
}

void MrmDevice::RestoreState(const SavedState& saved) {
  MRM_CHECK(inflight_ == 0) << "MrmDevice::RestoreState requires an idle device";
  MRM_CHECK(saved.zones.size() == zones_.size() && saved.blocks.size() == blocks_.size())
      << "MrmDevice::RestoreState: snapshot shape does not match this device's "
         "configuration";
  zones_ = saved.zones;
  blocks_ = saved.blocks;
  stats_ = saved.stats;
}

}  // namespace mrmcore
}  // namespace mrm
