// The MRM device model: zoned block memory with per-write programmable
// retention (the paper's Dynamically Configurable Memory at the hardware
// level), wear tracking and no device-side housekeeping.
//
// Timing is event-driven at block granularity: each channel is a pipelined
// queue whose service time is transfer-dominated for reads and programming-
// pulse-dominated for writes. Energy combines the cell model's per-bit cost
// at the programmed retention with the interface cost.

#ifndef MRMSIM_SRC_MRM_MRM_DEVICE_H_
#define MRMSIM_SRC_MRM_MRM_DEVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/cell/tradeoff.h"
#include "src/common/check_hooks.h"
#include "src/common/result.h"
#include "src/common/stats.h"
#include "src/fault/fault_injector.h"
#include "src/mrm/ecc.h"
#include "src/mrm/mrm_config.h"
#include "src/mrm/mrm_observer.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace mrmcore {

// Global block id: zone * zone_blocks + index-within-zone.
using BlockId = std::uint64_t;

struct BlockMeta {
  bool written = false;
  bool stuck = false;             // wear-out: stuck-at cells, slot unusable
  double written_at_s = 0.0;      // simulation time of the write
  double retention_s = 0.0;       // programmed retention target
  std::uint32_t wear = 0;         // write cycles on this block's cells
  std::uint64_t read_attempts = 0;  // keys the decode roll, so retries re-roll

  friend bool operator==(const BlockMeta&, const BlockMeta&) = default;
};

enum class ZoneState { kEmpty, kOpen, kFull, kRetired };

struct ZoneInfo {
  ZoneState state = ZoneState::kEmpty;
  std::uint32_t write_pointer = 0;  // next block index within the zone
  std::uint64_t wear_cycles = 0;    // cumulative appends since manufacture
  bool failed = false;              // whole-zone failure: data lost, appends rejected

  friend bool operator==(const ZoneInfo&, const ZoneInfo&) = default;
};

// ECC decode verdict of one read attempt (DESIGN.md §10).
enum class ReadOutcome {
  kOk,             // decoded clean
  kCorrected,      // raw bit errors present, ECC corrected them; data good
  kUncorrectable,  // detected-uncorrectable; no data delivered
  kSilent,         // miscorrection: bad data delivered as good
};

struct ReadResult {
  ReadOutcome outcome = ReadOutcome::kOk;
  // True when retries cannot help: the data aged past its programmed
  // retention or its zone failed. Transient (injected) decode failures
  // re-roll on retry and may succeed.
  bool permanent = false;
  // True when the fault injector tracks this uncorrectable error; the caller
  // owes it a FaultInjector::ResolveRead once recovery concludes.
  bool injected = false;

  // Data was delivered and claimed good (silent corruption claims good too —
  // only the RAS stats and the checker know).
  bool ok() const { return outcome != ReadOutcome::kUncorrectable; }
};

struct MrmDeviceStats {
  std::uint64_t blocks_written = 0;
  std::uint64_t blocks_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t expired_reads = 0;   // reads past the ECC-safe age
  std::uint64_t endurance_failures = 0;
  std::uint64_t read_preemptions = 0;  // reads served ahead of queued writes
  // RAS ledger (fault path, DESIGN.md §10). All zero when no injector is
  // attached: the decode path then short-circuits to the legacy verdict.
  std::uint64_t decoded_reads = 0;        // reads that drew a decode roll
  std::uint64_t corrected_reads = 0;      // ECC corrected raw bit errors
  std::uint64_t uncorrectable_reads = 0;  // injected detected-uncorrectable
  std::uint64_t silent_corruptions = 0;   // miscorrections delivered as good
  std::uint64_t stuck_blocks = 0;         // append slots burned by wear-out
  std::uint64_t zone_failures = 0;        // whole zones lost
  double write_energy_pj = 0.0;
  double read_energy_pj = 0.0;
  double io_energy_pj = 0.0;
  Histogram read_latency_us;
  Histogram write_latency_us;

  friend bool operator==(const MrmDeviceStats&, const MrmDeviceStats&) = default;
};

class MrmDevice {
 public:
  // `tradeoff` supplies the retention/energy/endurance physics; defaults to
  // the technology named in `config`.
  MrmDevice(sim::Simulator* simulator, const MrmDeviceConfig& config,
            std::unique_ptr<cell::RetentionTradeoff> tradeoff = nullptr);

  MrmDevice(const MrmDevice&) = delete;
  MrmDevice& operator=(const MrmDevice&) = delete;

  const MrmDeviceConfig& config() const { return config_; }
  const cell::RetentionTradeoff& tradeoff() const { return *tradeoff_; }

  // --- Zone management (control-plane operations, instantaneous) ---------
  // Opens an empty zone for appending.
  Status OpenZone(std::uint32_t zone);
  // Resets a zone to empty. Unlike flash there is no erase: cost-free.
  Status ResetZone(std::uint32_t zone);
  // Marks a zone unusable (endurance exhausted / failed).
  void RetireZone(std::uint32_t zone);

  const ZoneInfo& zone_info(std::uint32_t zone) const { return zones_[zone]; }
  const BlockMeta& block_meta(BlockId block) const { return blocks_[block]; }

  // --- Data path (asynchronous, completion via callback) ------------------
  // Appends one block to `zone` with the given retention target. Fails fast
  // (synchronously) when the zone is not open/full or its cells' endurance
  // at this operating point is exhausted. On success `on_done` fires when
  // the programming pulse completes, carrying the new block id.
  Result<BlockId> AppendBlock(std::uint32_t zone, double retention_s,
                              std::function<void(BlockId)> on_done);

  // Reads one block; `on_done(ok)` fires at data delivery. ok == false means
  // the data aged past its programmed retention (uncorrectable): the caller
  // must recompute or refetch — MRM's managed-retention contract.
  // Convenience wrapper over ReadBlockEx (ok == ReadResult::ok()).
  Status ReadBlock(BlockId block, std::function<void(bool)> on_done);

  // Reads one block through the full ECC decode model; `on_done` fires at
  // data delivery with the decode verdict. Without an attached (and enabled)
  // fault injector the verdict is exactly the legacy one: kOk while the data
  // is within retention, permanent kUncorrectable past it.
  Status ReadBlockEx(BlockId block, std::function<void(ReadResult)> on_done);

  // Sequential read of `count` blocks starting at `first` (must be written).
  // `on_done(ok_count)` fires when the last block is delivered.
  Status ReadBlocks(BlockId first, std::uint32_t count,
                    std::function<void(std::uint32_t)> on_done);

  // True if a block's content is still within its programmed retention.
  bool BlockAlive(BlockId block) const;
  // Age of a block's data in seconds.
  double BlockAge(BlockId block) const;
  // True once the zone suffered a whole-zone failure (its data is gone; the
  // control plane should retire it and remap survivors elsewhere).
  bool ZoneFailed(std::uint32_t zone) const { return zones_[zone].failed; }

  // The ECC scheme reads are decoded under (from config ecc_t /
  // ecc_codeword_bits).
  const EccScheme& ecc() const { return ecc_; }

  const MrmDeviceStats& stats() const { return stats_; }
  // Total energy including background power up to now.
  double TotalEnergyPj() const;

  bool Idle() const { return inflight_ == 0; }

  // Attaches a strictly passive observer (the MRM auditor, DESIGN.md §9).
  // Hook sites compile away unless the build defines MRMSIM_CHECKED. Pass
  // nullptr to detach.
  void SetObserver(MrmObserver* observer) { observer_ = observer; }
  MrmObserver* observer() const { return observer_; }

  // Attaches the deterministic fault injector (DESIGN.md §10). Pass nullptr
  // to detach; a detached or all-zero-rate injector reproduces the fault-free
  // device bit for bit.
  void SetFaultInjector(fault::FaultInjector* injector) { injector_ = injector; }

  // Durable checkpoint of the device's evolving state (DESIGN.md §13): every
  // zone's state/pointer/wear, every block's metadata — written flag, stuck
  // bit, write time, programmed (DCM) retention target, wear, read-attempt
  // cursor — and the stats ledger. Only legal while Idle() with idle
  // channels: the channel queues are then empty, so the snapshot carries no
  // callbacks. Physics (tradeoff), ECC scheme and config are construction
  // state covered by the config fingerprint, not the snapshot.
  struct SavedState {
    std::vector<ZoneInfo> zones;
    std::vector<BlockMeta> blocks;
    MrmDeviceStats stats;
  };

  // Captures the device into `out` (overwriting it). Dies unless idle.
  void SaveState(SavedState* out) const;

  // Restores a snapshot taken from an identically configured device into
  // this (idle) one. Zone/block vector shapes must match.
  void RestoreState(const SavedState& saved);

 private:
  struct ChannelOp {
    bool is_read = false;
    sim::Tick service_ticks = 0;
    std::function<void()> on_service_done;
  };
  struct ChannelState {
    std::deque<ChannelOp> queue;
    bool busy = false;
  };

  // Enqueues an op on `channel` and pumps the channel's service loop.
  void EnqueueOnChannel(int channel, ChannelOp op);
  void PumpChannel(int channel);
  int ChannelOf(BlockId block) const {
    return static_cast<int>(block % static_cast<std::uint64_t>(config_.channels));
  }

  // Runs the ECC decode model for one read attempt (draws a keyed injector
  // roll when faults are enabled; otherwise returns the legacy verdict).
  ReadResult DecodeRead(BlockId block, BlockMeta& meta, bool alive);
  // Consumes a stuck append slot: advances the pointer, stresses the cells,
  // syncs the shadow accounting. `fresh` marks a new injection (vs. hitting
  // an already-stuck block again after a zone reset).
  void BurnSlot(std::uint32_t zone, BlockId block, bool fresh);

  // snapshot-exempt(owning simulator; captured separately by the checkpoint layer)
  sim::Simulator* simulator_;
  // snapshot-exempt(construction parameter; covered by the config fingerprint)
  MrmDeviceConfig config_;
  // snapshot-exempt(cell physics; pure functions fixed at construction)
  std::unique_ptr<cell::RetentionTradeoff> tradeoff_;
  std::vector<ZoneInfo> zones_;
  std::vector<BlockMeta> blocks_;
  // snapshot-exempt(transient service queues; SaveState requires them idle
  // and empty — their ops hold callbacks, which cannot be serialized)
  std::vector<ChannelState> channels_;
  MrmDeviceStats stats_;
  // snapshot-exempt(derived from config at construction; never mutated)
  EccScheme ecc_;
  // snapshot-exempt(derived from config at construction; never mutated)
  std::uint64_t ecc_codewords_per_block_ = 1;
  // snapshot-exempt(transient in-flight count; zero at every quiescent save)
  std::uint64_t inflight_ = 0;
  // snapshot-exempt(attachment; the owner re-attaches observers on restore)
  MrmObserver* observer_ = nullptr;
  // snapshot-exempt(attachment; the injector snapshots its own stats ledger)
  fault::FaultInjector* injector_ = nullptr;
};

}  // namespace mrmcore
}  // namespace mrm

#endif  // MRMSIM_SRC_MRM_MRM_DEVICE_H_
