// Observation interface for auditing the MRM device + control plane
// (DESIGN.md §9).
//
// An MrmObserver attached to an MrmDevice receives one callback per
// control-plane-visible state change: zone lifecycle transitions, block
// appends (with the device's own wear/write-pointer accounting, so a checker
// can re-derive both independently and compare), and block reads (with the
// device's liveness claim, so a checker can re-derive the retention deadline
// and catch a device that serves data past it).
//
// Observers are strictly passive. The hook sites compile away entirely
// unless the MRMSIM_CHECKED CMake option is ON (src/common/check_hooks.h).

#ifndef MRMSIM_SRC_MRM_MRM_OBSERVER_H_
#define MRMSIM_SRC_MRM_MRM_OBSERVER_H_

#include <cstdint>

namespace mrm {
namespace mrmcore {

struct MrmAppendRecord {
  std::uint32_t zone = 0;
  std::uint64_t block = 0;              // global block id the append landed on
  std::uint32_t write_pointer_after = 0;  // zone write pointer after the append
  double requested_retention_s = 0.0;   // after default substitution
  double programmed_retention_s = 0.0;  // achieved (operating-point) retention
  std::uint32_t wear_after = 0;         // block wear counter after the append
  double now_s = 0.0;                   // simulation time of the append
};

struct MrmReadRecord {
  std::uint64_t block = 0;
  bool alive_claimed = false;     // the device's "data still valid" verdict
  double written_at_s = 0.0;      // when the block was programmed
  double retention_s = 0.0;       // its programmed retention
  double now_s = 0.0;             // simulation time of the read
};

// The control plane's retention-policy decision for one programming request
// (policy layer, DESIGN.md §14): the lifetime hint it received and the
// retention its policy mapped it to, before any device-level clamping. A
// checker holding the declared policy can replay the mapping and flag a
// control plane that programs off-policy retention.
struct MrmPolicyRecord {
  double lifetime_s = 0.0;   // hint the caller attached to the append
  double retention_s = 0.0;  // retention the plane's policy chose
  double now_s = 0.0;        // simulation time of the decision
};

// A stuck-at append slot being consumed without storing data (fault path,
// DESIGN.md §10): the failed program attempt stresses the cells and advances
// the zone's write pointer, so the shadow accounting must advance too.
struct MrmSlotBurnRecord {
  std::uint32_t zone = 0;
  std::uint64_t block = 0;
  std::uint32_t write_pointer_after = 0;
  std::uint32_t wear_after = 0;
};

class MrmObserver {
 public:
  virtual ~MrmObserver() = default;

  virtual void OnZoneOpen(std::uint32_t /*zone*/) {}
  virtual void OnZoneReset(std::uint32_t /*zone*/) {}
  virtual void OnZoneRetire(std::uint32_t /*zone*/) {}
  virtual void OnZoneFail(std::uint32_t /*zone*/) {}
  virtual void OnAppend(const MrmAppendRecord& /*record*/) {}
  virtual void OnSlotBurn(const MrmSlotBurnRecord& /*record*/) {}
  virtual void OnRead(const MrmReadRecord& /*record*/) {}
  virtual void OnPolicyRetention(const MrmPolicyRecord& /*record*/) {}
};

}  // namespace mrmcore
}  // namespace mrm

#endif  // MRMSIM_SRC_MRM_MRM_OBSERVER_H_
