#include "src/policy/memory_policy.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/mrm/ecc.h"

namespace mrm {
namespace policy {

namespace {

bool FiniteNonNegative(double v) { return std::isfinite(v) && v >= 0.0; }
bool FinitePositive(double v) { return std::isfinite(v) && v > 0.0; }

Status FieldError(const std::string& stream, const char* field, const std::string& why,
                  double got) {
  return Error(stream + "." + field + " " + why + ", got " + std::to_string(got));
}

double SanitizeLifetime(double lifetime_s) {
  if (!std::isfinite(lifetime_s) || lifetime_s < 0.0) {
    return 0.0;
  }
  return lifetime_s;
}

}  // namespace

const char* RetentionClassKindName(RetentionClassKind kind) {
  switch (kind) {
    case RetentionClassKind::kDcm:
      return "dcm";
    case RetentionClassKind::kFixed:
      return "fixed";
    case RetentionClassKind::kTwoClass:
      return "two-class";
  }
  return "unknown";
}

Result<RetentionClassKind> RetentionClassKindByName(const std::string& name) {
  if (name == "dcm") {
    return RetentionClassKind::kDcm;
  }
  if (name == "fixed") {
    return RetentionClassKind::kFixed;
  }
  if (name == "two-class") {
    return RetentionClassKind::kTwoClass;
  }
  return Error("unknown retention class '" + name + "' (want dcm | fixed | two-class)");
}

Status RetentionClass::Validate(const std::string& stream) const {
  if (!(std::isfinite(margin) && margin >= 1.0)) {
    return FieldError(stream, "margin", "must be finite and >= 1", margin);
  }
  if (!FiniteNonNegative(floor_s)) {
    return FieldError(stream, "floor", "must be non-negative and finite", floor_s);
  }
  if (!FinitePositive(fixed_retention_s)) {
    return FieldError(stream, "retention", "must be positive and finite", fixed_retention_s);
  }
  if (!FinitePositive(short_retention_s)) {
    return FieldError(stream, "short_retention", "must be positive and finite",
                      short_retention_s);
  }
  if (!FinitePositive(long_retention_s)) {
    return FieldError(stream, "long_retention", "must be positive and finite",
                      long_retention_s);
  }
  if (short_retention_s > long_retention_s) {
    return Error(stream + ".short_retention " + std::to_string(short_retention_s) +
                 " exceeds " + stream + ".long_retention " + std::to_string(long_retention_s));
  }
  if (!FiniteNonNegative(short_threshold_s)) {
    return FieldError(stream, "short_threshold", "must be non-negative and finite",
                      short_threshold_s);
  }
  return Status::Ok();
}

double RetentionClass::RetentionFor(double lifetime_s) const {
  const double lifetime = SanitizeLifetime(lifetime_s);
  switch (kind) {
    case RetentionClassKind::kDcm:
      return std::max(lifetime, floor_s) * margin;
    case RetentionClassKind::kFixed:
      return fixed_retention_s;
    case RetentionClassKind::kTwoClass:
      return lifetime <= short_threshold_s ? short_retention_s : long_retention_s;
  }
  return fixed_retention_s;
}

mrmcore::RetentionPolicy RetentionClass::Compile() const {
  switch (kind) {
    case RetentionClassKind::kDcm:
      return mrmcore::MakeDcmPolicy(margin, floor_s);
    case RetentionClassKind::kFixed:
      return mrmcore::MakeFixedPolicy(fixed_retention_s);
    case RetentionClassKind::kTwoClass:
      return mrmcore::MakeTwoClassPolicy(short_retention_s, long_retention_s,
                                         short_threshold_s);
  }
  return mrmcore::MakeFixedPolicy(fixed_retention_s);
}

void RetentionClass::Mix(snapshot::Fingerprint* fp) const {
  fp->MixU32(static_cast<std::uint32_t>(kind));
  fp->MixDouble(margin);
  fp->MixDouble(floor_s);
  fp->MixDouble(fixed_retention_s);
  fp->MixDouble(short_retention_s);
  fp->MixDouble(long_retention_s);
  fp->MixDouble(short_threshold_s);
}

void RetentionClass::SaveState(snapshot::Encoder* enc) const {
  enc->PutU8(static_cast<std::uint8_t>(kind));
  enc->PutDouble(margin);
  enc->PutDouble(floor_s);
  enc->PutDouble(fixed_retention_s);
  enc->PutDouble(short_retention_s);
  enc->PutDouble(long_retention_s);
  enc->PutDouble(short_threshold_s);
}

bool RetentionClass::RestoreState(snapshot::Decoder* dec) {
  const std::uint8_t kind_byte = dec->GetU8();
  margin = dec->GetDouble();
  floor_s = dec->GetDouble();
  fixed_retention_s = dec->GetDouble();
  short_retention_s = dec->GetDouble();
  long_retention_s = dec->GetDouble();
  short_threshold_s = dec->GetDouble();
  if (!dec->ok() || kind_byte > static_cast<std::uint8_t>(RetentionClassKind::kTwoClass)) {
    return false;
  }
  kind = static_cast<RetentionClassKind>(kind_byte);
  return true;
}

bool operator==(const RetentionClass& a, const RetentionClass& b) {
  return a.kind == b.kind && a.margin == b.margin && a.floor_s == b.floor_s &&
         a.fixed_retention_s == b.fixed_retention_s &&
         a.short_retention_s == b.short_retention_s &&
         a.long_retention_s == b.long_retention_s &&
         a.short_threshold_s == b.short_threshold_s;
}

Status MemoryPolicy::Validate(int tier_count) const {
  if (Status s = kv.Validate("policy.kv"); !s.ok()) {
    return s;
  }
  if (Status s = weights.Validate("policy.weights"); !s.ok()) {
    return s;
  }
  if (Status s = activations.Validate("policy.activations"); !s.ok()) {
    return s;
  }
  if (!FiniteNonNegative(activation_lifetime_cap_s)) {
    return Error("policy.activation_cap must be non-negative and finite, got " +
                 std::to_string(activation_lifetime_cap_s));
  }
  if (!FinitePositive(weight_lifetime_floor_s) ||
      weight_lifetime_floor_s <= activation_lifetime_cap_s) {
    return Error("policy.weight_floor must be finite and above policy.activation_cap (" +
                 std::to_string(activation_lifetime_cap_s) + "), got " +
                 std::to_string(weight_lifetime_floor_s));
  }
  if (!FiniteNonNegative(activation_lifetime_hint_s) ||
      activation_lifetime_hint_s >= activation_lifetime_cap_s) {
    return Error("policy.activation_lifetime must be in [0, policy.activation_cap), got " +
                 std::to_string(activation_lifetime_hint_s));
  }
  if (!FiniteNonNegative(kv_lifetime_hint_s) ||
      kv_lifetime_hint_s < activation_lifetime_cap_s ||
      kv_lifetime_hint_s >= weight_lifetime_floor_s) {
    return Error(
        "policy.kv_lifetime must be in [policy.activation_cap, policy.weight_floor), got " +
        std::to_string(kv_lifetime_hint_s));
  }
  if (!FinitePositive(weight_lifetime_hint_s) ||
      weight_lifetime_hint_s < weight_lifetime_floor_s) {
    return Error("policy.weight_lifetime must be at least policy.weight_floor (" +
                 std::to_string(weight_lifetime_floor_s) + "), got " +
                 std::to_string(weight_lifetime_hint_s));
  }
  for (std::size_t i = 0; i < ecc_bands.size(); ++i) {
    const EccBand& band = ecc_bands[i];
    if (band.t == 0) {
      return Error("policy.ecc_bands band " + std::to_string(i) +
                   " declares t = 0 (no correction); drop the band instead");
    }
    if (i == 0 && band.min_wear_cycles != 0) {
      return Error("policy.ecc_bands must start at wear 0, got " +
                   std::to_string(band.min_wear_cycles));
    }
    if (i > 0 && ecc_bands[i - 1].min_wear_cycles >= band.min_wear_cycles) {
      return Error("policy.ecc_bands thresholds must be strictly ascending; band " +
                   std::to_string(i) + " at wear " + std::to_string(band.min_wear_cycles) +
                   " does not follow " + std::to_string(ecc_bands[i - 1].min_wear_cycles));
    }
  }
  if (!FinitePositive(target_uber) || target_uber >= 1.0) {
    return Error("policy.target_uber must be in (0, 1), got " + std::to_string(target_uber));
  }
  if (!FiniteNonNegative(scrub_crossover_s)) {
    return Error("policy.scrub_crossover must be non-negative and finite, got " +
                 std::to_string(scrub_crossover_s));
  }
  if (Status s = placement.Validate(tier_count); !s.ok()) {
    return s;
  }
  if (Status s = tiering.Validate(placement, tier_count); !s.ok()) {
    return s;
  }
  return Status::Ok();
}

mrmcore::RetentionPolicy MemoryPolicy::CompilePlanePolicy() const {
  // Capture the classes by value: the compiled callback must outlive this
  // policy object (it is installed into ControlPlaneOptions).
  const RetentionClass kv_class = kv;
  const RetentionClass weight_class = weights;
  const RetentionClass act_class = activations;
  const double act_cap = activation_lifetime_cap_s;
  const double weight_floor = weight_lifetime_floor_s;
  return [kv_class, weight_class, act_class, act_cap, weight_floor](double lifetime_s) {
    const double lifetime = SanitizeLifetime(lifetime_s);
    if (lifetime < act_cap) {
      return act_class.RetentionFor(lifetime);
    }
    if (lifetime >= weight_floor) {
      return weight_class.RetentionFor(lifetime);
    }
    return kv_class.RetentionFor(lifetime);
  };
}

mrmcore::ControlPlaneOptions MemoryPolicy::PlaneOptions(
    const mrmcore::MrmDeviceConfig& device, const cell::RetentionTradeoff& tradeoff,
    mrmcore::ControlPlaneOptions base) const {
  base.retention_policy = CompilePlanePolicy();
  base.target_uber = target_uber;
  base.scrub_crossover_s = scrub_crossover_s;
  base.ecc_bands.clear();
  if (!ecc_bands.empty()) {
    // Design each band's scheme over the device's codeword at the cell
    // model's design-point RBER (same reference DesignEcc uses).
    const double rber =
        tradeoff.AtRetention(device.default_retention_s).rber_at_retention;
    for (const EccBand& band : ecc_bands) {
      mrmcore::ControlPlaneOptions::EccBandScheme scheme;
      scheme.min_wear_cycles = band.min_wear_cycles;
      scheme.ecc = mrmcore::EccSchemeForT(device.ecc_payload_bits(), band.t, rber);
      base.ecc_bands.push_back(scheme);
    }
    base.ecc = base.ecc_bands.front().ecc;
  }
  return base;
}

double MemoryPolicy::UsablePayloadFraction(const mrmcore::MrmDeviceConfig& device) const {
  if (ecc_bands.empty()) {
    return 1.0;
  }
  const double payload = static_cast<double>(device.ecc_payload_bits());
  const double parity =
      static_cast<double>(mrmcore::BchParityBits(device.ecc_payload_bits(), ecc_bands.front().t));
  return payload / (payload + parity);
}

Result<tier::TieredBackendOptions> MemoryPolicy::DeriveScrubAges(
    const mrmcore::MrmDeviceConfig& device, const cell::RetentionTradeoff& tradeoff) const {
  const double rber = tradeoff.AtRetention(device.default_retention_s).rber_at_retention;
  const mrmcore::EccScheme scheme =
      ecc_bands.empty()
          ? mrmcore::DesignEcc(device.ecc_payload_bits(), rber,
                               target_uber * static_cast<double>(device.ecc_payload_bits()))
          : mrmcore::EccSchemeForT(device.ecc_payload_bits(), ecc_bands.front().t, rber);

  tier::TieredBackendOptions derived = tiering;
  const double kv_age = mrmcore::MaxSafeAge(tradeoff, KvRetention(), scheme, target_uber);
  if (!(kv_age > 0.0)) {
    return Error("policy ECC (t = " + std::to_string(scheme.t) +
                 ") cannot hold KV retention " + std::to_string(KvRetention()) +
                 "s at target UBER for any positive age");
  }
  derived.kv_scrub_age_s = kv_age;
  if (derived.scrub_tier >= 0 && placement.weights_tier == derived.scrub_tier) {
    const double weight_age =
        mrmcore::MaxSafeAge(tradeoff, WeightRetention(), scheme, target_uber);
    if (!(weight_age > 0.0)) {
      return Error("policy ECC (t = " + std::to_string(scheme.t) +
                   ") cannot hold weight retention " + std::to_string(WeightRetention()) +
                   "s at target UBER for any positive age");
    }
    derived.weights_scrub_age_s = weight_age;
  }
  return derived;
}

void MemoryPolicy::Mix(snapshot::Fingerprint* fp) const {
  fp->MixString("policy");
  kv.Mix(fp);
  weights.Mix(fp);
  activations.Mix(fp);
  fp->MixDouble(activation_lifetime_cap_s);
  fp->MixDouble(weight_lifetime_floor_s);
  fp->MixDouble(activation_lifetime_hint_s);
  fp->MixDouble(kv_lifetime_hint_s);
  fp->MixDouble(weight_lifetime_hint_s);
  fp->MixU64(ecc_bands.size());
  for (const EccBand& band : ecc_bands) {
    fp->MixU64(band.min_wear_cycles);
    fp->MixU32(band.t);
  }
  fp->MixDouble(target_uber);
  fp->MixDouble(scrub_crossover_s);
  fp->MixU32(static_cast<std::uint32_t>(placement.weights_tier));
  fp->MixU32(static_cast<std::uint32_t>(placement.kv_hot_tier));
  fp->MixU32(static_cast<std::uint32_t>(placement.kv_cold_tier));
  fp->MixDouble(placement.kv_hot_fraction);
  fp->MixU32(static_cast<std::uint32_t>(placement.activations_tier));
  fp->MixU32(static_cast<std::uint32_t>(tiering.scrub_tier));
  fp->MixDouble(tiering.scrub_safe_age_s);
  fp->MixDouble(tiering.kv_scrub_age_s);
  fp->MixDouble(tiering.weights_scrub_age_s);
}

std::uint64_t MemoryPolicy::FingerprintDigest() const {
  snapshot::Fingerprint fp;
  Mix(&fp);
  return fp.digest();
}

void MemoryPolicy::SaveState(snapshot::Encoder* enc) const {
  kv.SaveState(enc);
  weights.SaveState(enc);
  activations.SaveState(enc);
  enc->PutDouble(activation_lifetime_cap_s);
  enc->PutDouble(weight_lifetime_floor_s);
  enc->PutDouble(activation_lifetime_hint_s);
  enc->PutDouble(kv_lifetime_hint_s);
  enc->PutDouble(weight_lifetime_hint_s);
  enc->PutU64(ecc_bands.size());
  for (const EccBand& band : ecc_bands) {
    enc->PutU64(band.min_wear_cycles);
    enc->PutU32(band.t);
  }
  enc->PutDouble(target_uber);
  enc->PutDouble(scrub_crossover_s);
  enc->PutU32(static_cast<std::uint32_t>(placement.weights_tier));
  enc->PutU32(static_cast<std::uint32_t>(placement.kv_hot_tier));
  enc->PutU32(static_cast<std::uint32_t>(placement.kv_cold_tier));
  enc->PutDouble(placement.kv_hot_fraction);
  enc->PutU32(static_cast<std::uint32_t>(placement.activations_tier));
  enc->PutU32(static_cast<std::uint32_t>(tiering.scrub_tier));
  enc->PutDouble(tiering.scrub_safe_age_s);
  enc->PutDouble(tiering.kv_scrub_age_s);
  enc->PutDouble(tiering.weights_scrub_age_s);
}

bool MemoryPolicy::RestoreState(snapshot::Decoder* dec) {
  if (!kv.RestoreState(dec) || !weights.RestoreState(dec) ||
      !activations.RestoreState(dec)) {
    return false;
  }
  activation_lifetime_cap_s = dec->GetDouble();
  weight_lifetime_floor_s = dec->GetDouble();
  activation_lifetime_hint_s = dec->GetDouble();
  kv_lifetime_hint_s = dec->GetDouble();
  weight_lifetime_hint_s = dec->GetDouble();
  const std::uint64_t band_count = dec->GetU64();
  if (!dec->ok() || band_count > 1024) {
    return false;  // bound the allocation on hostile input
  }
  ecc_bands.clear();
  for (std::uint64_t i = 0; i < band_count; ++i) {
    EccBand band;
    band.min_wear_cycles = dec->GetU64();
    band.t = dec->GetU32();
    ecc_bands.push_back(band);
  }
  target_uber = dec->GetDouble();
  scrub_crossover_s = dec->GetDouble();
  placement.weights_tier = static_cast<int>(dec->GetU32());
  placement.kv_hot_tier = static_cast<int>(dec->GetU32());
  placement.kv_cold_tier = static_cast<int>(dec->GetU32());
  placement.kv_hot_fraction = dec->GetDouble();
  placement.activations_tier = static_cast<int>(dec->GetU32());
  tiering.scrub_tier = static_cast<int>(dec->GetU32());
  tiering.scrub_safe_age_s = dec->GetDouble();
  tiering.kv_scrub_age_s = dec->GetDouble();
  tiering.weights_scrub_age_s = dec->GetDouble();
  return dec->ok();
}

bool operator==(const MemoryPolicy& a, const MemoryPolicy& b) {
  return a.kv == b.kv && a.weights == b.weights && a.activations == b.activations &&
         a.activation_lifetime_cap_s == b.activation_lifetime_cap_s &&
         a.weight_lifetime_floor_s == b.weight_lifetime_floor_s &&
         a.activation_lifetime_hint_s == b.activation_lifetime_hint_s &&
         a.kv_lifetime_hint_s == b.kv_lifetime_hint_s &&
         a.weight_lifetime_hint_s == b.weight_lifetime_hint_s &&
         a.ecc_bands == b.ecc_bands && a.target_uber == b.target_uber &&
         a.scrub_crossover_s == b.scrub_crossover_s && a.placement == b.placement &&
         a.tiering == b.tiering;
}

}  // namespace policy
}  // namespace mrm
