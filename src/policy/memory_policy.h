// First-class memory-management policy for the MRM stack (paper §4).
//
// The paper's DCM argument is that *choosing* retention, ECC strength, and
// placement per object class — not merely supporting programmable retention —
// is what converts the cell-level tradeoff curves into J/token and
// usable-capacity wins. `MemoryPolicy` is that choice, reified: one aggregate
// that names a retention class per stream (KV cache / weights / activations,
// dispatched on the predicted lifetime carried by each append), an ECC
// strength per zone-age band, the scrub-vs-drop-and-recompute crossover, and
// the tier placement. It validates as a unit, fingerprints into snapshot
// config digests, serializes through the snapshot codec, and lowers onto the
// existing knobs (`mrmcore::ControlPlaneOptions`, `tier::Placement`,
// `tier::TieredBackendOptions`) so the rest of the stack stays unchanged.

#ifndef MRMSIM_SRC_POLICY_MEMORY_POLICY_H_
#define MRMSIM_SRC_POLICY_MEMORY_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cell/tradeoff.h"
#include "src/common/result.h"
#include "src/common/units.h"
#include "src/mrm/control_plane.h"
#include "src/mrm/dcm.h"
#include "src/mrm/mrm_config.h"
#include "src/snapshot/codec.h"
#include "src/snapshot/format.h"
#include "src/tier/tiered_backend.h"

namespace mrm {
namespace policy {

// How a stream's predicted lifetime maps to programmed retention.
enum class RetentionClassKind : std::uint8_t {
  kDcm = 0,       // retention = max(lifetime, floor) * margin
  kFixed = 1,     // retention = fixed_retention_s, lifetime ignored
  kTwoClass = 2,  // short/long retention split at short_threshold_s
};

// Stable scenario-key spelling ("dcm", "fixed", "two-class").
const char* RetentionClassKindName(RetentionClassKind kind);
// Inverse of RetentionClassKindName; error names the unknown spelling.
Result<RetentionClassKind> RetentionClassKindByName(const std::string& name);

// Per-stream retention class. Only the fields of the active `kind` are read,
// but all are validated so a scenario typo cannot hide in an inactive field.
struct RetentionClass {
  RetentionClassKind kind = RetentionClassKind::kDcm;
  // kDcm
  double margin = 1.25;
  double floor_s = 120.0;
  // kFixed
  double fixed_retention_s = 10.0 * kYear;
  // kTwoClass
  double short_retention_s = kHour;
  double long_retention_s = 30.0 * kDay;
  double short_threshold_s = 2.0 * kHour;

  // Field-local validation; `stream` names the owning policy key in errors
  // (e.g. "policy.kv").
  Status Validate(const std::string& stream) const;

  // Retention to program for a write with lifetime hint `lifetime_s`.
  // Non-finite hints are treated as 0 (unknown lifetime).
  double RetentionFor(double lifetime_s) const;

  // Lowers this class to the control plane's callback form.
  mrmcore::RetentionPolicy Compile() const;

  void Mix(snapshot::Fingerprint* fp) const;
  void SaveState(snapshot::Encoder* enc) const;
  // Returns false when the decoder ran dry or the kind byte is out of range.
  bool RestoreState(snapshot::Decoder* dec);

  friend bool operator==(const RetentionClass& a, const RetentionClass& b);
};

// ECC strength for zones whose wear is at least `min_wear_cycles`: aged zones
// have higher RBER at equal retention, so later bands carry stronger codes.
struct EccBand {
  std::uint64_t min_wear_cycles = 0;
  std::uint32_t t = 16;  // correctable bits per codeword

  friend bool operator==(const EccBand& a, const EccBand& b) {
    return a.min_wear_cycles == b.min_wear_cycles && a.t == b.t;
  }
};

// The policy aggregate. Defaults reproduce the stack's historical behavior
// (DCM retention, single device-designed ECC, scrub everything, no
// recompute crossover) so an empty policy is a safe starting point.
struct MemoryPolicy {
  // Retention class per stream.
  RetentionClass kv;
  RetentionClass weights;
  RetentionClass activations;

  // Stream classification thresholds for lifetime-dispatch: an append with
  // lifetime < activation_lifetime_cap_s is treated as activations, one with
  // lifetime >= weight_lifetime_floor_s as weights, anything between as KV.
  double activation_lifetime_cap_s = 1.0;
  double weight_lifetime_floor_s = 7.0 * kDay;

  // Predicted lifetime per stream — the hints the serving layer attaches to
  // appends. Must be consistent with the classification thresholds above.
  double activation_lifetime_hint_s = 0.1;
  double kv_lifetime_hint_s = 600.0;
  double weight_lifetime_hint_s = 90.0 * kDay;

  // ECC strength per zone-age band, ascending by min_wear_cycles; the first
  // band (when any) must start at wear 0. Empty = keep the control plane's
  // device-designed single scheme.
  std::vector<EccBand> ecc_bands;

  // Reliability target the ECC bands and scrub deadlines are designed for.
  double target_uber = 1e-15;

  // Scrub-vs-drop-and-recompute crossover: at scrub time, blocks with less
  // than this much remaining lifetime are dropped (the engine recomputes or
  // refetches them) instead of being rewritten. 0 = always scrub.
  double scrub_crossover_s = 0.0;

  // Tier placement and scrub accounting for the tiered/analytic fidelity.
  tier::Placement placement;
  tier::TieredBackendOptions tiering;

  // Whole-policy validation: every class, threshold ordering, hint/threshold
  // consistency, band monotonicity, and the tier cross-field rules against a
  // system of `tier_count` tiers. Errors name the offending policy.* rule.
  Status Validate(int tier_count) const;

  // Retention each stream's hint compiles to under its class.
  double KvRetention() const { return kv.RetentionFor(kv_lifetime_hint_s); }
  double WeightRetention() const { return weights.RetentionFor(weight_lifetime_hint_s); }

  // Compiles the per-stream classes into the control plane's single
  // lifetime→retention callback: the lifetime picks the stream class per the
  // thresholds above, then that class maps it to retention.
  mrmcore::RetentionPolicy CompilePlanePolicy() const;

  // Lowers the policy onto control-plane options: retention callback, ECC
  // band schemes designed over the device's codeword at its design-point
  // RBER, reliability target, and scrub crossover. Non-policy fields of
  // `base` (retry budget, retirement threshold, scrub cadence) pass through.
  mrmcore::ControlPlaneOptions PlaneOptions(const mrmcore::MrmDeviceConfig& device,
                                            const cell::RetentionTradeoff& tradeoff,
                                            mrmcore::ControlPlaneOptions base = {}) const;

  // Fraction of a codeword that is payload under the band-0 code (1.0 when
  // no bands are declared — the device-designed scheme is accounted by the
  // control plane itself).
  double UsablePayloadFraction(const mrmcore::MrmDeviceConfig& device) const;

  // Derives the per-stream scrub safe ages the declared ECC can guarantee
  // (MaxSafeAge of the band-0 code at each stream's programmed retention)
  // and returns `tiering` with those ages filled in. Errors when the code is
  // too weak to hold a stream's retention for any positive age.
  Result<tier::TieredBackendOptions> DeriveScrubAges(
      const mrmcore::MrmDeviceConfig& device,
      const cell::RetentionTradeoff& tradeoff) const;

  void Mix(snapshot::Fingerprint* fp) const;
  // Convenience: digest of a fingerprint seeded only with this policy.
  std::uint64_t FingerprintDigest() const;

  void SaveState(snapshot::Encoder* enc) const;
  // Structural decode only (field presence + enum ranges); callers re-run
  // Validate() against their tier count.
  bool RestoreState(snapshot::Decoder* dec);

  friend bool operator==(const MemoryPolicy& a, const MemoryPolicy& b);
};

}  // namespace policy
}  // namespace mrm

#endif  // MRMSIM_SRC_POLICY_MEMORY_POLICY_H_
