#include "src/policy/policy_config.h"

#include <algorithm>
#include <cstdlib>
#include <utility>
#include <vector>

namespace mrm {
namespace policy {
namespace {

// Applies the policy.<stream>.* keys for one retention class.
Result<RetentionClass> BuildClass(const Config& config, const std::string& stream,
                                  RetentionClass base) {
  const std::string prefix = "policy." + stream + ".";
  if (config.Has(prefix + "class")) {
    auto kind = RetentionClassKindByName(config.GetString(prefix + "class"));
    if (!kind.ok()) {
      return Error(prefix + "class: " + kind.error().message());
    }
    base.kind = kind.value();
  }
  base.margin = config.GetDouble(prefix + "margin", base.margin);
  base.floor_s = config.GetDuration(prefix + "floor", base.floor_s);
  base.fixed_retention_s = config.GetDuration(prefix + "retention", base.fixed_retention_s);
  base.short_retention_s =
      config.GetDuration(prefix + "short_retention", base.short_retention_s);
  base.long_retention_s = config.GetDuration(prefix + "long_retention", base.long_retention_s);
  base.short_threshold_s =
      config.GetDuration(prefix + "short_threshold", base.short_threshold_s);
  return base;
}

// Parses "min_wear:t[,min_wear:t...]" (an empty string clears the bands).
Result<std::vector<EccBand>> ParseEccBands(const std::string& text) {
  std::vector<EccBand> bands;
  if (text.empty()) {
    return bands;
  }
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string entry = text.substr(pos, comma - pos);
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= entry.size()) {
      return Error("policy.ecc_bands entry '" + entry + "' is not min_wear:t");
    }
    char* end = nullptr;
    const std::string wear_text = entry.substr(0, colon);
    const std::string t_text = entry.substr(colon + 1);
    EccBand band;
    band.min_wear_cycles = std::strtoull(wear_text.c_str(), &end, 10);
    if (end == wear_text.c_str() || *end != '\0') {
      return Error("policy.ecc_bands wear '" + wear_text + "' is not a number");
    }
    const unsigned long long t = std::strtoull(t_text.c_str(), &end, 10);
    if (end == t_text.c_str() || *end != '\0' || t == 0 || t > 0xffffffffull) {
      return Error("policy.ecc_bands t '" + t_text + "' is not a positive 32-bit number");
    }
    band.t = static_cast<std::uint32_t>(t);
    bands.push_back(band);
    pos = comma + 1;
    if (comma == text.size()) {
      break;
    }
  }
  return bands;
}

}  // namespace

bool HasPolicyKeys(const Config& config) {
  for (const auto& [key, value] : config.Items()) {
    (void)value;
    if (key.rfind("policy.", 0) == 0) {
      return true;
    }
  }
  return false;
}

Result<MemoryPolicy> PolicyPresetByName(const std::string& name,
                                        const MemoryPolicy& defaults) {
  MemoryPolicy preset = defaults;
  if (name == "dcm") {
    preset.kv = RetentionClass{};  // dcm, margin 1.25, floor 120s
    preset.weights.kind = RetentionClassKind::kDcm;
    preset.weights.margin = 1.1;
    preset.weights.floor_s = kDay;
    preset.activations.kind = RetentionClassKind::kDcm;
    preset.activations.margin = 1.5;
    preset.activations.floor_s = 60.0;
    preset.ecc_bands = {{0, 16}};
    return preset;
  }
  if (name == "scm-10y") {
    // The SCM design point: one 10-year retention for everything, with the
    // strong code that retention needs on worn cells.
    for (RetentionClass* cls : {&preset.kv, &preset.weights, &preset.activations}) {
      cls->kind = RetentionClassKind::kFixed;
      cls->fixed_retention_s = 10.0 * kYear;
    }
    preset.ecc_bands = {{0, 64}};
    return preset;
  }
  if (name == "two-class") {
    for (RetentionClass* cls : {&preset.kv, &preset.weights, &preset.activations}) {
      cls->kind = RetentionClassKind::kTwoClass;
      cls->short_retention_s = kHour;
      cls->long_retention_s = 180.0 * kDay;
      cls->short_threshold_s = 2.0 * kHour;
    }
    preset.ecc_bands = {{0, 24}};
    return preset;
  }
  return Error("unknown policy.preset '" + name + "' (dcm | scm-10y | two-class)");
}

Result<MemoryPolicy> BuildMemoryPolicy(const Config& config, const MemoryPolicy& defaults) {
  MemoryPolicy result = defaults;
  if (config.Has("policy.preset")) {
    auto preset = PolicyPresetByName(config.GetString("policy.preset"), result);
    if (!preset.ok()) {
      return preset.error();
    }
    result = preset.value();
  }
  const std::pair<const char*, RetentionClass*> streams[] = {
      {"kv", &result.kv}, {"weights", &result.weights}, {"activations", &result.activations}};
  for (const auto& [stream, cls] : streams) {
    auto built = BuildClass(config, stream, *cls);
    if (!built.ok()) {
      return built.error();
    }
    *cls = built.value();
  }
  result.activation_lifetime_cap_s =
      config.GetDuration("policy.activation_cap", result.activation_lifetime_cap_s);
  result.weight_lifetime_floor_s =
      config.GetDuration("policy.weight_floor", result.weight_lifetime_floor_s);
  result.activation_lifetime_hint_s =
      config.GetDuration("policy.activation_lifetime", result.activation_lifetime_hint_s);
  result.kv_lifetime_hint_s =
      config.GetDuration("policy.kv_lifetime", result.kv_lifetime_hint_s);
  result.weight_lifetime_hint_s =
      config.GetDuration("policy.weight_lifetime", result.weight_lifetime_hint_s);
  if (config.Has("policy.ecc_bands")) {
    auto bands = ParseEccBands(config.GetString("policy.ecc_bands"));
    if (!bands.ok()) {
      return bands.error();
    }
    result.ecc_bands = bands.value();
  }
  result.target_uber = config.GetDouble("policy.target_uber", result.target_uber);
  result.scrub_crossover_s =
      config.GetDuration("policy.scrub_crossover", result.scrub_crossover_s);
  result.tiering.kv_scrub_age_s =
      config.GetDuration("policy.scrub.kv_age", result.tiering.kv_scrub_age_s);
  result.tiering.weights_scrub_age_s =
      config.GetDuration("policy.scrub.weights_age", result.tiering.weights_scrub_age_s);
  return result;
}

}  // namespace policy
}  // namespace mrm
