// Scenario-key plumbing for the policy layer: `policy.*` keys → MemoryPolicy.
//
// Keys (all optional; defaults come from the `defaults` argument, which the
// driver seeds with the scenario's parsed placement/tiering so a policy-less
// scenario keeps its historical meaning):
//
//   policy.preset                 dcm | scm-10y | two-class (applied first)
//   policy.<s>.class              dcm | fixed | two-class   (<s> = kv |
//   policy.<s>.margin             DCM margin                 weights |
//   policy.<s>.floor              DCM floor (duration)       activations)
//   policy.<s>.retention          fixed retention (duration)
//   policy.<s>.short_retention    two-class short retention (duration)
//   policy.<s>.long_retention     two-class long retention (duration)
//   policy.<s>.short_threshold    two-class split point (duration)
//   policy.activation_cap         lifetime below which an append is an
//                                 activation (duration)
//   policy.weight_floor           lifetime at/above which it is a weight
//   policy.activation_lifetime    predicted lifetime per stream — the hints
//   policy.kv_lifetime            the serving layer attaches to appends
//   policy.weight_lifetime        (durations)
//   policy.ecc_bands              "0:16,1000000:40" — min_wear:t pairs
//   policy.target_uber            reliability target for ECC/scrub design
//   policy.scrub_crossover        drop-and-recompute threshold (duration)
//   policy.scrub.kv_age           per-stream scrub safe ages on the scrub
//   policy.scrub.weights_age      tier (durations; 0 = derive/inherit)
//
// Parsing is strict: unknown class names, malformed band lists, and values
// violating MemoryPolicy::Validate come back as errors naming the rule.

#ifndef MRMSIM_SRC_POLICY_POLICY_CONFIG_H_
#define MRMSIM_SRC_POLICY_POLICY_CONFIG_H_

#include <string>

#include "src/common/config.h"
#include "src/common/result.h"
#include "src/policy/memory_policy.h"

namespace mrm {
namespace policy {

// True when the scenario declares any policy.* key.
bool HasPolicyKeys(const Config& config);

// Named starting points for the tuner grid and the policy.preset key:
//   dcm        per-stream DCM margins (the paper's managed-retention design)
//   scm-10y    every stream fixed at 10-year retention, strong ECC — the
//              SCM-era baseline the paper argues against
//   two-class  offline short/long split (middle ground)
// Classes and ECC bands come from the preset; placement/tiering/hints keep
// the values in `defaults`.
Result<MemoryPolicy> PolicyPresetByName(const std::string& name,
                                        const MemoryPolicy& defaults);

// Builds a MemoryPolicy from `config`'s policy.* keys over `defaults`.
// Does not run MemoryPolicy::Validate (the tier count lives with the
// caller); structural key errors are reported here.
Result<MemoryPolicy> BuildMemoryPolicy(const Config& config, const MemoryPolicy& defaults);

}  // namespace policy
}  // namespace mrm

#endif  // MRMSIM_SRC_POLICY_POLICY_CONFIG_H_
