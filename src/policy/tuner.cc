#include "src/policy/tuner.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "src/cell/tradeoff.h"
#include "src/check/attach.h"
#include "src/common/logging.h"
#include "src/common/units.h"
#include "src/driver/sim_backend.h"
#include "src/fault/fault_injector.h"
#include "src/policy/policy_config.h"
#include "src/tier/tier_spec.h"
#include "src/tier/tiered_backend.h"
#include "src/workload/inference_engine.h"

namespace mrm {
namespace policy {
namespace {

constexpr int kDecodeContext = 2048;  // E12's calibration batch shape

// The agreement probe: one decode step's *read* traffic — the full weight
// sweep plus the batch's KV read (the paper's >1000:1 decode stream). The
// new tokens' KV append is deliberately excluded: a decode step writes less
// than one lowered MRM block, so under sampled lowering its whole-block
// program time is a quantization artifact ~lower_scale times its real cost.
// The serving runs (which set J/token and tokens/s) exercise the write path
// in full on both fidelities.
double MeasureReadProbe(workload::MemoryBackend* backend, int batch) {
  const workload::FoundationModelConfig model = workload::Llama2_70B();
  workload::StepBatch step;
  step.Read(workload::Stream::kWeights, model.weight_bytes());
  step.Read(workload::Stream::kKvCache,
            static_cast<std::uint64_t>(batch) * kDecodeContext * model.kv_bytes_per_token());
  return backend->SubmitStep(step).seconds;
}

workload::EngineSummary RunServing(workload::MemoryBackend* backend,
                                   const TunerOptions& options) {
  workload::EngineConfig config;
  config.model = workload::Llama2_70B();
  config.max_batch = options.max_batch;
  config.compute_tflops = options.compute_tflops;
  workload::InferenceEngine engine(config, backend);
  std::vector<workload::InferenceRequest> requests;
  for (int i = 0; i < options.requests; ++i) {
    workload::InferenceRequest request;
    request.id = static_cast<std::uint64_t>(i + 1);
    request.prompt_tokens = options.prompt_tokens;
    request.output_tokens = options.output_tokens;
    requests.push_back(request);
  }
  return engine.Run(requests);
}

double JPerToken(const workload::EngineSummary& summary) {
  const double tokens = static_cast<double>(summary.prefill_tokens + summary.decode_tokens);
  return tokens > 0.0 ? summary.backend_energy_j / tokens : 0.0;
}

// The MRM device config a candidate actually runs on: the band-0 ECC
// strength becomes the device's code so the cycle-level decode path and the
// analytic payload derate describe the same codeword.
mrmcore::MrmDeviceConfig CandidateDevice(const TunerOptions& options,
                                         const MemoryPolicy& policy) {
  mrmcore::MrmDeviceConfig mrm = options.mrm;
  if (!policy.ecc_bands.empty()) {
    mrm.ecc_t = static_cast<int>(policy.ecc_bands.front().t);
  }
  return mrm;
}

// F2 fault ladder rung (bench_f2_fault_sweep): one rate drives every MRM
// injection path, with zone failures kept 10x rarer so the read path, not
// catastrophic loss, dominates.
fault::FaultConfig MrmFaultConfig(const TunerOptions& options) {
  fault::FaultConfig config;
  config.seed = options.fault_seed;
  config.transient_rber = options.fault_rate;
  config.stuck_block_prob = options.fault_rate;
  config.stuck_wear_fraction = 0.0;
  config.zone_failure_prob = options.fault_rate * 0.1;
  return config;
}

// Fast fidelity: analytic TieredBackend with the MRM tier priced at the
// candidate's compiled KV retention and derated to its ECC payload fraction.
void EvaluateFast(const TunerOptions& options, CandidateOutcome& out) {
  const Status valid = out.policy.Validate(/*tier_count=*/2);
  if (!valid.ok()) {
    out.infeasible_why = valid.message();
    return;
  }
  auto tradeoff = cell::MakeTradeoffFor(options.mrm.technology);
  MRM_CHECK(tradeoff.ok()) << tradeoff.error().message();
  const mrmcore::MrmDeviceConfig mrm = CandidateDevice(options, out.policy);
  const auto derived = out.policy.DeriveScrubAges(mrm, *tradeoff.value());
  if (!derived.ok()) {
    out.infeasible_why = derived.error().message();
    return;
  }
  out.feasible = true;
  out.kv_scrub_age_s = derived.value().EffectiveKvScrubAge();
  out.usable_capacity_fraction = out.policy.UsablePayloadFraction(mrm);

  std::vector<workload::TierSpec> tiers;
  tiers.push_back(tier::TierSpecFromDevice(options.hbm, options.hbm_devices));
  workload::TierSpec mrm_tier =
      tier::TierSpecFromMrm(mrm, options.mrm_devices, out.policy.KvRetention());
  // The candidate's ECC parity is physical: per payload byte the tier moves
  // 1/fraction bytes of cells (bandwidth derates, energy inflates) and only
  // `fraction` of the capacity holds data — the same accounting the sim
  // backend applies (SimBackend::InflateMrmBytes).
  const double frac = out.usable_capacity_fraction;
  mrm_tier.capacity_bytes =
      static_cast<std::uint64_t>(static_cast<double>(mrm_tier.capacity_bytes) * frac);
  mrm_tier.read_bw_bytes_per_s *= frac;
  mrm_tier.write_bw_bytes_per_s *= frac;
  mrm_tier.read_pj_per_bit /= frac;
  mrm_tier.write_pj_per_bit /= frac;
  // Calibrate the read bandwidth to the cycle-level channel service model:
  // each block costs read_latency + block/bw, serialized per channel, so the
  // achievable per-channel bandwidth is block/(latency + block/bw) — not the
  // raw streaming rate TierSpecFromMrm quotes.
  const double raw_block_s = static_cast<double>(mrm.block_bytes) /
                             mrm.channel_read_bw_bytes_per_s;
  mrm_tier.read_bw_bytes_per_s *=
      raw_block_s / (mrm.read_latency_ns * 1e-9 + raw_block_s);
  out.mrm_capacity_bytes = mrm_tier.capacity_bytes;
  tiers.push_back(mrm_tier);

  const std::uint64_t weight_bytes = workload::Llama2_70B().weight_bytes();
  tier::TieredBackend backend(tiers, out.policy.placement, weight_bytes, derived.value());
  out.analytic_decode_step_s = MeasureReadProbe(&backend, options.max_batch);

  tier::TieredBackend serving(tiers, out.policy.placement, weight_bytes, derived.value());
  const workload::EngineSummary summary = RunServing(&serving, options);
  out.analytic_j_per_token = JPerToken(summary);
  out.analytic_decode_tokens_per_s = summary.decode_tokens_per_s();
  out.requests_completed = summary.requests_completed;

  out.meets_slo =
      summary.requests_completed == static_cast<std::uint64_t>(options.requests) &&
      out.analytic_decode_tokens_per_s >= options.slo_min_decode_tokens_per_s &&
      out.usable_capacity_fraction >= options.slo_min_capacity_fraction;
}

// Cycle-level validation: the E12 sim backend with the candidate policy on
// the control plane, the F2 fault rung injected, and — in checked runs — the
// MRM auditor holding the declared policy.
void Validate(const TunerOptions& options, CandidateOutcome& out) {
  driver::SimBackendOptions sim;
  sim.device = options.hbm;
  sim.devices = options.hbm_devices;
  sim.sim_threads = options.sim_threads;
  sim.lower_scale = options.lower_scale;
  sim.mrm_enabled = true;
  sim.mrm = CandidateDevice(options, out.policy);
  sim.mrm_devices = options.mrm_devices;
  sim.has_mrm_policy = true;
  sim.mrm_policy = out.policy;
  sim.placement = out.policy.placement;

  // The MRM auditor must observe the device from its very first append (the
  // ctor's weight preload), so it attaches through the pre-traffic hook.
  std::optional<check::ScopedMrmChecker> mrm_checker;
  const mrmcore::RetentionPolicy declared = out.policy.CompilePlanePolicy();
  sim.on_mrm_ready = [&mrm_checker, &declared](mrmcore::MrmDevice* device,
                                               mrmcore::ControlPlane*) {
    mrm_checker.emplace(device);
    if (mrm_checker->mutable_checker() != nullptr) {
      mrm_checker->mutable_checker()->DeclarePolicy(declared);
    }
  };

  const std::uint64_t weight_bytes = workload::Llama2_70B().weight_bytes();
  {
    driver::SimBackend backend(std::move(sim), weight_bytes);

    // Faults arm after the preload: the ladder stresses serving, not boot.
    fault::FaultInjector injector(MrmFaultConfig(options));
    backend.control_plane()->SetFaultInjector(&injector);
    check::ScopedChecker mem_checker(backend.simulator(), backend.memory_system());
    check::ScopedFaultChecker fault_checker(&injector);

    // Prime the KV ring with the probe's read set so the decode-step probe
    // measures reads as reads (a cold ring turns them into recompute
    // appends, which is fill traffic, not the steady state the analytic
    // fidelity prices).
    const workload::FoundationModelConfig model = workload::Llama2_70B();
    workload::StepBatch prime;
    prime.Write(workload::Stream::kKvCache,
                static_cast<std::uint64_t>(options.max_batch) * kDecodeContext *
                    model.kv_bytes_per_token());
    backend.SubmitStep(prime);

    out.sim_decode_step_s = MeasureReadProbe(&backend, options.max_batch);
    const workload::EngineSummary summary = RunServing(&backend, options);
    out.sim_j_per_token = JPerToken(summary);
    out.sim_decode_tokens_per_s = summary.decode_tokens_per_s();
    out.sim_events = backend.simulator()->events_executed();
    out.faults_injected = injector.stats().injected_total();
    if (mrm_checker.has_value() && mrm_checker->checker() != nullptr) {
      out.checker_events = mrm_checker->checker()->events_observed();
    }
    // Detach (and report) while the audited device is still alive.
    mrm_checker.reset();
  }
  out.agreement_ratio = out.analytic_decode_step_s > 0.0
                            ? out.sim_decode_step_s / out.analytic_decode_step_s
                            : 0.0;
  out.within_agreement =
      std::abs(out.agreement_ratio - 1.0) <= options.agreement_bound;
  out.validated = true;
}

// a dominates b on the (J/token, usable capacity, decode tokens/s) frontier.
bool Dominates(const CandidateOutcome& a, const CandidateOutcome& b) {
  const bool no_worse = a.analytic_j_per_token <= b.analytic_j_per_token &&
                        a.usable_capacity_fraction >= b.usable_capacity_fraction &&
                        a.analytic_decode_tokens_per_s >= b.analytic_decode_tokens_per_s;
  const bool strictly_better =
      a.analytic_j_per_token < b.analytic_j_per_token ||
      a.usable_capacity_fraction > b.usable_capacity_fraction ||
      a.analytic_decode_tokens_per_s > b.analytic_decode_tokens_per_s;
  return no_worse && strictly_better;
}

RetentionClass DcmClass(double margin, double floor_s) {
  RetentionClass cls;
  cls.kind = RetentionClassKind::kDcm;
  cls.margin = margin;
  cls.floor_s = floor_s;
  return cls;
}

RetentionClass FixedClass(double retention_s) {
  RetentionClass cls;
  cls.kind = RetentionClassKind::kFixed;
  cls.fixed_retention_s = retention_s;
  return cls;
}

MemoryPolicy BasePolicy() {
  MemoryPolicy policy;
  policy.placement.weights_tier = 1;
  policy.placement.kv_hot_tier = 0;
  policy.placement.kv_cold_tier = 1;
  policy.placement.kv_hot_fraction = 0.15;
  policy.placement.activations_tier = 0;
  policy.tiering.scrub_tier = 1;
  return policy;
}

std::string MarginTag(double margin) {
  // 1.25 -> "125": fixed-point so candidate labels are locale-proof.
  return std::to_string(static_cast<int>(margin * 100.0 + 0.5));
}

}  // namespace

TunerOptions TunerOptions::Defaults() {
  TunerOptions options;
  options.hbm = mem::HBM3EConfig();
  options.mrm.technology = cell::Technology::kSttMram;
  options.mrm.channels = 96;  // HBM-comparable aggregate read bandwidth
  options.mrm.channel_read_bw_bytes_per_s = 100e9;
  options.mrm.ecc_codeword_bits = 4096;
  return options;
}

std::vector<PolicyCandidate> DefaultPolicyGrid() {
  std::vector<PolicyCandidate> grid;

  // Static reference: SCM-style worst-case provisioning. Every byte is held
  // ten years regardless of its lifetime, which forces the strong t=64 code
  // (and its payload tax) on data that lives minutes.
  {
    PolicyCandidate c;
    c.name = "static_scm_10y";
    c.baseline = true;
    c.policy = BasePolicy();
    c.policy.kv = FixedClass(10.0 * kYear);
    c.policy.weights = FixedClass(10.0 * kYear);
    c.policy.activations = FixedClass(10.0 * kYear);
    c.policy.ecc_bands = {{0, 64}};
    grid.push_back(std::move(c));
  }

  // Static reference: one short/long split, no per-stream tuning.
  {
    PolicyCandidate c;
    c.name = "two_class";
    c.policy = BasePolicy();
    for (RetentionClass* cls :
         {&c.policy.kv, &c.policy.weights, &c.policy.activations}) {
      cls->kind = RetentionClassKind::kTwoClass;
      cls->short_retention_s = kHour;
      cls->long_retention_s = 180.0 * kDay;
      cls->short_threshold_s = 2.0 * kHour;
    }
    c.policy.ecc_bands = {{0, 24}};
    grid.push_back(std::move(c));
  }

  // Static reference: DCM retention but an untuned, uniformly padded margin
  // and a conservative code — "programmable retention without management".
  {
    PolicyCandidate c;
    c.name = "naive_dcm";
    c.policy = BasePolicy();
    c.policy.kv = DcmClass(2.0, kHour);
    c.policy.weights = DcmClass(2.0, kHour);
    c.policy.activations = DcmClass(2.0, kHour);
    c.policy.ecc_bands = {{0, 40}};
    grid.push_back(std::move(c));
  }

  // The tuned sweep: KV retention margin x ECC strength. Weights and
  // activations keep their stream-appropriate classes throughout.
  for (const double margin : {1.1, 1.25, 1.5}) {
    for (const std::uint32_t t : {16u, 24u, 40u}) {
      PolicyCandidate c;
      c.name = "dcm_m" + MarginTag(margin) + "_t" + std::to_string(t);
      c.policy = BasePolicy();
      c.policy.kv = DcmClass(margin, 120.0);
      c.policy.weights = DcmClass(1.1, kDay);
      c.policy.activations = DcmClass(1.5, 60.0);
      c.policy.ecc_bands = {{0, t}};
      grid.push_back(std::move(c));
    }
  }
  return grid;
}

Result<std::vector<PolicyCandidate>> GridForPreset(const std::string& preset) {
  auto policy = PolicyPresetByName(preset, BasePolicy());
  if (!policy.ok()) {
    return policy.error();
  }
  std::vector<PolicyCandidate> grid = DefaultPolicyGrid();
  grid.resize(1);  // keep only the static_scm_10y baseline
  PolicyCandidate c;
  c.name = "preset_" + preset;
  c.policy = policy.value();
  grid.push_back(std::move(c));
  return grid;
}

TuneReport RunTune(const TunerOptions& options, std::vector<PolicyCandidate> grid) {
  if (grid.empty()) {
    grid = DefaultPolicyGrid();
  }
  TuneReport report;
  report.candidates.reserve(grid.size());
  for (PolicyCandidate& candidate : grid) {
    CandidateOutcome out;
    out.name = candidate.name;
    out.baseline = candidate.baseline;
    out.policy = std::move(candidate.policy);
    EvaluateFast(options, out);
    if (out.baseline && report.baseline_index < 0) {
      report.baseline_index = static_cast<int>(report.candidates.size());
    }
    report.candidates.push_back(std::move(out));
  }

  // Pareto frontier among feasible, SLO-meeting candidates.
  for (CandidateOutcome& a : report.candidates) {
    if (!a.feasible || !a.meets_slo) {
      continue;
    }
    a.on_frontier = true;
    for (const CandidateOutcome& b : report.candidates) {
      if (&a != &b && b.feasible && b.meets_slo && Dominates(b, a)) {
        a.on_frontier = false;
        break;
      }
    }
  }

  // Promote to cycle-level validation: the baseline always (the delta must
  // be apples-to-apples), then up to max_validate frontier candidates in
  // ascending analytic J/token (grid order breaks ties — deterministic).
  std::vector<int> promoted;
  if (report.baseline_index >= 0 &&
      report.candidates[report.baseline_index].feasible) {
    promoted.push_back(report.baseline_index);
  }
  std::vector<int> frontier;
  for (int i = 0; i < static_cast<int>(report.candidates.size()); ++i) {
    if (report.candidates[i].on_frontier && i != report.baseline_index) {
      frontier.push_back(i);
    }
  }
  std::stable_sort(frontier.begin(), frontier.end(), [&report](int a, int b) {
    return report.candidates[a].analytic_j_per_token <
           report.candidates[b].analytic_j_per_token;
  });
  for (int i : frontier) {
    if (static_cast<int>(promoted.size()) >= options.max_validate + 1) {
      break;
    }
    promoted.push_back(i);
  }
  for (int i : promoted) {
    Validate(options, report.candidates[i]);
    report.max_agreement_error =
        std::max(report.max_agreement_error,
                 std::abs(report.candidates[i].agreement_ratio - 1.0));
  }

  // The winner: a validated, non-baseline candidate strictly better on
  // J/token at equal-or-better usable capacity than the static baseline.
  if (report.baseline_index >= 0) {
    const CandidateOutcome& base = report.candidates[report.baseline_index];
    for (int i : promoted) {
      if (i == report.baseline_index) {
        continue;
      }
      const CandidateOutcome& c = report.candidates[i];
      if (c.analytic_j_per_token < base.analytic_j_per_token &&
          c.usable_capacity_fraction >= base.usable_capacity_fraction &&
          (report.winner_index < 0 ||
           c.analytic_j_per_token <
               report.candidates[report.winner_index].analytic_j_per_token)) {
        report.winner_index = i;
      }
    }
    if (report.winner_index >= 0) {
      const CandidateOutcome& win = report.candidates[report.winner_index];
      if (base.analytic_j_per_token > 0.0) {
        report.j_per_token_delta_frac =
            win.analytic_j_per_token / base.analytic_j_per_token - 1.0;
      }
      if (base.usable_capacity_fraction > 0.0) {
        report.capacity_delta_frac =
            win.usable_capacity_fraction / base.usable_capacity_fraction - 1.0;
      }
    }
  }
  return report;
}

}  // namespace policy
}  // namespace mrm
