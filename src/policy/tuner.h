// Two-fidelity DCM policy autotuner (paper §4, DESIGN.md §14).
//
// The tuner answers the paper's quantitative question — how much J/token and
// usable capacity does *managing* retention buy over provisioning worst-case
// SCM cells — by searching a deterministic grid of MemoryPolicy candidates at
// two fidelities:
//
//   fast      every candidate runs the Llama2-70B serving workload on the
//             analytic tier::TieredBackend (HBM hot tier + MRM tier priced by
//             TierSpecFromMrm at the candidate's compiled KV retention, MRM
//             capacity derated by the candidate's ECC payload fraction, scrub
//             ages derived from MaxSafeAge of the candidate's code).
//   validate  the Pareto frontier (min J/token, max usable capacity, max
//             decode tokens/s among SLO-meeting candidates) is promoted to the
//             cycle-level driver::SimBackend with the F2 fault ladder active
//             and — in checked builds — the MRM auditor holding the candidate
//             policy via MrmChecker::DeclarePolicy, so a tuner win cannot come
//             from a policy the control plane does not actually implement.
//
// Everything is deterministic: the grid is a fixed list, the analytic backend
// is closed-form, and the sim backend + keyed fault injector are bit-identical
// at any --sim-threads count, so the CI policy-smoke job can diff two tuner
// runs' JSON directly.

#ifndef MRMSIM_SRC_POLICY_TUNER_H_
#define MRMSIM_SRC_POLICY_TUNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/fault_config.h"
#include "src/mem/device_config.h"
#include "src/mrm/mrm_config.h"
#include "src/policy/memory_policy.h"

namespace mrm {
namespace policy {

struct TunerOptions {
  // Serving workload (mirrors bench E12's closed-loop calibration shape).
  int requests = 8;
  int prompt_tokens = 256;
  int output_tokens = 32;
  int max_batch = 8;
  double compute_tflops = 1000.0;

  // Hardware under tune: HBM hot tier + one MRM device.
  mem::DeviceConfig hbm;     // defaulted to HBM3E in Defaults()
  int hbm_devices = 8;
  mrmcore::MrmDeviceConfig mrm;  // technology/channel defaults in Defaults()
  int mrm_devices = 1;

  // Cycle-level validation.
  int sim_threads = 1;
  std::uint64_t lower_scale = 1024;
  double fault_rate = 1e-4;      // F2 ladder rung applied during validation
  std::uint64_t fault_seed = 42;
  // Upper bound on non-baseline frontier candidates promoted to validation
  // (the baseline is always validated so the tuned-vs-static delta is
  // apples-to-apples cycle-level).
  int max_validate = 3;
  // Documented analytic-vs-sim agreement bound on the decode step
  // (|ratio - 1| <= bound); candidates outside it are flagged, not hidden.
  double agreement_bound = 0.10;

  // SLO gates applied at the fast fidelity (0 = disabled): a candidate must
  // complete every request and clear these floors to reach the frontier.
  double slo_min_decode_tokens_per_s = 0.0;
  double slo_min_capacity_fraction = 0.0;

  // Tuner options with the benchmark hardware filled in (HBM3E x8 +
  // 96-channel STT-MRAM, the E12 closed-loop preset).
  static TunerOptions Defaults();
};

// One point of the policy grid. `baseline` marks the static reference the
// tuned winner must strictly dominate (fixed 10-year SCM provisioning).
struct PolicyCandidate {
  std::string name;
  MemoryPolicy policy;
  bool baseline = false;
};

// Everything measured about one candidate, both fidelities.
struct CandidateOutcome {
  std::string name;
  bool baseline = false;
  MemoryPolicy policy;

  // Fast fidelity (analytic TieredBackend).
  bool feasible = false;       // Validate + DeriveScrubAges succeeded
  std::string infeasible_why;  // diagnostic when !feasible
  double analytic_decode_step_s = 0.0;  // read-probe span (see MeasureReadProbe)
  double analytic_j_per_token = 0.0;
  double analytic_decode_tokens_per_s = 0.0;
  double usable_capacity_fraction = 0.0;  // ECC payload fraction of the MRM tier
  std::uint64_t mrm_capacity_bytes = 0;   // post-derate
  double kv_scrub_age_s = 0.0;            // derived safe age actually charged
  std::uint64_t requests_completed = 0;
  bool meets_slo = false;
  bool on_frontier = false;

  // Cycle-level validation (only when promoted).
  bool validated = false;
  double sim_decode_step_s = 0.0;  // read-probe span on the cycle-level backend
  double sim_j_per_token = 0.0;
  double sim_decode_tokens_per_s = 0.0;
  double agreement_ratio = 0.0;  // sim decode step / analytic decode step
  bool within_agreement = false;
  std::uint64_t sim_events = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t checker_events = 0;  // 0 in unchecked builds
};

struct TuneReport {
  std::vector<CandidateOutcome> candidates;
  int baseline_index = -1;  // index into `candidates`
  int winner_index = -1;    // validated candidate dominating the baseline
  // Winner-vs-baseline deltas (analytic fidelity; negative j delta = win).
  double j_per_token_delta_frac = 0.0;
  double capacity_delta_frac = 0.0;
  // Worst |agreement_ratio - 1| over validated candidates.
  double max_agreement_error = 0.0;

  const CandidateOutcome* winner() const {
    return winner_index >= 0 ? &candidates[winner_index] : nullptr;
  }
  const CandidateOutcome* baseline() const {
    return baseline_index >= 0 ? &candidates[baseline_index] : nullptr;
  }
};

// The deterministic default grid: three static references (fixed 10-year SCM
// provisioning with worst-case ECC, a two-class policy, a naive single-margin
// DCM) plus the tuned DCM sweep (KV margin x ECC strength).
std::vector<PolicyCandidate> DefaultPolicyGrid();

// The grid restricted to one named preset (policy.preset spelling: dcm |
// scm-10y | two-class) against the static SCM baseline — "how much does
// this preset buy over worst-case provisioning". The bench's
// --policy-preset / MRMSIM_POLICY_PRESET knob resolves through this; an
// unknown name errors with the known spellings.
Result<std::vector<PolicyCandidate>> GridForPreset(const std::string& preset);

// Runs the two-fidelity tune over `grid` (DefaultPolicyGrid() when empty).
TuneReport RunTune(const TunerOptions& options,
                   std::vector<PolicyCandidate> grid = {});

}  // namespace policy
}  // namespace mrm

#endif  // MRMSIM_SRC_POLICY_TUNER_H_
