// EpochDomain: the contract between the simulation executive and a component
// that owns internal "lanes" (sub-simulators) which may execute in parallel.
//
// The executive alternates two regimes (see DESIGN.md §8):
//
//   * Hub steps. While the earliest pending activity is a hub event or a
//     completion record, the executive processes exactly one item at a time,
//     serially, in deterministic order (records before hub events on tick
//     ties; records across domains by registration order, within a domain by
//     the domain's own total order).
//
//   * Epochs. While every lane's earliest work strictly precedes any possible
//     hub-side activity, the executive derives a horizon H no lane may reach
//     and runs all lanes up to (exclusive) H — concurrently when worker
//     threads are configured. Lanes never touch shared state during an epoch;
//     cross-lane effects surface only as records collected at the epoch seal.
//
// The horizon is conservative: H = B + ArrivalDelay(), where B lower-bounds
// the earliest tick at which anything outside a lane (a hub event, a pending
// record, or a completion that has not happened yet) could inject new work,
// and ArrivalDelay() is the modeled latency before injected work reaches a
// lane. Because H, the per-lane execution, and the seal are all independent
// of how lanes map onto threads, results are bit-identical for any thread
// count — including one.
//
// Context contract (machine-checked in the implementations via the phantom
// role capabilities of src/common/thread_annotations.h, DESIGN.md §12):
// every method except RunLane/RunLaneSpeculative runs in *hub context* — the
// serial executive thread, which may claim tsa::hub_role and, between
// dispatches, individual lane roles. RunLane/RunLaneSpeculative run in *lane
// context*: the caller guarantees exclusive ownership of that one lane for
// the duration of the call, and the implementation must not claim
// tsa::hub_role or touch another lane.

#ifndef MRMSIM_SRC_SIM_EPOCH_DOMAIN_H_
#define MRMSIM_SRC_SIM_EPOCH_DOMAIN_H_

#include <cstdint>

#include "src/sim/event_queue.h"

namespace mrm {
namespace sim {

class EpochDomain {
 public:
  virtual ~EpochDomain() = default;

  // Number of independently-executable lanes (channels).
  virtual int LaneCount() const = 0;

  // Modeled latency, in ticks (>= 1), between hub-side activity and its
  // earliest effect inside a lane. This is the PDES lookahead.
  virtual Tick ArrivalDelay() const = 0;

  // Earliest tick at which any lane has work: an undelivered arrival or a
  // pending lane event. kTickNever when all lanes are quiescent. Non-const:
  // peeking a lane's event queue may prune cancelled entries.
  virtual Tick NextWorkTime() = 0;

  // Effect tick of the earliest sealed completion record awaiting hub-side
  // processing; kTickNever when none are pending.
  virtual Tick NextRecordTime() const = 0;

  // Whether any sealed completion record awaits hub-side processing. The
  // epoch-batching guard asks this after every seal: a pending record may
  // bound the next horizon, so a batch must stop and return to the executive
  // while one exists. Equivalent to NextRecordTime() != kTickNever; override
  // when a cheaper emptiness test exists.
  virtual bool HasPendingRecords() const { return NextRecordTime() != kTickNever; }

  // Lower bound on the effect tick of any completion record NOT yet sealed,
  // given that no lane executes anything before `from`. Must be > `from`
  // whenever it is finite; kTickNever when no unfinished request exists.
  virtual Tick EarliestCompletionEffect(Tick from) const = 0;

  // Runs lane `lane` up to (exclusive) `horizon`: delivers due arrivals and
  // executes lane events in tick order, arrivals first on ties. Called
  // concurrently for distinct lanes; must not touch state shared across
  // lanes. Returns the number of lane events executed.
  virtual std::uint64_t RunLane(int lane, Tick horizon) = 0;

  // Like RunLane, but with permission to run optimistically past `horizon`
  // up to (exclusive) `spec_horizon` when the lane can snapshot its state and
  // roll back deterministically should a late cross-shard effect land inside
  // the speculated span (DESIGN.md §8, "Speculative horizons & rollback").
  // `spec_horizon >= horizon`; equal means no speculation this epoch. The
  // default implementation ignores the extension — speculation is an opt-in
  // capability of the domain, not a requirement.
  virtual std::uint64_t RunLaneSpeculative(int lane, Tick horizon, Tick spec_horizon) {
    (void)spec_horizon;
    return RunLane(lane, horizon);
  }

  // Called once when the epoch driver exits (drain, deadline, or stop): the
  // domain must resolve every still-speculating lane — commit the speculated
  // state when `commit` (the driver proved no further cross-shard effect can
  // reach it), or roll it back to the last committed snapshot (a stopped run
  // resumes later and may still route conflicting work).
  virtual void FinishSpeculation(bool commit) { (void)commit; }

  // Serial epoch barrier: publishes records emitted by lanes during the
  // epoch into the pending set read by NextRecordTime()/ProcessOneRecord().
  virtual void SealEpoch() = 0;

  // Processes the earliest pending record (hub-side completion callback and
  // any routing it triggers). Called serially with the hub clock already at
  // NextRecordTime().
  virtual void ProcessOneRecord() = 0;
};

}  // namespace sim
}  // namespace mrm

#endif  // MRMSIM_SRC_SIM_EPOCH_DOMAIN_H_
