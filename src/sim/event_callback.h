// Move-only callback with a large inline buffer.
//
// Ownership (DESIGN.md §12): an EventCallback lives inside an event-queue
// slot and is owned by whichever context owns that queue — the executive's
// queue by the hub, a lane sub-simulator's queue by its epoch worker. It is
// never shared; the guards live on the owning EventQueue/Simulator members.
//
// The event loop's unit of work is "call a captured lambda once". With
// std::function, any capture over ~16 bytes heap-allocates on schedule and
// frees on execute — two allocator round-trips per event on the simulator's
// hottest path. EventCallback inlines trivially-copyable captures up to
// kInlineBytes (24), which covers every callback the simulator itself creates
// (controller wakes, completion slots, periodic tasks); anything larger or
// non-trivial falls back to the heap transparently. The buffer is kept small
// on purpose: event slots are written once per scheduled event, so callback
// size is cache-line traffic on the hot path.
//
// Inline storage is restricted to trivially-copyable callables on purpose:
// it makes EventCallback trivially relocatable, so moving one (between slab
// slots, out of the queue, or during vector growth) is a raw byte copy with
// no per-type dispatch and no allocation.

#ifndef MRMSIM_SRC_SIM_EVENT_CALLBACK_H_
#define MRMSIM_SRC_SIM_EVENT_CALLBACK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace mrm {
namespace sim {

class EventCallback {
 public:
  static constexpr std::size_t kInlineBytes = 24;

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventCallback> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (FitsInline<Fn>()) {
      ::new (static_cast<void*>(storage_.inline_bytes)) Fn(std::forward<F>(f));
      invoke_ = [](void* target) { (*static_cast<Fn*>(target))(); };
      destroy_ = nullptr;  // trivially destructible by construction
    } else {
      storage_.heap = new Fn(std::forward<F>(f));
      invoke_ = [](void* target) { (*static_cast<Fn*>(target))(); };
      destroy_ = [](void* target) noexcept { delete static_cast<Fn*>(target); };
    }
  }

  EventCallback(EventCallback&& other) noexcept { StealFrom(other); }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      StealFrom(other);
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { Reset(); }

  void operator()() { invoke_(Target()); }

  explicit operator bool() const { return invoke_ != nullptr; }

  // True when the held callable lives in the inline buffer (no allocation).
  bool is_inline() const { return invoke_ != nullptr && destroy_ == nullptr; }

  // Byte-copy duplicate of an inline (or empty) callback. Inline payloads are
  // trivially copyable by construction, so the copy is exact and independent;
  // heap-backed callbacks cannot be duplicated this way. The caller must
  // check is_inline() / operator bool first — this is the snapshot layer's
  // primitive and it deliberately has no heap fallback.
  EventCallback CloneInline() const {
    EventCallback clone;
    if (invoke_ != nullptr) {
      clone.invoke_ = invoke_;
      std::memcpy(static_cast<void*>(clone.storage_.inline_bytes),
                  static_cast<const void*>(storage_.inline_bytes), kInlineBytes);
    }
    return clone;
  }

 private:
  union Storage {
    alignas(std::max_align_t) unsigned char inline_bytes[kInlineBytes];
    void* heap;
  };

  template <typename Fn>
  static constexpr bool FitsInline() {
    // Trivially copyable implies trivially destructible and memcpy-movable,
    // which is what lets moves skip per-type dispatch entirely.
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_trivially_copyable_v<Fn>;
  }

  // A non-null destroy_ is exactly the heap case: inline payloads are
  // trivially destructible and need no destroy hook.
  void* Target() { return destroy_ != nullptr ? storage_.heap : storage_.inline_bytes; }

  void StealFrom(EventCallback& other) noexcept {
    // Both inline (trivially copyable) and heap (pointer) payloads relocate
    // with a raw copy of the storage bytes.
    std::memcpy(static_cast<void*>(this), static_cast<const void*>(&other), sizeof(*this));
    other.invoke_ = nullptr;
    other.destroy_ = nullptr;
  }

  void Reset() noexcept {
    if (destroy_ != nullptr) {
      destroy_(storage_.heap);
      destroy_ = nullptr;
    }
    invoke_ = nullptr;
  }

  void (*invoke_)(void*) = nullptr;
  void (*destroy_)(void*) noexcept = nullptr;
  Storage storage_;
};

}  // namespace sim
}  // namespace mrm

#endif  // MRMSIM_SRC_SIM_EVENT_CALLBACK_H_
