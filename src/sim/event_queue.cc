#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/common/logging.h"

#ifdef MRMSIM_QUEUE_VALIDATE
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
namespace {
std::multiset<std::pair<mrm::sim::Tick, std::uint64_t>> g_shadow;
std::map<std::uint64_t, std::pair<mrm::sim::Tick, std::uint64_t>> g_keys;
}  // namespace
#define MRM_QV_PUSH(id, when, seq)        \
  do {                                    \
    g_shadow.insert({(when), (seq)});     \
    g_keys[(id)] = {(when), (seq)};       \
  } while (0)
#define MRM_QV_DROP(id)                                    \
  do {                                                     \
    auto it = g_keys.find(id);                             \
    if (it == g_keys.end()) {                              \
      std::printf("QV: drop of unknown id\n");             \
      std::abort();                                        \
    }                                                      \
    g_shadow.erase(g_shadow.find(it->second));             \
    g_keys.erase(it);                                      \
  } while (0)
#define MRM_QV_CHECK_TOP(when, seq)                                                     \
  do {                                                                                  \
    if (g_shadow.empty() || g_shadow.begin()->first != (when) ||                        \
        g_shadow.begin()->second != (seq)) {                                            \
      std::printf("QV: top (%llu,%llu) want (%llu,%llu)\n",                             \
                  (unsigned long long)(when), (unsigned long long)(seq),                \
                  g_shadow.empty() ? 0ull : (unsigned long long)g_shadow.begin()->first,\
                  g_shadow.empty() ? 0ull : (unsigned long long)g_shadow.begin()->second); \
      std::abort();                                                                     \
    }                                                                                   \
  } while (0)
#define MRM_QV_CHECK_DRAINED()                                            \
  do {                                                                    \
    if (!g_shadow.empty()) {                                              \
      std::printf("QV: drained but %zu live events lost, first (%llu)\n", \
                  g_shadow.size(),                                        \
                  (unsigned long long)g_shadow.begin()->first);           \
      std::abort();                                                       \
    }                                                                     \
  } while (0)
#else
#define MRM_QV_PUSH(id, when, seq) (void)0
#define MRM_QV_DROP(id) (void)0
#define MRM_QV_CHECK_TOP(when, seq) (void)0
#define MRM_QV_CHECK_DRAINED() (void)0
#endif

namespace mrm {
namespace sim {

namespace {

// When the whole far buffer (or a drained bucket) is this small, sorting it
// outright beats spreading it into another rung.
constexpr std::size_t kDirectSortThreshold = 32;
// A drained bucket larger than this is respread into a narrower rung instead
// of being sorted, keeping per-event sort work O(1) amortised.
constexpr std::size_t kSpreadThreshold = 48;
constexpr std::size_t kMaxRungDepth = 8;
constexpr std::size_t kMinBuckets = 16;
constexpr std::size_t kMaxBuckets = 4096;

}  // namespace

// Descending (when, sequence) order so the queue front is bottom_.back().
// Buckets are a handful of entries; a branchy insertion sort beats the
// introsort dispatch overhead there, and std::sort handles the rare pile-up.
void EventQueue::SortBottomDescending() {
  const std::size_t n = bottom_.size();
  if (n > 24) {
    std::sort(bottom_.begin(), bottom_.end(),
              [](const Entry& a, const Entry& b) { return Before(b, a); });
    return;
  }
  for (std::size_t i = 1; i < n; ++i) {
    const Entry e = bottom_[i];
    std::size_t j = i;
    while (j > 0 && Before(bottom_[j - 1], e)) {
      bottom_[j] = bottom_[j - 1];
      --j;
    }
    bottom_[j] = e;
  }
}

EventQueue::EventQueue() {
  bottom_.reserve(64);
  far_.reserve(64);
  scratch_.reserve(64);
}

bool EventQueue::IsLive(EventId id, std::uint32_t* slot_out) const {
  const std::uint32_t slot = static_cast<std::uint32_t>(id >> 32);
  const std::uint32_t generation = static_cast<std::uint32_t>(id);
  if (slot >= slot_count_ || SlotAt(slot).generation != generation) {
    return false;
  }
  *slot_out = slot;
  return true;
}

std::uint32_t EventQueue::AcquireSlot() {
  if (free_slot_head_ != kNil) {
    const std::uint32_t slot = free_slot_head_;
    free_slot_head_ = SlotAt(slot).next_free;
    return slot;
  }
  if (slot_count_ == slabs_.size() * kSlabChunkSize) {
    slabs_.push_back(std::make_unique<Slot[]>(kSlabChunkSize));
  }
  return slot_count_++;
}

void EventQueue::ReleaseSlot(std::uint32_t slot) {
  Slot& s = SlotAt(slot);
  s.callback = EventCallback();
  // Bumping the generation invalidates the slot's outstanding id and any
  // stale ladder entry in one step.
  ++s.generation;
  s.next_free = free_slot_head_;
  free_slot_head_ = slot;
}

std::uint32_t EventQueue::AcquireBucketChunk() {
  std::uint32_t chunk;
  if (free_chunk_head_ != kNil) {
    chunk = free_chunk_head_;
    free_chunk_head_ = bucket_pool_[chunk].next;
  } else {
    chunk = static_cast<std::uint32_t>(bucket_pool_.size());
    bucket_pool_.emplace_back();
  }
  bucket_pool_[chunk].count = 0;
  bucket_pool_[chunk].next = kNil;
  return chunk;
}

void EventQueue::AppendToBucket(Rung& rung, const Entry& entry) {
  const std::size_t idx =
      static_cast<std::size_t>((entry.when - rung.start) >> rung.width_log);
  std::uint32_t tail = rung.tail[idx];
  if (tail == kNil || bucket_pool_[tail].count == kBucketChunkCapacity) {
    const std::uint32_t chunk = AcquireBucketChunk();
    if (tail == kNil) {
      rung.head[idx] = chunk;
    } else {
      bucket_pool_[tail].next = chunk;
    }
    rung.tail[idx] = chunk;
    tail = chunk;
  }
  BucketChunk& c = bucket_pool_[tail];
  c.entries[c.count++] = entry;
}

void EventQueue::SpawnRung(Tick start, Tick max_key, std::size_t expected) {
  // Aim for several entries per bucket: each bucket drain has a fixed cost
  // (chunk walk, sort dispatch, bound update), so near-empty buckets waste
  // it while modest pile-ups still insertion-sort cheaply.
  std::size_t buckets = kMinBuckets;
  while (buckets < expected / 8 && buckets < kMaxBuckets) {
    buckets <<= 1;
  }
  const Tick span = max_key - start;  // inclusive span, >= 0
  int width_log = 0;
  while (static_cast<std::size_t>(span >> width_log) + 1 > buckets) {
    ++width_log;
  }
  const std::size_t used = static_cast<std::size_t>(span >> width_log) + 1;
  if (rung_depth_ == rungs_.size()) {
    rungs_.emplace_back();
  }
  Rung& r = rungs_[rung_depth_++];
  r.start = start;
  r.width_log = width_log;
  r.cur = 0;
  // assign() reuses the vectors' capacity, so rung churn stays off the
  // allocator once the ladder has seen its peak shape.
  r.head.assign(used, kNil);
  r.tail.assign(used, kNil);
}

void EventQueue::Insert(const Entry& entry) {
  if (entry.when < bottom_bound_) {
    if (bottom_.empty() && rung_depth_ == 0 && far_.empty()) {
      // The queue is empty, so nothing constrains placement: reset the bound
      // and take the O(1) far-buffer path. Without this, a burst of pushes
      // after a full drain would grow bottom_ one sorted insert at a time.
      bottom_bound_ = 0;
      far_.push_back(entry);
      return;
    }
    // Keys below the bound MUST live in bottom_: the rungs' drained buckets
    // are behind their cursors and would silently swallow an earlier key.
    // Descending order, so the queue front is a cheap pop_back. FIFO ties:
    // the new entry has the largest sequence, and upper_bound places it
    // before (= popped after) existing entries with the same timestamp.
    bottom_.insert(std::upper_bound(bottom_.begin(), bottom_.end(), entry,
                                    [](const Entry& a, const Entry& b) { return Before(b, a); }),
                   entry);
    return;
  }
  bool below_ladder = false;
  for (std::size_t k = rung_depth_; k-- > 0;) {
    Rung& r = rungs_[k];
    if (entry.when < r.start) {
      // Earlier than the innermost rung's coverage (possible right after a
      // rebuild whose minimum sat above bottom_bound_): the key precedes
      // every laddered event, which is exactly what bottom_ holds.
      below_ladder = true;
      break;
    }
    const Tick idx = (entry.when - r.start) >> r.width_log;
    if (idx < static_cast<Tick>(r.head.size())) {
      AppendToBucket(r, entry);
      return;
    }
  }
  if (below_ladder) {
    bottom_.insert(std::upper_bound(bottom_.begin(), bottom_.end(), entry,
                                    [](const Entry& a, const Entry& b) { return Before(b, a); }),
                   entry);
    return;
  }
  far_.push_back(entry);
}

bool EventQueue::RefillBottom() {
  for (;;) {
    if (rung_depth_ > 0) {
      Rung& r = rungs_[rung_depth_ - 1];
      while (r.cur < r.head.size() && r.head[r.cur] == kNil) {
        ++r.cur;
      }
      if (r.cur == r.head.size()) {
        --rung_depth_;  // rung drained; vectors keep capacity for reuse
        continue;
      }
      const std::uint32_t bucket = r.cur++;
      const Tick bucket_start = r.start + (static_cast<Tick>(bucket) << r.width_log);
      Tick bucket_end = bucket_start + (Tick{1} << r.width_log);
      if (bucket_end < bucket_start) {
        bucket_end = kTickNever;  // saturate near the top of the tick range
      }
      scratch_.clear();
      std::uint32_t chunk = r.head[bucket];
      while (chunk != kNil) {
        BucketChunk& c = bucket_pool_[chunk];
        for (std::uint32_t i = 0; i < c.count; ++i) {
          // Cancelled/retimed entries die here instead of riding through
          // respreads, the sort and the pop path: cancel-heavy workloads
          // otherwise pay full ladder cost for events that never run.
          if (SlotAt(c.entries[i].slot).generation == c.entries[i].generation) {
            scratch_.push_back(c.entries[i]);
          }
        }
        const std::uint32_t next = c.next;
        c.next = free_chunk_head_;
        free_chunk_head_ = chunk;
        chunk = next;
      }
      r.head[bucket] = kNil;
      r.tail[bucket] = kNil;
      if (scratch_.size() > kSpreadThreshold && rung_depth_ < kMaxRungDepth) {
        Tick mn = kTickNever;
        Tick mx = 0;
        for (const Entry& e : scratch_) {
          mn = std::min(mn, e.when);
          mx = std::max(mx, e.when);
        }
        if (mn != mx) {  // a single-tick pile can only be sorted
          // The child rung must cover the parent bucket's FULL span, not just
          // [mn, mx] of the drained entries: the parent bucket is behind its
          // cursor now, so a future insert landing in the uncovered remainder
          // would match the parent's membership test and vanish into the
          // drained bucket.
          SpawnRung(bucket_start, bucket_end == kTickNever ? kTickNever : bucket_end - 1,
                    scratch_.size());
          Rung& inner = rungs_[rung_depth_ - 1];
          for (const Entry& e : scratch_) {
            AppendToBucket(inner, e);
          }
          continue;
        }
      }
      bottom_.swap(scratch_);
      SortBottomDescending();
      bottom_bound_ = bucket_end;
      return true;
    }
    if (far_.empty()) {
      return false;
    }
    // Drop stale entries before deciding how to spread: a cancel-churn
    // workload can fill far_ with events that will never run.
    std::erase_if(far_, [this](const Entry& e) {
      return SlotAt(e.slot).generation != e.generation;
    });
    if (far_.empty()) {
      return false;
    }
    if (far_.size() <= kDirectSortThreshold) {
      bottom_.swap(far_);
      far_.clear();
      SortBottomDescending();
      const Tick top = bottom_.front().when;
      bottom_bound_ = top == kTickNever ? kTickNever : top + 1;
      return true;
    }
    Tick mn = kTickNever;
    Tick mx = 0;
    for (const Entry& e : far_) {
      mn = std::min(mn, e.when);
      mx = std::max(mx, e.when);
    }
    SpawnRung(mn, mx, far_.size());
    Rung& rung = rungs_[rung_depth_ - 1];
    for (const Entry& e : far_) {
      AppendToBucket(rung, e);
    }
    far_.clear();
  }
}

bool EventQueue::SettleFront() {
  for (;;) {
    while (!bottom_.empty()) {
      const Entry& e = bottom_.back();
      if (SlotAt(e.slot).generation == e.generation) {
        return true;
      }
      bottom_.pop_back();  // cancelled or retimed: discard lazily
    }
    if (!RefillBottom()) {
      MRM_QV_CHECK_DRAINED();
      return false;
    }
  }
}

EventId EventQueue::Push(Tick when, EventCallback callback) {
  const std::uint32_t slot = AcquireSlot();
  Slot& s = SlotAt(slot);
  s.callback = std::move(callback);
  MRM_QV_PUSH(MakeId(slot, s.generation), when, next_sequence_);
  Insert(Entry{when, next_sequence_++, slot, s.generation});
  ++live_;
  return MakeId(slot, s.generation);
}

EventId EventQueue::PushWithSequence(Tick when, std::uint64_t sequence, EventCallback callback) {
  MRM_CHECK(sequence < next_sequence_)
      << "EventQueue::PushWithSequence: sequence " << sequence
      << " was never issued (next is " << next_sequence_ << ")";
  const std::uint32_t slot = AcquireSlot();
  Slot& s = SlotAt(slot);
  s.callback = std::move(callback);
  MRM_QV_PUSH(MakeId(slot, s.generation), when, sequence);
  Insert(Entry{when, sequence, slot, s.generation});
  ++live_;
  return MakeId(slot, s.generation);
}

bool EventQueue::Lookup(EventId id, Tick* when, std::uint64_t* sequence) const {
  std::uint32_t slot = 0;
  if (!IsLive(id, &slot)) {
    return false;
  }
  const auto match = [&](const Entry& e) {
    if (e.slot != slot || e.generation != static_cast<std::uint32_t>(id)) {
      return false;
    }
    *when = e.when;
    *sequence = e.sequence;
    return true;
  };
  for (const Entry& e : bottom_) {
    if (match(e)) {
      return true;
    }
  }
  for (const Entry& e : far_) {
    if (match(e)) {
      return true;
    }
  }
  for (std::size_t k = 0; k < rung_depth_; ++k) {
    const Rung& r = rungs_[k];
    for (const std::uint32_t head : r.head) {
      for (std::uint32_t chunk = head; chunk != kNil; chunk = bucket_pool_[chunk].next) {
        const BucketChunk& c = bucket_pool_[chunk];
        for (std::uint32_t i = 0; i < c.count; ++i) {
          if (match(c.entries[i])) {
            return true;
          }
        }
      }
    }
  }
  // A live slot always has exactly one current-generation ladder entry.
  MRM_CHECK(false) << "EventQueue::Lookup: live id " << id << " has no ladder entry";
  return false;
}

void EventQueue::SetNextSequence(std::uint64_t next_sequence) {
  MRM_CHECK(live_ == 0) << "EventQueue::SetNextSequence requires an empty queue";
  next_sequence_ = next_sequence;
}

bool EventQueue::Cancel(EventId id) {
  std::uint32_t slot = 0;
  if (!IsLive(id, &slot)) {
    return false;
  }
  MRM_QV_DROP(id);
  ReleaseSlot(slot);
  --live_;
  return true;
}

EventId EventQueue::Retime(EventId id, Tick when) {
  std::uint32_t slot = 0;
  if (!IsLive(id, &slot)) {
    return kInvalidEventId;
  }
  // Bump the generation: the old ladder entry goes stale in place, and the
  // new entry (same slot, same callback) carries the fresh generation. The
  // event ties with others at `when` as if it had been scheduled just now,
  // matching the cancel+reschedule it replaces.
  Slot& s = SlotAt(slot);
  ++s.generation;
  MRM_QV_DROP(id);
  MRM_QV_PUSH(MakeId(slot, s.generation), when, next_sequence_);
  Insert(Entry{when, next_sequence_++, slot, s.generation});
  return MakeId(slot, s.generation);
}

Tick EventQueue::NextTime() {
  if (!SettleFront()) {
    return kTickNever;
  }
  return bottom_.back().when;
}

EventCallback EventQueue::Pop(Tick* when) {
  const bool has_front = SettleFront();
  assert(has_front);
  (void)has_front;
  const Entry top = bottom_.back();
  MRM_QV_CHECK_TOP(top.when, top.sequence);
  MRM_QV_DROP(MakeId(top.slot, top.generation));
  bottom_.pop_back();
  *when = top.when;
  EventCallback callback = std::move(SlotAt(top.slot).callback);
  ReleaseSlot(top.slot);
  --live_;
  return callback;
}

void EventQueue::SaveState(SavedState* out) const {
  out->events.clear();
  out->next_sequence = next_sequence_;
  const auto save_entry = [this, out](const Entry& e) {
    if (SlotAt(e.slot).generation != e.generation) {
      return;  // cancelled or retimed: not part of the live set
    }
    const EventCallback& callback = SlotAt(e.slot).callback;
    MRM_CHECK(callback.is_inline())
        << "EventQueue::SaveState: live event at tick " << e.when
        << " holds a heap-backed callback, which cannot be cloned";
    out->events.push_back(
        SavedState::SavedEvent{e.when, e.sequence, e.slot, e.generation, callback.CloneInline()});
  };
  for (const Entry& e : bottom_) {
    save_entry(e);
  }
  for (const Entry& e : far_) {
    save_entry(e);
  }
  for (std::size_t k = 0; k < rung_depth_; ++k) {
    const Rung& r = rungs_[k];
    for (const std::uint32_t head : r.head) {
      for (std::uint32_t chunk = head; chunk != kNil; chunk = bucket_pool_[chunk].next) {
        const BucketChunk& c = bucket_pool_[chunk];
        for (std::uint32_t i = 0; i < c.count; ++i) {
          save_entry(c.entries[i]);
        }
      }
    }
  }
  MRM_CHECK(out->events.size() == live_);
}

void EventQueue::RestoreState(const SavedState& saved) {
  // Tear the ladder down to the empty shape: every bucket chunk returns to
  // the free list (so repeated restores never grow the pool), the rung stack
  // empties, and bottom_bound_ = 0 routes the re-inserted entries through the
  // O(1) far-buffer path.
  bottom_.clear();
  far_.clear();
  rung_depth_ = 0;
  free_chunk_head_ = kNil;
  for (std::size_t i = bucket_pool_.size(); i-- > 0;) {
    bucket_pool_[i].count = 0;
    bucket_pool_[i].next = free_chunk_head_;
    free_chunk_head_ = static_cast<std::uint32_t>(i);
  }
  bottom_bound_ = 0;

  // Rebuild the slab: saved slots get their exact saved generation and a
  // clone of the saved callback (so EventIds issued before the save are live
  // again); every other slot is released with a generation bump, killing any
  // id issued after the save. Slab capacity is retained.
  for (const SavedState::SavedEvent& ev : saved.events) {
    MRM_CHECK(ev.slot < slot_count_);
    Slot& s = SlotAt(ev.slot);
    s.callback = ev.callback.CloneInline();
    s.generation = ev.generation;
    s.next_free = kNil - 1;  // sentinel: live in the restored set
  }
  free_slot_head_ = kNil;
  for (std::uint32_t slot = slot_count_; slot-- > 0;) {
    Slot& s = SlotAt(slot);
    if (s.next_free == kNil - 1) {
      s.next_free = kNil;
      continue;
    }
    s.callback = EventCallback();
    ++s.generation;
    s.next_free = free_slot_head_;
    free_slot_head_ = slot;
  }

  for (const SavedState::SavedEvent& ev : saved.events) {
    far_.push_back(Entry{ev.when, ev.sequence, ev.slot, ev.generation});
  }
  live_ = saved.events.size();
  next_sequence_ = saved.next_sequence;
}

void EventQueue::ExecuteTop() {
  assert(!bottom_.empty());
  const Entry top = bottom_.back();
  MRM_QV_CHECK_TOP(top.when, top.sequence);
  MRM_QV_DROP(MakeId(top.slot, top.generation));
  assert(SlotAt(top.slot).generation == top.generation);
  bottom_.pop_back();
  Slot& s = SlotAt(top.slot);
  // Mark dead before invoking so Cancel/Retime on the executing event's own
  // id fail, matching the erase-before-call behaviour callers rely on. The
  // slot is not on the free list yet, so reentrant pushes cannot reuse it.
  ++s.generation;
  --live_;
  s.callback();
  s.callback = EventCallback();
  s.next_free = free_slot_head_;
  free_slot_head_ = top.slot;
}

}  // namespace sim
}  // namespace mrm
