#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace mrm {
namespace sim {

EventId EventQueue::Push(Tick when, EventCallback callback) {
  const EventId id = next_id_++;
  callbacks_.emplace(id, std::move(callback));
  heap_.push(Entry{when, id, id});
  return id;
}

bool EventQueue::Cancel(EventId id) { return callbacks_.erase(id) != 0; }

void EventQueue::SkipCancelled() const {
  while (!heap_.empty() && callbacks_.find(heap_.top().id) == callbacks_.end()) {
    heap_.pop();
  }
}

Tick EventQueue::NextTime() const {
  SkipCancelled();
  return heap_.empty() ? kTickNever : heap_.top().when;
}

EventCallback EventQueue::Pop(Tick* when) {
  SkipCancelled();
  assert(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  *when = top.when;
  auto it = callbacks_.find(top.id);
  EventCallback callback = std::move(it->second);
  callbacks_.erase(it);
  return callback;
}

}  // namespace sim
}  // namespace mrm
