// Discrete-event core: ticks, events and the priority queue.
//
// Ticks are abstract integer time units; each Simulator instance fixes a
// tick frequency (ticks/second) so modules can convert to wall time. Events
// with equal timestamps fire in scheduling order (stable FIFO), which keeps
// simulations deterministic.
//
// Internals: callbacks live in a slab of reusable slots; ordering is kept by
// a ladder queue over lightweight (when, sequence, slot, generation) entries.
// An EventId encodes slot index + the slot's generation at schedule time, so
// Cancel is an O(1) generation check with no hash lookup, and a freed slot's
// bumped generation lazily invalidates any stale entry still pointing at it.
// See DESIGN.md §"Event core internals".

#ifndef MRMSIM_SRC_SIM_EVENT_QUEUE_H_
#define MRMSIM_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/event_callback.h"

namespace mrm {
namespace sim {

using Tick = std::uint64_t;

inline constexpr Tick kTickNever = ~Tick{0};

// Handle for cancelling or retiming a scheduled event. Encodes
// (slot << 32) | generation; generations start at 1, so 0 is never a live id.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

// Priority queue specialised for discrete-event simulation. Exploits the
// monotonicity of event-driven pushes (Simulator clamps timestamps to now())
// with a ladder queue: pushes append in O(1), and ordering work is deferred
// until pop time, when events are spread into time buckets and only the
// front bucket is sorted. Amortised O(1) per event for the distributions a
// simulator produces, against O(log n) comparison sifts for a binary heap.
class EventQueue {
 public:
  EventQueue();

  // Not copyable (callbacks may capture owners).
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  EventId Push(Tick when, EventCallback callback);

  // Push with an explicit, previously-issued sequence number instead of the
  // next fresh one. Disk restore (DESIGN.md §13) re-creates events with the
  // sequence they held at save time so the (when, sequence) pop order — and
  // therefore every downstream result — is bit-identical to the uninterrupted
  // run. `sequence` must predate next_sequence_ (i.e. come from a snapshot);
  // uniqueness among live events is the caller's contract, as in the save.
  EventId PushWithSequence(Tick when, std::uint64_t sequence, EventCallback callback);

  // Marks an event as cancelled; returns false when the id was already
  // executed, cancelled, retimed, or never existed.
  bool Cancel(EventId id);

  // Moves a pending event to fire at `when` without touching its callback.
  // Returns the event's new id (the old id is invalidated), or
  // kInvalidEventId when `id` is no longer live. O(1) amortised,
  // allocation-free: the callback stays in its slab slot.
  EventId Retime(EventId id, Tick when);

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  // Number of slab slots ever allocated; bounded by the peak number of
  // outstanding events, not by total events scheduled (slots are reused).
  std::size_t slab_capacity() const { return slot_count_; }

  // Timestamp of the next live event; kTickNever when empty.
  Tick NextTime();

  // Looks up a live event's timestamp and sequence without disturbing it.
  // Returns false when the id is stale. O(live) scan — checkpoint-path only.
  bool Lookup(EventId id, Tick* when, std::uint64_t* sequence) const;

  // Monotone counter handed to the next Push; part of the durable snapshot so
  // a restored queue continues issuing sequences exactly where the saved run
  // left off. SetNextSequence requires an empty queue (restore starts clean).
  std::uint64_t next_sequence() const { return next_sequence_; }
  void SetNextSequence(std::uint64_t next_sequence);

  // Pops and returns the next live event's callback, setting *when to its
  // timestamp. Precondition: !empty().
  EventCallback Pop(Tick* when);

  // Pops the next live event and invokes its callback in place — no callback
  // move, no slot copy. The callback may freely schedule, cancel, or retime
  // other events (slot storage is chunk-stable). Precondition: NextTime()
  // was just called and returned != kTickNever.
  void ExecuteTop();

  // Snapshot of every live event, restorable onto the same queue. Only
  // inline-stored callbacks can be captured (MRM_CHECK in SaveState): they
  // are trivially copyable, so the clone is exact and independent. The
  // snapshot preserves each event's slot index and generation, so EventIds
  // held by callers (e.g. a controller's wake handle) stay valid across a
  // RestoreState. Storage is reused across SaveState calls — a lane that
  // snapshots every commit allocates only until its high-water mark.
  struct SavedState {
    struct SavedEvent {
      Tick when;
      std::uint64_t sequence;
      std::uint32_t slot;
      std::uint32_t generation;
      EventCallback callback;
    };
    std::vector<SavedEvent> events;
    std::uint64_t next_sequence = 0;
  };

  // Captures all live events into `out` (overwriting it). Dies when a live
  // event's callback is heap-backed — the snapshot layer is for lane queues,
  // whose callbacks are inline by construction.
  void SaveState(SavedState* out) const;

  // Restores the queue to exactly the saved set of live events: same pop
  // order, same slot/generation pairs (stale EventIds from after the save
  // become dead, saved ones become live again). The ladder is rebuilt lazily
  // from scratch; slab capacity is retained.
  void RestoreState(const SavedState& saved);

 private:
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};
  // Slots live in fixed-size chunks so growth never relocates a callback:
  // a slot's address is stable for its whole life, and growing the slab is
  // one chunk allocation instead of an O(n) vector move.
  static constexpr std::uint32_t kSlabChunkShift = 8;
  static constexpr std::uint32_t kSlabChunkSize = 1u << kSlabChunkShift;

  struct Slot {
    EventCallback callback;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNil;
  };

  struct Entry {
    Tick when;
    std::uint64_t sequence;  // tie-break: FIFO among equal timestamps
    std::uint32_t slot;
    std::uint32_t generation;
  };

  // Bucket storage: singly-linked fixed-capacity chunks from a pooled free
  // list, so scattering events into buckets never touches the allocator in
  // steady state. Ten entries keep a chunk at four cache lines and make the
  // one-chunk bucket the overwhelmingly common case.
  static constexpr std::uint32_t kBucketChunkCapacity = 10;
  struct BucketChunk {
    Entry entries[kBucketChunkCapacity];
    std::uint32_t count;
    std::uint32_t next;
  };

  // One ladder level: a span of time cut into power-of-two-width buckets,
  // drained front to back. head/tail index into the bucket-chunk pool; a key
  // belongs to the level iff (key - start) >> width_log lands in head's
  // range, which sidesteps overflow near kTickNever entirely.
  struct Rung {
    Tick start = 0;
    int width_log = 0;
    std::uint32_t cur = 0;  // next bucket index to drain
    std::vector<std::uint32_t> head;
    std::vector<std::uint32_t> tail;
  };

  // Entry order: earliest time first, then lowest sequence. Sequences are
  // unique, so this is a strict total order and pop order is independent of
  // the ladder's internal bucketing.
  static bool Before(const Entry& a, const Entry& b) {
    return a.when != b.when ? a.when < b.when : a.sequence < b.sequence;
  }

  static EventId MakeId(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) << 32) | generation;
  }

  bool IsLive(EventId id, std::uint32_t* slot_out) const;
  std::uint32_t AcquireSlot();
  void ReleaseSlot(std::uint32_t slot);

  void Insert(const Entry& entry);
  void AppendToBucket(Rung& rung, const Entry& entry);
  std::uint32_t AcquireBucketChunk();
  // Pushes a fresh innermost rung covering keys in [start, max_key].
  void SpawnRung(Tick start, Tick max_key, std::size_t expected);
  // Ensures bottom_.back() is the live front entry; false when drained.
  bool SettleFront();
  bool RefillBottom();
  void SortBottomDescending();

  Slot& SlotAt(std::uint32_t slot) {
    return slabs_[slot >> kSlabChunkShift][slot & (kSlabChunkSize - 1)];
  }
  const Slot& SlotAt(std::uint32_t slot) const {
    return slabs_[slot >> kSlabChunkShift][slot & (kSlabChunkSize - 1)];
  }

  // --- callback slab ---
  // snapshot-exempt(storage: RestoreState rewrites every slot in place via
  // SlotAt; slab capacity is retained, not captured)
  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::uint32_t slot_count_ = 0;  // slots handed out across all slab chunks
  std::uint32_t free_slot_head_ = kNil;

  // --- ladder queue ---
  // bottom_ holds the earliest events, sorted descending so the front of the
  // queue is bottom_.back(). Every key below bottom_bound_ belongs here.
  std::vector<Entry> bottom_;
  Tick bottom_bound_ = 0;
  // rungs_[0..rung_depth_) is a stack of ever-narrower time spans; the
  // innermost (back) covers the earliest region. Vectors are reused across
  // rebuilds, so rung churn is allocation-free in steady state.
  std::vector<Rung> rungs_;
  std::size_t rung_depth_ = 0;
  // far_ collects events beyond every rung, unsorted; they are spread into a
  // fresh rung (one counting pass + one scatter pass) once the ladder drains.
  std::vector<Entry> far_;
  std::vector<BucketChunk> bucket_pool_;
  std::uint32_t free_chunk_head_ = kNil;
  // snapshot-exempt(transient gather buffer for bucket drains; empty between
  // operations)
  std::vector<Entry> scratch_;

  std::size_t live_ = 0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace sim
}  // namespace mrm

#endif  // MRMSIM_SRC_SIM_EVENT_QUEUE_H_
