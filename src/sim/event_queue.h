// Discrete-event core: ticks, events and the priority queue.
//
// Ticks are abstract integer time units; each Simulator instance fixes a
// tick frequency (ticks/second) so modules can convert to wall time. Events
// with equal timestamps fire in scheduling order (stable FIFO), which keeps
// simulations deterministic.

#ifndef MRMSIM_SRC_SIM_EVENT_QUEUE_H_
#define MRMSIM_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace mrm {
namespace sim {

using Tick = std::uint64_t;

inline constexpr Tick kTickNever = ~Tick{0};

using EventCallback = std::function<void()>;

// Handle for cancelling a scheduled event. Cancellation is lazy: the entry
// stays in the heap but is skipped when it reaches the top.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventQueue() = default;

  // Not copyable (callbacks may capture owners).
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  EventId Push(Tick when, EventCallback callback);

  // Marks an event as cancelled; returns false when the id was already
  // executed, cancelled, or never existed.
  bool Cancel(EventId id);

  bool empty() const { return callbacks_.empty(); }
  std::size_t size() const { return callbacks_.size(); }

  // Timestamp of the next live event; kTickNever when empty.
  Tick NextTime() const;

  // Pops and returns the next live event's callback, setting *when to its
  // timestamp. Precondition: !empty().
  EventCallback Pop(Tick* when);

 private:
  struct Entry {
    Tick when;
    std::uint64_t sequence;  // tie-break: FIFO among equal timestamps
    EventId id;
    // Heap order: earliest time first, then lowest sequence.
    bool operator>(const Entry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return sequence > other.sequence;
    }
  };

  void SkipCancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  // Live events only; erased on execution or cancellation so memory is
  // bounded by the number of outstanding events, not total events ever.
  std::unordered_map<EventId, EventCallback> callbacks_;
  std::uint64_t next_id_ = 0;
};

}  // namespace sim
}  // namespace mrm

#endif  // MRMSIM_SRC_SIM_EVENT_QUEUE_H_
