#include "src/sim/parallel_executor.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace mrm {
namespace sim {

ParallelExecutor::ParallelExecutor(int threads) {
  const int worker_count = threads > 1 ? threads - 1 : 0;
  if (worker_count > 0) {
    slots_ = std::make_unique<WorkerSlot[]>(static_cast<std::size_t>(worker_count));
    workers_.reserve(static_cast<std::size_t>(worker_count));
    for (int i = 0; i < worker_count; ++i) {
      // Participant 0 is the calling thread; workers are 1..threads-1.
      workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
    }
  }
}

ParallelExecutor::~ParallelExecutor() {
  shutdown_.store(true, std::memory_order_release);
  // Active count 0: a waking worker sees the shutdown flag before it would
  // consult any task state.
  PublishGeneration(0);
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ParallelExecutor::SetSpinsPerYield(int spins) {
  spins_per_yield_.store(spins < 1 ? 1 : spins, std::memory_order_relaxed);
}

int ParallelExecutor::ActiveParticipants(int task_count) const {
  if (plan_tasks_ == task_count && !plan_starts_.empty()) {
    return static_cast<int>(plan_starts_.size()) - 1;
  }
  // Static striding: participants >= task_count would draw an empty stride;
  // leave them parked.
  return std::min(threads(), task_count);
}

std::uint64_t ParallelExecutor::PublishGeneration(int active) {
  const std::uint64_t counter = generation_.load(std::memory_order_relaxed) >> kActiveBits;
  const std::uint64_t word =
      ((counter + 1) << kActiveBits) | (static_cast<std::uint64_t>(active) & kActiveMask);
  generation_.store(word, std::memory_order_release);
  return word;
}

void ParallelExecutor::AwaitGeneration(std::uint64_t gen_word, int active) {
  const int spin_budget = spins_per_yield_.load(std::memory_order_relaxed);
  for (int p = 1; p < active; ++p) {
    int spins = 0;
    while (slots_[p - 1].done_gen.load(std::memory_order_acquire) != gen_word) {
      if (++spins >= spin_budget) {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }
}

void ParallelExecutor::JoinAll() {
  // Every worker eventually reaches the current generation word and checks
  // in, even ones that skipped dispatches they were not engaged in: the word
  // differs from their last seen value, so their generation spin wakes.
  const std::uint64_t word = generation_.load(std::memory_order_relaxed);
  const int spin_budget = spins_per_yield_.load(std::memory_order_relaxed);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    int spins = 0;
    while (slots_[w].done_gen.load(std::memory_order_acquire) != word) {
      if (++spins >= spin_budget) {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }
}

void ParallelExecutor::SetPlan(std::vector<int> order, std::vector<int> starts) {
  MRM_CHECK(starts.size() >= 2) << "plan must engage at least the caller";
  MRM_CHECK(static_cast<int>(starts.size()) - 1 <= threads());
  MRM_CHECK(starts.front() == 0);
  MRM_CHECK(starts.back() == static_cast<int>(order.size()));
  MRM_CHECK(std::is_sorted(starts.begin(), starts.end()));
  JoinAll();  // no worker may read the old plan once we swap it
  dispatch_role_.Acquire();
  plan_order_ = std::move(order);
  plan_starts_ = std::move(starts);
  plan_tasks_ = static_cast<int>(plan_order_.size());
  dispatch_role_.Release();
}

void ParallelExecutor::ClearPlan() {
  JoinAll();
  dispatch_role_.Acquire();
  plan_order_.clear();
  plan_starts_.clear();
  plan_tasks_ = -1;
  dispatch_role_.Release();
}

void ParallelExecutor::DrainAssigned(int participant) {
  if (PlanActiveForDispatch()) {
    const int begin = plan_starts_[static_cast<std::size_t>(participant)];
    const int end = plan_starts_[static_cast<std::size_t>(participant) + 1];
    for (int i = begin; i < end; ++i) {
      (*fn_)(plan_order_[static_cast<std::size_t>(i)]);
    }
    return;
  }
  const int stride = threads();
  for (int i = participant; i < task_count_; i += stride) {
    (*fn_)(i);
  }
}

void ParallelExecutor::WorkerLoop(int participant) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t word;
    int spins = 0;
    int spin_budget = spins_per_yield_.load(std::memory_order_relaxed);
    while ((word = generation_.load(std::memory_order_acquire)) == seen) {
      if (++spins >= spin_budget) {
        spins = 0;
        std::this_thread::yield();
        spin_budget = spins_per_yield_.load(std::memory_order_relaxed);
      }
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      return;
    }
    seen = word;
    const int active = static_cast<int>(word & kActiveMask);
    // A worker outside the engaged set checks in without reading any task
    // state: fn_/task_count_/mode_/plan may already describe a later
    // dispatch it is not part of.
    if (participant < active) {
      // Engaged for this dispatch: the generation acquire-load above paired
      // with the caller's release-store, so the published task state is
      // visible and stable until our done_gen check-in.
      dispatch_role_.HeldShared();
      if (mode_ == Mode::kSingle) {
        DrainAssigned(participant);
      } else {
        std::uint64_t done = 0;
        for (;;) {
          const std::uint64_t r = round_.load(std::memory_order_acquire);
          if (r == kRoundsDone) {
            break;
          }
          if (r != done) {
            done = r;
            DrainAssigned(participant);
            slots_[participant - 1].done_round.store(done, std::memory_order_release);
            spins = 0;
          } else if (++spins >= spin_budget) {
            spins = 0;
            std::this_thread::yield();
          }
        }
      }
    }
    slots_[participant - 1].done_gen.store(word, std::memory_order_release);
  }
}

void ParallelExecutor::Run(int task_count, const std::function<void(int)>& fn) {
  if (task_count <= 0) {
    return;
  }
  if (workers_.empty()) {
    for (int i = 0; i < task_count; ++i) {
      fn(i);
    }
    return;
  }
  dispatch_role_.Acquire();
  fn_ = &fn;
  task_count_ = task_count;
  mode_ = Mode::kSingle;
  const int active = ActiveParticipants(task_count);
  const std::uint64_t word = PublishGeneration(active);
  DrainAssigned(0);
  // Wait for the engaged workers only: once they checked in for `word` no
  // thread can still be reading this dispatch's fn_/task_count_/plan (idle
  // participants never read them), so the next Run may overwrite them.
  AwaitGeneration(word, active);
  dispatch_role_.Release();
}

void ParallelExecutor::RunRounds(int task_count, const std::function<void(int)>& fn,
                                 const std::function<bool()>& between) {
  if (task_count <= 0) {
    while (between()) {
    }
    return;
  }
  if (workers_.empty()) {
    do {
      for (int i = 0; i < task_count; ++i) {
        fn(i);
      }
    } while (between());
    return;
  }
  dispatch_role_.Acquire();
  fn_ = &fn;
  task_count_ = task_count;
  mode_ = Mode::kRounds;
  const int active = ActiveParticipants(task_count);
  // Reset the round state of the engaged workers. They are quiescent: the
  // previous batch's end waited for their generation check-in, which their
  // last done_round store precedes.
  for (int p = 1; p < active; ++p) {
    slots_[p - 1].done_round.store(0, std::memory_order_relaxed);
  }
  std::uint64_t round = 1;
  round_.store(round, std::memory_order_relaxed);  // published by the release below
  const std::uint64_t word = PublishGeneration(active);
  const int spin_budget = spins_per_yield_.load(std::memory_order_relaxed);
  for (;;) {
    DrainAssigned(0);
    for (int p = 1; p < active; ++p) {
      int spins = 0;
      while (slots_[p - 1].done_round.load(std::memory_order_acquire) < round) {
        if (++spins >= spin_budget) {
          spins = 0;
          std::this_thread::yield();
        }
      }
    }
    if (!between()) {
      break;
    }
    ++round;
    round_.store(round, std::memory_order_release);
  }
  round_.store(kRoundsDone, std::memory_order_release);
  AwaitGeneration(word, active);
  dispatch_role_.Release();
}

}  // namespace sim
}  // namespace mrm
