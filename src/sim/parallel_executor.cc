#include "src/sim/parallel_executor.h"

namespace mrm {
namespace sim {
namespace {

// Spin-wait knob: relaxed polls between yields. Epochs recur on a
// microsecond scale, so a waiting worker almost always sees the next
// generation within the spin budget; the yield bounds the cost when the hub
// is busy with long serial phases.
constexpr int kSpinsPerYield = 256;

}  // namespace

ParallelExecutor::ParallelExecutor(int threads) {
  const int worker_count = threads > 1 ? threads - 1 : 0;
  if (worker_count > 0) {
    slots_ = std::make_unique<WorkerSlot[]>(static_cast<std::size_t>(worker_count));
    workers_.reserve(static_cast<std::size_t>(worker_count));
    for (int i = 0; i < worker_count; ++i) {
      // Participant 0 is the calling thread; workers are 1..threads-1.
      workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
    }
  }
}

ParallelExecutor::~ParallelExecutor() {
  shutdown_.store(true, std::memory_order_release);
  generation_.fetch_add(1, std::memory_order_release);
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ParallelExecutor::DrainStride(int participant) {
  const int stride = threads();
  for (int i = participant; i < task_count_; i += stride) {
    (*fn_)(i);
  }
}

void ParallelExecutor::WorkerLoop(int participant) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t current;
    int spins = 0;
    while ((current = generation_.load(std::memory_order_acquire)) == seen) {
      if (++spins >= kSpinsPerYield) {
        spins = 0;
        std::this_thread::yield();
      }
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      return;
    }
    seen = current;
    DrainStride(participant);
    slots_[participant - 1].done_gen.store(current, std::memory_order_release);
  }
}

void ParallelExecutor::Run(int task_count, const std::function<void(int)>& fn) {
  if (task_count <= 0) {
    return;
  }
  if (workers_.empty()) {
    for (int i = 0; i < task_count; ++i) {
      fn(i);
    }
    return;
  }
  fn_ = &fn;
  task_count_ = task_count;
  const std::uint64_t gen = generation_.fetch_add(1, std::memory_order_release) + 1;
  DrainStride(0);
  // Wait for every worker, tasks or not: once all have checked in for `gen`
  // no thread can still be reading this generation's fn_/task_count_, so the
  // next Run may safely overwrite them.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    int spins = 0;
    while (slots_[w].done_gen.load(std::memory_order_acquire) != gen) {
      if (++spins >= kSpinsPerYield) {
        spins = 0;
        std::this_thread::yield();
      }
    }
  }
  fn_ = nullptr;
}

}  // namespace sim
}  // namespace mrm
