// ParallelExecutor: a reusable worker pool tuned for very short, frequent
// fan-out/fan-in cycles (one per simulation epoch, typically a few
// microseconds of lane work per dispatch).
//
// Workers park in a bounded spin-then-yield wait on an epoch generation
// counter instead of a condition variable: epochs recur every few
// microseconds, and a futex wake per epoch would cost more than the lane
// work it dispatches. Publication is acquire/release throughout: the task
// closure, count and plan are written before the generation release-store
// and read after its acquire-load; each worker's check-in is a
// release-store the caller acquire-loads before touching results.
//
// Scheduling: by default tasks are partitioned statically (participant p
// takes indices p, p+T, p+2T, ...). A caller that measures per-task cost can
// install an explicit task->participant *plan* (SetPlan) — e.g. LPT
// bin-packing over decayed cost estimates — and a plan may engage fewer
// participants than the pool has: the generation word encodes the active
// participant count, and a worker outside it checks in without ever reading
// the task closure, count or plan. Run() then waits only for engaged
// workers, so a plan that packs all tasks onto the caller costs no barrier
// at all — the cheap-epoch path on machines with fewer free cores than
// workers.
//
// RunRounds() amortizes the dispatch further: one publish drives many task
// rounds, with a serial caller-side callback between rounds (the epoch
// driver seals an epoch and derives the next horizon there). Engaged workers
// check in per round on a counter in a separate cache line from their
// generation check-in, so round-polling by the caller never contends with
// the end-of-batch handshake.

#ifndef MRMSIM_SRC_SIM_PARALLEL_EXECUTOR_H_
#define MRMSIM_SRC_SIM_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.h"

namespace mrm {
namespace sim {

class ParallelExecutor {
 public:
  // `threads` counts the calling thread: N means N-1 workers are spawned and
  // Run's caller executes tasks too. Values <= 1 spawn nothing and Run
  // degenerates to an inline serial loop.
  explicit ParallelExecutor(int threads);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Invokes fn(i) exactly once for each i in [0, task_count) and returns
  // after all invocations finished. fn must be callable concurrently for
  // distinct i. Not reentrant: one Run at a time.
  void Run(int task_count, const std::function<void(int)>& fn);

  // One publish, many rounds: each round invokes fn(i) for every i in
  // [0, task_count); when the round's tasks finished, `between` runs on the
  // calling thread (workers keep spinning on the round counter) and its
  // return decides whether another round begins. Writes made by `between`
  // (e.g. new per-task horizons) are visible to the next round's tasks.
  void RunRounds(int task_count, const std::function<void(int)>& fn,
                 const std::function<bool()>& between);

  // Installs a task->participant plan used by Run/RunRounds calls whose
  // task_count matches: task order[i], for i in [starts[p], starts[p+1]),
  // runs on participant p (0 = the caller). starts.size() - 1 is the number
  // of engaged participants and may be less than threads(); the rest are not
  // synchronized with. Calls with a different task_count fall back to static
  // striding over all participants. Synchronizes with every worker before
  // swapping the plan, so it must not be called from inside a task.
  void SetPlan(std::vector<int> order, std::vector<int> starts);

  // Reverts to static striding over all participants (also synchronizes).
  void ClearPlan();

  // Relaxed polls between sched_yields while waiting (both workers waiting
  // for work and the caller waiting for check-ins). Higher values burn more
  // CPU for lower wake latency; the default suits epoch cadences of a few
  // microseconds.
  void SetSpinsPerYield(int spins);
  int spins_per_yield() const { return spins_per_yield_.load(std::memory_order_relaxed); }

 private:
  // Per-worker check-in slots. The generation check-in (end of a Run / end
  // of a batch) and the per-round check-in live on separate cache lines:
  // during a batch the caller polls done_round hot while done_gen stays
  // untouched, so short-lane workers checking in never pull the line the
  // end-of-batch handshake uses.
  struct alignas(64) WorkerSlot {
    std::atomic<std::uint64_t> done_gen{0};
    char pad_[64 - sizeof(std::atomic<std::uint64_t>)];
    std::atomic<std::uint64_t> done_round{0};
  };
  static_assert(sizeof(WorkerSlot) == 128, "one line per check-in counter");
  static_assert(alignof(WorkerSlot) == 64, "slots must start on a cache line");
  static_assert(offsetof(WorkerSlot, done_round) == 64,
                "round check-in must not share a line with the generation check-in");

  // The generation word packs (counter << kActiveBits) | engaged participant
  // count, so a waking worker learns whether it participates before touching
  // any task state.
  static constexpr int kActiveBits = 16;
  static constexpr std::uint64_t kActiveMask = (1ull << kActiveBits) - 1;
  // Round counter sentinel: the batch is over, check in on done_gen.
  static constexpr std::uint64_t kRoundsDone = ~0ull;

  enum class Mode : int { kSingle, kRounds };

  void WorkerLoop(int participant);
  // Runs this participant's share of the current dispatch: the plan range
  // when a matching plan is installed, the static stride otherwise.
  void DrainAssigned(int participant) MRMSIM_REQUIRES_SHARED(dispatch_role_);
  bool PlanActiveForDispatch() const MRMSIM_REQUIRES_SHARED(dispatch_role_) {
    return plan_tasks_ == task_count_ && !plan_starts_.empty();
  }
  // Engaged participants for a dispatch of `task_count` tasks.
  int ActiveParticipants(int task_count) const MRMSIM_REQUIRES_SHARED(dispatch_role_);
  std::uint64_t PublishGeneration(int active);
  void AwaitGeneration(std::uint64_t gen_word, int active);
  void JoinAll();

  // Capability over the published dispatch description (fn_/task_count_/
  // mode_/plan). The dispatching caller holds it exclusively from before it
  // writes the description until every engaged worker checked in; an engaged
  // worker claims a shared hold after the generation acquire-load — the
  // release/acquire pair on generation_ is the real handoff the phantom
  // capability narrates. Idle participants never claim it, matching the
  // invariant that they never read task state.
  tsa::ThreadRole dispatch_role_;

  std::atomic<std::uint64_t> generation_{0};
  int task_count_ MRMSIM_GUARDED_BY(dispatch_role_) = 0;
  Mode mode_ MRMSIM_GUARDED_BY(dispatch_role_) = Mode::kSingle;
  const std::function<void(int)>* fn_ MRMSIM_GUARDED_BY(dispatch_role_) = nullptr;
  std::atomic<std::uint64_t> round_{0};
  std::atomic<bool> shutdown_{false};
  std::atomic<int> spins_per_yield_{256};
  // Plan storage; mutated only while every worker is parked (JoinAll), read
  // by engaged workers after the generation acquire.
  std::vector<int> plan_order_ MRMSIM_GUARDED_BY(dispatch_role_);
  std::vector<int> plan_starts_ MRMSIM_GUARDED_BY(dispatch_role_);
  int plan_tasks_ MRMSIM_GUARDED_BY(dispatch_role_) = -1;
  std::unique_ptr<WorkerSlot[]> slots_;
  std::vector<std::thread> workers_;
};

}  // namespace sim
}  // namespace mrm

#endif  // MRMSIM_SRC_SIM_PARALLEL_EXECUTOR_H_
