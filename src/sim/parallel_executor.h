// ParallelExecutor: a reusable worker pool tuned for very short, frequent
// fan-out/fan-in cycles (one per simulation epoch, typically a few
// microseconds of lane work per dispatch).
//
// Workers park in a bounded spin-then-yield wait on an epoch generation
// counter instead of a condition variable: epochs recur every few
// microseconds, and a futex wake per epoch would cost more than the lane
// work it dispatches. Tasks are partitioned statically (participant p takes
// indices p, p+T, p+2T, ...) so there is no shared claim counter to reset
// between generations, and Run() returns only after every worker has checked
// in for the current generation — a worker can never observe state from a
// later Run() mid-drain. Publication is acquire/release throughout: the task
// closure and count are written before the generation release-store and read
// after its acquire-load; each worker's check-in is a release-store the
// caller acquire-loads before touching results.

#ifndef MRMSIM_SRC_SIM_PARALLEL_EXECUTOR_H_
#define MRMSIM_SRC_SIM_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace mrm {
namespace sim {

class ParallelExecutor {
 public:
  // `threads` counts the calling thread: N means N-1 workers are spawned and
  // Run's caller executes tasks too. Values <= 1 spawn nothing and Run
  // degenerates to an inline serial loop.
  explicit ParallelExecutor(int threads);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Invokes fn(i) exactly once for each i in [0, task_count) and returns
  // after all invocations finished. fn must be callable concurrently for
  // distinct i. Not reentrant: one Run at a time.
  void Run(int task_count, const std::function<void(int)>& fn);

 private:
  // One cache line per worker: the generation it last completed.
  struct alignas(64) WorkerSlot {
    std::atomic<std::uint64_t> done_gen{0};
  };

  void WorkerLoop(int participant);
  void DrainStride(int participant);

  std::atomic<std::uint64_t> generation_{0};
  int task_count_ = 0;
  const std::function<void(int)>* fn_ = nullptr;
  std::atomic<bool> shutdown_{false};
  std::unique_ptr<WorkerSlot[]> slots_;
  std::vector<std::thread> workers_;
};

}  // namespace sim
}  // namespace mrm

#endif  // MRMSIM_SRC_SIM_PARALLEL_EXECUTOR_H_
