// A self-rescheduling periodic callback (refresh engines, scrubbers, pollers).
//
// Ownership (DESIGN.md §12): a PeriodicTask schedules exclusively on the
// Simulator it was constructed with, so it inherits that simulator's context
// — the thread holding the simulator's exec role (hub for the executive, the
// lane's epoch worker for a lane sub-simulator).

#ifndef MRMSIM_SRC_SIM_PERIODIC_TASK_H_
#define MRMSIM_SRC_SIM_PERIODIC_TASK_H_

#include <functional>
#include <utility>

#include "src/sim/simulator.h"

namespace mrm {
namespace sim {

class PeriodicTask {
 public:
  // `body` runs every `period` ticks starting at now+phase. The task holds a
  // pointer to the simulator, which must outlive it.
  PeriodicTask(Simulator* simulator, Tick period, std::function<void()> body, Tick phase = 0)
      : simulator_(simulator), period_(period), body_(std::move(body)) {
    event_ = simulator_->ScheduleAfter(phase == 0 ? period_ : phase, [this] { Fire(); });
  }

  ~PeriodicTask() { Stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Stop() {
    if (running_) {
      simulator_->Cancel(event_);
      running_ = false;
    }
  }

  // Changes the period; takes effect at the next firing.
  void set_period(Tick period) { period_ = period; }
  Tick period() const { return period_; }

  std::uint64_t fire_count() const { return fire_count_; }

 private:
  void Fire() {
    ++fire_count_;
    body_();
    if (running_) {
      event_ = simulator_->ScheduleAfter(period_, [this] { Fire(); });
    }
  }

  Simulator* simulator_;
  Tick period_;
  std::function<void()> body_;
  EventId event_ = 0;
  bool running_ = true;
  std::uint64_t fire_count_ = 0;
};

}  // namespace sim
}  // namespace mrm

#endif  // MRMSIM_SRC_SIM_PERIODIC_TASK_H_
