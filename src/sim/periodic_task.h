// A self-rescheduling periodic callback (refresh engines, scrubbers, pollers).
//
// Ownership (DESIGN.md §12): a PeriodicTask schedules exclusively on the
// Simulator it was constructed with, so it inherits that simulator's context
// — the thread holding the simulator's exec role (hub for the executive, the
// lane's epoch worker for a lane sub-simulator).

#ifndef MRMSIM_SRC_SIM_PERIODIC_TASK_H_
#define MRMSIM_SRC_SIM_PERIODIC_TASK_H_

#include <functional>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/simulator.h"

namespace mrm {
namespace sim {

class PeriodicTask {
 public:
  // `body` runs every `period` ticks starting at now+phase. The task holds a
  // pointer to the simulator, which must outlive it.
  PeriodicTask(Simulator* simulator, Tick period, std::function<void()> body, Tick phase = 0)
      : simulator_(simulator), period_(period), body_(std::move(body)) {
    event_ = simulator_->ScheduleAfter(phase == 0 ? period_ : phase, [this] { Fire(); });
  }

  ~PeriodicTask() { Stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void Stop() {
    if (running_) {
      simulator_->Cancel(event_);
      running_ = false;
    }
  }

  // Changes the period; takes effect at the next firing.
  void set_period(Tick period) { period_ = period; }
  Tick period() const { return period_; }

  std::uint64_t fire_count() const { return fire_count_; }

  // Durable checkpoint of the task's schedule (DESIGN.md §13): the next
  // firing's absolute tick and saved sequence number, plus the counters. On
  // restore the task re-creates its own event via ScheduleRestored, so the
  // restored queue pops it at exactly the saved (when, sequence) position.
  struct SavedState {
    Tick next_fire = kTickNever;
    std::uint64_t sequence = 0;
    Tick period = 0;
    std::uint64_t fire_count = 0;
    bool running = true;
  };

  void SaveState(SavedState* out) const {
    out->period = period_;
    out->fire_count = fire_count_;
    out->running = running_;
    out->next_fire = kTickNever;
    out->sequence = 0;
    if (running_) {
      MRM_CHECK(simulator_->LookupEvent(event_, &out->next_fire, &out->sequence))
          << "PeriodicTask::SaveState: running task has no live event";
    }
  }

  // Precondition: the simulator's queue was cleared by RestoreExecution (the
  // constructor-scheduled firing is dead), so re-pushing cannot double-fire.
  void RestoreState(const SavedState& saved) {
    period_ = saved.period;
    fire_count_ = saved.fire_count;
    running_ = saved.running;
    if (running_) {
      event_ = simulator_->ScheduleRestored(saved.next_fire, saved.sequence, [this] { Fire(); });
    }
  }

 private:
  void Fire() {
    ++fire_count_;
    body_();
    if (running_) {
      event_ = simulator_->ScheduleAfter(period_, [this] { Fire(); });
    }
  }

  Simulator* simulator_;
  Tick period_;
  // snapshot-exempt(callback wiring; re-bound by the constructor, not data)
  std::function<void()> body_;
  EventId event_ = 0;
  bool running_ = true;
  std::uint64_t fire_count_ = 0;
};

}  // namespace sim
}  // namespace mrm

#endif  // MRMSIM_SRC_SIM_PERIODIC_TASK_H_
