#include "src/sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/sim/parallel_executor.h"

namespace mrm {
namespace sim {

Simulator::Simulator(double ticks_per_second) : ticks_per_second_(ticks_per_second) {
  MRM_CHECK(ticks_per_second > 0.0);
}

Simulator::~Simulator() = default;

Tick Simulator::SecondsToTicks(double seconds) const {
  MRM_CHECK(seconds >= 0.0);
  return static_cast<Tick>(std::llround(seconds * ticks_per_second_));
}

double Simulator::TicksToSeconds(Tick ticks) const {
  return static_cast<double>(ticks) / ticks_per_second_;
}

EventId Simulator::ScheduleAt(Tick when, EventCallback callback) {
  exec_role_.Held();
  if (when < now_) {
    when = now_;
  }
  return queue_.Push(when, std::move(callback));
}

EventId Simulator::ScheduleAfter(Tick delay, EventCallback callback) {
  exec_role_.Held();
  return queue_.Push(now_ + delay, std::move(callback));
}

EventId Simulator::Retime(EventId id, Tick when) {
  exec_role_.Held();
  if (when < now_) {
    when = now_;
  }
  return queue_.Retime(id, when);
}

void Simulator::AdvanceTo(Tick when) {
  exec_role_.Held();
  MRM_CHECK(when >= now_);
  now_ = when;
}

void Simulator::RegisterEpochDomain(EpochDomain* domain) {
  exec_role_.Held();
  MRM_CHECK(domain != nullptr);
  domains_.push_back(domain);
}

void Simulator::UnregisterEpochDomain(EpochDomain* domain) {
  exec_role_.Held();
  domains_.erase(std::remove(domains_.begin(), domains_.end(), domain), domains_.end());
}

void Simulator::SetWorkerThreads(int threads) {
  // Reconfigures the executive's scheduling state: an epoch-executive-context
  // operation, performed while no epoch is in flight.
  tsa::hub_role.Held();
  if (threads < 1) {
    threads = 1;
  }
  if (threads == worker_threads_) {
    return;
  }
  worker_threads_ = threads;
  executor_.reset();
  if (threads > 1) {
    executor_ = std::make_unique<ParallelExecutor>(threads);
    if (spins_per_yield_ > 0) {
      executor_->SetSpinsPerYield(spins_per_yield_);
    }
  }
  // The lane->participant plan is meaningless for a different pool size;
  // forget the scheduling state so it re-derives from a clean static stride.
  sched_.lane_cost.clear();
  sched_.lane_owner.clear();
  lane_cost_est_.clear();
  plan_order_.clear();
  plan_starts_.clear();
  epochs_since_rebalance_ = 0;
}

void Simulator::SetEpochBatch(int batch) {
  MRM_CHECK(batch >= 0);
  epoch_batch_ = batch;
}

void Simulator::SetSpinsPerYield(int spins) {
  spins_per_yield_ = spins < 1 ? 1 : spins;
  if (executor_ != nullptr) {
    executor_->SetSpinsPerYield(spins_per_yield_);
  }
}

void Simulator::SaveState(SavedState* out) const {
  exec_role_.HeldShared();
  out->now = now_;
  out->events_executed = events_executed_;
  queue_.SaveState(&out->queue);
}

void Simulator::RestoreState(const SavedState& saved) {
  exec_role_.Held();
  MRM_CHECK(saved.now <= now_) << "RestoreState only rewinds: saved clock " << saved.now
                               << " is ahead of now " << now_;
  now_ = saved.now;
  events_executed_ = saved.events_executed;
  queue_.RestoreState(saved.queue);
}

void Simulator::RestoreExecution(Tick now, std::uint64_t events_executed,
                                 std::uint64_t next_sequence) {
  exec_role_.Held();
  // Applying an empty SavedState bumps every slot generation: all pending
  // events — including any a fresh process's constructors pre-scheduled —
  // are dead, and every outstanding EventId is invalidated.
  static const EventQueue::SavedState kEmpty;
  queue_.RestoreState(kEmpty);
  queue_.SetNextSequence(next_sequence);
  now_ = now;
  events_executed_ = events_executed;
}

EventId Simulator::ScheduleRestored(Tick when, std::uint64_t sequence, EventCallback callback) {
  exec_role_.Held();
  MRM_CHECK(when >= now_) << "ScheduleRestored: saved event tick " << when
                          << " precedes the restored clock " << now_;
  return queue_.PushWithSequence(when, sequence, std::move(callback));
}

bool Simulator::Step() {
  exec_role_.Held();
  const Tick next = queue_.NextTime();
  if (next == kTickNever) {
    return false;
  }
  now_ = next;
  queue_.ExecuteTop();
  ++events_executed_;
  return true;
}

std::uint64_t Simulator::Run() { return RunUntil(kTickNever); }

std::uint64_t Simulator::RunUntil(Tick deadline) {
  exec_role_.Held();
  return domains_.empty() ? RunClassic(deadline) : RunEpochs(deadline);
}

std::uint64_t Simulator::RunClassic(Tick deadline) {
  stop_requested_ = false;
  std::uint64_t executed = 0;
  while (!stop_requested_) {
    const Tick next = queue_.NextTime();
    if (next == kTickNever) {
      break;
    }
    if (next > deadline) {
      now_ = deadline;
      break;
    }
    now_ = next;
    // Invokes the callback in place: no per-event callback move or copy.
    queue_.ExecuteTop();
    ++events_executed_;
    ++executed;
  }
  return executed;
}

void Simulator::EnsureSchedSlots() {
  const std::size_t n = lane_tasks_.size();
  if (sched_.lane_cost.size() == n) {
    return;
  }
  sched_.lane_cost.assign(n, 0);
  lane_cost_est_.assign(n, 0);
  // Until the first rebalance the executor partitions by static stride;
  // mirror that in the owner telemetry.
  sched_.lane_owner.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    sched_.lane_owner[i] = static_cast<int>(i) % worker_threads_;
  }
  plan_order_.clear();
  plan_starts_.clear();
  epochs_since_rebalance_ = 0;
}

void Simulator::MaybeRebalance() {
  const std::size_t n = lane_tasks_.size();
  if (executor_ == nullptr || n <= 1 || epochs_since_rebalance_ < kRebalanceEpochs) {
    return;
  }
  epochs_since_rebalance_ = 0;
  std::uint64_t total = 0;
  for (std::uint64_t est : lane_cost_est_) {
    total += est;
  }
  // Engage one participant per kMinEstPerParticipant of decayed work: on a
  // lightly loaded system packing every lane onto the caller skips the
  // barrier entirely, which beats any parallel split of sub-microsecond
  // epochs.
  int bins = std::min(worker_threads_, static_cast<int>(n));
  const std::uint64_t justified = total / kMinEstPerParticipant + 1;
  if (static_cast<std::uint64_t>(bins) > justified) {
    bins = static_cast<int>(justified);
  }
  // LPT: heaviest lane first into the least-loaded bin. Ties break on lane
  // index / bin index, so the plan is a pure function of the estimates.
  lpt_order_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    lpt_order_[i] = static_cast<int>(i);
  }
  // Bound once outside the comparator: clang analyzes lambda bodies as
  // separate functions, so they would need their own context claim to read
  // the guarded estimate vector directly.
  const std::vector<std::uint64_t>& est = lane_cost_est_;
  std::sort(lpt_order_.begin(), lpt_order_.end(), [&est](int a, int b) {
    const std::uint64_t ca = est[static_cast<std::size_t>(a)];
    const std::uint64_t cb = est[static_cast<std::size_t>(b)];
    return ca != cb ? ca > cb : a < b;
  });
  lpt_bin_load_.assign(static_cast<std::size_t>(bins), 0);
  std::vector<std::vector<int>> bin_lanes(static_cast<std::size_t>(bins));
  for (int lane : lpt_order_) {
    std::size_t best = 0;
    for (std::size_t b = 1; b < lpt_bin_load_.size(); ++b) {
      if (lpt_bin_load_[b] < lpt_bin_load_[best]) {
        best = b;
      }
    }
    lpt_bin_load_[best] += lane_cost_est_[static_cast<std::size_t>(lane)];
    bin_lanes[best].push_back(lane);
  }
  // Flatten, dropping bins every lane with zero estimate skipped: an engaged
  // participant with an empty range would still pay the round handshake.
  std::vector<int> order;
  std::vector<int> starts;
  order.reserve(n);
  starts.push_back(0);
  for (std::vector<int>& lanes : bin_lanes) {
    if (lanes.empty()) {
      continue;
    }
    std::sort(lanes.begin(), lanes.end());
    order.insert(order.end(), lanes.begin(), lanes.end());
    starts.push_back(static_cast<int>(order.size()));
  }
  if (order == plan_order_ && starts == plan_starts_) {
    return;
  }
  for (std::size_t p = 0; p + 1 < starts.size(); ++p) {
    for (int i = starts[p]; i < starts[p + 1]; ++i) {
      sched_.lane_owner[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
          static_cast<int>(p);
    }
  }
  plan_order_ = order;
  plan_starts_ = starts;
  ++sched_.rebalances;
  executor_->SetPlan(std::move(order), std::move(starts));
}

// The epoch driver. Each iteration either processes exactly one hub-side
// item (a completion record or a hub event, whichever is earliest, records
// first on ties) or — when every lane's earliest work strictly precedes any
// possible hub-side activity — runs one epoch: all lanes advance to a
// horizon no cross-lane effect can penetrate, in parallel when a worker pool
// is configured. Everything the schedule depends on (next-times, the
// horizon, record order) is derived from simulation state alone, so the
// execution is bit-identical for any worker count.
//
// Epoch batching: after an epoch seals, the driver re-derives what the next
// iteration of the outer loop would do. If — and only if — that would again
// be a pure epoch AND no domain holds a pending completion record, the next
// epoch's horizons are installed and the lanes run again under the same
// worker-pool dispatch, up to the batch limit. Any other case (pending
// record, hub event due, deadline, drained) falls back to the outer loop,
// which handles it exactly as it would have at batch limit 1. The batch
// decision reads only simulation state, so the epoch/hub-step schedule is
// identical for every batch limit; only the fork/join count changes.
std::uint64_t Simulator::RunEpochs(Tick deadline) {
  // This function IS the serial hub context: between dispatches it is the
  // only thread alive in the simulation, and during a dispatch it is the
  // serial side of the barrier.
  tsa::hub_role.Held();
  stop_requested_ = false;
  std::uint64_t executed = 0;
  const std::function<void(int)> run_lane = [this](int i) {
    LaneTask& task = lane_tasks_[static_cast<std::size_t>(i)];
    task.executed = task.domain->RunLaneSpeculative(task.lane, task.horizon, task.spec_horizon);
  };
  // Speculative horizon: H extended by the configured window, still capped at
  // the deadline so committed-at-deadline state matches the conservative run.
  const auto spec_horizon_for = [this, deadline](Tick horizon) {
    return spec_window_ == 0 ? horizon
                             : std::min(TickAdd(horizon, spec_window_), TickAdd(deadline, 1));
  };
  const int batch_limit = ResolvedEpochBatch();
  MRM_CHECK(batch_limit >= 1);
  while (!stop_requested_) {
    const Tick hub_next = queue_.NextTime();
    Tick record_next = kTickNever;
    Tick work_next = kTickNever;
    for (EpochDomain* domain : domains_) {
      record_next = std::min(record_next, domain->NextRecordTime());
      work_next = std::min(work_next, domain->NextWorkTime());
    }
    const Tick hub_activity = std::min(hub_next, record_next);
    const Tick t = std::min(hub_activity, work_next);
    if (t == kTickNever) {
      break;
    }
    if (t > deadline) {
      now_ = deadline;
      break;
    }
    if (hub_activity <= work_next) {
      // Serial hub step at `hub_activity`.
      now_ = hub_activity;
      if (record_next <= hub_next) {
        for (EpochDomain* domain : domains_) {
          if (domain->NextRecordTime() == record_next) {
            domain->ProcessOneRecord();
            break;
          }
        }
      } else {
        queue_.ExecuteTop();
      }
      ++events_executed_;
      ++executed;
      ++sched_.hub_steps;
      continue;
    }
    // Epoch: lanes hold all activity in [work_next, bound). New work can
    // only enter a lane ArrivalDelay() after the earliest hub-side activity,
    // which itself cannot precede `bound`.
    Tick bound = hub_activity;
    for (EpochDomain* domain : domains_) {
      bound = std::min(bound, domain->EarliestCompletionEffect(work_next));
    }
    MRM_CHECK(bound > work_next);
    lane_tasks_.clear();
    for (EpochDomain* domain : domains_) {
      const Tick horizon = std::min(TickAdd(bound, domain->ArrivalDelay()), TickAdd(deadline, 1));
      const Tick spec_horizon = spec_horizon_for(horizon);
      const int lanes = domain->LaneCount();
      for (int lane = 0; lane < lanes; ++lane) {
        lane_tasks_.push_back({domain, lane, horizon, spec_horizon, 0});
      }
    }
    EnsureSchedSlots();
    MaybeRebalance();
    int rounds_left = batch_limit;
    // Seals the epoch a round just ran, then decides whether the next epoch
    // may run back-to-back in the same dispatch. Runs serially on the
    // dispatching thread between rounds.
    const auto after_round = [&]() -> bool {
      // Runs serially on the dispatching thread between rounds, with every
      // engaged worker parked at the round spin: hub context.
      exec_role_.Held();
      tsa::hub_role.Held();
      for (std::size_t i = 0; i < lane_tasks_.size(); ++i) {
        const std::uint64_t cost = lane_tasks_[i].executed;
        events_executed_ += cost;
        executed += cost;
        sched_.lane_cost[i] += cost;
        lane_cost_est_[i] += cost - (lane_cost_est_[i] >> kCostDecayShift);
      }
      for (EpochDomain* domain : domains_) {
        domain->SealEpoch();
      }
      ++sched_.epochs;
      ++epochs_since_rebalance_;
      if (spec_window_ != 0 && !lane_tasks_.empty() &&
          lane_tasks_.front().spec_horizon > lane_tasks_.front().horizon) {
        ++sched_.spec_epochs;
      }
      if (--rounds_left <= 0 || stop_requested_) {
        return false;
      }
      // Safety guard: a pending completion record may bound the next horizon
      // (the outer loop folds NextRecordTime() into it); the batch path does
      // not look at record times, so it must not run while any record is
      // pending. This is what keeps batching schedule-identical to K=1.
      bool pending = false;
      for (EpochDomain* domain : domains_) {
        pending = pending || domain->HasPendingRecords();
      }
      if (pending && !test_ignore_batch_guard_) {
        ++sched_.batch_guard_stops;
        return false;
      }
      const Tick next_hub = queue_.NextTime();
      Tick next_work = kTickNever;
      for (EpochDomain* domain : domains_) {
        next_work = std::min(next_work, domain->NextWorkTime());
      }
      if (std::min(next_hub, next_work) == kTickNever ||
          std::min(next_hub, next_work) > deadline || next_hub <= next_work) {
        return false;  // drained, deadline, or a hub event is due first
      }
      Tick next_bound = next_hub;
      for (EpochDomain* domain : domains_) {
        next_bound = std::min(next_bound, domain->EarliestCompletionEffect(next_work));
      }
      MRM_CHECK(next_bound > next_work);
      for (LaneTask& task : lane_tasks_) {
        task.horizon =
            std::min(TickAdd(next_bound, task.domain->ArrivalDelay()), TickAdd(deadline, 1));
        task.spec_horizon = spec_horizon_for(task.horizon);
        task.executed = 0;
      }
      return true;
    };
    ++sched_.dispatches;
    if (executor_ != nullptr && lane_tasks_.size() > 1) {
      executor_->RunRounds(static_cast<int>(lane_tasks_.size()), run_lane, after_round);
    } else {
      bool more;
      do {
        for (std::size_t i = 0; i < lane_tasks_.size(); ++i) {
          run_lane(static_cast<int>(i));
        }
        more = after_round();
      } while (more);
    }
  }
  // Resolve any still-speculating lane. Drain/deadline exits commit: every
  // cross-shard cause below the speculated spans has been processed, so no
  // conflicting arrival can ever land inside them. A stop exit rolls back:
  // the caller resumes later and may still route work into a lane's
  // speculated past.
  for (EpochDomain* domain : domains_) {
    domain->FinishSpeculation(/*commit=*/!stop_requested_);
  }
  return executed;
}

}  // namespace sim
}  // namespace mrm
