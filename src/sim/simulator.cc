#include "src/sim/simulator.h"

#include <cmath>

#include "src/common/logging.h"

namespace mrm {
namespace sim {

Simulator::Simulator(double ticks_per_second) : ticks_per_second_(ticks_per_second) {
  MRM_CHECK(ticks_per_second > 0.0);
}

Tick Simulator::SecondsToTicks(double seconds) const {
  MRM_CHECK(seconds >= 0.0);
  return static_cast<Tick>(std::llround(seconds * ticks_per_second_));
}

double Simulator::TicksToSeconds(Tick ticks) const {
  return static_cast<double>(ticks) / ticks_per_second_;
}

EventId Simulator::ScheduleAt(Tick when, EventCallback callback) {
  if (when < now_) {
    when = now_;
  }
  return queue_.Push(when, std::move(callback));
}

EventId Simulator::ScheduleAfter(Tick delay, EventCallback callback) {
  return queue_.Push(now_ + delay, std::move(callback));
}

EventId Simulator::Retime(EventId id, Tick when) {
  if (when < now_) {
    when = now_;
  }
  return queue_.Retime(id, when);
}

bool Simulator::Step() {
  const Tick next = queue_.NextTime();
  if (next == kTickNever) {
    return false;
  }
  now_ = next;
  queue_.ExecuteTop();
  ++events_executed_;
  return true;
}

std::uint64_t Simulator::Run() { return RunUntil(kTickNever); }

std::uint64_t Simulator::RunUntil(Tick deadline) {
  stop_requested_ = false;
  std::uint64_t executed = 0;
  while (!stop_requested_) {
    const Tick next = queue_.NextTime();
    if (next == kTickNever) {
      break;
    }
    if (next > deadline) {
      now_ = deadline;
      break;
    }
    now_ = next;
    // Invokes the callback in place: no per-event callback move or copy.
    queue_.ExecuteTop();
    ++events_executed_;
    ++executed;
  }
  return executed;
}

}  // namespace sim
}  // namespace mrm
