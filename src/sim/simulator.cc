#include "src/sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/sim/parallel_executor.h"

namespace mrm {
namespace sim {

Simulator::Simulator(double ticks_per_second) : ticks_per_second_(ticks_per_second) {
  MRM_CHECK(ticks_per_second > 0.0);
}

Simulator::~Simulator() = default;

Tick Simulator::SecondsToTicks(double seconds) const {
  MRM_CHECK(seconds >= 0.0);
  return static_cast<Tick>(std::llround(seconds * ticks_per_second_));
}

double Simulator::TicksToSeconds(Tick ticks) const {
  return static_cast<double>(ticks) / ticks_per_second_;
}

EventId Simulator::ScheduleAt(Tick when, EventCallback callback) {
  if (when < now_) {
    when = now_;
  }
  return queue_.Push(when, std::move(callback));
}

EventId Simulator::ScheduleAfter(Tick delay, EventCallback callback) {
  return queue_.Push(now_ + delay, std::move(callback));
}

EventId Simulator::Retime(EventId id, Tick when) {
  if (when < now_) {
    when = now_;
  }
  return queue_.Retime(id, when);
}

void Simulator::AdvanceTo(Tick when) {
  MRM_CHECK(when >= now_);
  now_ = when;
}

void Simulator::RegisterEpochDomain(EpochDomain* domain) {
  MRM_CHECK(domain != nullptr);
  domains_.push_back(domain);
}

void Simulator::UnregisterEpochDomain(EpochDomain* domain) {
  domains_.erase(std::remove(domains_.begin(), domains_.end(), domain), domains_.end());
}

void Simulator::SetWorkerThreads(int threads) {
  if (threads < 1) {
    threads = 1;
  }
  if (threads == worker_threads_) {
    return;
  }
  worker_threads_ = threads;
  executor_.reset();
  if (threads > 1) {
    executor_ = std::make_unique<ParallelExecutor>(threads);
  }
}

bool Simulator::Step() {
  const Tick next = queue_.NextTime();
  if (next == kTickNever) {
    return false;
  }
  now_ = next;
  queue_.ExecuteTop();
  ++events_executed_;
  return true;
}

std::uint64_t Simulator::Run() { return RunUntil(kTickNever); }

std::uint64_t Simulator::RunUntil(Tick deadline) {
  return domains_.empty() ? RunClassic(deadline) : RunEpochs(deadline);
}

std::uint64_t Simulator::RunClassic(Tick deadline) {
  stop_requested_ = false;
  std::uint64_t executed = 0;
  while (!stop_requested_) {
    const Tick next = queue_.NextTime();
    if (next == kTickNever) {
      break;
    }
    if (next > deadline) {
      now_ = deadline;
      break;
    }
    now_ = next;
    // Invokes the callback in place: no per-event callback move or copy.
    queue_.ExecuteTop();
    ++events_executed_;
    ++executed;
  }
  return executed;
}

// The epoch driver. Each iteration either processes exactly one hub-side
// item (a completion record or a hub event, whichever is earliest, records
// first on ties) or — when every lane's earliest work strictly precedes any
// possible hub-side activity — runs one epoch: all lanes advance to a
// horizon no cross-lane effect can penetrate, in parallel when a worker pool
// is configured. Everything the schedule depends on (next-times, the
// horizon, record order) is derived from simulation state alone, so the
// execution is bit-identical for any worker count.
std::uint64_t Simulator::RunEpochs(Tick deadline) {
  stop_requested_ = false;
  std::uint64_t executed = 0;
  const std::function<void(int)> run_lane = [this](int i) {
    LaneTask& task = lane_tasks_[static_cast<std::size_t>(i)];
    task.executed = task.domain->RunLane(task.lane, task.horizon);
  };
  while (!stop_requested_) {
    const Tick hub_next = queue_.NextTime();
    Tick record_next = kTickNever;
    Tick work_next = kTickNever;
    for (EpochDomain* domain : domains_) {
      record_next = std::min(record_next, domain->NextRecordTime());
      work_next = std::min(work_next, domain->NextWorkTime());
    }
    const Tick hub_activity = std::min(hub_next, record_next);
    const Tick t = std::min(hub_activity, work_next);
    if (t == kTickNever) {
      break;
    }
    if (t > deadline) {
      now_ = deadline;
      break;
    }
    if (hub_activity <= work_next) {
      // Serial hub step at `hub_activity`.
      now_ = hub_activity;
      if (record_next <= hub_next) {
        for (EpochDomain* domain : domains_) {
          if (domain->NextRecordTime() == record_next) {
            domain->ProcessOneRecord();
            break;
          }
        }
      } else {
        queue_.ExecuteTop();
      }
      ++events_executed_;
      ++executed;
      continue;
    }
    // Epoch: lanes hold all activity in [work_next, bound). New work can
    // only enter a lane ArrivalDelay() after the earliest hub-side activity,
    // which itself cannot precede `bound`.
    Tick bound = hub_activity;
    for (EpochDomain* domain : domains_) {
      bound = std::min(bound, domain->EarliestCompletionEffect(work_next));
    }
    MRM_CHECK(bound > work_next);
    lane_tasks_.clear();
    for (EpochDomain* domain : domains_) {
      const Tick horizon = std::min(TickAdd(bound, domain->ArrivalDelay()), TickAdd(deadline, 1));
      const int lanes = domain->LaneCount();
      for (int lane = 0; lane < lanes; ++lane) {
        lane_tasks_.push_back({domain, lane, horizon, 0});
      }
    }
    if (executor_ != nullptr && lane_tasks_.size() > 1) {
      executor_->Run(static_cast<int>(lane_tasks_.size()), run_lane);
    } else {
      for (std::size_t i = 0; i < lane_tasks_.size(); ++i) {
        run_lane(static_cast<int>(i));
      }
    }
    for (const LaneTask& task : lane_tasks_) {
      events_executed_ += task.executed;
      executed += task.executed;
    }
    for (EpochDomain* domain : domains_) {
      domain->SealEpoch();
    }
  }
  return executed;
}

}  // namespace sim
}  // namespace mrm
