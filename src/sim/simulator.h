// The simulation executive: owns the clock and the event queue.
//
// Components schedule callbacks at absolute ticks or relative delays. The
// executive runs events in timestamp order until the queue drains, a
// deadline passes, or Stop() is called from within a callback.
//
// When an EpochDomain is registered (a MemorySystem does this on
// construction), Run()/RunUntil() switch to the epoch driver: the domain's
// lanes execute in conservative, epoch-synchronized batches — optionally on
// a worker pool (SetWorkerThreads) — while hub events and completion records
// are processed serially in a fixed total order. The schedule is derived
// only from simulation state, never from thread timing, so results are
// bit-identical for any worker count. See DESIGN.md §8.

#ifndef MRMSIM_SRC_SIM_SIMULATOR_H_
#define MRMSIM_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/epoch_domain.h"
#include "src/sim/event_queue.h"

namespace mrm {
namespace sim {

class ParallelExecutor;

// Saturating tick addition: kTickNever stays kTickNever.
inline Tick TickAdd(Tick a, Tick b) { return a >= kTickNever - b ? kTickNever : a + b; }

class Simulator {
 public:
  // ticks_per_second fixes the wall-time meaning of a tick. The default
  // (1 GHz) gives 1 ns ticks, a convenient controller-clock granularity.
  explicit Simulator(double ticks_per_second = 1e9);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Tick now() const { return now_; }
  double now_seconds() const { return static_cast<double>(now_) / ticks_per_second_; }
  double ticks_per_second() const { return ticks_per_second_; }

  Tick SecondsToTicks(double seconds) const;
  double TicksToSeconds(Tick ticks) const;

  // Schedules `callback` at absolute tick `when` (clamped to now()).
  EventId ScheduleAt(Tick when, EventCallback callback);

  // Schedules `callback` after `delay` ticks.
  EventId ScheduleAfter(Tick delay, EventCallback callback);

  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Moves a pending event to absolute tick `when` (clamped to now()) without
  // touching its callback; cheaper than Cancel + ScheduleAt. Returns the new
  // id, or kInvalidEventId when `id` is no longer live.
  EventId Retime(EventId id, Tick when);

  // Runs until the queue is empty. Returns the number of events executed.
  std::uint64_t Run();

  // Runs until the queue is empty or the next event is later than
  // `deadline`. Time ends at min(deadline, last event time).
  std::uint64_t RunUntil(Tick deadline);

  // Executes exactly one event if present; returns whether one ran. Does not
  // advance registered epoch domains — use Run()/RunUntil() when a
  // MemorySystem is attached.
  bool Step();

  // Requests that Run()/RunUntil() return after the current event (or, in
  // epoch mode, after the current epoch).
  void Stop() { stop_requested_ = true; }

  // Timestamp of the next pending event; kTickNever when the queue is empty.
  Tick NextEventTime() { return queue_.NextTime(); }

  // Executes the event NextEventTime() just peeked (its timestamp, `when`,
  // must be that return value). Skips the redundant second queue probe a
  // NextEventTime() + Step() pair would pay — the epoch driver's lane loop
  // peeks every iteration to merge arrivals with events in tick order.
  void ExecutePeeked(Tick when) {
    now_ = when;
    queue_.ExecuteTop();
    ++events_executed_;
  }

  // Moves the clock forward to `when` without executing anything. Used by
  // epoch domains to position a lane clock at an arrival's tick before
  // admitting it; `when` must be >= now().
  void AdvanceTo(Tick when);

  // Attaches a domain whose lanes the epoch driver advances alongside the
  // event queue. Registration order is the tie-break between domains.
  void RegisterEpochDomain(EpochDomain* domain);
  void UnregisterEpochDomain(EpochDomain* domain);

  // Sets the worker-pool size used to run domain lanes within an epoch
  // (counting the calling thread; <= 1 means serial, the default). Purely a
  // performance knob: simulation results are identical for any value.
  void SetWorkerThreads(int threads);
  int worker_threads() const { return worker_threads_; }

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  struct LaneTask {
    EpochDomain* domain;
    int lane;
    Tick horizon;
    std::uint64_t executed;
  };

  std::uint64_t RunClassic(Tick deadline);
  std::uint64_t RunEpochs(Tick deadline);

  EventQueue queue_;
  Tick now_ = 0;
  double ticks_per_second_;
  bool stop_requested_ = false;
  std::uint64_t events_executed_ = 0;
  std::vector<EpochDomain*> domains_;
  std::vector<LaneTask> lane_tasks_;  // reused across epochs
  std::unique_ptr<ParallelExecutor> executor_;
  int worker_threads_ = 1;
};

}  // namespace sim
}  // namespace mrm

#endif  // MRMSIM_SRC_SIM_SIMULATOR_H_
