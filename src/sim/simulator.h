// The simulation executive: owns the clock and the event queue.
//
// Components schedule callbacks at absolute ticks or relative delays. The
// executive runs events in timestamp order until the queue drains, a
// deadline passes, or Stop() is called from within a callback.
//
// When an EpochDomain is registered (a MemorySystem does this on
// construction), Run()/RunUntil() switch to the epoch driver: the domain's
// lanes execute in conservative, epoch-synchronized batches — optionally on
// a worker pool (SetWorkerThreads) — while hub events and completion records
// are processed serially in a fixed total order. The schedule is derived
// only from simulation state, never from thread timing, so results are
// bit-identical for any worker count. See DESIGN.md §8.
//
// Two schedule-preserving optimizations ride on top (DESIGN.md §8, "Lane
// scheduling & epoch batching"):
//
//   * Measured-cost lane rebalancing. The driver keeps a decayed per-lane
//     cost estimate fed by the lane's executed-event counts (a deterministic
//     quantity — never wall time) and periodically repartitions the
//     lane->thread assignment by greedy LPT bin-packing, engaging only as
//     many pool participants as the measured work justifies. The plan
//     changes who runs a lane, never what or when, so results are unchanged.
//
//   * Epoch batching. When an epoch seals with no pending cross-shard
//     effects anywhere and the next driver action would again be a pure
//     epoch, the next epoch starts back-to-back under the same worker-pool
//     dispatch (up to SetEpochBatch epochs per fork/join). The guard is a
//     pure function of simulation state, so the epoch schedule — and hence
//     every statistic — is bit-identical for any batch limit.

#ifndef MRMSIM_SRC_SIM_SIMULATOR_H_
#define MRMSIM_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/thread_annotations.h"
#include "src/sim/epoch_domain.h"
#include "src/sim/event_queue.h"

namespace mrm {
namespace sim {

class ParallelExecutor;

// Saturating tick addition: kTickNever stays kTickNever.
inline Tick TickAdd(Tick a, Tick b) { return a >= kTickNever - b ? kTickNever : a + b; }

// Epoch-driver scheduling telemetry (cumulative per Simulator). Everything
// here derives from executed-event counts and the epoch schedule alone, so
// for a fixed batch limit every field except lane_owner/rebalances is
// bit-identical at any worker-thread count (the schedule is); lane_owner and
// rebalances describe the lane->participant plan, which adapts to the pool
// size by design.
struct EpochSchedStats {
  std::uint64_t epochs = 0;       // lane-execution epochs driven
  std::uint64_t dispatches = 0;   // worker-pool publishes (a K-epoch batch pays one)
  std::uint64_t hub_steps = 0;    // serial record/hub-event steps
  std::uint64_t rebalances = 0;   // lane->participant plan changes installed
  std::uint64_t batch_guard_stops = 0;  // batches cut short by a pending effect
  std::uint64_t spec_epochs = 0;  // epochs whose speculative horizon exceeded H
  std::vector<std::uint64_t> lane_cost;  // cumulative executed events per lane slot
  std::vector<int> lane_owner;           // current participant per lane slot
};

class Simulator {
 public:
  // ticks_per_second fixes the wall-time meaning of a tick. The default
  // (1 GHz) gives 1 ns ticks, a convenient controller-clock granularity.
  explicit Simulator(double ticks_per_second = 1e9);
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Tick now() const {
    exec_role_.HeldShared();
    return now_;
  }
  double now_seconds() const {
    exec_role_.HeldShared();
    return static_cast<double>(now_) / ticks_per_second_;
  }
  double ticks_per_second() const { return ticks_per_second_; }

  Tick SecondsToTicks(double seconds) const;
  double TicksToSeconds(Tick ticks) const;

  // Schedules `callback` at absolute tick `when` (clamped to now()).
  EventId ScheduleAt(Tick when, EventCallback callback);

  // Schedules `callback` after `delay` ticks.
  EventId ScheduleAfter(Tick delay, EventCallback callback);

  bool Cancel(EventId id) {
    exec_role_.Held();
    return queue_.Cancel(id);
  }

  // Moves a pending event to absolute tick `when` (clamped to now()) without
  // touching its callback; cheaper than Cancel + ScheduleAt. Returns the new
  // id, or kInvalidEventId when `id` is no longer live.
  EventId Retime(EventId id, Tick when);

  // Runs until the queue is empty. Returns the number of events executed.
  std::uint64_t Run();

  // Runs until the queue is empty or the next event is later than
  // `deadline`. Time ends at min(deadline, last event time).
  std::uint64_t RunUntil(Tick deadline);

  // Executes exactly one event if present; returns whether one ran. Does not
  // advance registered epoch domains — use Run()/RunUntil() when a
  // MemorySystem is attached.
  bool Step();

  // Requests that Run()/RunUntil() return after the current event (or, in
  // epoch mode, after the current epoch batch). Called from within a
  // callback, i.e. on the thread currently driving this simulator.
  void Stop() {
    exec_role_.Held();
    stop_requested_ = true;
  }

  // Timestamp of the next pending event; kTickNever when the queue is empty.
  Tick NextEventTime() {
    exec_role_.Held();  // peeking may prune cancelled entries
    return queue_.NextTime();
  }

  // Executes the event NextEventTime() just peeked (its timestamp, `when`,
  // must be that return value). Skips the redundant second queue probe a
  // NextEventTime() + Step() pair would pay — the epoch driver's lane loop
  // peeks every iteration to merge arrivals with events in tick order.
  void ExecutePeeked(Tick when) {
    exec_role_.Held();
    now_ = when;
    queue_.ExecuteTop();
    ++events_executed_;
  }

  // Moves the clock forward to `when` without executing anything. Used by
  // epoch domains to position a lane clock at an arrival's tick before
  // admitting it; `when` must be >= now().
  void AdvanceTo(Tick when);

  // Attaches a domain whose lanes the epoch driver advances alongside the
  // event queue. Registration order is the tie-break between domains.
  void RegisterEpochDomain(EpochDomain* domain);
  void UnregisterEpochDomain(EpochDomain* domain);

  // Sets the worker-pool size used to run domain lanes within an epoch
  // (counting the calling thread; <= 1 means serial, the default). Purely a
  // performance knob: simulation results are identical for any value.
  void SetWorkerThreads(int threads);
  int worker_threads() const { return worker_threads_; }

  // Caps how many back-to-back epochs one worker-pool dispatch may drive
  // when no cross-shard effects are pending: 0 (the default) resolves to a
  // built-in limit, 1 disables batching (one epoch per fork/join, the PR-2
  // behavior), K > 1 batches up to K. Purely a performance knob: the batch
  // guard keeps the epoch schedule — and hence all results — bit-identical
  // for any value.
  void SetEpochBatch(int batch);
  int epoch_batch() const { return epoch_batch_; }
  int ResolvedEpochBatch() const { return epoch_batch_ > 0 ? epoch_batch_ : kAutoEpochBatch; }

  // Speculative window past the conservative epoch horizon, in ticks. When
  // non-zero, RunLaneSpeculative offers each lane an extended horizon
  // min(H + window, deadline + 1); eligible lanes run optimistically and the
  // domain rolls them back deterministically when a late cross-shard effect
  // lands inside the speculated span. 0 (the default) disables speculation.
  // Results are bit-identical for any value (DESIGN.md §8).
  void SetSpeculationWindow(Tick window) { spec_window_ = window; }
  Tick speculation_window() const { return spec_window_; }

  // Spin-then-yield budget for the worker pool's barriers (forwarded to
  // ParallelExecutor::SetSpinsPerYield; values < 1 clamp to 1). Takes effect
  // immediately and survives SetWorkerThreads reconfiguration.
  void SetSpinsPerYield(int spins);

  const EpochSchedStats& epoch_sched_stats() const {
    tsa::hub_role.HeldShared();
    return sched_;
  }

  // Snapshot of this simulator's execution state: clock, event count, and
  // every live event (inline callbacks only — MRM_CHECK otherwise). This is
  // the per-lane snapshot primitive behind speculative rollback, surfaced
  // publicly to seed full checkpoint/restore (ROADMAP item 4). EventIds
  // issued before SaveState remain valid after RestoreState; ids issued in
  // between become dead.
  struct SavedState {
    Tick now = 0;
    std::uint64_t events_executed = 0;
    EventQueue::SavedState queue;
  };
  void SaveState(SavedState* out) const;
  void RestoreState(const SavedState& saved);

  // --- durable (cross-process) checkpoint primitives, DESIGN.md §13 ---
  //
  // Callbacks capture raw pointers and cannot cross a process boundary, so a
  // disk restore works differently from the in-memory rollback above: the
  // restored execution state is (clock, executed-event count, next sequence)
  // only, the queue starts empty — killing any events the fresh process's
  // constructors pre-scheduled — and each component re-creates its own
  // pending events with the sequence numbers they held at save time
  // (ScheduleRestored), so the (when, sequence) pop order is bit-identical
  // to the uninterrupted run.

  // Sequence the next Push will stamp; captured in durable snapshots.
  std::uint64_t next_event_sequence() const {
    exec_role_.HeldShared();
    return queue_.next_sequence();
  }

  // Fetches a live event's firing tick and sequence (for saving it). Returns
  // false when the id is stale. O(pending) — checkpoint-path only.
  bool LookupEvent(EventId id, Tick* when, std::uint64_t* sequence) const {
    exec_role_.HeldShared();
    return queue_.Lookup(id, when, sequence);
  }

  // Resets execution state to a saved point: clears the queue (invalidating
  // every outstanding EventId), then installs the saved clock, event count
  // and sequence counter. Components re-create their events afterwards.
  void RestoreExecution(Tick now, std::uint64_t events_executed, std::uint64_t next_sequence);

  // Re-creates a component-owned event at its saved absolute tick and saved
  // sequence. `when` must be >= now() and `sequence` must predate the
  // restored sequence counter.
  EventId ScheduleRestored(Tick when, std::uint64_t sequence, EventCallback callback);

  // Test-only mutation hook: ignore the epoch-batch safety guard so batches
  // run past pending cross-shard effects. Violates causality by design —
  // used to prove the guard is load-bearing (the run must abort).
  void TestOnlyIgnoreBatchGuard(bool ignore) { test_ignore_batch_guard_ = ignore; }

  std::uint64_t events_executed() const {
    exec_role_.HeldShared();
    return events_executed_;
  }
  std::size_t pending_events() const {
    exec_role_.HeldShared();
    return queue_.size();
  }

 private:
  // One lane dispatch slot per epoch. Cache-line-sized: `executed` is
  // written by whichever worker ran the lane, and neighboring slots must not
  // share a line or short-lane workers false-share with long-lane ones.
  struct alignas(64) LaneTask {
    EpochDomain* domain;
    int lane;
    Tick horizon;
    Tick spec_horizon;
    std::uint64_t executed;
  };
  static_assert(sizeof(LaneTask) == 64, "one dispatch slot per cache line");
  static_assert(alignof(LaneTask) == 64, "slots must start on a cache line");

  // Auto-resolved epoch-batch cap: deep enough to amortize the dispatch over
  // command-latency-paced epoch runs, shallow enough that a pending effect
  // is never more than a few microseconds of lane work away.
  static constexpr int kAutoEpochBatch = 16;
  // Epochs between lane->participant repartitions.
  static constexpr std::uint64_t kRebalanceEpochs = 32;
  // Decay shift of the per-lane cost EMA: est += executed - est/8, so the
  // estimate settles near 8x the per-epoch event cost.
  static constexpr int kCostDecayShift = 3;
  // Decayed-cost units that justify engaging one more pool participant
  // (~16 events/epoch at the EMA's 8x scale: roughly the lane work that
  // outweighs one worker's share of the dispatch handshake).
  static constexpr std::uint64_t kMinEstPerParticipant = 128;

  std::uint64_t RunClassic(Tick deadline) MRMSIM_REQUIRES(exec_role_);
  std::uint64_t RunEpochs(Tick deadline) MRMSIM_REQUIRES(exec_role_);
  // Keeps the per-lane scheduling state sized to the current lane set.
  void EnsureSchedSlots() MRMSIM_REQUIRES(::mrm::tsa::hub_role);
  // Recomputes the LPT lane->participant plan from the decayed cost
  // estimates when due; installs it into the executor if it changed. A pure
  // function of deterministic counters and the configured pool size.
  void MaybeRebalance() MRMSIM_REQUIRES(::mrm::tsa::hub_role);

  // The thread currently driving this simulator: the hub thread for the
  // executive instance, the lane's epoch worker for a lane sub-simulator.
  // Ownership moves only through the executor's dispatch barrier; every
  // public mutator claims the role so any new guarded access added without
  // a context claim fails -Werror=thread-safety.
  // snapshot-exempt(phantom capability; no runtime state)
  tsa::ThreadRole exec_role_;

  EventQueue queue_ MRMSIM_GUARDED_BY(exec_role_);
  Tick now_ MRMSIM_GUARDED_BY(exec_role_) = 0;
  // snapshot-exempt(constructor parameter; fixed for the life of the simulator)
  double ticks_per_second_;
  // snapshot-exempt(transient run-loop flag; reset at every Run entry)
  bool stop_requested_ MRMSIM_GUARDED_BY(exec_role_) = false;
  std::uint64_t events_executed_ MRMSIM_GUARDED_BY(exec_role_) = 0;
  // snapshot-exempt(registration state; domains re-register on reattach, raw
  // pointers are not serializable)
  std::vector<EpochDomain*> domains_ MRMSIM_GUARDED_BY(exec_role_);
  // Reused across epochs. Each slot is written by exactly one engaged worker
  // per round (the dispatch plan partitions slots), then read serially
  // between rounds — the same handoff the executor's dispatch capability
  // narrates, so the slots themselves stay unguarded.
  // snapshot-exempt(per-dispatch scratch; rebuilt at every epoch)
  std::vector<LaneTask> lane_tasks_;
  // snapshot-exempt(worker pool; rebuilt from the worker_threads_ knob)
  std::unique_ptr<ParallelExecutor> executor_;
  // snapshot-exempt(performance knob; results are identical for any value)
  int worker_threads_ = 1;
  // snapshot-exempt(performance knob; results are identical for any value)
  int epoch_batch_ = 0;  // 0 = auto
  // snapshot-exempt(performance knob; results are identical for any value)
  Tick spec_window_ = 0;  // 0 = speculation off
  // snapshot-exempt(performance knob; results are identical for any value)
  int spins_per_yield_ = 0;  // 0 = executor default
  // snapshot-exempt(test-only mutation hook, never set outside guard tests)
  bool test_ignore_batch_guard_ = false;
  // snapshot-exempt(scheduling telemetry; observability, not simulation state)
  EpochSchedStats sched_ MRMSIM_EPOCH_BARRIER_ONLY;
  // snapshot-exempt(scheduling heuristic; affects who runs a lane, never results)
  std::vector<std::uint64_t> lane_cost_est_ MRMSIM_EPOCH_BARRIER_ONLY;  // decayed cost EMA
  // snapshot-exempt(scheduling heuristic; affects who runs a lane, never results)
  std::uint64_t epochs_since_rebalance_ MRMSIM_EPOCH_BARRIER_ONLY = 0;
  // Rebalance scratch, reused to keep the steady state allocation-free.
  // snapshot-exempt(rebalance scratch; recomputed before every use)
  std::vector<int> lpt_order_ MRMSIM_EPOCH_BARRIER_ONLY;
  // snapshot-exempt(rebalance scratch; recomputed before every use)
  std::vector<std::uint64_t> lpt_bin_load_ MRMSIM_EPOCH_BARRIER_ONLY;
  // snapshot-exempt(scheduling heuristic; affects who runs a lane, never results)
  std::vector<int> plan_order_ MRMSIM_EPOCH_BARRIER_ONLY;
  // snapshot-exempt(scheduling heuristic; affects who runs a lane, never results)
  std::vector<int> plan_starts_ MRMSIM_EPOCH_BARRIER_ONLY;
};

}  // namespace sim
}  // namespace mrm

#endif  // MRMSIM_SRC_SIM_SIMULATOR_H_
