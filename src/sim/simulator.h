// The simulation executive: owns the clock and the event queue.
//
// Components schedule callbacks at absolute ticks or relative delays. The
// executive runs events in timestamp order until the queue drains, a
// deadline passes, or Stop() is called from within a callback.

#ifndef MRMSIM_SRC_SIM_SIMULATOR_H_
#define MRMSIM_SRC_SIM_SIMULATOR_H_

#include <cstdint>

#include "src/sim/event_queue.h"

namespace mrm {
namespace sim {

class Simulator {
 public:
  // ticks_per_second fixes the wall-time meaning of a tick. The default
  // (1 GHz) gives 1 ns ticks, a convenient controller-clock granularity.
  explicit Simulator(double ticks_per_second = 1e9);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Tick now() const { return now_; }
  double now_seconds() const { return static_cast<double>(now_) / ticks_per_second_; }
  double ticks_per_second() const { return ticks_per_second_; }

  Tick SecondsToTicks(double seconds) const;
  double TicksToSeconds(Tick ticks) const;

  // Schedules `callback` at absolute tick `when` (clamped to now()).
  EventId ScheduleAt(Tick when, EventCallback callback);

  // Schedules `callback` after `delay` ticks.
  EventId ScheduleAfter(Tick delay, EventCallback callback);

  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Moves a pending event to absolute tick `when` (clamped to now()) without
  // touching its callback; cheaper than Cancel + ScheduleAt. Returns the new
  // id, or kInvalidEventId when `id` is no longer live.
  EventId Retime(EventId id, Tick when);

  // Runs until the queue is empty. Returns the number of events executed.
  std::uint64_t Run();

  // Runs until the queue is empty or the next event is later than
  // `deadline`. Time ends at min(deadline, last event time).
  std::uint64_t RunUntil(Tick deadline);

  // Executes exactly one event if present; returns whether one ran.
  bool Step();

  // Requests that Run()/RunUntil() return after the current event.
  void Stop() { stop_requested_ = true; }

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  Tick now_ = 0;
  double ticks_per_second_;
  bool stop_requested_ = false;
  std::uint64_t events_executed_ = 0;
};

}  // namespace sim
}  // namespace mrm

#endif  // MRMSIM_SRC_SIM_SIMULATOR_H_
