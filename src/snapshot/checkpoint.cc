#include "src/snapshot/checkpoint.h"

#include <cstddef>
#include <utility>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/snapshot/codec.h"

namespace mrm {
namespace snapshot {

namespace {

Error Malformed(const char* what, const std::string& why) {
  return Error::Make(ErrorKind::kMalformed, std::string(what) + ": " + why);
}

// Finishes decoding one section: the payload must have parsed cleanly and be
// fully consumed (a CRC-valid payload of the wrong shape is a version-skew
// bug, not corruption, but it is still rejected by name, never applied).
Error FinishSection(const Decoder& dec, const char* what) {
  if (!dec.ok()) {
    return Malformed(what, "payload ends mid-field");
  }
  if (!dec.AtEnd()) {
    return Malformed(what, "trailing bytes after payload");
  }
  return Error::Ok();
}

// Reads a vector length that must equal the configured geometry.
Error GetExactCount(Decoder* dec, const char* what, std::size_t expected, std::size_t* out) {
  const std::uint64_t n = dec->GetU64();
  if (!dec->ok() || n != expected) {
    return Malformed(what, "count " + std::to_string(n) + " does not match the configured " +
                               std::to_string(expected));
  }
  *out = static_cast<std::size_t>(n);
  return Error::Ok();
}

// Reads a free-form vector length, bounded by what the remaining payload
// could possibly hold so a corrupt count cannot trigger a huge allocation.
Error GetBoundedCount(Decoder* dec, const char* what, std::size_t min_entry_bytes,
                      std::size_t* out) {
  const std::uint64_t n = dec->GetU64();
  if (!dec->ok() || n > dec->remaining() / min_entry_bytes) {
    return Malformed(what, "count " + std::to_string(n) + " exceeds the payload");
  }
  *out = static_cast<std::size_t>(n);
  return Error::Ok();
}

// --- Histogram -------------------------------------------------------------

void EncodeHistogram(Encoder* enc, const Histogram& hist) {
  Histogram::SavedState s;
  hist.SaveState(&s);
  enc->PutU64(s.buckets.size());
  for (const std::uint64_t b : s.buckets) {
    enc->PutU64(b);
  }
  enc->PutU64(s.count);
  enc->PutU64(s.underflow);
  enc->PutDouble(s.sum);
  enc->PutDouble(s.min);
  enc->PutDouble(s.max);
}

Error DecodeHistogram(Decoder* dec, const char* what, Histogram* out) {
  constexpr std::size_t kBuckets =
      static_cast<std::size_t>(Histogram::kSubBuckets) * Histogram::kDecades;
  Histogram::SavedState s;
  std::size_t n = 0;
  if (Error err = GetExactCount(dec, what, kBuckets, &n); !err.ok()) {
    return err;
  }
  s.buckets.resize(n);
  for (std::uint64_t& b : s.buckets) {
    b = dec->GetU64();
  }
  s.count = dec->GetU64();
  s.underflow = dec->GetU64();
  s.sum = dec->GetDouble();
  s.min = dec->GetDouble();
  s.max = dec->GetDouble();
  out->RestoreState(s);
  return Error::Ok();
}

// --- Simulator execution cursor -------------------------------------------

void EncodeSimExec(Encoder* enc, const SimExecState& s) {
  enc->PutU64(s.now);
  enc->PutU64(s.events_executed);
  enc->PutU64(s.next_sequence);
}

Error DecodeSimExec(const std::vector<std::uint8_t>& payload, const char* what, SimExecState* out) {
  Decoder dec(payload.data(), payload.size());
  out->now = dec.GetU64();
  out->events_executed = dec.GetU64();
  out->next_sequence = dec.GetU64();
  return FinishSection(dec, what);
}

// --- Fault injector ledger -------------------------------------------------

void EncodeFaultStats(Encoder* enc, const fault::FaultStats& s) {
  enc->PutU64(s.read_rolls);
  enc->PutU64(s.reads_corrected);
  enc->PutU64(s.reads_uncorrectable);
  enc->PutU64(s.reads_silent);
  enc->PutU64(s.stuck_blocks);
  enc->PutU64(s.zone_failures);
  enc->PutU64(s.channel_stalls);
  enc->PutU64(s.dropped_completions);
  enc->PutU64(s.resolutions);
}

Error DecodeFaultStats(const std::vector<std::uint8_t>& payload, fault::FaultStats* out) {
  Decoder dec(payload.data(), payload.size());
  out->read_rolls = dec.GetU64();
  out->reads_corrected = dec.GetU64();
  out->reads_uncorrectable = dec.GetU64();
  out->reads_silent = dec.GetU64();
  out->stuck_blocks = dec.GetU64();
  out->zone_failures = dec.GetU64();
  out->channel_stalls = dec.GetU64();
  out->dropped_completions = dec.GetU64();
  out->resolutions = dec.GetU64();
  return FinishSection(dec, "fault stats");
}

// --- MRM device ------------------------------------------------------------

void EncodeMrmDevice(Encoder* enc, const mrmcore::MrmDevice::SavedState& s) {
  enc->PutU64(s.zones.size());
  for (const auto& zone : s.zones) {
    enc->PutU8(static_cast<std::uint8_t>(zone.state));
    enc->PutU32(zone.write_pointer);
    enc->PutU64(zone.wear_cycles);
    enc->PutBool(zone.failed);
  }
  enc->PutU64(s.blocks.size());
  for (const auto& block : s.blocks) {
    enc->PutBool(block.written);
    enc->PutBool(block.stuck);
    enc->PutDouble(block.written_at_s);
    enc->PutDouble(block.retention_s);
    enc->PutU32(block.wear);
    enc->PutU64(block.read_attempts);
  }
  const auto& st = s.stats;
  enc->PutU64(st.blocks_written);
  enc->PutU64(st.blocks_read);
  enc->PutU64(st.bytes_written);
  enc->PutU64(st.bytes_read);
  enc->PutU64(st.expired_reads);
  enc->PutU64(st.endurance_failures);
  enc->PutU64(st.read_preemptions);
  enc->PutU64(st.decoded_reads);
  enc->PutU64(st.corrected_reads);
  enc->PutU64(st.uncorrectable_reads);
  enc->PutU64(st.silent_corruptions);
  enc->PutU64(st.stuck_blocks);
  enc->PutU64(st.zone_failures);
  enc->PutDouble(st.write_energy_pj);
  enc->PutDouble(st.read_energy_pj);
  enc->PutDouble(st.io_energy_pj);
  EncodeHistogram(enc, st.read_latency_us);
  EncodeHistogram(enc, st.write_latency_us);
}

Error DecodeMrmDevice(const std::vector<std::uint8_t>& payload, std::size_t expected_zones,
                      std::size_t expected_blocks, mrmcore::MrmDevice::SavedState* out) {
  Decoder dec(payload.data(), payload.size());
  std::size_t n = 0;
  if (Error err = GetExactCount(&dec, "device zones", expected_zones, &n); !err.ok()) {
    return err;
  }
  out->zones.resize(n);
  for (auto& zone : out->zones) {
    const std::uint8_t state = dec.GetU8();
    if (state > static_cast<std::uint8_t>(mrmcore::ZoneState::kRetired)) {
      return Malformed("device zones", "zone state " + std::to_string(state) + " out of range");
    }
    zone.state = static_cast<mrmcore::ZoneState>(state);
    zone.write_pointer = dec.GetU32();
    zone.wear_cycles = dec.GetU64();
    zone.failed = dec.GetBool();
  }
  if (Error err = GetExactCount(&dec, "device blocks", expected_blocks, &n); !err.ok()) {
    return err;
  }
  out->blocks.resize(n);
  for (auto& block : out->blocks) {
    block.written = dec.GetBool();
    block.stuck = dec.GetBool();
    block.written_at_s = dec.GetDouble();
    block.retention_s = dec.GetDouble();
    block.wear = dec.GetU32();
    block.read_attempts = dec.GetU64();
  }
  auto& st = out->stats;
  st.blocks_written = dec.GetU64();
  st.blocks_read = dec.GetU64();
  st.bytes_written = dec.GetU64();
  st.bytes_read = dec.GetU64();
  st.expired_reads = dec.GetU64();
  st.endurance_failures = dec.GetU64();
  st.read_preemptions = dec.GetU64();
  st.decoded_reads = dec.GetU64();
  st.corrected_reads = dec.GetU64();
  st.uncorrectable_reads = dec.GetU64();
  st.silent_corruptions = dec.GetU64();
  st.stuck_blocks = dec.GetU64();
  st.zone_failures = dec.GetU64();
  st.write_energy_pj = dec.GetDouble();
  st.read_energy_pj = dec.GetDouble();
  st.io_energy_pj = dec.GetDouble();
  if (Error err = DecodeHistogram(&dec, "device read latency", &st.read_latency_us); !err.ok()) {
    return err;
  }
  if (Error err = DecodeHistogram(&dec, "device write latency", &st.write_latency_us); !err.ok()) {
    return err;
  }
  return FinishSection(dec, "device");
}

// --- Control plane ---------------------------------------------------------

void EncodeControlPlane(Encoder* enc, const mrmcore::ControlPlane::SavedState& s) {
  enc->PutU64(s.map.size());
  for (const auto& entry : s.map) {
    enc->PutU64(entry.id);
    enc->PutU64(entry.tracked.phys);
    enc->PutU32(entry.tracked.zone);
    enc->PutDouble(entry.tracked.expiry_s);
    enc->PutDouble(entry.tracked.deadline_s);
  }
  enc->PutU64(s.deadlines.size());
  for (const auto& entry : s.deadlines) {
    enc->PutDouble(entry.deadline_s);
    enc->PutU64(entry.id);
    enc->PutU64(entry.phys);
  }
  enc->PutU64(s.zone_live.size());
  for (const std::uint32_t v : s.zone_live) {
    enc->PutU32(v);
  }
  enc->PutU64(s.zone_uncorrectable.size());
  for (const std::uint32_t v : s.zone_uncorrectable) {
    enc->PutU32(v);
  }
  enc->PutU32(s.open_zone);
  enc->PutBool(s.has_open_zone);
  enc->PutU64(s.next_id);
  const auto& st = s.stats;
  enc->PutU64(st.appends);
  enc->PutU64(st.scrub_rewrites);
  enc->PutU64(st.scrub_bytes);
  enc->PutU64(st.drops);
  enc->PutU64(st.zones_reclaimed);
  enc->PutU64(st.allocation_failures);
  enc->PutU64(st.read_retries);
  enc->PutU64(st.retry_successes);
  enc->PutU64(st.emergency_scrubs);
  enc->PutU64(st.uncorrectable_drops);
  enc->PutU64(st.zones_retired);
  enc->PutU64(st.blocks_remapped);
  enc->PutU64(st.accounting_errors);
  enc->PutU64(s.scrub.next_fire);
  enc->PutU64(s.scrub.sequence);
  enc->PutU64(s.scrub.period);
  enc->PutU64(s.scrub.fire_count);
  enc->PutBool(s.scrub.running);
}

Error DecodeControlPlane(const std::vector<std::uint8_t>& payload, std::size_t expected_zones,
                         mrmcore::ControlPlane::SavedState* out) {
  Decoder dec(payload.data(), payload.size());
  std::size_t n = 0;
  // id + phys + zone + expiry + deadline.
  if (Error err = GetBoundedCount(&dec, "plane map", 8 + 8 + 4 + 8 + 8, &n); !err.ok()) {
    return err;
  }
  out->map.resize(n);
  for (auto& entry : out->map) {
    entry.id = dec.GetU64();
    entry.tracked.phys = dec.GetU64();
    entry.tracked.zone = dec.GetU32();
    entry.tracked.expiry_s = dec.GetDouble();
    entry.tracked.deadline_s = dec.GetDouble();
  }
  if (Error err = GetBoundedCount(&dec, "plane deadlines", 8 + 8 + 8, &n); !err.ok()) {
    return err;
  }
  out->deadlines.resize(n);
  for (auto& entry : out->deadlines) {
    entry.deadline_s = dec.GetDouble();
    entry.id = dec.GetU64();
    entry.phys = dec.GetU64();
  }
  if (Error err = GetExactCount(&dec, "plane zone live counts", expected_zones, &n); !err.ok()) {
    return err;
  }
  out->zone_live.resize(n);
  for (std::uint32_t& v : out->zone_live) {
    v = dec.GetU32();
  }
  if (Error err = GetExactCount(&dec, "plane zone UE counts", expected_zones, &n); !err.ok()) {
    return err;
  }
  out->zone_uncorrectable.resize(n);
  for (std::uint32_t& v : out->zone_uncorrectable) {
    v = dec.GetU32();
  }
  out->open_zone = dec.GetU32();
  out->has_open_zone = dec.GetBool();
  out->next_id = dec.GetU64();
  auto& st = out->stats;
  st.appends = dec.GetU64();
  st.scrub_rewrites = dec.GetU64();
  st.scrub_bytes = dec.GetU64();
  st.drops = dec.GetU64();
  st.zones_reclaimed = dec.GetU64();
  st.allocation_failures = dec.GetU64();
  st.read_retries = dec.GetU64();
  st.retry_successes = dec.GetU64();
  st.emergency_scrubs = dec.GetU64();
  st.uncorrectable_drops = dec.GetU64();
  st.zones_retired = dec.GetU64();
  st.blocks_remapped = dec.GetU64();
  st.accounting_errors = dec.GetU64();
  out->scrub.next_fire = dec.GetU64();
  out->scrub.sequence = dec.GetU64();
  out->scrub.period = dec.GetU64();
  out->scrub.fire_count = dec.GetU64();
  out->scrub.running = dec.GetBool();
  return FinishSection(dec, "plane");
}

// --- Channel controller / memory system ------------------------------------

void EncodeController(Encoder* enc, const mem::ChannelController::SavedState& s) {
  enc->PutU64(s.banks.size());
  for (const auto& bank : s.banks) {
    enc->PutU8(static_cast<std::uint8_t>(bank.state));
    enc->PutU64(bank.open_row);
    enc->PutU64(bank.next_activate);
    enc->PutU64(bank.next_precharge);
    enc->PutU64(bank.next_read);
    enc->PutU64(bank.next_write);
  }
  enc->PutU64(s.ranks.size());
  for (const auto& rank : s.ranks) {
    enc->PutU64(rank.next_act);
    for (const sim::Tick act : rank.recent_acts) {
      enc->PutU64(act);
    }
    enc->PutU8(rank.act_count);
    enc->PutU8(rank.act_pos);
    enc->PutU64(rank.next_refresh_due);
    enc->PutBool(rank.refresh_pending);
  }
  enc->PutU64(s.bus_free);
  enc->PutU64(s.next_age_seq);
  enc->PutU64(s.pool_free_order.size());
  for (const std::uint32_t v : s.pool_free_order) {
    enc->PutU32(v);
  }
  enc->PutU64(s.inflight_free_order.size());
  for (const std::uint32_t v : s.inflight_free_order) {
    enc->PutU32(v);
  }
  enc->PutU64(s.inflight_count);
  enc->PutBool(s.wake_scheduled);
  enc->PutU64(s.wake_at);
  // wake_event is a process-local handle; the restore re-creates the wake via
  // ReestablishWake(wake_sequence), so the id is not serialized.
  const auto& st = s.stats;
  enc->PutU64(st.reads_completed);
  enc->PutU64(st.writes_completed);
  enc->PutU64(st.bytes_read);
  enc->PutU64(st.bytes_written);
  enc->PutU64(st.row_hits);
  enc->PutU64(st.row_misses);
  enc->PutU64(st.refreshes);
  EncodeHistogram(enc, st.read_latency_ns);
  EncodeHistogram(enc, st.write_latency_ns);
  enc->PutU64(s.energy.activates);
  enc->PutU64(s.energy.precharges);
  enc->PutU64(s.energy.read_bits);
  enc->PutU64(s.energy.write_bits);
  enc->PutU64(s.energy.refresh_rows);
}

Error DecodeController(Decoder* dec, const mem::ChannelController::SavedState& probe,
                       mem::ChannelController::SavedState* out) {
  constexpr std::uint8_t kMaxBankState = 1;  // Bank::State {kIdle, kActive}
  std::size_t n = 0;
  if (Error err = GetExactCount(dec, "controller banks", probe.banks.size(), &n); !err.ok()) {
    return err;
  }
  out->banks.resize(n);
  for (auto& bank : out->banks) {
    const std::uint8_t state = dec->GetU8();
    if (state > kMaxBankState) {
      return Malformed("controller banks", "bank state " + std::to_string(state) + " out of range");
    }
    bank.state = static_cast<mem::Bank::State>(state);
    bank.open_row = dec->GetU64();
    bank.next_activate = dec->GetU64();
    bank.next_precharge = dec->GetU64();
    bank.next_read = dec->GetU64();
    bank.next_write = dec->GetU64();
  }
  if (Error err = GetExactCount(dec, "controller ranks", probe.ranks.size(), &n); !err.ok()) {
    return err;
  }
  out->ranks.resize(n);
  for (auto& rank : out->ranks) {
    rank.next_act = dec->GetU64();
    for (sim::Tick& act : rank.recent_acts) {
      act = dec->GetU64();
    }
    rank.act_count = dec->GetU8();
    rank.act_pos = dec->GetU8();
    rank.next_refresh_due = dec->GetU64();
    rank.refresh_pending = dec->GetBool();
  }
  out->bus_free = dec->GetU64();
  out->next_age_seq = dec->GetU64();
  if (Error err = GetExactCount(dec, "controller pool", probe.pool_free_order.size(), &n);
      !err.ok()) {
    return err;
  }
  out->pool_free_order.resize(n);
  for (std::uint32_t& v : out->pool_free_order) {
    v = dec->GetU32();
  }
  if (Error err = GetBoundedCount(dec, "controller in-flight slab", 4, &n); !err.ok()) {
    return err;
  }
  out->inflight_free_order.resize(n);
  for (std::uint32_t& v : out->inflight_free_order) {
    v = dec->GetU32();
  }
  out->inflight_count = static_cast<std::size_t>(dec->GetU64());
  // A quiescent slab's free chain threads every slot exactly once.
  if (dec->ok() && out->inflight_count != out->inflight_free_order.size()) {
    return Malformed("controller in-flight slab", "free chain does not cover the slab");
  }
  out->wake_scheduled = dec->GetBool();
  out->wake_at = dec->GetU64();
  out->wake_event = 0;
  auto& st = out->stats;
  st.reads_completed = dec->GetU64();
  st.writes_completed = dec->GetU64();
  st.bytes_read = dec->GetU64();
  st.bytes_written = dec->GetU64();
  st.row_hits = dec->GetU64();
  st.row_misses = dec->GetU64();
  st.refreshes = dec->GetU64();
  if (Error err = DecodeHistogram(dec, "controller read latency", &st.read_latency_ns); !err.ok()) {
    return err;
  }
  if (Error err = DecodeHistogram(dec, "controller write latency", &st.write_latency_ns);
      !err.ok()) {
    return err;
  }
  out->energy.activates = dec->GetU64();
  out->energy.precharges = dec->GetU64();
  out->energy.read_bits = dec->GetU64();
  out->energy.write_bits = dec->GetU64();
  out->energy.refresh_rows = dec->GetU64();
  return Error::Ok();
}

void EncodeMemorySystem(Encoder* enc, const mem::MemorySystem::SavedState& s) {
  enc->PutU64(s.lanes.size());
  for (const auto& lane : s.lanes) {
    enc->PutU64(lane.sim_now);
    enc->PutU64(lane.sim_events);
    enc->PutU64(lane.sim_next_sequence);
    enc->PutU64(lane.wake_sequence);
    EncodeController(enc, lane.controller);
  }
  enc->PutU64(s.next_request_id);
  enc->PutU64(s.injected_stalls);
  enc->PutU64(s.dropped_completions);
}

Error DecodeMemorySystem(const std::vector<std::uint8_t>& payload,
                         const mem::MemorySystem::SavedState& probe,
                         mem::MemorySystem::SavedState* out) {
  Decoder dec(payload.data(), payload.size());
  std::size_t n = 0;
  if (Error err = GetExactCount(&dec, "system lanes", probe.lanes.size(), &n); !err.ok()) {
    return err;
  }
  out->lanes.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& lane = out->lanes[i];
    lane.sim_now = dec.GetU64();
    lane.sim_events = dec.GetU64();
    lane.sim_next_sequence = dec.GetU64();
    lane.wake_sequence = dec.GetU64();
    if (Error err = DecodeController(&dec, probe.lanes[i].controller, &lane.controller);
        !err.ok()) {
      return err;
    }
    // Cross-field sanity: the wake must be re-creatable under the lane's
    // restored sequence counter and clock.
    if (dec.ok() && lane.controller.wake_scheduled &&
        (lane.wake_sequence >= lane.sim_next_sequence ||
         lane.controller.wake_at < lane.sim_now)) {
      return Malformed("system lanes", "lane " + std::to_string(i) + " wake is not re-creatable");
    }
  }
  out->next_request_id = dec.GetU64();
  out->injected_stalls = dec.GetU64();
  out->dropped_completions = dec.GetU64();
  return FinishSection(dec, "system");
}

}  // namespace

// --- MRM stack --------------------------------------------------------------

Error SaveMrmStack(const std::string& path, std::uint64_t config_fingerprint,
                   const sim::Simulator& simulator, const mrmcore::MrmDevice& device,
                   const mrmcore::ControlPlane& plane, const fault::FaultInjector* injector,
                   const std::vector<std::uint8_t>& workload) {
  MRM_CHECK(device.Idle()) << "SaveMrmStack: device has in-flight operations";
  MRM_CHECK(simulator.pending_events() == 1)
      << "SaveMrmStack: expected the scrub firing to be the only pending event, found "
      << simulator.pending_events();

  SnapshotWriter writer(config_fingerprint);

  SimExecState sim_state;
  sim_state.now = simulator.now();
  sim_state.events_executed = simulator.events_executed();
  sim_state.next_sequence = simulator.next_event_sequence();
  EncodeSimExec(writer.AddSection(kSectionSimulator), sim_state);

  mrmcore::MrmDevice::SavedState device_state;
  device.SaveState(&device_state);
  EncodeMrmDevice(writer.AddSection(kSectionMrmDevice), device_state);

  mrmcore::ControlPlane::SavedState plane_state;
  plane.SaveState(&plane_state);
  EncodeControlPlane(writer.AddSection(kSectionControlPlane), plane_state);

  if (injector != nullptr) {
    fault::FaultInjector::SavedState fault_state;
    injector->SaveState(&fault_state);
    EncodeFaultStats(writer.AddSection(kSectionFaultStats), fault_state);
  }

  Encoder* workload_enc = writer.AddSection(kSectionWorkload);
  workload_enc->PutBytes(workload.data(), workload.size());

  return writer.WriteFile(path);
}

Error LoadMrmStack(const std::string& path, std::uint64_t config_fingerprint,
                   const mrmcore::MrmDevice& device, MrmStackState* out) {
  SnapshotReader reader;
  if (Error err = reader.Open(path, config_fingerprint); !err.ok()) {
    return err;
  }

  const std::vector<std::uint8_t>* payload = nullptr;
  if (Error err = reader.Require(kSectionSimulator, &payload); !err.ok()) {
    return err;
  }
  if (Error err = DecodeSimExec(*payload, "simulator", &out->sim); !err.ok()) {
    return err;
  }

  const auto& config = device.config();
  const std::size_t zones = config.zones;
  const std::size_t blocks = static_cast<std::size_t>(config.zones) * config.zone_blocks;
  if (Error err = reader.Require(kSectionMrmDevice, &payload); !err.ok()) {
    return err;
  }
  if (Error err = DecodeMrmDevice(*payload, zones, blocks, &out->device); !err.ok()) {
    return err;
  }

  if (Error err = reader.Require(kSectionControlPlane, &payload); !err.ok()) {
    return err;
  }
  if (Error err = DecodeControlPlane(*payload, zones, &out->plane); !err.ok()) {
    return err;
  }
  // The scrub firing is re-created under the restored sequence counter; a
  // snapshot whose cursors cannot reproduce it is not applyable.
  if (out->plane.scrub.running && (out->plane.scrub.sequence >= out->sim.next_sequence ||
                                   out->plane.scrub.next_fire < out->sim.now)) {
    return Malformed("plane", "scrub firing is not re-creatable");
  }

  const std::vector<std::uint8_t>* fault_payload = reader.Find(kSectionFaultStats);
  out->has_faults = fault_payload != nullptr;
  if (out->has_faults) {
    if (Error err = DecodeFaultStats(*fault_payload, &out->faults); !err.ok()) {
      return err;
    }
  } else {
    out->faults = fault::FaultStats{};
  }

  if (Error err = reader.Require(kSectionWorkload, &payload); !err.ok()) {
    return err;
  }
  Decoder workload_dec(payload->data(), payload->size());
  out->workload = workload_dec.GetBytes();
  if (Error err = FinishSection(workload_dec, "workload"); !err.ok()) {
    return err;
  }

  return Error::Ok();
}

void ApplyMrmStack(const MrmStackState& state, sim::Simulator* simulator,
                   mrmcore::MrmDevice* device, mrmcore::ControlPlane* plane,
                   fault::FaultInjector* injector) {
  // Order matters: the queue reset must precede the control-plane restore so
  // the re-created scrub firing is the queue's only event.
  simulator->RestoreExecution(state.sim.now, state.sim.events_executed, state.sim.next_sequence);
  device->RestoreState(state.device);
  plane->RestoreState(state.plane);
  if (injector != nullptr && state.has_faults) {
    injector->RestoreState(state.faults);
  }
}

// --- Memory fabric ----------------------------------------------------------

Error SaveFabric(const std::string& path, std::uint64_t config_fingerprint,
                 const sim::Simulator& hub, const mem::MemorySystem& system,
                 const fault::FaultInjector* injector) {
  MRM_CHECK(hub.pending_events() == 0)
      << "SaveFabric: the hub queue must be drained, found " << hub.pending_events()
      << " pending events";

  SnapshotWriter writer(config_fingerprint);

  SimExecState hub_state;
  hub_state.now = hub.now();
  hub_state.events_executed = hub.events_executed();
  hub_state.next_sequence = hub.next_event_sequence();
  EncodeSimExec(writer.AddSection(kSectionSimulator), hub_state);

  mem::MemorySystem::SavedState system_state;
  system.SaveState(&system_state);
  EncodeMemorySystem(writer.AddSection(kSectionMemorySystem), system_state);

  if (injector != nullptr) {
    fault::FaultInjector::SavedState fault_state;
    injector->SaveState(&fault_state);
    EncodeFaultStats(writer.AddSection(kSectionFaultStats), fault_state);
  }

  return writer.WriteFile(path);
}

Error LoadFabric(const std::string& path, std::uint64_t config_fingerprint,
                 const mem::MemorySystem& system, FabricState* out) {
  SnapshotReader reader;
  if (Error err = reader.Open(path, config_fingerprint); !err.ok()) {
    return err;
  }

  const std::vector<std::uint8_t>* payload = nullptr;
  if (Error err = reader.Require(kSectionSimulator, &payload); !err.ok()) {
    return err;
  }
  if (Error err = DecodeSimExec(*payload, "hub simulator", &out->hub); !err.ok()) {
    return err;
  }

  // Probe the (quiescent) target for the expected shape: lane count and
  // per-lane bank/rank/pool geometry all come from the same config the
  // fingerprint covers, so a shape mismatch here is corruption or skew.
  mem::MemorySystem::SavedState probe;
  system.SaveState(&probe);
  if (Error err = reader.Require(kSectionMemorySystem, &payload); !err.ok()) {
    return err;
  }
  if (Error err = DecodeMemorySystem(*payload, probe, &out->system); !err.ok()) {
    return err;
  }

  const std::vector<std::uint8_t>* fault_payload = reader.Find(kSectionFaultStats);
  out->has_faults = fault_payload != nullptr;
  if (out->has_faults) {
    if (Error err = DecodeFaultStats(*fault_payload, &out->faults); !err.ok()) {
      return err;
    }
  } else {
    out->faults = fault::FaultStats{};
  }

  return Error::Ok();
}

void ApplyFabric(const FabricState& state, sim::Simulator* hub, mem::MemorySystem* system,
                 fault::FaultInjector* injector) {
  hub->RestoreExecution(state.hub.now, state.hub.events_executed, state.hub.next_sequence);
  system->RestoreState(state.system);
  if (injector != nullptr && state.has_faults) {
    injector->RestoreState(state.faults);
  }
}

}  // namespace snapshot
}  // namespace mrm
