// Typed checkpoint bundles over the snapshot container (DESIGN.md §13).
//
// Two bundles cover the repo's simulation stacks:
//
//   * MrmStackState — an MRM device + control plane + fault injector on one
//     simulator (the aging-campaign stack).
//   * FabricState — a MemorySystem (hub + per-channel lanes) and its fault
//     injector (the DRAM-fabric stack).
//
// Each bundle has three operations with a strict no-partial-mutation
// contract:
//
//   Save*  — capture the live system at a quiescent point and publish the
//            file crash-atomically.
//   Load*  — open, checksum, fingerprint-check and fully decode the file
//            into plain value structs. Touches NOTHING but the output
//            struct; any failure (truncation, corruption, version or config
//            mismatch, malformed payload) returns a named Error and the
//            target system is untouched.
//   Apply* — install a successfully loaded state. Void: validation is
//            Load's job, so Apply cannot fail halfway through.
//
// Quiescent-point restore: callbacks cannot be serialized, so snapshots are
// taken only when the only pending events are component-owned, re-creatable
// ones (the control plane's scrub firing; each channel's refresh wake).
// Apply clears the target simulator's queue (killing events the fresh
// process's constructors scheduled) and lets each component re-create its
// event at the saved (tick, sequence), which restores the exact pop order.

#ifndef MRMSIM_SRC_SNAPSHOT_CHECKPOINT_H_
#define MRMSIM_SRC_SNAPSHOT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/mem/memory_system.h"
#include "src/mrm/control_plane.h"
#include "src/mrm/mrm_device.h"
#include "src/sim/simulator.h"
#include "src/snapshot/format.h"

namespace mrm {
namespace snapshot {

// Section ids. A bundle is a set of sections in one container file; ids are
// stable across format revisions (new sections get new ids).
inline constexpr std::uint32_t kSectionSimulator = 1;
inline constexpr std::uint32_t kSectionFaultStats = 2;
inline constexpr std::uint32_t kSectionMrmDevice = 3;
inline constexpr std::uint32_t kSectionControlPlane = 4;
inline constexpr std::uint32_t kSectionWorkload = 5;
inline constexpr std::uint32_t kSectionMemorySystem = 6;

// A simulator's execution cursor. The queue contents are NOT here — see the
// quiescent-point contract above.
struct SimExecState {
  sim::Tick now = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t next_sequence = 0;
};

// --- MRM stack (device + control plane + injector on one simulator) -------

struct MrmStackState {
  SimExecState sim;
  mrmcore::MrmDevice::SavedState device;
  mrmcore::ControlPlane::SavedState plane;
  fault::FaultStats faults;
  bool has_faults = false;
  // Opaque campaign-owned payload (workload cursors, live-set, counters);
  // the campaign encodes/decodes it with its own Encoder/Decoder.
  std::vector<std::uint8_t> workload;
};

// Captures and atomically writes the stack. Quiescence preconditions
// (MRM_CHECK): device idle, and the scrub task's firing is the simulator's
// only pending event. `injector` and `workload` may be null/empty.
Error SaveMrmStack(const std::string& path, std::uint64_t config_fingerprint,
                   const sim::Simulator& simulator, const mrmcore::MrmDevice& device,
                   const mrmcore::ControlPlane& plane, const fault::FaultInjector* injector,
                   const std::vector<std::uint8_t>& workload);

// Opens, validates and decodes a stack snapshot into `out`. `device` supplies
// the expected geometry (zones, blocks) the decoded state must match; it is
// read, never written. On any failure `out` may hold partial garbage but no
// live system state has been touched — discard it and fall back cold.
Error LoadMrmStack(const std::string& path, std::uint64_t config_fingerprint,
                   const mrmcore::MrmDevice& device, MrmStackState* out);

// Installs a loaded state: clears the simulator's queue, restores device and
// control plane (which re-creates the scrub firing at its saved sequence),
// and the injector's ledger when one is attached.
void ApplyMrmStack(const MrmStackState& state, sim::Simulator* simulator,
                   mrmcore::MrmDevice* device, mrmcore::ControlPlane* plane,
                   fault::FaultInjector* injector);

// --- Memory fabric (MemorySystem + hub simulator + injector) --------------

struct FabricState {
  SimExecState hub;
  mem::MemorySystem::SavedState system;
  fault::FaultStats faults;
  bool has_faults = false;
};

// Quiescence preconditions (MRM_CHECK): system idle with quiescent lanes
// (MemorySystem::SaveState's contract) and an empty hub queue.
Error SaveFabric(const std::string& path, std::uint64_t config_fingerprint,
                 const sim::Simulator& hub, const mem::MemorySystem& system,
                 const fault::FaultInjector* injector);

// `system` supplies the expected shape (lane count, per-lane bank/rank/pool
// geometry) via a probe snapshot of its current — necessarily quiescent —
// state; it is read, never written.
Error LoadFabric(const std::string& path, std::uint64_t config_fingerprint,
                 const mem::MemorySystem& system, FabricState* out);

void ApplyFabric(const FabricState& state, sim::Simulator* hub, mem::MemorySystem* system,
                 fault::FaultInjector* injector);

}  // namespace snapshot
}  // namespace mrm

#endif  // MRMSIM_SRC_SNAPSHOT_CHECKPOINT_H_
