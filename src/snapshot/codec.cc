#include "src/snapshot/codec.h"

#include <bit>
#include <cstring>

namespace mrm {
namespace snapshot {

namespace {

struct Crc32Table {
  std::uint32_t entries[256];
  constexpr Crc32Table() : entries() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

constexpr Crc32Table kCrcTable;

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = kCrcTable.entries[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void Encoder::PutU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PutU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Encoder::PutDouble(double v) { PutU64(std::bit_cast<std::uint64_t>(v)); }

void Encoder::PutBytes(const void* data, std::size_t size) {
  PutU64(size);
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

bool Decoder::Take(std::size_t n, const std::uint8_t** out) {
  if (!ok_ || n > size_ - pos_) {
    ok_ = false;
    return false;
  }
  *out = data_ + pos_;
  pos_ += n;
  return true;
}

std::uint8_t Decoder::GetU8() {
  const std::uint8_t* p = nullptr;
  return Take(1, &p) ? *p : 0;
}

std::uint32_t Decoder::GetU32() {
  const std::uint8_t* p = nullptr;
  if (!Take(4, &p)) {
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t Decoder::GetU64() {
  const std::uint8_t* p = nullptr;
  if (!Take(8, &p)) {
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

double Decoder::GetDouble() { return std::bit_cast<double>(GetU64()); }

std::vector<std::uint8_t> Decoder::GetBytes() {
  const std::uint64_t size = GetU64();
  if (!ok_ || size > remaining()) {
    ok_ = false;
    return {};
  }
  const std::uint8_t* p = nullptr;
  Take(static_cast<std::size_t>(size), &p);
  return std::vector<std::uint8_t>(p, p + size);
}

}  // namespace snapshot
}  // namespace mrm
