// Byte-level encode/decode for durable snapshots (DESIGN.md §13).
//
// The wire format is deliberately primitive: little-endian fixed-width
// integers, IEEE doubles moved bit-exactly via bit_cast, and length-prefixed
// byte strings. No varints, no alignment, no reflection — a snapshot is a
// checkpoint of one simulator build reading its own recent output, not an
// interchange format, so decode simplicity (and therefore auditability of
// the no-UB guarantee) wins over density.
//
// The Decoder is the hostile-input boundary: every Get* bounds-checks against
// the remaining payload and fails sticky (ok() goes false, reads return
// zeros) instead of reading out of bounds, so a truncated or bit-flipped
// section can never turn into undefined behavior.

#ifndef MRMSIM_SRC_SNAPSHOT_CODEC_H_
#define MRMSIM_SRC_SNAPSHOT_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mrm {
namespace snapshot {

// CRC-32 (IEEE 802.3, reflected 0xEDB88320), the checksum behind the header
// and per-section integrity checks. `seed` chains incremental computations:
// pass a previous call's return value to continue it.
std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

class Encoder {
 public:
  void PutU8(std::uint8_t v) { bytes_.push_back(v); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  // Bit-exact: the double's object representation, so NaNs/signed zeros and
  // every last mantissa bit survive the round trip.
  void PutDouble(double v);
  // Length-prefixed (u64) raw bytes.
  void PutBytes(const void* data, std::size_t size);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t>&& TakeBytes() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t GetU8();
  bool GetBool() { return GetU8() != 0; }
  std::uint32_t GetU32();
  std::uint64_t GetU64();
  double GetDouble();
  // Reads a length-prefixed byte string. The length is validated against the
  // remaining payload before any allocation, so a corrupt prefix cannot
  // trigger a multi-gigabyte reserve.
  std::vector<std::uint8_t> GetBytes();

  // False once any read ran past the payload; subsequent reads return zeros.
  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return ok_ && pos_ == size_; }

 private:
  bool Take(std::size_t n, const std::uint8_t** out);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace snapshot
}  // namespace mrm

#endif  // MRMSIM_SRC_SNAPSHOT_CODEC_H_
