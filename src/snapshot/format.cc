#include "src/snapshot/format.h"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/common/logging.h"

namespace mrm {
namespace snapshot {

namespace {

constexpr char kMagic[8] = {'M', 'R', 'M', 'S', 'N', 'A', 'P', '\0'};
constexpr std::size_t kMagicSize = 8;
// magic + version + section count + fingerprint.
constexpr std::size_t kFixedHeaderSize = kMagicSize + 4 + 4 + 8;
constexpr std::size_t kTableEntrySize = 4 + 8 + 8 + 4;
constexpr std::size_t kHeaderCrcSize = 4;

std::size_t HeaderSize(std::uint32_t section_count) {
  return kFixedHeaderSize + kTableEntrySize * section_count;
}

// Writes the whole buffer, retrying on EINTR/short writes.
bool WriteAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

std::string ErrnoDetail(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

const char* ErrorKindName(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kOk:
      return "ok";
    case ErrorKind::kIoError:
      return "io-error";
    case ErrorKind::kBadMagic:
      return "bad-magic";
    case ErrorKind::kBadVersion:
      return "bad-version";
    case ErrorKind::kTruncated:
      return "truncated";
    case ErrorKind::kHeaderCrc:
      return "header-crc";
    case ErrorKind::kSectionCrc:
      return "section-crc";
    case ErrorKind::kConfigMismatch:
      return "config-mismatch";
    case ErrorKind::kMissingSection:
      return "missing-section";
    case ErrorKind::kMalformed:
      return "malformed";
  }
  return "?";
}

std::string Error::ToString() const {
  std::string out = ErrorKindName(kind);
  if (!detail.empty()) {
    out += ": ";
    out += detail;
  }
  return out;
}

void Fingerprint::MixU64(std::uint64_t v) {
  // SplitMix64 finalizer over the chained state, the same mix the fault
  // injector's keyed rolls use.
  std::uint64_t x = state_ ^ v;
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  state_ = x ^ (x >> 31);
}

void Fingerprint::MixDouble(double v) { MixU64(std::bit_cast<std::uint64_t>(v)); }

void Fingerprint::MixString(const std::string& s) {
  MixU64(s.size());
  for (const char c : s) {
    MixU64(static_cast<std::uint8_t>(c));
  }
}

Encoder* SnapshotWriter::AddSection(std::uint32_t id) {
  for (const auto& section : sections_) {
    MRM_CHECK(section->id != id) << "SnapshotWriter: duplicate section id " << id;
  }
  MRM_CHECK(sections_.size() < kMaxSections);
  sections_.push_back(std::make_unique<Section>());
  sections_.back()->id = id;
  return &sections_.back()->encoder;
}

Error SnapshotWriter::WriteFile(const std::string& path) const {
  // Assemble the complete image in memory first; checkpoints are MBs at
  // most, and a single buffer keeps the CRC and offset bookkeeping trivial.
  const auto count = static_cast<std::uint32_t>(sections_.size());
  Encoder header;
  for (std::size_t i = 0; i < kMagicSize; ++i) {
    header.PutU8(static_cast<std::uint8_t>(kMagic[i]));
  }
  header.PutU32(kFormatVersion);
  header.PutU32(count);
  header.PutU64(config_fingerprint_);
  std::uint64_t offset = HeaderSize(count) + kHeaderCrcSize;
  for (const auto& section : sections_) {
    const std::vector<std::uint8_t>& payload = section->encoder.bytes();
    header.PutU32(section->id);
    header.PutU64(offset);
    header.PutU64(payload.size());
    header.PutU32(Crc32(payload.data(), payload.size()));
    offset += payload.size();
  }
  std::vector<std::uint8_t> image = header.TakeBytes();
  const std::uint32_t header_crc = Crc32(image.data(), image.size());
  for (int i = 0; i < 4; ++i) {
    image.push_back(static_cast<std::uint8_t>(header_crc >> (8 * i)));
  }
  for (const auto& section : sections_) {
    const std::vector<std::uint8_t>& payload = section->encoder.bytes();
    image.insert(image.end(), payload.begin(), payload.end());
  }

  // Crash-atomic publish: temp file + fsync + rename + directory fsync.
  const std::string tmp_path = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Error::Make(ErrorKind::kIoError, ErrnoDetail("open", tmp_path));
  }
  if (!WriteAll(fd, image.data(), image.size())) {
    const std::string detail = ErrnoDetail("write", tmp_path);
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return Error::Make(ErrorKind::kIoError, detail);
  }
  if (::fsync(fd) != 0) {
    const std::string detail = ErrnoDetail("fsync", tmp_path);
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return Error::Make(ErrorKind::kIoError, detail);
  }
  if (::close(fd) != 0) {
    const std::string detail = ErrnoDetail("close", tmp_path);
    ::unlink(tmp_path.c_str());
    return Error::Make(ErrorKind::kIoError, detail);
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const std::string detail = ErrnoDetail("rename", tmp_path);
    ::unlink(tmp_path.c_str());
    return Error::Make(ErrorKind::kIoError, detail);
  }
  // fsync the containing directory so the rename itself is durable.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Error::Ok();
}

Error SnapshotReader::Open(const std::string& path, std::uint64_t expected_fingerprint) {
  sections_.clear();

  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Error::Make(ErrorKind::kIoError, ErrnoDetail("open", path));
  }
  std::vector<std::uint8_t> image;
  std::uint8_t buffer[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    image.insert(image.end(), buffer, buffer + n);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return Error::Make(ErrorKind::kIoError, ErrnoDetail("read", path));
  }

  if (image.size() < kFixedHeaderSize + kHeaderCrcSize) {
    return Error::Make(ErrorKind::kTruncated,
                       "file is " + std::to_string(image.size()) + " bytes, shorter than a header");
  }
  if (std::memcmp(image.data(), kMagic, kMagicSize) != 0) {
    return Error::Make(ErrorKind::kBadMagic, "not a snapshot file");
  }
  Decoder header(image.data() + kMagicSize, image.size() - kMagicSize);
  const std::uint32_t version = header.GetU32();
  if (version != kFormatVersion) {
    return Error::Make(ErrorKind::kBadVersion, "format version " + std::to_string(version) +
                                                   ", this build reads " +
                                                   std::to_string(kFormatVersion));
  }
  const std::uint32_t count = header.GetU32();
  if (count > kMaxSections) {
    return Error::Make(ErrorKind::kMalformed,
                       "section count " + std::to_string(count) + " exceeds the format bound");
  }
  const std::size_t header_size = HeaderSize(count);
  if (image.size() < header_size + kHeaderCrcSize) {
    return Error::Make(ErrorKind::kTruncated, "file ends inside the section table");
  }
  // Header CRC before trusting the table (or even the fingerprint): a
  // bit-flip anywhere in the header is caught here, not misinterpreted.
  Decoder crc_field(image.data() + header_size, kHeaderCrcSize);
  const std::uint32_t stored_header_crc = crc_field.GetU32();
  const std::uint32_t actual_header_crc = Crc32(image.data(), header_size);
  if (stored_header_crc != actual_header_crc) {
    return Error::Make(ErrorKind::kHeaderCrc, "header checksum mismatch");
  }
  const std::uint64_t fingerprint = header.GetU64();
  if (fingerprint != expected_fingerprint) {
    return Error::Make(ErrorKind::kConfigMismatch,
                       "snapshot was produced under a different configuration");
  }

  std::vector<Section> sections;
  sections.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t id = header.GetU32();
    const std::uint64_t offset = header.GetU64();
    const std::uint64_t size = header.GetU64();
    const std::uint32_t crc = header.GetU32();
    MRM_CHECK(header.ok());  // table length was bounds-checked above
    if (offset > image.size() || size > image.size() - offset) {
      return Error::Make(ErrorKind::kTruncated,
                         "section " + std::to_string(id) + " extends past end of file");
    }
    for (const Section& prior : sections) {
      if (prior.id == id) {
        return Error::Make(ErrorKind::kMalformed, "duplicate section id " + std::to_string(id));
      }
    }
    const std::uint8_t* payload = image.data() + offset;
    if (Crc32(payload, static_cast<std::size_t>(size)) != crc) {
      return Error::Make(ErrorKind::kSectionCrc,
                         "section " + std::to_string(id) + " checksum mismatch");
    }
    sections.push_back(
        Section{id, std::vector<std::uint8_t>(payload, payload + static_cast<std::size_t>(size))});
  }
  sections_ = std::move(sections);
  return Error::Ok();
}

const std::vector<std::uint8_t>* SnapshotReader::Find(std::uint32_t id) const {
  for (const Section& section : sections_) {
    if (section.id == id) {
      return &section.payload;
    }
  }
  return nullptr;
}

Error SnapshotReader::Require(std::uint32_t id, const std::vector<std::uint8_t>** out) const {
  const std::vector<std::uint8_t>* payload = Find(id);
  if (payload == nullptr) {
    return Error::Make(ErrorKind::kMissingSection,
                       "required section " + std::to_string(id) + " is absent");
  }
  *out = payload;
  return Error::Ok();
}

}  // namespace snapshot
}  // namespace mrm
