// The on-disk snapshot container (DESIGN.md §13).
//
// Layout (all integers little-endian):
//
//   offset  size  field
//   0       8     magic "MRMSNAP\0"
//   8       4     format version (kFormatVersion)
//   12      4     section count N (<= kMaxSections)
//   16      8     config fingerprint (Fingerprint::digest of the run config)
//   24      24*N  section table: N entries of
//                 { u32 id, u64 offset, u64 size, u32 crc32 } packed = 24 B
//   24+24N  4     header CRC32 over bytes [0, 24+24N)
//   ...           section payloads (offsets are absolute file offsets)
//
// Atomicity: WriteFile streams the image to `<path>.tmp.<pid>`, fsyncs the
// file, closes it, renames it over `path`, then fsyncs the directory. A
// crash at any instant leaves either the old complete file or the new
// complete file — never a torn one; a leftover .tmp is garbage a later run
// ignores.
//
// Validation: SnapshotReader::Open performs EVERY check — magic, version,
// bounded section count, header CRC, config fingerprint, per-section bounds
// and CRC, duplicate ids — before returning success, and the reader owns the
// file image, so callers decode from a fully verified buffer and the target
// system is never partially mutated by a bad snapshot.

#ifndef MRMSIM_SRC_SNAPSHOT_FORMAT_H_
#define MRMSIM_SRC_SNAPSHOT_FORMAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/snapshot/codec.h"

namespace mrm {
namespace snapshot {

inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kMaxSections = 256;

// Why a snapshot was rejected. Every failure is named: the aging campaign
// prints the kind in its one-line diagnostic before falling back cold.
enum class ErrorKind {
  kOk = 0,
  kIoError,          // open/read/write/rename/fsync failed
  kBadMagic,         // not a snapshot file
  kBadVersion,       // produced by an incompatible format revision
  kTruncated,        // file shorter than its own structure claims
  kHeaderCrc,        // header bytes corrupted
  kSectionCrc,       // a section payload corrupted
  kConfigMismatch,   // produced under a different run configuration
  kMissingSection,   // a required section is absent
  kMalformed,        // structurally invalid (bounds, duplicates, bad counts)
};

const char* ErrorKindName(ErrorKind kind);

struct Error {
  ErrorKind kind = ErrorKind::kOk;
  std::string detail;

  bool ok() const { return kind == ErrorKind::kOk; }
  // "section-crc: section 3 checksum mismatch" — the one-line diagnostic.
  std::string ToString() const;

  static Error Ok() { return Error{}; }
  static Error Make(ErrorKind kind, std::string detail) { return Error{kind, std::move(detail)}; }
};

// Order-sensitive hash of the run configuration (SplitMix64 chaining).
// Writers stamp the digest into the header; readers must present the same
// digest or Open fails with kConfigMismatch. Mix every config field that
// affects simulation results — technology, geometry, ECC, fault config,
// workload shape — and nothing that doesn't (campaign length, output paths).
class Fingerprint {
 public:
  void MixU64(std::uint64_t v);
  void MixU32(std::uint32_t v) { MixU64(v); }
  void MixBool(bool v) { MixU64(v ? 1 : 0); }
  void MixDouble(double v);
  void MixString(const std::string& s);

  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = 0x9e3779b97f4a7c15ull;
};

// Builds a snapshot in memory and writes it crash-atomically. Sections are
// encoded through the Encoder returned by AddSection; ids must be unique.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(std::uint64_t config_fingerprint)
      : config_fingerprint_(config_fingerprint) {}

  // Starts a new section; the returned Encoder is valid until the next
  // AddSection/WriteFile call. Dies on a duplicate id (programming error).
  Encoder* AddSection(std::uint32_t id);

  // Serializes header + sections and writes them atomically to `path`.
  Error WriteFile(const std::string& path) const;

 private:
  struct Section {
    std::uint32_t id;
    Encoder encoder;
  };

  std::uint64_t config_fingerprint_;
  std::vector<std::unique_ptr<Section>> sections_;
};

// Opens and fully validates a snapshot file. On success the payload bytes of
// each section are available by id; on failure the reader holds nothing.
class SnapshotReader {
 public:
  // Validation order: I/O, minimum length, magic, version, section-count
  // bound, table bounds, header CRC, config fingerprint, per-section bounds
  // and CRC, duplicate ids. Every byte later handed out has passed its CRC.
  Error Open(const std::string& path, std::uint64_t expected_fingerprint);

  // Section payload by id; nullptr when absent.
  const std::vector<std::uint8_t>* Find(std::uint32_t id) const;

  // Find + kMissingSection error when absent.
  Error Require(std::uint32_t id, const std::vector<std::uint8_t>** out) const;

 private:
  struct Section {
    std::uint32_t id;
    std::vector<std::uint8_t> payload;
  };

  std::vector<Section> sections_;
};

}  // namespace snapshot
}  // namespace mrm

#endif  // MRMSIM_SRC_SNAPSHOT_FORMAT_H_
