#include "src/tier/refresh_or_recompute.h"

#include <algorithm>

namespace mrm {
namespace tier {

RefreshDecision DecideRefreshOrRecompute(const RefreshOrRecomputeParams& params) {
  RefreshDecision decision;
  decision.refresh_cost_j =
      static_cast<double>(params.kv_bytes) * params.rewrite_j_per_byte;
  const double recompute_j =
      static_cast<double>(params.context_tokens) * params.recompute_j_per_token +
      static_cast<double>(params.context_tokens) * params.recompute_seconds_per_token *
          params.latency_penalty_j_per_s;
  decision.expected_recompute_cost_j = params.reuse_probability * recompute_j;
  decision.refresh = decision.refresh_cost_j < decision.expected_recompute_cost_j;
  return decision;
}

double BreakEvenReuseProbability(const RefreshOrRecomputeParams& params) {
  const double refresh_j = static_cast<double>(params.kv_bytes) * params.rewrite_j_per_byte;
  const double recompute_j =
      static_cast<double>(params.context_tokens) * params.recompute_j_per_token +
      static_cast<double>(params.context_tokens) * params.recompute_seconds_per_token *
          params.latency_penalty_j_per_s;
  if (recompute_j <= 0.0) {
    return 1.0;
  }
  return std::clamp(refresh_j / recompute_j, 0.0, 1.0);
}

}  // namespace tier
}  // namespace mrm
