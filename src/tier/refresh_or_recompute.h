// The refresh-or-recompute decision (paper §4, "Retention-aware data
// placement and scheduling").
//
// A KV cache is soft state: when its MRM retention is about to lapse the
// scheduler can (a) refresh it — rewrite the bytes, paying MRM write energy
// and bandwidth — or (b) let it expire and re-run prefill if the
// conversation continues, paying accelerator compute. The right choice
// depends on the probability the context is ever used again.

#ifndef MRMSIM_SRC_TIER_REFRESH_OR_RECOMPUTE_H_
#define MRMSIM_SRC_TIER_REFRESH_OR_RECOMPUTE_H_

#include <cstdint>

namespace mrm {
namespace tier {

struct RefreshOrRecomputeParams {
  std::uint64_t kv_bytes = 0;          // resident KV bytes of the context
  std::uint64_t context_tokens = 0;    // tokens to re-prefill on recompute
  double rewrite_j_per_byte = 0.0;     // MRM read+write energy per byte
  double recompute_j_per_token = 0.0;  // accelerator+memory energy per prefill token
  double recompute_seconds_per_token = 0.0;
  double reuse_probability = 1.0;      // P[context receives another turn]
  // Extra latency a future turn suffers on recompute (prefill time) is
  // penalized at this rate; 0 = energy-only decision.
  double latency_penalty_j_per_s = 0.0;
};

struct RefreshDecision {
  bool refresh = false;
  double refresh_cost_j = 0.0;             // certain, paid now
  double expected_recompute_cost_j = 0.0;  // probabilistic, paid on reuse
};

RefreshDecision DecideRefreshOrRecompute(const RefreshOrRecomputeParams& params);

// Break-even reuse probability: refresh wins for p above this value.
double BreakEvenReuseProbability(const RefreshOrRecomputeParams& params);

}  // namespace tier
}  // namespace mrm

#endif  // MRMSIM_SRC_TIER_REFRESH_OR_RECOMPUTE_H_
