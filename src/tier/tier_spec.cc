#include "src/tier/tier_spec.h"

#include "src/cell/refresh_model.h"
#include "src/cell/technology.h"
#include "src/cell/tradeoff.h"
#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/common/units.h"
#include "src/mem/stream_model.h"

namespace mrm {
namespace tier {

workload::TierSpec TierSpecFromDevice(const mem::DeviceConfig& config, int devices) {
  MRM_CHECK(devices > 0);
  const mem::StreamModel model(config);
  const cell::TechnologyProfile& profile = cell::GetTechnologyProfile(config.tech);

  workload::TierSpec spec;
  spec.name = config.name;
  spec.capacity_bytes = config.capacity_bytes() * static_cast<std::uint64_t>(devices);
  spec.read_bw_bytes_per_s = model.EffectiveBandwidth() * devices;
  spec.write_bw_bytes_per_s = spec.read_bw_bytes_per_s;  // DRAM is symmetric

  // Dynamic energy per bit: array access + IO, plus activation energy
  // amortized over a fully streamed row.
  const double act_pj_per_bit =
      config.energy.act_pre_pj / (static_cast<double>(config.row_bytes) * 8.0);
  spec.read_pj_per_bit =
      config.energy.read_pj_per_bit + config.energy.io_pj_per_bit + act_pj_per_bit;
  spec.write_pj_per_bit =
      config.energy.write_pj_per_bit + config.energy.io_pj_per_bit + act_pj_per_bit;

  // Static power: per-bank background plus steady-state refresh.
  const double banks =
      static_cast<double>(config.channels) * config.ranks * config.banks_per_rank();
  double static_w = banks * config.energy.background_mw_per_bank * 1e-3;
  if (config.needs_refresh) {
    cell::RefreshModelParams refresh;
    refresh.capacity_bytes = config.capacity_bytes();
    refresh.retention_window_s = profile.retention_s;
    refresh.row_bytes = config.row_bytes;
    refresh.energy_per_row_refresh_pj = config.energy.refresh_pj_per_row;
    static_w += cell::ComputeRefreshCost(refresh).refresh_power_w;
  }
  spec.static_power_w = static_w * devices;

  spec.cost_per_gib = kHbmDollarsPerGib * profile.relative_cost_per_bit;
  return spec;
}

workload::TierSpec TierSpecFromMrm(const mrmcore::MrmDeviceConfig& config, int devices,
                                   double retention_s) {
  MRM_CHECK(devices > 0);
  auto tradeoff = cell::MakeTradeoffFor(config.technology);
  MRM_CHECK(tradeoff.ok()) << tradeoff.error().message();
  const cell::OperatingPoint point = tradeoff.value()->AtRetention(retention_s);
  const cell::OperatingPoint ref =
      tradeoff.value()->AtRetention(tradeoff.value()->max_retention_s());
  const cell::TechnologyProfile& profile = cell::GetTechnologyProfile(config.technology);

  workload::TierSpec spec;
  spec.name = config.name + "@" + FormatSeconds(retention_s);
  spec.capacity_bytes = config.capacity_bytes() * static_cast<std::uint64_t>(devices);
  spec.read_bw_bytes_per_s = config.peak_read_bw_bytes_per_s() * devices;
  const double pulse_scale = point.write_latency_ns / ref.write_latency_ns;
  spec.write_bw_bytes_per_s =
      config.channel_write_bw_ref_bytes_per_s / pulse_scale * config.channels * devices;
  spec.read_pj_per_bit = point.read_energy_pj_per_bit + config.io_pj_per_bit;
  spec.write_pj_per_bit = point.write_energy_pj_per_bit + config.io_pj_per_bit;
  spec.static_power_w = config.background_mw * 1e-3 * devices;  // no refresh
  spec.cost_per_gib = kHbmDollarsPerGib * profile.relative_cost_per_bit;
  return spec;
}

double SystemCostDollars(const std::vector<workload::TierSpec>& tiers) {
  double total = 0.0;
  for (const auto& tier : tiers) {
    total += static_cast<double>(tier.capacity_bytes) / static_cast<double>(kGiB) *
             tier.cost_per_gib;
  }
  return total;
}

}  // namespace tier
}  // namespace mrm
