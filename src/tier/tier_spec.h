// Builders that reduce cycle-level device models to workload::TierSpec.
//
// The cluster-scale experiments (E9, examples) run on analytic tier specs;
// these builders keep those specs honest by deriving bandwidth from the
// cycle-level presets (via mem::StreamModel) and energy/cost from the cell
// profiles — one source of truth for both simulation granularities.

#ifndef MRMSIM_SRC_TIER_TIER_SPEC_H_
#define MRMSIM_SRC_TIER_TIER_SPEC_H_

#include <cstdint>
#include <vector>

#include "src/mem/device_config.h"
#include "src/mrm/mrm_config.h"
#include "src/workload/backend.h"

namespace mrm {
namespace tier {

// Reference cost anchor: one GiB of HBM-class memory (relative_cost 1.0).
inline constexpr double kHbmDollarsPerGib = 12.0;

// DRAM-class tier from a device preset, scaled to `devices` copies (e.g. 8
// HBM stacks on one accelerator). Static power includes refresh.
workload::TierSpec TierSpecFromDevice(const mem::DeviceConfig& config, int devices);

// MRM tier at a fixed retention operating point (the write-path bandwidth
// and energy depend on the programmed retention).
workload::TierSpec TierSpecFromMrm(const mrmcore::MrmDeviceConfig& config, int devices,
                                   double retention_s);

// Total hardware cost of a set of tiers (capacity x $/GiB).
double SystemCostDollars(const std::vector<workload::TierSpec>& tiers);

}  // namespace tier
}  // namespace mrm

#endif  // MRMSIM_SRC_TIER_TIER_SPEC_H_
